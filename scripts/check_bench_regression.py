#!/usr/bin/env python3
"""Guard the benchmark floors: fail when a freshly produced BENCH_*.json
regresses an enforced ratio metric by more than the tolerance relative to
the committed baseline.

Only machine-comparable *ratio* metrics are compared against the
baseline (speedups and the swap-reduction percentage) -- absolute
wall-clock numbers shift with the host.  A small set of absolute floors
(ABSOLUTE_FLOORS) is additionally enforced on the current run only.

Usage:
    scripts/check_bench_regression.py \
        --baseline-dir . --current-dir build [--tolerance 0.20]

Exit status: 0 = no regression, 1 = regression, 2 = usage/setup error.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as err:
        print(f"error: {path} is not valid JSON: {err}")
        sys.exit(2)


# hard floors on the current run, independent of the baseline ratio gate
ABSOLUTE_FLOORS = {
    # 2x the pre-SIMD committed brickwork-20q fused throughput (624.8)
    "sim.end_to_end.brickwork-20q.fused_gates_per_s": 1249.6,
    # generic 2x2 kernel must beat the naive scalar path clearly
    "sim.kernels.generic-2x2.speedup": 1.5,
    # the fault-tolerance plumbing (cancel tokens, rollback snapshots,
    # degrade bookkeeping) must stay invisible on a healthy workload
    "serve.degrade_healthy_ratio": 0.80,
    # the subcircuit library must splice the second sighting of the
    # hwb-8 rptm+tpar segment >= 1.5x faster than the first, and a
    # process restart over the on-disk store must keep a clear win
    "library.second_sighting_speedup": 1.5,
    "library.warm_restart_speedup": 1.1,
}


def collect_metrics(directory):
    """Maps metric-path -> value for every enforced ratio metric found.

    Only the workloads whose floors the benches themselves enforce are
    gated; small micro-workloads (layered-12q and friends) swing well
    over 20% run-to-run and would make the gate flaky.
    """
    metrics = {}

    def section_rows(data, key):
        """Sections are `{..., "results": [...]}` objects since the SIMD
        rework (per-section threads/isa metadata); older baselines used
        bare lists."""
        section = data.get(key, [])
        if isinstance(section, dict):
            return section.get("results", [])
        return section

    sim = load(os.path.join(directory, "BENCH_sim.json"))
    if sim is not None:
        for row in section_rows(sim, "end_to_end"):
            if row["name"] == "layered-20q":
                metrics[f"sim.end_to_end.{row['name']}.speedup"] = row["speedup"]
            if row["name"] == "brickwork-20q":
                metrics[f"sim.end_to_end.{row['name']}.speedup"] = row["speedup"]
                # gated by ABSOLUTE_FLOORS only, not by the ratio loop
                metrics[f"sim.end_to_end.{row['name']}.fused_gates_per_s"] = \
                    row["fused_gates_per_s"]
        for row in section_rows(sim, "kernels"):
            if row["name"].startswith("h "):
                metrics["sim.kernels.generic-2x2.speedup"] = row["speedup"]
        for row in section_rows(sim, "sampling"):
            if row["name"].startswith("stabilizer"):
                metrics[f"sim.sampling.{row['name']}.speedup"] = row["speedup"]

    mapping = load(os.path.join(directory, "BENCH_map.json"))
    if mapping is not None:
        summary = mapping.get("summary", {})
        if "swap_reduction_percent" in summary:
            metrics["map.swap_reduction_percent"] = summary["swap_reduction_percent"]

    eq5 = load(os.path.join(directory, "BENCH_eq5.json"))
    if eq5 is not None:
        micro = eq5.get("revsimp_microbench", {})
        if "speedup" in micro:
            metrics["eq5.revsimp_microbench.speedup"] = micro["speedup"]

    library = load(os.path.join(directory, "BENCH_library.json"))
    if library is not None and not library.get("smoke", False):
        summary = library.get("summary", {})
        if "second_sighting_speedup" in summary:
            metrics["library.second_sighting_speedup"] = \
                summary["second_sighting_speedup"]
        if "warm_restart_speedup" in summary:
            metrics["library.warm_restart_speedup"] = \
                summary["warm_restart_speedup"]

    serve = load(os.path.join(directory, "BENCH_serve.json"))
    if serve is not None and not serve.get("smoke", False):
        summary = serve.get("summary", {})
        if "speedup_8_workers_vs_serial_baseline" in summary:
            metrics["serve.speedup_8_workers_vs_serial_baseline"] = \
                summary["speedup_8_workers_vs_serial_baseline"]
        if "structural_hit_rate" in summary:
            metrics["serve.structural_hit_rate"] = summary["structural_hit_rate"]
        if "degrade_healthy_ratio" in summary:
            metrics["serve.degrade_healthy_ratio"] = summary["degrade_healthy_ratio"]

    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with the committed BENCH_*.json files")
    parser.add_argument("--current-dir", default="build",
                        help="directory with the freshly produced BENCH_*.json files")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative drop before failing (default 0.20)")
    args = parser.parse_args()

    baseline = collect_metrics(args.baseline_dir)
    current = collect_metrics(args.current_dir)

    if not baseline:
        print(f"error: no baseline BENCH_*.json found in {args.baseline_dir}")
        return 2
    if not current:
        print(f"error: no fresh BENCH_*.json found in {args.current_dir}")
        return 2

    failures = []
    checked = 0
    for name, base_value in sorted(baseline.items()):
        if name.endswith("gates_per_s"):
            continue  # absolute metric: floor-gated only, hosts differ
        if name.startswith("library."):
            # floor-gated only: the warm segments are a few ms, so the
            # measured speedup swings well over 20% on loaded runners
            continue
        if name not in current:
            print(f"skip  {name}: not in current run (workload set differs)")
            continue
        checked += 1
        cur_value = current[name]
        floor = base_value * (1.0 - args.tolerance)
        status = "ok   "
        if cur_value < floor:
            status = "FAIL "
            failures.append(name)
        print(f"{status}{name}: baseline {base_value:.2f} -> current {cur_value:.2f} "
              f"(floor {floor:.2f})")

    for name, floor in sorted(ABSOLUTE_FLOORS.items()):
        if name not in current:
            print(f"skip  {name}: not in current run (absolute floor)")
            continue
        checked += 1
        cur_value = current[name]
        status = "ok   "
        if cur_value < floor:
            status = "FAIL "
            failures.append(name)
        print(f"{status}{name}: current {cur_value:.2f} (absolute floor {floor:.2f})")

    if checked == 0:
        print("error: baseline and current runs share no metrics")
        return 2
    if failures:
        print(f"\n{len(failures)} metric(s) regressed by more than "
              f"{args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nall {checked} enforced metric(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
