#include "quantum/qgate.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qda
{

std::vector<uint32_t> qgate_view::qubits() const
{
  if ( kind == gate_kind::global_phase || kind == gate_kind::barrier )
  {
    return {};
  }
  std::vector<uint32_t> result( controls.begin(), controls.end() );
  result.push_back( target );
  if ( kind == gate_kind::swap )
  {
    result.push_back( target2 );
  }
  return result;
}

bool qgate_view::is_clifford() const noexcept
{
  switch ( kind )
  {
  case gate_kind::h:
  case gate_kind::x:
  case gate_kind::y:
  case gate_kind::z:
  case gate_kind::s:
  case gate_kind::sdg:
  case gate_kind::cx:
  case gate_kind::cz:
  case gate_kind::swap:
    return true;
  default:
    return false;
  }
}

qgate qgate_view::materialize() const
{
  qgate result;
  result.kind = kind;
  result.controls.assign( controls.begin(), controls.end() );
  result.target = target;
  result.target2 = target2;
  result.angle = angle;
  return result;
}

qgate qgate_view::adjoint() const
{
  if ( kind == gate_kind::measure )
  {
    throw std::logic_error( "qgate::adjoint: measurement is not invertible" );
  }
  qgate result = materialize();
  switch ( kind )
  {
  case gate_kind::s:
    result.kind = gate_kind::sdg;
    break;
  case gate_kind::sdg:
    result.kind = gate_kind::s;
    break;
  case gate_kind::t:
    result.kind = gate_kind::tdg;
    break;
  case gate_kind::tdg:
    result.kind = gate_kind::t;
    break;
  case gate_kind::rx:
  case gate_kind::ry:
  case gate_kind::rz:
  case gate_kind::global_phase:
    result.angle = -angle;
    break;
  default:
    break; /* self-inverse */
  }
  return result;
}

std::string qgate_view::to_string() const
{
  std::string result = gate_name( kind );
  if ( kind == gate_kind::rx || kind == gate_kind::ry || kind == gate_kind::rz ||
       kind == gate_kind::global_phase )
  {
    result += "(" + std::to_string( angle ) + ")";
  }
  bool first = true;
  for ( const auto qubit : qubits() )
  {
    result += first ? " q" : ", q";
    result += std::to_string( qubit );
    first = false;
  }
  return result;
}

bool operator==( const qgate_view& a, const qgate_view& b ) noexcept
{
  return a.kind == b.kind && a.target == b.target && a.target2 == b.target2 &&
         a.angle == b.angle &&
         std::equal( a.controls.begin(), a.controls.end(), b.controls.begin(),
                     b.controls.end() );
}

std::vector<uint32_t> qgate::qubits() const
{
  return qgate_view( *this ).qubits();
}

bool qgate::is_clifford() const noexcept
{
  return qgate_view( *this ).is_clifford();
}

qgate qgate::adjoint() const
{
  return qgate_view( *this ).adjoint();
}

std::string qgate::to_string() const
{
  return qgate_view( *this ).to_string();
}

std::array<std::complex<double>, 4> single_qubit_matrix( gate_kind kind, double angle )
{
  using namespace std::complex_literals;
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  switch ( kind )
  {
  case gate_kind::h:
    return { inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2 };
  case gate_kind::x:
    return { 0.0, 1.0, 1.0, 0.0 };
  case gate_kind::y:
    return { 0.0, -1.0i, 1.0i, 0.0 };
  case gate_kind::z:
    return { 1.0, 0.0, 0.0, -1.0 };
  case gate_kind::s:
    return { 1.0, 0.0, 0.0, 1.0i };
  case gate_kind::sdg:
    return { 1.0, 0.0, 0.0, -1.0i };
  case gate_kind::t:
    return { 1.0, 0.0, 0.0, std::exp( 0.25i * std::numbers::pi ) };
  case gate_kind::tdg:
    return { 1.0, 0.0, 0.0, std::exp( -0.25i * std::numbers::pi ) };
  case gate_kind::rx:
    return { std::cos( angle / 2.0 ), -1.0i * std::sin( angle / 2.0 ),
             -1.0i * std::sin( angle / 2.0 ), std::cos( angle / 2.0 ) };
  case gate_kind::ry:
    return { std::cos( angle / 2.0 ), -std::sin( angle / 2.0 ),
             std::sin( angle / 2.0 ), std::cos( angle / 2.0 ) };
  case gate_kind::rz:
    return { std::exp( -0.5i * angle ), 0.0, 0.0, std::exp( 0.5i * angle ) };
  default:
    throw std::invalid_argument( "single_qubit_matrix: not a single-qubit gate" );
  }
}

std::string gate_name( gate_kind kind )
{
  switch ( kind )
  {
  case gate_kind::h: return "h";
  case gate_kind::x: return "x";
  case gate_kind::y: return "y";
  case gate_kind::z: return "z";
  case gate_kind::s: return "s";
  case gate_kind::sdg: return "sdg";
  case gate_kind::t: return "t";
  case gate_kind::tdg: return "tdg";
  case gate_kind::rx: return "rx";
  case gate_kind::ry: return "ry";
  case gate_kind::rz: return "rz";
  case gate_kind::cx: return "cx";
  case gate_kind::cz: return "cz";
  case gate_kind::swap: return "swap";
  case gate_kind::mcx: return "mcx";
  case gate_kind::mcz: return "mcz";
  case gate_kind::measure: return "measure";
  case gate_kind::barrier: return "barrier";
  case gate_kind::global_phase: return "gphase";
  }
  return "?";
}

} // namespace qda
