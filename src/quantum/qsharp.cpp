#include "quantum/qsharp.hpp"

#include <sstream>
#include <stdexcept>

namespace qda
{

namespace
{

std::string qubit_ref( uint32_t index )
{
  return "qubits[" + std::to_string( index ) + "]";
}

void emit_gate( std::ostringstream& out, const qgate_view& gate )
{
  const std::string indent = "            ";
  switch ( gate.kind )
  {
  case gate_kind::h:
    out << indent << "H(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::x:
    out << indent << "X(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::y:
    out << indent << "Y(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::z:
    out << indent << "Z(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::s:
    out << indent << "S(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::sdg:
    out << indent << "(Adjoint S)(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::t:
    out << indent << "T(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::tdg:
    out << indent << "(Adjoint T)(" << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::rz:
    out << indent << "Rz(" << gate.angle << ", " << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::rx:
    out << indent << "Rx(" << gate.angle << ", " << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::ry:
    out << indent << "Ry(" << gate.angle << ", " << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::cx:
    out << indent << "CNOT(" << qubit_ref( gate.controls[0] ) << ", " << qubit_ref( gate.target )
        << ");\n";
    break;
  case gate_kind::cz:
    out << indent << "(Controlled Z)([" << qubit_ref( gate.controls[0] ) << "], "
        << qubit_ref( gate.target ) << ");\n";
    break;
  case gate_kind::swap:
    out << indent << "SWAP(" << qubit_ref( gate.target ) << ", " << qubit_ref( gate.target2 )
        << ");\n";
    break;
  case gate_kind::mcx:
    if ( gate.controls.size() == 2u )
    {
      out << indent << "CCNOT(" << qubit_ref( gate.controls[0] ) << ", "
          << qubit_ref( gate.controls[1] ) << ", " << qubit_ref( gate.target ) << ");\n";
      break;
    }
    throw std::invalid_argument( "write_qsharp_operation: mcx beyond CCNOT; map first" );
  case gate_kind::mcz:
    throw std::invalid_argument( "write_qsharp_operation: mcz not representable; map first" );
  case gate_kind::measure:
    throw std::invalid_argument( "write_qsharp_operation: oracles must be measurement-free" );
  case gate_kind::barrier:
  case gate_kind::global_phase:
    break; /* no Q# equivalent required */
  }
}

} // namespace

std::string write_qsharp_operation( const qcircuit& circuit, const std::string& operation_name )
{
  std::ostringstream out;
  out << "    operation " << operation_name << "\n";
  out << "        (qubits : Qubit[]) :\n";
  out << "        () {\n";
  out << "        body {\n";
  for ( const auto& gate : circuit.gates() )
  {
    emit_gate( out, gate );
  }
  out << "        }\n";
  out << "        adjoint auto\n";
  out << "        controlled auto\n";
  out << "        controlled adjoint auto\n";
  out << "    }\n";
  return out.str();
}

std::string write_qsharp_hidden_shift_namespace()
{
  std::ostringstream out;
  out << "namespace Microsoft.Quantum.HiddenShift {\n";
  out << "    // basic operations: Hadamard, CNOT, etc\n";
  out << "    open Microsoft.Quantum.Primitive;\n";
  out << "    // useful lib functions and combinators\n";
  out << "    open Microsoft.Quantum.Canon;\n";
  out << "    // permutation defining the instance\n";
  out << "    open Microsoft.Quantum.PermOracle;\n\n";
  out << "    operation HiddenShift\n";
  out << "        (Ufstar : (Qubit[] => ()),\n";
  out << "         Ug : (Qubit[] => ()), n : Int) :\n";
  out << "        Result[] {\n";
  out << "        body {\n";
  out << "            mutable resultArray = new Result[n];\n";
  out << "            using (qubits = Qubit[n]) {\n";
  out << "                ApplyToEach(H, qubits);\n";
  out << "                Ug(qubits);\n";
  out << "                ApplyToEach(H, qubits);\n";
  out << "                Ufstar(qubits);\n";
  out << "                ApplyToEach(H, qubits);\n";
  out << "                for (idx in 0..(n-1)) {\n";
  out << "                    set resultArray[idx] = MResetZ(qubits[idx]);\n";
  out << "                }\n";
  out << "            }\n";
  out << "            Message($\"result: {resultArray}\");\n";
  out << "            return resultArray;\n";
  out << "        }\n";
  out << "    }\n";
  out << "}\n";
  return out.str();
}

std::string write_qsharp_perm_oracle_namespace( const qcircuit& permutation_oracle,
                                                uint32_t half_vars )
{
  std::ostringstream out;
  out << "namespace Microsoft.Quantum.PermOracle {\n";
  out << "    open Microsoft.Quantum.Primitive;\n\n";
  out << write_qsharp_operation( permutation_oracle, "PermutationOracle" );
  out << "\n";
  out << "    operation BentFunctionImpl\n";
  out << "        (n : Int, qs : Qubit[]) : () {\n";
  out << "        body {\n";
  out << "            let xs = qs[0..(n-1)];\n";
  out << "            let ys = qs[n..(2*n-1)];\n";
  out << "            (Adjoint PermutationOracle)(ys);\n";
  out << "            for (idx in 0..(n-1)) {\n";
  out << "                (Controlled Z)([xs[idx]], ys[idx]);\n";
  out << "            }\n";
  out << "            PermutationOracle(ys);\n";
  out << "        }\n";
  out << "    }\n\n";
  out << "    function BentFunction\n";
  out << "        (n : Int) : (Qubit[] => ()) {\n";
  out << "        return BentFunctionImpl(" << half_vars << ", _);\n";
  out << "    }\n";
  out << "}\n";
  return out.str();
}

} // namespace qda
