/*! \file qasm.hpp
 *  \brief OpenQASM 2.0 export and import.
 *
 *  OPENQASM (paper ref [37]) is the interchange format of the IBM
 *  Quantum Experience backend; the paper's ProjectQ flow ships circuits
 *  to the chip in this format.  Export requires the circuit to be
 *  expressed in the QASM-supported library (no mcx/mcz with more than
 *  two controls); run the Clifford+T mapping first.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <string>
#include <string_view>

namespace qda
{

/*! \brief Serializes a circuit as OpenQASM 2.0.
 *
 *  Throws std::invalid_argument if the circuit contains gates with no
 *  QASM equivalent (mcx/mcz beyond ccx/ccz-expressible arity).
 */
std::string write_qasm( const qcircuit& circuit );

/*! \brief Parses the OpenQASM 2.0 subset produced by write_qasm. */
qcircuit read_qasm( std::string_view text );

} // namespace qda
