#include "quantum/qasm.hpp"

#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace qda
{

std::string write_qasm( const qcircuit& circuit )
{
  std::ostringstream out;
  /* max_digits10: angles survive emit -> parse -> emit exactly */
  out.precision( 17 );
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.num_qubits() << "];\n";
  out << "creg c[" << circuit.num_qubits() << "];\n";

  for ( const auto& gate : circuit.gates() )
  {
    switch ( gate.kind )
    {
    case gate_kind::h:
    case gate_kind::x:
    case gate_kind::y:
    case gate_kind::z:
    case gate_kind::s:
    case gate_kind::sdg:
    case gate_kind::t:
    case gate_kind::tdg:
      out << gate_name( gate.kind ) << " q[" << gate.target << "];\n";
      break;
    case gate_kind::rx:
    case gate_kind::ry:
    case gate_kind::rz:
      out << gate_name( gate.kind ) << "(" << gate.angle << ") q[" << gate.target << "];\n";
      break;
    case gate_kind::cx:
      out << "cx q[" << gate.controls[0] << "],q[" << gate.target << "];\n";
      break;
    case gate_kind::cz:
      out << "cz q[" << gate.controls[0] << "],q[" << gate.target << "];\n";
      break;
    case gate_kind::swap:
      out << "swap q[" << gate.target << "],q[" << gate.target2 << "];\n";
      break;
    case gate_kind::mcx:
      if ( gate.controls.size() == 2u )
      {
        out << "ccx q[" << gate.controls[0] << "],q[" << gate.controls[1] << "],q["
            << gate.target << "];\n";
        break;
      }
      throw std::invalid_argument( "write_qasm: mcx beyond ccx; run Clifford+T mapping first" );
    case gate_kind::mcz:
      throw std::invalid_argument( "write_qasm: mcz not supported; run Clifford+T mapping first" );
    case gate_kind::measure:
      out << "measure q[" << gate.target << "] -> c[" << gate.target << "];\n";
      break;
    case gate_kind::barrier:
      out << "barrier q;\n";
      break;
    case gate_kind::global_phase:
      /* OpenQASM 2.0 has no global phase statement; it is unobservable */
      out << "// global phase " << gate.angle << "\n";
      break;
    }
  }
  return out.str();
}

namespace
{

struct qasm_parser
{
  std::string_view text;
  size_t pos = 0u;

  void skip_space()
  {
    while ( pos < text.size() &&
            ( text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r' ) )
    {
      ++pos;
    }
  }

  /*! Whitespace and comments; used inside statements, where comments
   *  carry no meaning.  Statement boundaries go through comment_line()
   *  first so marker comments (global phase) are not silently eaten.
   */
  void skip_trivia()
  {
    while ( comment_line() )
    {
    }
  }

  /*! Consumes one "//" comment if next, returning its text. */
  std::optional<std::string> comment_line()
  {
    skip_space();
    if ( pos + 1u >= text.size() || text[pos] != '/' || text[pos + 1u] != '/' )
    {
      return std::nullopt;
    }
    const size_t start = pos + 2u;
    size_t end = text.find( '\n', start );
    if ( end == std::string_view::npos )
    {
      end = text.size();
    }
    pos = end;
    return std::string( text.substr( start, end - start ) );
  }

  bool eof()
  {
    skip_space();
    return pos >= text.size();
  }

  std::string token()
  {
    skip_trivia();
    const size_t start = pos;
    if ( pos < text.size() &&
         ( std::isalnum( static_cast<unsigned char>( text[pos] ) ) || text[pos] == '_' ) )
    {
      while ( pos < text.size() &&
              ( std::isalnum( static_cast<unsigned char>( text[pos] ) ) || text[pos] == '_' ||
                text[pos] == '.' || text[pos] == '+' || text[pos] == '-' ) )
      {
        ++pos;
      }
    }
    else if ( pos < text.size() )
    {
      ++pos;
    }
    return std::string( text.substr( start, pos - start ) );
  }

  void expect( std::string_view expected )
  {
    const auto got = token();
    if ( got != expected )
    {
      throw std::invalid_argument( "read_qasm: expected '" + std::string( expected ) + "', got '" +
                                   got + "'" );
    }
  }

  void skip_until_semicolon()
  {
    while ( pos < text.size() && text[pos] != ';' )
    {
      ++pos;
    }
    if ( pos < text.size() )
    {
      ++pos;
    }
  }

  uint32_t qubit_operand()
  {
    expect( "q" );
    expect( "[" );
    const auto index = token();
    expect( "]" );
    return static_cast<uint32_t>( std::stoul( index ) );
  }

  double angle_operand()
  {
    expect( "(" );
    std::string value;
    skip_space();
    while ( pos < text.size() && text[pos] != ')' )
    {
      value += text[pos++];
    }
    expect( ")" );
    /* allow "pi/4"-style fractions */
    const auto pi_pos = value.find( "pi" );
    if ( pi_pos != std::string::npos )
    {
      double scale = 1.0;
      const auto slash = value.find( '/' );
      if ( slash != std::string::npos )
      {
        scale = 1.0 / std::stod( value.substr( slash + 1u ) );
      }
      double sign = value.find( '-' ) != std::string::npos ? -1.0 : 1.0;
      return sign * M_PI * scale;
    }
    return std::stod( value );
  }
};

} // namespace

qcircuit read_qasm( std::string_view text )
{
  qasm_parser parser{ text };
  uint32_t num_qubits = 0u;
  std::vector<qgate> pending;

  constexpr std::string_view gphase_marker = " global phase ";

  /* header */
  while ( !parser.eof() )
  {
    const size_t before = parser.pos;
    if ( const auto comment = parser.comment_line() )
    {
      /* a marker after the qreg is the first gate-stream statement and
       * belongs to the body loop; before it, comments are just trivia */
      if ( num_qubits != 0u && comment->rfind( gphase_marker, 0u ) == 0u )
      {
        parser.pos = before;
        break;
      }
      continue; /* tool banners etc. before/inside the header */
    }
    const auto word = parser.token();
    if ( word == "OPENQASM" || word == "include" || word == "creg" )
    {
      parser.skip_until_semicolon();
      continue;
    }
    if ( word == "qreg" )
    {
      parser.expect( "q" );
      parser.expect( "[" );
      num_qubits = static_cast<uint32_t>( std::stoul( parser.token() ) );
      parser.expect( "]" );
      parser.expect( ";" );
      continue;
    }
    parser.pos = before;
    break;
  }
  if ( num_qubits == 0u )
  {
    throw std::invalid_argument( "read_qasm: missing qreg declaration" );
  }

  qcircuit circuit( num_qubits );
  static const std::map<std::string, gate_kind> simple{
      { "h", gate_kind::h },   { "x", gate_kind::x },     { "y", gate_kind::y },
      { "z", gate_kind::z },   { "s", gate_kind::s },     { "sdg", gate_kind::sdg },
      { "t", gate_kind::t },   { "tdg", gate_kind::tdg } };

  while ( !parser.eof() )
  {
    if ( const auto comment = parser.comment_line() )
    {
      /* re-import the global-phase marker emitted by write_qasm; other
       * comments (including prose that merely mentions a global phase)
       * are ignored */
      if ( comment->rfind( gphase_marker, 0u ) == 0u )
      {
        try
        {
          circuit.global_phase( std::stod( comment->substr( gphase_marker.size() ) ) );
        }
        catch ( const std::exception& )
        {
          /* not a numeric marker: plain comment */
        }
      }
      continue;
    }
    const auto word = parser.token();
    if ( const auto it = simple.find( word ); it != simple.end() )
    {
      const auto qubit = parser.qubit_operand();
      parser.expect( ";" );
      qgate gate;
      gate.kind = it->second;
      gate.target = qubit;
      circuit.add_gate( gate );
    }
    else if ( word == "rx" || word == "ry" || word == "rz" )
    {
      const double angle = parser.angle_operand();
      const auto qubit = parser.qubit_operand();
      parser.expect( ";" );
      if ( word == "rx" )
      {
        circuit.rx( qubit, angle );
      }
      else if ( word == "ry" )
      {
        circuit.ry( qubit, angle );
      }
      else
      {
        circuit.rz( qubit, angle );
      }
    }
    else if ( word == "cx" || word == "cz" )
    {
      const auto control = parser.qubit_operand();
      parser.expect( "," );
      const auto target = parser.qubit_operand();
      parser.expect( ";" );
      if ( word == "cx" )
      {
        circuit.cx( control, target );
      }
      else
      {
        circuit.cz( control, target );
      }
    }
    else if ( word == "swap" )
    {
      const auto a = parser.qubit_operand();
      parser.expect( "," );
      const auto b = parser.qubit_operand();
      parser.expect( ";" );
      circuit.swap_( a, b );
    }
    else if ( word == "ccx" )
    {
      const auto c0 = parser.qubit_operand();
      parser.expect( "," );
      const auto c1 = parser.qubit_operand();
      parser.expect( "," );
      const auto target = parser.qubit_operand();
      parser.expect( ";" );
      circuit.ccx( c0, c1, target );
    }
    else if ( word == "measure" )
    {
      const auto qubit = parser.qubit_operand();
      parser.expect( "-" );
      parser.expect( ">" );
      parser.skip_until_semicolon();
      circuit.measure( qubit );
    }
    else if ( word == "barrier" )
    {
      parser.skip_until_semicolon();
      circuit.barrier();
    }
    else
    {
      throw std::invalid_argument( "read_qasm: unsupported statement '" + word + "'" );
    }
  }
  return circuit;
}

} // namespace qda
