/*! \file qsharp.hpp
 *  \brief Q# code emission: RevKit as a Q# pre-processor (paper Sec. VIII).
 *
 *  In the paper's second tool flow, RevKit is invoked ahead of time to
 *  produce *Q# native code* for the permutation oracle (Fig. 10), which
 *  the Q# compiler then builds together with the hidden shift driver
 *  (Fig. 9).  This module reproduces that pre-processing step: it turns
 *  a compiled Clifford+T circuit into a Q# operation with
 *  `adjoint auto` / `controlled auto` variants, and can emit the full
 *  PermOracle namespace including the BentFunction helper of Fig. 10.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <string>

namespace qda
{

/*! \brief Emits one Q# operation whose body replays `circuit`.
 *
 *  The circuit must be measurement-free and expressed in the gate set
 *  {H, X, Y, Z, S, T (and adjoints), Rz, CNOT, CCNOT, CZ, SWAP}.
 */
std::string write_qsharp_operation( const qcircuit& circuit, const std::string& operation_name );

/*! \brief Emits the full Microsoft.Quantum.PermOracle namespace of
 *         paper Fig. 10: the permutation oracle operation plus the
 *         BentFunctionImpl/BentFunction pair for the Maiorana-McFarland
 *         instance with `half_vars` variables per register.
 */
std::string write_qsharp_perm_oracle_namespace( const qcircuit& permutation_oracle,
                                                uint32_t half_vars );

/*! \brief Emits the Microsoft.Quantum.HiddenShift namespace of paper
 *         Fig. 9: the correlation-algorithm driver operation that takes
 *         the Ufstar/Ug oracles as operation-valued arguments.
 */
std::string write_qsharp_hidden_shift_namespace();

} // namespace qda
