#include "quantum/dag.hpp"

#include <algorithm>

namespace qda
{

gate_dag::gate_dag( const qcircuit& circuit )
{
  for ( const auto& gate : circuit.gates() )
  {
    gates_.push_back( gate );
  }
  const uint32_t n = size();
  successors_.resize( n );
  num_predecessors_.assign( n, 0u );
  two_qubit_.assign( n, 0 );

  /* last gate seen on each wire; barriers and global phases fence all */
  std::vector<int64_t> last( circuit.num_qubits(), -1 );
  std::vector<uint32_t> wires;
  for ( uint32_t index = 0u; index < n; ++index )
  {
    const auto& gate = gates_[index];
    wires.clear();
    if ( gate.kind == gate_kind::barrier || gate.kind == gate_kind::global_phase ||
         gate.kind == gate_kind::measure )
    {
      for ( uint32_t q = 0u; q < circuit.num_qubits(); ++q )
      {
        wires.push_back( q );
      }
    }
    else
    {
      wires = gate.qubits();
    }
    two_qubit_[index] = gate.kind == gate_kind::cx || gate.kind == gate_kind::cz ||
                        gate.kind == gate_kind::swap;

    uint32_t preds = 0u;
    for ( const auto wire : wires )
    {
      const int64_t previous = last[wire];
      if ( previous >= 0 )
      {
        auto& succ = successors_[static_cast<uint32_t>( previous )];
        if ( std::find( succ.begin(), succ.end(), index ) == succ.end() )
        {
          succ.push_back( index );
          ++preds;
        }
      }
      last[wire] = index;
    }
    num_predecessors_[index] = preds;
    if ( preds == 0u )
    {
      roots_.push_back( index );
    }
  }
}

} // namespace qda
