#include "quantum/qcircuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace qda
{

qcircuit::qcircuit( uint32_t num_qubits ) : core_( num_qubits ) {}

qgate_view qcircuit::gate( size_t index ) const
{
  if ( index >= core_.num_gates() )
  {
    throw std::out_of_range( "qcircuit::gate: index out of range" );
  }
  return core_.gate_at( index );
}

void qcircuit::check_qubit( uint32_t qubit ) const
{
  if ( qubit >= num_qubits() )
  {
    throw std::invalid_argument( "qcircuit: qubit index out of range" );
  }
}

void qcircuit::check_operands( const qgate_view& gate ) const
{
  if ( gate.kind == gate_kind::barrier || gate.kind == gate_kind::global_phase )
  {
    return;
  }
  check_qubit( gate.target );
  if ( gate.kind == gate_kind::swap )
  {
    check_qubit( gate.target2 );
    if ( gate.target == gate.target2 )
    {
      throw std::invalid_argument( "qcircuit::add_gate: swap needs two distinct qubits" );
    }
  }
  /* controls must be distinct and differ from the target */
  for ( size_t i = 0u; i < gate.controls.size(); ++i )
  {
    check_qubit( gate.controls[i] );
    if ( gate.controls[i] == gate.target )
    {
      throw std::invalid_argument( "qcircuit::add_gate: repeated operand qubits" );
    }
    for ( size_t j = i + 1u; j < gate.controls.size(); ++j )
    {
      if ( gate.controls[i] == gate.controls[j] )
      {
        throw std::invalid_argument( "qcircuit::add_gate: repeated operand qubits" );
      }
    }
  }
}

ir::gate_handle qcircuit::add_gate( const qgate& gate )
{
  return add_gate( qgate_view( gate ) );
}

ir::gate_handle qcircuit::add_gate( const qgate_view& gate )
{
  check_operands( gate );
  return core_.emplace( gate.kind, gate.controls, gate.target, gate.target2, gate.angle );
}

void qcircuit::cx( uint32_t control, uint32_t target )
{
  check_qubit( control );
  check_qubit( target );
  if ( control == target )
  {
    throw std::invalid_argument( "qcircuit::add_gate: repeated operand qubits" );
  }
  core_.emplace( gate_kind::cx, std::span<const uint32_t>( &control, 1u ), target, 0u, 0.0 );
}

void qcircuit::cz( uint32_t control, uint32_t target )
{
  check_qubit( control );
  check_qubit( target );
  if ( control == target )
  {
    throw std::invalid_argument( "qcircuit::add_gate: repeated operand qubits" );
  }
  core_.emplace( gate_kind::cz, std::span<const uint32_t>( &control, 1u ), target, 0u, 0.0 );
}

void qcircuit::swap_( uint32_t a, uint32_t b )
{
  check_qubit( a );
  check_qubit( b );
  if ( a == b )
  {
    throw std::invalid_argument( "qcircuit::add_gate: swap needs two distinct qubits" );
  }
  core_.emplace( gate_kind::swap, std::span<const uint32_t>{}, a, b, 0.0 );
}

void qcircuit::mcx( std::vector<uint32_t> controls, uint32_t target )
{
  if ( controls.empty() )
  {
    x( target );
    return;
  }
  if ( controls.size() == 1u )
  {
    cx( controls[0], target );
    return;
  }
  check_operands(
      qgate_view( gate_kind::mcx, std::span<const uint32_t>( controls ), target, 0u, 0.0 ) );
  core_.emplace( gate_kind::mcx, std::span<const uint32_t>( controls ), target, 0u, 0.0 );
}

void qcircuit::mcz( std::vector<uint32_t> controls, uint32_t target )
{
  if ( controls.empty() )
  {
    z( target );
    return;
  }
  if ( controls.size() == 1u )
  {
    cz( controls[0], target );
    return;
  }
  check_operands(
      qgate_view( gate_kind::mcz, std::span<const uint32_t>( controls ), target, 0u, 0.0 ) );
  core_.emplace( gate_kind::mcz, std::span<const uint32_t>( controls ), target, 0u, 0.0 );
}

void qcircuit::measure( uint32_t qubit )
{
  check_qubit( qubit );
  core_.emplace( gate_kind::measure, std::span<const uint32_t>{}, qubit, 0u, 0.0 );
}

void qcircuit::measure_all()
{
  for ( uint32_t qubit = 0u; qubit < num_qubits(); ++qubit )
  {
    measure( qubit );
  }
}

void qcircuit::barrier()
{
  core_.emplace( gate_kind::barrier, std::span<const uint32_t>{}, 0u, 0u, 0.0 );
}

void qcircuit::global_phase( double angle )
{
  core_.emplace( gate_kind::global_phase, std::span<const uint32_t>{}, 0u, 0u, angle );
}

void qcircuit::append( const qcircuit& other )
{
  if ( other.num_qubits() > num_qubits() )
  {
    throw std::invalid_argument( "qcircuit::append: other circuit has more qubits" );
  }
  core_.append_from( other.core_ );
}

void qcircuit::append_mapped( const qcircuit& other, const std::vector<uint32_t>& mapping )
{
  if ( mapping.size() < other.num_qubits() )
  {
    throw std::invalid_argument( "qcircuit::append_mapped: mapping too short" );
  }
  for ( const auto& view : other.gates() )
  {
    qgate gate = view.materialize();
    for ( auto& control : gate.controls )
    {
      control = mapping[control];
    }
    if ( gate.kind != gate_kind::barrier && gate.kind != gate_kind::global_phase )
    {
      gate.target = mapping[gate.target];
      if ( gate.kind == gate_kind::swap )
      {
        gate.target2 = mapping[gate.target2];
      }
    }
    add_gate( gate );
  }
}

qcircuit qcircuit::adjoint() const
{
  qcircuit result( num_qubits() );
  result.core_.reserve( num_gates() );
  for ( uint32_t slot = core_.num_slots(); slot-- > 0u; )
  {
    if ( !core_.slot_alive( slot ) )
    {
      continue;
    }
    const auto view = core_.view_at_slot( slot );
    if ( view.kind == gate_kind::barrier )
    {
      result.barrier();
      continue;
    }
    result.add_gate( view.adjoint() );
  }
  return result;
}

bool qcircuit::has_measurements() const noexcept
{
  const auto& kinds = core_.columns().kind;
  for ( uint32_t slot = 0u; slot < core_.num_slots(); ++slot )
  {
    if ( core_.slot_alive( slot ) && kinds[slot] == gate_kind::measure )
    {
      return true;
    }
  }
  return false;
}

std::vector<uint32_t> qcircuit::measured_qubits() const
{
  std::vector<uint32_t> result;
  const auto& cols = core_.columns();
  for ( uint32_t slot = 0u; slot < core_.num_slots(); ++slot )
  {
    if ( core_.slot_alive( slot ) && cols.kind[slot] == gate_kind::measure )
    {
      result.push_back( cols.target[slot] );
    }
  }
  return result;
}

std::string qcircuit::to_string() const
{
  std::ostringstream out;
  for ( const auto& gate : gates() )
  {
    out << gate.to_string() << '\n';
  }
  return out.str();
}

std::string qcircuit::to_ascii() const
{
  std::vector<std::string> rows( num_qubits() );
  for ( uint32_t q = 0u; q < num_qubits(); ++q )
  {
    rows[q] = "q" + std::to_string( q ) + ( q < 10u ? " " : "" ) + ": ";
  }
  const auto pad_to = [&]( size_t width ) {
    for ( auto& row : rows )
    {
      row.resize( std::max( row.size(), width ), '-' );
    }
  };
  for ( const auto& gate : gates() )
  {
    if ( gate.kind == gate_kind::barrier || gate.kind == gate_kind::global_phase )
    {
      continue;
    }
    size_t width = 0u;
    for ( const auto& row : rows )
    {
      width = std::max( width, row.size() );
    }
    pad_to( width );
    std::string label;
    switch ( gate.kind )
    {
    case gate_kind::measure:
      label = "M";
      break;
    case gate_kind::cx:
    case gate_kind::mcx:
      label = "X";
      break;
    case gate_kind::cz:
    case gate_kind::mcz:
      label = "Z";
      break;
    case gate_kind::swap:
      label = "x";
      break;
    default:
      label = gate_name( gate.kind );
      break;
    }
    for ( const auto control : gate.controls )
    {
      rows[control] += "*";
      rows[control].resize( width + std::max<size_t>( label.size(), 1u ), '-' );
    }
    rows[gate.target] += label;
    if ( gate.kind == gate_kind::swap )
    {
      rows[gate.target2] += "x";
    }
    pad_to( width + std::max<size_t>( label.size(), 1u ) + 1u );
  }
  std::string result;
  for ( auto& row : rows )
  {
    result += row;
    result += '\n';
  }
  return result;
}

void qcircuit::add_simple( gate_kind kind, uint32_t qubit )
{
  check_qubit( qubit );
  core_.emplace( kind, std::span<const uint32_t>{}, qubit, 0u, 0.0 );
}

void qcircuit::add_rotation( gate_kind kind, uint32_t qubit, double angle )
{
  check_qubit( qubit );
  core_.emplace( kind, std::span<const uint32_t>{}, qubit, 0u, angle );
}

circuit_statistics compute_statistics( const qcircuit& circuit )
{
  circuit_statistics stats;
  stats.num_qubits = circuit.num_qubits();

  std::vector<uint64_t> qubit_depth( circuit.num_qubits(), 0u );
  std::vector<uint64_t> qubit_t_depth( circuit.num_qubits(), 0u );

  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::barrier || gate.kind == gate_kind::global_phase )
    {
      continue;
    }
    ++stats.num_gates;
    if ( gate.kind == gate_kind::measure )
    {
      ++stats.num_measurements;
    }
    if ( gate.is_t_gate() )
    {
      ++stats.t_count;
    }
    if ( gate.kind == gate_kind::h )
    {
      ++stats.h_count;
    }
    if ( gate.kind == gate_kind::cx )
    {
      ++stats.cnot_count;
    }
    if ( gate.kind == gate_kind::cx || gate.kind == gate_kind::cz ||
         gate.kind == gate_kind::swap )
    {
      ++stats.two_qubit_count;
    }
    if ( gate.is_clifford() )
    {
      ++stats.clifford_count;
    }

    const auto qubits = gate.qubits();
    uint64_t level = 0u;
    uint64_t t_level = 0u;
    for ( const auto qubit : qubits )
    {
      level = std::max( level, qubit_depth[qubit] );
      t_level = std::max( t_level, qubit_t_depth[qubit] );
    }
    ++level;
    if ( gate.is_t_gate() )
    {
      ++t_level;
    }
    for ( const auto qubit : qubits )
    {
      qubit_depth[qubit] = level;
      qubit_t_depth[qubit] = t_level;
    }
  }

  for ( uint32_t qubit = 0u; qubit < circuit.num_qubits(); ++qubit )
  {
    stats.depth = std::max( stats.depth, qubit_depth[qubit] );
    stats.t_depth = std::max( stats.t_depth, qubit_t_depth[qubit] );
  }
  return stats;
}

std::string format_statistics( const circuit_statistics& stats )
{
  std::ostringstream out;
  out << "qubits: " << stats.num_qubits
      << "  gates: " << stats.num_gates
      << "  T-count: " << stats.t_count
      << "  T-depth: " << stats.t_depth
      << "  H: " << stats.h_count
      << "  CNOT: " << stats.cnot_count
      << "  2q: " << stats.two_qubit_count
      << "  depth: " << stats.depth;
  return out.str();
}

} // namespace qda
