#include "quantum/qcircuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace qda
{

qcircuit::qcircuit( uint32_t num_qubits ) : num_qubits_( num_qubits ) {}

void qcircuit::add_gate( qgate gate )
{
  for ( const auto qubit : gate.qubits() )
  {
    check_qubit( qubit );
  }
  /* controls must be distinct and differ from the target */
  auto sorted = gate.controls;
  std::sort( sorted.begin(), sorted.end() );
  if ( std::adjacent_find( sorted.begin(), sorted.end() ) != sorted.end() ||
       std::find( sorted.begin(), sorted.end(), gate.target ) != sorted.end() )
  {
    throw std::invalid_argument( "qcircuit::add_gate: repeated operand qubits" );
  }
  if ( gate.kind == gate_kind::swap && gate.target == gate.target2 )
  {
    throw std::invalid_argument( "qcircuit::add_gate: swap needs two distinct qubits" );
  }
  gates_.push_back( std::move( gate ) );
}

void qcircuit::cx( uint32_t control, uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::cx;
  gate.controls = { control };
  gate.target = target;
  add_gate( std::move( gate ) );
}

void qcircuit::cz( uint32_t control, uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::cz;
  gate.controls = { control };
  gate.target = target;
  add_gate( std::move( gate ) );
}

void qcircuit::swap_gate( uint32_t a, uint32_t b )
{
  qgate gate;
  gate.kind = gate_kind::swap;
  gate.target = a;
  gate.target2 = b;
  add_gate( std::move( gate ) );
}

void qcircuit::mcx( std::vector<uint32_t> controls, uint32_t target )
{
  if ( controls.empty() )
  {
    x( target );
    return;
  }
  if ( controls.size() == 1u )
  {
    cx( controls[0], target );
    return;
  }
  qgate gate;
  gate.kind = gate_kind::mcx;
  gate.controls = std::move( controls );
  gate.target = target;
  add_gate( std::move( gate ) );
}

void qcircuit::mcz( std::vector<uint32_t> controls, uint32_t target )
{
  if ( controls.empty() )
  {
    z( target );
    return;
  }
  if ( controls.size() == 1u )
  {
    cz( controls[0], target );
    return;
  }
  qgate gate;
  gate.kind = gate_kind::mcz;
  gate.controls = std::move( controls );
  gate.target = target;
  add_gate( std::move( gate ) );
}

void qcircuit::measure( uint32_t qubit )
{
  qgate gate;
  gate.kind = gate_kind::measure;
  gate.target = qubit;
  add_gate( std::move( gate ) );
}

void qcircuit::measure_all()
{
  for ( uint32_t qubit = 0u; qubit < num_qubits_; ++qubit )
  {
    measure( qubit );
  }
}

void qcircuit::barrier()
{
  qgate gate;
  gate.kind = gate_kind::barrier;
  gates_.push_back( std::move( gate ) );
}

void qcircuit::global_phase( double angle )
{
  qgate gate;
  gate.kind = gate_kind::global_phase;
  gate.angle = angle;
  gates_.push_back( std::move( gate ) );
}

void qcircuit::append( const qcircuit& other )
{
  if ( other.num_qubits_ > num_qubits_ )
  {
    throw std::invalid_argument( "qcircuit::append: other circuit has more qubits" );
  }
  for ( const auto& gate : other.gates_ )
  {
    gates_.push_back( gate );
  }
}

void qcircuit::append_mapped( const qcircuit& other, const std::vector<uint32_t>& mapping )
{
  if ( mapping.size() < other.num_qubits_ )
  {
    throw std::invalid_argument( "qcircuit::append_mapped: mapping too short" );
  }
  for ( auto gate : other.gates_ )
  {
    for ( auto& control : gate.controls )
    {
      control = mapping[control];
    }
    if ( gate.kind != gate_kind::barrier && gate.kind != gate_kind::global_phase )
    {
      gate.target = mapping[gate.target];
      if ( gate.kind == gate_kind::swap )
      {
        gate.target2 = mapping[gate.target2];
      }
    }
    add_gate( std::move( gate ) );
  }
}

qcircuit qcircuit::adjoint() const
{
  qcircuit result( num_qubits_ );
  for ( auto it = gates_.rbegin(); it != gates_.rend(); ++it )
  {
    if ( it->kind == gate_kind::barrier )
    {
      result.barrier();
      continue;
    }
    result.add_gate( it->adjoint() );
  }
  return result;
}

bool qcircuit::has_measurements() const noexcept
{
  return std::any_of( gates_.begin(), gates_.end(),
                      []( const qgate& g ) { return g.kind == gate_kind::measure; } );
}

std::vector<uint32_t> qcircuit::measured_qubits() const
{
  std::vector<uint32_t> result;
  for ( const auto& gate : gates_ )
  {
    if ( gate.kind == gate_kind::measure )
    {
      result.push_back( gate.target );
    }
  }
  return result;
}

std::string qcircuit::to_string() const
{
  std::ostringstream out;
  for ( const auto& gate : gates_ )
  {
    out << gate.to_string() << '\n';
  }
  return out.str();
}

std::string qcircuit::to_ascii() const
{
  std::vector<std::string> rows( num_qubits_ );
  for ( uint32_t q = 0u; q < num_qubits_; ++q )
  {
    rows[q] = "q" + std::to_string( q ) + ( q < 10u ? " " : "" ) + ": ";
  }
  const auto pad_to = [&]( size_t width ) {
    for ( auto& row : rows )
    {
      row.resize( std::max( row.size(), width ), '-' );
    }
  };
  for ( const auto& gate : gates_ )
  {
    if ( gate.kind == gate_kind::barrier || gate.kind == gate_kind::global_phase )
    {
      continue;
    }
    size_t width = 0u;
    for ( const auto& row : rows )
    {
      width = std::max( width, row.size() );
    }
    pad_to( width );
    std::string label;
    switch ( gate.kind )
    {
    case gate_kind::measure:
      label = "M";
      break;
    case gate_kind::cx:
    case gate_kind::mcx:
      label = "X";
      break;
    case gate_kind::cz:
    case gate_kind::mcz:
      label = "Z";
      break;
    case gate_kind::swap:
      label = "x";
      break;
    default:
      label = gate_name( gate.kind );
      break;
    }
    for ( const auto control : gate.controls )
    {
      rows[control] += "*";
      rows[control].resize( width + std::max<size_t>( label.size(), 1u ), '-' );
    }
    rows[gate.target] += label;
    if ( gate.kind == gate_kind::swap )
    {
      rows[gate.target2] += "x";
    }
    pad_to( width + std::max<size_t>( label.size(), 1u ) + 1u );
  }
  std::string result;
  for ( auto& row : rows )
  {
    result += row;
    result += '\n';
  }
  return result;
}

void qcircuit::add_simple( gate_kind kind, uint32_t qubit )
{
  qgate gate;
  gate.kind = kind;
  gate.target = qubit;
  add_gate( std::move( gate ) );
}

void qcircuit::add_rotation( gate_kind kind, uint32_t qubit, double angle )
{
  qgate gate;
  gate.kind = kind;
  gate.target = qubit;
  gate.angle = angle;
  add_gate( std::move( gate ) );
}

void qcircuit::check_qubit( uint32_t qubit ) const
{
  if ( qubit >= num_qubits_ )
  {
    throw std::invalid_argument( "qcircuit: qubit index out of range" );
  }
}

circuit_statistics compute_statistics( const qcircuit& circuit )
{
  circuit_statistics stats;
  stats.num_qubits = circuit.num_qubits();

  std::vector<uint64_t> qubit_depth( circuit.num_qubits(), 0u );
  std::vector<uint64_t> qubit_t_depth( circuit.num_qubits(), 0u );

  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::barrier || gate.kind == gate_kind::global_phase )
    {
      continue;
    }
    ++stats.num_gates;
    if ( gate.kind == gate_kind::measure )
    {
      ++stats.num_measurements;
    }
    if ( gate.is_t_gate() )
    {
      ++stats.t_count;
    }
    if ( gate.kind == gate_kind::h )
    {
      ++stats.h_count;
    }
    if ( gate.kind == gate_kind::cx )
    {
      ++stats.cnot_count;
    }
    if ( gate.kind == gate_kind::cx || gate.kind == gate_kind::cz ||
         gate.kind == gate_kind::swap )
    {
      ++stats.two_qubit_count;
    }
    if ( gate.is_clifford() )
    {
      ++stats.clifford_count;
    }

    const auto qubits = gate.qubits();
    uint64_t level = 0u;
    uint64_t t_level = 0u;
    for ( const auto qubit : qubits )
    {
      level = std::max( level, qubit_depth[qubit] );
      t_level = std::max( t_level, qubit_t_depth[qubit] );
    }
    ++level;
    if ( gate.is_t_gate() )
    {
      ++t_level;
    }
    for ( const auto qubit : qubits )
    {
      qubit_depth[qubit] = level;
      qubit_t_depth[qubit] = t_level;
    }
  }

  for ( uint32_t qubit = 0u; qubit < circuit.num_qubits(); ++qubit )
  {
    stats.depth = std::max( stats.depth, qubit_depth[qubit] );
    stats.t_depth = std::max( stats.t_depth, qubit_t_depth[qubit] );
  }
  return stats;
}

std::string format_statistics( const circuit_statistics& stats )
{
  std::ostringstream out;
  out << "qubits: " << stats.num_qubits
      << "  gates: " << stats.num_gates
      << "  T-count: " << stats.t_count
      << "  T-depth: " << stats.t_depth
      << "  H: " << stats.h_count
      << "  CNOT: " << stats.cnot_count
      << "  2q: " << stats.two_qubit_count
      << "  depth: " << stats.depth;
  return out.str();
}

} // namespace qda
