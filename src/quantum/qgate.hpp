/*! \file qgate.hpp
 *  \brief Quantum gates: the Clifford+T library plus rotations and
 *         measurements.
 *
 *  This is the "assembly" level of the flow (paper Sec. I): the gate
 *  set a physical machine or simulator understands.  Controls at this
 *  level are positive; negative controls from the reversible level are
 *  eliminated during mapping by X conjugation.
 */
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qda
{

/*! \brief Gate kinds of the quantum IR. */
enum class gate_kind
{
  h,            /*!< Hadamard */
  x,            /*!< Pauli-X */
  y,            /*!< Pauli-Y */
  z,            /*!< Pauli-Z */
  s,            /*!< phase gate S = sqrt(Z) */
  sdg,          /*!< S dagger */
  t,            /*!< T = sqrt(S) */
  tdg,          /*!< T dagger */
  rx,           /*!< X rotation by `angle` */
  ry,           /*!< Y rotation by `angle` */
  rz,           /*!< Z rotation by `angle` */
  cx,           /*!< controlled NOT */
  cz,           /*!< controlled Z */
  swap,         /*!< SWAP */
  mcx,          /*!< multi-controlled X (pre-mapping IR only) */
  mcz,          /*!< multi-controlled Z (pre-mapping IR only) */
  measure,      /*!< computational basis measurement into classical bit */
  barrier,      /*!< scheduling barrier */
  global_phase  /*!< global phase e^{i angle} (bookkeeping) */
};

/*! \brief One gate instance. */
struct qgate
{
  gate_kind kind = gate_kind::h;
  std::vector<uint32_t> controls; /*!< positive control qubits */
  uint32_t target = 0u;           /*!< target qubit (first target for swap) */
  uint32_t target2 = 0u;          /*!< second target (swap only) */
  double angle = 0.0;             /*!< rotation angle / global phase */

  /*! \brief All qubits the gate touches. */
  std::vector<uint32_t> qubits() const;

  /*! \brief True for measure/barrier pseudo-gates. */
  bool is_unitary() const noexcept
  {
    return kind != gate_kind::measure && kind != gate_kind::barrier;
  }

  /*! \brief True for t/tdg (the T-count unit). */
  bool is_t_gate() const noexcept { return kind == gate_kind::t || kind == gate_kind::tdg; }

  /*! \brief True if the gate belongs to the Clifford group. */
  bool is_clifford() const noexcept;

  /*! \brief The adjoint gate.  Throws std::logic_error for measurements. */
  qgate adjoint() const;

  bool operator==( const qgate& other ) const = default;

  std::string to_string() const;
};

/*! \brief Zero-copy reference to one gate of a circuit.
 *
 *  The scalar fields are value copies of the SoA columns; `controls`
 *  is a span into the circuit's shared operand slab (or into a
 *  materialized gate's control vector).  A view stays valid until the
 *  owning circuit is mutated.  Converts implicitly to `qgate` where a
 *  materialized copy is needed (e.g. `qcircuit::add_gate`).
 */
struct qgate_view
{
  gate_kind kind = gate_kind::h;
  std::span<const uint32_t> controls; /*!< positive control qubits */
  uint32_t target = 0u;
  uint32_t target2 = 0u;
  double angle = 0.0;

  qgate_view() = default;
  qgate_view( gate_kind kind_, std::span<const uint32_t> controls_, uint32_t target_,
              uint32_t target2_, double angle_ )
      : kind( kind_ ), controls( controls_ ), target( target_ ), target2( target2_ ),
        angle( angle_ )
  {
  }
  /*! \brief View of a materialized gate (spans its control vector). */
  qgate_view( const qgate& gate )
      : kind( gate.kind ), controls( gate.controls ), target( gate.target ),
        target2( gate.target2 ), angle( gate.angle )
  {
  }

  /*! \brief All qubits the gate touches. */
  std::vector<uint32_t> qubits() const;

  bool is_unitary() const noexcept
  {
    return kind != gate_kind::measure && kind != gate_kind::barrier;
  }
  bool is_t_gate() const noexcept { return kind == gate_kind::t || kind == gate_kind::tdg; }
  bool is_clifford() const noexcept;

  /*! \brief Materialized copy (allocates the control vector). */
  qgate materialize() const;
  operator qgate() const { return materialize(); }

  /*! \brief The adjoint gate.  Throws std::logic_error for measurements. */
  qgate adjoint() const;

  std::string to_string() const;
};

/*! \brief Structural equality (operand spans compared element-wise). */
bool operator==( const qgate_view& a, const qgate_view& b ) noexcept;

/*! \brief The 2x2 matrix of a single-qubit gate kind (throws for others). */
std::array<std::complex<double>, 4> single_qubit_matrix( gate_kind kind, double angle );

/*! \brief Printable gate name ("h", "tdg", ...). */
std::string gate_name( gate_kind kind );

} // namespace qda
