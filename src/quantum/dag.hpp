/*! \file dag.hpp
 *  \brief Gate dependency DAG view over a quantum circuit.
 *
 *  Routing and scheduling passes reason about which gates *could* run
 *  next rather than the linear gate order: gate B depends on gate A iff
 *  they share a qubit and A comes first.  `gate_dag` materializes that
 *  partial order once (per-qubit last-writer scan, O(gates)) and hands
 *  out zero-copy `qgate_view`s of the underlying circuit, which must
 *  outlive the DAG unmutated.  Barriers, measurements and global
 *  phases act as full scheduling fences, so schedulers cannot reorder
 *  measurement outcomes against their logical bit order.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <vector>

namespace qda
{

/*! \brief Immutable dependency DAG over a circuit's gates. */
class gate_dag
{
public:
  explicit gate_dag( const qcircuit& circuit );

  uint32_t size() const noexcept { return static_cast<uint32_t>( gates_.size() ); }

  /*! \brief Zero-copy view of gate `index` (circuit order). */
  const qgate_view& gate( uint32_t index ) const { return gates_[index]; }

  /*! \brief Gates that depend directly on `index` (deduplicated). */
  const std::vector<uint32_t>& successors( uint32_t index ) const
  {
    return successors_[index];
  }

  /*! \brief Number of direct dependencies of `index`. */
  uint32_t num_predecessors( uint32_t index ) const { return num_predecessors_[index]; }

  /*! \brief Gates with no dependencies, in circuit order. */
  const std::vector<uint32_t>& roots() const noexcept { return roots_; }

  /*! \brief True if the gate constrains routing (two distinct wires). */
  bool is_two_qubit( uint32_t index ) const { return two_qubit_[index]; }

private:
  std::vector<qgate_view> gates_;
  std::vector<std::vector<uint32_t>> successors_;
  std::vector<uint32_t> num_predecessors_;
  std::vector<uint32_t> roots_;
  std::vector<char> two_qubit_;
};

} // namespace qda
