/*! \file qcircuit.hpp
 *  \brief Quantum circuits: gate cascades over qubits with builder API.
 *
 *  The quantum circuit is the compilation target of the reversible
 *  level and the input of the hardware mapping and simulation stages.
 *  Gate order follows circuit reading order: the first gate of
 *  `gates()` is applied first (paper Fig. 1: time moves left to right).
 *
 *  Since the unified-IR redesign this class is a thin typed facade over
 *  `qda::ir::circuit<cliffordt_policy>`: gate kinds, targets, operand
 *  slab offsets and angle-pool indices live in struct-of-arrays
 *  columns, `gates()` is a zero-copy view yielding `qgate_view`, and
 *  passes mutate in place through `rewrite()` instead of rebuilding
 *  gate vectors.
 */
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/cliffordt_policy.hpp"
#include "quantum/qgate.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace qda
{

/*! \brief A quantum circuit over a fixed number of qubits. */
class qcircuit
{
public:
  using core_type = ir::circuit<ir::cliffordt_policy>;
  using gates_view = core_type::gates_view;
  using rewriter = core_type::rewriter;

  explicit qcircuit( uint32_t num_qubits );

  uint32_t num_qubits() const noexcept { return core_.num_wires(); }
  size_t num_gates() const noexcept { return core_.num_gates(); }
  bool empty() const noexcept { return core_.empty(); }

  /*! \brief Zero-copy view of the alive gates in circuit order. */
  gates_view gates() const noexcept { return core_.gates(); }
  qgate_view gate( size_t index ) const;

  ir::gate_handle add_gate( const qgate& gate );
  /*! \brief Appends straight from a view (no control-vector copy). */
  ir::gate_handle add_gate( const qgate_view& gate );

  /* single-qubit builders */
  void h( uint32_t qubit ) { add_simple( gate_kind::h, qubit ); }
  void x( uint32_t qubit ) { add_simple( gate_kind::x, qubit ); }
  void y( uint32_t qubit ) { add_simple( gate_kind::y, qubit ); }
  void z( uint32_t qubit ) { add_simple( gate_kind::z, qubit ); }
  void s( uint32_t qubit ) { add_simple( gate_kind::s, qubit ); }
  void sdg( uint32_t qubit ) { add_simple( gate_kind::sdg, qubit ); }
  void t( uint32_t qubit ) { add_simple( gate_kind::t, qubit ); }
  void tdg( uint32_t qubit ) { add_simple( gate_kind::tdg, qubit ); }
  void rx( uint32_t qubit, double angle ) { add_rotation( gate_kind::rx, qubit, angle ); }
  void ry( uint32_t qubit, double angle ) { add_rotation( gate_kind::ry, qubit, angle ); }
  void rz( uint32_t qubit, double angle ) { add_rotation( gate_kind::rz, qubit, angle ); }

  /* multi-qubit builders */
  void cx( uint32_t control, uint32_t target );
  void cz( uint32_t control, uint32_t target );
  void swap_( uint32_t a, uint32_t b );
  void mcx( std::vector<uint32_t> controls, uint32_t target );
  void mcz( std::vector<uint32_t> controls, uint32_t target );
  void ccx( uint32_t c0, uint32_t c1, uint32_t target ) { mcx( { c0, c1 }, target ); }

  void measure( uint32_t qubit );
  void measure_all();
  void barrier();
  void global_phase( double angle );

  /*! \brief Appends all gates of `other`. */
  void append( const qcircuit& other );

  /*! \brief Appends `other` with its qubit i mapped to `mapping[i]`. */
  void append_mapped( const qcircuit& other, const std::vector<uint32_t>& mapping );

  /*! \brief The adjoint circuit (reversed, each gate inverted).
   *         Throws std::logic_error if the circuit contains measurements.
   */
  qcircuit adjoint() const;

  /*! \brief The inverse circuit: dagger of each gate, reversed order
   *         (parity with `rev_circuit::inverse`; same as `adjoint`).
   */
  qcircuit inverse() const { return adjoint(); }

  /*! \brief True if the circuit contains a measurement. */
  bool has_measurements() const noexcept;

  /*! \brief Qubits measured, in gate order. */
  std::vector<uint32_t> measured_qubits() const;

  std::string to_string() const;

  /*! \brief Multi-line ASCII diagram, one row per qubit (time flows
   *         left to right, as in the paper's Fig. 1).
   */
  std::string to_ascii() const;

  bool operator==( const qcircuit& other ) const { return core_.equal( other.core_ ); }

  /* ---- unified-IR access (passes and tools) ---- */

  /*! \brief The shared gate-graph core (SoA columns, handles, slots). */
  const core_type& core() const noexcept { return core_; }
  core_type& core() noexcept { return core_; }

  /*! \brief In-place batched mutation; see `ir::circuit::rewriter`.
   *         Gates supplied to the rewriter are trusted to be valid for
   *         this circuit's qubit count.
   */
  rewriter rewrite() { return core_.rewrite(); }

private:
  void add_simple( gate_kind kind, uint32_t qubit );
  void add_rotation( gate_kind kind, uint32_t qubit, double angle );
  void check_qubit( uint32_t qubit ) const;
  void check_operands( const qgate_view& gate ) const;

  core_type core_;
};

/*! \brief Gate statistics (the `ps -c` of the paper's Eq. (5)). */
struct circuit_statistics
{
  uint32_t num_qubits = 0u;
  uint64_t num_gates = 0u;
  uint64_t t_count = 0u;        /*!< number of T/T-dagger gates */
  uint64_t t_depth = 0u;        /*!< T stages along the critical path */
  uint64_t h_count = 0u;
  uint64_t cnot_count = 0u;     /*!< cx gates */
  uint64_t two_qubit_count = 0u; /*!< cx + cz + swap */
  uint64_t clifford_count = 0u;
  uint64_t depth = 0u;          /*!< overall circuit depth */
  uint64_t num_measurements = 0u;
};

/*! \brief Computes statistics over a circuit. */
circuit_statistics compute_statistics( const qcircuit& circuit );

/*! \brief RevKit `ps -c`-style one-line summary. */
std::string format_statistics( const circuit_statistics& stats );

} // namespace qda
