/*! \file compilation_cache.hpp
 *  \brief Structural compilation keys and pluggable result-cache backends.
 *
 *  The pass manager memoizes whole compilations keyed on a *structural*
 *  fingerprint of the post-parse input: the canonical `pipeline_spec`
 *  (whitespace, empty segments and argument order are normalized away
 *  by the parser) plus the content of the initial `staged_ir`.  Two
 *  spec strings that parse to the same pipeline over the same input
 *  therefore share one cache entry -- `"revgen --hwb 6;tbs"` and
 *  `" revgen  --hwb 6 ; tbs "` dedup, as do reordered equivalent
 *  flags.
 *
 *  The cache itself is a backend interface so callers can swap the
 *  storage policy: `lru_compilation_cache` is the built-in single-lock
 *  true-LRU backend (touch-on-hit), and the compile server provides a
 *  sharded variant (`server/sharded_cache.hpp`) for concurrent
 *  workloads.
 */
#pragma once

#include "pipeline/ir.hpp"
#include "pipeline/spec_parser.hpp"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace qda
{

struct compilation_result; /* pipeline/pass_manager.hpp */

/*! \brief 128-bit structural fingerprint of one compilation input.
 *
 *  Two independently seeded 64-bit FNV-1a hashes over the same byte
 *  stream; a stale cache hit requires both halves to collide at once.
 */
struct structural_key
{
  uint64_t primary = 0u; /*!< shard/bucket selector */
  uint64_t check = 0u;   /*!< independent collision check */

  bool operator==( const structural_key& other ) const noexcept
  {
    return primary == other.primary && check == other.check;
  }
  bool operator!=( const structural_key& other ) const noexcept
  {
    return !( *this == other );
  }
};

/*! \brief Hash functor for keying containers on `structural_key`. */
struct structural_key_hash
{
  size_t operator()( const structural_key& key ) const noexcept
  {
    return static_cast<size_t>( key.primary ^ ( key.check * 0x9e3779b97f4a7c15ull ) );
  }
};

/*! \brief Structural fingerprint of (canonical spec, initial IR). */
structural_key compute_structural_key( const pipeline_spec& spec, const staged_ir& initial );

/*! \brief Fingerprint of a raw spec string with no normalization; the
 *         pre-server exact-text keying, kept as an ablation baseline
 *         (`bench_serve` measures the hit-rate gap against structural
 *         keying).
 */
structural_key compute_text_key( const std::string& raw_spec_text );

/*! \brief Compilation cache counters.
 *
 *  `hits`/`misses` count lookups, `evictions` counts entries dropped by
 *  the capacity bound, `entries` is the current size.
 */
struct cache_statistics
{
  uint64_t hits = 0u;
  uint64_t misses = 0u;
  uint64_t evictions = 0u;
  uint64_t entries = 0u;
};

/*! \brief Pluggable memoization backend of the pass manager.
 *
 *  Implementations must be safe for concurrent use: one pass manager
 *  (and the compile server built on it) calls `lookup`/`store` from
 *  many worker threads at once.
 */
class compilation_cache
{
public:
  virtual ~compilation_cache() = default;

  /*! \brief Returns the cached result, or nullptr; a hit refreshes the
   *         entry's recency.  Counts one hit or one miss.
   */
  virtual std::shared_ptr<const compilation_result> lookup( const structural_key& key ) = 0;

  /*! \brief Inserts (or refreshes) `result` under `key`, evicting the
   *         least-recently-used entries beyond capacity.
   */
  virtual void store( const structural_key& key,
                      std::shared_ptr<const compilation_result> result ) = 0;

  virtual cache_statistics statistics() const = 0;

  /*! \brief Drops every entry and zeroes the counters. */
  virtual void clear() = 0;
};

/*! \brief Built-in single-mutex true-LRU backend.
 *
 *  Replaces the original FIFO `std::map` + insertion-order deque: a
 *  hit moves the entry to the front of the recency list, so hot
 *  entries survive capacity pressure regardless of insertion order.
 */
class lru_compilation_cache final : public compilation_cache
{
public:
  explicit lru_compilation_cache( size_t max_entries );

  std::shared_ptr<const compilation_result> lookup( const structural_key& key ) override;
  void store( const structural_key& key,
              std::shared_ptr<const compilation_result> result ) override;
  cache_statistics statistics() const override;
  void clear() override;

private:
  using entry = std::pair<structural_key, std::shared_ptr<const compilation_result>>;

  size_t max_entries_;
  mutable std::mutex mutex_;
  std::list<entry> order_; /*!< front = most recently used */
  std::unordered_map<uint64_t, std::list<entry>::iterator> index_; /*!< by key.primary */
  cache_statistics stats_;
};

} // namespace qda
