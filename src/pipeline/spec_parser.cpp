#include "pipeline/spec_parser.hpp"

#include "fault/error.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace qda
{

namespace
{

bool is_name_char( char c )
{
  return std::isalnum( static_cast<unsigned char>( c ) ) != 0 || c == '_' || c == '-';
}

bool is_valid_pass_name( const std::string& name )
{
  if ( name.empty() || name.front() == '-' )
  {
    return false;
  }
  for ( const char c : name )
  {
    if ( !is_name_char( c ) )
    {
      return false;
    }
  }
  return true;
}

std::vector<std::string> tokenize( const std::string& command )
{
  std::vector<std::string> tokens;
  std::istringstream stream( command );
  std::string token;
  while ( stream >> token )
  {
    tokens.push_back( token );
  }
  return tokens;
}

std::string at_segment( uint32_t segment, size_t offset )
{
  return " at segment " + std::to_string( segment ) + " (offset " +
         std::to_string( offset ) + ")";
}

pass_invocation parse_command( const std::vector<std::string>& tokens, uint32_t segment,
                               size_t offset )
{
  pass_invocation invocation;
  invocation.name = tokens.front();
  invocation.source_segment = segment;
  invocation.source_offset = offset;
  if ( !is_valid_pass_name( invocation.name ) )
  {
    throw spec_parse_error( "pipeline spec: invalid pass name '" + invocation.name + "'" +
                                at_segment( segment, offset ),
                            segment, offset );
  }

  for ( size_t i = 1u; i < tokens.size(); ++i )
  {
    const auto& token = tokens[i];
    if ( token.rfind( "--", 0u ) == 0u )
    {
      const auto key = token.substr( 2u );
      if ( key.empty() )
      {
        throw spec_parse_error( "pipeline spec: empty option name in '" + invocation.name +
                                    "'" + at_segment( segment, offset ),
                                segment, offset );
      }
      /* `--key value` is an option; `--key` followed by another switch
       * (or nothing) is a long flag */
      if ( i + 1u < tokens.size() && tokens[i + 1u].front() != '-' )
      {
        invocation.args.add_option( key, tokens[i + 1u] );
        ++i;
      }
      else
      {
        invocation.args.add_flag( key );
      }
    }
    else if ( token.size() >= 2u && token.front() == '-' &&
              std::isalpha( static_cast<unsigned char>( token[1] ) ) != 0 )
    {
      /* short flags, possibly bundled: -c, -cv */
      for ( size_t j = 1u; j < token.size(); ++j )
      {
        invocation.args.add_flag( std::string( 1u, token[j] ) );
      }
    }
    else
    {
      invocation.args.add_positional( token );
    }
  }
  /* canonical argument order: specs differing only in flag/option order
   * parse to identical invocations (and identical cache keys) */
  invocation.args.canonicalize();
  return invocation;
}

} // namespace

std::string pass_invocation::to_string() const
{
  const auto rendered = args.to_string();
  return rendered.empty() ? name : name + " " + rendered;
}

std::string pipeline_spec::to_string() const
{
  std::string result;
  for ( const auto& invocation : passes )
  {
    if ( !result.empty() )
    {
      result += "; ";
    }
    result += invocation.to_string();
  }
  return result;
}

pipeline_spec parse_pipeline( const std::string& text )
{
  pipeline_spec spec;
  std::string command;
  uint32_t segment = 0u;                      /* 1-based, non-empty commands only */
  size_t command_offset = std::string::npos;  /* offset of the first token char */
  const auto flush = [&]() {
    const auto tokens = tokenize( command );
    if ( !tokens.empty() )
    {
      ++segment;
      spec.passes.push_back( parse_command( tokens, segment, command_offset ) );
    }
    command.clear();
    command_offset = std::string::npos;
  };
  for ( size_t pos = 0u; pos < text.size(); ++pos )
  {
    const char c = text[pos];
    if ( c == ';' || c == '\n' )
    {
      flush();
    }
    else
    {
      if ( command_offset == std::string::npos &&
           std::isspace( static_cast<unsigned char>( c ) ) == 0 )
      {
        command_offset = pos;
      }
      command += c;
    }
  }
  flush();
  return spec;
}

stage validate_pipeline( const pipeline_spec& spec, const pass_registry& registry,
                         stage initial )
{
  stage current = initial;
  uint32_t index = 0u;
  for ( const auto& invocation : spec.passes )
  {
    ++index;
    /* programmatically built invocations carry no source location;
     * fall back to their position in the spec */
    const auto segment = invocation.source_segment != 0u ? invocation.source_segment : index;
    const auto offset = invocation.source_offset;
    if ( !registry.contains( invocation.name ) )
    {
      throw spec_parse_error( "pipeline spec: pass '" + invocation.name + "' unknown" +
                                  at_segment( segment, offset ),
                              segment, offset );
    }
    const auto& info = registry.at( invocation.name );
    try
    {
      info.check_arguments( invocation.args );
    }
    catch ( const spec_parse_error& )
    {
      throw;
    }
    catch ( const std::invalid_argument& e )
    {
      throw spec_parse_error( std::string( e.what() ) + at_segment( segment, offset ),
                              segment, offset );
    }
    if ( !info.accepts_stage( current ) )
    {
      throw spec_stage_error( std::string( "pipeline spec: pass '" ) + invocation.name +
                                  "' cannot run at stage '" + stage_name( current ) + "'" +
                                  at_segment( segment, offset ),
                              segment );
    }
    current = info.produces.value_or( current );
  }
  return current;
}

} // namespace qda
