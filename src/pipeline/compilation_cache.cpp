#include "pipeline/compilation_cache.hpp"

#include "pipeline/pass_manager.hpp"
#include "telemetry/metrics.hpp"

namespace qda
{

namespace
{

/* ---- FNV-1a fingerprinting ---- */

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr uint64_t fnv_prime = 0x100000001b3ull;

/*! Second, independent seed for the collision-check fingerprint. */
constexpr uint64_t check_seed = 0x9e3779b97f4a7c15ull;

void hash_bytes( uint64_t& state, const void* data, size_t size )
{
  const auto* bytes = static_cast<const unsigned char*>( data );
  for ( size_t i = 0u; i < size; ++i )
  {
    state ^= bytes[i];
    state *= fnv_prime;
  }
}

void hash_string( uint64_t& state, const std::string& text )
{
  const auto size = static_cast<uint64_t>( text.size() );
  hash_bytes( state, &size, sizeof( size ) );
  hash_bytes( state, text.data(), text.size() );
}

void hash_u64( uint64_t& state, uint64_t value )
{
  hash_bytes( state, &value, sizeof( value ) );
}

/*! \brief FNV-1a over the initial IR and canonical spec, from `seed`;
 *         two different seeds give two independent fingerprints.
 */
uint64_t input_fingerprint( const pipeline_spec& spec, const staged_ir& initial,
                            uint64_t seed )
{
  uint64_t state = seed;
  hash_u64( state, static_cast<uint64_t>( initial.current ) );
  /* every optional section hashes a presence marker, and variable-length
   * sections a count, so the byte stream is injective over IR values */
  hash_u64( state, initial.target_permutation ? 1u : 0u );
  if ( initial.target_permutation )
  {
    hash_u64( state, initial.target_permutation->num_vars() );
    for ( const auto image : initial.target_permutation->images() )
    {
      hash_u64( state, image );
    }
  }
  hash_u64( state, initial.reversible ? 1u : 0u );
  if ( initial.reversible )
  {
    hash_u64( state, initial.reversible->num_lines() );
    hash_u64( state, initial.reversible->num_gates() );
    for ( const auto& gate : initial.reversible->gates() )
    {
      hash_u64( state, gate.controls );
      hash_u64( state, gate.polarity );
      hash_u64( state, gate.target );
    }
  }
  hash_u64( state, initial.quantum ? 1u : 0u );
  if ( initial.quantum )
  {
    hash_u64( state, initial.quantum->num_helper_qubits );
    hash_string( state, initial.quantum->circuit.to_string() );
  }
  hash_u64( state, initial.mapped ? 1u : 0u );
  if ( initial.mapped )
  {
    hash_string( state, initial.mapped->circuit.to_string() );
  }
  hash_u64( state, initial.last_statistics ? 1u : 0u );
  if ( initial.last_statistics )
  {
    const auto& s = *initial.last_statistics;
    for ( const uint64_t value : { uint64_t{ s.num_qubits }, s.num_gates, s.t_count, s.t_depth,
                                   s.h_count, s.cnot_count, s.two_qubit_count, s.clifford_count,
                                   s.depth, s.num_measurements } )
    {
      hash_u64( state, value );
    }
  }
  hash_string( state, spec.to_string() );
  return state;
}

} // namespace

structural_key compute_structural_key( const pipeline_spec& spec, const staged_ir& initial )
{
  return { input_fingerprint( spec, initial, fnv_offset ),
           input_fingerprint( spec, initial, check_seed ) };
}

structural_key compute_text_key( const std::string& raw_spec_text )
{
  uint64_t primary = fnv_offset;
  uint64_t check = check_seed;
  hash_string( primary, raw_spec_text );
  hash_string( check, raw_spec_text );
  return { primary, check };
}

/* ---------------------------------------------------------------- */
/* lru_compilation_cache                                            */
/* ---------------------------------------------------------------- */

lru_compilation_cache::lru_compilation_cache( size_t max_entries )
    : max_entries_( max_entries )
{
}

std::shared_ptr<const compilation_result>
lru_compilation_cache::lookup( const structural_key& key )
{
  std::lock_guard<std::mutex> guard( mutex_ );
  const auto it = index_.find( key.primary );
  /* the primary key is a non-cryptographic 64-bit hash; a stale hit
   * requires the independent check fingerprint to collide as well */
  if ( it == index_.end() || !( it->second->first == key ) )
  {
    ++stats_.misses;
    QDA_COUNT( "pipeline.cache.miss" );
    return nullptr;
  }
  ++stats_.hits;
  QDA_COUNT( "pipeline.cache.hit" );
  order_.splice( order_.begin(), order_, it->second ); /* touch-on-hit */
  return it->second->second;
}

void lru_compilation_cache::store( const structural_key& key,
                                   std::shared_ptr<const compilation_result> result )
{
  if ( max_entries_ == 0u )
  {
    return;
  }
  std::lock_guard<std::mutex> guard( mutex_ );
  const auto it = index_.find( key.primary );
  if ( it != index_.end() )
  {
    /* refresh (or replace a primary-hash collision with the fresh one) */
    it->second->first = key;
    it->second->second = std::move( result );
    order_.splice( order_.begin(), order_, it->second );
  }
  else
  {
    order_.emplace_front( key, std::move( result ) );
    index_.emplace( key.primary, order_.begin() );
    while ( order_.size() > max_entries_ )
    {
      index_.erase( order_.back().first.primary );
      order_.pop_back();
      ++stats_.evictions;
      QDA_COUNT( "pipeline.cache.evict" );
    }
  }
  stats_.entries = order_.size();
}

cache_statistics lru_compilation_cache::statistics() const
{
  std::lock_guard<std::mutex> guard( mutex_ );
  return stats_;
}

void lru_compilation_cache::clear()
{
  std::lock_guard<std::mutex> guard( mutex_ );
  order_.clear();
  index_.clear();
  stats_ = cache_statistics{};
}

} // namespace qda
