/*! \file spec_parser.hpp
 *  \brief Parser for RevKit shell pipeline specifications.
 *
 *  The paper drives RevKit with command strings such as Eq. (5):
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  This module parses that syntax into a `pipeline_spec` -- a sequence
 *  of named pass invocations with arguments -- which the pass manager
 *  executes.  Parsing is registry-independent; `validate_pipeline`
 *  additionally resolves names against a pass registry and checks the
 *  stage transitions statically.
 */
#pragma once

#include "pipeline/pass_registry.hpp"

#include <string>
#include <vector>

namespace qda
{

/*! \brief One `name --arg value ...` command of a pipeline. */
struct pass_invocation
{
  std::string name;
  pass_arguments args;

  /*! Source location in the submitted spec text: 1-based index of the
   *  `;`/newline-separated segment and the character offset of the
   *  command's first token.  Diagnostics only -- never part of the
   *  canonical rendering or the structural cache key (invocations built
   *  programmatically leave them 0). */
  uint32_t source_segment = 0u;
  size_t source_offset = 0u;

  /*! \brief Canonical shell rendering ("revgen --hwb 4"). */
  std::string to_string() const;
};

/*! \brief A parsed pipeline: an ordered sequence of pass invocations. */
struct pipeline_spec
{
  std::vector<pass_invocation> passes;

  bool empty() const noexcept { return passes.empty(); }
  size_t size() const noexcept { return passes.size(); }

  /*! \brief Canonical shell rendering; parsing it again round-trips. */
  std::string to_string() const;
};

/*! \brief Parses RevKit shell syntax into a pipeline spec.
 *
 *  Commands are separated by `;` or newlines; empty commands are
 *  skipped.  Within a command, the first word is the pass name and the
 *  remaining words are arguments (`--name value`, `--flag`, `-c`).
 *  Parsing normalizes: whitespace, empty segments, and flag/option
 *  order never affect the resulting spec, so equivalent spellings of a
 *  pipeline share one canonical form (and one structural cache key).
 *  Throws qda::spec_parse_error (a std::invalid_argument carrying the
 *  segment index and character offset) on malformed input (bad pass
 *  name, empty option name).  Pass names are not resolved here -- use
 *  `validate_pipeline` for that.
 */
pipeline_spec parse_pipeline( const std::string& text );

/*! \brief Statically validates a pipeline against a registry.
 *
 *  Checks that every pass exists and that its arguments are within the
 *  declared vocabulary (qda::spec_parse_error, a std::invalid_argument
 *  with segment/offset diagnostics) and that the stage transitions are
 *  legal starting from `initial` (qda::spec_stage_error, a
 *  std::logic_error).  Returns the stage after the last pass.
 */
stage validate_pipeline( const pipeline_spec& spec,
                         const pass_registry& registry = pass_registry::instance(),
                         stage initial = stage::empty );

} // namespace qda
