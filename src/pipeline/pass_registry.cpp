#include "pipeline/pass_registry.hpp"

#include "library/subcircuit_library.hpp"
#include "mapping/clifford_t.hpp"
#include "mapping/coupling_map.hpp"
#include "mapping/router.hpp"
#include "pipeline/target.hpp"
#include "optimization/peephole.hpp"
#include "optimization/revsimp.hpp"
#include "phasepoly/phasepoly.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace qda
{

/* ---------------------------------------------------------------- */
/* pass_arguments                                                   */
/* ---------------------------------------------------------------- */

void pass_arguments::add_flag( std::string name )
{
  if ( !has_flag( name ) )
  {
    flags_.push_back( std::move( name ) );
  }
}

void pass_arguments::add_option( std::string name, std::string value )
{
  options_.emplace_back( std::move( name ), std::move( value ) );
}

void pass_arguments::add_positional( std::string value )
{
  positional_.push_back( std::move( value ) );
}

void pass_arguments::canonicalize()
{
  std::sort( flags_.begin(), flags_.end() );
  std::stable_sort( options_.begin(), options_.end(),
                    []( const auto& a, const auto& b ) { return a.first < b.first; } );
}

bool pass_arguments::empty() const noexcept
{
  return flags_.empty() && options_.empty() && positional_.empty();
}

bool pass_arguments::has_flag( const std::string& name ) const
{
  return std::find( flags_.begin(), flags_.end(), name ) != flags_.end();
}

bool pass_arguments::has_option( const std::string& name ) const
{
  return option( name ).has_value();
}

std::optional<std::string> pass_arguments::option( const std::string& name ) const
{
  for ( const auto& [key, value] : options_ )
  {
    if ( key == name )
    {
      return value;
    }
  }
  return std::nullopt;
}

uint64_t pass_arguments::option_uint( const std::string& pass, const std::string& name ) const
{
  const auto value = option( name );
  if ( !value )
  {
    throw std::invalid_argument( pass + ": missing required argument --" + name );
  }
  uint64_t parsed = 0u;
  const char* first = value->data();
  const char* last = first + value->size();
  const auto [ptr, ec] = std::from_chars( first, last, parsed );
  if ( ec != std::errc{} || ptr != last || value->empty() )
  {
    throw std::invalid_argument( pass + ": malformed argument --" + name + " " + *value +
                                 " (expected unsigned integer)" );
  }
  return parsed;
}

uint64_t pass_arguments::option_uint_or( const std::string& pass, const std::string& name,
                                         uint64_t fallback ) const
{
  return has_option( name ) ? option_uint( pass, name ) : fallback;
}

std::string pass_arguments::to_string() const
{
  std::string result;
  const auto append = [&result]( const std::string& token ) {
    if ( !result.empty() )
    {
      result += ' ';
    }
    result += token;
  };
  for ( const auto& [key, value] : options_ )
  {
    append( "--" + key );
    append( value );
  }
  for ( const auto& flag : flags_ )
  {
    append( ( flag.size() == 1u ? "-" : "--" ) + flag );
  }
  for ( const auto& value : positional_ )
  {
    append( value );
  }
  return result;
}

/* ---------------------------------------------------------------- */
/* pass_info                                                        */
/* ---------------------------------------------------------------- */

bool pass_info::accepts_stage( stage s ) const
{
  return std::find( accepts.begin(), accepts.end(), s ) != accepts.end();
}

void pass_info::check_arguments( const pass_arguments& args ) const
{
  const auto& options = args.options();
  for ( auto it = options.begin(); it != options.end(); ++it )
  {
    const auto& key = it->first;
    if ( std::find( known_options.begin(), known_options.end(), key ) == known_options.end() )
    {
      throw std::invalid_argument( name + ": unknown argument --" + key );
    }
    for ( auto other = options.begin(); other != it; ++other )
    {
      if ( other->first == key )
      {
        throw std::invalid_argument( name + ": argument --" + key + " given more than once" );
      }
    }
    if ( std::find( uint_options.begin(), uint_options.end(), key ) != uint_options.end() )
    {
      args.option_uint( name, key ); /* throws on malformed values */
    }
  }
  for ( const auto& flag : args.flags() )
  {
    /* a long flag may also be a value-less use of a known option name */
    if ( std::find( known_flags.begin(), known_flags.end(), flag ) == known_flags.end() )
    {
      if ( std::find( known_options.begin(), known_options.end(), flag ) !=
           known_options.end() )
      {
        throw std::invalid_argument( name + ": argument --" + flag + " requires a value" );
      }
      throw std::invalid_argument( name + ": unknown argument " +
                                   ( flag.size() == 1u ? "-" : "--" ) + flag );
    }
  }
  if ( !args.positional().empty() )
  {
    throw std::invalid_argument( name + ": unexpected argument '" + args.positional().front() +
                                 "'" );
  }
}

/* ---------------------------------------------------------------- */
/* pass_registry                                                    */
/* ---------------------------------------------------------------- */

pass_registry& pass_registry::instance()
{
  static pass_registry registry = [] {
    pass_registry r;
    register_builtin_passes( r );
    return r;
  }();
  return registry;
}

void pass_registry::register_pass( pass_info info )
{
  if ( info.name.empty() )
  {
    throw std::invalid_argument( "pass_registry: pass name must not be empty" );
  }
  if ( passes_.count( info.name ) != 0u )
  {
    throw std::invalid_argument( "pass_registry: duplicate pass '" + info.name + "'" );
  }
  passes_.emplace( info.name, std::move( info ) );
}

bool pass_registry::contains( const std::string& name ) const
{
  return passes_.count( name ) != 0u;
}

const pass_info& pass_registry::at( const std::string& name ) const
{
  const auto it = passes_.find( name );
  if ( it == passes_.end() )
  {
    throw std::invalid_argument( "pass_registry: unknown pass '" + name + "'" );
  }
  return it->second;
}

std::vector<std::string> pass_registry::names() const
{
  std::vector<std::string> result;
  result.reserve( passes_.size() );
  for ( const auto& [name, info] : passes_ )
  {
    result.push_back( name );
  }
  return result;
}

/* ---------------------------------------------------------------- */
/* built-in passes                                                  */
/* ---------------------------------------------------------------- */

namespace
{

permutation run_revgen( const pass_arguments& args )
{
  uint32_t generators = 0u;
  for ( const char* name : { "hwb", "adder", "rotl", "gray", "mult", "random" } )
  {
    generators += args.has_option( name ) ? 1u : 0u;
  }
  generators += args.has_flag( "fig7" ) ? 1u : 0u;
  if ( generators != 1u )
  {
    throw std::invalid_argument(
        "revgen: exactly one generator expected "
        "(--hwb N, --adder N, --rotl N, --gray N, --mult N, --random N, --fig7)" );
  }

  if ( args.has_flag( "fig7" ) )
  {
    return paper_fig7_permutation();
  }
  if ( args.has_option( "hwb" ) )
  {
    return hwb_permutation(
        static_cast<uint32_t>( args.option_uint( "revgen", "hwb" ) ) );
  }
  if ( args.has_option( "adder" ) )
  {
    return modular_adder_permutation(
        static_cast<uint32_t>( args.option_uint( "revgen", "adder" ) ),
        args.option_uint_or( "revgen", "addend", 1u ) );
  }
  if ( args.has_option( "rotl" ) )
  {
    return rotation_permutation(
        static_cast<uint32_t>( args.option_uint( "revgen", "rotl" ) ),
        static_cast<uint32_t>( args.option_uint_or( "revgen", "shift", 1u ) ) );
  }
  if ( args.has_option( "gray" ) )
  {
    return gray_code_permutation(
        static_cast<uint32_t>( args.option_uint( "revgen", "gray" ) ) );
  }
  if ( args.has_option( "mult" ) )
  {
    return modular_multiplier_permutation(
        static_cast<uint32_t>( args.option_uint( "revgen", "mult" ) ),
        args.option_uint_or( "revgen", "factor", 3u ) );
  }
  return permutation::random(
      static_cast<uint32_t>( args.option_uint( "revgen", "random" ) ),
      args.option_uint_or( "revgen", "seed", 1u ) );
}

coupling_map resolve_device( const pass_arguments& args )
{
  uint32_t topologies = 0u;
  for ( const char* name : { "device", "linear", "ring" } )
  {
    topologies += args.has_option( name ) ? 1u : 0u;
  }
  if ( topologies > 1u )
  {
    throw std::invalid_argument(
        "route: at most one topology expected (--device NAME, --linear N, --ring N)" );
  }
  if ( args.has_option( "linear" ) )
  {
    return coupling_map::linear(
        static_cast<uint32_t>( args.option_uint( "route", "linear" ) ) );
  }
  if ( args.has_option( "ring" ) )
  {
    return coupling_map::ring(
        static_cast<uint32_t>( args.option_uint( "route", "ring" ) ) );
  }
  const auto device = args.option( "device" ).value_or( "ibm_qx4" );
  if ( device == "ibm_qx2" )
  {
    return coupling_map::ibm_qx2();
  }
  if ( device == "ibm_qx4" )
  {
    return coupling_map::ibm_qx4();
  }
  if ( device == "ibm_qx5" )
  {
    return coupling_map::ibm_qx5();
  }
  throw std::invalid_argument( "route: unknown device '" + device +
                               "' (known: ibm_qx2, ibm_qx4, ibm_qx5)" );
}

} // namespace

void register_builtin_passes( pass_registry& registry )
{
  registry.register_pass( pass_info{
      "revgen",
      "generate a benchmark permutation (hwb, adder, rotl, gray, mult, random, fig7)",
      { stage::empty, stage::permutation, stage::reversible, stage::quantum, stage::mapped },
      stage::permutation,
      { "hwb", "adder", "addend", "rotl", "shift", "gray", "mult", "factor", "random", "seed" },
      { "fig7" },
      { "hwb", "adder", "addend", "rotl", "shift", "gray", "mult", "factor", "random", "seed" },
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ) {
        ir.set_permutation( run_revgen( args ) );
      } } );

  registry.register_pass( pass_info{
      "tbs",
      "transformation-based synthesis (Miller-Maslov-Dueck)",
      { stage::permutation },
      stage::reversible,
      {},
      { "bidirectional" },
      {},
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ) {
        const auto& target = ir.require_permutation();
        ir.set_reversible( args.has_flag( "bidirectional" )
                               ? transformation_based_synthesis_bidirectional( target )
                               : transformation_based_synthesis( target ) );
      } } );

  registry.register_pass( pass_info{
      "dbs",
      "decomposition-based synthesis (Van Rentergem et al.)",
      { stage::permutation },
      stage::reversible,
      {},
      {},
      {},
      []( staged_ir& ir, const pass_arguments&, const pass_context& ) {
        ir.set_reversible( decomposition_based_synthesis( ir.require_permutation() ) );
      } } );

  registry.register_pass( pass_info{
      "revsimp",
      "reversible circuit simplification",
      { stage::reversible },
      stage::reversible,
      { "max-rounds" },
      {},
      { "max-rounds" },
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ctx ) {
        const auto rounds = static_cast<uint32_t>(
            args.option_uint_or( "revsimp", "max-rounds", 16u ) );
        ir.require_reversible();
        auto circuit = std::move( *ir.reversible );
        revsimp_in_place( circuit, rounds, ctx.cancel );
        ir.set_reversible( std::move( circuit ) );
      },
      /*degradable=*/true } );

  registry.register_pass( pass_info{
      "rptm",
      "map MCT gates to Clifford+T (strategy-dispatched lowering, relative-phase by default)",
      { stage::reversible },
      stage::quantum,
      { "strategy", "cost-target" },
      { "no-relative-phase", "keep-toffoli", "no-library" },
      {},
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ctx ) {
        clifford_t_options options;
        options.use_relative_phase = !args.has_flag( "no-relative-phase" );
        options.keep_toffoli = args.has_flag( "keep-toffoli" );
        if ( !args.has_flag( "no-library" ) )
        {
          options.library = ctx.library;
        }
        if ( const auto name = args.option( "strategy" ) )
        {
          const auto strategy = parse_mct_strategy( *name );
          if ( !strategy )
          {
            throw std::invalid_argument( "rptm: unknown strategy '" + *name +
                                         "' (known: auto, clean, dirty, recursive)" );
          }
          options.strategy = *strategy;
        }
        if ( const auto name = args.option( "cost-target" ) )
        {
          /* derive the cost model from the execution target's declared
           * weights; constrained targets also cap the qubit budget */
          const auto& backend = target_registry::instance().at( *name );
          options.weights = backend.cost_weights();
          if ( backend.constrained() )
          {
            options.max_qubits = backend.device()->num_qubits();
          }
        }
        ir.set_quantum(
            circuit_cast<clifford_t_result>( ir.require_reversible(), options ) );
      } } );

  registry.register_pass( pass_info{
      "tpar",
      "phase-polynomial T-count optimization (fold + parity-network resynthesis)",
      { stage::quantum },
      stage::quantum,
      {},
      { "fold-only", "no-resynth", "no-library" },
      {},
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ctx ) {
        phasepoly::tpar_options options;
        options.resynthesize =
            !args.has_flag( "fold-only" ) && !args.has_flag( "no-resynth" );
        options.resynthesis.cancel = ctx.cancel;
        if ( !args.has_flag( "no-library" ) )
        {
          options.resynthesis.library = ctx.library;
        }
        ir.require_quantum();
        auto result = std::move( *ir.quantum );
        phasepoly::tpar_in_place( result.circuit, options );
        ir.set_quantum( std::move( result ) );
      },
      /*degradable=*/true } );

  registry.register_pass( pass_info{
      "peephole",
      "local gate cancellation over a sliding window",
      { stage::quantum },
      stage::quantum,
      { "max-rounds" },
      {},
      { "max-rounds" },
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ctx ) {
        const auto rounds = static_cast<uint32_t>(
            args.option_uint_or( "peephole", "max-rounds", 8u ) );
        ir.require_quantum();
        auto result = std::move( *ir.quantum );
        peephole_in_place( result.circuit, rounds, ctx.cancel );
        ir.set_quantum( std::move( result ) );
      },
      /*degradable=*/true } );

  registry.register_pass( pass_info{
      "route",
      "legalize for a device coupling map (SABRE lookahead router by default)",
      { stage::quantum },
      stage::mapped,
      { "device", "linear", "ring", "router", "lookahead", "layout-trials" },
      {},
      { "linear", "ring", "lookahead", "layout-trials" },
      []( staged_ir& ir, const pass_arguments& args, const pass_context& ctx ) {
        router_options options;
        if ( const auto name = args.option( "router" ) )
        {
          const auto kind = parse_router_kind( *name );
          if ( !kind )
          {
            throw std::invalid_argument( "route: unknown router '" + *name +
                                         "' (known: greedy, sabre)" );
          }
          options.kind = *kind;
        }
        options.extended_set_size = static_cast<uint32_t>(
            args.option_uint_or( "route", "lookahead", options.extended_set_size ) );
        options.layout_iterations = static_cast<uint32_t>(
            args.option_uint_or( "route", "layout-trials", options.layout_iterations ) );
        options.cancel = ctx.cancel;
        ir.set_mapped(
            route_circuit( ir.require_quantum().circuit, resolve_device( args ), options ) );
      } } );

  registry.register_pass( pass_info{
      "ps",
      "record circuit statistics of the current stage (`ps -c`)",
      { stage::quantum, stage::mapped },
      std::nullopt,
      {},
      { "c" },
      {},
      []( staged_ir& ir, const pass_arguments&, const pass_context& ) {
        ir.last_statistics = compute_statistics( ir.current_circuit() );
      } } );
}

} // namespace qda
