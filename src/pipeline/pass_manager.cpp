#include "pipeline/pass_manager.hpp"

#include "fault/failpoint.hpp"
#include "library/subcircuit_library.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace qda
{

namespace
{

using detail::elapsed_ms_since;
using detail::steady_clock;

} // namespace

pass_manager::pass_manager( bool enable_cache, const pass_registry& registry,
                            size_t max_cache_entries )
    : registry_( registry ),
      cache_( enable_cache && max_cache_entries > 0u
                  ? std::make_shared<lru_compilation_cache>( max_cache_entries )
                  : nullptr )
{
}

pass_manager::pass_manager( std::shared_ptr<compilation_cache> cache,
                            const pass_registry& registry )
    : registry_( registry ), cache_( std::move( cache ) )
{
}

pass_report pass_manager::apply_pass( staged_ir& ir, const pass_invocation& invocation,
                                      const pass_registry& registry,
                                      const std::optional<circuit_statistics>* stats_before,
                                      const pass_context& context )
{
  const auto& info = registry.at( invocation.name );
  info.check_arguments( invocation.args );
  context.cancel.check( invocation.name.c_str() );
  QDA_FAILPOINT( ( "pass." + invocation.name ).c_str() );
  if ( !info.accepts_stage( ir.current ) )
  {
    throw std::logic_error( std::string( "pipeline: pass '" ) + invocation.name +
                            "' cannot run at stage '" + stage_name( ir.current ) + "'" );
  }

  pass_report report;
  report.name = invocation.name;
  report.arguments = invocation.args.to_string();
  report.stage_before = ir.current;
  report.gates_before = ir.current_gate_count();
  report.helpers_before = ir.quantum ? ir.quantum->num_helper_qubits : 0u;
  report.statistics_before = stats_before ? *stats_before : ir.current_statistics();

  QDA_TRACE_SPAN_NAMED( pass_span, std::string( "pass." ) + invocation.name );
  if ( !report.arguments.empty() )
  {
    pass_span.attr( "args", report.arguments );
  }
  pass_span.attr( "stage_in", std::string( stage_name( report.stage_before ) ) );
  pass_span.attr( "gates_in", static_cast<int64_t>( report.gates_before ) );

  const auto start = steady_clock::now();
  info.run( ir, invocation.args, context );
  report.elapsed_ms = elapsed_ms_since( start );
  QDA_COUNT( "pipeline.passes_run" );

  const auto expected = info.produces.value_or( report.stage_before );
  if ( ir.current != expected )
  {
    throw std::logic_error( std::string( "pipeline: pass '" ) + invocation.name +
                            "' declared stage '" + stage_name( expected ) +
                            "' but produced '" + stage_name( ir.current ) + "'" );
  }

  report.stage_after = ir.current;
  report.helpers_after = ir.quantum ? ir.quantum->num_helper_qubits : 0u;
  if ( !info.produces )
  {
    /* inspection pass: the circuit is unchanged by contract */
    report.gates_after = report.gates_before;
    report.statistics_after = report.statistics_before;
  }
  else
  {
    report.gates_after = ir.current_gate_count();
    report.statistics_after = ir.current_statistics();
  }
  pass_span.attr( "gates_out", static_cast<int64_t>( report.gates_after ) );
  if ( report.statistics_after )
  {
    pass_span.attr( "t_count", static_cast<int64_t>( report.statistics_after->t_count ) );
    pass_span.attr( "cnot", static_cast<int64_t>( report.statistics_after->cnot_count ) );
    pass_span.attr( "depth", static_cast<int64_t>( report.statistics_after->depth ) );
    pass_span.attr( "qubits", static_cast<int64_t>( report.statistics_after->num_qubits ) );
  }
  return report;
}

pass_report pass_manager::apply_pass( staged_ir& ir, const std::string& name,
                                      const pass_arguments& args,
                                      const pass_registry& registry )
{
  return apply_pass( ir, pass_invocation{ name, args }, registry );
}

uint64_t pass_manager::compute_cache_key( const pipeline_spec& spec, const staged_ir& initial )
{
  return compute_structural_key( spec, initial ).primary;
}

compilation_result pass_manager::run( const std::string& spec_text )
{
  return run( parse_pipeline( spec_text ) );
}

compilation_result pass_manager::run( const pipeline_spec& spec )
{
  return run( spec, staged_ir{} );
}

compilation_result pass_manager::run( const pipeline_spec& spec, staged_ir initial )
{
  return run( spec, std::move( initial ), run_plan{} );
}

compilation_result pass_manager::run( const pipeline_spec& spec, staged_ir initial,
                                      const run_plan& plan, const pass_observer& observer )
{
  const auto start = steady_clock::now();
  if ( plan.first_pass > spec.size() )
  {
    throw std::logic_error( "pipeline: run_plan resumes past the end of the spec" );
  }
  if ( plan.first_pass > 0u && !plan.cache_key )
  {
    throw std::logic_error(
        "pipeline: a resumed run needs the original input's cache key" );
  }
  /* validate the part that will actually execute, from the stage the
   * (possibly mid-pipeline) initial IR is at */
  {
    stage current = initial.current;
    for ( size_t i = plan.first_pass; i < spec.size(); ++i )
    {
      const auto& invocation = spec.passes[i];
      const auto& info = registry_.at( invocation.name ); /* throws if unknown */
      info.check_arguments( invocation.args );
      if ( !info.accepts_stage( current ) )
      {
        throw std::logic_error( std::string( "pipeline spec: pass '" ) + invocation.name +
                                "' cannot run at stage '" + stage_name( current ) + "'" );
      }
      current = info.produces.value_or( current );
    }
  }

  const auto canonical = spec.to_string();
  QDA_TRACE_SPAN_NAMED( run_span, "pipeline.run" );
  run_span.attr( "spec", canonical );

  structural_key key{};
  if ( cache_ || plan.cache_key )
  {
    key = plan.cache_key ? *plan.cache_key : compute_structural_key( spec, initial );
  }
  if ( cache_ && plan.lookup )
  {
    std::shared_ptr<const compilation_result> cached;
    try
    {
      cached = cache_->lookup( key );
    }
    catch ( ... )
    {
      /* a failing cache backend degrades to a miss */
      QDA_COUNT( "pipeline.cache.lookup_failed" );
    }
    if ( cached )
    {
      run_span.attr( "cache", std::string( "hit" ) );
      /* deep copy outside any cache lock */
      auto result = *cached;
      result.cache_hit = true;
      result.total_ms = elapsed_ms_since( start );
      return result;
    }
  }

  compilation_result result;
  result.ir = std::move( initial );
  result.spec = canonical;
  result.cache_key = key.primary;
  result.reused_passes = static_cast<uint32_t>( plan.first_pass );
  result.reports.reserve( spec.size() );
  for ( auto report : plan.prefix_reports )
  {
    report.reused = true;
    result.reports.push_back( std::move( report ) );
  }
  if ( result.reused_passes > 0u )
  {
    run_span.attr( "reused_passes", static_cast<int64_t>( result.reused_passes ) );
    QDA_COUNT_N( "pipeline.passes_reused", result.reused_passes );
  }
  pass_context context;
  context.cancel = plan.cancel;
  context.library = plan.use_library
                        ? ( plan.library ? plan.library
                                         : &library::subcircuit_library::instance() )
                        : nullptr;
  /* deadline-blind view for mandatory passes under degrade: an expired
   * budget skips optimizations but must not abort synthesis/mapping */
  pass_context lenient_context;
  lenient_context.cancel = plan.cancel.without_deadline();
  lenient_context.library = context.library;
  for ( size_t i = plan.first_pass; i < spec.size(); ++i )
  {
    const auto& invocation = spec.passes[i];
    const auto& info = registry_.at( invocation.name );
    const bool may_degrade =
        plan.policy == failure_policy::degrade && info.degradable;

    /* an explicit cancel always aborts; an expired deadline only skips
     * the degradable passes (mandatory passes still run: without them
     * there is no valid circuit to return) */
    if ( plan.cancel.cancel_requested() )
    {
      throw qda_error( error_code::cancelled, "compilation cancelled before pass '" +
                                                  invocation.name + "'" );
    }
    const bool expired = plan.cancel.deadline_expired();
    if ( expired && plan.policy == failure_policy::strict )
    {
      throw qda_error( error_code::deadline_exceeded,
                       "deadline exceeded before pass '" + invocation.name + "'" );
    }

    const auto* stats_hint =
        result.reports.empty() ? nullptr : &result.reports.back().statistics_after;
    const auto skip_degraded = [&]( error_code reason ) {
      pass_report report;
      report.name = invocation.name;
      report.arguments = invocation.args.to_string();
      report.stage_before = report.stage_after = result.ir.current;
      report.gates_before = report.gates_after = result.ir.current_gate_count();
      report.helpers_before = report.helpers_after =
          result.ir.quantum ? result.ir.quantum->num_helper_qubits : 0u;
      report.statistics_before = report.statistics_after =
          stats_hint ? *stats_hint : result.ir.current_statistics();
      report.degraded = true;
      report.degraded_reason = error_code_name( reason );
      result.reports.push_back( std::move( report ) );
      result.degraded = true;
      ++result.degraded_passes;
      QDA_COUNT( "pipeline.passes_degraded" );
    };

    if ( !may_degrade )
    {
      result.reports.push_back( apply_pass(
          result.ir, invocation, registry_, stats_hint,
          plan.policy == failure_policy::degrade ? lenient_context : context ) );
    }
    else if ( expired )
    {
      skip_degraded( error_code::deadline_exceeded );
    }
    else
    {
      /* degradable: snapshot the IR so a mid-pass failure (thrown or
       * injected) rolls back to a valid, merely unoptimized circuit */
      staged_ir backup = result.ir;
      const size_t reports_before = result.reports.size();
      try
      {
        result.reports.push_back(
            apply_pass( result.ir, invocation, registry_, stats_hint, context ) );
      }
      catch ( ... )
      {
        const auto code = classify_current_exception( error_code::pass_failure );
        if ( code == error_code::cancelled )
        {
          throw;
        }
        result.ir = std::move( backup );
        result.reports.resize( reports_before );
        skip_degraded( code );
      }
    }

    /* TraceAtlas-style hotness feed: per-pass cost observed across
     * compilations steers the library's admission profile */
    if ( context.library && !result.reports.back().degraded )
    {
      context.library->profile().observe_pass( invocation.name,
                                               result.reports.back().elapsed_ms );
    }

    if ( plan.limits.max_gates != 0u &&
         result.ir.current_gate_count() > plan.limits.max_gates )
    {
      throw qda_error( error_code::resource_exhausted,
                       "pass '" + invocation.name + "' grew the circuit to " +
                           std::to_string( result.ir.current_gate_count() ) +
                           " gates (budget " + std::to_string( plan.limits.max_gates ) +
                           ")" );
    }
    if ( plan.limits.max_helper_qubits != 0u && result.ir.quantum &&
         result.ir.quantum->num_helper_qubits > plan.limits.max_helper_qubits )
    {
      throw qda_error( error_code::resource_exhausted,
                       "pass '" + invocation.name + "' allocated " +
                           std::to_string( result.ir.quantum->num_helper_qubits ) +
                           " helper qubits (budget " +
                           std::to_string( plan.limits.max_helper_qubits ) + ")" );
    }

    /* once any pass degraded, the IR no longer matches what the
     * canonical prefix keys describe -- stop publishing snapshots so a
     * degraded IR can never seed the cross-job prefix cache */
    if ( observer && !result.degraded )
    {
      observer( i, result.ir, result.reports );
    }
  }
  result.total_ms = elapsed_ms_since( start );
  if ( result.degraded )
  {
    run_span.attr( "degraded_passes", static_cast<int64_t>( result.degraded_passes ) );
  }

  /* degraded results are never cached: a later strict client hashing to
   * the same structural key must not receive the unoptimized circuit */
  if ( cache_ && !result.degraded )
  {
    try
    {
      cache_->store( key, std::make_shared<const compilation_result>( result ) );
    }
    catch ( ... )
    {
      /* memoization is an optimization; a failing backend must not
       * fail a compilation that already succeeded */
      QDA_COUNT( "pipeline.cache.store_failed" );
    }
  }
  return result;
}

cache_statistics pass_manager::cache_stats() const
{
  return cache_ ? cache_->statistics() : cache_statistics{};
}

void pass_manager::clear_cache()
{
  if ( cache_ )
  {
    cache_->clear();
  }
}

std::string format_report( const compilation_result& result )
{
  std::ostringstream out;
  out << "pipeline: " << result.spec << "\n";
  char line[192];
  std::snprintf( line, sizeof( line ), "%-10s %-12s %-12s %10s %10s %9s %9s\n", "pass",
                 "stage-in", "stage-out", "gates-in", "gates-out", "T-count", "ms" );
  out << line;
  for ( const auto& report : result.reports )
  {
    const auto t_count =
        report.statistics_after ? std::to_string( report.statistics_after->t_count ) : "-";
    const auto marker = report.degraded
                            ? " (degraded: " + report.degraded_reason + ")"
                            : std::string( report.reused ? " (reused)" : "" );
    std::snprintf( line, sizeof( line ), "%-10s %-12s %-12s %10llu %10llu %9s %9.3f%s\n",
                   report.name.c_str(), stage_name( report.stage_before ),
                   stage_name( report.stage_after ),
                   static_cast<unsigned long long>( report.gates_before ),
                   static_cast<unsigned long long>( report.gates_after ), t_count.c_str(),
                   report.elapsed_ms, marker.c_str() );
    out << line;
  }
  std::snprintf( line, sizeof( line ), "total: %.3f ms%s\n", result.total_ms,
                 result.cache_hit ? " (cache hit)" : "" );
  out << line;
  return out.str();
}

namespace
{

/*! "before -> after" cell, or "-" when the pass saw no such value. */
std::string delta_cell( uint64_t before, uint64_t after, bool have_before, bool have_after )
{
  if ( !have_after )
  {
    return "-";
  }
  if ( !have_before || before == after )
  {
    return std::to_string( after );
  }
  return std::to_string( before ) + "->" + std::to_string( after );
}

} // namespace

std::string format_cost_table( const compilation_result& result )
{
  std::ostringstream out;
  out << "per-pass circuit cost (" << result.spec << ")\n";
  char line[224];
  std::snprintf( line, sizeof( line ), "%-10s %12s %14s %14s %14s %10s %9s %9s\n", "pass",
                 "gates", "T-count", "CNOT", "depth", "qubits", "ancillae", "ms" );
  out << line;
  for ( const auto& report : result.reports )
  {
    const auto& before = report.statistics_before;
    const auto& after = report.statistics_after;
    const auto stat_cell = [&]( auto member ) {
      return delta_cell( before ? static_cast<uint64_t>( ( *before ).*member ) : 0u,
                         after ? static_cast<uint64_t>( ( *after ).*member ) : 0u,
                         before.has_value(), after.has_value() );
    };
    std::snprintf(
        line, sizeof( line ), "%-10s %12s %14s %14s %14s %10s %9s %9.3f\n",
        report.name.c_str(),
        delta_cell( report.gates_before, report.gates_after, true, true ).c_str(),
        stat_cell( &circuit_statistics::t_count ).c_str(),
        stat_cell( &circuit_statistics::cnot_count ).c_str(),
        stat_cell( &circuit_statistics::depth ).c_str(),
        stat_cell( &circuit_statistics::num_qubits ).c_str(),
        delta_cell( report.helpers_before, report.helpers_after, true,
                    report.helpers_after > 0u || report.helpers_before > 0u )
            .c_str(),
        report.elapsed_ms );
    out << line;
  }
  return out.str();
}

} // namespace qda
