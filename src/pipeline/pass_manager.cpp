#include "pipeline/pass_manager.hpp"

#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <cstdio>
#include <sstream>

namespace qda
{

namespace
{

using detail::elapsed_ms_since;
using detail::steady_clock;

/* ---- FNV-1a fingerprinting ---- */

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr uint64_t fnv_prime = 0x100000001b3ull;

void hash_bytes( uint64_t& state, const void* data, size_t size )
{
  const auto* bytes = static_cast<const unsigned char*>( data );
  for ( size_t i = 0u; i < size; ++i )
  {
    state ^= bytes[i];
    state *= fnv_prime;
  }
}

void hash_string( uint64_t& state, const std::string& text )
{
  const auto size = static_cast<uint64_t>( text.size() );
  hash_bytes( state, &size, sizeof( size ) );
  hash_bytes( state, text.data(), text.size() );
}

void hash_u64( uint64_t& state, uint64_t value )
{
  hash_bytes( state, &value, sizeof( value ) );
}

} // namespace

pass_manager::pass_manager( bool enable_cache, const pass_registry& registry,
                            size_t max_cache_entries )
    : registry_( registry ), cache_enabled_( enable_cache ),
      max_cache_entries_( max_cache_entries )
{
}

pass_report pass_manager::apply_pass( staged_ir& ir, const pass_invocation& invocation,
                                      const pass_registry& registry,
                                      const std::optional<circuit_statistics>* stats_before )
{
  const auto& info = registry.at( invocation.name );
  info.check_arguments( invocation.args );
  if ( !info.accepts_stage( ir.current ) )
  {
    throw std::logic_error( std::string( "pipeline: pass '" ) + invocation.name +
                            "' cannot run at stage '" + stage_name( ir.current ) + "'" );
  }

  pass_report report;
  report.name = invocation.name;
  report.arguments = invocation.args.to_string();
  report.stage_before = ir.current;
  report.gates_before = ir.current_gate_count();
  report.helpers_before = ir.quantum ? ir.quantum->num_helper_qubits : 0u;
  report.statistics_before = stats_before ? *stats_before : ir.current_statistics();

  QDA_TRACE_SPAN_NAMED( pass_span, std::string( "pass." ) + invocation.name );
  if ( !report.arguments.empty() )
  {
    pass_span.attr( "args", report.arguments );
  }
  pass_span.attr( "stage_in", std::string( stage_name( report.stage_before ) ) );
  pass_span.attr( "gates_in", static_cast<int64_t>( report.gates_before ) );

  const auto start = steady_clock::now();
  info.run( ir, invocation.args );
  report.elapsed_ms = elapsed_ms_since( start );
  QDA_COUNT( "pipeline.passes_run" );

  const auto expected = info.produces.value_or( report.stage_before );
  if ( ir.current != expected )
  {
    throw std::logic_error( std::string( "pipeline: pass '" ) + invocation.name +
                            "' declared stage '" + stage_name( expected ) +
                            "' but produced '" + stage_name( ir.current ) + "'" );
  }

  report.stage_after = ir.current;
  report.helpers_after = ir.quantum ? ir.quantum->num_helper_qubits : 0u;
  if ( !info.produces )
  {
    /* inspection pass: the circuit is unchanged by contract */
    report.gates_after = report.gates_before;
    report.statistics_after = report.statistics_before;
  }
  else
  {
    report.gates_after = ir.current_gate_count();
    report.statistics_after = ir.current_statistics();
  }
  pass_span.attr( "gates_out", static_cast<int64_t>( report.gates_after ) );
  if ( report.statistics_after )
  {
    pass_span.attr( "t_count", static_cast<int64_t>( report.statistics_after->t_count ) );
    pass_span.attr( "cnot", static_cast<int64_t>( report.statistics_after->cnot_count ) );
    pass_span.attr( "depth", static_cast<int64_t>( report.statistics_after->depth ) );
    pass_span.attr( "qubits", static_cast<int64_t>( report.statistics_after->num_qubits ) );
  }
  return report;
}

pass_report pass_manager::apply_pass( staged_ir& ir, const std::string& name,
                                      const pass_arguments& args,
                                      const pass_registry& registry )
{
  return apply_pass( ir, pass_invocation{ name, args }, registry );
}

namespace
{

/*! \brief FNV-1a over the initial IR and canonical spec, from `seed`;
 *         two different seeds give two independent fingerprints.
 */
uint64_t input_fingerprint( const pipeline_spec& spec, const staged_ir& initial,
                            uint64_t seed )
{
  uint64_t state = seed;
  hash_u64( state, static_cast<uint64_t>( initial.current ) );
  /* every optional section hashes a presence marker, and variable-length
   * sections a count, so the byte stream is injective over IR values */
  hash_u64( state, initial.target_permutation ? 1u : 0u );
  if ( initial.target_permutation )
  {
    hash_u64( state, initial.target_permutation->num_vars() );
    for ( const auto image : initial.target_permutation->images() )
    {
      hash_u64( state, image );
    }
  }
  hash_u64( state, initial.reversible ? 1u : 0u );
  if ( initial.reversible )
  {
    hash_u64( state, initial.reversible->num_lines() );
    hash_u64( state, initial.reversible->num_gates() );
    for ( const auto& gate : initial.reversible->gates() )
    {
      hash_u64( state, gate.controls );
      hash_u64( state, gate.polarity );
      hash_u64( state, gate.target );
    }
  }
  hash_u64( state, initial.quantum ? 1u : 0u );
  if ( initial.quantum )
  {
    hash_u64( state, initial.quantum->num_helper_qubits );
    hash_string( state, initial.quantum->circuit.to_string() );
  }
  hash_u64( state, initial.mapped ? 1u : 0u );
  if ( initial.mapped )
  {
    hash_string( state, initial.mapped->circuit.to_string() );
  }
  hash_u64( state, initial.last_statistics ? 1u : 0u );
  if ( initial.last_statistics )
  {
    const auto& s = *initial.last_statistics;
    for ( const uint64_t value : { uint64_t{ s.num_qubits }, s.num_gates, s.t_count, s.t_depth,
                                   s.h_count, s.cnot_count, s.two_qubit_count, s.clifford_count,
                                   s.depth, s.num_measurements } )
    {
      hash_u64( state, value );
    }
  }
  hash_string( state, spec.to_string() );
  return state;
}

/*! Second, independent seed for the collision-check fingerprint. */
constexpr uint64_t check_seed = 0x9e3779b97f4a7c15ull;

} // namespace

uint64_t pass_manager::compute_cache_key( const pipeline_spec& spec, const staged_ir& initial )
{
  return input_fingerprint( spec, initial, fnv_offset );
}

compilation_result pass_manager::run( const std::string& spec_text )
{
  return run( parse_pipeline( spec_text ) );
}

compilation_result pass_manager::run( const pipeline_spec& spec )
{
  return run( spec, staged_ir{} );
}

compilation_result pass_manager::run( const pipeline_spec& spec, staged_ir initial )
{
  const auto start = steady_clock::now();
  validate_pipeline( spec, registry_, initial.current );
  const auto canonical = spec.to_string();
  QDA_TRACE_SPAN_NAMED( run_span, "pipeline.run" );
  run_span.attr( "spec", canonical );

  uint64_t key = 0u;
  uint64_t check = 0u;
  if ( cache_enabled_ )
  {
    key = compute_cache_key( spec, initial );
    check = input_fingerprint( spec, initial, check_seed );
    std::shared_ptr<const compilation_result> cached;
    {
      std::lock_guard<std::mutex> guard( cache_mutex_ );
      const auto it = cache_.find( key );
      /* the key is a non-cryptographic 64-bit hash; a stale hit requires
       * the independent check fingerprint to collide simultaneously */
      if ( it != cache_.end() && it->second.check == check )
      {
        ++cache_stats_.hits;
        cached = it->second.result;
      }
      else
      {
        ++cache_stats_.misses;
      }
    }
    if ( cached )
    {
      QDA_COUNT( "pipeline.cache.hit" );
      run_span.attr( "cache", std::string( "hit" ) );
      /* deep copy outside the lock */
      auto result = *cached;
      result.cache_hit = true;
      result.total_ms = elapsed_ms_since( start );
      return result;
    }
    QDA_COUNT( "pipeline.cache.miss" );
  }

  compilation_result result;
  result.ir = std::move( initial );
  result.spec = canonical;
  result.cache_key = key;
  result.reports.reserve( spec.size() );
  for ( const auto& invocation : spec.passes )
  {
    const auto* stats_hint =
        result.reports.empty() ? nullptr : &result.reports.back().statistics_after;
    result.reports.push_back( apply_pass( result.ir, invocation, registry_, stats_hint ) );
  }
  result.total_ms = elapsed_ms_since( start );

  if ( cache_enabled_ && max_cache_entries_ > 0u )
  {
    auto stored = std::make_shared<const compilation_result>( result );
    std::lock_guard<std::mutex> guard( cache_mutex_ );
    if ( cache_.emplace( key, cache_entry{ stored, check } ).second )
    {
      cache_order_.push_back( key );
      while ( cache_.size() > max_cache_entries_ )
      {
        cache_.erase( cache_order_.front() );
        cache_order_.pop_front();
        QDA_COUNT( "pipeline.cache.evict" );
      }
    }
    else
    {
      cache_[key] = cache_entry{ stored, check }; /* key collision: keep the fresh one */
    }
    cache_stats_.entries = cache_.size();
  }
  return result;
}

cache_statistics pass_manager::cache_stats() const
{
  std::lock_guard<std::mutex> guard( cache_mutex_ );
  return cache_stats_;
}

void pass_manager::clear_cache()
{
  std::lock_guard<std::mutex> guard( cache_mutex_ );
  cache_.clear();
  cache_order_.clear();
  cache_stats_ = cache_statistics{};
}

std::string format_report( const compilation_result& result )
{
  std::ostringstream out;
  out << "pipeline: " << result.spec << "\n";
  char line[192];
  std::snprintf( line, sizeof( line ), "%-10s %-12s %-12s %10s %10s %9s %9s\n", "pass",
                 "stage-in", "stage-out", "gates-in", "gates-out", "T-count", "ms" );
  out << line;
  for ( const auto& report : result.reports )
  {
    const auto t_count =
        report.statistics_after ? std::to_string( report.statistics_after->t_count ) : "-";
    std::snprintf( line, sizeof( line ), "%-10s %-12s %-12s %10llu %10llu %9s %9.3f\n",
                   report.name.c_str(), stage_name( report.stage_before ),
                   stage_name( report.stage_after ),
                   static_cast<unsigned long long>( report.gates_before ),
                   static_cast<unsigned long long>( report.gates_after ), t_count.c_str(),
                   report.elapsed_ms );
    out << line;
  }
  std::snprintf( line, sizeof( line ), "total: %.3f ms%s\n", result.total_ms,
                 result.cache_hit ? " (cache hit)" : "" );
  out << line;
  return out.str();
}

namespace
{

/*! "before -> after" cell, or "-" when the pass saw no such value. */
std::string delta_cell( uint64_t before, uint64_t after, bool have_before, bool have_after )
{
  if ( !have_after )
  {
    return "-";
  }
  if ( !have_before || before == after )
  {
    return std::to_string( after );
  }
  return std::to_string( before ) + "->" + std::to_string( after );
}

} // namespace

std::string format_cost_table( const compilation_result& result )
{
  std::ostringstream out;
  out << "per-pass circuit cost (" << result.spec << ")\n";
  char line[224];
  std::snprintf( line, sizeof( line ), "%-10s %12s %14s %14s %14s %10s %9s %9s\n", "pass",
                 "gates", "T-count", "CNOT", "depth", "qubits", "ancillae", "ms" );
  out << line;
  for ( const auto& report : result.reports )
  {
    const auto& before = report.statistics_before;
    const auto& after = report.statistics_after;
    const auto stat_cell = [&]( auto member ) {
      return delta_cell( before ? static_cast<uint64_t>( ( *before ).*member ) : 0u,
                         after ? static_cast<uint64_t>( ( *after ).*member ) : 0u,
                         before.has_value(), after.has_value() );
    };
    std::snprintf(
        line, sizeof( line ), "%-10s %12s %14s %14s %14s %10s %9s %9.3f\n",
        report.name.c_str(),
        delta_cell( report.gates_before, report.gates_after, true, true ).c_str(),
        stat_cell( &circuit_statistics::t_count ).c_str(),
        stat_cell( &circuit_statistics::cnot_count ).c_str(),
        stat_cell( &circuit_statistics::depth ).c_str(),
        stat_cell( &circuit_statistics::num_qubits ).c_str(),
        delta_cell( report.helpers_before, report.helpers_after, true,
                    report.helpers_after > 0u || report.helpers_before > 0u )
            .c_str(),
        report.elapsed_ms );
    out << line;
  }
  return out.str();
}

} // namespace qda
