/*! \file pass_manager.hpp
 *  \brief Pipeline execution engine with instrumentation and caching.
 *
 *  Executes a `pipeline_spec` over a `staged_ir`: each pass is resolved
 *  through the pass registry, its stage precondition is checked, its
 *  wall-clock time and circuit-size effect are recorded in a
 *  `pass_report`, and the whole compilation can be memoized in a
 *  pluggable cache backend (pipeline/compilation_cache.hpp) keyed on
 *  the structural fingerprint of the input IR plus the canonical
 *  pipeline spec -- repeated compilations of the same program (the
 *  common case in batched/server settings) return instantly.
 *
 *  Execution is *resumable*: a caller holding a mid-pipeline snapshot
 *  (the compile server's cross-job prefix cache, server/) can start a
 *  run at pass index k over that snapshot via a `run_plan`, and observe
 *  every executed pass through a `pass_observer` to harvest new
 *  snapshots.  A pass manager has no mutable state of its own beyond
 *  the (thread-safe) cache backend, so one instance may be driven from
 *  many threads concurrently.
 */
#pragma once

#include "fault/cancel.hpp"
#include "fault/error.hpp"
#include "pipeline/compilation_cache.hpp"
#include "pipeline/ir.hpp"
#include "pipeline/spec_parser.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qda
{

/*! \brief Record of one executed pass. */
struct pass_report
{
  std::string name;      /*!< pass name */
  std::string arguments; /*!< canonical argument rendering */

  stage stage_before = stage::empty;
  stage stage_after = stage::empty;

  double elapsed_ms = 0.0;

  /*! True when the pass was not executed by this run: its effect was
   *  replayed from a cached pipeline prefix (elapsed_ms then reports
   *  the cost of the run that originally executed it). */
  bool reused = false;

  /*! True when the pass was skipped (or its partial effect rolled
   *  back) under a `degrade` failure policy; the circuit at this point
   *  is valid but unoptimized by this pass.  `degraded_reason` holds
   *  the stable error-code name that caused the skip. */
  bool degraded = false;
  std::string degraded_reason;

  /*! Gate count at the pass boundary (reversible or quantum stage;
   *  0 when the stage has no circuit yet). */
  uint64_t gates_before = 0u;
  uint64_t gates_after = 0u;

  /*! Clean helper qubits (ancillae) at the pass boundary; nonzero only
   *  once the quantum stage exists. */
  uint32_t helpers_before = 0u;
  uint32_t helpers_after = 0u;

  /*! Full statistics, recorded when a quantum/mapped circuit exists. */
  std::optional<circuit_statistics> statistics_before;
  std::optional<circuit_statistics> statistics_after;
};

/*! \brief Result of running a pipeline. */
struct compilation_result
{
  staged_ir ir;
  std::vector<pass_report> reports;
  std::string spec;      /*!< canonical spec string */
  uint64_t cache_key = 0u;
  bool cache_hit = false;
  uint32_t reused_passes = 0u; /*!< leading passes replayed from a prefix snapshot */
  double total_ms = 0.0;

  /*! True when at least one pass was skipped under a `degrade` policy;
   *  the result is valid but not fully optimized.  Degraded results
   *  are never stored in the compilation cache. */
  bool degraded = false;
  uint32_t degraded_passes = 0u;
};

/*! \brief Called after every pass a run actually executes.
 *
 *  `pass_index` is the pass's position in the full spec; `reports`
 *  holds every report up to and including that pass (reused prefix
 *  reports first).  The compile server snapshots `ir` here to feed its
 *  cross-job prefix cache.
 */
using pass_observer =
    std::function<void( size_t pass_index, const staged_ir& ir,
                        const std::vector<pass_report>& reports )>;

/*! \brief What happens when an optional optimization pass fails or the
 *         job's deadline fires mid-pipeline.
 */
enum class failure_policy : uint8_t
{
  strict, /*!< any pass failure or expired deadline fails the run */
  degrade /*!< degradable passes are rolled back and skipped; the run
               still produces a valid (less optimized) circuit */
};

/*! \brief Hard ceilings that convert runaway synthesis into a typed
 *         `resource_exhausted` failure.  0 = unlimited; checked after
 *         every executed pass.
 */
struct resource_limits
{
  uint64_t max_gates = 0u;
  uint32_t max_helper_qubits = 0u;
};

/*! \brief How a run starts and how its result is keyed.
 *
 *  The default plan describes a plain cold run: start at pass 0, look
 *  the input up in the cache, store the result under its own
 *  structural key.
 */
struct run_plan
{
  /*! Passes [0, first_pass) are already applied to the initial IR
   *  handed to `run`; execution starts at `first_pass`. */
  size_t first_pass = 0u;

  /*! Reports of the skipped passes, replayed (marked `reused`) at the
   *  front of the result. */
  std::vector<pass_report> prefix_reports;

  /*! Cache key for the final result.  Mandatory when `first_pass > 0`
   *  (the mid-pipeline IR no longer fingerprints to the original
   *  input); defaults to the structural key of (spec, initial). */
  std::optional<structural_key> cache_key;

  /*! When false, the cache is not probed before executing (the caller
   *  already did); the result is still stored. */
  bool lookup = true;

  /*! Cooperative cancellation / deadline, polled at every pass
   *  boundary and inside the long pass loops.  An explicit cancel
   *  always aborts the run (qda::error_code::cancelled); an expired
   *  deadline aborts under `strict` and skips the remaining degradable
   *  passes under `degrade`. */
  cancel_token cancel;

  failure_policy policy = failure_policy::strict;

  resource_limits limits;

  /*! Subcircuit library threaded into every pass context (rptm/tpar
   *  splice cached optimized forms through it).  Null with
   *  `use_library` true selects the process-wide
   *  `library::subcircuit_library::instance()`. */
  library::subcircuit_library* library = nullptr;

  /*! When false, no library is offered to the passes at all. */
  bool use_library = true;
};

/*! \brief Executes pipelines over the staged IR. */
class pass_manager
{
public:
  /*! \brief `max_cache_entries` bounds the built-in LRU memoization
   *         cache; the least-recently-used compilation is evicted
   *         first (hits refresh recency).
   */
  explicit pass_manager( bool enable_cache = true,
                         const pass_registry& registry = pass_registry::instance(),
                         size_t max_cache_entries = 256u );

  /*! \brief Uses `cache` as the memoization backend (nullptr disables
   *         caching).  The backend may be shared between managers; the
   *         compile server plugs its sharded cache in here.
   */
  explicit pass_manager( std::shared_ptr<compilation_cache> cache,
                         const pass_registry& registry = pass_registry::instance() );

  /*! \brief Parses and runs RevKit shell syntax from the empty stage. */
  compilation_result run( const std::string& spec_text );

  /*! \brief Runs a parsed pipeline from the empty stage. */
  compilation_result run( const pipeline_spec& spec );

  /*! \brief Runs a parsed pipeline over an existing IR. */
  compilation_result run( const pipeline_spec& spec, staged_ir initial );

  /*! \brief Runs (or resumes) a pipeline as described by `plan`,
   *         reporting executed passes to `observer` (when set).
   */
  compilation_result run( const pipeline_spec& spec, staged_ir initial,
                          const run_plan& plan, const pass_observer& observer = {} );

  /*! \brief Applies one pass to an IR, enforcing its stage signature
   *         (std::logic_error on violation) and argument vocabulary
   *         (std::invalid_argument).  Used by the fluent `qda::flow`.
   *
   *  `stats_before` (when non-null) spares recomputing the entry
   *  statistics the caller already knows from the previous report.
   */
  static pass_report apply_pass( staged_ir& ir, const pass_invocation& invocation,
                                 const pass_registry& registry = pass_registry::instance(),
                                 const std::optional<circuit_statistics>* stats_before = nullptr,
                                 const pass_context& context = {} );

  static pass_report apply_pass( staged_ir& ir, const std::string& name,
                                 const pass_arguments& args = {},
                                 const pass_registry& registry = pass_registry::instance() );

  /*! \brief Primary half of the structural fingerprint of (initial IR,
   *         spec); the legacy 64-bit cache key.
   */
  static uint64_t compute_cache_key( const pipeline_spec& spec, const staged_ir& initial );

  /*! \brief The memoization backend (nullptr when caching is off). */
  const std::shared_ptr<compilation_cache>& cache() const noexcept { return cache_; }

  cache_statistics cache_stats() const;
  void clear_cache();

private:
  const pass_registry& registry_;
  std::shared_ptr<compilation_cache> cache_;
};

/*! \brief Human-readable per-pass table of a compilation. */
std::string format_report( const compilation_result& result );

/*! \brief Fig. 6-style per-pass cost-delta table: what each pass did to
 *         T-count, CNOT count, depth, qubits and ancillae.  Rows appear
 *         once a quantum circuit exists (earlier passes show the MCT
 *         gate count only); deltas are rendered as before -> after.
 */
std::string format_cost_table( const compilation_result& result );

} // namespace qda
