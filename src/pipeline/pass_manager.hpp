/*! \file pass_manager.hpp
 *  \brief Pipeline execution engine with instrumentation and caching.
 *
 *  Executes a `pipeline_spec` over a `staged_ir`: each pass is resolved
 *  through the pass registry, its stage precondition is checked, its
 *  wall-clock time and circuit-size effect are recorded in a
 *  `pass_report`, and the whole compilation can be memoized in a cache
 *  keyed on the input fingerprint plus the canonical pipeline spec --
 *  repeated compilations of the same program (the common case in
 *  batched/server settings) return instantly.
 */
#pragma once

#include "pipeline/ir.hpp"
#include "pipeline/spec_parser.hpp"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace qda
{

/*! \brief Record of one executed pass. */
struct pass_report
{
  std::string name;      /*!< pass name */
  std::string arguments; /*!< canonical argument rendering */

  stage stage_before = stage::empty;
  stage stage_after = stage::empty;

  double elapsed_ms = 0.0;

  /*! Gate count at the pass boundary (reversible or quantum stage;
   *  0 when the stage has no circuit yet). */
  uint64_t gates_before = 0u;
  uint64_t gates_after = 0u;

  /*! Clean helper qubits (ancillae) at the pass boundary; nonzero only
   *  once the quantum stage exists. */
  uint32_t helpers_before = 0u;
  uint32_t helpers_after = 0u;

  /*! Full statistics, recorded when a quantum/mapped circuit exists. */
  std::optional<circuit_statistics> statistics_before;
  std::optional<circuit_statistics> statistics_after;
};

/*! \brief Compilation cache counters. */
struct cache_statistics
{
  uint64_t hits = 0u;
  uint64_t misses = 0u;
  uint64_t entries = 0u;
};

/*! \brief Result of running a pipeline. */
struct compilation_result
{
  staged_ir ir;
  std::vector<pass_report> reports;
  std::string spec;      /*!< canonical spec string */
  uint64_t cache_key = 0u;
  bool cache_hit = false;
  double total_ms = 0.0;
};

/*! \brief Executes pipelines over the staged IR. */
class pass_manager
{
public:
  /*! \brief `max_cache_entries` bounds the memoization cache; the
   *         oldest compilation is evicted first (FIFO).
   */
  explicit pass_manager( bool enable_cache = true,
                         const pass_registry& registry = pass_registry::instance(),
                         size_t max_cache_entries = 256u );

  /*! \brief Parses and runs RevKit shell syntax from the empty stage. */
  compilation_result run( const std::string& spec_text );

  /*! \brief Runs a parsed pipeline from the empty stage. */
  compilation_result run( const pipeline_spec& spec );

  /*! \brief Runs a parsed pipeline over an existing IR. */
  compilation_result run( const pipeline_spec& spec, staged_ir initial );

  /*! \brief Applies one pass to an IR, enforcing its stage signature
   *         (std::logic_error on violation) and argument vocabulary
   *         (std::invalid_argument).  Used by the fluent `qda::flow`.
   *
   *  `stats_before` (when non-null) spares recomputing the entry
   *  statistics the caller already knows from the previous report.
   */
  static pass_report apply_pass( staged_ir& ir, const pass_invocation& invocation,
                                 const pass_registry& registry = pass_registry::instance(),
                                 const std::optional<circuit_statistics>* stats_before = nullptr );

  static pass_report apply_pass( staged_ir& ir, const std::string& name,
                                 const pass_arguments& args = {},
                                 const pass_registry& registry = pass_registry::instance() );

  /*! \brief Fingerprint of (initial IR, spec); the cache key. */
  static uint64_t compute_cache_key( const pipeline_spec& spec, const staged_ir& initial );

  cache_statistics cache_stats() const;
  void clear_cache();

private:
  /*! A cached compilation plus an independent second fingerprint of
   *  its (initial IR, spec) input; a stale hit requires both 64-bit
   *  hashes to collide at once.  The result is held by shared_ptr so a
   *  hit only copies a pointer while the mutex is held; the deep copy
   *  happens outside the lock. */
  struct cache_entry
  {
    std::shared_ptr<const compilation_result> result;
    uint64_t check = 0u;
  };

  const pass_registry& registry_;
  bool cache_enabled_;
  size_t max_cache_entries_;

  mutable std::mutex cache_mutex_;
  std::map<uint64_t, cache_entry> cache_;
  std::deque<uint64_t> cache_order_; /*!< insertion order for FIFO eviction */
  cache_statistics cache_stats_;
};

/*! \brief Human-readable per-pass table of a compilation. */
std::string format_report( const compilation_result& result );

/*! \brief Fig. 6-style per-pass cost-delta table: what each pass did to
 *         T-count, CNOT count, depth, qubits and ancillae.  Rows appear
 *         once a quantum circuit exists (earlier passes show the MCT
 *         gate count only); deltas are rendered as before -> after.
 */
std::string format_cost_table( const compilation_result& result );

} // namespace qda
