/*! \file pass_registry.hpp
 *  \brief Named compilation passes with declared stage signatures.
 *
 *  Every transformation of the flow -- the RevKit commands of the
 *  paper's Eq. (5) (`revgen`, `tbs`, `dbs`, `revsimp`, `rptm`, `tpar`,
 *  `ps`) plus `peephole` and device `route` -- registers here under its
 *  shell name with the stages it accepts and the stage it produces.
 *  The pass manager and the pipeline-spec parser resolve names through
 *  this registry, so new passes become available to the shell syntax by
 *  registering alone.
 */
#pragma once

#include "fault/cancel.hpp"
#include "pipeline/ir.hpp"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qda::library
{
class subcircuit_library;
}

namespace qda
{

/*! \brief Parsed command-line style arguments of one pass invocation.
 *
 *  RevKit shell conventions: `--name value` is an option, `--name`
 *  without a following value is a long flag, `-c` is a short flag, and
 *  bare words are positional.
 */
class pass_arguments
{
public:
  pass_arguments() = default;

  void add_flag( std::string name );
  void add_option( std::string name, std::string value );
  void add_positional( std::string value );

  /*! \brief Sorts options and flags by name so argument order does not
   *         affect equality, rendering, or cache keys.  Positional
   *         arguments keep their order (it is meaningful).  Lookup is
   *         by name everywhere, so canonicalization never changes what
   *         a pass sees.  The spec parser canonicalizes every parsed
   *         invocation.
   */
  void canonicalize();

  bool empty() const noexcept;

  bool has_flag( const std::string& name ) const;
  bool has_option( const std::string& name ) const;

  /*! \brief Value of option `name`, if present. */
  std::optional<std::string> option( const std::string& name ) const;

  /*! \brief Option parsed as unsigned integer.
   *         Throws std::invalid_argument if absent or malformed.
   */
  uint64_t option_uint( const std::string& pass, const std::string& name ) const;

  /*! \brief Like option_uint, but returns `fallback` when absent. */
  uint64_t option_uint_or( const std::string& pass, const std::string& name,
                           uint64_t fallback ) const;

  const std::vector<std::string>& flags() const noexcept { return flags_; }
  const std::vector<std::pair<std::string, std::string>>& options() const noexcept
  {
    return options_;
  }
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /*! \brief Canonical shell rendering ("--hwb 4", "-c"). */
  std::string to_string() const;

private:
  std::vector<std::string> flags_;
  std::vector<std::pair<std::string, std::string>> options_;
  std::vector<std::string> positional_;
};

/*! \brief Execution context handed to every pass invocation.
 *
 *  Carries the job's cooperative cancellation token; passes with long
 *  inner loops (tpar resynthesis, SABRE, simulator compilation) thread
 *  it into their subsystem options so deadlines and client cancels
 *  take effect mid-pass, not just at pass boundaries.  Default
 *  construction yields a detached context (nothing cancellable) for
 *  direct `apply_pass` callers like `qda::flow`.
 */
struct pass_context
{
  cancel_token cancel;
  /*! Cross-compilation subcircuit library; rptm and tpar splice cached
   *  optimized forms through it.  Null (the default for direct
   *  `apply_pass` callers) disables splicing entirely. */
  library::subcircuit_library* library = nullptr;
};

/*! \brief One registered pass. */
struct pass_info
{
  std::string name;    /*!< shell name (e.g. "tbs") */
  std::string summary; /*!< one-line description */

  std::vector<stage> accepts; /*!< stages the pass may start from */

  /*! Stage after the pass; nullopt = inspection pass, stage preserved. */
  std::optional<stage> produces;

  /*! Argument vocabulary, used to reject malformed invocations. */
  std::vector<std::string> known_options;
  std::vector<std::string> known_flags;

  /*! Subset of `known_options` whose values must parse as unsigned
   *  integers (validated statically by check_arguments). */
  std::vector<std::string> uint_options;

  std::function<void( staged_ir&, const pass_arguments&, const pass_context& )> run;

  /*! True when the pass is an optional optimization the pass manager
   *  may skip (rolling its effect back) under a `degrade` failure
   *  policy.  Only passes whose produced stage equals their input stage
   *  (revsimp, tpar, peephole) qualify; synthesis and mapping stay
   *  strict because skipping them yields no valid circuit. */
  bool degradable = false;

  /*! \brief True if the pass may start from stage `s`. */
  bool accepts_stage( stage s ) const;

  /*! \brief Throws std::invalid_argument for arguments outside the
   *         declared vocabulary.
   */
  void check_arguments( const pass_arguments& args ) const;
};

/*! \brief Registry of all compilation passes. */
class pass_registry
{
public:
  /*! \brief The process-wide registry, with built-in passes installed. */
  static pass_registry& instance();

  /*! \brief An empty registry (for tests / custom tool flows). */
  pass_registry() = default;

  /*! \brief Registers a pass; throws std::invalid_argument on duplicate
   *         or empty name.
   */
  void register_pass( pass_info info );

  bool contains( const std::string& name ) const;

  /*! \brief Looks a pass up; throws std::invalid_argument if unknown. */
  const pass_info& at( const std::string& name ) const;

  /*! \brief Registered pass names, sorted. */
  std::vector<std::string> names() const;

  size_t size() const noexcept { return passes_.size(); }

private:
  std::map<std::string, pass_info> passes_;
};

/*! \brief Installs the built-in passes (revgen, tbs, dbs, revsimp,
 *         rptm, tpar, peephole, route, ps) into `registry`.
 */
void register_builtin_passes( pass_registry& registry );

} // namespace qda
