/*! \file ir.hpp
 *  \brief Staged intermediate representation of the compilation pipeline.
 *
 *  The paper's Eq. (5) flow is staged: `revgen` produces a permutation,
 *  a synthesis command turns it into a reversible MCT circuit, `rptm`
 *  maps that to a Clifford+T quantum circuit, and routing legalizes it
 *  for a physical device.  `staged_ir` carries a program through those
 *  representations; every pass (pipeline/pass_registry.hpp) declares
 *  which stages it accepts and which stage it produces, and the pass
 *  manager validates the transitions.
 *
 *  Both circuit-carrying stages hold facades over the same unified
 *  gate-graph core (`qda::ir::circuit`, src/circuit/): `rev_circuit`
 *  with the MCT policy, `qcircuit` with the Clifford+T policy.  Stage
 *  transitions therefore move one storage representation through
 *  `circuit_cast` lowerings instead of converting between unrelated
 *  containers.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "mapping/clifford_t.hpp"
#include "mapping/router.hpp"
#include "quantum/qcircuit.hpp"
#include "reversible/rev_circuit.hpp"

#include <optional>
#include <stdexcept>
#include <string>

namespace qda
{

/*! \brief Compilation stages, in pipeline order. */
enum class stage : uint8_t
{
  empty,       /*!< nothing loaded yet */
  permutation, /*!< Boolean-function level (after a generator) */
  reversible,  /*!< MCT circuit level (after synthesis) */
  quantum,     /*!< Clifford+T level (after rptm) */
  mapped       /*!< device level (after routing) */
};

/*! \brief Printable stage name ("unknown" for invalid enum values). */
inline const char* stage_name( stage s )
{
  switch ( s )
  {
  case stage::empty: return "empty";
  case stage::permutation: return "permutation";
  case stage::reversible: return "reversible";
  case stage::quantum: return "quantum";
  case stage::mapped: return "mapped";
  }
  return "unknown";
}

/*! \brief A program moving through the pipeline stages.
 *
 *  Earlier-stage artifacts are kept when a later stage is entered (the
 *  permutation remains available for verification after mapping);
 *  re-entering an earlier stage resets everything downstream.
 */
struct staged_ir
{
  std::optional<permutation> target_permutation;
  std::optional<rev_circuit> reversible;
  std::optional<clifford_t_result> quantum;
  std::optional<routing_result> mapped;

  /*! \brief Statistics recorded by the most recent `ps` pass. */
  std::optional<circuit_statistics> last_statistics;

  stage current = stage::empty;

  /* ---- stage transitions (reset all downstream artifacts) ---- */

  void set_permutation( permutation p )
  {
    target_permutation = std::move( p );
    reversible.reset();
    quantum.reset();
    mapped.reset();
    current = stage::permutation;
  }

  void set_reversible( rev_circuit c )
  {
    reversible = std::move( c );
    quantum.reset();
    mapped.reset();
    current = stage::reversible;
  }

  void set_quantum( clifford_t_result r )
  {
    quantum = std::move( r );
    mapped.reset();
    current = stage::quantum;
  }

  void set_mapped( routing_result r )
  {
    mapped = std::move( r );
    current = stage::mapped;
  }

  /* ---- checked accessors ---- */

  const permutation& require_permutation() const
  {
    if ( !target_permutation )
    {
      throw std::logic_error( "pipeline: no permutation; run a generator (revgen) first" );
    }
    return *target_permutation;
  }

  const rev_circuit& require_reversible() const
  {
    if ( !reversible )
    {
      throw std::logic_error( "pipeline: no reversible circuit; run a synthesis command first" );
    }
    return *reversible;
  }

  const clifford_t_result& require_quantum() const
  {
    if ( !quantum )
    {
      throw std::logic_error( "pipeline: no quantum circuit; run rptm first" );
    }
    return *quantum;
  }

  const routing_result& require_mapped() const
  {
    if ( !mapped )
    {
      throw std::logic_error( "pipeline: no mapped circuit; run route first" );
    }
    return *mapped;
  }

  /*! \brief The circuit of the deepest stage reached (quantum or mapped). */
  const qcircuit& current_circuit() const
  {
    if ( mapped )
    {
      return mapped->circuit;
    }
    return require_quantum().circuit;
  }

  /*! \brief Gate count of the current stage's circuit (0 before synthesis). */
  uint64_t current_gate_count() const
  {
    switch ( current )
    {
    case stage::reversible:
      return reversible ? reversible->num_gates() : 0u;
    case stage::quantum:
      return quantum ? quantum->circuit.num_gates() : 0u;
    case stage::mapped:
      return mapped ? mapped->circuit.num_gates() : 0u;
    default:
      return 0u;
    }
  }

  /*! \brief Statistics of the current circuit, when a quantum or mapped
   *         circuit exists.
   */
  std::optional<circuit_statistics> current_statistics() const
  {
    if ( current == stage::quantum && quantum )
    {
      return compute_statistics( quantum->circuit );
    }
    if ( current == stage::mapped && mapped )
    {
      return compute_statistics( mapped->circuit );
    }
    return std::nullopt;
  }
};

} // namespace qda
