/*! \file timing.hpp
 *  \brief Forwarding header: the wall-clock helpers moved to
 *         telemetry/clock.hpp when the observability subsystem landed.
 *
 *  Kept so pre-telemetry includes (`pipeline/timing.hpp` for
 *  `qda::detail::elapsed_ms_since`) keep compiling; new code should
 *  include telemetry/clock.hpp directly.
 */
#pragma once

#include "telemetry/clock.hpp"
