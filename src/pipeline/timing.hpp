/*! \file timing.hpp
 *  \brief Shared wall-clock helper of the pipeline instrumentation.
 */
#pragma once

#include <chrono>

namespace qda::detail
{

using steady_clock = std::chrono::steady_clock;

inline double elapsed_ms_since( steady_clock::time_point start )
{
  return std::chrono::duration<double, std::milli>( steady_clock::now() - start ).count();
}

} // namespace qda::detail
