#include "pipeline/target.hpp"

#include "core/ibm_backend.hpp"
#include "pipeline/timing.hpp"
#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"

#include <stdexcept>

namespace qda
{

namespace
{

using detail::elapsed_ms_since;
using detail::steady_clock;

/* ---- state-vector backend ---- */

class statevector_target final : public target
{
public:
  const std::string& name() const noexcept override { return name_; }

  std::string description() const override
  {
    return "exact state-vector simulation (all 2^n amplitudes; fused, "
           "specialized, multithreaded kernels -- see QDA_SIM_THREADS)";
  }

  std::string unsupported_reason( const qcircuit& circuit ) const override
  {
    if ( circuit.num_qubits() > 26u )
    {
      return "statevector: " + std::to_string( circuit.num_qubits() ) +
             " qubits exceed the 26-qubit state-vector limit";
    }
    return {};
  }

  execution_result execute( const qcircuit& circuit, uint64_t shots, uint64_t seed ) override
  {
    const auto start = steady_clock::now();
    execution_result result;
    result.target_name = name_;
    result.shots = shots;
    result.counts = sample_counts( circuit, shots, seed );
    result.elapsed_ms = elapsed_ms_since( start );
    return result;
  }

private:
  std::string name_ = "statevector";
};

/* ---- stabilizer backend ---- */

class stabilizer_target final : public target
{
public:
  const std::string& name() const noexcept override { return name_; }

  std::string description() const override
  {
    return "Aaronson-Gottesman CHP tableau simulation (Clifford only; "
           "one-run snapshot sampling across shots)";
  }

  std::string unsupported_reason( const qcircuit& circuit ) const override
  {
    for ( const auto& gate : circuit.gates() )
    {
      switch ( gate.kind )
      {
      case gate_kind::h:
      case gate_kind::x:
      case gate_kind::y:
      case gate_kind::z:
      case gate_kind::s:
      case gate_kind::sdg:
      case gate_kind::cx:
      case gate_kind::cz:
      case gate_kind::swap:
      case gate_kind::measure:
      case gate_kind::barrier:
      case gate_kind::global_phase:
        break;
      default:
        return "stabilizer: non-Clifford gate '" + gate_name( gate.kind ) +
               "' cannot be simulated on the tableau backend";
      }
    }
    return {};
  }

  execution_result execute( const qcircuit& circuit, uint64_t shots, uint64_t seed ) override
  {
    const auto start = steady_clock::now();
    execution_result result;
    result.target_name = name_;
    result.shots = shots;
    result.counts = stabilizer_sample_counts( circuit, shots, seed );
    result.elapsed_ms = elapsed_ms_since( start );
    return result;
  }

private:
  std::string name_ = "stabilizer";
};

/* ---- noisy device backend ---- */

class device_target final : public target
{
public:
  device_target( std::string name, coupling_map device, noise_model model )
      : name_( std::move( name ) ), device_( std::move( device ) ), model_( model )
  {
  }

  const std::string& name() const noexcept override { return name_; }

  std::string description() const override
  {
    return "noisy device model on the " + device_.name() + " coupling map";
  }

  bool constrained() const noexcept override { return true; }

  const coupling_map* device() const noexcept override { return &device_; }

  mapping_cost_weights cost_weights() const override
  {
    return mapping_cost_weights::noisy_device();
  }

  std::string unsupported_reason( const qcircuit& circuit ) const override
  {
    /* multi-controlled gates are fine: execute() lowers them with this
     * target's cost weights under the device qubit budget */
    if ( circuit.num_qubits() > device_.num_qubits() )
    {
      return name_ + ": circuit needs " + std::to_string( circuit.num_qubits() ) +
             " qubits but the device has " + std::to_string( device_.num_qubits() );
    }
    return {};
  }

  execution_result execute( const qcircuit& circuit, uint64_t shots, uint64_t seed ) override
  {
    const auto start = steady_clock::now();
    const auto execution =
        run_on_ibm_model( circuit, device_, model_, shots, seed, cost_weights() );
    execution_result result;
    result.target_name = name_;
    result.shots = shots;
    result.counts = execution.counts;
    result.added_swaps = execution.added_swaps;
    result.added_direction_fixes = execution.added_direction_fixes;
    result.elapsed_ms = elapsed_ms_since( start );
    return result;
  }

private:
  std::string name_;
  coupling_map device_;
  noise_model model_;
};

} // namespace

std::string target::unsupported_reason( const qcircuit& ) const
{
  return {};
}

std::unique_ptr<target> make_statevector_target()
{
  return std::make_unique<statevector_target>();
}

std::unique_ptr<target> make_stabilizer_target()
{
  return std::make_unique<stabilizer_target>();
}

std::unique_ptr<target> make_device_target( std::string name, coupling_map device,
                                            noise_model model )
{
  return std::make_unique<device_target>( std::move( name ), std::move( device ), model );
}

/* ---------------------------------------------------------------- */
/* target_registry                                                  */
/* ---------------------------------------------------------------- */

target_registry& target_registry::instance()
{
  static target_registry registry = [] {
    target_registry r;
    register_builtin_targets( r );
    return r;
  }();
  return registry;
}

void target_registry::register_target( std::shared_ptr<target> backend )
{
  if ( !backend || backend->name().empty() )
  {
    throw std::invalid_argument( "target_registry: target name must not be empty" );
  }
  if ( targets_.count( backend->name() ) != 0u )
  {
    throw std::invalid_argument( "target_registry: duplicate target '" + backend->name() +
                                 "'" );
  }
  targets_.emplace( backend->name(), std::move( backend ) );
}

bool target_registry::contains( const std::string& name ) const
{
  return targets_.count( name ) != 0u;
}

target& target_registry::at( const std::string& name ) const
{
  const auto it = targets_.find( name );
  if ( it == targets_.end() )
  {
    throw std::invalid_argument( "target_registry: unknown target '" + name + "'" );
  }
  return *it->second;
}

std::vector<std::string> target_registry::names() const
{
  std::vector<std::string> result;
  result.reserve( targets_.size() );
  for ( const auto& [name, backend] : targets_ )
  {
    result.push_back( name );
  }
  return result;
}

execution_result target_registry::run( const std::string& name, const qcircuit& circuit,
                                       uint64_t shots, uint64_t seed ) const
{
  auto& backend = at( name );
  const auto reason = backend.unsupported_reason( circuit );
  if ( !reason.empty() )
  {
    throw std::invalid_argument( "target_registry: " + reason );
  }
  return backend.execute( circuit, shots, seed );
}

void register_builtin_targets( target_registry& registry )
{
  registry.register_target( make_statevector_target() );
  registry.register_target( make_stabilizer_target() );
  registry.register_target(
      make_device_target( "ibm_qx2", coupling_map::ibm_qx2(), noise_model::ibm_qx4_early2018() ) );
  registry.register_target(
      make_device_target( "ibm_qx4", coupling_map::ibm_qx4(), noise_model::ibm_qx4_early2018() ) );
  registry.register_target(
      make_device_target( "ibm_qx4_ideal", coupling_map::ibm_qx4(), noise_model::ideal() ) );
  registry.register_target(
      make_device_target( "ibm_qx5", coupling_map::ibm_qx5(), noise_model::ibm_qx4_early2018() ) );
}

} // namespace qda
