/*! \file target.hpp
 *  \brief Execution targets: one interface over every backend.
 *
 *  The paper's ProjectQ flow swaps the local simulator for the IBM chip
 *  "by changing two lines of code" (Sec. VII).  This module provides
 *  that property for our stack: the state-vector simulator, the
 *  stabilizer (CHP) simulator and the noisy IBM device model all
 *  implement `target`, and the `target_registry` dispatches a compiled
 *  circuit to any of them by name.  Routing is applied only for
 *  constrained targets (those with a coupling map).
 */
#pragma once

#include "mapping/coupling_map.hpp"
#include "mapping/mct_lowering.hpp"
#include "quantum/qcircuit.hpp"
#include "simulator/noise.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qda
{

/*! \brief One backend execution. */
struct execution_result
{
  std::string target_name;
  std::map<uint64_t, uint64_t> counts; /*!< outcome (by measure order) -> shots */
  uint64_t shots = 0u;

  /* routing bookkeeping; 0 for unconstrained targets */
  uint64_t added_swaps = 0u;
  uint64_t added_direction_fixes = 0u;

  double elapsed_ms = 0.0;
};

/*! \brief An execution backend. */
class target
{
public:
  virtual ~target() = default;

  virtual const std::string& name() const noexcept = 0;
  virtual std::string description() const = 0;

  /*! \brief True if circuits must be routed onto a coupling map. */
  virtual bool constrained() const noexcept { return false; }

  /*! \brief The device topology of a constrained target, else nullptr. */
  virtual const coupling_map* device() const noexcept { return nullptr; }

  /*! \brief Weights of the mapping cost model for this backend; the
   *         `rptm` pass derives per-gate MCT lowering decisions from
   *         them (`rptm --cost-target NAME`).  Defaults to balanced
   *         weights; noisy devices weight CNOTs heavily.
   */
  virtual mapping_cost_weights cost_weights() const { return {}; }

  /*! \brief Empty string if the circuit can run here, else the reason
   *         it cannot (e.g. non-Clifford gate on the stabilizer target).
   */
  virtual std::string unsupported_reason( const qcircuit& circuit ) const;

  /*! \brief Executes `shots` shots.  The circuit is assumed legal for
   *         the target (the registry routes constrained targets first).
   */
  virtual execution_result execute( const qcircuit& circuit, uint64_t shots,
                                    uint64_t seed ) = 0;
};

/* ---- backend factories ---- */

/*! \brief Full state-vector simulation (exact, <= ~26 qubits). */
std::unique_ptr<target> make_statevector_target();

/*! \brief Stabilizer (CHP) simulation (Clifford circuits, hundreds of qubits). */
std::unique_ptr<target> make_stabilizer_target();

/*! \brief Noisy device model behind a coupling map (routing + Pauli noise). */
std::unique_ptr<target> make_device_target( std::string name, coupling_map device,
                                            noise_model model );

/*! \brief Dispatch table of execution backends. */
class target_registry
{
public:
  /*! \brief The process-wide registry with the built-in targets
   *         (statevector, stabilizer, ibm_qx2/ibm_qx4/ibm_qx5 noisy
   *         models and ibm_qx4_ideal).
   */
  static target_registry& instance();

  /*! \brief An empty registry (for tests / custom deployments). */
  target_registry() = default;

  /*! \brief Registers a target; throws std::invalid_argument on
   *         duplicate or empty name.
   */
  void register_target( std::shared_ptr<target> backend );

  bool contains( const std::string& name ) const;

  /*! \brief Looks a target up; throws std::invalid_argument if unknown. */
  target& at( const std::string& name ) const;

  /*! \brief Registered target names, sorted. */
  std::vector<std::string> names() const;

  size_t size() const noexcept { return targets_.size(); }

  /*! \brief Runs `circuit` on the named target.
   *
   *  Constrained targets get the circuit routed onto their coupling map
   *  first (SWAP insertion / direction fixes recorded in the result);
   *  unconstrained targets execute the logical circuit directly.
   *  Throws std::invalid_argument for an unknown target or a circuit
   *  the target cannot execute.
   */
  execution_result run( const std::string& name, const qcircuit& circuit, uint64_t shots,
                        uint64_t seed = 1u ) const;

private:
  std::map<std::string, std::shared_ptr<target>> targets_;
};

/*! \brief Installs the built-in targets into `registry`. */
void register_builtin_targets( target_registry& registry );

} // namespace qda
