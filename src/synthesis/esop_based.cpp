#include "synthesis/esop_based.hpp"

#include "synthesis/single_target.hpp"

#include <numeric>
#include <stdexcept>

namespace qda
{

rev_circuit esop_based_synthesis( const std::vector<truth_table>& outputs )
{
  if ( outputs.empty() )
  {
    throw std::invalid_argument( "esop_based_synthesis: no outputs" );
  }
  const uint32_t num_inputs = outputs.front().num_vars();
  for ( const auto& output : outputs )
  {
    if ( output.num_vars() != num_inputs )
    {
      throw std::invalid_argument( "esop_based_synthesis: mixed input arities" );
    }
  }

  rev_circuit circuit( num_inputs + static_cast<uint32_t>( outputs.size() ) );
  std::vector<uint32_t> input_lines( num_inputs );
  std::iota( input_lines.begin(), input_lines.end(), 0u );

  for ( uint32_t j = 0u; j < outputs.size(); ++j )
  {
    append_single_target_gate( circuit, outputs[j], input_lines, num_inputs + j );
  }
  return circuit;
}

rev_circuit esop_based_synthesis( const truth_table& output )
{
  return esop_based_synthesis( std::vector<truth_table>{ output } );
}

} // namespace qda
