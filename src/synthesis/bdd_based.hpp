/*! \file bdd_based.hpp
 *  \brief Hierarchical BDD-based reversible synthesis (Wille-Drechsler).
 *
 *  Scalable synthesis for large functions (paper Sec. V, ref [45]):
 *  every internal BDD node is computed onto a fresh ancilla line with a
 *  two-gate multiplexer template
 *
 *      t  ^=  x . f_high   ;   t  ^=  !x . f_low
 *
 *  so the number of ancillae equals the number of BDD nodes.  The
 *  resulting circuit leaves intermediate node values as garbage; the
 *  `uncompute_garbage` option restores them with a mirrored cascade
 *  after copying the outputs (Bennett compute-copy-uncompute).
 */
#pragma once

#include "bdd/bdd.hpp"
#include "reversible/rev_circuit.hpp"

#include <vector>

namespace qda
{

/*! \brief Result of hierarchical synthesis: circuit plus line roles. */
struct hierarchical_synthesis_result
{
  rev_circuit circuit;               /*!< the synthesized circuit */
  std::vector<uint32_t> output_lines; /*!< line carrying each output */
  uint32_t num_ancillae = 0u;        /*!< helper lines beyond the inputs */
  uint32_t num_garbage = 0u;         /*!< ancillae left in a non-zero state */
};

/*! \brief BDD-based synthesis of the functions rooted at `roots`.
 *
 *  With `uncompute_garbage`, output values are copied to dedicated
 *  lines and all node ancillae are returned to |0> (doubling the gate
 *  count, paper Sec. V ancilla discussion).
 */
hierarchical_synthesis_result bdd_based_synthesis( bdd_manager& manager,
                                                   const std::vector<bdd_node>& roots,
                                                   bool uncompute_garbage = false );

/*! \brief Convenience: builds the BDD of `function` first. */
hierarchical_synthesis_result bdd_based_synthesis( const truth_table& function,
                                                   bool uncompute_garbage = false );

} // namespace qda
