/*! \file revgen.hpp
 *  \brief Benchmark function and permutation generators (RevKit `revgen`).
 *
 *  The paper's Eq. (5) pipeline starts with `revgen --hwb 4`; this module
 *  provides that generator and the other reversible benchmark families
 *  used by the evaluation harness: hidden-weighted-bit, modular adders,
 *  bit rotations, Grey-code walks and the Maiorana-McFarland
 *  permutations of the hidden shift instances.
 */
#pragma once

#include "kernel/permutation.hpp"

#include <cstdint>

namespace qda
{

/*! \brief Hidden-weighted-bit permutation over n lines:
 *         x -> x rotated left by weight(x) positions (a permutation
 *         because rotation preserves weight).
 */
permutation hwb_permutation( uint32_t num_vars );

/*! \brief Modular adder: x -> (x + addend) mod 2^n. */
permutation modular_adder_permutation( uint32_t num_vars, uint64_t addend );

/*! \brief Bit rotation: x -> rotl(x, shift) over n bits. */
permutation rotation_permutation( uint32_t num_vars, uint32_t shift );

/*! \brief Grey-code permutation: x -> x xor (x >> 1). */
permutation gray_code_permutation( uint32_t num_vars );

/*! \brief Multiplication by an odd constant mod 2^n (a bijection). */
permutation modular_multiplier_permutation( uint32_t num_vars, uint64_t odd_factor );

/*! \brief The permutation pi = [0, 2, 3, 5, 7, 1, 4, 6] of paper Fig. 7. */
permutation paper_fig7_permutation();

} // namespace qda
