/*! \file esop_based.hpp
 *  \brief ESOP-based reversible synthesis (Bennett embedding).
 *
 *  Realizes an irreversible function f : B^n -> B^m as the reversible
 *  circuit for the Bennett embedding (paper Eq. (3))
 *
 *      |x>|y>  ->  |x>|y xor f(x)>
 *
 *  over n + m lines with no ancillae (paper Sec. V, refs [56]-[58]):
 *  every cube of an ESOP cover of output j becomes one MCT gate
 *  targeting line n + j.
 */
#pragma once

#include "kernel/truth_table.hpp"
#include "reversible/rev_circuit.hpp"

#include <vector>

namespace qda
{

/*! \brief ESOP-based synthesis of a multi-output function.
 *
 *  All outputs must share the same input arity n; the result has
 *  n + outputs.size() lines, inputs on lines 0..n-1, outputs XORed
 *  onto lines n..n+m-1.
 */
rev_circuit esop_based_synthesis( const std::vector<truth_table>& outputs );

/*! \brief Single-output convenience overload. */
rev_circuit esop_based_synthesis( const truth_table& output );

} // namespace qda
