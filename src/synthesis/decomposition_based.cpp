#include "synthesis/decomposition_based.hpp"

#include "kernel/bits.hpp"
#include "synthesis/single_target.hpp"

#include <stdexcept>
#include <vector>

namespace qda
{

namespace
{

/*! Control functions of the two single-target gates of one variable step. */
struct variable_step
{
  truth_table right; /*!< control function of R_i (over all n vars, ignoring x_i) */
  truth_table left;  /*!< control function of L_i */
  bool trivial;      /*!< true if bit i was already preserved */
};

/*! Computes R_i and L_i such that L_i o pi o R_i preserves bit `var`,
 *  then replaces `images` by the middle permutation.
 */
variable_step decompose_variable( std::vector<uint64_t>& images, uint32_t num_vars, uint32_t var )
{
  const uint64_t size = images.size();
  const uint64_t bit = uint64_t{ 1 } << var;

  variable_step step{ truth_table( num_vars ), truth_table( num_vars ), true };

  for ( uint64_t x = 0u; x < size; ++x )
  {
    if ( ( images[x] & bit ) != ( x & bit ) )
    {
      step.trivial = false;
      break;
    }
  }
  if ( step.trivial )
  {
    return step;
  }

  /* inverse for preimage lookups */
  std::vector<uint64_t> inverse( size );
  for ( uint64_t x = 0u; x < size; ++x )
  {
    inverse[images[x]] = x;
  }

  /* slot assignment: r(rep) = which element of the input pair goes
   * through the middle with bit var = 0; l derived from slot-0 values */
  std::vector<int8_t> r_assignment( size, -1 ); /* indexed by input rep (bit var = 0) */

  for ( uint64_t start = 0u; start < size; ++start )
  {
    if ( ( start & bit ) != 0u || r_assignment[start] != -1 )
    {
      continue;
    }
    uint64_t rep = start;
    uint8_t r_value = 0u;
    r_assignment[rep] = 0;
    while ( true )
    {
      /* slot-0 value of this input pair */
      const uint64_t slot0 = images[rep | ( r_value ? bit : 0u )];
      /* L must clear bit var on slot0 (and consequently set it on its partner) */
      const uint64_t out_rep = slot0 & ~bit;
      if ( ( slot0 & bit ) != 0u )
      {
        step.left.set_bit( out_rep, true );
        step.left.set_bit( out_rep | bit, true );
      }
      /* the partner element must exit through slot 1; force its input pair */
      const uint64_t partner_preimage = inverse[slot0 ^ bit];
      const uint64_t next_rep = partner_preimage & ~bit;
      const uint8_t occupied_side = ( partner_preimage & bit ) ? 1u : 0u;
      const uint8_t forced_r = occupied_side ^ 1u;
      if ( r_assignment[next_rep] != -1 )
      {
        if ( r_assignment[next_rep] != static_cast<int8_t>( forced_r ) )
        {
          throw std::logic_error( "decomposition_based_synthesis: inconsistent cycle coloring" );
        }
        break; /* cycle closed */
      }
      r_assignment[next_rep] = static_cast<int8_t>( forced_r );
      rep = next_rep;
      r_value = forced_r;
    }
  }

  /* expand r assignment into a truth table (independent of x_var) */
  for ( uint64_t rep = 0u; rep < size; ++rep )
  {
    if ( ( rep & bit ) != 0u )
    {
      continue;
    }
    if ( r_assignment[rep] == 1 )
    {
      step.right.set_bit( rep, true );
      step.right.set_bit( rep | bit, true );
    }
  }

  /* middle permutation: pi' = L o pi o R */
  std::vector<uint64_t> middle( size );
  for ( uint64_t x = 0u; x < size; ++x )
  {
    const uint64_t after_r = step.right.get_bit( x ) ? ( x ^ bit ) : x;
    uint64_t y = images[after_r];
    if ( step.left.get_bit( y ) )
    {
      y ^= bit;
    }
    middle[x] = y;
  }
  images = std::move( middle );
  return step;
}

/*! Restricts a truth table that is independent of `var` to the other
 *  variables (ascending order).
 */
truth_table restrict_away( const truth_table& function, uint32_t var )
{
  const uint32_t num_vars = function.num_vars();
  truth_table result( num_vars - 1u );
  for ( uint64_t x = 0u; x < result.num_bits(); ++x )
  {
    /* insert a zero bit at position var */
    const uint64_t low = x & ( ( uint64_t{ 1 } << var ) - 1u );
    const uint64_t high = ( x >> var ) << ( var + 1u );
    result.set_bit( x, function.get_bit( high | low ) );
  }
  return result;
}

std::vector<uint32_t> other_lines( uint32_t num_vars, uint32_t var )
{
  std::vector<uint32_t> lines;
  lines.reserve( num_vars - 1u );
  for ( uint32_t line = 0u; line < num_vars; ++line )
  {
    if ( line != var )
    {
      lines.push_back( line );
    }
  }
  return lines;
}

} // namespace

rev_circuit decomposition_based_synthesis( const permutation& target )
{
  const uint32_t num_vars = target.num_vars();
  std::vector<uint64_t> images = target.images();

  rev_circuit front( num_vars );
  std::vector<std::pair<truth_table, uint32_t>> back_gates; /* (control function, var) */

  for ( uint32_t var = 0u; var < num_vars; ++var )
  {
    const auto step = decompose_variable( images, num_vars, var );
    if ( step.trivial )
    {
      continue;
    }
    if ( !step.right.is_constant0() )
    {
      append_single_target_gate( front, restrict_away( step.right, var ),
                                 other_lines( num_vars, var ), var );
    }
    if ( !step.left.is_constant0() )
    {
      back_gates.emplace_back( restrict_away( step.left, var ), var );
    }
  }

  /* middle must now be the identity */
  for ( uint64_t x = 0u; x < images.size(); ++x )
  {
    if ( images[x] != x )
    {
      throw std::logic_error( "decomposition_based_synthesis: residual permutation not identity" );
    }
  }

  /* assemble R_0 .. R_{n-1} (already in `front`) then L_{n-1} .. L_0 */
  for ( auto it = back_gates.rbegin(); it != back_gates.rend(); ++it )
  {
    append_single_target_gate( front, it->first, other_lines( num_vars, it->second ), it->second );
  }
  return front;
}

} // namespace qda
