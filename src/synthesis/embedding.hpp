/*! \file embedding.hpp
 *  \brief Embedding irreversible functions into permutations.
 *
 *  Reversible synthesis algorithms that take a permutation as input
 *  (TBS, DBS) cannot directly process an irreversible f : B^n -> B^m;
 *  f must first be embedded into a reversible function over r >= n
 *  lines (paper Sec. V, Eq. (2)/(3)).  This module provides the
 *  standard Bennett embedding g(x, y) = (x, y xor f(x)) and a greedy
 *  minimal-garbage embedding for single-output functions.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "kernel/truth_table.hpp"

#include <vector>

namespace qda
{

/*! \brief Bennett embedding of a multi-output function:
 *         permutation over n + m lines with (x, y) -> (x, y xor f(x)).
 *         Inputs on the low n bits.
 */
permutation bennett_embedding( const std::vector<truth_table>& outputs );

/*! \brief Single-output convenience overload (n + 1 lines). */
permutation bennett_embedding( const truth_table& output );

/*! \brief Greedy minimal-line embedding of a single-output function.
 *
 *  Embeds f over r = n + 1 lines such that the least significant output
 *  bit equals f(x) when the extra input bit is 0, permuting the
 *  remaining output patterns greedily to preserve as many input bits as
 *  possible (a practical stand-in for the coNP-hard exact embedding of
 *  paper ref [53]).
 */
permutation greedy_embedding( const truth_table& output );

} // namespace qda
