/*! \file single_target.hpp
 *  \brief Single-target gates and their lowering to MCT cascades.
 *
 *  A single-target gate (STG) flips one target line iff a Boolean
 *  control function over some control lines evaluates to 1:
 *
 *      |x>|t>  ->  |x>|t xor c(x)>
 *
 *  STGs are the working currency of decomposition-based synthesis
 *  (Young subgroups) and LUT-based hierarchical synthesis; they are
 *  lowered to MCT gates through an ESOP cover of the control function
 *  (one MCT gate per cube).
 */
#pragma once

#include "kernel/truth_table.hpp"
#include "reversible/rev_circuit.hpp"

#include <cstdint>
#include <vector>

namespace qda
{

/*! \brief Appends an STG to `circuit`, lowered through an ESOP cover.
 *
 *  `control_function` is defined over `control_lines.size()` variables;
 *  variable i of the function corresponds to circuit line
 *  `control_lines[i]`.  The target must not appear in `control_lines`.
 */
void append_single_target_gate( rev_circuit& circuit, const truth_table& control_function,
                                const std::vector<uint32_t>& control_lines, uint32_t target );

/*! \brief Number of MCT gates the STG lowers to (cover size). */
uint64_t single_target_gate_cost( const truth_table& control_function );

} // namespace qda
