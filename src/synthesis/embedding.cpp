#include "synthesis/embedding.hpp"

#include <algorithm>
#include <stdexcept>

namespace qda
{

permutation bennett_embedding( const std::vector<truth_table>& outputs )
{
  if ( outputs.empty() )
  {
    throw std::invalid_argument( "bennett_embedding: no outputs" );
  }
  const uint32_t n = outputs.front().num_vars();
  const uint32_t m = static_cast<uint32_t>( outputs.size() );
  for ( const auto& output : outputs )
  {
    if ( output.num_vars() != n )
    {
      throw std::invalid_argument( "bennett_embedding: mixed input arities" );
    }
  }
  if ( n + m > 20u )
  {
    throw std::invalid_argument( "bennett_embedding: explicit table would be too large" );
  }

  permutation result( n + m );
  const uint64_t x_mask = ( uint64_t{ 1 } << n ) - 1u;
  for ( uint64_t row = 0u; row < result.size(); ++row )
  {
    const uint64_t x = row & x_mask;
    uint64_t y = row >> n;
    for ( uint32_t j = 0u; j < m; ++j )
    {
      if ( outputs[j].get_bit( x ) )
      {
        y ^= uint64_t{ 1 } << j;
      }
    }
    result.set_image( row, x | ( y << n ) );
  }
  return result;
}

permutation bennett_embedding( const truth_table& output )
{
  return bennett_embedding( std::vector<truth_table>{ output } );
}

permutation greedy_embedding( const truth_table& output )
{
  const uint32_t n = output.num_vars();
  if ( n + 1u > 20u )
  {
    throw std::invalid_argument( "greedy_embedding: explicit table would be too large" );
  }
  const uint64_t size = uint64_t{ 2 } << n;

  /* row layout: extra ancilla input bit is the MSB; output bit 0 must be
   * f(x) on ancilla = 0 rows.  Remaining images are matched greedily so
   * that the whole mapping is a bijection. */
  std::vector<int64_t> image( size, -1 );
  std::vector<bool> used( size, false );

  /* first pass: fix rows with ancilla = 0 to an image whose bit 0 is f(x),
   * preferring the image that keeps x's bits unchanged */
  for ( uint64_t x = 0u; x < size / 2u; ++x )
  {
    const uint64_t want_bit = output.get_bit( x ) ? 1u : 0u;
    const uint64_t preferred = ( ( x << 1u ) & ( size - 1u ) ) | want_bit;
    uint64_t candidate = preferred;
    while ( used[candidate] )
    {
      candidate = ( candidate + 2u ) % size; /* keep output bit 0 fixed */
      if ( candidate == preferred )
      {
        throw std::logic_error( "greedy_embedding: no candidate image left" );
      }
    }
    image[x] = static_cast<int64_t>( candidate );
    used[candidate] = true;
  }
  /* second pass: fill the ancilla = 1 rows with the remaining images */
  uint64_t next_unused = 0u;
  for ( uint64_t row = size / 2u; row < size; ++row )
  {
    while ( used[next_unused] )
    {
      ++next_unused;
    }
    image[row] = static_cast<int64_t>( next_unused );
    used[next_unused] = true;
  }

  std::vector<uint64_t> images( size );
  std::transform( image.begin(), image.end(), images.begin(),
                  []( int64_t v ) { return static_cast<uint64_t>( v ); } );
  return permutation::from_vector( std::move( images ) );
}

} // namespace qda
