#include "synthesis/single_target.hpp"

#include "esop/esop.hpp"

#include <algorithm>
#include <stdexcept>

namespace qda
{

void append_single_target_gate( rev_circuit& circuit, const truth_table& control_function,
                                const std::vector<uint32_t>& control_lines, uint32_t target )
{
  if ( control_function.num_vars() != control_lines.size() )
  {
    throw std::invalid_argument( "append_single_target_gate: arity mismatch" );
  }
  if ( std::find( control_lines.begin(), control_lines.end(), target ) != control_lines.end() )
  {
    throw std::invalid_argument( "append_single_target_gate: target among controls" );
  }
  const auto cover = esop_for_function( control_function );
  for ( const auto& term : cover )
  {
    uint64_t controls = 0u;
    uint64_t polarity = 0u;
    for ( uint32_t var = 0u; var < control_lines.size(); ++var )
    {
      if ( ( term.mask >> var ) & 1u )
      {
        controls |= uint64_t{ 1 } << control_lines[var];
        if ( ( term.polarity >> var ) & 1u )
        {
          polarity |= uint64_t{ 1 } << control_lines[var];
        }
      }
    }
    circuit.add_gate( rev_gate( controls, polarity, target ) );
  }
}

uint64_t single_target_gate_cost( const truth_table& control_function )
{
  return esop_for_function( control_function ).size();
}

} // namespace qda
