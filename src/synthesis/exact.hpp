/*! \file exact.hpp
 *  \brief Exact (gate-count optimal) reversible synthesis for small widths.
 *
 *  Breadth-first search over the full symmetric group reached by MCT
 *  gates, in the spirit of paper ref [49] (exact synthesis of
 *  elementary quantum gate circuits).  Feasible up to 3 lines
 *  (8! = 40320 permutations); used by the benchmarks to measure the
 *  optimality gap of the heuristic methods (TBS, DBS) on complete
 *  enumerations.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "reversible/rev_circuit.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qda
{

/*! \brief Optimal synthesizer with a precomputed BFS table. */
class exact_synthesizer
{
public:
  /*! \brief Precomputes distances for all permutations over `num_vars`
   *         lines (num_vars <= 3).  `mixed_polarity` adds negative
   *         controls to the gate library.
   */
  explicit exact_synthesizer( uint32_t num_vars, bool mixed_polarity = true );

  uint32_t num_vars() const noexcept { return num_vars_; }

  /*! \brief Minimal number of library gates realizing the permutation. */
  uint32_t optimal_gate_count( const permutation& target ) const;

  /*! \brief A gate-count optimal circuit for the permutation. */
  rev_circuit synthesize( const permutation& target ) const;

  /*! \brief The gate library used by the search. */
  const std::vector<rev_gate>& library() const noexcept { return library_; }

private:
  uint64_t encode( const std::vector<uint64_t>& images ) const;
  std::vector<uint64_t> apply_gate_to_outputs( const std::vector<uint64_t>& images,
                                               const rev_gate& gate ) const;

  uint32_t num_vars_;
  std::vector<rev_gate> library_;
  std::unordered_map<uint64_t, uint16_t> distance_;
};

} // namespace qda
