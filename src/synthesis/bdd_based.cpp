#include "synthesis/bdd_based.hpp"

#include <stdexcept>
#include <unordered_map>

namespace qda
{

namespace
{

/*! Appends the gates computing one BDD node onto line `target`.
 *
 *  node value = x ? high : low; terminals contribute constants:
 *    t ^= x . high_value   (omitted if high is constant 0)
 *    t ^= !x . low_value   (omitted if low is constant 0)
 */
void append_node_gates( rev_circuit& circuit, uint32_t var_line, uint32_t target,
                        bool high_terminal, bool high_value, uint32_t high_line,
                        bool low_terminal, bool low_value, uint32_t low_line )
{
  const uint64_t var_bit = uint64_t{ 1 } << var_line;
  if ( high_terminal )
  {
    if ( high_value )
    {
      circuit.add_gate( rev_gate( var_bit, var_bit, target ) ); /* t ^= x */
    }
  }
  else
  {
    const uint64_t mask = var_bit | ( uint64_t{ 1 } << high_line );
    circuit.add_gate( rev_gate( mask, mask, target ) ); /* t ^= x.high */
  }
  if ( low_terminal )
  {
    if ( low_value )
    {
      circuit.add_gate( rev_gate( var_bit, 0u, target ) ); /* t ^= !x */
    }
  }
  else
  {
    const uint64_t mask = var_bit | ( uint64_t{ 1 } << low_line );
    circuit.add_gate( rev_gate( mask, mask ^ var_bit, target ) ); /* t ^= !x.low */
  }
}

} // namespace

hierarchical_synthesis_result bdd_based_synthesis( bdd_manager& manager,
                                                   const std::vector<bdd_node>& roots,
                                                   bool uncompute_garbage )
{
  const uint32_t num_inputs = manager.num_vars();

  /* collect all nodes over all roots, children first, no duplicates */
  std::vector<bdd_node> order;
  std::unordered_map<bdd_node, uint32_t> node_line;
  for ( const auto root : roots )
  {
    for ( const auto node : manager.topological_order( root ) )
    {
      if ( !node_line.count( node ) )
      {
        node_line.emplace( node, 0u ); /* line assigned below */
        order.push_back( node );
      }
    }
  }

  const uint32_t num_node_lines = static_cast<uint32_t>( order.size() );
  const uint32_t num_output_lines = uncompute_garbage ? static_cast<uint32_t>( roots.size() ) : 0u;
  const uint32_t total_lines = num_inputs + num_node_lines + num_output_lines;
  if ( total_lines > 64u )
  {
    throw std::invalid_argument( "bdd_based_synthesis: function needs more than 64 lines" );
  }

  rev_circuit circuit( total_lines );
  for ( uint32_t i = 0u; i < num_node_lines; ++i )
  {
    node_line[order[i]] = num_inputs + i;
  }

  const auto compute_cascade = [&]( rev_circuit& target_circuit ) {
    for ( const auto node : order )
    {
      const auto low = manager.node_low( node );
      const auto high = manager.node_high( node );
      append_node_gates( target_circuit, manager.node_var( node ), node_line[node],
                         manager.is_terminal( high ), high == manager.constant( true ),
                         manager.is_terminal( high ) ? 0u : node_line[high],
                         manager.is_terminal( low ), low == manager.constant( true ),
                         manager.is_terminal( low ) ? 0u : node_line[low] );
    }
  };
  compute_cascade( circuit );

  hierarchical_synthesis_result result{ std::move( circuit ), {}, num_node_lines + num_output_lines,
                                        0u };

  if ( !uncompute_garbage )
  {
    for ( const auto root : roots )
    {
      if ( manager.is_terminal( root ) )
      {
        throw std::invalid_argument( "bdd_based_synthesis: constant root without output copy" );
      }
      result.output_lines.push_back( node_line[root] );
    }
    result.num_garbage = num_node_lines;
    return result;
  }

  /* copy outputs, then uncompute the node cascade in reverse */
  for ( uint32_t j = 0u; j < roots.size(); ++j )
  {
    const uint32_t output_line = num_inputs + num_node_lines + j;
    result.output_lines.push_back( output_line );
    if ( manager.is_terminal( roots[j] ) )
    {
      if ( roots[j] == manager.constant( true ) )
      {
        result.circuit.add_not( output_line );
      }
    }
    else
    {
      result.circuit.add_cnot( node_line[roots[j]], output_line );
    }
  }
  rev_circuit uncompute( result.circuit.num_lines() );
  compute_cascade( uncompute );
  result.circuit.append( uncompute.inverse() );
  result.num_garbage = 0u;
  return result;
}

hierarchical_synthesis_result bdd_based_synthesis( const truth_table& function,
                                                   bool uncompute_garbage )
{
  bdd_manager manager( function.num_vars() );
  const auto root = manager.from_truth_table( function );
  return bdd_based_synthesis( manager, { root }, uncompute_garbage );
}

} // namespace qda
