/*! \file arithmetic.hpp
 *  \brief Hand-optimized reversible arithmetic building blocks.
 *
 *  Typical quantum algorithms need classical arithmetic evaluated on a
 *  superposition of inputs -- the paper's Sec. II names modular
 *  exponentiation in Shor's algorithm as the canonical example, and
 *  Sec. IV describes today's flows as relying on "predefined library
 *  components for which manually derived quantum circuits exist".
 *  This module provides exactly such a component library (the
 *  Cuccaro-Draper-Kutin-Moulton ripple-carry adder family) so the
 *  benchmarks can compare manual components against the automatic
 *  synthesis flows on the same functions.
 *
 *  Line layout of the adder circuits (n-bit operands):
 *    line 0            : carry ancilla (starts and ends 0)
 *    lines 1 .. n      : operand a (a_0 on line 1)
 *    lines n+1 .. 2n   : operand b; replaced by the sum
 *    line 2n+1         : carry-out (full adder only)
 */
#pragma once

#include "reversible/rev_circuit.hpp"

#include <cstdint>

namespace qda
{

/*! \brief CDKM ripple-carry adder: |0>|a>|b>|z> -> |0>|a>|a+b mod 2^n>|z xor c_out>. */
rev_circuit ripple_carry_adder( uint32_t num_bits );

/*! \brief Modular variant without carry-out: |0>|a>|b> -> |0>|a>|a+b mod 2^n>. */
rev_circuit modular_ripple_adder( uint32_t num_bits );

/*! \brief Subtractor built by conjugating the adder:
 *         |0>|a>|b> -> |0>|a>|b - a mod 2^n>.
 */
rev_circuit modular_ripple_subtractor( uint32_t num_bits );

/*! \brief Adds the classical constant c: |b> -> |b + c mod 2^n> using a
 *         borrowed ancilla register (lines n.. are n+1 clean helpers).
 */
rev_circuit constant_adder( uint32_t num_bits, uint64_t constant );

/*! \brief The permutation computed on the b register by a+b (for
 *         verification and for feeding the generic synthesis flows):
 *         a is fixed.
 */
permutation adder_permutation_for_fixed_a( uint32_t num_bits, uint64_t a_value );

} // namespace qda
