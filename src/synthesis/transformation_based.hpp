/*! \file transformation_based.hpp
 *  \brief Transformation-based reversible synthesis (Miller-Maslov-Dueck).
 *
 *  The algorithm of paper ref [43] (DAC'03) and the workhorse behind
 *  RevKit's `tbs` command used in the paper's Eq. (5) pipeline and in the
 *  PermutationOracle of the ProjectQ flow (Fig. 7).  It walks the
 *  permutation's rows in ascending order and appends MCT gates that fix
 *  the current row without disturbing already-fixed rows; positive
 *  controls chosen from the row's one-bits guarantee this.
 *
 *  The bidirectional variant may fix a row from the input side instead
 *  (whichever needs fewer bit flips), usually yielding smaller circuits.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "reversible/rev_circuit.hpp"

namespace qda
{

/*! \brief Unidirectional transformation-based synthesis.
 *
 *  Returns an MCT circuit over `permutation.num_vars()` lines computing
 *  exactly the given permutation.
 */
rev_circuit transformation_based_synthesis( const permutation& target );

/*! \brief Bidirectional transformation-based synthesis ([43], Sec. 5). */
rev_circuit transformation_based_synthesis_bidirectional( const permutation& target );

} // namespace qda
