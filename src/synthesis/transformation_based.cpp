#include "synthesis/transformation_based.hpp"

#include "kernel/bits.hpp"

#include <vector>

namespace qda
{

namespace
{

/*! Emits MCT gates transforming the value `from` into the row index `row`
 *  step by step, calling `emit` for each gate in the order it is applied
 *  to the evolving value.  Precondition: from >= row (guaranteed by the
 *  TBS invariant).  Control choice: bits of the evolving value when
 *  raising, bits of `row` when lowering -- both supersets only reachable
 *  from states >= row, so earlier rows are untouched.
 */
template<typename EmitFn>
void emit_row_fix( uint64_t row, uint64_t from, EmitFn&& emit )
{
  uint64_t value = from;
  /* step 1: set bits that row has and value lacks */
  uint64_t to_set = row & ~value;
  while ( to_set != 0u )
  {
    const uint32_t bit = least_significant_bit( to_set );
    to_set &= to_set - 1u;
    const rev_gate gate( value, value, bit );
    emit( gate );
    value |= uint64_t{ 1 } << bit;
  }
  /* step 2: clear bits that value has and row lacks */
  uint64_t to_clear = value & ~row;
  while ( to_clear != 0u )
  {
    const uint32_t bit = least_significant_bit( to_clear );
    to_clear &= to_clear - 1u;
    const rev_gate gate( row, row, bit );
    emit( gate );
    value &= ~( uint64_t{ 1 } << bit );
  }
}

/*! Number of gates emit_row_fix would emit. */
uint32_t row_fix_cost( uint64_t row, uint64_t from )
{
  return popcount64( row ^ from );
}

/*! Applies a gate to the output side of a permutation table. */
void apply_to_outputs( std::vector<uint64_t>& images, const rev_gate& gate )
{
  for ( auto& image : images )
  {
    image = gate.apply( image );
  }
}

/*! Applies a gate to the input side: permutes rows (the gate is an
 *  involution, so swapping paired rows suffices).
 */
void apply_to_inputs( std::vector<uint64_t>& images, const rev_gate& gate )
{
  for ( uint64_t row = 0u; row < images.size(); ++row )
  {
    const uint64_t partner = gate.apply( row );
    if ( partner > row )
    {
      std::swap( images[row], images[partner] );
    }
  }
}

} // namespace

rev_circuit transformation_based_synthesis( const permutation& target )
{
  const uint32_t num_lines = target.num_vars();
  std::vector<uint64_t> images = target.images();
  std::vector<rev_gate> emitted;

  for ( uint64_t row = 0u; row < images.size(); ++row )
  {
    if ( images[row] == row )
    {
      continue;
    }
    emit_row_fix( row, images[row], [&]( const rev_gate& gate ) {
      emitted.push_back( gate );
      apply_to_outputs( images, gate );
    } );
  }

  /* gates were applied to the output side; the circuit is their reverse */
  rev_circuit circuit( num_lines );
  for ( auto it = emitted.rbegin(); it != emitted.rend(); ++it )
  {
    circuit.add_gate( *it );
  }
  return circuit;
}

rev_circuit transformation_based_synthesis_bidirectional( const permutation& target )
{
  const uint32_t num_lines = target.num_vars();
  std::vector<uint64_t> images = target.images();
  std::vector<uint64_t> inverse_images = target.inverse().images();

  std::vector<rev_gate> output_gates;
  std::vector<rev_gate> input_gates;

  for ( uint64_t row = 0u; row < images.size(); ++row )
  {
    if ( images[row] == row )
    {
      continue;
    }
    const uint64_t output_value = images[row];
    const uint64_t input_value = inverse_images[row];
    if ( row_fix_cost( row, output_value ) <= row_fix_cost( row, input_value ) )
    {
      emit_row_fix( row, output_value, [&]( const rev_gate& gate ) {
        output_gates.push_back( gate );
        apply_to_outputs( images, gate );
        apply_to_inputs( inverse_images, gate );
      } );
    }
    else
    {
      /* fixing the row of the inverse permutation from the output side
       * is the same as fixing this row from the input side */
      emit_row_fix( row, input_value, [&]( const rev_gate& gate ) {
        input_gates.push_back( gate );
        apply_to_outputs( inverse_images, gate );
        apply_to_inputs( images, gate );
      } );
    }
  }

  rev_circuit circuit( num_lines );
  for ( const auto& gate : input_gates )
  {
    circuit.add_gate( gate );
  }
  for ( auto it = output_gates.rbegin(); it != output_gates.rend(); ++it )
  {
    circuit.add_gate( *it );
  }
  return circuit;
}

} // namespace qda
