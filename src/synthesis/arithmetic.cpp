#include "synthesis/arithmetic.hpp"

#include "synthesis/revgen.hpp"

#include <stdexcept>

namespace qda
{

namespace
{

/*! MAJ block on (carry, b, a): afterwards a holds the carry-out. */
void append_maj( rev_circuit& circuit, uint32_t carry, uint32_t b, uint32_t a )
{
  circuit.add_cnot( a, b );
  circuit.add_cnot( a, carry );
  circuit.add_toffoli( carry, b, a );
}

/*! UMA block on (carry, b, a): afterwards b holds the sum bit and the
 *  carry and a lines are restored.
 */
void append_uma( rev_circuit& circuit, uint32_t carry, uint32_t b, uint32_t a )
{
  circuit.add_toffoli( carry, b, a );
  circuit.add_cnot( a, carry );
  circuit.add_cnot( carry, b );
}

void check_width( uint32_t num_bits, uint32_t lines_needed )
{
  if ( num_bits == 0u )
  {
    throw std::invalid_argument( "arithmetic: need at least one bit" );
  }
  if ( lines_needed > 64u )
  {
    throw std::invalid_argument( "arithmetic: operand too wide for 64 lines" );
  }
}

} // namespace

rev_circuit ripple_carry_adder( uint32_t num_bits )
{
  check_width( num_bits, 2u * num_bits + 2u );
  rev_circuit circuit( 2u * num_bits + 2u );
  const auto a_line = [&]( uint32_t i ) { return 1u + i; };
  const auto b_line = [&]( uint32_t i ) { return num_bits + 1u + i; };
  const uint32_t carry_out = 2u * num_bits + 1u;

  append_maj( circuit, 0u, b_line( 0u ), a_line( 0u ) );
  for ( uint32_t i = 1u; i < num_bits; ++i )
  {
    append_maj( circuit, a_line( i - 1u ), b_line( i ), a_line( i ) );
  }
  circuit.add_cnot( a_line( num_bits - 1u ), carry_out );
  for ( uint32_t i = num_bits; i-- > 1u; )
  {
    append_uma( circuit, a_line( i - 1u ), b_line( i ), a_line( i ) );
  }
  append_uma( circuit, 0u, b_line( 0u ), a_line( 0u ) );
  return circuit;
}

rev_circuit modular_ripple_adder( uint32_t num_bits )
{
  check_width( num_bits, 2u * num_bits + 1u );
  rev_circuit circuit( 2u * num_bits + 1u );
  const auto a_line = [&]( uint32_t i ) { return 1u + i; };
  const auto b_line = [&]( uint32_t i ) { return num_bits + 1u + i; };

  append_maj( circuit, 0u, b_line( 0u ), a_line( 0u ) );
  for ( uint32_t i = 1u; i < num_bits; ++i )
  {
    append_maj( circuit, a_line( i - 1u ), b_line( i ), a_line( i ) );
  }
  for ( uint32_t i = num_bits; i-- > 1u; )
  {
    append_uma( circuit, a_line( i - 1u ), b_line( i ), a_line( i ) );
  }
  append_uma( circuit, 0u, b_line( 0u ), a_line( 0u ) );
  return circuit;
}

rev_circuit modular_ripple_subtractor( uint32_t num_bits )
{
  /* b - a = ~(~b + a): conjugate the adder with X on the b register */
  const auto adder = modular_ripple_adder( num_bits );
  rev_circuit circuit( adder.num_lines() );
  for ( uint32_t i = 0u; i < num_bits; ++i )
  {
    circuit.add_not( num_bits + 1u + i );
  }
  circuit.append( adder );
  for ( uint32_t i = 0u; i < num_bits; ++i )
  {
    circuit.add_not( num_bits + 1u + i );
  }
  return circuit;
}

rev_circuit constant_adder( uint32_t num_bits, uint64_t constant )
{
  check_width( num_bits, 2u * num_bits + 1u );
  /* layout: b on lines 0..n-1, carry helper on line n, constant register
   * on lines n+1..2n (loaded, used as operand a, unloaded) */
  rev_circuit circuit( 2u * num_bits + 1u );
  const auto load = [&]() {
    for ( uint32_t i = 0u; i < num_bits; ++i )
    {
      if ( ( constant >> i ) & 1u )
      {
        circuit.add_not( num_bits + 1u + i );
      }
    }
  };

  load();
  /* inline the modular adder with remapped lines:
   * adder line 0 -> n (carry), 1+i -> n+1+i (a), n+1+i -> i (b) */
  const auto adder = modular_ripple_adder( num_bits );
  const auto remap = [&]( uint32_t line ) -> uint32_t {
    if ( line == 0u )
    {
      return num_bits;
    }
    if ( line <= num_bits )
    {
      return num_bits + line; /* a_i: 1+i -> n+1+i */
    }
    return line - num_bits - 1u; /* b_i: n+1+i -> i */
  };
  for ( const auto& gate : adder.gates() )
  {
    uint64_t controls = 0u;
    uint64_t polarity = 0u;
    for ( uint32_t line = 0u; line < adder.num_lines(); ++line )
    {
      if ( ( gate.controls >> line ) & 1u )
      {
        controls |= uint64_t{ 1 } << remap( line );
        if ( ( gate.polarity >> line ) & 1u )
        {
          polarity |= uint64_t{ 1 } << remap( line );
        }
      }
    }
    circuit.add_gate( rev_gate( controls, polarity, remap( gate.target ) ) );
  }
  load(); /* restore the constant register to zero */
  return circuit;
}

permutation adder_permutation_for_fixed_a( uint32_t num_bits, uint64_t a_value )
{
  return modular_adder_permutation( num_bits, a_value );
}

} // namespace qda
