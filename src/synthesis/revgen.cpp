#include "synthesis/revgen.hpp"

#include "kernel/bits.hpp"

#include <stdexcept>

namespace qda
{

namespace
{

uint64_t rotate_left_bits( uint64_t value, uint32_t amount, uint32_t width )
{
  amount %= width;
  if ( amount == 0u )
  {
    return value;
  }
  const uint64_t mask = ( uint64_t{ 1 } << width ) - 1u;
  return ( ( value << amount ) | ( value >> ( width - amount ) ) ) & mask;
}

} // namespace

permutation hwb_permutation( uint32_t num_vars )
{
  permutation result( num_vars );
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.set_image( x, rotate_left_bits( x, popcount64( x ), num_vars ) );
  }
  return result;
}

permutation modular_adder_permutation( uint32_t num_vars, uint64_t addend )
{
  permutation result( num_vars );
  const uint64_t mask = ( uint64_t{ 1 } << num_vars ) - 1u;
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.set_image( x, ( x + addend ) & mask );
  }
  return result;
}

permutation rotation_permutation( uint32_t num_vars, uint32_t shift )
{
  permutation result( num_vars );
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.set_image( x, rotate_left_bits( x, shift, num_vars ) );
  }
  return result;
}

permutation gray_code_permutation( uint32_t num_vars )
{
  permutation result( num_vars );
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.set_image( x, x ^ ( x >> 1u ) );
  }
  return result;
}

permutation modular_multiplier_permutation( uint32_t num_vars, uint64_t odd_factor )
{
  if ( ( odd_factor & 1u ) == 0u )
  {
    throw std::invalid_argument( "modular_multiplier_permutation: factor must be odd" );
  }
  permutation result( num_vars );
  const uint64_t mask = ( uint64_t{ 1 } << num_vars ) - 1u;
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.set_image( x, ( x * odd_factor ) & mask );
  }
  return result;
}

permutation paper_fig7_permutation()
{
  return permutation::from_vector( { 0u, 2u, 3u, 5u, 7u, 1u, 4u, 6u } );
}

} // namespace qda
