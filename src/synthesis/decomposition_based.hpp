/*! \file decomposition_based.hpp
 *  \brief Decomposition-based reversible synthesis (Young subgroups).
 *
 *  The algorithm behind RevKit's `dbs` command that the paper selects
 *  for the inverse permutation oracle in Fig. 7
 *  (`PermutationOracle(pi, synth=revkit.dbs)`), following De Vos and
 *  Van Rentergem [47] and the symbolic formulation of [46], [52].
 *
 *  For each variable i the permutation is decomposed as
 *
 *      pi = L_i o pi' o R_i
 *
 *  where L_i and R_i are single-target gates acting on line i (controls
 *  on the remaining lines) and pi' no longer moves bit i.  After all n
 *  variables are processed the middle permutation is the identity, and
 *  the circuit is R_0 R_1 ... R_{n-1} L_{n-1} ... L_1 L_0 with each
 *  single-target gate lowered to MCT gates through an ESOP cover.
 *
 *  The per-variable control functions are found by walking the cycles
 *  of the bipartite pairing between input pairs {x, x xor e_i} and
 *  output pairs {pi(x), pi(x xor e_i)} and 2-coloring the slots.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "reversible/rev_circuit.hpp"

namespace qda
{

/*! \brief Ancilla-free decomposition-based synthesis.
 *
 *  Returns an MCT circuit over `target.num_vars()` lines computing the
 *  permutation; at most 2n single-target gates are generated.
 */
rev_circuit decomposition_based_synthesis( const permutation& target );

} // namespace qda
