#include "synthesis/lut_based.hpp"

#include "synthesis/single_target.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace qda
{

namespace
{

constexpr uint32_t scratch_lines = 64u;

struct lhrs_state
{
  const lut_network& network;
  rev_circuit scratch{ scratch_lines };
  std::vector<uint32_t> line_of;     /* node id -> line */
  std::vector<bool> is_po_node;
  uint32_t next_free_line;
  std::vector<uint32_t> free_lines;
  uint32_t peak_lines;

  explicit lhrs_state( const lut_network& net )
      : network( net ),
        line_of( net.num_pis() + net.num_luts(), 0u ),
        is_po_node( net.num_pis() + net.num_luts(), false ),
        next_free_line( net.num_pis() ),
        peak_lines( net.num_pis() )
  {
    for ( uint32_t pi = 0u; pi < net.num_pis(); ++pi )
    {
      line_of[pi] = pi;
    }
    for ( const auto po : net.outputs() )
    {
      is_po_node[po] = true;
    }
  }

  uint32_t acquire_line()
  {
    if ( !free_lines.empty() )
    {
      const uint32_t line = free_lines.back();
      free_lines.pop_back();
      return line;
    }
    if ( next_free_line >= scratch_lines )
    {
      throw std::invalid_argument( "lut_based_synthesis: needs more than 64 lines" );
    }
    const uint32_t line = next_free_line++;
    peak_lines = std::max( peak_lines, next_free_line );
    return line;
  }

  void append_lut_gate( uint32_t node )
  {
    const auto& lut = network.lut_of( node );
    std::vector<uint32_t> control_lines;
    control_lines.reserve( lut.fanins.size() );
    for ( const auto fanin : lut.fanins )
    {
      control_lines.push_back( line_of[fanin] );
    }
    append_single_target_gate( scratch, lut.function, control_lines, line_of[node] );
  }
};

hierarchical_synthesis_result finish( lhrs_state& state )
{
  const uint32_t total_lines = state.peak_lines;
  rev_circuit circuit( total_lines );
  for ( const auto& gate : state.scratch.gates() )
  {
    circuit.add_gate( gate );
  }
  hierarchical_synthesis_result result{ std::move( circuit ), {}, total_lines - state.network.num_pis(),
                                        0u };
  for ( const auto po : state.network.outputs() )
  {
    result.output_lines.push_back( state.line_of[po] );
  }
  return result;
}

} // namespace

hierarchical_synthesis_result lut_based_synthesis( const lut_network& network,
                                                   pebbling_strategy strategy )
{
  lhrs_state state( network );
  const uint32_t first_lut = network.num_pis();
  const uint32_t num_nodes = network.num_pis() + network.num_luts();

  if ( strategy == pebbling_strategy::bennett )
  {
    for ( uint32_t node = first_lut; node < num_nodes; ++node )
    {
      state.line_of[node] = state.acquire_line();
      state.append_lut_gate( node );
    }
    /* uncompute internal non-output LUTs in reverse order */
    for ( uint32_t node = num_nodes; node-- > first_lut; )
    {
      if ( !state.is_po_node[node] )
      {
        state.append_lut_gate( node );
      }
    }
    return finish( state );
  }

  /* eager pebbling: track remaining reads of every node's value.
   * A node is read when a fanout LUT is computed and again when that
   * fanout is uncomputed (internal non-output LUTs only). */
  std::vector<uint32_t> reads_remaining( num_nodes, 0u );
  const auto will_be_uncomputed = [&]( uint32_t node ) {
    return node >= first_lut && !state.is_po_node[node];
  };
  for ( uint32_t node = first_lut; node < num_nodes; ++node )
  {
    const uint32_t weight = will_be_uncomputed( node ) ? 2u : 1u;
    for ( const auto fanin : network.lut_of( node ).fanins )
    {
      reads_remaining[fanin] += weight;
    }
  }

  /* cascade of uncomputations once a value is dead */
  const auto release_dead = [&]( uint32_t node, auto&& self ) -> void {
    if ( !will_be_uncomputed( node ) || reads_remaining[node] != 0u )
    {
      return;
    }
    state.append_lut_gate( node ); /* uncompute (self-inverse cascade) */
    state.free_lines.push_back( state.line_of[node] );
    reads_remaining[node] = ~uint32_t{ 0 }; /* guard against double release */
    for ( const auto fanin : network.lut_of( node ).fanins )
    {
      if ( reads_remaining[fanin] != ~uint32_t{ 0 } )
      {
        --reads_remaining[fanin];
        self( fanin, self );
      }
    }
  };

  for ( uint32_t node = first_lut; node < num_nodes; ++node )
  {
    state.line_of[node] = state.acquire_line();
    state.append_lut_gate( node );
    for ( const auto fanin : network.lut_of( node ).fanins )
    {
      --reads_remaining[fanin];
      release_dead( fanin, release_dead );
    }
  }
  return finish( state );
}

hierarchical_synthesis_result lut_based_synthesis( const truth_table& function, uint32_t cut_size,
                                                   pebbling_strategy strategy )
{
  const auto network = xag_network::from_truth_table( function );
  return lut_based_synthesis( lut_map( network, cut_size ), strategy );
}

} // namespace qda
