#include "synthesis/exact.hpp"

#include <deque>
#include <numeric>
#include <stdexcept>

namespace qda
{

exact_synthesizer::exact_synthesizer( uint32_t num_vars, bool mixed_polarity )
    : num_vars_( num_vars )
{
  if ( num_vars == 0u || num_vars > 3u )
  {
    throw std::invalid_argument( "exact_synthesizer: supported widths are 1..3" );
  }

  /* gate library: every MCT gate on the lines */
  for ( uint32_t target = 0u; target < num_vars; ++target )
  {
    const uint64_t others = ( ( uint64_t{ 1 } << num_vars ) - 1u ) & ~( uint64_t{ 1 } << target );
    /* enumerate control subsets of `others` (descending submask walk) */
    for ( uint64_t subset = others;; subset = ( subset - 1u ) & others )
    {
      if ( mixed_polarity )
      {
        for ( uint64_t polarity = subset;; polarity = ( polarity - 1u ) & subset )
        {
          library_.push_back( rev_gate( subset, polarity, target ) );
          if ( polarity == 0u )
          {
            break;
          }
        }
      }
      else
      {
        library_.push_back( rev_gate( subset, subset, target ) );
      }
      if ( subset == 0u )
      {
        break;
      }
    }
  }

  /* BFS from the identity over output-side gate application */
  std::vector<uint64_t> identity( uint64_t{ 1 } << num_vars );
  std::iota( identity.begin(), identity.end(), uint64_t{ 0 } );
  distance_.emplace( encode( identity ), 0u );

  std::deque<std::vector<uint64_t>> frontier{ identity };
  while ( !frontier.empty() )
  {
    const auto current = std::move( frontier.front() );
    frontier.pop_front();
    const uint16_t current_distance = distance_.at( encode( current ) );
    for ( const auto& gate : library_ )
    {
      auto next = apply_gate_to_outputs( current, gate );
      const uint64_t key = encode( next );
      if ( !distance_.count( key ) )
      {
        distance_.emplace( key, current_distance + 1u );
        frontier.push_back( std::move( next ) );
      }
    }
  }
}

uint64_t exact_synthesizer::encode( const std::vector<uint64_t>& images ) const
{
  uint64_t key = 0u;
  for ( const auto image : images )
  {
    key = ( key << 3u ) | image;
  }
  return key;
}

std::vector<uint64_t> exact_synthesizer::apply_gate_to_outputs(
    const std::vector<uint64_t>& images, const rev_gate& gate ) const
{
  std::vector<uint64_t> result( images.size() );
  for ( uint64_t x = 0u; x < images.size(); ++x )
  {
    result[x] = gate.apply( images[x] );
  }
  return result;
}

uint32_t exact_synthesizer::optimal_gate_count( const permutation& target ) const
{
  if ( target.num_vars() != num_vars_ )
  {
    throw std::invalid_argument( "exact_synthesizer: width mismatch" );
  }
  return distance_.at( encode( target.images() ) );
}

rev_circuit exact_synthesizer::synthesize( const permutation& target ) const
{
  if ( target.num_vars() != num_vars_ )
  {
    throw std::invalid_argument( "exact_synthesizer: width mismatch" );
  }
  rev_circuit circuit( num_vars_ );
  std::vector<uint64_t> current = target.images();
  std::vector<rev_gate> collected;
  uint16_t remaining = distance_.at( encode( current ) );
  while ( remaining > 0u )
  {
    bool advanced = false;
    for ( const auto& gate : library_ )
    {
      const auto next = apply_gate_to_outputs( current, gate );
      const auto it = distance_.find( encode( next ) );
      if ( it != distance_.end() && it->second == remaining - 1u )
      {
        collected.push_back( gate );
        current = next;
        remaining = it->second;
        advanced = true;
        break;
      }
    }
    if ( !advanced )
    {
      throw std::logic_error( "exact_synthesizer: BFS table inconsistent" );
    }
  }
  /* collected gates reduce the permutation from the output side; the
   * circuit applies them in reverse order */
  for ( auto it = collected.rbegin(); it != collected.rend(); ++it )
  {
    circuit.add_gate( *it );
  }
  return circuit;
}

} // namespace qda
