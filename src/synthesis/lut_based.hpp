/*! \file lut_based.hpp
 *  \brief LUT-based hierarchical reversible synthesis (LHRS).
 *
 *  The scalable hierarchical method of paper ref [65] (DAC'17): the
 *  function is first mapped into a k-LUT network (networks/lut.hpp),
 *  then every LUT becomes a single-target gate computing its local
 *  function onto an ancilla line.  The pebbling strategy decides when
 *  intermediate LUT values are uncomputed, trading qubits for gates
 *  (paper refs [66], [67]):
 *
 *   - `bennett`: compute everything, copy outputs, uncompute everything
 *     in reverse -- maximal ancillae, minimal gate overhead (2x).
 *   - `eager`: uncompute an intermediate LUT as soon as its last fanout
 *     has been computed and recycle the freed line -- fewer qubits at
 *     the same asymptotic gate count.
 */
#pragma once

#include "networks/lut.hpp"
#include "reversible/rev_circuit.hpp"
#include "synthesis/bdd_based.hpp"

namespace qda
{

/*! \brief Pebbling strategy for intermediate LUT values. */
enum class pebbling_strategy
{
  bennett, /*!< uncompute all intermediates at the end */
  eager    /*!< uncompute and recycle lines as soon as possible */
};

/*! \brief LHRS over an existing LUT network. */
hierarchical_synthesis_result lut_based_synthesis( const lut_network& network,
                                                   pebbling_strategy strategy =
                                                       pebbling_strategy::eager );

/*! \brief Convenience: LUT-maps the XAG of `function` with cut size k first. */
hierarchical_synthesis_result lut_based_synthesis( const truth_table& function,
                                                   uint32_t cut_size = 4u,
                                                   pebbling_strategy strategy =
                                                       pebbling_strategy::eager );

} // namespace qda
