#include "core/deutsch_jozsa.hpp"

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "simulator/statevector.hpp"

#include <stdexcept>

namespace qda
{

qcircuit deutsch_jozsa_circuit( const truth_table& function )
{
  const uint32_t n = function.num_vars();
  main_engine engine( n );
  std::vector<uint32_t> qubits( n );
  for ( uint32_t q = 0u; q < n; ++q )
  {
    qubits[q] = q;
  }
  engine.all_h();
  phase_oracle( engine, function, qubits );
  engine.all_h();
  engine.measure_all();
  return engine.circuit();
}

bool deutsch_jozsa_is_constant( const truth_table& function )
{
  const uint64_t ones = function.count_ones();
  if ( ones != 0u && ones != function.num_bits() && ones != function.num_bits() / 2u )
  {
    throw std::invalid_argument( "deutsch_jozsa_is_constant: promise violated" );
  }
  const auto circuit = deutsch_jozsa_circuit( function );
  statevector_simulator simulator( circuit.num_qubits() );
  simulator.run( circuit );
  /* constant functions return |0...0> with certainty */
  for ( const auto& [qubit, bit] : simulator.measurement_record() )
  {
    if ( bit )
    {
      return false;
    }
  }
  return true;
}

} // namespace qda
