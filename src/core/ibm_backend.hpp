/*! \file ibm_backend.hpp
 *  \brief The "IBM Quantum Experience" backend of the ProjectQ flow.
 *
 *  The paper switches the ProjectQ backend from the local simulator to
 *  the IBM QE chip by "changing two lines of code" (Sec. VII).  This
 *  module provides the equivalent switch for our flow: it takes a
 *  logical circuit, legalizes it for the device coupling map
 *  (mapping/router.hpp), then executes shots on the calibrated noisy
 *  device model (simulator/noise.hpp).
 */
#pragma once

#include "mapping/coupling_map.hpp"
#include "mapping/mct_lowering.hpp"
#include "quantum/qcircuit.hpp"
#include "simulator/noise.hpp"

#include <map>
#include <optional>

namespace qda
{

/*! \brief One backend execution: histogram plus mapping statistics. */
struct ibm_execution
{
  std::map<uint64_t, uint64_t> counts; /*!< outcome (by measure order) -> shots */
  qcircuit routed;                     /*!< the device-level circuit */
  uint64_t added_swaps = 0u;
  uint64_t added_direction_fixes = 0u;
};

/*! \brief Routes `logical` onto `device` and runs `shots` noisy shots.
 *
 *  Remaining multi-controlled gates are lowered first under `weights`
 *  (the target's cost model; defaults to the CNOT-heavy noisy-device
 *  weights) with the device size as qubit budget.  The outcome key's
 *  bit i corresponds to the i-th measure gate of the logical circuit
 *  (routing preserves the order), so results read back in logical
 *  qubit order.
 */
ibm_execution run_on_ibm_model( const qcircuit& logical, const coupling_map& device,
                                const noise_model& model, uint64_t shots, uint64_t seed = 1u,
                                std::optional<mapping_cost_weights> weights = std::nullopt );

} // namespace qda
