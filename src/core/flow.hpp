/*! \file flow.hpp
 *  \brief RevKit-style command pipeline (paper Eq. (5)).
 *
 *  The paper drives RevKit through command sequences such as
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  This class replays such pipelines programmatically with the same
 *  command vocabulary:
 *
 *      auto stats = flow()
 *          .revgen_hwb( 4 )   // revgen --hwb 4
 *          .tbs()             // transformation-based synthesis
 *          .revsimp()         // reversible simplification
 *          .rptm()            // relative-phase Toffoli mapping
 *          .tpar()            // phase-polynomial T-count optimization
 *          .ps();             // print statistics
 *
 *  Since the pipeline subsystem landed, `flow` is a thin fluent shim
 *  over the pass manager (pipeline/pass_manager.hpp): every mutating
 *  command resolves to the registered pass of the same shell name,
 *  stage checking and instrumentation included (`ps()` is a const
 *  inspection helper computed directly, without a report entry).  The
 *  same pipelines can be run from their RevKit shell strings via
 *  `pass_manager::run`.
 */
#pragma once

#include "pipeline/ir.hpp"
#include "pipeline/pass_manager.hpp"

#include <string>
#include <vector>

namespace qda
{

/*! \brief Staged compilation pipeline mirroring the RevKit shell. */
class flow
{
public:
  /* ---- generators ---- */
  flow& revgen_hwb( uint32_t num_vars );
  flow& revgen( permutation target );

  /* ---- reversible synthesis ---- */
  flow& tbs();
  flow& tbs_bidirectional();
  flow& dbs();

  /* ---- reversible optimization ---- */
  flow& revsimp();

  /* ---- mapping ---- */
  flow& rptm( bool use_relative_phase = true );

  /*! \brief `rptm --strategy S [--cost-target T]`: MCT lowering with an
   *         explicit strategy ("auto", "clean", "dirty", "recursive")
   *         and optionally the cost model of a registered target.
   */
  flow& rptm_strategy( const std::string& strategy, const std::string& cost_target = "" );

  /*! \brief `route --device D --router R`: legalizes the quantum
   *         circuit for a device coupling map (default `ibm_qx4` with
   *         the SABRE lookahead router).
   */
  flow& route( const std::string& device = "ibm_qx4", const std::string& router = "sabre" );

  /* ---- quantum optimization ---- */
  /*! \brief T-count optimization; `resynth = false` runs the fold-only
   *         variant (`tpar --fold-only`), keeping the CNOT skeleton.
   */
  flow& tpar( bool resynth = true );
  flow& peephole();

  /* ---- inspection ---- */
  /*! \brief Statistics of the current quantum circuit (`ps -c`). */
  circuit_statistics ps() const;

  /*! \brief One-line formatted statistics. */
  std::string ps_line() const;

  const permutation& current_permutation() const;
  const rev_circuit& reversible() const;
  const qcircuit& quantum() const;
  const routing_result& mapped() const;

  /*! \brief The staged IR backing this flow. */
  const staged_ir& ir() const noexcept { return ir_; }

  /*! \brief Per-pass timing/statistics reports, in execution order. */
  const std::vector<pass_report>& reports() const noexcept { return reports_; }

  /*! \brief Verifies the quantum circuit still implements the generated
   *         permutation (helpers clean), for n small enough to expand.
   */
  bool verify() const;

private:
  flow& apply( const std::string& pass_name, pass_arguments args = {} );

  staged_ir ir_;
  std::vector<pass_report> reports_;
};

} // namespace qda
