/*! \file flow.hpp
 *  \brief RevKit-style command pipeline (paper Eq. (5)).
 *
 *  The paper drives RevKit through command sequences such as
 *
 *      revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c
 *
 *  This class replays such pipelines programmatically with the same
 *  command vocabulary:
 *
 *      auto stats = flow()
 *          .revgen_hwb( 4 )   // revgen --hwb 4
 *          .tbs()             // transformation-based synthesis
 *          .revsimp()         // reversible simplification
 *          .rptm()            // relative-phase Toffoli mapping
 *          .tpar()            // phase folding T-count optimization
 *          .ps();             // print statistics
 *
 *  The pipeline is staged: a permutation (after revgen), a reversible
 *  circuit (after a synthesis command) and a quantum circuit (after
 *  rptm); commands check they are invoked in a valid stage.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "mapping/clifford_t.hpp"
#include "quantum/qcircuit.hpp"
#include "reversible/rev_circuit.hpp"

#include <optional>
#include <string>

namespace qda
{

/*! \brief Staged compilation pipeline mirroring the RevKit shell. */
class flow
{
public:
  /* ---- generators ---- */
  flow& revgen_hwb( uint32_t num_vars );
  flow& revgen( permutation target );

  /* ---- reversible synthesis ---- */
  flow& tbs();
  flow& tbs_bidirectional();
  flow& dbs();

  /* ---- reversible optimization ---- */
  flow& revsimp();

  /* ---- mapping ---- */
  flow& rptm( bool use_relative_phase = true );

  /* ---- quantum optimization ---- */
  flow& tpar();
  flow& peephole();

  /* ---- inspection ---- */
  /*! \brief Statistics of the current quantum circuit (`ps -c`). */
  circuit_statistics ps() const;

  /*! \brief One-line formatted statistics. */
  std::string ps_line() const;

  const permutation& current_permutation() const;
  const rev_circuit& reversible() const;
  const qcircuit& quantum() const;

  /*! \brief Verifies the quantum circuit still implements the generated
   *         permutation (helpers clean), for n small enough to expand.
   */
  bool verify() const;

private:
  std::optional<permutation> permutation_;
  std::optional<rev_circuit> reversible_;
  std::optional<clifford_t_result> quantum_;
};

} // namespace qda
