/*! \file bernstein_vazirani.hpp
 *  \brief Bernstein-Vazirani: the linear special case of hidden shift.
 *
 *  For a linear "bent-like" oracle f(x) = a . x the Fig. 3 circuit
 *  degenerates to the Bernstein-Vazirani algorithm, recovering the
 *  secret string a with a single query.  Included both as a sanity
 *  anchor for the hidden shift machinery and as another consumer of the
 *  automatic phase-oracle compilation; the circuit is all-Clifford and
 *  also runs on the stabilizer backend at large scale.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <cstdint>

namespace qda
{

/*! \brief Builds the BV circuit for the secret string `secret` over
 *         `num_qubits` qubits: H^n, U_{a.x}, H^n, measure.
 */
qcircuit bernstein_vazirani_circuit( uint32_t num_qubits, uint64_t secret );

/*! \brief Recovers the secret on the statevector backend (n <= 24). */
uint64_t solve_bernstein_vazirani( uint32_t num_qubits, uint64_t secret );

/*! \brief Recovers the secret on the stabilizer backend (hundreds of
 *         qubits; the circuit is Clifford).
 */
uint64_t solve_bernstein_vazirani_stabilizer( uint32_t num_qubits, uint64_t secret );

} // namespace qda
