#include "core/ibm_backend.hpp"

#include "mapping/clifford_t.hpp"
#include "mapping/router.hpp"
#include "optimization/peephole.hpp"

namespace qda
{

ibm_execution run_on_ibm_model( const qcircuit& logical, const coupling_map& device,
                                const noise_model& model, uint64_t shots, uint64_t seed )
{
  /* legalize gate set first: expand any multi-controlled gates */
  const auto lowered = lower_multi_controlled_gates( logical );
  auto routed = route_circuit( lowered.circuit, device );
  /* clean up the H-conjugation debris the router leaves behind */
  const auto polished = peephole_optimize( routed.circuit );
  ibm_execution result{ sample_counts_noisy( polished, model, shots, seed ), polished,
                        routed.added_swaps, routed.added_direction_fixes };
  return result;
}

} // namespace qda
