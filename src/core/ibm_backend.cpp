#include "core/ibm_backend.hpp"

#include "mapping/clifford_t.hpp"
#include "mapping/router.hpp"
#include "optimization/peephole.hpp"

#include <algorithm>

namespace qda
{

ibm_execution run_on_ibm_model( const qcircuit& logical, const coupling_map& device,
                                const noise_model& model, uint64_t shots, uint64_t seed,
                                std::optional<mapping_cost_weights> weights )
{
  /* legalize the gate set first, skipping the pass entirely when the
   * caller (e.g. main_engine::execute_on) already lowered */
  const auto gates = logical.gates();
  const bool needs_lowering =
      std::any_of( gates.begin(), gates.end(), []( const qgate_view& gate ) {
        return gate.kind == gate_kind::mcx || gate.kind == gate_kind::mcz;
      } );
  const qcircuit* prepared = &logical;
  std::optional<clifford_t_result> lowered;
  if ( needs_lowering )
  {
    clifford_t_options lowering;
    lowering.weights = weights.value_or( mapping_cost_weights::noisy_device() );
    lowering.max_qubits = device.num_qubits();
    lowered = lower_multi_controlled_gates( logical, lowering );
    prepared = &lowered->circuit;
  }
  /* SABRE lookahead routing with layout search (router_options default) */
  auto routed = route_circuit( *prepared, device, router_options{} );
  /* clean up what the emission-time H merging could not see */
  const auto polished = peephole_optimize( routed.circuit );
  ibm_execution result{ sample_counts_noisy( polished, model, shots, seed ), polished,
                        routed.added_swaps, routed.added_direction_fixes };
  return result;
}

} // namespace qda
