#include "core/oracles.hpp"

#include "esop/esop.hpp"
#include "kernel/bits.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/transformation_based.hpp"

#include <numbers>
#include <stdexcept>

namespace qda
{

namespace
{

/*! Emits one ESOP cube as a phase flip (-1)^{cube(x)}. */
void emit_cube_phase( main_engine& engine, const cube& term,
                      const std::vector<uint32_t>& qubits )
{
  if ( term.mask == 0u )
  {
    /* empty cube: constant -1 */
    engine.global_phase( std::numbers::pi );
    return;
  }
  std::vector<uint32_t> lines;
  std::vector<uint32_t> negatives;
  for ( uint32_t var = 0u; var < qubits.size(); ++var )
  {
    if ( ( term.mask >> var ) & 1u )
    {
      lines.push_back( qubits[var] );
      if ( !( ( term.polarity >> var ) & 1u ) )
      {
        negatives.push_back( qubits[var] );
      }
    }
  }
  for ( const auto line : negatives )
  {
    engine.x( line );
  }
  const uint32_t target = lines.back();
  lines.pop_back();
  engine.mcz( lines, target );
  for ( const auto line : negatives )
  {
    engine.x( line );
  }
}

rev_circuit synthesize( const permutation& pi, permutation_synthesis synthesis )
{
  switch ( synthesis )
  {
  case permutation_synthesis::tbs:
    return transformation_based_synthesis( pi );
  case permutation_synthesis::tbs_bidirectional:
    return transformation_based_synthesis_bidirectional( pi );
  case permutation_synthesis::dbs:
    return decomposition_based_synthesis( pi );
  }
  throw std::invalid_argument( "permutation_oracle: unknown synthesis method" );
}

/*! Streams one MCT gate as (X-conjugated) mcx. */
template<typename EmitX, typename EmitMcx>
void stream_mct_gate( const rev_gate& gate, const std::vector<uint32_t>& qubits, EmitX&& emit_x,
                      EmitMcx&& emit_mcx )
{
  std::vector<uint32_t> controls;
  std::vector<uint32_t> negatives;
  for ( uint32_t line = 0u; line < qubits.size(); ++line )
  {
    if ( ( gate.controls >> line ) & 1u )
    {
      controls.push_back( qubits[line] );
      if ( !( ( gate.polarity >> line ) & 1u ) )
      {
        negatives.push_back( qubits[line] );
      }
    }
  }
  for ( const auto line : negatives )
  {
    emit_x( line );
  }
  emit_mcx( controls, qubits[gate.target] );
  for ( const auto line : negatives )
  {
    emit_x( line );
  }
}

} // namespace

void phase_oracle( main_engine& engine, const truth_table& function,
                   const std::vector<uint32_t>& qubits )
{
  if ( function.num_vars() != qubits.size() )
  {
    throw std::invalid_argument( "phase_oracle: qubit count must match function arity" );
  }
  const auto cover = esop_for_function( function );
  for ( const auto& term : cover )
  {
    emit_cube_phase( engine, term, qubits );
  }
}

void phase_oracle( main_engine& engine, const boolean_expression& predicate,
                   const std::vector<uint32_t>& qubits )
{
  phase_oracle( engine, predicate.to_truth_table(), qubits );
}

void permutation_oracle( main_engine& engine, const permutation& pi,
                         const std::vector<uint32_t>& qubits, permutation_synthesis synthesis )
{
  if ( pi.num_vars() != qubits.size() )
  {
    throw std::invalid_argument( "permutation_oracle: qubit count must match permutation arity" );
  }
  const auto reversible = synthesize( pi, synthesis );
  for ( const auto& gate : reversible.gates() )
  {
    stream_mct_gate(
        gate, qubits, [&]( uint32_t line ) { engine.x( line ); },
        [&]( std::vector<uint32_t> controls, uint32_t target ) {
          engine.mcx( std::move( controls ), target );
        } );
  }
}

qcircuit permutation_oracle_circuit( const permutation& pi, permutation_synthesis synthesis )
{
  const auto reversible = synthesize( pi, synthesis );
  qcircuit circuit( pi.num_vars() );
  std::vector<uint32_t> identity( pi.num_vars() );
  for ( uint32_t i = 0u; i < identity.size(); ++i )
  {
    identity[i] = i;
  }
  for ( const auto& gate : reversible.gates() )
  {
    stream_mct_gate(
        gate, identity, [&]( uint32_t line ) { circuit.x( line ); },
        [&]( std::vector<uint32_t> controls, uint32_t target ) {
          circuit.mcx( std::move( controls ), target );
        } );
  }
  return circuit;
}

qcircuit phase_oracle_circuit( const truth_table& function )
{
  main_engine engine( function.num_vars() );
  std::vector<uint32_t> qubits( function.num_vars() );
  for ( uint32_t i = 0u; i < qubits.size(); ++i )
  {
    qubits[i] = i;
  }
  phase_oracle( engine, function, qubits );
  return engine.circuit();
}

} // namespace qda
