/*! \file oracles.hpp
 *  \brief PhaseOracle and PermutationOracle (paper Sec. VII).
 *
 *  The two automatic compilation entry points of the ProjectQ/RevKit
 *  interop:
 *
 *   - phase_oracle(f): implements the diagonal operator
 *       U_f = sum_x (-1)^{f(x)} |x><x|
 *     from a Boolean predicate.  The predicate is ESOP-decomposed and
 *     every cube becomes one (multi-controlled) Z gate, with X
 *     conjugation for negative literals.
 *
 *   - permutation_oracle(pi): implements |x> -> |pi(x)> by reversible
 *     synthesis (`tbs` [43] or `dbs` [47], selectable like the paper's
 *     `PermutationOracle(pi, synth=revkit.dbs)`), streaming the MCT
 *     gates into the engine.
 */
#pragma once

#include "core/engine.hpp"
#include "kernel/expression.hpp"
#include "kernel/permutation.hpp"
#include "kernel/truth_table.hpp"

#include <vector>

namespace qda
{

/*! \brief Reversible synthesis algorithm selection for oracles. */
enum class permutation_synthesis
{
  tbs,               /*!< transformation-based [43] (RevKit default) */
  tbs_bidirectional, /*!< bidirectional transformation-based */
  dbs                /*!< decomposition-based, Young subgroups [47] */
};

/*! \brief Streams U_f = (-1)^{f(x)} on the given qubits.
 *
 *  `qubits[i]` carries variable i of `function`.
 */
void phase_oracle( main_engine& engine, const truth_table& function,
                   const std::vector<uint32_t>& qubits );

/*! \brief Predicate front end: parses the expression first (Fig. 4). */
void phase_oracle( main_engine& engine, const boolean_expression& predicate,
                   const std::vector<uint32_t>& qubits );

/*! \brief Streams |x> -> |pi(x)> on the given qubits.
 *
 *  `qubits[i]` carries bit i of the permutation domain.
 */
void permutation_oracle( main_engine& engine, const permutation& pi,
                         const std::vector<uint32_t>& qubits,
                         permutation_synthesis synthesis = permutation_synthesis::tbs );

/*! \brief Compiles a permutation into a standalone quantum circuit
 *         (mcx-level, one gate per MCT gate).
 */
qcircuit permutation_oracle_circuit( const permutation& pi,
                                     permutation_synthesis synthesis = permutation_synthesis::tbs );

/*! \brief Compiles U_f into a standalone circuit over f's variables. */
qcircuit phase_oracle_circuit( const truth_table& function );

} // namespace qda
