/*! \file bent.hpp
 *  \brief Maiorana-McFarland bent functions (paper Sec. VI-B).
 *
 *  The hidden shift instances of the paper are built from the
 *  Maiorana-McFarland family
 *
 *      f(x, y) = x . pi(y)  xor  h(y)
 *
 *  over 2n variables, with pi a permutation of B^n and h arbitrary.
 *  The dual bent function has the closed form
 *
 *      f~(x, y) = pi^{-1}(x) . y  xor  h(pi^{-1}(x))
 *
 *  which is what makes the family attractive for the algorithm: both f
 *  and f~ have efficient circuits whenever pi does.
 *
 *  Qubit layout: the paper's ProjectQ listing (Fig. 7) interleaves the
 *  registers -- x_i on qubit 2i, y_i on qubit 2i+1 ("qubits on odd/even
 *  lines"); the `interleaved` flag selects that layout, otherwise x
 *  occupies the low n variables.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "kernel/truth_table.hpp"

#include <cstdint>

namespace qda
{

/*! \brief A Maiorana-McFarland bent function instance. */
struct mm_bent_function
{
  permutation pi;        /*!< permutation over the y register (n vars) */
  truth_table h;         /*!< additive function of y (n vars) */
  bool interleaved = true; /*!< paper Fig. 7 qubit layout */

  mm_bent_function( permutation pi_, truth_table h_, bool interleaved_ = true );

  /*! \brief Number of variables of each register. */
  uint32_t half_vars() const noexcept { return pi.num_vars(); }

  /*! \brief Total number of variables (2n). */
  uint32_t num_vars() const noexcept { return 2u * pi.num_vars(); }

  /*! \brief Variable index of x_i in the chosen layout. */
  uint32_t x_var( uint32_t i ) const noexcept { return interleaved ? 2u * i : i; }

  /*! \brief Variable index of y_i in the chosen layout. */
  uint32_t y_var( uint32_t i ) const noexcept
  {
    return interleaved ? 2u * i + 1u : half_vars() + i;
  }

  /*! \brief Expands f(x, y) = x . pi(y) xor h(y) into a truth table. */
  truth_table to_truth_table() const;

  /*! \brief Expands the dual f~(x, y) = pi^{-1}(x) . y xor h(pi^{-1}(x)). */
  truth_table dual_truth_table() const;

  /*! \brief The plain inner product instance (pi = identity, h = 0). */
  static mm_bent_function inner_product( uint32_t half_vars, bool interleaved = true );

  /*! \brief The paper's Fig. 7 instance: n = 3, pi = [0,2,3,5,7,1,4,6], h = 0. */
  static mm_bent_function paper_fig7();

  /*! \brief Random instance: random permutation and random h. */
  static mm_bent_function random( uint32_t half_vars, uint64_t seed, bool interleaved = true );
};

} // namespace qda
