#include "core/hidden_shift.hpp"

#include "kernel/spectral.hpp"
#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"

#include <random>
#include <stdexcept>

namespace qda
{

qcircuit hidden_shift_circuit( const hidden_shift_instance& instance )
{
  if ( !is_bent( instance.f ) )
  {
    throw std::invalid_argument( "hidden_shift_circuit: f must be bent" );
  }
  const uint32_t n = instance.f.num_vars();
  if ( instance.shift >= ( uint64_t{ 1 } << n ) )
  {
    throw std::invalid_argument( "hidden_shift_circuit: shift out of range" );
  }
  const auto dual = dual_bent_function( instance.f );

  main_engine engine( n );
  std::vector<uint32_t> qubits( n );
  for ( uint32_t i = 0u; i < n; ++i )
  {
    qubits[i] = i;
  }

  /* with Compute(eng): All(H); X on shift bits  (Fig. 4 lines 14-16) */
  {
    auto computed = engine.compute();
    engine.all_h();
    for ( uint32_t i = 0u; i < n; ++i )
    {
      if ( ( instance.shift >> i ) & 1u )
      {
        engine.x( qubits[i] );
      }
    }
  }
  /* PhaseOracle(f): together with the sandwich this applies H U_g H */
  phase_oracle( engine, instance.f, qubits );
  engine.uncompute();

  /* PhaseOracle(dual); All(H); Measure  (Fig. 4 lines 20-22) */
  phase_oracle( engine, dual, qubits );
  engine.all_h();
  engine.measure_all();
  return engine.circuit();
}

qcircuit hidden_shift_circuit_mm( const mm_bent_function& f, uint64_t shift,
                                  permutation_synthesis pi_synthesis,
                                  permutation_synthesis dual_synthesis )
{
  const uint32_t n = f.half_vars();
  const uint32_t total = f.num_vars();
  if ( shift >= ( uint64_t{ 1 } << total ) )
  {
    throw std::invalid_argument( "hidden_shift_circuit_mm: shift out of range" );
  }

  main_engine engine( total );
  std::vector<uint32_t> x_qubits( n );
  std::vector<uint32_t> y_qubits( n );
  for ( uint32_t i = 0u; i < n; ++i )
  {
    x_qubits[i] = f.x_var( i );
    y_qubits[i] = f.y_var( i );
  }

  /* the inner-product phase: CZ(x_i, y_i) ladder */
  const auto inner_product_phase = [&]() {
    for ( uint32_t i = 0u; i < n; ++i )
    {
      engine.cz( x_qubits[i], y_qubits[i] );
    }
  };
  /* phase oracle for an h-type additive term on one register */
  const auto h_phase = [&]( const truth_table& h, const std::vector<uint32_t>& reg ) {
    if ( !h.is_constant0() )
    {
      phase_oracle( engine, h, reg );
    }
  };
  /* h o sigma as a truth table */
  const auto compose = [&]( const truth_table& h, const permutation& sigma ) {
    truth_table result( h.num_vars() );
    for ( uint64_t y = 0u; y < result.num_bits(); ++y )
    {
      result.set_bit( y, h.get_bit( sigma.apply( y ) ) );
    }
    return result;
  };

  /* first sandwich: H, shift, pi on y  |  IP phase, h part  |  uncompute
   * (realizes steps 1-3 of Fig. 3; see Fig. 7 lines 20-25).  The phases
   * are applied inside the pi-conjugation, so the h part must be
   * pre-composed with pi^{-1} to come out as h(y). */
  {
    auto computed = engine.compute();
    engine.all_h();
    for ( uint32_t i = 0u; i < total; ++i )
    {
      if ( ( shift >> i ) & 1u )
      {
        engine.x( i );
      }
    }
    permutation_oracle( engine, f.pi, y_qubits, pi_synthesis );
  }
  inner_product_phase();
  h_phase( compose( f.h, f.pi.inverse() ), y_qubits );
  engine.uncompute();

  /* second sandwich: pi^{-1} on x as a Dagger block  |  IP phase, h
   * (realizes step 4, the dual f~(x,y) = pi^{-1}(x).y xor h(pi^{-1}(x));
   * Fig. 7 lines 27-31).  Inside the pi^{-1}-conjugation the x register
   * holds pi^{-1}(x), so plain h gives h(pi^{-1}(x)). */
  {
    auto computed = engine.compute();
    {
      auto daggered = engine.dagger();
      permutation_oracle( engine, f.pi, x_qubits, dual_synthesis );
    }
  }
  inner_product_phase();
  h_phase( f.h, x_qubits );
  engine.uncompute();

  /* step 5 and 6 */
  engine.all_h();
  engine.measure_all();
  return engine.circuit();
}

uint64_t solve_hidden_shift( const qcircuit& circuit, uint64_t seed )
{
  statevector_simulator simulator( circuit.num_qubits(), seed );
  simulator.run( circuit );
  uint64_t outcome = 0u;
  const auto& record = simulator.measurement_record();
  for ( uint32_t i = 0u; i < record.size(); ++i )
  {
    if ( record[i].second )
    {
      outcome |= uint64_t{ 1 } << i;
    }
  }
  return outcome;
}

qcircuit clifford_hidden_shift_circuit( uint32_t half_vars, const std::vector<bool>& shift )
{
  const uint32_t total = 2u * half_vars;
  if ( shift.size() != total )
  {
    throw std::invalid_argument( "clifford_hidden_shift_circuit: shift length must be 2n" );
  }
  qcircuit circuit( total );
  const auto all_h = [&]() {
    for ( uint32_t q = 0u; q < total; ++q )
    {
      circuit.h( q );
    }
  };
  const auto inner_product_phase = [&]() {
    for ( uint32_t i = 0u; i < half_vars; ++i )
    {
      circuit.cz( 2u * i, 2u * i + 1u );
    }
  };
  const auto shift_x = [&]() {
    for ( uint32_t q = 0u; q < total; ++q )
    {
      if ( shift[q] )
      {
        circuit.x( q );
      }
    }
  };

  /* compute [H, X_s], U_f, uncompute, U_f~ (= U_f), H, measure */
  all_h();
  shift_x();
  inner_product_phase();
  shift_x();
  all_h(); /* closes the first sandwich (uncompute of H, X) */
  inner_product_phase();
  all_h();
  circuit.measure_all();
  return circuit;
}

std::vector<bool> solve_hidden_shift_stabilizer( const qcircuit& circuit )
{
  stabilizer_simulator simulator( circuit.num_qubits() );
  simulator.run( circuit );
  const auto& record = simulator.measurement_record();
  std::vector<bool> outcome( record.size() );
  for ( uint32_t i = 0u; i < record.size(); ++i )
  {
    outcome[i] = record[i].second;
  }
  return outcome;
}

std::pair<uint64_t, uint64_t> classical_hidden_shift( const truth_table& f, const truth_table& g )
{
  if ( f.num_vars() != g.num_vars() )
  {
    throw std::invalid_argument( "classical_hidden_shift: arities differ" );
  }
  uint64_t queries = 0u;
  for ( uint64_t candidate = 0u; candidate < f.num_bits(); ++candidate )
  {
    bool matches = true;
    for ( uint64_t x = 0u; x < f.num_bits(); ++x )
    {
      queries += 2u; /* one query to g, one to f */
      if ( g.get_bit( x ) != f.get_bit( x ^ candidate ) )
      {
        matches = false;
        break;
      }
    }
    if ( matches )
    {
      return { candidate, queries };
    }
  }
  throw std::invalid_argument( "classical_hidden_shift: no shift exists" );
}

std::pair<uint64_t, uint64_t> classical_hidden_shift_sampling( const truth_table& f,
                                                               const truth_table& g,
                                                               uint64_t seed )
{
  if ( f.num_vars() != g.num_vars() )
  {
    throw std::invalid_argument( "classical_hidden_shift_sampling: arities differ" );
  }
  std::mt19937_64 rng( seed );
  const uint64_t mask = f.num_bits() - 1u;
  uint64_t queries = 0u;
  for ( uint64_t candidate = 0u; candidate < f.num_bits(); ++candidate )
  {
    /* cheap random probes first: a wrong candidate fails fast because a
     * bent function's shifted versions disagree on half the points */
    bool plausible = true;
    for ( uint32_t probe = 0u; probe < 8u; ++probe )
    {
      const uint64_t x = rng() & mask;
      queries += 2u;
      if ( g.get_bit( x ) != f.get_bit( x ^ candidate ) )
      {
        plausible = false;
        break;
      }
    }
    if ( !plausible )
    {
      continue;
    }
    bool matches = true;
    for ( uint64_t x = 0u; x < f.num_bits(); ++x )
    {
      queries += 2u;
      if ( g.get_bit( x ) != f.get_bit( x ^ candidate ) )
      {
        matches = false;
        break;
      }
    }
    if ( matches )
    {
      return { candidate, queries };
    }
  }
  throw std::invalid_argument( "classical_hidden_shift_sampling: no shift exists" );
}

} // namespace qda
