#include "core/bernstein_vazirani.hpp"

#include "simulator/stabilizer.hpp"
#include "simulator/statevector.hpp"

#include <stdexcept>

namespace qda
{

qcircuit bernstein_vazirani_circuit( uint32_t num_qubits, uint64_t secret )
{
  if ( num_qubits < 64u && secret >= ( uint64_t{ 1 } << num_qubits ) )
  {
    throw std::invalid_argument( "bernstein_vazirani_circuit: secret out of range" );
  }
  qcircuit circuit( num_qubits );
  for ( uint32_t q = 0u; q < num_qubits; ++q )
  {
    circuit.h( q );
  }
  /* the phase oracle of the linear function a.x is a Z on every set bit */
  for ( uint32_t q = 0u; q < num_qubits; ++q )
  {
    if ( ( secret >> q ) & 1u )
    {
      circuit.z( q );
    }
  }
  for ( uint32_t q = 0u; q < num_qubits; ++q )
  {
    circuit.h( q );
  }
  circuit.measure_all();
  return circuit;
}

namespace
{

uint64_t outcome_of( const std::vector<std::pair<uint32_t, bool>>& record )
{
  uint64_t outcome = 0u;
  for ( uint32_t i = 0u; i < record.size() && i < 64u; ++i )
  {
    if ( record[i].second )
    {
      outcome |= uint64_t{ 1 } << i;
    }
  }
  return outcome;
}

} // namespace

uint64_t solve_bernstein_vazirani( uint32_t num_qubits, uint64_t secret )
{
  const auto circuit = bernstein_vazirani_circuit( num_qubits, secret );
  statevector_simulator simulator( num_qubits );
  simulator.run( circuit );
  return outcome_of( simulator.measurement_record() );
}

uint64_t solve_bernstein_vazirani_stabilizer( uint32_t num_qubits, uint64_t secret )
{
  const auto circuit = bernstein_vazirani_circuit( num_qubits, secret );
  stabilizer_simulator simulator( num_qubits );
  simulator.run( circuit );
  return outcome_of( simulator.measurement_record() );
}

} // namespace qda
