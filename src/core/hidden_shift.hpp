/*! \file hidden_shift.hpp
 *  \brief The Boolean hidden shift algorithm (paper Sec. VI, Fig. 3).
 *
 *  Given oracle access to g(x) = f(x + s) and to the dual bent function
 *  f~, the quantum algorithm
 *
 *      |0^n> --H^n--[U_g]--H^n--[U_f~]--H^n--measure--> |s>
 *
 *  recovers the hidden shift s deterministically with a single query to
 *  each oracle.  The circuit builders below reproduce the two paper
 *  flows: the generic one compiles U_g and U_f~ straight from truth
 *  tables (Fig. 4), the Maiorana-McFarland one uses permutation oracles
 *  and CZ inner-product phases with compute/uncompute sandwiches
 *  (Fig. 7 / Fig. 8).
 */
#pragma once

#include "core/bent.hpp"
#include "core/oracles.hpp"
#include "kernel/truth_table.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdint>

namespace qda
{

/*! \brief A hidden shift problem instance over a generic bent function. */
struct hidden_shift_instance
{
  truth_table f;  /*!< the bent function (must pass is_bent) */
  uint64_t shift; /*!< the hidden shift s */
};

/*! \brief Fig. 4 flow: shift realized by an X-conjugated compute block,
 *         U_f and U_f~ compiled through the ESOP phase oracle.
 *         Throws std::invalid_argument if f is not bent.
 */
qcircuit hidden_shift_circuit( const hidden_shift_instance& instance );

/*! \brief Fig. 7 flow for Maiorana-McFarland instances: permutation
 *         oracles (pi via `pi_synthesis`, its inverse realized as a
 *         Dagger block around `dual_synthesis`, exactly like
 *         `PermutationOracle(pi, synth=revkit.dbs)` in the paper) and
 *         CZ ladders for the inner product.
 */
qcircuit hidden_shift_circuit_mm( const mm_bent_function& f, uint64_t shift,
                                  permutation_synthesis pi_synthesis = permutation_synthesis::tbs,
                                  permutation_synthesis dual_synthesis = permutation_synthesis::dbs );

/*! \brief Runs the noiseless simulation and returns the measured shift. */
uint64_t solve_hidden_shift( const qcircuit& circuit, uint64_t seed = 1u );

/*! \brief Builds the inner-product hidden shift circuit structurally
 *         (no truth tables), so instances with hundreds of qubits can
 *         be generated.  The result is all-Clifford (H, X, CZ) -- the
 *         regime Bravyi-Gosset [72] exploit for classical simulation --
 *         and can be run on the stabilizer backend.
 *         `half_vars` may exceed 32; qubits are laid out interleaved.
 */
qcircuit clifford_hidden_shift_circuit( uint32_t half_vars, const std::vector<bool>& shift );

/*! \brief Solves a Clifford hidden shift instance on the stabilizer
 *         simulator; returns the recovered shift as a bit vector.
 */
std::vector<bool> solve_hidden_shift_stabilizer( const qcircuit& circuit );

/*! \brief Classical baseline: recovers s from black-box access to g and
 *         f by brute force, counting oracle queries (the quantum
 *         algorithm needs exactly two).  Returns (shift, queries).
 */
std::pair<uint64_t, uint64_t> classical_hidden_shift( const truth_table& f,
                                                      const truth_table& g );

/*! \brief Sampling-based classical baseline: tests candidate shifts on
 *         random probes first (early abort), still exponential on
 *         average for bent functions.  Returns (shift, queries).
 */
std::pair<uint64_t, uint64_t> classical_hidden_shift_sampling( const truth_table& f,
                                                               const truth_table& g,
                                                               uint64_t seed = 1u );

} // namespace qda
