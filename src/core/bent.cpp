#include "core/bent.hpp"

#include "kernel/bits.hpp"
#include "synthesis/revgen.hpp"

#include <stdexcept>
#include <utility>

namespace qda
{

mm_bent_function::mm_bent_function( permutation pi_, truth_table h_, bool interleaved_ )
    : pi( std::move( pi_ ) ), h( std::move( h_ ) ), interleaved( interleaved_ )
{
  if ( h.num_vars() != pi.num_vars() )
  {
    throw std::invalid_argument( "mm_bent_function: h and pi arities differ" );
  }
}

namespace
{

/*! Extracts the x and y register values from a full assignment. */
std::pair<uint64_t, uint64_t> split_registers( const mm_bent_function& f, uint64_t assignment )
{
  uint64_t x = 0u;
  uint64_t y = 0u;
  for ( uint32_t i = 0u; i < f.half_vars(); ++i )
  {
    if ( ( assignment >> f.x_var( i ) ) & 1u )
    {
      x |= uint64_t{ 1 } << i;
    }
    if ( ( assignment >> f.y_var( i ) ) & 1u )
    {
      y |= uint64_t{ 1 } << i;
    }
  }
  return { x, y };
}

} // namespace

truth_table mm_bent_function::to_truth_table() const
{
  truth_table result( num_vars() );
  for ( uint64_t a = 0u; a < result.num_bits(); ++a )
  {
    const auto [x, y] = split_registers( *this, a );
    result.set_bit( a, parity64( x & pi.apply( y ) ) != h.get_bit( y ) );
  }
  return result;
}

truth_table mm_bent_function::dual_truth_table() const
{
  const auto pi_inverse = pi.inverse();
  truth_table result( num_vars() );
  for ( uint64_t a = 0u; a < result.num_bits(); ++a )
  {
    const auto [x, y] = split_registers( *this, a );
    const uint64_t xp = pi_inverse.apply( x );
    result.set_bit( a, parity64( xp & y ) != h.get_bit( xp ) );
  }
  return result;
}

mm_bent_function mm_bent_function::inner_product( uint32_t half_vars, bool interleaved )
{
  return mm_bent_function( permutation( half_vars ), truth_table( half_vars ), interleaved );
}

mm_bent_function mm_bent_function::paper_fig7()
{
  return mm_bent_function( paper_fig7_permutation(), truth_table( 3u ), /*interleaved=*/true );
}

mm_bent_function mm_bent_function::random( uint32_t half_vars, uint64_t seed, bool interleaved )
{
  return mm_bent_function( permutation::random( half_vars, seed ),
                           random_truth_table( half_vars, seed ^ 0x9e3779b9u ), interleaved );
}

} // namespace qda
