#include "core/engine.hpp"

#include "simulator/statevector.hpp"
#include "telemetry/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace qda
{

meta_scope::meta_scope( meta_scope&& other ) noexcept
    : engine_( other.engine_ ), depth_( other.depth_ )
{
  other.engine_ = nullptr;
}

meta_scope::~meta_scope()
{
  try
  {
    close();
  }
  catch ( ... )
  {
    /* destructors must not throw; call close() explicitly to observe
     * errors such as unsupported gates inside a Control block */
  }
}

void meta_scope::close()
{
  if ( engine_ != nullptr )
  {
    main_engine* engine = engine_;
    engine_ = nullptr; /* disarm first: a throwing close must not re-run */
    engine->close_scope( depth_ );
  }
}

main_engine::main_engine( uint32_t num_qubits )
    : num_qubits_( num_qubits ), circuit_( num_qubits )
{
}

void main_engine::rz( uint32_t qubit, double angle )
{
  qgate gate;
  gate.kind = gate_kind::rz;
  gate.target = qubit;
  gate.angle = angle;
  emit( std::move( gate ) );
}

void main_engine::cx( uint32_t control, uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::cx;
  gate.controls = { control };
  gate.target = target;
  emit( std::move( gate ) );
}

void main_engine::cz( uint32_t control, uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::cz;
  gate.controls = { control };
  gate.target = target;
  emit( std::move( gate ) );
}

void main_engine::mcx( std::vector<uint32_t> controls, uint32_t target )
{
  if ( controls.empty() )
  {
    emit_simple( gate_kind::x, target );
    return;
  }
  qgate gate;
  gate.kind = controls.size() == 1u ? gate_kind::cx : gate_kind::mcx;
  gate.controls = std::move( controls );
  gate.target = target;
  emit( std::move( gate ) );
}

void main_engine::mcz( std::vector<uint32_t> controls, uint32_t target )
{
  if ( controls.empty() )
  {
    emit_simple( gate_kind::z, target );
    return;
  }
  qgate gate;
  gate.kind = controls.size() == 1u ? gate_kind::cz : gate_kind::mcz;
  gate.controls = std::move( controls );
  gate.target = target;
  emit( std::move( gate ) );
}

void main_engine::global_phase( double angle )
{
  qgate gate;
  gate.kind = gate_kind::global_phase;
  gate.angle = angle;
  emit( std::move( gate ) );
}

void main_engine::measure( uint32_t qubit )
{
  qgate gate;
  gate.kind = gate_kind::measure;
  gate.target = qubit;
  emit( std::move( gate ) );
}

void main_engine::measure_all()
{
  for ( uint32_t qubit = 0u; qubit < num_qubits_; ++qubit )
  {
    measure( qubit );
  }
}

void main_engine::all_h()
{
  for ( uint32_t qubit = 0u; qubit < num_qubits_; ++qubit )
  {
    h( qubit );
  }
}

void main_engine::apply( const qcircuit& sub_circuit, const std::vector<uint32_t>& mapping )
{
  if ( mapping.size() < sub_circuit.num_qubits() )
  {
    throw std::invalid_argument( "main_engine::apply: mapping too short" );
  }
  for ( const auto& view : sub_circuit.gates() )
  {
    if ( view.kind == gate_kind::barrier )
    {
      continue;
    }
    qgate gate = view.materialize();
    if ( gate.kind != gate_kind::global_phase )
    {
      for ( auto& control : gate.controls )
      {
        control = mapping[control];
      }
      gate.target = mapping[gate.target];
      if ( gate.kind == gate_kind::swap )
      {
        gate.target2 = mapping[gate.target2];
      }
    }
    emit( std::move( gate ) );
  }
}

void main_engine::apply( const qcircuit& sub_circuit )
{
  std::vector<uint32_t> identity( sub_circuit.num_qubits() );
  for ( uint32_t i = 0u; i < identity.size(); ++i )
  {
    identity[i] = i;
  }
  apply( sub_circuit, identity );
}

meta_scope main_engine::compute()
{
  scopes_.push_back( { scope_kind::compute, 0u, {} } );
  return meta_scope( *this, scopes_.size() );
}

meta_scope main_engine::dagger()
{
  scopes_.push_back( { scope_kind::dagger, 0u, {} } );
  return meta_scope( *this, scopes_.size() );
}

meta_scope main_engine::control( uint32_t control_qubit )
{
  if ( control_qubit >= num_qubits_ )
  {
    throw std::invalid_argument( "main_engine::control: qubit out of range" );
  }
  scopes_.push_back( { scope_kind::control, control_qubit, {} } );
  return meta_scope( *this, scopes_.size() );
}

void main_engine::uncompute()
{
  if ( pending_uncompute_.empty() )
  {
    throw std::logic_error( "main_engine::uncompute: no compute block pending" );
  }
  auto gates = std::move( pending_uncompute_.back() );
  pending_uncompute_.pop_back();
  for ( auto it = gates.rbegin(); it != gates.rend(); ++it )
  {
    emit( it->adjoint() );
  }
}

const qcircuit& main_engine::circuit() const
{
  if ( !scopes_.empty() )
  {
    throw std::logic_error( "main_engine::circuit: meta scope still open" );
  }
  return circuit_;
}

uint64_t main_engine::run( uint64_t seed ) const
{
  const auto& final_circuit = circuit();
  QDA_TRACE_SPAN_NAMED( run_span, "engine.run" );
  run_span.attr( "qubits", static_cast<int64_t>( num_qubits_ ) )
      .attr( "gates", static_cast<int64_t>( final_circuit.num_gates() ) );
  statevector_simulator simulator( num_qubits_, seed );
  simulator.run( final_circuit );
  uint64_t outcome = 0u;
  const auto& record = simulator.measurement_record();
  for ( uint32_t i = 0u; i < record.size(); ++i )
  {
    if ( record[i].second )
    {
      outcome |= uint64_t{ 1 } << i;
    }
  }
  return outcome;
}

std::map<uint64_t, uint64_t> main_engine::sample_counts( uint64_t shots, uint64_t seed ) const
{
  return qda::sample_counts( circuit(), shots, seed );
}

execution_result main_engine::execute_on( const std::string& target_name, uint64_t shots,
                                          uint64_t seed ) const
{
  /* constrained targets lower multi-controlled gates themselves, with
   * their own cost weights and qubit budget (run_on_ibm_model) */
  QDA_TRACE_SPAN_NAMED( exec_span, "engine.execute_on" );
  exec_span.attr( "target", target_name ).attr( "shots", shots );
  return target_registry::instance().run( target_name, circuit(), shots, seed );
}

void main_engine::emit_simple( gate_kind kind, uint32_t qubit )
{
  qgate gate;
  gate.kind = kind;
  gate.target = qubit;
  emit( std::move( gate ) );
}

void main_engine::emit( qgate gate )
{
  if ( !scopes_.empty() )
  {
    if ( gate.kind == gate_kind::measure )
    {
      throw std::logic_error( "main_engine: measurement inside a meta block" );
    }
    scopes_.back().buffer.push_back( std::move( gate ) );
    return;
  }
  circuit_.add_gate( std::move( gate ) );
}

void main_engine::close_scope( size_t depth )
{
  if ( depth != scopes_.size() || scopes_.empty() )
  {
    throw std::logic_error( "main_engine: meta scopes closed out of order" );
  }
  scope_frame frame = std::move( scopes_.back() );
  scopes_.pop_back();

  std::vector<qgate> transformed;
  transformed.reserve( frame.buffer.size() );
  switch ( frame.kind )
  {
  case scope_kind::compute:
    transformed = frame.buffer;
    break;
  case scope_kind::dagger:
    for ( auto it = frame.buffer.rbegin(); it != frame.buffer.rend(); ++it )
    {
      transformed.push_back( it->adjoint() );
    }
    break;
  case scope_kind::control:
    for ( auto gate : frame.buffer )
    {
      switch ( gate.kind )
      {
      case gate_kind::x:
        gate.kind = gate_kind::cx;
        gate.controls = { frame.control_qubit };
        break;
      case gate_kind::z:
        gate.kind = gate_kind::cz;
        gate.controls = { frame.control_qubit };
        break;
      case gate_kind::cx:
        gate.kind = gate_kind::mcx;
        gate.controls.push_back( frame.control_qubit );
        break;
      case gate_kind::cz:
        gate.kind = gate_kind::mcz;
        gate.controls.push_back( frame.control_qubit );
        break;
      case gate_kind::mcx:
      case gate_kind::mcz:
        gate.controls.push_back( frame.control_qubit );
        break;
      case gate_kind::global_phase:
        /* a controlled global phase is a Z rotation on the control */
        gate.kind = gate_kind::rz;
        gate.target = frame.control_qubit;
        /* diag(1, e^{i a}) = e^{i a/2} Rz(a) on the control */
        gate.controls.clear();
        {
          const double angle = gate.angle;
          emit( [&] {
            qgate compensation;
            compensation.kind = gate_kind::global_phase;
            compensation.angle = angle / 2.0;
            return compensation;
          }() );
        }
        break;
      default:
        throw std::logic_error( "main_engine: gate kind not supported inside Control block" );
      }
      transformed.push_back( std::move( gate ) );
    }
    break;
  }

  if ( frame.kind == scope_kind::compute )
  {
    pending_uncompute_.push_back( transformed );
  }
  for ( auto& gate : transformed )
  {
    emit( std::move( gate ) );
  }
}

} // namespace qda
