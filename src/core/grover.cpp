#include "core/grover.hpp"

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "simulator/statevector.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qda
{

namespace
{

/*! Appends the diffusion operator 2|s><s| - I (up to global phase):
 *  H^n X^n (multi-controlled Z) X^n H^n.
 */
void append_diffusion( main_engine& engine, uint32_t num_qubits )
{
  engine.all_h();
  for ( uint32_t q = 0u; q < num_qubits; ++q )
  {
    engine.x( q );
  }
  std::vector<uint32_t> controls;
  for ( uint32_t q = 0u; q + 1u < num_qubits; ++q )
  {
    controls.push_back( q );
  }
  engine.mcz( controls, num_qubits - 1u );
  for ( uint32_t q = 0u; q < num_qubits; ++q )
  {
    engine.x( q );
  }
  engine.all_h();
}

} // namespace

qcircuit grover_circuit( const truth_table& predicate, uint32_t iterations )
{
  const uint32_t n = predicate.num_vars();
  if ( n == 0u )
  {
    throw std::invalid_argument( "grover_circuit: need at least one variable" );
  }
  main_engine engine( n );
  std::vector<uint32_t> qubits( n );
  for ( uint32_t q = 0u; q < n; ++q )
  {
    qubits[q] = q;
  }

  engine.all_h();
  for ( uint32_t round = 0u; round < iterations; ++round )
  {
    phase_oracle( engine, predicate, qubits );
    append_diffusion( engine, n );
  }
  engine.measure_all();
  return engine.circuit();
}

uint32_t grover_optimal_iterations( const truth_table& predicate )
{
  const uint64_t marked = predicate.count_ones();
  if ( marked == 0u )
  {
    throw std::invalid_argument( "grover_optimal_iterations: no marked element" );
  }
  const double total = static_cast<double>( predicate.num_bits() );
  const double angle = std::asin( std::sqrt( static_cast<double>( marked ) / total ) );
  const double optimum = std::numbers::pi / ( 4.0 * angle ) - 0.5;
  return std::max<uint32_t>( 1u, static_cast<uint32_t>( std::lround( optimum ) ) );
}

double grover_success_probability( const truth_table& predicate, uint32_t iterations )
{
  const auto circuit = grover_circuit( predicate, iterations );
  qcircuit unitary_part( circuit.num_qubits() );
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind != gate_kind::measure )
    {
      unitary_part.add_gate( gate );
    }
  }
  statevector_simulator simulator( circuit.num_qubits() );
  simulator.run( unitary_part );
  double success = 0.0;
  for ( uint64_t x = 0u; x < predicate.num_bits(); ++x )
  {
    if ( predicate.get_bit( x ) )
    {
      success += simulator.probability_of( x );
    }
  }
  return success;
}

uint64_t grover_search( const truth_table& predicate, uint64_t seed )
{
  const auto circuit = grover_circuit( predicate, grover_optimal_iterations( predicate ) );
  statevector_simulator simulator( circuit.num_qubits(), seed );
  simulator.run( circuit );
  uint64_t outcome = 0u;
  const auto& record = simulator.measurement_record();
  for ( uint32_t i = 0u; i < record.size(); ++i )
  {
    if ( record[i].second )
    {
      outcome |= uint64_t{ 1 } << i;
    }
  }
  return outcome;
}

} // namespace qda
