/*! \file grover.hpp
 *  \brief Grover search over automatically compiled predicate oracles.
 *
 *  The paper's introduction lists Grover's algorithm [5] as a main
 *  consumer of reversible oracle compilation: "the overhead due to
 *  implementing the defining predicate in a reversible way can be quite
 *  substantial" [6].  This module closes the loop: a Boolean predicate
 *  is compiled into a phase oracle by the same RevKit machinery as the
 *  hidden shift demos and amplified with the standard diffusion
 *  operator.
 */
#pragma once

#include "kernel/expression.hpp"
#include "kernel/truth_table.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdint>

namespace qda
{

/*! \brief Builds the Grover circuit for `predicate` with `iterations`
 *         rounds (phase oracle + diffusion); measures all qubits.
 */
qcircuit grover_circuit( const truth_table& predicate, uint32_t iterations );

/*! \brief The optimal iteration count round(pi/4 sqrt(N/M)) for M
 *         marked elements out of N; at least 1.
 *         Throws std::invalid_argument if nothing is marked.
 */
uint32_t grover_optimal_iterations( const truth_table& predicate );

/*! \brief Probability that measuring the Grover state yields a marked
 *         element (noiseless simulation).
 */
double grover_success_probability( const truth_table& predicate, uint32_t iterations );

/*! \brief Convenience: run with the optimal iteration count and return
 *         one sampled element (deterministic seed).
 */
uint64_t grover_search( const truth_table& predicate, uint64_t seed = 1u );

} // namespace qda
