/*! \file engine.hpp
 *  \brief ProjectQ-style programming engine with meta-blocks.
 *
 *  The C++ counterpart of the paper's ProjectQ front end (Sec. VII):
 *  gates are streamed into an engine, and the meta-constructs
 *  Compute/Uncompute, Dagger and Control wrap gate sequences the same
 *  way the Python `with` statements do in Fig. 4 and Fig. 7:
 *
 *      main_engine eng( 4 );
 *      {
 *        auto computed = eng.compute();   // with Compute(eng):
 *        eng.all_h();
 *        eng.x( 0 );                      //   X | x1  (shift s = 1)
 *      }                                  // block closes
 *      phase_oracle( eng, f, ... );       // PhaseOracle(f) | qubits
 *      eng.uncompute();                   // Uncompute(eng)
 *
 *  Scopes buffer their gates; closing a dagger scope commits the
 *  adjoint in reverse order, closing a control scope commits each gate
 *  with an extra control, closing a compute scope commits verbatim and
 *  remembers the gates so a later uncompute() can append the inverse.
 */
#pragma once

#include "pipeline/target.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qda
{

class main_engine;

/*! \brief RAII handle closing a meta-block on destruction. */
class meta_scope
{
public:
  meta_scope( meta_scope&& other ) noexcept;
  meta_scope& operator=( meta_scope&& ) = delete;
  meta_scope( const meta_scope& ) = delete;
  ~meta_scope();

  /*! \brief Closes the scope early (idempotent). */
  void close();

private:
  friend class main_engine;
  meta_scope( main_engine& engine, size_t depth ) : engine_( &engine ), depth_( depth ) {}

  main_engine* engine_;
  size_t depth_;
};

/*! \brief The gate-stream engine (ProjectQ MainEngine stand-in). */
class main_engine
{
public:
  explicit main_engine( uint32_t num_qubits );

  uint32_t num_qubits() const noexcept { return num_qubits_; }

  /* gate builders mirror qcircuit's */
  void h( uint32_t qubit ) { emit_simple( gate_kind::h, qubit ); }
  void x( uint32_t qubit ) { emit_simple( gate_kind::x, qubit ); }
  void y( uint32_t qubit ) { emit_simple( gate_kind::y, qubit ); }
  void z( uint32_t qubit ) { emit_simple( gate_kind::z, qubit ); }
  void s( uint32_t qubit ) { emit_simple( gate_kind::s, qubit ); }
  void t( uint32_t qubit ) { emit_simple( gate_kind::t, qubit ); }
  void rz( uint32_t qubit, double angle );
  void cx( uint32_t control, uint32_t target );
  void cz( uint32_t control, uint32_t target );
  void mcx( std::vector<uint32_t> controls, uint32_t target );
  void mcz( std::vector<uint32_t> controls, uint32_t target );
  void global_phase( double angle );
  void measure( uint32_t qubit );
  void measure_all();

  /*! \brief Hadamard on every qubit (the `All(H) | qubits` idiom). */
  void all_h();

  /*! \brief Streams a prebuilt circuit with qubit i -> mapping[i]. */
  void apply( const qcircuit& sub_circuit, const std::vector<uint32_t>& mapping );

  /*! \brief Streams a prebuilt circuit on qubits 0..k-1. */
  void apply( const qcircuit& sub_circuit );

  /* ---- meta blocks (paper Figs. 4 and 7) ---- */

  /*! \brief Opens a Compute block; close it before calling uncompute(). */
  [[nodiscard]] meta_scope compute();

  /*! \brief Opens a Dagger block: its gates commit inverted, reversed. */
  [[nodiscard]] meta_scope dagger();

  /*! \brief Opens a Control block: its gates commit with `control` added. */
  [[nodiscard]] meta_scope control( uint32_t control_qubit );

  /*! \brief Appends the adjoint of the most recent closed, not yet
   *         uncomputed Compute block.  Throws if none is pending.
   */
  void uncompute();

  /*! \brief The accumulated circuit; all scopes must be closed. */
  const qcircuit& circuit() const;

  /*! \brief Simulates the circuit and returns the sampled measurement
   *         outcome (bit i = i-th measure gate), deterministic states
   *         yield deterministic outcomes.
   */
  uint64_t run( uint64_t seed = 1u ) const;

  /*! \brief Simulates the unitary part once and histograms `shots`
   *         sampled outcomes of the measured qubits (bit i of the key =
   *         i-th measure gate); fused kernels + cumulative-distribution
   *         sampling instead of per-shot re-simulation.  Throws
   *         std::invalid_argument if no measure gate was emitted
   *         (unlike run(), which returns 0 for such circuits).
   */
  std::map<uint64_t, uint64_t> sample_counts( uint64_t shots, uint64_t seed = 1u ) const;

  /*! \brief Runs the accumulated circuit on a registered execution
   *         target by name -- the paper's "switch the backend by
   *         changing two lines of code" (Sec. VII).  Constrained
   *         (device) targets first get multi-controlled gates lowered
   *         with the target's own cost weights and qubit budget, then
   *         the registry routes onto the coupling map.
   */
  execution_result execute_on( const std::string& target_name, uint64_t shots,
                               uint64_t seed = 1u ) const;

private:
  friend class meta_scope;

  enum class scope_kind
  {
    compute,
    dagger,
    control
  };

  struct scope_frame
  {
    scope_kind kind;
    uint32_t control_qubit = 0u;
    std::vector<qgate> buffer;
  };

  void emit( qgate gate );
  void emit_simple( gate_kind kind, uint32_t qubit );
  void close_scope( size_t depth );

  uint32_t num_qubits_;
  qcircuit circuit_;
  std::vector<scope_frame> scopes_;
  std::vector<std::vector<qgate>> pending_uncompute_;
};

} // namespace qda
