#include "core/flow.hpp"

#include "optimization/peephole.hpp"
#include "optimization/phase_folding.hpp"
#include "optimization/revsimp.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/decomposition_based.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <stdexcept>

namespace qda
{

flow& flow::revgen_hwb( uint32_t num_vars )
{
  return revgen( hwb_permutation( num_vars ) );
}

flow& flow::revgen( permutation target )
{
  permutation_ = std::move( target );
  reversible_.reset();
  quantum_.reset();
  return *this;
}

namespace
{

const permutation& require_permutation( const std::optional<permutation>& p )
{
  if ( !p )
  {
    throw std::logic_error( "flow: no permutation; run revgen first" );
  }
  return *p;
}

const rev_circuit& require_reversible( const std::optional<rev_circuit>& c )
{
  if ( !c )
  {
    throw std::logic_error( "flow: no reversible circuit; run a synthesis command first" );
  }
  return *c;
}

const clifford_t_result& require_quantum( const std::optional<clifford_t_result>& c )
{
  if ( !c )
  {
    throw std::logic_error( "flow: no quantum circuit; run rptm first" );
  }
  return *c;
}

} // namespace

flow& flow::tbs()
{
  reversible_ = transformation_based_synthesis( require_permutation( permutation_ ) );
  quantum_.reset();
  return *this;
}

flow& flow::tbs_bidirectional()
{
  reversible_ = transformation_based_synthesis_bidirectional( require_permutation( permutation_ ) );
  quantum_.reset();
  return *this;
}

flow& flow::dbs()
{
  reversible_ = decomposition_based_synthesis( require_permutation( permutation_ ) );
  quantum_.reset();
  return *this;
}

flow& flow::revsimp()
{
  reversible_ = qda::revsimp( require_reversible( reversible_ ) );
  quantum_.reset();
  return *this;
}

flow& flow::rptm( bool use_relative_phase )
{
  clifford_t_options options;
  options.use_relative_phase = use_relative_phase;
  quantum_ = map_to_clifford_t( require_reversible( reversible_ ), options );
  return *this;
}

flow& flow::tpar()
{
  require_quantum( quantum_ );
  quantum_->circuit = phase_folding( quantum_->circuit );
  return *this;
}

flow& flow::peephole()
{
  require_quantum( quantum_ );
  quantum_->circuit = peephole_optimize( quantum_->circuit );
  return *this;
}

circuit_statistics flow::ps() const
{
  return compute_statistics( require_quantum( quantum_ ).circuit );
}

std::string flow::ps_line() const
{
  return format_statistics( ps() );
}

const permutation& flow::current_permutation() const
{
  return require_permutation( permutation_ );
}

const rev_circuit& flow::reversible() const
{
  return require_reversible( reversible_ );
}

const qcircuit& flow::quantum() const
{
  return require_quantum( quantum_ ).circuit;
}

bool flow::verify() const
{
  const auto& target = require_permutation( permutation_ );
  const auto& result = require_quantum( quantum_ );
  if ( result.circuit.num_qubits() > 14u )
  {
    throw std::invalid_argument( "flow::verify: circuit too large for explicit verification" );
  }
  return circuit_implements_permutation_with_helpers(
      result.circuit, target.num_vars(), target.images(), /*up_to_phase=*/true );
}

} // namespace qda
