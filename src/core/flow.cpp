#include "core/flow.hpp"

#include "pipeline/timing.hpp"
#include "simulator/unitary.hpp"

#include <stdexcept>

namespace qda
{

flow& flow::apply( const std::string& pass_name, pass_arguments args )
{
  /* the previous report's exit statistics are this pass's entry
   * statistics; reusing them avoids an O(gates) recomputation */
  const auto* stats_hint = reports_.empty() ? nullptr : &reports_.back().statistics_after;
  reports_.push_back( pass_manager::apply_pass(
      ir_, pass_invocation{ pass_name, std::move( args ) }, pass_registry::instance(),
      stats_hint ) );
  return *this;
}

flow& flow::revgen_hwb( uint32_t num_vars )
{
  pass_arguments args;
  args.add_option( "hwb", std::to_string( num_vars ) );
  return apply( "revgen", std::move( args ) );
}

flow& flow::revgen( permutation target )
{
  /* arbitrary permutations have no shell encoding; load the IR directly
   * but record the same report fields apply_pass would */
  pass_report report;
  report.name = "revgen";
  report.stage_before = ir_.current;
  report.gates_before = ir_.current_gate_count();
  report.statistics_before =
      reports_.empty() ? ir_.current_statistics() : reports_.back().statistics_after;
  const auto start = detail::steady_clock::now();
  ir_.set_permutation( std::move( target ) );
  report.elapsed_ms = detail::elapsed_ms_since( start );
  report.stage_after = stage::permutation;
  reports_.push_back( std::move( report ) );
  return *this;
}

flow& flow::tbs()
{
  return apply( "tbs" );
}

flow& flow::tbs_bidirectional()
{
  pass_arguments args;
  args.add_flag( "bidirectional" );
  return apply( "tbs", std::move( args ) );
}

flow& flow::dbs()
{
  return apply( "dbs" );
}

flow& flow::revsimp()
{
  return apply( "revsimp" );
}

flow& flow::rptm( bool use_relative_phase )
{
  pass_arguments args;
  if ( !use_relative_phase )
  {
    args.add_flag( "no-relative-phase" );
  }
  return apply( "rptm", std::move( args ) );
}

flow& flow::rptm_strategy( const std::string& strategy, const std::string& cost_target )
{
  pass_arguments args;
  args.add_option( "strategy", strategy );
  if ( !cost_target.empty() )
  {
    args.add_option( "cost-target", cost_target );
  }
  return apply( "rptm", std::move( args ) );
}

flow& flow::route( const std::string& device, const std::string& router )
{
  pass_arguments args;
  args.add_option( "device", device );
  args.add_option( "router", router );
  return apply( "route", std::move( args ) );
}

flow& flow::tpar( bool resynth )
{
  pass_arguments args;
  if ( !resynth )
  {
    args.add_flag( "fold-only" );
  }
  return apply( "tpar", std::move( args ) );
}

flow& flow::peephole()
{
  return apply( "peephole" );
}

circuit_statistics flow::ps() const
{
  return compute_statistics( ir_.require_quantum().circuit );
}

std::string flow::ps_line() const
{
  return format_statistics( ps() );
}

const permutation& flow::current_permutation() const
{
  return ir_.require_permutation();
}

const rev_circuit& flow::reversible() const
{
  return ir_.require_reversible();
}

const qcircuit& flow::quantum() const
{
  return ir_.require_quantum().circuit;
}

const routing_result& flow::mapped() const
{
  return ir_.require_mapped();
}

bool flow::verify() const
{
  const auto& target = ir_.require_permutation();
  const auto& result = ir_.require_quantum();
  if ( result.circuit.num_qubits() > 14u )
  {
    throw std::invalid_argument( "flow::verify: circuit too large for explicit verification" );
  }
  return circuit_implements_permutation_with_helpers(
      result.circuit, target.num_vars(), target.images(), /*up_to_phase=*/true );
}

} // namespace qda
