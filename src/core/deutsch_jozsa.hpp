/*! \file deutsch_jozsa.hpp
 *  \brief Deutsch-Jozsa on compiled phase oracles.
 *
 *  The simplest member of the oracle-algorithm family the paper's flow
 *  serves: decide with a single query whether a promise function is
 *  constant or balanced.  The oracle is compiled by the same ESOP
 *  phase-oracle machinery as the hidden shift instances.
 */
#pragma once

#include "kernel/truth_table.hpp"
#include "quantum/qcircuit.hpp"

namespace qda
{

/*! \brief Builds the DJ circuit: H^n, U_f (phase form), H^n, measure. */
qcircuit deutsch_jozsa_circuit( const truth_table& function );

/*! \brief True if the promise function is constant (single query,
 *         noiseless simulation).  Throws std::invalid_argument if the
 *         function is neither constant nor balanced.
 */
bool deutsch_jozsa_is_constant( const truth_table& function );

} // namespace qda
