/*! \file esop.hpp
 *  \brief ESOP (exclusive sum-of-products) covers of Boolean functions.
 *
 *  ESOP covers are the bridge between Boolean functions and reversible
 *  circuits: every cube of an ESOP for f becomes one multiple-controlled
 *  Toffoli gate in the Bennett-embedded circuit |x>|y> -> |x>|y xor f(x)>
 *  (paper Sec. V, refs [56]-[58]), and one multiple-controlled Z gate in
 *  the phase oracle (-1)^{f(x)} used by the hidden shift algorithm.
 *
 *  Three generators are provided:
 *    - PPRM: positive-polarity Reed-Muller (algebraic normal form);
 *      canonical, positive literals only.
 *    - PKRM: pseudo-Kronecker expressions chosen per-variable among
 *      Shannon / positive Davio / negative Davio decompositions
 *      (Drechsler [59]); usually much smaller than PPRM.
 *    - exorcism-style minimization: distance-based cube-pair rewriting
 *      applied on top of any initial cover ([60]).
 */
#pragma once

#include "kernel/cube.hpp"
#include "kernel/truth_table.hpp"

#include <vector>

namespace qda
{

/*! \brief An ESOP cover: XOR of product terms. */
using esop_cover = std::vector<cube>;

/*! \brief PPRM / algebraic normal form of f via the Moebius transform.
 *
 *  The returned cubes have positive literals only and are canonical for f.
 */
esop_cover esop_from_pprm( const truth_table& function );

/*! \brief Optimum pseudo-Kronecker cover by dynamic programming over the
 *         three expansion rules per variable.  Exponential in the number
 *         of support variables but memoized; intended for n <= 16.
 */
esop_cover esop_from_pkrm( const truth_table& function );

/*! \brief Distance-based cube-pair minimization (exorcism-lite).
 *
 *  Repeatedly cancels distance-0 pairs, merges distance-1 pairs and
 *  applies exorlink-2 rewrites while the cover shrinks; at most
 *  `max_rounds` sweeps.  The result computes the same function.
 */
esop_cover minimize_esop( esop_cover cover, uint32_t max_rounds = 8u );

/*! \brief Convenience: PKRM for small functions, minimized PPRM otherwise. */
esop_cover esop_for_function( const truth_table& function );

/*! \brief Expands a cover back into a truth table (for verification). */
truth_table esop_to_truth_table( const esop_cover& cover, uint32_t num_vars );

} // namespace qda
