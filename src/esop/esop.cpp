#include "esop/esop.hpp"

#include "kernel/bits.hpp"

#include <map>
#include <optional>
#include <stdexcept>

namespace qda
{

namespace
{

/*! Literal encoding per variable: 0 = negative literal, 1 = positive
 *  literal, 2 = absent (don't care).
 */
uint32_t literal_value( const cube& c, uint32_t var )
{
  if ( !( ( c.mask >> var ) & 1u ) )
  {
    return 2u;
  }
  return ( c.polarity >> var ) & 1u;
}

void set_literal_value( cube& c, uint32_t var, uint32_t value )
{
  if ( value == 2u )
  {
    c.remove_literal( var );
  }
  else
  {
    c.add_literal( var, value == 1u );
  }
}

/*! XOR-merge of two distinct literal values: the unique third value with
 *  chi(a) xor chi(b) = chi(merge(a,b)) over {0,1} (e.g. !x xor x = 1).
 */
uint32_t merge_literal( uint32_t a, uint32_t b )
{
  return 3u - a - b;
}

/*! Merges two cubes at distance 1 into the single equivalent cube. */
cube merge_distance_one( const cube& a, const cube& b )
{
  const uint32_t occurrence_diff = a.mask ^ b.mask;
  const uint32_t phase_diff = ( a.polarity ^ b.polarity ) & a.mask & b.mask;
  const uint32_t var = least_significant_bit( occurrence_diff | phase_diff );
  cube result = a;
  set_literal_value( result, var, merge_literal( literal_value( a, var ), literal_value( b, var ) ) );
  return result;
}

std::vector<uint32_t> differing_variables( const cube& a, const cube& b )
{
  const uint32_t occurrence_diff = a.mask ^ b.mask;
  const uint32_t phase_diff = ( a.polarity ^ b.polarity ) & a.mask & b.mask;
  uint32_t diff = occurrence_diff | phase_diff;
  std::vector<uint32_t> vars;
  while ( diff != 0u )
  {
    const uint32_t var = least_significant_bit( diff );
    vars.push_back( var );
    diff &= diff - 1u;
  }
  return vars;
}

/*! One sweep of distance-0 cancellation and distance-1 merging.
 *  Returns true if the cover changed.
 */
bool sweep_merge( esop_cover& cover )
{
  bool changed = false;
  for ( size_t i = 0u; i < cover.size(); ++i )
  {
    for ( size_t j = i + 1u; j < cover.size(); ++j )
    {
      const uint32_t d = cover[i].distance( cover[j] );
      if ( d == 0u )
      {
        cover.erase( cover.begin() + static_cast<ptrdiff_t>( j ) );
        cover.erase( cover.begin() + static_cast<ptrdiff_t>( i ) );
        --i;
        changed = true;
        break;
      }
      if ( d == 1u )
      {
        cover[i] = merge_distance_one( cover[i], cover[j] );
        cover.erase( cover.begin() + static_cast<ptrdiff_t>( j ) );
        changed = true;
        --j; /* re-examine from the merged cube */
      }
    }
  }
  return changed;
}

/*! The four exorlink-2 rewrites of a distance-2 pair (a, b): each is an
 *  equivalent pair of cubes.
 */
std::vector<std::pair<cube, cube>> exorlink2_rewrites( const cube& a, const cube& b )
{
  const auto vars = differing_variables( a, b );
  const uint32_t u = vars[0];
  const uint32_t v = vars[1];

  std::vector<std::pair<cube, cube>> rewrites;
  for ( const auto& [first, second] : { std::pair{ a, b }, std::pair{ b, a } } )
  {
    for ( const auto pivot : { u, v } )
    {
      const uint32_t other = pivot == u ? v : u;
      cube c1 = first;
      set_literal_value( c1, pivot,
                         merge_literal( literal_value( first, pivot ), literal_value( second, pivot ) ) );
      cube c2 = first;
      set_literal_value( c2, pivot, literal_value( second, pivot ) );
      set_literal_value( c2, other,
                         merge_literal( literal_value( first, other ), literal_value( second, other ) ) );
      rewrites.emplace_back( c1, c2 );
    }
  }
  return rewrites;
}

/*! Tries exorlink-2 rewrites that enable a later cancellation or merge.
 *  Returns true if a beneficial rewrite was applied.
 */
bool sweep_exorlink2( esop_cover& cover )
{
  for ( size_t i = 0u; i < cover.size(); ++i )
  {
    for ( size_t j = i + 1u; j < cover.size(); ++j )
    {
      if ( cover[i].distance( cover[j] ) != 2u )
      {
        continue;
      }
      for ( const auto& [c1, c2] : exorlink2_rewrites( cover[i], cover[j] ) )
      {
        /* beneficial iff one of the new cubes is at distance <= 1 to a
         * third cube of the cover */
        for ( size_t k = 0u; k < cover.size(); ++k )
        {
          if ( k == i || k == j )
          {
            continue;
          }
          if ( c1.distance( cover[k] ) <= 1u || c2.distance( cover[k] ) <= 1u )
          {
            cover[i] = c1;
            cover[j] = c2;
            return true;
          }
        }
      }
    }
  }
  return false;
}

class pkrm_builder
{
public:
  explicit pkrm_builder( uint32_t num_vars ) : num_vars_( num_vars ) {}

  esop_cover build( const truth_table& function )
  {
    if ( function.is_constant0() )
    {
      return {};
    }
    if ( function.is_constant1() )
    {
      return { cube::one() };
    }
    if ( const auto it = cache_.find( function.words() ); it != cache_.end() )
    {
      return it->second;
    }

    /* decompose on the highest support variable */
    uint32_t var = 0u;
    for ( uint32_t v = num_vars_; v-- > 0u; )
    {
      if ( function.depends_on( v ) )
      {
        var = v;
        break;
      }
    }

    const auto f0 = function.cofactor0( var );
    const auto f1 = function.cofactor1( var );
    const auto f2 = f0 ^ f1;

    const auto c0 = build( f0 );
    const auto c1 = build( f1 );
    const auto c2 = build( f2 );

    /* build all three candidates and keep the one with the fewest cubes,
     * breaking ties on literal count (fewer controls per phase gate) */
    esop_cover shannon = with_literal( c0, var, false );
    append_with_literal( shannon, c1, var, true );

    esop_cover positive_davio = c0;
    append_with_literal( positive_davio, c2, var, true );

    esop_cover negative_davio = c1;
    append_with_literal( negative_davio, c2, var, false );

    const auto cost = []( const esop_cover& cover ) {
      return std::pair<size_t, uint64_t>{ cover.size(), esop_literal_count( cover ) };
    };
    esop_cover result = std::move( positive_davio );
    if ( cost( negative_davio ) < cost( result ) )
    {
      result = std::move( negative_davio );
    }
    if ( cost( shannon ) < cost( result ) )
    {
      result = std::move( shannon );
    }
    cache_.emplace( function.words(), result );
    return result;
  }

private:
  static esop_cover with_literal( const esop_cover& cover, uint32_t var, bool positive )
  {
    esop_cover result;
    result.reserve( cover.size() );
    append_with_literal( result, cover, var, positive );
    return result;
  }

  static void append_with_literal( esop_cover& out, const esop_cover& cover, uint32_t var,
                                   bool positive )
  {
    for ( auto c : cover )
    {
      c.add_literal( var, positive );
      out.push_back( c );
    }
  }

  uint32_t num_vars_;
  std::map<std::vector<uint64_t>, esop_cover> cache_;
};

} // namespace

esop_cover esop_from_pprm( const truth_table& function )
{
  if ( function.num_vars() > 32u )
  {
    throw std::invalid_argument( "esop_from_pprm: too many variables for cubes" );
  }
  /* Moebius transform: coefficient[m] = xor of f over all x subseteq m */
  std::vector<uint64_t> words = function.words();
  const uint32_t num_vars = function.num_vars();
  for ( uint32_t var = 0u; var < num_vars; ++var )
  {
    if ( var < 6u )
    {
      const uint64_t low_mask = ~projection_masks[var];
      const uint32_t shift = 1u << var;
      for ( auto& word : words )
      {
        word ^= ( word & low_mask ) << shift;
      }
    }
    else
    {
      const uint32_t block = 1u << ( var - 6u );
      for ( uint32_t w = 0u; w < words.size(); ++w )
      {
        if ( ( w / block ) & 1u )
        {
          words[w] ^= words[w - block];
        }
      }
    }
  }

  esop_cover cover;
  for ( uint64_t m = 0u; m < function.num_bits(); ++m )
  {
    if ( test_bit( words[m >> 6u], static_cast<uint32_t>( m & 63u ) ) )
    {
      cover.push_back( cube( static_cast<uint32_t>( m ), static_cast<uint32_t>( m ) ) );
    }
  }
  return cover;
}

esop_cover esop_from_pkrm( const truth_table& function )
{
  pkrm_builder builder( function.num_vars() );
  return builder.build( function );
}

esop_cover minimize_esop( esop_cover cover, uint32_t max_rounds )
{
  for ( uint32_t round = 0u; round < max_rounds; ++round )
  {
    bool changed = false;
    while ( sweep_merge( cover ) )
    {
      changed = true;
    }
    if ( sweep_exorlink2( cover ) )
    {
      changed = true;
    }
    if ( !changed )
    {
      break;
    }
  }
  return cover;
}

esop_cover esop_for_function( const truth_table& function )
{
  constexpr uint32_t pkrm_limit = 14u;
  if ( function.num_vars() <= pkrm_limit )
  {
    return minimize_esop( esop_from_pkrm( function ) );
  }
  return minimize_esop( esop_from_pprm( function ) );
}

truth_table esop_to_truth_table( const esop_cover& cover, uint32_t num_vars )
{
  truth_table result( num_vars );
  for ( uint64_t x = 0u; x < result.num_bits(); ++x )
  {
    result.set_bit( x, evaluate_esop( cover, x ) );
  }
  return result;
}

} // namespace qda
