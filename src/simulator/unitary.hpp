/*! \file unitary.hpp
 *  \brief Explicit unitary construction and equivalence checking.
 *
 *  Verification backend (paper Sec. IX): builds the 2^n x 2^n matrix of
 *  a circuit column by column and compares circuits up to global phase.
 *  Exponential, so intended for n <= 12; larger circuits are checked by
 *  statevector probing.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <complex>
#include <vector>

namespace qda
{

/*! \brief Column-major unitary: element(row, column) = matrix[column][row]. */
using unitary_matrix = std::vector<std::vector<std::complex<double>>>;

/*! \brief Builds the full unitary of a measurement-free circuit. */
unitary_matrix build_unitary( const qcircuit& circuit );

/*! \brief True if two unitaries agree up to a global phase. */
bool unitaries_equal_up_to_phase( const unitary_matrix& a, const unitary_matrix& b,
                                  double tolerance = 1e-9 );

/*! \brief True if two circuits implement the same unitary up to phase.
 *         Both must be measurement-free; qubit counts must match.
 */
bool circuits_equivalent( const qcircuit& a, const qcircuit& b, double tolerance = 1e-9 );

/*! \brief True if the circuit implements the classical permutation
 *         `images` (up to per-state phases if `up_to_phase`).
 */
bool circuit_implements_permutation( const qcircuit& circuit,
                                     const std::vector<uint64_t>& images,
                                     bool up_to_phase = false, double tolerance = 1e-9 );

/*! \brief Checks that a circuit over more qubits than `images` covers
 *         implements the permutation on the low lines with helper qubits
 *         starting and ending in |0>.
 */
bool circuit_implements_permutation_with_helpers( const qcircuit& circuit, uint32_t num_lines,
                                                  const std::vector<uint64_t>& images,
                                                  bool up_to_phase = false,
                                                  double tolerance = 1e-9 );

} // namespace qda
