#include "simulator/stabilizer.hpp"

#include <map>
#include <stdexcept>

namespace qda
{

stabilizer_simulator::stabilizer_simulator( uint32_t num_qubits, uint64_t seed )
    : num_qubits_( num_qubits ), num_words_( ( num_qubits + 63u ) / 64u ), rng_( seed )
{
  reset();
}

void stabilizer_simulator::reset()
{
  rows_.assign( 2u * num_qubits_, pauli_row{ std::vector<uint64_t>( num_words_, 0u ),
                                             std::vector<uint64_t>( num_words_, 0u ), false } );
  for ( uint32_t q = 0u; q < num_qubits_; ++q )
  {
    set_x( rows_[q], q, true );                 /* destabilizer X_q */
    set_z( rows_[num_qubits_ + q], q, true );   /* stabilizer Z_q */
  }
  measurements_.clear();
}

bool stabilizer_simulator::get_x( const pauli_row& row, uint32_t qubit ) const
{
  return ( row.x[qubit >> 6u] >> ( qubit & 63u ) ) & 1u;
}

bool stabilizer_simulator::get_z( const pauli_row& row, uint32_t qubit ) const
{
  return ( row.z[qubit >> 6u] >> ( qubit & 63u ) ) & 1u;
}

void stabilizer_simulator::set_x( pauli_row& row, uint32_t qubit, bool value )
{
  const uint64_t bit = uint64_t{ 1 } << ( qubit & 63u );
  row.x[qubit >> 6u] = value ? ( row.x[qubit >> 6u] | bit ) : ( row.x[qubit >> 6u] & ~bit );
}

void stabilizer_simulator::set_z( pauli_row& row, uint32_t qubit, bool value )
{
  const uint64_t bit = uint64_t{ 1 } << ( qubit & 63u );
  row.z[qubit >> 6u] = value ? ( row.z[qubit >> 6u] | bit ) : ( row.z[qubit >> 6u] & ~bit );
}

void stabilizer_simulator::apply_h( uint32_t qubit )
{
  for ( auto& row : rows_ )
  {
    const bool x = get_x( row, qubit );
    const bool z = get_z( row, qubit );
    row.sign ^= x && z;
    set_x( row, qubit, z );
    set_z( row, qubit, x );
  }
}

void stabilizer_simulator::apply_s( uint32_t qubit )
{
  for ( auto& row : rows_ )
  {
    const bool x = get_x( row, qubit );
    const bool z = get_z( row, qubit );
    row.sign ^= x && z;
    set_z( row, qubit, x != z );
  }
}

void stabilizer_simulator::apply_sdg( uint32_t qubit )
{
  /* S^3: X -> -Y, Y -> X, Z -> Z in one pass */
  for ( auto& row : rows_ )
  {
    const bool x = get_x( row, qubit );
    const bool z = get_z( row, qubit );
    row.sign ^= x && !z;
    set_z( row, qubit, x != z );
  }
}

void stabilizer_simulator::apply_z( uint32_t qubit )
{
  /* Z conjugation flips the sign of X and Y components */
  for ( auto& row : rows_ )
  {
    row.sign ^= get_x( row, qubit );
  }
}

void stabilizer_simulator::apply_x( uint32_t qubit )
{
  /* X conjugation flips the sign of Z and Y components */
  for ( auto& row : rows_ )
  {
    row.sign ^= get_z( row, qubit );
  }
}

void stabilizer_simulator::apply_y( uint32_t qubit )
{
  /* Y conjugation flips the sign of X and Z (but not Y) components */
  for ( auto& row : rows_ )
  {
    row.sign ^= get_x( row, qubit ) != get_z( row, qubit );
  }
}

void stabilizer_simulator::apply_cx( uint32_t control, uint32_t target )
{
  for ( auto& row : rows_ )
  {
    const bool xc = get_x( row, control );
    const bool zc = get_z( row, control );
    const bool xt = get_x( row, target );
    const bool zt = get_z( row, target );
    row.sign ^= xc && zt && ( xt == zc );
    set_x( row, target, xt != xc );
    set_z( row, control, zc != zt );
  }
}

void stabilizer_simulator::apply_cz( uint32_t control, uint32_t target )
{
  /* direct update: X_c -> X_c Z_t, X_t -> Z_c X_t, Z's fixed */
  for ( auto& row : rows_ )
  {
    const bool xc = get_x( row, control );
    const bool zc = get_z( row, control );
    const bool xt = get_x( row, target );
    const bool zt = get_z( row, target );
    row.sign ^= xc && xt && ( zc != zt );
    set_z( row, control, zc != xt );
    set_z( row, target, zt != xc );
  }
}

void stabilizer_simulator::apply_swap( uint32_t a, uint32_t b )
{
  /* pure qubit relabeling: swap the a and b columns of X and Z */
  for ( auto& row : rows_ )
  {
    const bool xa = get_x( row, a );
    const bool xb = get_x( row, b );
    const bool za = get_z( row, a );
    const bool zb = get_z( row, b );
    set_x( row, a, xb );
    set_x( row, b, xa );
    set_z( row, a, zb );
    set_z( row, b, za );
  }
}

void stabilizer_simulator::rowsum( pauli_row& target, const pauli_row& source ) const
{
  /* phase exponent of i in the product, mod 4 */
  int32_t exponent = ( target.sign ? 2 : 0 ) + ( source.sign ? 2 : 0 );
  for ( uint32_t q = 0u; q < num_qubits_; ++q )
  {
    const int32_t x1 = get_x( source, q ) ? 1 : 0;
    const int32_t z1 = get_z( source, q ) ? 1 : 0;
    const int32_t x2 = get_x( target, q ) ? 1 : 0;
    const int32_t z2 = get_z( target, q ) ? 1 : 0;
    if ( x1 == 1 && z1 == 1 )
    {
      exponent += z2 - x2;
    }
    else if ( x1 == 1 && z1 == 0 )
    {
      exponent += z2 * ( 2 * x2 - 1 );
    }
    else if ( x1 == 0 && z1 == 1 )
    {
      exponent += x2 * ( 1 - 2 * z2 );
    }
  }
  exponent = ( ( exponent % 4 ) + 4 ) % 4;
  target.sign = exponent == 2;
  for ( uint32_t w = 0u; w < num_words_; ++w )
  {
    target.x[w] ^= source.x[w];
    target.z[w] ^= source.z[w];
  }
}

bool stabilizer_simulator::is_deterministic( uint32_t qubit ) const
{
  for ( uint32_t p = num_qubits_; p < 2u * num_qubits_; ++p )
  {
    if ( get_x( rows_[p], qubit ) )
    {
      return false;
    }
  }
  return true;
}

bool stabilizer_simulator::measure( uint32_t qubit )
{
  return measure( qubit, rng_ );
}

bool stabilizer_simulator::measure( uint32_t qubit, std::mt19937_64& rng )
{
  last_measure_random_ = false;
  uint32_t pivot = 2u * num_qubits_;
  for ( uint32_t p = num_qubits_; p < 2u * num_qubits_; ++p )
  {
    if ( get_x( rows_[p], qubit ) )
    {
      pivot = p;
      break;
    }
  }

  if ( pivot < 2u * num_qubits_ )
  {
    /* random outcome */
    for ( uint32_t i = 0u; i < 2u * num_qubits_; ++i )
    {
      if ( i != pivot && get_x( rows_[i], qubit ) )
      {
        rowsum( rows_[i], rows_[pivot] );
      }
    }
    rows_[pivot - num_qubits_] = rows_[pivot];
    rows_[pivot] = pauli_row{ std::vector<uint64_t>( num_words_, 0u ),
                              std::vector<uint64_t>( num_words_, 0u ), false };
    set_z( rows_[pivot], qubit, true );
    last_measure_random_ = true;
    const bool outcome = ( rng() & 1u ) != 0u;
    rows_[pivot].sign = outcome;
    return outcome;
  }

  /* deterministic outcome: accumulate the matching stabilizers */
  pauli_row scratch{ std::vector<uint64_t>( num_words_, 0u ),
                     std::vector<uint64_t>( num_words_, 0u ), false };
  for ( uint32_t i = 0u; i < num_qubits_; ++i )
  {
    if ( get_x( rows_[i], qubit ) )
    {
      rowsum( scratch, rows_[i + num_qubits_] );
    }
  }
  return scratch.sign;
}

void stabilizer_simulator::apply_gate( const qgate_view& gate )
{
  switch ( gate.kind )
  {
  case gate_kind::h:
    apply_h( gate.target );
    break;
  case gate_kind::x:
    apply_x( gate.target );
    break;
  case gate_kind::y:
    apply_y( gate.target );
    break;
  case gate_kind::z:
    apply_z( gate.target );
    break;
  case gate_kind::s:
    apply_s( gate.target );
    break;
  case gate_kind::sdg:
    apply_sdg( gate.target );
    break;
  case gate_kind::cx:
    apply_cx( gate.controls[0], gate.target );
    break;
  case gate_kind::cz:
    apply_cz( gate.controls[0], gate.target );
    break;
  case gate_kind::swap:
    apply_swap( gate.target, gate.target2 );
    break;
  case gate_kind::measure:
    measurements_.emplace_back( gate.target, measure( gate.target ) );
    break;
  case gate_kind::barrier:
  case gate_kind::global_phase:
    break;
  default:
    throw std::invalid_argument( "stabilizer_simulator: non-Clifford gate " +
                                 gate_name( gate.kind ) );
  }
}

void stabilizer_simulator::run( const qcircuit& circuit )
{
  if ( circuit.num_qubits() != num_qubits_ )
  {
    throw std::invalid_argument( "stabilizer_simulator::run: qubit count mismatch" );
  }
  for ( const auto& gate : circuit.gates() )
  {
    apply_gate( gate );
  }
}

stabilizer_simulator::snapshot stabilizer_simulator::save() const
{
  snapshot saved;
  saved.x_.reserve( rows_.size() );
  saved.z_.reserve( rows_.size() );
  saved.signs_.reserve( rows_.size() );
  for ( const auto& row : rows_ )
  {
    saved.x_.push_back( row.x );
    saved.z_.push_back( row.z );
    saved.signs_.push_back( row.sign );
  }
  return saved;
}

void stabilizer_simulator::restore( const snapshot& saved )
{
  if ( saved.x_.size() != rows_.size() )
  {
    throw std::invalid_argument( "stabilizer_simulator::restore: snapshot size mismatch" );
  }
  for ( size_t i = 0u; i < rows_.size(); ++i )
  {
    rows_[i].x = saved.x_[i]; /* same length: assignment reuses storage */
    rows_[i].z = saved.z_[i];
    rows_[i].sign = saved.signs_[i];
  }
}

std::map<uint64_t, uint64_t> stabilizer_sample_counts( const qcircuit& circuit, uint64_t shots,
                                                       uint64_t seed )
{
  /* simulate the unitary prefix once; every shot then restores the
   * tableau and replays only the tail from the first measurement on */
  stabilizer_simulator simulator( circuit.num_qubits() );
  std::vector<qgate_view> tail;
  bool in_tail = false;
  for ( const auto& gate : circuit.gates() )
  {
    if ( !in_tail && gate.kind == gate_kind::measure )
    {
      in_tail = true;
    }
    if ( in_tail )
    {
      tail.push_back( gate );
    }
    else
    {
      simulator.apply_gate( gate );
    }
  }

  std::map<uint64_t, uint64_t> counts;
  if ( tail.empty() )
  {
    counts[0u] = shots; /* no measurements: every shot reads the empty record */
    return counts;
  }

  const auto snap = simulator.save();
  /* one RNG stream for the whole sampling run: reseeding with
   * seed + shot correlates statistics across overlapping calls */
  std::mt19937_64 rng( seed );
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    simulator.restore( snap );
    uint64_t key = 0u;
    uint32_t measure_index = 0u;
    bool any_random = false;
    for ( const auto& gate : tail )
    {
      if ( gate.kind == gate_kind::measure )
      {
        const bool bit = simulator.measure( gate.target, rng );
        any_random = any_random || simulator.last_measure_was_random();
        if ( bit && measure_index < 64u )
        {
          key |= uint64_t{ 1 } << measure_index;
        }
        ++measure_index;
      }
      else
      {
        simulator.apply_gate( gate );
      }
    }
    if ( shot == 0u && !any_random )
    {
      /* no randomness consumed: every shot is identical (e.g. the
       * deterministic Bravyi-Gosset inner-product instances) */
      counts[key] = shots;
      return counts;
    }
    ++counts[key];
  }
  return counts;
}

} // namespace qda
