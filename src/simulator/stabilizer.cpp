#include "simulator/stabilizer.hpp"

#include <map>
#include <stdexcept>

namespace qda
{

stabilizer_simulator::stabilizer_simulator( uint32_t num_qubits, uint64_t seed )
    : num_qubits_( num_qubits ), num_words_( ( num_qubits + 63u ) / 64u ), rng_( seed )
{
  reset();
}

void stabilizer_simulator::reset()
{
  rows_.assign( 2u * num_qubits_, pauli_row{ std::vector<uint64_t>( num_words_, 0u ),
                                             std::vector<uint64_t>( num_words_, 0u ), false } );
  for ( uint32_t q = 0u; q < num_qubits_; ++q )
  {
    set_x( rows_[q], q, true );                 /* destabilizer X_q */
    set_z( rows_[num_qubits_ + q], q, true );   /* stabilizer Z_q */
  }
  measurements_.clear();
}

bool stabilizer_simulator::get_x( const pauli_row& row, uint32_t qubit ) const
{
  return ( row.x[qubit >> 6u] >> ( qubit & 63u ) ) & 1u;
}

bool stabilizer_simulator::get_z( const pauli_row& row, uint32_t qubit ) const
{
  return ( row.z[qubit >> 6u] >> ( qubit & 63u ) ) & 1u;
}

void stabilizer_simulator::set_x( pauli_row& row, uint32_t qubit, bool value )
{
  const uint64_t bit = uint64_t{ 1 } << ( qubit & 63u );
  row.x[qubit >> 6u] = value ? ( row.x[qubit >> 6u] | bit ) : ( row.x[qubit >> 6u] & ~bit );
}

void stabilizer_simulator::set_z( pauli_row& row, uint32_t qubit, bool value )
{
  const uint64_t bit = uint64_t{ 1 } << ( qubit & 63u );
  row.z[qubit >> 6u] = value ? ( row.z[qubit >> 6u] | bit ) : ( row.z[qubit >> 6u] & ~bit );
}

void stabilizer_simulator::apply_h( uint32_t qubit )
{
  for ( auto& row : rows_ )
  {
    const bool x = get_x( row, qubit );
    const bool z = get_z( row, qubit );
    row.sign ^= x && z;
    set_x( row, qubit, z );
    set_z( row, qubit, x );
  }
}

void stabilizer_simulator::apply_s( uint32_t qubit )
{
  for ( auto& row : rows_ )
  {
    const bool x = get_x( row, qubit );
    const bool z = get_z( row, qubit );
    row.sign ^= x && z;
    set_z( row, qubit, x != z );
  }
}

void stabilizer_simulator::apply_sdg( uint32_t qubit )
{
  apply_z( qubit );
  apply_s( qubit );
}

void stabilizer_simulator::apply_z( uint32_t qubit )
{
  apply_s( qubit );
  apply_s( qubit );
}

void stabilizer_simulator::apply_x( uint32_t qubit )
{
  apply_h( qubit );
  apply_z( qubit );
  apply_h( qubit );
}

void stabilizer_simulator::apply_y( uint32_t qubit )
{
  /* conjugation by Y equals conjugation by XZ (global phase irrelevant) */
  apply_z( qubit );
  apply_x( qubit );
}

void stabilizer_simulator::apply_cx( uint32_t control, uint32_t target )
{
  for ( auto& row : rows_ )
  {
    const bool xc = get_x( row, control );
    const bool zc = get_z( row, control );
    const bool xt = get_x( row, target );
    const bool zt = get_z( row, target );
    row.sign ^= xc && zt && ( xt == zc );
    set_x( row, target, xt != xc );
    set_z( row, control, zc != zt );
  }
}

void stabilizer_simulator::apply_cz( uint32_t control, uint32_t target )
{
  apply_h( target );
  apply_cx( control, target );
  apply_h( target );
}

void stabilizer_simulator::apply_swap( uint32_t a, uint32_t b )
{
  apply_cx( a, b );
  apply_cx( b, a );
  apply_cx( a, b );
}

void stabilizer_simulator::rowsum( pauli_row& target, const pauli_row& source ) const
{
  /* phase exponent of i in the product, mod 4 */
  int32_t exponent = ( target.sign ? 2 : 0 ) + ( source.sign ? 2 : 0 );
  for ( uint32_t q = 0u; q < num_qubits_; ++q )
  {
    const int32_t x1 = get_x( source, q ) ? 1 : 0;
    const int32_t z1 = get_z( source, q ) ? 1 : 0;
    const int32_t x2 = get_x( target, q ) ? 1 : 0;
    const int32_t z2 = get_z( target, q ) ? 1 : 0;
    if ( x1 == 1 && z1 == 1 )
    {
      exponent += z2 - x2;
    }
    else if ( x1 == 1 && z1 == 0 )
    {
      exponent += z2 * ( 2 * x2 - 1 );
    }
    else if ( x1 == 0 && z1 == 1 )
    {
      exponent += x2 * ( 1 - 2 * z2 );
    }
  }
  exponent = ( ( exponent % 4 ) + 4 ) % 4;
  target.sign = exponent == 2;
  for ( uint32_t w = 0u; w < num_words_; ++w )
  {
    target.x[w] ^= source.x[w];
    target.z[w] ^= source.z[w];
  }
}

bool stabilizer_simulator::is_deterministic( uint32_t qubit ) const
{
  for ( uint32_t p = num_qubits_; p < 2u * num_qubits_; ++p )
  {
    if ( get_x( rows_[p], qubit ) )
    {
      return false;
    }
  }
  return true;
}

bool stabilizer_simulator::measure( uint32_t qubit )
{
  uint32_t pivot = 2u * num_qubits_;
  for ( uint32_t p = num_qubits_; p < 2u * num_qubits_; ++p )
  {
    if ( get_x( rows_[p], qubit ) )
    {
      pivot = p;
      break;
    }
  }

  if ( pivot < 2u * num_qubits_ )
  {
    /* random outcome */
    for ( uint32_t i = 0u; i < 2u * num_qubits_; ++i )
    {
      if ( i != pivot && get_x( rows_[i], qubit ) )
      {
        rowsum( rows_[i], rows_[pivot] );
      }
    }
    rows_[pivot - num_qubits_] = rows_[pivot];
    rows_[pivot] = pauli_row{ std::vector<uint64_t>( num_words_, 0u ),
                              std::vector<uint64_t>( num_words_, 0u ), false };
    set_z( rows_[pivot], qubit, true );
    const bool outcome = ( rng_() & 1u ) != 0u;
    rows_[pivot].sign = outcome;
    return outcome;
  }

  /* deterministic outcome: accumulate the matching stabilizers */
  pauli_row scratch{ std::vector<uint64_t>( num_words_, 0u ),
                     std::vector<uint64_t>( num_words_, 0u ), false };
  for ( uint32_t i = 0u; i < num_qubits_; ++i )
  {
    if ( get_x( rows_[i], qubit ) )
    {
      rowsum( scratch, rows_[i + num_qubits_] );
    }
  }
  return scratch.sign;
}

void stabilizer_simulator::apply_gate( const qgate_view& gate )
{
  switch ( gate.kind )
  {
  case gate_kind::h:
    apply_h( gate.target );
    break;
  case gate_kind::x:
    apply_x( gate.target );
    break;
  case gate_kind::y:
    apply_y( gate.target );
    break;
  case gate_kind::z:
    apply_z( gate.target );
    break;
  case gate_kind::s:
    apply_s( gate.target );
    break;
  case gate_kind::sdg:
    apply_sdg( gate.target );
    break;
  case gate_kind::cx:
    apply_cx( gate.controls[0], gate.target );
    break;
  case gate_kind::cz:
    apply_cz( gate.controls[0], gate.target );
    break;
  case gate_kind::swap:
    apply_swap( gate.target, gate.target2 );
    break;
  case gate_kind::measure:
    measurements_.emplace_back( gate.target, measure( gate.target ) );
    break;
  case gate_kind::barrier:
  case gate_kind::global_phase:
    break;
  default:
    throw std::invalid_argument( "stabilizer_simulator: non-Clifford gate " +
                                 gate_name( gate.kind ) );
  }
}

void stabilizer_simulator::run( const qcircuit& circuit )
{
  if ( circuit.num_qubits() != num_qubits_ )
  {
    throw std::invalid_argument( "stabilizer_simulator::run: qubit count mismatch" );
  }
  for ( const auto& gate : circuit.gates() )
  {
    apply_gate( gate );
  }
}

std::map<uint64_t, uint64_t> stabilizer_sample_counts( const qcircuit& circuit, uint64_t shots,
                                                       uint64_t seed )
{
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    stabilizer_simulator simulator( circuit.num_qubits(), seed + shot );
    simulator.run( circuit );
    uint64_t key = 0u;
    const auto& record = simulator.measurement_record();
    for ( uint32_t i = 0u; i < record.size() && i < 64u; ++i )
    {
      if ( record[i].second )
      {
        key |= uint64_t{ 1 } << i;
      }
    }
    ++counts[key];
  }
  return counts;
}

} // namespace qda
