/*! \file statevector.hpp
 *  \brief Full state-vector quantum simulator.
 *
 *  The local simulator backend of the paper's tool flows (Sec. VII/VIII):
 *  it holds all 2^n complex amplitudes and applies gates by in-place
 *  index arithmetic.  Comfortable up to ~24 qubits on a laptop, which
 *  covers every experiment in the paper (the paper's own discussion of
 *  45-qubit simulations needed 0.5 PB, Sec. I).
 *
 *  Execution goes through the high-throughput engine: `run` compiles
 *  the circuit with gate fusion (simulator/fusion.hpp) and executes
 *  specialized, multithreaded kernels (simulator/kernels.hpp);
 *  `apply_gate` dispatches a single gate to its specialized kernel.
 *  `run_naive` keeps the original scalar gate-by-gate reference path
 *  for cross-checking and benchmarking.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <complex>
#include <span>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace qda
{

namespace sim
{
struct program;
}

/*! \brief State-vector simulator with fused, specialized kernels. */
class statevector_simulator
{
public:
  using amplitude = std::complex<double>;

  /*! \brief Initializes |0...0> over `num_qubits` qubits. */
  explicit statevector_simulator( uint32_t num_qubits, uint64_t seed = 0u );

  uint32_t num_qubits() const noexcept { return num_qubits_; }
  const std::vector<amplitude>& state() const noexcept { return state_; }

  /*! \brief Resets to |0...0>. */
  void reset();

  /*! \brief Prepares a computational basis state. */
  void set_basis_state( uint64_t basis_state );

  /*! \brief Applies one gate through its specialized kernel (measure
   *         collapses with the internal RNG; the outcome is appended to
   *         `measurement_record()`).
   */
  void apply_gate( const qgate_view& gate );

  /*! \brief Applies all gates of a circuit (compiled with gate fusion,
   *         executed with specialized multithreaded kernels).
   */
  void run( const qcircuit& circuit );

  /*! \brief Reference path: gate-by-gate generic 2x2 matmuls, no
   *         fusion, no specialization.  Kept for cross-checks and the
   *         before/after benchmark.
   */
  void run_naive( const qcircuit& circuit );

  /*! \brief Executes a pre-compiled kernel program (see sim::compile). */
  void run_program( const sim::program& prog );

  /*! \brief Probability of observing `basis_state` on full measurement. */
  double probability_of( uint64_t basis_state ) const;

  /*! \brief All 2^n outcome probabilities (one parallel pass). */
  std::vector<double> probabilities() const;

  /*! \brief Samples a full measurement without collapsing the state.
   *         One O(2^n) scan per call; use `shot_sampler` for many shots.
   */
  uint64_t sample( std::mt19937_64& rng ) const;

  /*! \brief Measurement outcomes recorded so far (qubit, bit). */
  const std::vector<std::pair<uint32_t, bool>>& measurement_record() const noexcept
  {
    return measurements_;
  }

  /*! \brief Squared norm (should stay 1 within numerical error);
   *         deterministic blocked reduction, thread-count independent.
   */
  double norm() const;

private:
  void specialized_apply_gate( const qgate_view& gate );
  void naive_apply_gate( const qgate_view& gate );
  void naive_apply_single_qubit( const std::array<amplitude, 4>& matrix, uint32_t qubit );
  void naive_apply_controlled_single_qubit( const std::array<amplitude, 4>& matrix,
                                            std::span<const uint32_t> controls, uint32_t qubit );
  void naive_apply_swap( uint32_t a, uint32_t b );
  bool measure_qubit( uint32_t qubit );

  uint32_t num_qubits_;
  std::vector<amplitude> state_;
  std::mt19937_64 rng_;
  std::vector<std::pair<uint32_t, bool>> measurements_;
};

/*! \brief Multi-shot sampler over a prepared state: builds the
 *         cumulative outcome distribution once (O(2^n)), then draws
 *         each shot by binary search (O(n)) instead of an O(2^n) scan.
 */
class shot_sampler
{
public:
  explicit shot_sampler( const statevector_simulator& simulator );

  /*! \brief Draws one full-register outcome (no state collapse). */
  uint64_t sample( std::mt19937_64& rng ) const;

private:
  std::vector<double> cumulative_;
};

/*! \brief Runs `circuit` `shots` times and histograms the outcomes of the
 *         measured qubits (bit i of the key = i-th measured qubit).
 *         The unitary part is compiled (fused) and simulated once;
 *         sampling reuses the state via a cumulative-distribution
 *         binary search per shot.
 */
std::map<uint64_t, uint64_t> sample_counts( const qcircuit& circuit, uint64_t shots,
                                            uint64_t seed = 1u );

/*! \brief Formats an outcome as a bit string (LSB = qubit 0, printed last,
 *         matching the paper's Fig. 6 axis labels).
 */
std::string format_outcome( uint64_t outcome, uint32_t num_bits );

} // namespace qda
