#include "simulator/noise.hpp"

#include "simulator/statevector.hpp"

#include <random>
#include <stdexcept>

namespace qda
{

namespace
{

/*! Applies a uniformly random non-identity Pauli to `qubit`. */
void random_pauli( statevector_simulator& simulator, uint32_t qubit, std::mt19937_64& rng )
{
  qgate gate;
  gate.target = qubit;
  switch ( rng() % 3u )
  {
  case 0u:
    gate.kind = gate_kind::x;
    break;
  case 1u:
    gate.kind = gate_kind::y;
    break;
  default:
    gate.kind = gate_kind::z;
    break;
  }
  simulator.apply_gate( gate );
}

} // namespace

std::map<uint64_t, uint64_t> sample_counts_noisy( const qcircuit& circuit,
                                                  const noise_model& model, uint64_t shots,
                                                  uint64_t seed )
{
  std::vector<uint32_t> measured;
  /* decode the gate stream once: the per-shot loop reuses the views and
   * the touched-qubit lists instead of re-materializing them per shot */
  struct gate_step
  {
    qgate_view view;
    std::vector<uint32_t> qubits;
  };
  std::vector<gate_step> steps;
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::measure )
    {
      measured.push_back( gate.target );
    }
    else if ( gate.kind != gate_kind::barrier )
    {
      steps.push_back( { gate, gate.qubits() } );
    }
  }
  if ( measured.empty() )
  {
    throw std::invalid_argument( "sample_counts_noisy: circuit has no measurements" );
  }

  std::mt19937_64 rng( seed );
  std::uniform_real_distribution<double> uniform( 0.0, 1.0 );
  std::map<uint64_t, uint64_t> counts;

  statevector_simulator simulator( circuit.num_qubits(), seed ^ 0x5bd1e995u );
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    simulator.reset();
    for ( const auto& step : steps )
    {
      simulator.apply_gate( step.view );
      const auto& qubits = step.qubits;
      if ( qubits.size() == 1u )
      {
        if ( uniform( rng ) < model.p_single )
        {
          random_pauli( simulator, qubits[0], rng );
        }
      }
      else if ( qubits.size() >= 2u )
      {
        if ( uniform( rng ) < model.p_two )
        {
          /* uniformly random non-identity two-qubit Pauli: draw per-qubit
           * Paulis, rejecting the identity-identity case */
          uint32_t first = rng() % 4u;
          uint32_t second = rng() % 4u;
          if ( first == 0u && second == 0u )
          {
            first = 1u + rng() % 3u;
          }
          const auto apply_pauli = [&]( uint32_t qubit, uint32_t which ) {
            if ( which == 0u )
            {
              return;
            }
            qgate pauli;
            pauli.target = qubit;
            pauli.kind = which == 1u ? gate_kind::x : which == 2u ? gate_kind::y : gate_kind::z;
            simulator.apply_gate( pauli );
          };
          apply_pauli( qubits[0], first );
          apply_pauli( qubits[1], second );
        }
      }
    }

    const uint64_t full = simulator.sample( rng );
    uint64_t key = 0u;
    for ( uint32_t i = 0u; i < measured.size(); ++i )
    {
      bool bit = ( full >> measured[i] ) & 1u;
      if ( uniform( rng ) < model.p_readout )
      {
        bit = !bit;
      }
      if ( bit )
      {
        key |= uint64_t{ 1 } << i;
      }
    }
    ++counts[key];
  }
  return counts;
}

} // namespace qda
