#include "simulator/fusion.hpp"

#include "simulator/schedule.hpp"
#include "simulator/simd.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace qda::sim
{

namespace
{

using matrix2 = std::array<amplitude, 4>;

constexpr matrix2 identity2{ amplitude{ 1.0 }, amplitude{ 0.0 }, amplitude{ 0.0 },
                             amplitude{ 1.0 } };

/*! Open fused groups beyond this are flushed front-first: bounds both
 *  compile memory and the backward commutation walk. */
constexpr size_t max_open_blocks = 64u;

/*! a * b (apply b first, then a). */
matrix2 mul( const matrix2& a, const matrix2& b )
{
  return { a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
           a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3] };
}

bool is_exact_diag( const matrix2& m )
{
  return m[1] == amplitude{ 0.0 } && m[2] == amplitude{ 0.0 };
}

bool is_exact_antidiag( const matrix2& m )
{
  return m[0] == amplitude{ 0.0 } && m[3] == amplitude{ 0.0 };
}

bool is_near_identity( const matrix2& m )
{
  return is_exact_diag( m ) && std::abs( m[0] - amplitude{ 1.0 } ) <= 1e-14 &&
         std::abs( m[3] - amplitude{ 1.0 } ) <= 1e-14;
}

bool is_single_qubit_kind( gate_kind kind )
{
  switch ( kind )
  {
  case gate_kind::h:
  case gate_kind::x:
  case gate_kind::y:
  case gate_kind::z:
  case gate_kind::s:
  case gate_kind::sdg:
  case gate_kind::t:
  case gate_kind::tdg:
  case gate_kind::rx:
  case gate_kind::ry:
  case gate_kind::rz:
    return true;
  default:
    return false;
  }
}

/*! Applies `o` to a 2^k local state vector (used to build dense fused
 *  matrices column by column; qubit indices are already local). */
void apply_local( const op& o, amplitude* state, uint64_t dim )
{
  switch ( o.kind )
  {
  case op_kind::unitary_1q:
    apply_1q( state, dim, o.qubit, o.m );
    break;
  case op_kind::diag_1q:
    apply_1q_diag( state, dim, o.qubit, o.m[0], o.m[3] );
    break;
  case op_kind::antidiag_1q:
    apply_1q_antidiag( state, dim, o.qubit, o.m[1], o.m[2] );
    break;
  case op_kind::phase_masked:
    apply_phase_masked( state, dim, o.mask, o.m[0] );
    break;
  case op_kind::mcx:
    apply_mcx( state, dim, o.mask, o.qubit );
    break;
  case op_kind::swap_2q:
    apply_swap( state, dim, o.qubit, o.qubit2 );
    break;
  case op_kind::scalar:
    apply_scalar( state, dim, o.m[0] );
    break;
  default:
    throw std::logic_error( "sim::compile: op kind not valid inside a dense block" );
  }
}

/*! Streaming three-layer compiler.  Layer A fuses per-qubit
 *  single-qubit runs.  Layers B/C keep a list of open fused groups
 *  ("blocks"), diagonal or dense: an arriving op walks the open list
 *  back to front, passing blocks it commutes with (disjoint support,
 *  or diagonal past diagonal) and joining the first block it fits
 *  into; otherwise it opens a new block at the end.  Blocks flush in
 *  creation order, which by construction is a valid execution order. */
class compiler
{
public:
  compiler( uint32_t num_qubits, const compile_options& options )
      : options_( options ), pending_( num_qubits )
  {
    /* the dense gather buffer and local matrices cap k at 10 */
    options_.max_dense_fusion_qubits = std::min( options_.max_dense_fusion_qubits, 10u );
    options_.max_diag_table_qubits = std::min( options_.max_diag_table_qubits, 24u );
    result_.num_qubits = num_qubits;
  }

  void add_gate( const qgate_view& gate, std::vector<uint32_t>* measured )
  {
    if ( gate.kind == gate_kind::barrier )
    {
      return; /* scheduling only */
    }
    ++result_.source_gate_count;

    if ( is_single_qubit_kind( gate.kind ) )
    {
      const matrix2 m = single_qubit_matrix( gate.kind, gate.angle );
      if ( options_.fuse_single_qubit )
      {
        auto& slot = pending_[gate.target];
        slot.m = slot.count == 0u ? m : mul( m, slot.m );
        ++slot.count;
      }
      else
      {
        emit_1q( gate.target, m, 1u );
      }
      return;
    }

    switch ( gate.kind )
    {
    case gate_kind::cx:
    case gate_kind::mcx:
    {
      uint64_t control_mask = 0u;
      for ( const auto control : gate.controls )
      {
        flush_pending( control );
        control_mask |= uint64_t{ 1 } << control;
      }
      flush_pending( gate.target );
      op o;
      o.kind = op_kind::mcx;
      o.qubit = gate.target;
      o.mask = control_mask;
      emit( std::move( o ) );
      break;
    }
    case gate_kind::cz:
    case gate_kind::mcz:
    {
      uint64_t mask = uint64_t{ 1 } << gate.target;
      for ( const auto control : gate.controls )
      {
        flush_pending( control );
        mask |= uint64_t{ 1 } << control;
      }
      flush_pending( gate.target );
      op o;
      o.kind = op_kind::phase_masked;
      o.mask = mask;
      o.m[0] = amplitude{ -1.0 };
      emit( std::move( o ) );
      break;
    }
    case gate_kind::swap:
    {
      flush_pending( gate.target );
      flush_pending( gate.target2 );
      op o;
      o.kind = op_kind::swap_2q;
      o.qubit = gate.target;
      o.qubit2 = gate.target2;
      emit( std::move( o ) );
      break;
    }
    case gate_kind::measure:
    {
      flush_pending( gate.target );
      if ( measured != nullptr )
      {
        measured->push_back( gate.target );
        break;
      }
      flush_all_blocks();
      op o;
      o.kind = op_kind::measure;
      o.qubit = gate.target;
      result_.ops.push_back( std::move( o ) );
      break;
    }
    case gate_kind::global_phase:
    {
      op o;
      o.kind = op_kind::scalar;
      o.m[0] = std::exp( amplitude( 0.0, gate.angle ) );
      emit( std::move( o ) );
      break;
    }
    default:
      throw std::logic_error( "sim::compile: unhandled gate kind" );
    }
  }

  program finish()
  {
    for ( uint32_t q = 0u; q < pending_.size(); ++q )
    {
      flush_pending( q );
    }
    flush_all_blocks();
    return std::move( result_ );
  }

private:
  struct pending_1q
  {
    matrix2 m = identity2;
    uint32_t count = 0u;
  };

  /*! An open fused group: either a diagonal accumulator (qubit/masked
   *  phase factors + scalar) or a dense op list. */
  struct block
  {
    bool diagonal = false;
    uint64_t support = 0u;
    std::vector<op> ops;       /*!< dense payload (in arrival order) */
    amplitude scalar{ 1.0 };   /*!< diagonal payload ... */
    std::vector<std::pair<uint32_t, std::pair<amplitude, amplitude>>> qubit_factors;
    std::vector<std::pair<uint64_t, amplitude>> masked_factors;
    uint32_t sources = 0u;
  };

  /* ---- layer A: per-qubit single-qubit run fusion ---- */

  void flush_pending( uint32_t qubit )
  {
    auto& slot = pending_[qubit];
    if ( slot.count == 0u )
    {
      return;
    }
    const matrix2 m = slot.m;
    const uint32_t count = slot.count;
    slot.m = identity2;
    slot.count = 0u;
    emit_1q( qubit, m, count );
  }

  void emit_1q( uint32_t qubit, const matrix2& m, uint32_t source_gates )
  {
    if ( is_near_identity( m ) )
    {
      QDA_COUNT_N( "sim.fusion.identity_dropped_gates", source_gates );
      return; /* e.g. H H or X X runs cancel entirely */
    }
    op o;
    o.qubit = qubit;
    o.m = m;
    o.source_gates = source_gates;
    if ( is_exact_diag( m ) )
    {
      o.kind = op_kind::diag_1q;
    }
    else if ( is_exact_antidiag( m ) )
    {
      o.kind = op_kind::antidiag_1q;
    }
    else
    {
      o.kind = op_kind::unitary_1q;
    }
    emit( std::move( o ) );
  }

  /* ---- layers B/C: open fused groups ---- */

  void emit( op o )
  {
    const uint64_t support = op_support( o );
    const bool diagonal = op_is_diagonal( o );

    if ( diagonal && !options_.fuse_diagonals )
    {
      place_in_new_block( std::move( o ), support, diagonal );
      return;
    }

    /* walk the open blocks back to front; pass what we commute with */
    for ( size_t i = open_.size(); i-- > 0u; )
    {
      block& candidate = open_[i];
      if ( diagonal )
      {
        if ( candidate.diagonal )
        {
          if ( fits_diag( candidate, support ) )
          {
            join_diag( candidate, o );
            return;
          }
          continue; /* diagonal past diagonal: always commutes */
        }
        if ( ( support & candidate.support ) == 0u )
        {
          continue;
        }
        if ( fits_dense( candidate, support ) )
        {
          join_dense( candidate, std::move( o ), support );
          return;
        }
        break;
      }
      /* non-diagonal op */
      if ( ( support & candidate.support ) == 0u )
      {
        continue;
      }
      if ( !candidate.diagonal && fits_dense( candidate, support ) )
      {
        join_dense( candidate, std::move( o ), support );
        return;
      }
      break;
    }
    place_in_new_block( std::move( o ), support, diagonal );
  }

  bool fits_diag( const block& candidate, uint64_t support ) const
  {
    return static_cast<uint32_t>( std::popcount( candidate.support | support ) ) <=
           options_.max_diag_table_qubits;
  }

  bool fits_dense( const block& candidate, uint64_t support ) const
  {
    if ( options_.max_dense_fusion_qubits == 0u )
    {
      return false;
    }
    return static_cast<uint32_t>( std::popcount( candidate.support | support ) ) <=
           options_.max_dense_fusion_qubits;
  }

  void join_diag( block& candidate, const op& o )
  {
    candidate.support |= op_support( o );
    candidate.sources += o.source_gates;
    switch ( o.kind )
    {
    case op_kind::diag_1q:
      candidate.qubit_factors.push_back( { o.qubit, { o.m[0], o.m[3] } } );
      break;
    case op_kind::phase_masked:
      candidate.masked_factors.push_back( { o.mask, o.m[0] } );
      break;
    case op_kind::scalar:
      candidate.scalar *= o.m[0];
      break;
    default:
      throw std::logic_error( "sim::compile: op kind not valid inside a diagonal block" );
    }
  }

  void join_dense( block& candidate, op o, uint64_t support )
  {
    candidate.support |= support;
    candidate.sources += o.source_gates;
    candidate.ops.push_back( std::move( o ) );
  }

  void place_in_new_block( op o, uint64_t support, bool diagonal )
  {
    block fresh;
    fresh.diagonal = diagonal;
    fresh.support = support;
    fresh.sources = o.source_gates;
    if ( diagonal )
    {
      join_diag( fresh, o );
      fresh.sources = o.source_gates; /* join_diag added it again */
    }
    else
    {
      fresh.ops.push_back( std::move( o ) );
    }
    open_.push_back( std::move( fresh ) );
    if ( open_.size() > max_open_blocks )
    {
      flush_block( open_.front() );
      open_.erase( open_.begin() );
    }
  }

  void flush_all_blocks()
  {
    for ( auto& blk : open_ )
    {
      flush_block( blk );
    }
    open_.clear();
  }

  void flush_block( block& blk )
  {
    if ( blk.diagonal )
    {
      flush_diag_block( blk );
    }
    else
    {
      flush_dense_block( blk );
    }
  }

  void flush_diag_block( block& blk )
  {
    op o;
    o.source_gates = blk.sources;
    if ( blk.support == 0u )
    {
      if ( blk.scalar == amplitude{ 1.0 } )
      {
        return; /* phases cancelled exactly */
      }
      o.kind = op_kind::scalar;
      o.m[0] = blk.scalar;
      result_.ops.push_back( std::move( o ) );
      return;
    }
    if ( blk.qubit_factors.size() == 1u && blk.masked_factors.empty() )
    {
      const auto& [qubit, phases] = blk.qubit_factors.front();
      o.kind = op_kind::diag_1q;
      o.qubit = qubit;
      o.m[0] = phases.first * blk.scalar;
      o.m[3] = phases.second * blk.scalar;
      result_.ops.push_back( std::move( o ) );
      return;
    }
    if ( blk.masked_factors.size() == 1u && blk.qubit_factors.empty() &&
         blk.scalar == amplitude{ 1.0 } )
    {
      o.kind = op_kind::phase_masked;
      o.mask = blk.masked_factors.front().first;
      o.m[0] = blk.masked_factors.front().second;
      result_.ops.push_back( std::move( o ) );
      return;
    }
    /* one phase table over the involved qubits */
    std::vector<uint32_t> qubits;
    for ( uint32_t q = 0u; q < 64u; ++q )
    {
      if ( ( blk.support >> q ) & 1u )
      {
        qubits.push_back( q );
      }
    }
    const uint32_t k = static_cast<uint32_t>( qubits.size() );
    std::vector<amplitude> table( uint64_t{ 1 } << k, blk.scalar );
    for ( const auto& [qubit, phases] : blk.qubit_factors )
    {
      uint32_t position = 0u;
      while ( qubits[position] != qubit )
      {
        ++position;
      }
      for ( uint64_t key = 0u; key < table.size(); ++key )
      {
        table[key] *= ( ( key >> position ) & 1u ) != 0u ? phases.second : phases.first;
      }
    }
    for ( const auto& [mask, phase] : blk.masked_factors )
    {
      uint64_t compressed = 0u;
      for ( uint32_t j = 0u; j < k; ++j )
      {
        if ( ( mask >> qubits[j] ) & 1u )
        {
          compressed |= uint64_t{ 1 } << j;
        }
      }
      for ( uint64_t key = 0u; key < table.size(); ++key )
      {
        if ( ( key & compressed ) == compressed )
        {
          table[key] *= phase;
        }
      }
    }
    o.kind = op_kind::diag_table;
    o.table_qubits = std::move( qubits );
    o.table = std::move( table );
    QDA_COUNT( "sim.fusion.diag_tables" );
    QDA_COUNT_N( "sim.fusion.diag_table_gates", o.source_gates );
    result_.ops.push_back( std::move( o ) );
  }

  void flush_dense_block( block& blk )
  {
    if ( blk.ops.empty() )
    {
      return;
    }
    if ( blk.ops.size() == 1u )
    {
      blk.ops.front().source_gates = blk.sources;
      result_.ops.push_back( std::move( blk.ops.front() ) );
      return;
    }
    /* compose the block into one dense 2^k x 2^k matrix: remap every op
     * to local qubit indices, then apply it to each basis column */
    std::vector<uint32_t> qubits;
    for ( uint32_t q = 0u; q < 64u; ++q )
    {
      if ( ( blk.support >> q ) & 1u )
      {
        qubits.push_back( q );
      }
    }
    const uint32_t k = static_cast<uint32_t>( qubits.size() );
    const uint64_t block_dim = uint64_t{ 1 } << k;
    std::vector<uint32_t> local_of( qubits.back() + 1u, 0u );
    for ( uint32_t j = 0u; j < k; ++j )
    {
      local_of[qubits[j]] = j;
    }
    const auto localize_mask = [&]( uint64_t mask ) {
      uint64_t local = 0u;
      for ( uint32_t j = 0u; j < k; ++j )
      {
        if ( ( mask >> qubits[j] ) & 1u )
        {
          local |= uint64_t{ 1 } << j;
        }
      }
      return local;
    };
    std::vector<std::vector<amplitude>> columns( block_dim );
    for ( uint64_t c = 0u; c < block_dim; ++c )
    {
      columns[c].assign( block_dim, amplitude{ 0.0 } );
      columns[c][c] = 1.0;
    }
    for ( auto& o : blk.ops )
    {
      /* remap to local coordinates */
      op local = std::move( o );
      switch ( local.kind )
      {
      case op_kind::unitary_1q:
      case op_kind::diag_1q:
      case op_kind::antidiag_1q:
        local.qubit = local_of[local.qubit];
        break;
      case op_kind::phase_masked:
        local.mask = localize_mask( local.mask );
        break;
      case op_kind::mcx:
        local.mask = localize_mask( local.mask );
        local.qubit = local_of[local.qubit];
        break;
      case op_kind::swap_2q:
        local.qubit = local_of[local.qubit];
        local.qubit2 = local_of[local.qubit2];
        break;
      case op_kind::scalar:
        break;
      default:
        throw std::logic_error( "sim::compile: op kind not valid inside a dense block" );
      }
      for ( uint64_t c = 0u; c < block_dim; ++c )
      {
        apply_local( local, columns[c].data(), block_dim );
      }
    }
    QDA_COUNT( "sim.fusion.dense_blocks" );
    QDA_COUNT_N( "sim.fusion.dense_block_gates", blk.sources );
    op fused;
    fused.kind = op_kind::fused_kq;
    fused.source_gates = blk.sources;
    fused.table_qubits = std::move( qubits );
    fused.table.resize( block_dim * block_dim );
    for ( uint64_t r = 0u; r < block_dim; ++r )
    {
      for ( uint64_t c = 0u; c < block_dim; ++c )
      {
        fused.table[r * block_dim + c] = columns[c][r];
      }
    }
    result_.ops.push_back( std::move( fused ) );
  }

  compile_options options_;
  std::vector<pending_1q> pending_;
  std::vector<block> open_;
  program result_;
};

program compile_impl( const qcircuit& circuit, std::vector<uint32_t>* measured,
                      const compile_options& options )
{
  QDA_TRACE_SPAN_NAMED( compile_span, "sim.compile" );
  compiler c( circuit.num_qubits(), options );
  cancel_checkpoint checkpoint( 4096u );
  for ( const auto& gate : circuit.gates() )
  {
    if ( checkpoint.due() )
    {
      options.cancel.check( "sim.compile" );
    }
    c.add_gate( gate, measured );
  }
  auto prog = c.finish();
  if ( options.tile_scheduling )
  {
    schedule_options tiling;
    tiling.tile_qubits = options.tile_qubits;
    schedule_tiles( prog, tiling );
  }
  int64_t tiled_segments = 0;
  for ( const auto& seg : prog.segments )
  {
    tiled_segments += seg.tiled ? 1 : 0;
  }
  compile_span.attr( "gates", prog.source_gate_count )
      .attr( "ops", static_cast<int64_t>( prog.ops.size() ) )
      .attr( "tiled_segments", tiled_segments );
  return prog;
}

/*! Telemetry of one kernel dispatch: per-kind invocation counts and the
 *  amplitudes each kernel actually walks (masked kernels enumerate only
 *  the control-satisfying subspace).  One relaxed atomic add per op --
 *  ops are already fused, so this is far off the per-amplitude path.
 */
void record_dispatch( const op& o, uint64_t dim )
{
  struct instrument
  {
    telemetry::counter* calls;
    telemetry::counter* amplitudes;
  };
  static const std::array<const char*, 10> names = {
    "unitary_1q", "diag_1q",  "antidiag_1q", "phase_masked", "diag_table",
    "fused_kq",   "mcx",      "swap_2q",     "scalar",       "measure" };
  static std::array<instrument, 10> instruments = [] {
    std::array<instrument, 10> table{};
    auto& registry = telemetry::metrics_registry::instance();
    for ( size_t i = 0u; i < table.size(); ++i )
    {
      table[i].calls =
          &registry.get_counter( std::string( "sim.kernel." ) + names[i] + ".calls" );
      table[i].amplitudes =
          &registry.get_counter( std::string( "sim.kernel." ) + names[i] + ".amplitudes" );
    }
    return table;
  }();

  /* which primitive table served this dispatch */
  static std::array<telemetry::counter*, 3> isa_counters = [] {
    auto& registry = telemetry::metrics_registry::instance();
    return std::array<telemetry::counter*, 3>{
      &registry.get_counter( "sim.kernel.isa.scalar" ),
      &registry.get_counter( "sim.kernel.isa.avx2" ),
      &registry.get_counter( "sim.kernel.isa.avx512" ),
    };
  }();

  uint64_t touched = dim;
  switch ( o.kind )
  {
  case op_kind::phase_masked:
    touched = dim >> std::popcount( o.mask );
    break;
  case op_kind::mcx:
    touched = dim >> std::popcount( o.mask );
    break;
  case op_kind::swap_2q:
    touched = dim / 2u;
    break;
  default:
    break;
  }
  const auto index = static_cast<size_t>( o.kind );
  instruments[index].calls->add( 1u );
  instruments[index].amplitudes->add( touched );
  isa_counters[static_cast<size_t>( active_isa() )]->add( 1u );
}

} // namespace

uint64_t op_support( const op& o )
{
  switch ( o.kind )
  {
  case op_kind::unitary_1q:
  case op_kind::diag_1q:
  case op_kind::antidiag_1q:
  case op_kind::measure:
    return uint64_t{ 1 } << o.qubit;
  case op_kind::phase_masked:
    return o.mask;
  case op_kind::mcx:
    return o.mask | ( uint64_t{ 1 } << o.qubit );
  case op_kind::swap_2q:
    return ( uint64_t{ 1 } << o.qubit ) | ( uint64_t{ 1 } << o.qubit2 );
  case op_kind::diag_table:
  case op_kind::fused_kq:
  {
    uint64_t mask = 0u;
    for ( const auto qubit : o.table_qubits )
    {
      mask |= uint64_t{ 1 } << qubit;
    }
    return mask;
  }
  case op_kind::scalar:
    return 0u;
  }
  return 0u;
}

bool op_is_diagonal( const op& o )
{
  return o.kind == op_kind::diag_1q || o.kind == op_kind::phase_masked ||
         o.kind == op_kind::scalar || o.kind == op_kind::diag_table;
}

void apply_op( const op& o, amplitude* state, uint64_t dim )
{
  switch ( o.kind )
  {
  case op_kind::unitary_1q:
    apply_1q( state, dim, o.qubit, o.m );
    break;
  case op_kind::diag_1q:
    apply_1q_diag( state, dim, o.qubit, o.m[0], o.m[3] );
    break;
  case op_kind::antidiag_1q:
    if ( o.m[1] == amplitude{ 1.0 } && o.m[2] == amplitude{ 1.0 } )
    {
      apply_mcx( state, dim, 0u, o.qubit ); /* plain X: pure swaps */
    }
    else
    {
      apply_1q_antidiag( state, dim, o.qubit, o.m[1], o.m[2] );
    }
    break;
  case op_kind::phase_masked:
    apply_phase_masked( state, dim, o.mask, o.m[0] );
    break;
  case op_kind::diag_table:
    apply_diag_table( state, dim, o.table_qubits, o.table );
    break;
  case op_kind::fused_kq:
    apply_fused_kq( state, dim, o.table_qubits, o.table );
    break;
  case op_kind::mcx:
    apply_mcx( state, dim, o.mask, o.qubit );
    break;
  case op_kind::swap_2q:
    apply_swap( state, dim, o.qubit, o.qubit2 );
    break;
  case op_kind::scalar:
    apply_scalar( state, dim, o.m[0] );
    break;
  case op_kind::measure:
    throw std::logic_error( "sim::apply_op: measure ops need the executor's callback" );
  }
}

program compile( const qcircuit& circuit, const compile_options& options )
{
  return compile_impl( circuit, nullptr, options );
}

program compile_unitary_prefix( const qcircuit& circuit, std::vector<uint32_t>& measured,
                                const compile_options& options )
{
  return compile_impl( circuit, &measured, options );
}

void execute( const program& prog, amplitude* state, uint64_t dim )
{
  execute( prog, state, dim, []( uint32_t ) -> bool {
    throw std::logic_error( "sim::execute: measure op without a measurement callback" );
  } );
}

namespace
{

void execute_one( const op& o, amplitude* state, uint64_t dim,
                  const std::function<bool( uint32_t )>& measure_cb )
{
  if constexpr ( telemetry::compiled_in )
  {
    if ( telemetry::enabled() )
    {
      record_dispatch( o, dim );
    }
  }
  if ( o.kind == op_kind::measure )
  {
    measure_cb( o.qubit );
    return;
  }
  apply_op( o, state, dim );
}

} // namespace

void execute( const program& prog, amplitude* state, uint64_t dim,
              const std::function<bool( uint32_t )>& measure_cb )
{
  if ( prog.segments.empty() )
  {
    for ( const auto& o : prog.ops )
    {
      execute_one( o, state, dim, measure_cb );
    }
    return;
  }
  const uint32_t tq = prog.tile_qubits;
  const uint64_t tile_dim = uint64_t{ 1 } << tq;
  for ( const auto& seg : prog.segments )
  {
    if ( !seg.tiled )
    {
      for ( const auto index : seg.op_indices )
      {
        execute_one( prog.ops[index], state, dim, measure_cb );
      }
      continue;
    }
    if constexpr ( telemetry::compiled_in )
    {
      if ( telemetry::enabled() )
      {
        for ( const auto index : seg.op_indices )
        {
          record_dispatch( prog.ops[index], dim );
        }
        QDA_COUNT( "sim.schedule.tiled_segments" );
        QDA_COUNT_N( "sim.schedule.tiled_ops", seg.op_indices.size() );
        QDA_COUNT_N( "sim.schedule.tiles_swept", dim >> tq );
        QDA_HISTOGRAM( "sim.schedule.ops_per_tile_sweep",
                       static_cast<double>( seg.op_indices.size() ),
                       { 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0 } );
      }
    }
    /* sweep each cache-resident tile once for the whole segment; tiles
     * are disjoint windows, so the usual deterministic chunking holds */
    parallel_for(
        dim >> tq,
        [&]( uint64_t begin, uint64_t end ) {
          for ( uint64_t tile = begin; tile < end; ++tile )
          {
            amplitude* window = state + ( tile << tq );
            for ( const auto index : seg.op_indices )
            {
              apply_op( prog.ops[index], window, tile_dim );
            }
          }
        },
        tile_dim * seg.op_indices.size() );
  }
}

} // namespace qda::sim
