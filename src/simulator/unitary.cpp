#include "simulator/unitary.hpp"

#include "simulator/fusion.hpp"
#include "simulator/kernels.hpp"
#include "simulator/statevector.hpp"

#include <cmath>
#include <stdexcept>

namespace qda
{

unitary_matrix build_unitary( const qcircuit& circuit )
{
  if ( circuit.has_measurements() )
  {
    throw std::invalid_argument( "build_unitary: circuit contains measurements" );
  }
  if ( circuit.num_qubits() > 12u )
  {
    throw std::invalid_argument( "build_unitary: too many qubits for explicit matrix" );
  }
  const uint64_t dimension = uint64_t{ 1 } << circuit.num_qubits();
  unitary_matrix result( dimension );
  /* compile once, then push every basis column through the specialized
   * kernels -- parallel over columns (each column is small, so its own
   * kernels run inline) instead of re-walking the circuit per column */
  sim::compile_options options;
  options.tile_scheduling = false; /* columns are tiny; tiles add nothing */
  const auto prog = sim::compile( circuit, options );
  sim::parallel_for(
      dimension,
      [&]( uint64_t begin, uint64_t end ) {
        for ( uint64_t column = begin; column < end; ++column )
        {
          auto& column_state = result[column];
          column_state.assign( dimension, std::complex<double>{ 0.0 } );
          column_state[column] = 1.0;
          sim::execute( prog, column_state.data(), dimension );
        }
      },
      /*work_per_item=*/dimension * std::max<uint64_t>( prog.ops.size(), 1u ) );
  return result;
}

bool unitaries_equal_up_to_phase( const unitary_matrix& a, const unitary_matrix& b,
                                  double tolerance )
{
  if ( a.size() != b.size() )
  {
    return false;
  }
  /* find the globally largest element of a, then derive the phase from it
   * (deriving from intermediate scan candidates would compare numerical
   * noise in a against exact zeros in b) */
  double best = 0.0;
  uint64_t best_column = 0u;
  uint64_t best_row = 0u;
  for ( uint64_t column = 0u; column < a.size(); ++column )
  {
    for ( uint64_t row = 0u; row < a[column].size(); ++row )
    {
      const double magnitude = std::abs( a[column][row] );
      if ( magnitude > best )
      {
        best = magnitude;
        best_column = column;
        best_row = row;
      }
    }
  }
  if ( best < tolerance )
  {
    return true; /* both all-zero (degenerate) */
  }
  if ( std::abs( b[best_column][best_row] ) < tolerance )
  {
    return false;
  }
  const std::complex<double> phase = a[best_column][best_row] / b[best_column][best_row];
  if ( std::abs( std::abs( phase ) - 1.0 ) > tolerance )
  {
    return false;
  }
  for ( uint64_t column = 0u; column < a.size(); ++column )
  {
    if ( a[column].size() != b[column].size() )
    {
      return false;
    }
    for ( uint64_t row = 0u; row < a[column].size(); ++row )
    {
      if ( std::abs( a[column][row] - phase * b[column][row] ) > tolerance )
      {
        return false;
      }
    }
  }
  return true;
}

bool circuits_equivalent( const qcircuit& a, const qcircuit& b, double tolerance )
{
  if ( a.num_qubits() != b.num_qubits() )
  {
    return false;
  }
  return unitaries_equal_up_to_phase( build_unitary( a ), build_unitary( b ), tolerance );
}

bool circuit_implements_permutation( const qcircuit& circuit, const std::vector<uint64_t>& images,
                                     bool up_to_phase, double tolerance )
{
  const uint64_t dimension = uint64_t{ 1 } << circuit.num_qubits();
  if ( images.size() != dimension )
  {
    return false;
  }
  statevector_simulator simulator( circuit.num_qubits() );
  for ( uint64_t column = 0u; column < dimension; ++column )
  {
    simulator.set_basis_state( column );
    simulator.run( circuit );
    const auto& state = simulator.state();
    for ( uint64_t row = 0u; row < dimension; ++row )
    {
      const double magnitude = std::abs( state[row] );
      if ( row == images[column] )
      {
        if ( up_to_phase ? std::abs( magnitude - 1.0 ) > tolerance
                         : std::abs( state[row] - 1.0 ) > tolerance )
        {
          return false;
        }
      }
      else if ( magnitude > tolerance )
      {
        return false;
      }
    }
  }
  return true;
}

bool circuit_implements_permutation_with_helpers( const qcircuit& circuit, uint32_t num_lines,
                                                  const std::vector<uint64_t>& images,
                                                  bool up_to_phase, double tolerance )
{
  if ( images.size() != ( uint64_t{ 1 } << num_lines ) || circuit.num_qubits() < num_lines )
  {
    return false;
  }
  statevector_simulator simulator( circuit.num_qubits() );
  for ( uint64_t column = 0u; column < images.size(); ++column )
  {
    simulator.set_basis_state( column ); /* helpers = 0 */
    simulator.run( circuit );
    const auto& state = simulator.state();
    for ( uint64_t row = 0u; row < state.size(); ++row )
    {
      const double magnitude = std::abs( state[row] );
      if ( row == images[column] )
      {
        if ( up_to_phase ? std::abs( magnitude - 1.0 ) > tolerance
                         : std::abs( state[row] - 1.0 ) > tolerance )
        {
          return false;
        }
      }
      else if ( magnitude > tolerance )
      {
        return false; /* includes non-zero helper outputs */
      }
    }
  }
  return true;
}

} // namespace qda
