/*! \file stabilizer.hpp
 *  \brief Stabilizer (CHP) simulator for Clifford circuits.
 *
 *  The paper (Sec. VI) points to Bravyi-Gosset [72], who study the
 *  hidden shift problem precisely because its circuits are dominated by
 *  Clifford gates and hence classically simulable at scale.  The plain
 *  inner-product instances are *entirely* Clifford (H, X, CZ), so this
 *  Aaronson-Gottesman tableau simulator runs them with hundreds of
 *  qubits -- far beyond the state-vector limit -- and cross-checks the
 *  state-vector backend on small instances.
 *
 *  Representation: the standard 2n x (2n+1) binary tableau; rows
 *  0..n-1 are destabilizers, n..2n-1 stabilizers; each row stores X and
 *  Z bit vectors plus a sign bit.  Every Clifford generator has a
 *  direct single-pass tableau update (X/Y/Z/Sdg/CZ/SWAP included --
 *  they are not composed from H and S), and `stabilizer_sample_counts`
 *  simulates the unitary prefix once and snapshots the tableau per
 *  shot instead of re-running the whole circuit `shots` times.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace qda
{

/*! \brief Aaronson-Gottesman CHP simulator. */
class stabilizer_simulator
{
public:
  explicit stabilizer_simulator( uint32_t num_qubits, uint64_t seed = 0u );

  uint32_t num_qubits() const noexcept { return num_qubits_; }

  void reset();

  void apply_h( uint32_t qubit );
  void apply_s( uint32_t qubit );
  void apply_sdg( uint32_t qubit );
  void apply_x( uint32_t qubit );
  void apply_y( uint32_t qubit );
  void apply_z( uint32_t qubit );
  void apply_cx( uint32_t control, uint32_t target );
  void apply_cz( uint32_t control, uint32_t target );
  void apply_swap( uint32_t a, uint32_t b );

  /*! \brief Measures `qubit` in the computational basis (collapsing),
   *         drawing any random outcome from the internal RNG.
   */
  bool measure( uint32_t qubit );

  /*! \brief Measures `qubit`, drawing any random outcome from `rng`
   *         (lets a multi-shot sampler share one seeded stream).
   */
  bool measure( uint32_t qubit, std::mt19937_64& rng );

  /*! \brief True if the most recent measure() drew from the RNG
   *         (i.e. the outcome was not deterministic).
   */
  bool last_measure_was_random() const noexcept { return last_measure_random_; }

  /*! \brief True if the next measurement of `qubit` is deterministic. */
  bool is_deterministic( uint32_t qubit ) const;

  /*! \brief Applies a gate; throws std::invalid_argument for
   *         non-Clifford gates (t, rz, ...).
   */
  void apply_gate( const qgate_view& gate );

  /*! \brief Runs a full circuit; measurement outcomes are recorded. */
  void run( const qcircuit& circuit );

  /*! \brief Measurement outcomes in gate order (qubit, bit). */
  const std::vector<std::pair<uint32_t, bool>>& measurement_record() const noexcept
  {
    return measurements_;
  }

  /*! \brief Opaque copy of the tableau (not the measurement record). */
  class snapshot
  {
    friend class stabilizer_simulator;
    std::vector<std::vector<uint64_t>> x_;
    std::vector<std::vector<uint64_t>> z_;
    std::vector<bool> signs_;
  };

  /*! \brief Captures the current tableau. */
  snapshot save() const;

  /*! \brief Restores a tableau captured by `save` (reuses the existing
   *         row storage: no allocation when sizes match).
   */
  void restore( const snapshot& saved );

private:
  struct pauli_row
  {
    std::vector<uint64_t> x; /*!< X bit per qubit */
    std::vector<uint64_t> z; /*!< Z bit per qubit */
    bool sign = false;       /*!< true = -1 prefactor */
  };

  bool get_x( const pauli_row& row, uint32_t qubit ) const;
  bool get_z( const pauli_row& row, uint32_t qubit ) const;
  void set_x( pauli_row& row, uint32_t qubit, bool value );
  void set_z( pauli_row& row, uint32_t qubit, bool value );

  /*! \brief row_h := row_h * row_i with Aaronson-Gottesman phase rules. */
  void rowsum( pauli_row& target, const pauli_row& source ) const;

  uint32_t num_qubits_;
  uint32_t num_words_;
  std::vector<pauli_row> rows_; /* 2n rows: destabilizers then stabilizers */
  std::mt19937_64 rng_;
  std::vector<std::pair<uint32_t, bool>> measurements_;
  bool last_measure_random_ = false;
};

/*! \brief Runs `circuit` `shots` times and histograms the measured
 *         outcomes (bit i = i-th measure gate).  The unitary prefix is
 *         simulated once; each shot restores a tableau snapshot and
 *         replays only the measurement tail.  All shots draw from ONE
 *         RNG stream seeded with `seed` (per-shot reseeding would
 *         correlate shot statistics across overlapping calls).
 */
std::map<uint64_t, uint64_t> stabilizer_sample_counts( const qcircuit& circuit, uint64_t shots,
                                                       uint64_t seed = 1u );

} // namespace qda
