/*! \file fusion.hpp
 *  \brief Gate fusion: compiles gate streams into fused kernel programs.
 *
 *  The middle layer of the high-throughput simulation engine.  A
 *  `program` is a sequence of kernel ops compiled from a circuit's gate
 *  view in one forward pass:
 *
 *   1. runs of single-qubit gates on the same qubit -- even when
 *      interleaved with gates on other qubits -- collapse into one 2x2
 *      matrix product (classified diagonal / antidiagonal / general at
 *      flush time; identities are dropped);
 *   2. adjacent diagonal ops (fused diagonal 2x2s, CZ/MCZ masks, global
 *      phases) merge into a single phase table over their involved
 *      qubits, applied in one pass;
 *   3. non-diagonal ops whose combined support stays within
 *      `max_dense_fusion_qubits` merge into one dense 2^k x 2^k matrix
 *      applied as a single gather/matvec/scatter pass.
 *
 *  Fused groups are kept open as long as newly arriving ops commute
 *  past them (disjoint support, or diagonal past diagonal), so e.g. a
 *  brick of layered gates on one qubit pair keeps folding into the same
 *  dense block across layers.  All rewrites are exact: an op only ever
 *  moves past ops it commutes with, so the compiled program implements
 *  the same unitary as the gate-by-gate walk.
 */
#pragma once

#include "fault/cancel.hpp"
#include "quantum/qcircuit.hpp"
#include "simulator/kernels.hpp"

#include <cstdint>
#include <vector>

namespace qda::sim
{

/*! \brief Kernel selector of one compiled op. */
enum class op_kind : uint8_t
{
  unitary_1q,   /*!< general 2x2 on `qubit` */
  diag_1q,      /*!< diag(m[0], m[3]) on `qubit` */
  antidiag_1q,  /*!< [[0, m[1]], [m[2], 0]] on `qubit` */
  phase_masked, /*!< multiply m[0] where all `mask` bits set (Z/CZ/MCZ) */
  diag_table,   /*!< fused diagonal: phase table over `table_qubits` */
  fused_kq,     /*!< dense 2^k x 2^k matrix (`table`, row-major) over
                 *   `table_qubits`: one gather/matvec/scatter pass */
  mcx,          /*!< X on `qubit` where all `mask` control bits set */
  swap_2q,      /*!< SWAP(qubit, qubit2) */
  scalar,       /*!< multiply every amplitude by m[0] (global phase) */
  measure       /*!< collapse `qubit` (handled by the executor's callback) */
};

/*! \brief One compiled kernel invocation. */
struct op
{
  op_kind kind = op_kind::unitary_1q;
  uint32_t qubit = 0u;
  uint32_t qubit2 = 0u;
  uint64_t mask = 0u;
  std::array<amplitude, 4> m{};
  std::vector<uint32_t> table_qubits; /*!< diag_table / fused_kq, ascending */
  std::vector<amplitude> table;       /*!< 2^k phases, or 2^k x 2^k matrix */
  uint32_t source_gates = 1u;         /*!< original gates fused into this op */
};

/*! \brief Fusion knobs (defaults = full fusion). */
struct compile_options
{
  bool fuse_single_qubit = true;
  bool fuse_diagonals = true;
  /*! \brief Cap on phase-table width: tables hold 2^k amplitudes. */
  uint32_t max_diag_table_qubits = 12u;
  /*! \brief Cap on dense-block width (0 disables dense fusion); small
   *         by design: a 2^k x 2^k matvec costs 2^k multiplies per
   *         amplitude, so wide blocks stop being memory-bound.
   */
  uint32_t max_dense_fusion_qubits = 3u;
  /*! \brief Cache-blocked tile scheduling (schedule.hpp): group ops
   *         whose support fits in the low tile qubits into per-tile
   *         sweeps so each L2-sized amplitude tile is loaded once per
   *         group instead of once per op.
   */
  bool tile_scheduling = true;
  /*! \brief Amplitude tile size as a qubit count; 0 = automatic
   *         (QDA_SIM_TILE_QUBITS environment variable, else 16: 2^16
   *         amplitudes = 1 MiB, sized for L2).
   */
  uint32_t tile_qubits = 0u;
  /*! \brief Cooperative cancellation, polled in the gate-fusion loop. */
  cancel_token cancel{};
};

/*! \brief A run of consecutive ops in execution order.  A tiled segment
 *         only references ops supported on the low tile qubits and is
 *         executed tile by tile (all ops back to back per tile); a
 *         non-tiled segment is a single full-sweep op.
 */
struct tile_segment
{
  bool tiled = false;
  std::vector<uint32_t> op_indices; /*!< indices into program::ops */
};

/*! \brief A compiled kernel program over a fixed qubit count. */
struct program
{
  uint32_t num_qubits = 0u;
  std::vector<op> ops;
  uint64_t source_gate_count = 0u; /*!< gates consumed (barriers excluded) */

  /*! \brief Cache-blocked schedule (schedule_tiles).  Empty = execute
   *         `ops` front to back with full-dimension sweeps. */
  std::vector<tile_segment> segments;
  uint32_t tile_qubits = 0u; /*!< tile size backing `segments` */

  uint64_t dimension() const noexcept { return uint64_t{ 1 } << num_qubits; }
};

/*! \brief Compiles all gates of `circuit` (including measures). */
program compile( const qcircuit& circuit, const compile_options& options = {} );

/*! \brief Compiles only the unitary gates, recording measured qubits in
 *         gate order into `measured` -- the sampler walks the gate view
 *         directly instead of copying the circuit.
 */
program compile_unitary_prefix( const qcircuit& circuit, std::vector<uint32_t>& measured,
                                const compile_options& options = {} );

/*! \brief Qubits an op touches, as a bit mask (scalar ops: 0). */
uint64_t op_support( const op& o );

/*! \brief True for ops that are diagonal in the computational basis. */
bool op_is_diagonal( const op& o );

/*! \brief Applies one compiled op to an amplitude window.  `dim` may be
 *         a tile-sized window smaller than the program dimension when
 *         the op's support fits inside it; measure ops are rejected
 *         with std::logic_error.
 */
void apply_op( const op& o, amplitude* state, uint64_t dim );

/*! \brief Executes a measurement-free program on `state` (throws
 *         std::logic_error on a measure op).
 */
void execute( const program& prog, amplitude* state, uint64_t dim );

/*! \brief Executes a program; measure ops invoke `measure_cb(qubit)`,
 *         which must collapse the state and return the outcome.
 */
void execute( const program& prog, amplitude* state, uint64_t dim,
              const std::function<bool( uint32_t )>& measure_cb );

} // namespace qda::sim
