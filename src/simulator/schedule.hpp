/*! \file schedule.hpp
 *  \brief Cache-blocked tile scheduling for compiled kernel programs.
 *
 *  A 20+ qubit statevector (16+ MiB) does not fit in L2, so executing a
 *  program op by op streams the whole array from memory once per op --
 *  exactly the brickwork-circuit regime where fusion alone cannot help
 *  because neighbouring blocks never merge.  This pass partitions the
 *  amplitude array into 2^tile_qubits-sized tiles (1 MiB by default,
 *  sized for L2) and groups consecutive ops whose support lies inside
 *  the low tile qubits into *tiled segments*: the executor then sweeps
 *  each tile once per segment, applying every op of the segment back to
 *  back while the tile is cache-resident.
 *
 *  Grouping reorders ops only past ops they provably commute with
 *  (disjoint support, or diagonal past diagonal -- the same rules the
 *  fusion compiler uses), so the scheduled program implements the same
 *  unitary.  Measurements never move.  Tiles are disjoint amplitude
 *  windows, so the executor parallelizes over tiles with the usual
 *  deterministic chunking.
 */
#pragma once

#include "simulator/fusion.hpp"

namespace qda::sim
{

/*! \brief Tiling knobs. */
struct schedule_options
{
  /*! \brief Tile size as a qubit count; 0 = `default_tile_qubits()`. */
  uint32_t tile_qubits = 0u;
};

/*! \brief Tile size used when callers pass 0: the QDA_SIM_TILE_QUBITS
 *         environment variable (clamped to [8, 24]), else 16.
 */
uint32_t default_tile_qubits();

/*! \brief Builds `prog.segments` / `prog.tile_qubits`.  Programs on at
 *         most tile_qubits qubits are left unscheduled (one tile would
 *         cover the whole state).
 */
void schedule_tiles( program& prog, const schedule_options& options = {} );

} // namespace qda::sim
