/*! \file simd.hpp
 *  \brief Runtime-dispatched SIMD primitives for the statevector kernels.
 *
 *  The bottom layer of the simulation engine: a table of contiguous-
 *  range primitives (complex scale, amplitude-pair 2x2, antidiagonal,
 *  range swap, dense block matvec, fused diagonal table) with one
 *  implementation per instruction set:
 *
 *   - scalar: portable C++, compiled with the baseline flags;
 *   - avx2:   256-bit paths (2 amplitudes per vector) using FMA with
 *             the interleaved-complex shuffle/fmadd idiom;
 *   - avx512: 512-bit paths (4 amplitudes per vector).
 *
 *  The active table is chosen once at startup via cpuid and can be
 *  overridden with `QDA_SIM_ISA=scalar|avx2|avx512` or `set_isa`
 *  (requests are clamped to what the CPU and the build support).
 *
 *  Determinism contract: within one ISA, every primitive computes each
 *  element with a fixed per-element formula -- the scalar tails of the
 *  vector paths replicate the vector-lane rounding (same FMA order) --
 *  so results are bit-identical no matter how a range is chunked across
 *  threads.  Different ISAs round differently (FMA vs separate
 *  multiply/add) and agree to ~1 ulp per operation, well inside the
 *  engine-wide 1e-12 cross-check tolerance.
 */
#pragma once

#include <complex>
#include <cstdint>

namespace qda::sim
{

using amplitude = std::complex<double>;

/*! \brief Instruction sets the kernel layer can dispatch to. */
enum class isa_kind : uint8_t
{
  scalar = 0,
  avx2 = 1,
  avx512 = 2
};

/*! \brief Lower-case name of an ISA ("scalar", "avx2", "avx512"). */
const char* isa_name( isa_kind isa ) noexcept;

/*! \brief Parses an ISA name; returns false on an unknown string. */
bool isa_from_name( const char* name, isa_kind& out ) noexcept;

/*! \brief Best ISA the CPU *and* this build support. */
isa_kind detected_isa() noexcept;

/*! \brief True when `isa` is usable on this CPU with this build. */
bool isa_available( isa_kind isa ) noexcept;

/*! \brief ISA the kernels currently dispatch to: `detected_isa()`
 *         unless overridden by QDA_SIM_ISA or `set_isa`.
 */
isa_kind active_isa() noexcept;

/*! \brief Requests an ISA (clamped to `detected_isa()` when the CPU or
 *         build lacks it); returns the ISA actually activated.
 */
isa_kind set_isa( isa_kind isa ) noexcept;

/*! \brief Per-ISA table of contiguous-range kernel primitives.  All
 *         ranges are dense in memory; the masked-run iteration above
 *         them lives in kernels.cpp and is ISA-independent.
 */
struct simd_ops
{
  isa_kind isa = isa_kind::scalar;

  /*! amp[i] *= w for i in [0, n). */
  void ( *scale )( amplitude* amp, uint64_t n, amplitude w );

  /*! amp[2i] *= p0, amp[2i+1] *= p1 for i in [0, n_pairs): the
   *  qubit-0 diagonal (and bit-0 masked phase, with p0 = 1). */
  void ( *scale_pairs )( amplitude* amp, uint64_t n_pairs, amplitude p0, amplitude p1 );

  /*! Generic 2x2 over split halves: (lo[i], hi[i]) pairs, m row-major. */
  void ( *pair_2x2 )( amplitude* lo, amplitude* hi, uint64_t n, const amplitude* m );

  /*! Generic 2x2 over adjacent pairs (amp[2i], amp[2i+1]): qubit 0. */
  void ( *pair_2x2_interleaved )( amplitude* amp, uint64_t n_pairs, const amplitude* m );

  /*! lo[i] = m01 * hi[i]; hi[i] = m10 * lo_old[i]. */
  void ( *pair_antidiag )( amplitude* lo, amplitude* hi, uint64_t n, amplitude m01,
                           amplitude m10 );

  /*! a[i] <-> b[i] (X / CX / MCX runs with target above bit 0). */
  void ( *swap_ranges )( amplitude* a, amplitude* b, uint64_t n );

  /*! amp[2i] <-> amp[2i+1] (X runs with target bit 0). */
  void ( *swap_adjacent )( amplitude* amp, uint64_t n_pairs );

  /*! In-place dense-block apply over `groups` consecutive blocks of
   *  `bs` amplitudes:  amp[g*bs + r] = sum_c old[g*bs + c] * cols[c*bs + r]
   *  with cols COLUMN-major (one block column contiguous); bs <= 1024.
   *  Batched so the per-block dispatch cost amortizes and the vector
   *  paths can keep the (tiny) matrix hot across blocks. */
  void ( *matvec_batch )( amplitude* amp, const amplitude* cols, uint64_t bs, uint64_t groups );

  /*! k-stream in-place dense-block apply: streams[c] points to the c-th
   *  block member of `n` consecutive group bases (stream c = state +
   *  base + offsets[c], contiguous in memory because group bases within
   *  a run are consecutive).  out_r[j] = sum_c cols[c*bs + r] * in_c[j],
   *  cols COLUMN-major as in matvec_batch; bs <= 8 only -- {4, 8} take
   *  the vector path, other sizes fall back to a scalar sweep. */
  void ( *block_streams )( amplitude* const* streams, uint64_t bs, uint64_t n,
                           const amplitude* cols );

  /*! Fused diagonal table over a contiguous index window: multiplies
   *  amp[i] by table[key(base + i)] where key gathers the bits of
   *  `qubits` (qubits[j] -> bit j, ascending).  Exploits constant keys
   *  across stretches below qubits[0]. */
  void ( *diag_table )( amplitude* amp, uint64_t base, uint64_t n, const uint32_t* qubits,
                        uint32_t k, const amplitude* table );
};

/*! \brief The primitive table for `active_isa()`. */
const simd_ops& active_ops() noexcept;

/*! \brief The primitive table for a specific ISA (falls back to scalar
 *         when unavailable).
 */
const simd_ops& ops_for( isa_kind isa ) noexcept;

namespace detail
{
/*! Per-ISA tables; nullptr when the build or CPU lacks the ISA.  The
 *  AVX TUs are always compiled -- without their -m flags they compile
 *  to a stub returning nullptr. */
const simd_ops* scalar_ops() noexcept;
const simd_ops* avx2_ops() noexcept;
const simd_ops* avx512_ops() noexcept;
} // namespace detail

} // namespace qda::sim
