#include "simulator/schedule.hpp"

#include "telemetry/metrics.hpp"

#include <cstdlib>

namespace qda::sim
{

namespace
{

/*! Per-segment bookkeeping during the walk. */
struct open_segment
{
  bool tiled = false;
  bool all_diagonal = true;
  bool has_measure = false;
  uint64_t support = 0u;
  std::vector<uint32_t> op_indices;
};

bool commutes_past( uint64_t support, bool diagonal, const open_segment& seg )
{
  if ( seg.has_measure )
  {
    return false; /* never move anything across a measurement */
  }
  if ( ( support & seg.support ) == 0u )
  {
    return true;
  }
  return diagonal && seg.all_diagonal;
}

} // namespace

uint32_t default_tile_qubits()
{
  static const uint32_t resolved = [] {
    if ( const char* env = std::getenv( "QDA_SIM_TILE_QUBITS" ) )
    {
      const long parsed = std::strtol( env, nullptr, 10 );
      if ( parsed >= 8l && parsed <= 24l )
      {
        return static_cast<uint32_t>( parsed );
      }
    }
    /* 2^16 amplitudes = 1 MiB: fits typical L2 with room for the gate
     * tables and gather buffers */
    return 16u;
  }();
  return resolved;
}

void schedule_tiles( program& prog, const schedule_options& options )
{
  prog.segments.clear();
  prog.tile_qubits = 0u;
  const uint32_t tq = options.tile_qubits != 0u ? options.tile_qubits : default_tile_qubits();
  if ( prog.num_qubits <= tq )
  {
    return; /* one tile would cover the whole state: nothing to block */
  }
  const uint64_t tile_mask = ( uint64_t{ 1 } << tq ) - 1u;

  std::vector<open_segment> segments;
  for ( uint32_t i = 0u; i < prog.ops.size(); ++i )
  {
    const op& o = prog.ops[i];
    const uint64_t support = op_support( o );
    const bool diagonal = op_is_diagonal( o );
    const bool eligible = o.kind != op_kind::measure && ( support & ~tile_mask ) == 0u;

    if ( !eligible )
    {
      open_segment full;
      full.tiled = false;
      full.all_diagonal = diagonal;
      full.has_measure = o.kind == op_kind::measure;
      full.support = support;
      full.op_indices.push_back( i );
      segments.push_back( std::move( full ) );
      continue;
    }

    /* walk the segments back to front: join the first tiled segment we
     * can reach by commuting past everything behind it */
    open_segment* home = nullptr;
    for ( size_t s = segments.size(); s-- > 0u; )
    {
      open_segment& candidate = segments[s];
      if ( candidate.tiled )
      {
        home = &candidate; /* in-order join is always valid */
        break;
      }
      if ( !commutes_past( support, diagonal, candidate ) )
      {
        break;
      }
    }
    if ( home != nullptr )
    {
      home->support |= support;
      home->all_diagonal = home->all_diagonal && diagonal;
      home->op_indices.push_back( i );
    }
    else
    {
      open_segment fresh;
      fresh.tiled = true;
      fresh.all_diagonal = diagonal;
      fresh.support = support;
      fresh.op_indices.push_back( i );
      segments.push_back( std::move( fresh ) );
    }
  }

  prog.tile_qubits = tq;
  prog.segments.reserve( segments.size() );
  for ( auto& seg : segments )
  {
    tile_segment out;
    /* a lone op gains nothing from per-tile dispatch: run it full */
    out.tiled = seg.tiled && seg.op_indices.size() > 1u;
    out.op_indices = std::move( seg.op_indices );
    prog.segments.push_back( std::move( out ) );
  }
}

} // namespace qda::sim
