/*! \file kernels.hpp
 *  \brief Specialized state-vector kernels and the simulator thread pool.
 *
 *  The low layer of the high-throughput simulation engine: free
 *  functions that act directly on an amplitude array.  Three kernel
 *  families replace the one-size-fits-all complex 2x2 matmul:
 *
 *   - diagonal kernels (Z/S/T/RZ/CZ/MCZ and fused phase tables) touch
 *     each amplitude once and never pair amplitudes;
 *   - permutation kernels (X/CX/MCX/SWAP) swap amplitudes without any
 *     complex arithmetic;
 *   - controlled kernels enumerate only the 2^(n-k) control-satisfying
 *     indices via bit-deposit iteration instead of scanning all 2^n
 *     and skipping.
 *
 *  All kernels are parallelized over contiguous amplitude chunks with a
 *  small std::thread pool (QDA_SIM_THREADS environment variable or
 *  `set_num_threads`).  Every kernel writes disjoint elements and every
 *  reduction sums fixed-size blocks in index order, so results are
 *  bit-identical regardless of the thread count.
 *
 *  The contiguous inner loops dispatch to the runtime-selected SIMD
 *  primitive table (simd.hpp: scalar / AVX2 / AVX-512, override with
 *  QDA_SIM_ISA); this file owns only the masked index iteration.
 */
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace qda::sim
{

using amplitude = std::complex<double>;

/* ---- threading ---- */

/*! \brief Number of worker threads kernels may use (>= 1).
 *         Initialized from QDA_SIM_THREADS (0/unset = hardware
 *         concurrency); overridable with `set_num_threads`.
 */
uint32_t num_threads();

/*! \brief Overrides the thread count; 0 restores the automatic choice. */
void set_num_threads( uint32_t count );

/*! \brief Runs `body(begin, end)` over a partition of [0, n).  Small
 *         jobs run inline on the calling thread: the threshold compares
 *         n * work_per_item, so callers iterating few-but-heavy items
 *         (reduction blocks, unitary columns) still parallelize.
 *         Chunks are disjoint, so element-wise bodies are deterministic
 *         for any thread count.
 */
void parallel_for( uint64_t n, const std::function<void( uint64_t, uint64_t )>& body,
                   uint64_t work_per_item = 1u );

/*! \brief Deterministic parallel sum: `block(begin, end)` partials are
 *         computed over fixed-size index blocks and combined in block
 *         order, so the result is bit-identical for any thread count.
 */
double blocked_sum( uint64_t n, const std::function<double( uint64_t, uint64_t )>& block );

/* ---- masked index iteration (bit-deposit) ---- */

/*! \brief Random-access enumeration of the indices i in [0, dim) with
 *         (i & set_mask) == set_mask and (i & clear_mask) == 0.
 *         `nth` deposits a free-bit pattern (random access for chunk
 *         starts); `next` advances in O(1) with a masked carry.
 */
struct masked_range
{
  uint64_t set_mask = 0u;
  uint64_t free_mask = 0u; /*!< bits allowed to vary */
  uint64_t count = 0u;     /*!< number of enumerated indices */

  masked_range( uint64_t dim, uint64_t set, uint64_t clear )
      : set_mask( set ), free_mask( ( dim - 1u ) & ~( set | clear ) )
  {
    count = dim >> __builtin_popcountll( set | clear );
  }

  /*! \brief The j-th enumerated index (deposit j into the free bits). */
  uint64_t nth( uint64_t j ) const
  {
    uint64_t result = set_mask;
    uint64_t free = free_mask;
    while ( j != 0u && free != 0u )
    {
      const uint64_t low = free & ( ~free + 1u );
      if ( j & 1u )
      {
        result |= low;
      }
      free &= free - 1u;
      j >>= 1u;
    }
    return result;
  }

  /*! \brief The enumerated index following `index` (carry across fixed bits). */
  uint64_t next( uint64_t index ) const
  {
    return ( ( ( index | ~free_mask ) + 1u ) & free_mask ) | set_mask;
  }
};

/* ---- kernels ---- */

/*! \brief General single-qubit 2x2 kernel (amplitude pairing). */
void apply_1q( amplitude* state, uint64_t dim, uint32_t qubit,
               const std::array<amplitude, 4>& m );

/*! \brief Diagonal single-qubit kernel diag(p0, p1): one multiply per
 *         amplitude, no pairing.  p0 == 1 touches only the set half.
 */
void apply_1q_diag( amplitude* state, uint64_t dim, uint32_t qubit, amplitude p0, amplitude p1 );

/*! \brief Antidiagonal kernel [[0, p01], [p10, 0]] (X, Y and fusions). */
void apply_1q_antidiag( amplitude* state, uint64_t dim, uint32_t qubit, amplitude p01,
                        amplitude p10 );

/*! \brief Multiplies by `phase` every amplitude with all `mask` bits set
 *         (Z/CZ/MCZ family); enumerates only the 2^(n-k) matching indices.
 */
void apply_phase_masked( amplitude* state, uint64_t dim, uint64_t mask, amplitude phase );

/*! \brief X on `target` conditioned on all `control_mask` bits
 *         (X/CX/MCX): pure amplitude swaps over matching indices.
 */
void apply_mcx( amplitude* state, uint64_t dim, uint64_t control_mask, uint32_t target );

/*! \brief General controlled single-qubit kernel over the
 *         control-satisfying subspace only.
 */
void apply_mc1q( amplitude* state, uint64_t dim, uint64_t control_mask, uint32_t target,
                 const std::array<amplitude, 4>& m );

/*! \brief SWAP(a, b): swaps the 2^(n-2) amplitude pairs that differ. */
void apply_swap( amplitude* state, uint64_t dim, uint32_t a, uint32_t b );

/*! \brief Multiplies every amplitude by `factor` (global phase). */
void apply_scalar( amplitude* state, uint64_t dim, amplitude factor );

/*! \brief Fused-diagonal kernel: multiplies amplitude i by
 *         table[key(i)], where key gathers the bits of `qubits`
 *         (qubits[j] becomes bit j of the key).
 */
void apply_diag_table( amplitude* state, uint64_t dim, std::span<const uint32_t> qubits,
                       std::span<const amplitude> table );

/*! \brief Dense fused-block kernel: applies the 2^k x 2^k `matrix`
 *         (row-major; qubits[j] = bit j of the local index) to every
 *         group of 2^k amplitudes sharing the non-support bits.
 */
void apply_fused_kq( amplitude* state, uint64_t dim, std::span<const uint32_t> qubits,
                     std::span<const amplitude> matrix );

/* ---- reductions and measurement helpers ---- */

/*! \brief Sum of |amplitude|^2 (deterministic blocked reduction). */
double norm_sum( const amplitude* state, uint64_t dim );

/*! \brief Probability that `qubit` reads 1 (deterministic reduction). */
double prob_one( const amplitude* state, uint64_t dim, uint32_t qubit );

/*! \brief Projects onto `qubit` == outcome and rescales by `renorm`. */
void collapse( amplitude* state, uint64_t dim, uint32_t qubit, bool outcome, double renorm );

/*! \brief Writes |state[i]|^2 into out[i] (single parallel pass). */
void probabilities_into( const amplitude* state, uint64_t dim, double* out );

} // namespace qda::sim
