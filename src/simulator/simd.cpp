/*! \file simd.cpp
 *  \brief Portable scalar primitives and the runtime ISA dispatcher.
 */
#include "simulator/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qda::sim
{

namespace
{

/* ---- scalar primitives (baseline flags, plain complex math) ---- */

void scale_scalar( amplitude* amp, uint64_t n, amplitude w )
{
  for ( uint64_t i = 0u; i < n; ++i )
  {
    amp[i] *= w;
  }
}

void scale_pairs_scalar( amplitude* amp, uint64_t n_pairs, amplitude p0, amplitude p1 )
{
  for ( uint64_t i = 0u; i < n_pairs; ++i )
  {
    amp[2u * i] *= p0;
    amp[2u * i + 1u] *= p1;
  }
}

void pair_2x2_scalar( amplitude* lo, amplitude* hi, uint64_t n, const amplitude* m )
{
  const amplitude m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for ( uint64_t i = 0u; i < n; ++i )
  {
    const amplitude a0 = lo[i];
    const amplitude a1 = hi[i];
    lo[i] = m0 * a0 + m1 * a1;
    hi[i] = m2 * a0 + m3 * a1;
  }
}

void pair_2x2_interleaved_scalar( amplitude* amp, uint64_t n_pairs, const amplitude* m )
{
  const amplitude m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for ( uint64_t i = 0u; i < n_pairs; ++i )
  {
    const amplitude a0 = amp[2u * i];
    const amplitude a1 = amp[2u * i + 1u];
    amp[2u * i] = m0 * a0 + m1 * a1;
    amp[2u * i + 1u] = m2 * a0 + m3 * a1;
  }
}

void pair_antidiag_scalar( amplitude* lo, amplitude* hi, uint64_t n, amplitude m01,
                           amplitude m10 )
{
  for ( uint64_t i = 0u; i < n; ++i )
  {
    const amplitude a0 = lo[i];
    lo[i] = m01 * hi[i];
    hi[i] = m10 * a0;
  }
}

void swap_ranges_scalar( amplitude* a, amplitude* b, uint64_t n )
{
  for ( uint64_t i = 0u; i < n; ++i )
  {
    const amplitude tmp = a[i];
    a[i] = b[i];
    b[i] = tmp;
  }
}

void swap_adjacent_scalar( amplitude* amp, uint64_t n_pairs )
{
  for ( uint64_t i = 0u; i < n_pairs; ++i )
  {
    const amplitude tmp = amp[2u * i];
    amp[2u * i] = amp[2u * i + 1u];
    amp[2u * i + 1u] = tmp;
  }
}

void matvec_batch_scalar( amplitude* amp, const amplitude* cols, uint64_t bs, uint64_t groups )
{
  amplitude tmp[uint64_t{ 1 } << 10u];
  for ( uint64_t g = 0u; g < groups; ++g )
  {
    amplitude* out = amp + g * bs;
    for ( uint64_t r = 0u; r < bs; ++r )
    {
      tmp[r] = out[r];
      out[r] = amplitude{ 0.0 };
    }
    for ( uint64_t c = 0u; c < bs; ++c )
    {
      const amplitude w = tmp[c];
      const amplitude* column = cols + c * bs;
      for ( uint64_t r = 0u; r < bs; ++r )
      {
        out[r] += w * column[r];
      }
    }
  }
}

void block_streams_scalar( amplitude* const* streams, uint64_t bs, uint64_t n,
                           const amplitude* cols )
{
  amplitude x[8];
  for ( uint64_t j = 0u; j < n; ++j )
  {
    for ( uint64_t c = 0u; c < bs; ++c )
    {
      x[c] = streams[c][j];
    }
    for ( uint64_t r = 0u; r < bs; ++r )
    {
      amplitude acc{ 0.0 };
      for ( uint64_t c = 0u; c < bs; ++c )
      {
        acc += x[c] * cols[c * bs + r];
      }
      streams[r][j] = acc;
    }
  }
}

void diag_table_scalar( amplitude* amp, uint64_t base, uint64_t n, const uint32_t* qubits,
                        uint32_t k, const amplitude* table )
{
  /* keys are constant across stretches below the lowest table qubit */
  const uint64_t stretch_len = uint64_t{ 1 } << qubits[0];
  const uint64_t end = base + n;
  uint64_t i = base;
  while ( i < end )
  {
    uint64_t key = 0u;
    for ( uint32_t j = 0u; j < k; ++j )
    {
      key |= ( ( i >> qubits[j] ) & 1u ) << j;
    }
    const amplitude phase = table[key];
    const uint64_t stretch = std::min( end, ( i | ( stretch_len - 1u ) ) + 1u );
    amplitude* p = amp + ( i - base );
    const uint64_t len = stretch - i;
    for ( uint64_t s = 0u; s < len; ++s )
    {
      p[s] *= phase;
    }
    i = stretch;
  }
}

const simd_ops scalar_table = {
  isa_kind::scalar,        scale_scalar,        scale_pairs_scalar, pair_2x2_scalar,
  pair_2x2_interleaved_scalar, pair_antidiag_scalar, swap_ranges_scalar, swap_adjacent_scalar,
  matvec_batch_scalar,     block_streams_scalar, diag_table_scalar,
};

/* ---- dispatch ---- */

bool cpu_supports( isa_kind isa ) noexcept
{
#if defined( __x86_64__ ) || defined( __i386__ )
  switch ( isa )
  {
  case isa_kind::scalar:
    return true;
  case isa_kind::avx2:
    return __builtin_cpu_supports( "avx2" ) && __builtin_cpu_supports( "fma" );
  case isa_kind::avx512:
    return __builtin_cpu_supports( "avx512f" );
  }
  return false;
#else
  return isa == isa_kind::scalar;
#endif
}

const simd_ops* table_of( isa_kind isa ) noexcept
{
  switch ( isa )
  {
  case isa_kind::avx512:
    return detail::avx512_ops();
  case isa_kind::avx2:
    return detail::avx2_ops();
  case isa_kind::scalar:
    break;
  }
  return detail::scalar_ops();
}

isa_kind clamp_to_available( isa_kind requested ) noexcept
{
  for ( int candidate = static_cast<int>( requested ); candidate > 0; --candidate )
  {
    const auto isa = static_cast<isa_kind>( candidate );
    if ( cpu_supports( isa ) && table_of( isa ) != nullptr && table_of( isa )->isa == isa )
    {
      return isa;
    }
  }
  return isa_kind::scalar;
}

isa_kind initial_isa() noexcept
{
  isa_kind requested = clamp_to_available( isa_kind::avx512 );
  if ( const char* env = std::getenv( "QDA_SIM_ISA" ) )
  {
    isa_kind parsed = isa_kind::scalar;
    if ( isa_from_name( env, parsed ) )
    {
      requested = clamp_to_available( parsed );
    }
  }
  return requested;
}

std::atomic<uint8_t>& active_isa_slot() noexcept
{
  static std::atomic<uint8_t> slot{ static_cast<uint8_t>( initial_isa() ) };
  return slot;
}

} // namespace

namespace detail
{

const simd_ops* scalar_ops() noexcept
{
  return &scalar_table;
}

} // namespace detail

const char* isa_name( isa_kind isa ) noexcept
{
  switch ( isa )
  {
  case isa_kind::avx512:
    return "avx512";
  case isa_kind::avx2:
    return "avx2";
  case isa_kind::scalar:
    break;
  }
  return "scalar";
}

bool isa_from_name( const char* name, isa_kind& out ) noexcept
{
  if ( name == nullptr )
  {
    return false;
  }
  if ( std::strcmp( name, "scalar" ) == 0 )
  {
    out = isa_kind::scalar;
    return true;
  }
  if ( std::strcmp( name, "avx2" ) == 0 )
  {
    out = isa_kind::avx2;
    return true;
  }
  if ( std::strcmp( name, "avx512" ) == 0 )
  {
    out = isa_kind::avx512;
    return true;
  }
  return false;
}

isa_kind detected_isa() noexcept
{
  static const isa_kind detected = clamp_to_available( isa_kind::avx512 );
  return detected;
}

bool isa_available( isa_kind isa ) noexcept
{
  return clamp_to_available( isa ) == isa;
}

isa_kind active_isa() noexcept
{
  return static_cast<isa_kind>( active_isa_slot().load( std::memory_order_relaxed ) );
}

isa_kind set_isa( isa_kind isa ) noexcept
{
  const isa_kind actual = clamp_to_available( isa );
  active_isa_slot().store( static_cast<uint8_t>( actual ), std::memory_order_relaxed );
  return actual;
}

const simd_ops& ops_for( isa_kind isa ) noexcept
{
  const simd_ops* table = table_of( clamp_to_available( isa ) );
  return table != nullptr ? *table : scalar_table;
}

const simd_ops& active_ops() noexcept
{
  return ops_for( active_isa() );
}

} // namespace qda::sim
