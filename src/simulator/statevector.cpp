#include "simulator/statevector.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qda
{

namespace
{

uint64_t checked_dimension( uint32_t num_qubits )
{
  if ( num_qubits > 28u )
  {
    throw std::invalid_argument( "statevector_simulator: too many qubits for full state vector" );
  }
  return uint64_t{ 1 } << num_qubits;
}

} // namespace

statevector_simulator::statevector_simulator( uint32_t num_qubits, uint64_t seed )
    : num_qubits_( num_qubits ), state_( checked_dimension( num_qubits ) ), rng_( seed )
{
  state_[0] = 1.0;
}

void statevector_simulator::reset()
{
  std::fill( state_.begin(), state_.end(), amplitude{ 0.0 } );
  state_[0] = 1.0;
  measurements_.clear();
}

void statevector_simulator::set_basis_state( uint64_t basis_state )
{
  if ( basis_state >= state_.size() )
  {
    throw std::invalid_argument( "statevector_simulator::set_basis_state: out of range" );
  }
  std::fill( state_.begin(), state_.end(), amplitude{ 0.0 } );
  state_[basis_state] = 1.0;
}

void statevector_simulator::apply_single_qubit( const std::array<amplitude, 4>& matrix,
                                                uint32_t qubit )
{
  const uint64_t stride = uint64_t{ 1 } << qubit;
  for ( uint64_t base = 0u; base < state_.size(); base += 2u * stride )
  {
    for ( uint64_t offset = 0u; offset < stride; ++offset )
    {
      const uint64_t i0 = base + offset;
      const uint64_t i1 = i0 + stride;
      const amplitude a0 = state_[i0];
      const amplitude a1 = state_[i1];
      state_[i0] = matrix[0] * a0 + matrix[1] * a1;
      state_[i1] = matrix[2] * a0 + matrix[3] * a1;
    }
  }
}

void statevector_simulator::apply_controlled_single_qubit(
    const std::array<amplitude, 4>& matrix, std::span<const uint32_t> controls, uint32_t qubit )
{
  uint64_t control_mask = 0u;
  for ( const auto control : controls )
  {
    control_mask |= uint64_t{ 1 } << control;
  }
  const uint64_t stride = uint64_t{ 1 } << qubit;
  for ( uint64_t base = 0u; base < state_.size(); base += 2u * stride )
  {
    for ( uint64_t offset = 0u; offset < stride; ++offset )
    {
      const uint64_t i0 = base + offset;
      if ( ( i0 & control_mask ) != control_mask )
      {
        continue;
      }
      const uint64_t i1 = i0 + stride;
      const amplitude a0 = state_[i0];
      const amplitude a1 = state_[i1];
      state_[i0] = matrix[0] * a0 + matrix[1] * a1;
      state_[i1] = matrix[2] * a0 + matrix[3] * a1;
    }
  }
}

void statevector_simulator::apply_swap( uint32_t a, uint32_t b )
{
  const uint64_t bit_a = uint64_t{ 1 } << a;
  const uint64_t bit_b = uint64_t{ 1 } << b;
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    const bool has_a = ( i & bit_a ) != 0u;
    const bool has_b = ( i & bit_b ) != 0u;
    if ( has_a && !has_b )
    {
      std::swap( state_[i], state_[( i ^ bit_a ) | bit_b] );
    }
  }
}

bool statevector_simulator::measure_qubit( uint32_t qubit )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  double p_one = 0.0;
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    if ( i & bit )
    {
      p_one += std::norm( state_[i] );
    }
  }
  std::uniform_real_distribution<double> dist( 0.0, 1.0 );
  const bool outcome = dist( rng_ ) < p_one;
  const double renorm = 1.0 / std::sqrt( outcome ? p_one : 1.0 - p_one );
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    if ( ( ( i & bit ) != 0u ) == outcome )
    {
      state_[i] *= renorm;
    }
    else
    {
      state_[i] = 0.0;
    }
  }
  return outcome;
}

void statevector_simulator::apply_gate( const qgate_view& gate )
{
  switch ( gate.kind )
  {
  case gate_kind::h:
  case gate_kind::x:
  case gate_kind::y:
  case gate_kind::z:
  case gate_kind::s:
  case gate_kind::sdg:
  case gate_kind::t:
  case gate_kind::tdg:
  case gate_kind::rx:
  case gate_kind::ry:
  case gate_kind::rz:
    apply_single_qubit( single_qubit_matrix( gate.kind, gate.angle ), gate.target );
    break;
  case gate_kind::cx:
  case gate_kind::mcx:
    apply_controlled_single_qubit( single_qubit_matrix( gate_kind::x, 0.0 ), gate.controls,
                                   gate.target );
    break;
  case gate_kind::cz:
  case gate_kind::mcz:
    apply_controlled_single_qubit( single_qubit_matrix( gate_kind::z, 0.0 ), gate.controls,
                                   gate.target );
    break;
  case gate_kind::swap:
    apply_swap( gate.target, gate.target2 );
    break;
  case gate_kind::measure:
    measurements_.emplace_back( gate.target, measure_qubit( gate.target ) );
    break;
  case gate_kind::barrier:
    break;
  case gate_kind::global_phase:
  {
    const amplitude phase = std::exp( amplitude( 0.0, gate.angle ) );
    for ( auto& amp : state_ )
    {
      amp *= phase;
    }
    break;
  }
  }
}

void statevector_simulator::run( const qcircuit& circuit )
{
  if ( circuit.num_qubits() != num_qubits_ )
  {
    throw std::invalid_argument( "statevector_simulator::run: qubit count mismatch" );
  }
  for ( const auto& gate : circuit.gates() )
  {
    apply_gate( gate );
  }
}

double statevector_simulator::probability_of( uint64_t basis_state ) const
{
  if ( basis_state >= state_.size() )
  {
    throw std::invalid_argument( "statevector_simulator::probability_of: out of range" );
  }
  return std::norm( state_[basis_state] );
}

std::vector<double> statevector_simulator::probabilities() const
{
  std::vector<double> result( state_.size() );
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    result[i] = std::norm( state_[i] );
  }
  return result;
}

uint64_t statevector_simulator::sample( std::mt19937_64& rng ) const
{
  std::uniform_real_distribution<double> dist( 0.0, 1.0 );
  double threshold = dist( rng );
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    threshold -= std::norm( state_[i] );
    if ( threshold <= 0.0 )
    {
      return i;
    }
  }
  return state_.size() - 1u;
}

double statevector_simulator::norm() const
{
  double total = 0.0;
  for ( const auto& amp : state_ )
  {
    total += std::norm( amp );
  }
  return total;
}

std::map<uint64_t, uint64_t> sample_counts( const qcircuit& circuit, uint64_t shots, uint64_t seed )
{
  /* split the circuit into its unitary prefix and the measured qubits */
  qcircuit unitary_part( circuit.num_qubits() );
  std::vector<uint32_t> measured;
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::measure )
    {
      measured.push_back( gate.target );
    }
    else if ( gate.kind != gate_kind::barrier )
    {
      unitary_part.add_gate( gate );
    }
  }
  if ( measured.empty() )
  {
    throw std::invalid_argument( "sample_counts: circuit has no measurements" );
  }

  statevector_simulator simulator( circuit.num_qubits() );
  simulator.run( unitary_part );

  std::mt19937_64 rng( seed );
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    const uint64_t full = simulator.sample( rng );
    uint64_t key = 0u;
    for ( uint32_t i = 0u; i < measured.size(); ++i )
    {
      if ( ( full >> measured[i] ) & 1u )
      {
        key |= uint64_t{ 1 } << i;
      }
    }
    ++counts[key];
  }
  return counts;
}

std::string format_outcome( uint64_t outcome, uint32_t num_bits )
{
  std::string result( num_bits, '0' );
  for ( uint32_t i = 0u; i < num_bits; ++i )
  {
    if ( ( outcome >> i ) & 1u )
    {
      result[num_bits - 1u - i] = '1';
    }
  }
  return result;
}

} // namespace qda
