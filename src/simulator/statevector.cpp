#include "simulator/statevector.hpp"

#include "simulator/fusion.hpp"
#include "simulator/kernels.hpp"
#include "simulator/simd.hpp"
#include "telemetry/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

namespace qda
{

namespace
{

uint64_t checked_dimension( uint32_t num_qubits )
{
  if ( num_qubits > 28u )
  {
    throw std::invalid_argument( "statevector_simulator: too many qubits for full state vector" );
  }
  return uint64_t{ 1 } << num_qubits;
}

uint64_t control_mask_of( std::span<const uint32_t> controls )
{
  uint64_t mask = 0u;
  for ( const auto control : controls )
  {
    mask |= uint64_t{ 1 } << control;
  }
  return mask;
}

} // namespace

statevector_simulator::statevector_simulator( uint32_t num_qubits, uint64_t seed )
    : num_qubits_( num_qubits ), state_( checked_dimension( num_qubits ) ), rng_( seed )
{
  state_[0] = 1.0;
}

void statevector_simulator::reset()
{
  std::fill( state_.begin(), state_.end(), amplitude{ 0.0 } );
  state_[0] = 1.0;
  measurements_.clear();
}

void statevector_simulator::set_basis_state( uint64_t basis_state )
{
  if ( basis_state >= state_.size() )
  {
    throw std::invalid_argument( "statevector_simulator::set_basis_state: out of range" );
  }
  std::fill( state_.begin(), state_.end(), amplitude{ 0.0 } );
  state_[basis_state] = 1.0;
}

/* ---- specialized single-gate dispatch ---- */

void statevector_simulator::specialized_apply_gate( const qgate_view& gate )
{
  amplitude* state = state_.data();
  const uint64_t dim = state_.size();
  switch ( gate.kind )
  {
  case gate_kind::h:
  case gate_kind::rx:
  case gate_kind::ry:
    sim::apply_1q( state, dim, gate.target, single_qubit_matrix( gate.kind, gate.angle ) );
    break;
  case gate_kind::x:
    sim::apply_mcx( state, dim, 0u, gate.target );
    break;
  case gate_kind::y:
    sim::apply_1q_antidiag( state, dim, gate.target, amplitude( 0.0, -1.0 ),
                            amplitude( 0.0, 1.0 ) );
    break;
  case gate_kind::z:
    sim::apply_phase_masked( state, dim, uint64_t{ 1 } << gate.target, amplitude{ -1.0 } );
    break;
  case gate_kind::s:
    sim::apply_phase_masked( state, dim, uint64_t{ 1 } << gate.target, amplitude( 0.0, 1.0 ) );
    break;
  case gate_kind::sdg:
    sim::apply_phase_masked( state, dim, uint64_t{ 1 } << gate.target, amplitude( 0.0, -1.0 ) );
    break;
  case gate_kind::t:
  case gate_kind::tdg:
  {
    const double sign = gate.kind == gate_kind::t ? 1.0 : -1.0;
    sim::apply_phase_masked( state, dim, uint64_t{ 1 } << gate.target,
                             std::exp( amplitude( 0.0, sign * std::numbers::pi / 4.0 ) ) );
    break;
  }
  case gate_kind::rz:
    sim::apply_1q_diag( state, dim, gate.target,
                        std::exp( amplitude( 0.0, -gate.angle / 2.0 ) ),
                        std::exp( amplitude( 0.0, gate.angle / 2.0 ) ) );
    break;
  case gate_kind::cx:
  case gate_kind::mcx:
    sim::apply_mcx( state, dim, control_mask_of( gate.controls ), gate.target );
    break;
  case gate_kind::cz:
  case gate_kind::mcz:
    sim::apply_phase_masked(
        state, dim, control_mask_of( gate.controls ) | ( uint64_t{ 1 } << gate.target ),
        amplitude{ -1.0 } );
    break;
  case gate_kind::swap:
    sim::apply_swap( state, dim, gate.target, gate.target2 );
    break;
  case gate_kind::measure:
    measurements_.emplace_back( gate.target, measure_qubit( gate.target ) );
    break;
  case gate_kind::barrier:
    break;
  case gate_kind::global_phase:
    sim::apply_scalar( state, dim, std::exp( amplitude( 0.0, gate.angle ) ) );
    break;
  }
}

void statevector_simulator::apply_gate( const qgate_view& gate )
{
  specialized_apply_gate( gate );
}

/* ---- naive reference path (cross-checks, before/after bench) ---- */

void statevector_simulator::naive_apply_single_qubit( const std::array<amplitude, 4>& matrix,
                                                      uint32_t qubit )
{
  const uint64_t stride = uint64_t{ 1 } << qubit;
  for ( uint64_t base = 0u; base < state_.size(); base += 2u * stride )
  {
    for ( uint64_t offset = 0u; offset < stride; ++offset )
    {
      const uint64_t i0 = base + offset;
      const uint64_t i1 = i0 + stride;
      const amplitude a0 = state_[i0];
      const amplitude a1 = state_[i1];
      state_[i0] = matrix[0] * a0 + matrix[1] * a1;
      state_[i1] = matrix[2] * a0 + matrix[3] * a1;
    }
  }
}

void statevector_simulator::naive_apply_controlled_single_qubit(
    const std::array<amplitude, 4>& matrix, std::span<const uint32_t> controls, uint32_t qubit )
{
  const uint64_t control_mask = control_mask_of( controls );
  const uint64_t stride = uint64_t{ 1 } << qubit;
  for ( uint64_t base = 0u; base < state_.size(); base += 2u * stride )
  {
    for ( uint64_t offset = 0u; offset < stride; ++offset )
    {
      const uint64_t i0 = base + offset;
      if ( ( i0 & control_mask ) != control_mask )
      {
        continue;
      }
      const uint64_t i1 = i0 + stride;
      const amplitude a0 = state_[i0];
      const amplitude a1 = state_[i1];
      state_[i0] = matrix[0] * a0 + matrix[1] * a1;
      state_[i1] = matrix[2] * a0 + matrix[3] * a1;
    }
  }
}

void statevector_simulator::naive_apply_swap( uint32_t a, uint32_t b )
{
  const uint64_t bit_a = uint64_t{ 1 } << a;
  const uint64_t bit_b = uint64_t{ 1 } << b;
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    const bool has_a = ( i & bit_a ) != 0u;
    const bool has_b = ( i & bit_b ) != 0u;
    if ( has_a && !has_b )
    {
      std::swap( state_[i], state_[( i ^ bit_a ) | bit_b] );
    }
  }
}

void statevector_simulator::naive_apply_gate( const qgate_view& gate )
{
  switch ( gate.kind )
  {
  case gate_kind::h:
  case gate_kind::x:
  case gate_kind::y:
  case gate_kind::z:
  case gate_kind::s:
  case gate_kind::sdg:
  case gate_kind::t:
  case gate_kind::tdg:
  case gate_kind::rx:
  case gate_kind::ry:
  case gate_kind::rz:
    naive_apply_single_qubit( single_qubit_matrix( gate.kind, gate.angle ), gate.target );
    break;
  case gate_kind::cx:
  case gate_kind::mcx:
    naive_apply_controlled_single_qubit( single_qubit_matrix( gate_kind::x, 0.0 ), gate.controls,
                                         gate.target );
    break;
  case gate_kind::cz:
  case gate_kind::mcz:
    naive_apply_controlled_single_qubit( single_qubit_matrix( gate_kind::z, 0.0 ), gate.controls,
                                         gate.target );
    break;
  case gate_kind::swap:
    naive_apply_swap( gate.target, gate.target2 );
    break;
  case gate_kind::measure:
    measurements_.emplace_back( gate.target, measure_qubit( gate.target ) );
    break;
  case gate_kind::barrier:
    break;
  case gate_kind::global_phase:
  {
    const amplitude phase = std::exp( amplitude( 0.0, gate.angle ) );
    for ( auto& amp : state_ )
    {
      amp *= phase;
    }
    break;
  }
  }
}

/* ---- measurement ---- */

bool statevector_simulator::measure_qubit( uint32_t qubit )
{
  const double p_one = sim::prob_one( state_.data(), state_.size(), qubit );
  std::uniform_real_distribution<double> dist( 0.0, 1.0 );
  const bool outcome = dist( rng_ ) < p_one;
  const double renorm = 1.0 / std::sqrt( outcome ? p_one : 1.0 - p_one );
  sim::collapse( state_.data(), state_.size(), qubit, outcome, renorm );
  return outcome;
}

/* ---- execution ---- */

void statevector_simulator::run( const qcircuit& circuit )
{
  if ( circuit.num_qubits() != num_qubits_ )
  {
    throw std::invalid_argument( "statevector_simulator::run: qubit count mismatch" );
  }
  run_program( sim::compile( circuit ) );
}

void statevector_simulator::run_naive( const qcircuit& circuit )
{
  if ( circuit.num_qubits() != num_qubits_ )
  {
    throw std::invalid_argument( "statevector_simulator::run_naive: qubit count mismatch" );
  }
  for ( const auto& gate : circuit.gates() )
  {
    naive_apply_gate( gate );
  }
}

void statevector_simulator::run_program( const sim::program& prog )
{
  if ( prog.num_qubits != num_qubits_ )
  {
    throw std::invalid_argument( "statevector_simulator::run_program: qubit count mismatch" );
  }
  QDA_TRACE_SPAN_NAMED( run_span, "sim.run" );
  int64_t tiled_segments = 0;
  for ( const auto& seg : prog.segments )
  {
    tiled_segments += seg.tiled ? 1 : 0;
  }
  run_span.attr( "qubits", static_cast<int64_t>( num_qubits_ ) )
      .attr( "ops", static_cast<int64_t>( prog.ops.size() ) )
      .attr( "source_gates", prog.source_gate_count )
      .attr( "isa", sim::isa_name( sim::active_isa() ) )
      .attr( "tiled_segments", tiled_segments );
  sim::execute( prog, state_.data(), state_.size(), [this]( uint32_t qubit ) {
    const bool outcome = measure_qubit( qubit );
    measurements_.emplace_back( qubit, outcome );
    return outcome;
  } );
}

/* ---- observables ---- */

double statevector_simulator::probability_of( uint64_t basis_state ) const
{
  if ( basis_state >= state_.size() )
  {
    throw std::invalid_argument( "statevector_simulator::probability_of: out of range" );
  }
  return std::norm( state_[basis_state] );
}

std::vector<double> statevector_simulator::probabilities() const
{
  std::vector<double> result( state_.size() );
  sim::probabilities_into( state_.data(), state_.size(), result.data() );
  return result;
}

uint64_t statevector_simulator::sample( std::mt19937_64& rng ) const
{
  std::uniform_real_distribution<double> dist( 0.0, 1.0 );
  double threshold = dist( rng );
  for ( uint64_t i = 0u; i < state_.size(); ++i )
  {
    threshold -= std::norm( state_[i] );
    if ( threshold <= 0.0 )
    {
      return i;
    }
  }
  return state_.size() - 1u;
}

double statevector_simulator::norm() const
{
  return sim::norm_sum( state_.data(), state_.size() );
}

/* ---- multi-shot sampling ---- */

shot_sampler::shot_sampler( const statevector_simulator& simulator )
    : cumulative_( simulator.state().size() )
{
  const auto& state = simulator.state();
  double running = 0.0;
  for ( uint64_t i = 0u; i < state.size(); ++i )
  {
    running += std::norm( state[i] );
    cumulative_[i] = running;
  }
}

uint64_t shot_sampler::sample( std::mt19937_64& rng ) const
{
  std::uniform_real_distribution<double> dist( 0.0, 1.0 );
  const double threshold = dist( rng );
  const auto it = std::lower_bound( cumulative_.begin(), cumulative_.end(), threshold );
  if ( it == cumulative_.end() )
  {
    return cumulative_.size() - 1u;
  }
  return static_cast<uint64_t>( it - cumulative_.begin() );
}

std::map<uint64_t, uint64_t> sample_counts( const qcircuit& circuit, uint64_t shots, uint64_t seed )
{
  QDA_TRACE_SPAN_NAMED( sample_span, "sim.sample_counts" );
  sample_span.attr( "shots", shots );
  /* compile the unitary part straight from the gate view (no circuit
   * copy); measures are recorded, not executed */
  std::vector<uint32_t> measured;
  const auto prog = sim::compile_unitary_prefix( circuit, measured );
  if ( measured.empty() )
  {
    throw std::invalid_argument( "sample_counts: circuit has no measurements" );
  }

  statevector_simulator simulator( circuit.num_qubits() );
  simulator.run_program( prog );

  const shot_sampler sampler( simulator );
  std::mt19937_64 rng( seed );
  std::map<uint64_t, uint64_t> counts;
  for ( uint64_t shot = 0u; shot < shots; ++shot )
  {
    const uint64_t full = sampler.sample( rng );
    uint64_t key = 0u;
    for ( uint32_t i = 0u; i < measured.size() && i < 64u; ++i )
    {
      if ( ( full >> measured[i] ) & 1u )
      {
        key |= uint64_t{ 1 } << i;
      }
    }
    ++counts[key];
  }
  return counts;
}

std::string format_outcome( uint64_t outcome, uint32_t num_bits )
{
  std::string result( num_bits, '0' );
  for ( uint32_t i = 0u; i < num_bits; ++i )
  {
    if ( ( outcome >> i ) & 1u )
    {
      result[num_bits - 1u - i] = '1';
    }
  }
  return result;
}

} // namespace qda
