/*! \file simd_avx2.cpp
 *  \brief AVX2+FMA primitive table (2 amplitudes per 256-bit vector).
 *
 *  This TU is always part of the build; without QDA_SIMD_BUILD_AVX2
 *  (set by CMake when -mavx2 -mfma are accepted) it compiles to a stub
 *  returning nullptr.  Scalar tails replicate the vector-lane rounding
 *  exactly (std::fma compiles to vfmadd here) so any chunk split across
 *  threads lands on the same bits.
 */
#include "simulator/simd.hpp"

#if defined( QDA_SIMD_BUILD_AVX2 ) && ( defined( __x86_64__ ) || defined( __i386__ ) )

#include <cmath>
#include <immintrin.h>

namespace qda::sim
{

namespace
{

/* Interleaved-complex coefficient: broadcast real part plus the
 * sign-alternated imaginary part, so x*w is two fmadds with no
 * fmaddsub sign surprises when accumulating. */
struct coeff
{
  __m256d re;
  __m256d im_alt;
  double wr;
  double wi;
};

inline coeff make_coeff( amplitude w ) noexcept
{
  coeff c;
  c.wr = w.real();
  c.wi = w.imag();
  c.re = _mm256_set1_pd( c.wr );
  c.im_alt = _mm256_setr_pd( -c.wi, c.wi, -c.wi, c.wi );
  return c;
}

inline __m256d swap_reim( __m256d x ) noexcept
{
  return _mm256_permute_pd( x, 0x5 );
}

/* [x0*w, x1*w] for two interleaved complex amplitudes. */
inline __m256d cmul( __m256d x, const coeff& w ) noexcept
{
  return _mm256_fmadd_pd( swap_reim( x ), w.im_alt, _mm256_mul_pd( x, w.re ) );
}

/* acc + x*w, matching cmul's rounding structure. */
inline __m256d cmul_acc( __m256d acc, __m256d x, const coeff& w ) noexcept
{
  return _mm256_fmadd_pd( swap_reim( x ), w.im_alt, _mm256_fmadd_pd( x, w.re, acc ) );
}

/* Scalar replicas of the vector lanes -- same FMA placement, same bits. */
inline amplitude cmul1( amplitude x, const coeff& w ) noexcept
{
  const double xr = x.real(), xi = x.imag();
  return { std::fma( xi, -w.wi, xr * w.wr ), std::fma( xr, w.wi, xi * w.wr ) };
}

inline amplitude cmul_acc1( amplitude acc, amplitude x, const coeff& w ) noexcept
{
  const double xr = x.real(), xi = x.imag();
  return { std::fma( xi, -w.wi, std::fma( xr, w.wr, acc.real() ) ),
           std::fma( xr, w.wi, std::fma( xi, w.wr, acc.imag() ) ) };
}

void scale_avx2( amplitude* amp, uint64_t n, amplitude w )
{
  const coeff c = make_coeff( w );
  double* p = reinterpret_cast<double*>( amp );
  uint64_t i = 0u;
  for ( ; i + 2u <= n; i += 2u )
  {
    _mm256_storeu_pd( p + 2u * i, cmul( _mm256_loadu_pd( p + 2u * i ), c ) );
  }
  for ( ; i < n; ++i )
  {
    amp[i] = cmul1( amp[i], c );
  }
}

void scale_pairs_avx2( amplitude* amp, uint64_t n_pairs, amplitude p0, amplitude p1 )
{
  /* one vector holds exactly one (even, odd) pair */
  const __m256d re = _mm256_setr_pd( p0.real(), p0.real(), p1.real(), p1.real() );
  const __m256d im_alt = _mm256_setr_pd( -p0.imag(), p0.imag(), -p1.imag(), p1.imag() );
  double* p = reinterpret_cast<double*>( amp );
  for ( uint64_t i = 0u; i < n_pairs; ++i )
  {
    const __m256d x = _mm256_loadu_pd( p + 4u * i );
    _mm256_storeu_pd( p + 4u * i,
                      _mm256_fmadd_pd( swap_reim( x ), im_alt, _mm256_mul_pd( x, re ) ) );
  }
}

void pair_2x2_avx2( amplitude* lo, amplitude* hi, uint64_t n, const amplitude* m )
{
  const coeff c0 = make_coeff( m[0] ), c1 = make_coeff( m[1] );
  const coeff c2 = make_coeff( m[2] ), c3 = make_coeff( m[3] );
  double* plo = reinterpret_cast<double*>( lo );
  double* phi = reinterpret_cast<double*>( hi );
  uint64_t i = 0u;
  for ( ; i + 2u <= n; i += 2u )
  {
    const __m256d a0 = _mm256_loadu_pd( plo + 2u * i );
    const __m256d a1 = _mm256_loadu_pd( phi + 2u * i );
    _mm256_storeu_pd( plo + 2u * i, cmul_acc( cmul( a0, c0 ), a1, c1 ) );
    _mm256_storeu_pd( phi + 2u * i, cmul_acc( cmul( a0, c2 ), a1, c3 ) );
  }
  for ( ; i < n; ++i )
  {
    const amplitude a0 = lo[i];
    const amplitude a1 = hi[i];
    lo[i] = cmul_acc1( cmul1( a0, c0 ), a1, c1 );
    hi[i] = cmul_acc1( cmul1( a0, c2 ), a1, c3 );
  }
}

void pair_2x2_interleaved_avx2( amplitude* amp, uint64_t n_pairs, const amplitude* m )
{
  /* one vector = one (a0, a1) pair; low 128 computes a0' with (m0, m1),
   * high 128 computes a1' with (m3, m2) against the half-swapped copy */
  const __m256d re_a = _mm256_setr_pd( m[0].real(), m[0].real(), m[3].real(), m[3].real() );
  const __m256d im_a =
      _mm256_setr_pd( -m[0].imag(), m[0].imag(), -m[3].imag(), m[3].imag() );
  const __m256d re_b = _mm256_setr_pd( m[1].real(), m[1].real(), m[2].real(), m[2].real() );
  const __m256d im_b =
      _mm256_setr_pd( -m[1].imag(), m[1].imag(), -m[2].imag(), m[2].imag() );
  double* p = reinterpret_cast<double*>( amp );
  for ( uint64_t i = 0u; i < n_pairs; ++i )
  {
    const __m256d x = _mm256_loadu_pd( p + 4u * i );
    const __m256d y = _mm256_permute2f128_pd( x, x, 0x01 );
    const __m256d t = _mm256_fmadd_pd( swap_reim( x ), im_a, _mm256_mul_pd( x, re_a ) );
    const __m256d r =
        _mm256_fmadd_pd( swap_reim( y ), im_b, _mm256_fmadd_pd( y, re_b, t ) );
    _mm256_storeu_pd( p + 4u * i, r );
  }
}

void pair_antidiag_avx2( amplitude* lo, amplitude* hi, uint64_t n, amplitude m01,
                         amplitude m10 )
{
  const coeff c01 = make_coeff( m01 ), c10 = make_coeff( m10 );
  double* plo = reinterpret_cast<double*>( lo );
  double* phi = reinterpret_cast<double*>( hi );
  uint64_t i = 0u;
  for ( ; i + 2u <= n; i += 2u )
  {
    const __m256d a0 = _mm256_loadu_pd( plo + 2u * i );
    const __m256d a1 = _mm256_loadu_pd( phi + 2u * i );
    _mm256_storeu_pd( plo + 2u * i, cmul( a1, c01 ) );
    _mm256_storeu_pd( phi + 2u * i, cmul( a0, c10 ) );
  }
  for ( ; i < n; ++i )
  {
    const amplitude a0 = lo[i];
    lo[i] = cmul1( hi[i], c01 );
    hi[i] = cmul1( a0, c10 );
  }
}

void swap_ranges_avx2( amplitude* a, amplitude* b, uint64_t n )
{
  double* pa = reinterpret_cast<double*>( a );
  double* pb = reinterpret_cast<double*>( b );
  uint64_t i = 0u;
  for ( ; i + 2u <= n; i += 2u )
  {
    const __m256d va = _mm256_loadu_pd( pa + 2u * i );
    const __m256d vb = _mm256_loadu_pd( pb + 2u * i );
    _mm256_storeu_pd( pa + 2u * i, vb );
    _mm256_storeu_pd( pb + 2u * i, va );
  }
  for ( ; i < n; ++i )
  {
    const amplitude tmp = a[i];
    a[i] = b[i];
    b[i] = tmp;
  }
}

void swap_adjacent_avx2( amplitude* amp, uint64_t n_pairs )
{
  double* p = reinterpret_cast<double*>( amp );
  for ( uint64_t i = 0u; i < n_pairs; ++i )
  {
    const __m256d x = _mm256_loadu_pd( p + 4u * i );
    _mm256_storeu_pd( p + 4u * i, _mm256_permute2f128_pd( x, x, 0x01 ) );
  }
}

/* One block, out-of-place: the generic fallback of the batch below. */
void matvec_avx2( amplitude* out, const amplitude* cols, const amplitude* in, uint64_t bs )
{
  double* po = reinterpret_cast<double*>( out );
  uint64_t r = 0u;
  for ( ; r + 2u <= bs; r += 2u )
  {
    _mm256_storeu_pd( po + 2u * r, _mm256_setzero_pd() );
  }
  for ( ; r < bs; ++r )
  {
    out[r] = amplitude{ 0.0 };
  }
  for ( uint64_t c = 0u; c < bs; ++c )
  {
    const coeff w = make_coeff( in[c] );
    const double* pc = reinterpret_cast<const double*>( cols + c * bs );
    uint64_t rr = 0u;
    for ( ; rr + 2u <= bs; rr += 2u )
    {
      const __m256d acc = _mm256_loadu_pd( po + 2u * rr );
      const __m256d x = _mm256_loadu_pd( pc + 2u * rr );
      _mm256_storeu_pd( po + 2u * rr, cmul_acc( acc, x, w ) );
    }
    for ( ; rr < bs; ++rr )
    {
      out[rr] = cmul_acc1( out[rr], cols[c * bs + rr], w );
    }
  }
}

/*! Small dense blocks (4 or 8 amplitudes = VPG vectors per group): the
 *  reim-swapped columns are precomputed once so the inner loop is pure
 *  broadcast + FMA -- same per-element formula as cmul_acc, so results
 *  match the generic path's rounding exactly. */
template<int VPG>
void matvec_batch_small_avx2( amplitude* amp, const amplitude* cols, uint64_t groups )
{
  const uint64_t bs = 2u * VPG;
  alignas( 32 ) double sw[2u * 64u];
  const double* pc = reinterpret_cast<const double*>( cols );
  for ( uint64_t i = 0u; i + 4u <= 2u * bs * bs; i += 4u )
  {
    _mm256_store_pd( sw + i, swap_reim( _mm256_loadu_pd( pc + i ) ) );
  }
  const __m256d sign_even = _mm256_setr_pd( -0.0, 0.0, -0.0, 0.0 );
  double* p = reinterpret_cast<double*>( amp );
  for ( uint64_t g = 0u; g < groups; ++g, p += 2u * bs )
  {
    __m256d acc[VPG];
    for ( int v = 0; v < VPG; ++v )
    {
      acc[v] = _mm256_setzero_pd();
    }
    for ( uint64_t c = 0u; c < bs; ++c )
    {
      const __m256d wre = _mm256_set1_pd( p[2u * c] );
      const __m256d wim_alt = _mm256_xor_pd( _mm256_set1_pd( p[2u * c + 1u] ), sign_even );
      for ( int v = 0; v < VPG; ++v )
      {
        const __m256d col = _mm256_loadu_pd( pc + 2u * c * bs + 4u * v );
        const __m256d col_sw = _mm256_load_pd( sw + 2u * c * bs + 4u * v );
        acc[v] = _mm256_fmadd_pd( col_sw, wim_alt, _mm256_fmadd_pd( col, wre, acc[v] ) );
      }
    }
    for ( int v = 0; v < VPG; ++v )
    {
      _mm256_storeu_pd( p + 4u * v, acc[v] );
    }
  }
}

void matvec_batch_avx2( amplitude* amp, const amplitude* cols, uint64_t bs, uint64_t groups )
{
  if ( bs == 4u )
  {
    matvec_batch_small_avx2<2>( amp, cols, groups );
    return;
  }
  if ( bs == 8u )
  {
    matvec_batch_small_avx2<4>( amp, cols, groups );
    return;
  }
  alignas( 32 ) amplitude tmp[uint64_t{ 1 } << 10u];
  for ( uint64_t g = 0u; g < groups; ++g )
  {
    amplitude* grp = amp + g * bs;
    double* pg = reinterpret_cast<double*>( grp );
    double* pt = reinterpret_cast<double*>( tmp );
    uint64_t i = 0u;
    for ( ; i + 2u <= bs; i += 2u )
    {
      _mm256_store_pd( pt + 2u * i, _mm256_loadu_pd( pg + 2u * i ) );
    }
    for ( ; i < bs; ++i )
    {
      tmp[i] = grp[i];
    }
    matvec_avx2( grp, cols, tmp, bs );
  }
}

/*! BS strided streams, no staging copies: all BS inputs are loaded
 *  before any output is stored, coefficients broadcast from the cols
 *  memory (L1-hot, 1 KiB at most).  Same per-element FMA formula as the
 *  batch path, so any chunking of `n` is bit-identical. */
template<int BS>
void block_streams_impl_avx2( amplitude* const* streams, uint64_t n, const amplitude* cols )
{
  const double* pm = reinterpret_cast<const double*>( cols );
  const __m256d sign_even = _mm256_setr_pd( -0.0, 0.0, -0.0, 0.0 );
  uint64_t j = 0u;
  for ( ; j + 2u <= n; j += 2u )
  {
    __m256d x[BS], xs[BS];
    for ( int c = 0; c < BS; ++c )
    {
      x[c] = _mm256_loadu_pd( reinterpret_cast<const double*>( streams[c] + j ) );
      xs[c] = swap_reim( x[c] );
    }
    for ( int r = 0; r < BS; ++r )
    {
      __m256d acc = _mm256_setzero_pd();
      for ( int c = 0; c < BS; ++c )
      {
        const __m256d wre = _mm256_set1_pd( pm[2 * ( c * BS + r )] );
        const __m256d wim_alt =
            _mm256_xor_pd( _mm256_set1_pd( pm[2 * ( c * BS + r ) + 1] ), sign_even );
        acc = _mm256_fmadd_pd( xs[c], wim_alt, _mm256_fmadd_pd( x[c], wre, acc ) );
      }
      _mm256_storeu_pd( reinterpret_cast<double*>( streams[r] + j ), acc );
    }
  }
  for ( ; j < n; ++j )
  {
    amplitude x1[BS];
    for ( int c = 0; c < BS; ++c )
    {
      x1[c] = streams[c][j];
    }
    for ( int r = 0; r < BS; ++r )
    {
      amplitude acc{ 0.0 };
      for ( int c = 0; c < BS; ++c )
      {
        acc = cmul_acc1( acc, x1[c], make_coeff( cols[c * BS + r] ) );
      }
      streams[r][j] = acc;
    }
  }
}

void block_streams_avx2( amplitude* const* streams, uint64_t bs, uint64_t n,
                         const amplitude* cols )
{
  if ( bs == 4u )
  {
    block_streams_impl_avx2<4>( streams, n, cols );
    return;
  }
  if ( bs == 8u )
  {
    block_streams_impl_avx2<8>( streams, n, cols );
    return;
  }
  /* other sizes: scalar sweep with the vector-lane FMA formula */
  amplitude x[8];
  for ( uint64_t j = 0u; j < n; ++j )
  {
    for ( uint64_t c = 0u; c < bs; ++c )
    {
      x[c] = streams[c][j];
    }
    for ( uint64_t r = 0u; r < bs; ++r )
    {
      amplitude acc{ 0.0 };
      for ( uint64_t c = 0u; c < bs; ++c )
      {
        acc = cmul_acc1( acc, x[c], make_coeff( cols[c * bs + r] ) );
      }
      streams[r][j] = acc;
    }
  }
}

void diag_table_avx2( amplitude* amp, uint64_t base, uint64_t n, const uint32_t* qubits,
                      uint32_t k, const amplitude* table )
{
  const uint64_t stretch_len = uint64_t{ 1 } << qubits[0];
  const uint64_t end = base + n;
  uint64_t i = base;
  while ( i < end )
  {
    uint64_t key = 0u;
    for ( uint32_t j = 0u; j < k; ++j )
    {
      key |= ( ( i >> qubits[j] ) & 1u ) << j;
    }
    const uint64_t stretch = std::min( end, ( i | ( stretch_len - 1u ) ) + 1u );
    scale_avx2( amp + ( i - base ), stretch - i, table[key] );
    i = stretch;
  }
}

const simd_ops avx2_table = {
  isa_kind::avx2,   scale_avx2,        scale_pairs_avx2,  pair_2x2_avx2,
  pair_2x2_interleaved_avx2, pair_antidiag_avx2, swap_ranges_avx2, swap_adjacent_avx2,
  matvec_batch_avx2, block_streams_avx2, diag_table_avx2,
};

} // namespace

namespace detail
{

const simd_ops* avx2_ops() noexcept
{
  return &avx2_table;
}

} // namespace detail

} // namespace qda::sim

#else

namespace qda::sim::detail
{

const simd_ops* avx2_ops() noexcept
{
  return nullptr;
}

} // namespace qda::sim::detail

#endif
