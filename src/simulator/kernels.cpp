#include "simulator/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace qda::sim
{

namespace
{

/*! Below this many iterations a kernel runs inline: thread hand-off
 *  costs more than the work itself on small state vectors. */
constexpr uint64_t min_parallel_work = uint64_t{ 1 } << 16u;

/*! Fixed reduction block: partials are always computed over the same
 *  index blocks, so sums do not depend on the thread count. */
constexpr uint64_t reduction_block = uint64_t{ 1 } << 15u;

/*! True while this thread executes inside a parallel_for body. */
thread_local bool inside_parallel_region = false;

uint32_t env_thread_count()
{
  const char* env = std::getenv( "QDA_SIM_THREADS" );
  if ( env != nullptr )
  {
    const long parsed = std::strtol( env, nullptr, 10 );
    if ( parsed > 0 )
    {
      return static_cast<uint32_t>( std::min( parsed, 256l ) );
    }
  }
  const uint32_t hardware = std::thread::hardware_concurrency();
  return hardware == 0u ? 1u : hardware;
}

/*! \brief Persistent worker pool (workers = threads - 1; the calling
 *         thread always participates).  One job runs at a time.
 */
class worker_pool
{
public:
  static worker_pool& instance()
  {
    static worker_pool pool;
    return pool;
  }

  uint32_t threads()
  {
    std::lock_guard<std::mutex> lock( config_mutex_ );
    return resolved_count();
  }

  void set_threads( uint32_t count )
  {
    std::lock_guard<std::mutex> lock( config_mutex_ );
    override_ = count;
  }

  void run( uint64_t n, const std::function<void( uint64_t, uint64_t )>& body,
            uint64_t work_per_item )
  {
    uint32_t threads = 0u;
    {
      std::lock_guard<std::mutex> lock( config_mutex_ );
      threads = resolved_count();
    }
    /* nested parallel_for (e.g. per-column kernels inside a parallel
     * column sweep) runs inline: the pool is not re-entrant */
    if ( threads <= 1u || n * work_per_item < min_parallel_work || inside_parallel_region )
    {
      body( 0u, n );
      return;
    }
    std::lock_guard<std::mutex> job_lock( job_mutex_ ); /* one job at a time */
    ensure_workers( threads - 1u );

    /* contiguous chunks; over-decompose 4x for load balance, with a
     * minimum chunk worth ~2^12 units of work */
    const uint64_t min_chunk =
        std::max<uint64_t>( 1u, ( uint64_t{ 1 } << 12u ) / std::max<uint64_t>( work_per_item, 1u ) );
    const uint64_t chunk =
        std::max<uint64_t>( ( n + threads * 4u - 1u ) / ( threads * 4u ), min_chunk );
    chunks_.clear();
    for ( uint64_t begin = 0u; begin < n; begin += chunk )
    {
      chunks_.emplace_back( begin, std::min( n, begin + chunk ) );
    }
    next_chunk_.store( 0u, std::memory_order_relaxed );

    {
      std::unique_lock<std::mutex> lock( state_mutex_ );
      body_ = &body;
      active_ = workers_.size();
      ++epoch_;
      start_cv_.notify_all();
    }
    inside_parallel_region = true;
    process( body ); /* the caller is a worker too; never throws */
    inside_parallel_region = false;
    std::exception_ptr pending;
    {
      std::unique_lock<std::mutex> lock( state_mutex_ );
      done_cv_.wait( lock, [this] { return active_ == 0u; } );
      body_ = nullptr;
      pending = std::exchange( pending_exception_, nullptr );
    }
    if ( pending )
    {
      std::rethrow_exception( pending );
    }
  }

private:
  worker_pool() = default;

  ~worker_pool() { shutdown(); }

  uint32_t resolved_count()
  {
    if ( override_ != 0u )
    {
      return override_;
    }
    if ( auto_count_ == 0u )
    {
      auto_count_ = env_thread_count();
    }
    return auto_count_;
  }

  void ensure_workers( uint32_t desired )
  {
    if ( workers_.size() == desired )
    {
      return;
    }
    shutdown();
    std::lock_guard<std::mutex> lock( state_mutex_ );
    stop_ = false;
    workers_.reserve( desired );
    for ( uint32_t i = 0u; i < desired; ++i )
    {
      workers_.emplace_back( [this] { worker_loop(); } );
    }
  }

  void shutdown()
  {
    {
      std::lock_guard<std::mutex> lock( state_mutex_ );
      if ( workers_.empty() )
      {
        return;
      }
      stop_ = true;
      start_cv_.notify_all();
    }
    for ( auto& worker : workers_ )
    {
      worker.join();
    }
    workers_.clear();
  }

  void worker_loop()
  {
    inside_parallel_region = true; /* workers never orchestrate nested jobs */
    uint64_t seen_epoch = 0u;
    std::unique_lock<std::mutex> lock( state_mutex_ );
    for ( ;; )
    {
      start_cv_.wait( lock, [&] { return stop_ || epoch_ != seen_epoch; } );
      if ( stop_ )
      {
        return;
      }
      seen_epoch = epoch_;
      const auto* body = body_;
      lock.unlock();
      process( *body );
      lock.lock();
      if ( --active_ == 0u )
      {
        done_cv_.notify_all();
      }
    }
  }

  void process( const std::function<void( uint64_t, uint64_t )>& body )
  {
    for ( ;; )
    {
      const size_t index = next_chunk_.fetch_add( 1u, std::memory_order_relaxed );
      if ( index >= chunks_.size() )
      {
        return;
      }
      try
      {
        body( chunks_[index].first, chunks_[index].second );
      }
      catch ( ... )
      {
        /* record the first exception, drain the remaining chunks, and
         * let run() rethrow after every worker has stopped -- a throw
         * must never unwind through a worker (std::terminate) or leave
         * the job running while the caller's frame dies */
        {
          std::lock_guard<std::mutex> lock( state_mutex_ );
          if ( !pending_exception_ )
          {
            pending_exception_ = std::current_exception();
          }
        }
        next_chunk_.store( chunks_.size(), std::memory_order_relaxed );
        return;
      }
    }
  }

  std::mutex config_mutex_;
  uint32_t override_ = 0u;
  uint32_t auto_count_ = 0u;

  std::mutex job_mutex_;
  std::mutex state_mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::vector<std::pair<uint64_t, uint64_t>> chunks_;
  std::atomic<size_t> next_chunk_{ 0u };
  const std::function<void( uint64_t, uint64_t )>* body_ = nullptr;
  std::exception_ptr pending_exception_;
  size_t active_ = 0u;
  uint64_t epoch_ = 0u;
  bool stop_ = false;
};

/*! Applies `f(start, length)` over maximal CONTIGUOUS runs of the
 *  indices with the given set/clear bits: all free bits below the
 *  lowest fixed bit form one run, so the hot inner loops stay
 *  vectorizable; the masked carry only advances between runs.
 *  Parallelized by matching-element count, not run count. */
template <typename F>
void for_each_masked_run( uint64_t dim, uint64_t set_mask, uint64_t clear_mask, F&& f )
{
  const uint64_t fixed = set_mask | clear_mask;
  if ( fixed == 0u )
  {
    parallel_for( dim, [&]( uint64_t begin, uint64_t end ) { f( begin, end - begin ); } );
    return;
  }
  const uint64_t run = uint64_t{ 1 } << std::countr_zero( fixed );
  /* enumerate run starts: low run bits pinned to zero */
  const masked_range range( dim, set_mask, clear_mask | ( run - 1u ) );
  const uint64_t total = range.count * run; /* matching elements */
  if ( total == 0u )
  {
    return;
  }
  if ( run == 1u )
  {
    /* bit 0 is fixed: no contiguous runs, skip the run bookkeeping */
    parallel_for( total, [&]( uint64_t begin, uint64_t end ) {
      uint64_t index = range.nth( begin );
      for ( uint64_t j = begin; j < end; ++j )
      {
        f( index, 1u );
        index = range.next( index );
      }
    } );
    return;
  }
  parallel_for( total, [&]( uint64_t begin, uint64_t end ) {
    uint64_t offset = begin % run;
    uint64_t base = range.nth( begin / run );
    uint64_t remaining = end - begin;
    while ( remaining != 0u )
    {
      const uint64_t length = std::min( run - offset, remaining );
      f( base + offset, length );
      remaining -= length;
      offset = 0u;
      base = range.next( base );
    }
  } );
}

/*! Dense fused-block matvec with a compile-time block size so the
 *  gather / matvec / scatter fully unrolls. */
template <uint32_t K>
void fused_kq_impl( amplitude* state, uint64_t dim, uint64_t support,
                    const uint64_t* offsets, const amplitude* matrix )
{
  constexpr uint64_t block = uint64_t{ 1 } << K;
  if ( support == block - 1u )
  {
    /* support is the low K qubits: groups are contiguous in memory */
    parallel_for( dim >> K, [&]( uint64_t begin, uint64_t end ) {
      for ( uint64_t group = begin; group < end; ++group )
      {
        amplitude* amps = state + ( group << K );
        amplitude gathered[block];
        for ( uint64_t c = 0u; c < block; ++c )
        {
          gathered[c] = amps[c];
        }
        for ( uint64_t r = 0u; r < block; ++r )
        {
          amplitude acc{ 0.0 };
          const amplitude* row = matrix + r * block;
          for ( uint64_t c = 0u; c < block; ++c )
          {
            acc += row[c] * gathered[c];
          }
          amps[r] = acc;
        }
      }
    } );
    return;
  }
  for_each_masked_run( dim, 0u, support, [&]( uint64_t start, uint64_t length ) {
    for ( uint64_t base = start; base < start + length; ++base )
    {
      amplitude gathered[block];
      for ( uint64_t c = 0u; c < block; ++c )
      {
        gathered[c] = state[base | offsets[c]];
      }
      for ( uint64_t r = 0u; r < block; ++r )
      {
        amplitude acc{ 0.0 };
        const amplitude* row = matrix + r * block;
        for ( uint64_t c = 0u; c < block; ++c )
        {
          acc += row[c] * gathered[c];
        }
        state[base | offsets[r]] = acc;
      }
    }
  } );
}

void fused_kq_generic( amplitude* state, uint64_t dim, uint64_t support, uint32_t k,
                       const uint64_t* offsets, const amplitude* matrix )
{
  const uint64_t block = uint64_t{ 1 } << k;
  for_each_masked_run( dim, 0u, support, [&]( uint64_t start, uint64_t length ) {
    for ( uint64_t base = start; base < start + length; ++base )
    {
      amplitude gathered[uint64_t{ 1 } << 10u];
      for ( uint64_t c = 0u; c < block; ++c )
      {
        gathered[c] = state[base | offsets[c]];
      }
      for ( uint64_t r = 0u; r < block; ++r )
      {
        amplitude acc{ 0.0 };
        const amplitude* row = matrix + r * block;
        for ( uint64_t c = 0u; c < block; ++c )
        {
          acc += row[c] * gathered[c];
        }
        state[base | offsets[r]] = acc;
      }
    }
  } );
}

} // namespace

uint32_t num_threads()
{
  return worker_pool::instance().threads();
}

void set_num_threads( uint32_t count )
{
  worker_pool::instance().set_threads( count );
}

void parallel_for( uint64_t n, const std::function<void( uint64_t, uint64_t )>& body,
                   uint64_t work_per_item )
{
  if ( n == 0u )
  {
    return;
  }
  worker_pool::instance().run( n, body, work_per_item );
}

double blocked_sum( uint64_t n, const std::function<double( uint64_t, uint64_t )>& block )
{
  if ( n == 0u )
  {
    return 0.0;
  }
  const uint64_t num_blocks = ( n + reduction_block - 1u ) / reduction_block;
  if ( num_blocks == 1u )
  {
    return block( 0u, n );
  }
  std::vector<double> partials( num_blocks );
  parallel_for(
      num_blocks,
      [&]( uint64_t begin, uint64_t end ) {
        for ( uint64_t b = begin; b < end; ++b )
        {
          partials[b] = block( b * reduction_block, std::min( n, ( b + 1u ) * reduction_block ) );
        }
      },
      reduction_block );
  double total = 0.0;
  for ( const double partial : partials )
  {
    total += partial; /* fixed block order: thread-count independent */
  }
  return total;
}

void apply_1q( amplitude* state, uint64_t dim, uint32_t qubit,
               const std::array<amplitude, 4>& m )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  const amplitude m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
    /* local copies: keeps the coefficients in registers even when the
     * chunk body is compiled behind the std::function boundary */
    const amplitude w0 = m0, w1 = m1, w2 = m2, w3 = m3;
    amplitude* lo = state + start;
    amplitude* hi = lo + bit;
    for ( uint64_t i = 0u; i < length; ++i )
    {
      const amplitude a0 = lo[i];
      const amplitude a1 = hi[i];
      lo[i] = w0 * a0 + w1 * a1;
      hi[i] = w2 * a0 + w3 * a1;
    }
  } );
}

void apply_1q_diag( amplitude* state, uint64_t dim, uint32_t qubit, amplitude p0, amplitude p1 )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  if ( p0 == amplitude{ 1.0 } )
  {
    for_each_masked_run( dim, bit, 0u, [&]( uint64_t start, uint64_t length ) {
      const amplitude w = p1;
      amplitude* amp = state + start;
      for ( uint64_t i = 0u; i < length; ++i )
      {
        amp[i] *= w;
      }
    } );
    return;
  }
  if ( p1 == amplitude{ 1.0 } )
  {
    for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
      const amplitude w = p0;
      amplitude* amp = state + start;
      for ( uint64_t i = 0u; i < length; ++i )
      {
        amp[i] *= w;
      }
    } );
    return;
  }
  /* both phases non-trivial (e.g. rz): one pass over the pairs */
  for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
    const amplitude w0 = p0, w1 = p1;
    amplitude* lo = state + start;
    amplitude* hi = lo + bit;
    for ( uint64_t i = 0u; i < length; ++i )
    {
      lo[i] *= w0;
      hi[i] *= w1;
    }
  } );
}

void apply_1q_antidiag( amplitude* state, uint64_t dim, uint32_t qubit, amplitude p01,
                        amplitude p10 )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
    const amplitude w01 = p01, w10 = p10;
    amplitude* lo = state + start;
    amplitude* hi = lo + bit;
    for ( uint64_t i = 0u; i < length; ++i )
    {
      const amplitude a0 = lo[i];
      lo[i] = w01 * hi[i];
      hi[i] = w10 * a0;
    }
  } );
}

void apply_phase_masked( amplitude* state, uint64_t dim, uint64_t mask, amplitude phase )
{
  for_each_masked_run( dim, mask, 0u, [&]( uint64_t start, uint64_t length ) {
    const amplitude w = phase;
    amplitude* amp = state + start;
    for ( uint64_t i = 0u; i < length; ++i )
    {
      amp[i] *= w;
    }
  } );
}

void apply_mcx( amplitude* state, uint64_t dim, uint64_t control_mask, uint32_t target )
{
  const uint64_t bit = uint64_t{ 1 } << target;
  for_each_masked_run( dim, control_mask, bit, [&]( uint64_t start, uint64_t length ) {
    amplitude* lo = state + start;
    amplitude* hi = lo + bit;
    for ( uint64_t i = 0u; i < length; ++i )
    {
      std::swap( lo[i], hi[i] );
    }
  } );
}

void apply_mc1q( amplitude* state, uint64_t dim, uint64_t control_mask, uint32_t target,
                 const std::array<amplitude, 4>& m )
{
  const uint64_t bit = uint64_t{ 1 } << target;
  const amplitude m0 = m[0], m1 = m[1], m2 = m[2], m3 = m[3];
  for_each_masked_run( dim, control_mask, bit, [&]( uint64_t start, uint64_t length ) {
    const amplitude w0 = m0, w1 = m1, w2 = m2, w3 = m3;
    amplitude* lo = state + start;
    amplitude* hi = lo + bit;
    for ( uint64_t i = 0u; i < length; ++i )
    {
      const amplitude a0 = lo[i];
      const amplitude a1 = hi[i];
      lo[i] = w0 * a0 + w1 * a1;
      hi[i] = w2 * a0 + w3 * a1;
    }
  } );
}

void apply_swap( amplitude* state, uint64_t dim, uint32_t a, uint32_t b )
{
  const uint64_t bit_a = uint64_t{ 1 } << a;
  const uint64_t bit_b = uint64_t{ 1 } << b;
  const uint64_t both = bit_a | bit_b;
  for_each_masked_run( dim, bit_a, bit_b, [&]( uint64_t start, uint64_t length ) {
    for ( uint64_t i = start; i < start + length; ++i )
    {
      std::swap( state[i], state[i ^ both] );
    }
  } );
}

void apply_scalar( amplitude* state, uint64_t dim, amplitude factor )
{
  parallel_for( dim, [&]( uint64_t begin, uint64_t end ) {
    const amplitude w = factor;
    for ( uint64_t i = begin; i < end; ++i )
    {
      state[i] *= w;
    }
  } );
}

void apply_diag_table( amplitude* state, uint64_t dim, std::span<const uint32_t> qubits,
                       std::span<const amplitude> table )
{
  const uint32_t k = static_cast<uint32_t>( qubits.size() );
  /* contiguous runs below the lowest involved qubit share one key base */
  const uint64_t low_bit = uint64_t{ 1 } << qubits.front();
  for_each_masked_run( dim, 0u, 0u, [&]( uint64_t begin, uint64_t length ) {
    const uint64_t end = begin + length;
    uint64_t i = begin;
    while ( i < end )
    {
      uint64_t key = 0u;
      for ( uint32_t j = 0u; j < k; ++j )
      {
        key |= ( ( i >> qubits[j] ) & 1u ) << j;
      }
      const amplitude phase = table[key];
      const uint64_t stretch = std::min( end, ( i | ( low_bit - 1u ) ) + 1u );
      for ( ; i < stretch; ++i )
      {
        state[i] *= phase;
      }
    }
  } );
}

void apply_fused_kq( amplitude* state, uint64_t dim, std::span<const uint32_t> qubits,
                     std::span<const amplitude> matrix )
{
  const uint32_t k = static_cast<uint32_t>( qubits.size() );
  if ( k > 10u )
  {
    /* the gather buffers hold at most 2^10 amplitudes */
    throw std::invalid_argument( "apply_fused_kq: dense blocks support at most 10 qubits" );
  }
  const uint64_t block = uint64_t{ 1 } << k;
  uint64_t support = 0u;
  std::vector<uint64_t> offsets( block, 0u );
  for ( uint32_t j = 0u; j < k; ++j )
  {
    support |= uint64_t{ 1 } << qubits[j];
  }
  for ( uint64_t local = 0u; local < block; ++local )
  {
    uint64_t offset = 0u;
    for ( uint32_t j = 0u; j < k; ++j )
    {
      if ( ( local >> j ) & 1u )
      {
        offset |= uint64_t{ 1 } << qubits[j];
      }
    }
    offsets[local] = offset;
  }
  switch ( k )
  {
  case 1u: fused_kq_impl<1u>( state, dim, support, offsets.data(), matrix.data() ); break;
  case 2u: fused_kq_impl<2u>( state, dim, support, offsets.data(), matrix.data() ); break;
  case 3u: fused_kq_impl<3u>( state, dim, support, offsets.data(), matrix.data() ); break;
  case 4u: fused_kq_impl<4u>( state, dim, support, offsets.data(), matrix.data() ); break;
  case 5u: fused_kq_impl<5u>( state, dim, support, offsets.data(), matrix.data() ); break;
  default: fused_kq_generic( state, dim, support, k, offsets.data(), matrix.data() ); break;
  }
}

double norm_sum( const amplitude* state, uint64_t dim )
{
  return blocked_sum( dim, [&]( uint64_t begin, uint64_t end ) {
    double sum = 0.0;
    for ( uint64_t i = begin; i < end; ++i )
    {
      sum += std::norm( state[i] );
    }
    return sum;
  } );
}

double prob_one( const amplitude* state, uint64_t dim, uint32_t qubit )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  const masked_range range( dim, bit, 0u );
  return blocked_sum( range.count, [&]( uint64_t begin, uint64_t end ) {
    double sum = 0.0;
    uint64_t index = range.nth( begin );
    for ( uint64_t j = begin; j < end; ++j )
    {
      sum += std::norm( state[index] );
      index = range.next( index );
    }
    return sum;
  } );
}

void collapse( amplitude* state, uint64_t dim, uint32_t qubit, bool outcome, double renorm )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  /* keep the outcome half (rescaled), zero the other half */
  for_each_masked_run( dim, outcome ? bit : 0u, outcome ? 0u : bit,
                       [&]( uint64_t start, uint64_t length ) {
                         const double w = renorm;
                         amplitude* amp = state + start;
                         for ( uint64_t i = 0u; i < length; ++i )
                         {
                           amp[i] *= w;
                         }
                       } );
  for_each_masked_run( dim, outcome ? 0u : bit, outcome ? bit : 0u,
                       [&]( uint64_t start, uint64_t length ) {
                         amplitude* amp = state + start;
                         for ( uint64_t i = 0u; i < length; ++i )
                         {
                           amp[i] = 0.0;
                         }
                       } );
}

void probabilities_into( const amplitude* state, uint64_t dim, double* out )
{
  parallel_for( dim, [&]( uint64_t begin, uint64_t end ) {
    for ( uint64_t i = begin; i < end; ++i )
    {
      out[i] = std::norm( state[i] );
    }
  } );
}

} // namespace qda::sim
