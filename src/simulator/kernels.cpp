#include "simulator/kernels.hpp"

#include "simulator/simd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace qda::sim
{

namespace
{

/*! Below this many iterations a kernel runs inline: thread hand-off
 *  costs more than the work itself on small state vectors. */
constexpr uint64_t min_parallel_work = uint64_t{ 1 } << 16u;

/*! Fixed reduction block: partials are always computed over the same
 *  index blocks, so sums do not depend on the thread count. */
constexpr uint64_t reduction_block = uint64_t{ 1 } << 15u;

/*! True while this thread executes inside a parallel_for body. */
thread_local bool inside_parallel_region = false;

uint32_t env_thread_count()
{
  const char* env = std::getenv( "QDA_SIM_THREADS" );
  if ( env != nullptr )
  {
    const long parsed = std::strtol( env, nullptr, 10 );
    if ( parsed > 0 )
    {
      return static_cast<uint32_t>( std::min( parsed, 256l ) );
    }
  }
  const uint32_t hardware = std::thread::hardware_concurrency();
  return hardware == 0u ? 1u : hardware;
}

/*! \brief Persistent worker pool (workers = threads - 1; the calling
 *         thread always participates).  One job runs at a time.
 */
class worker_pool
{
public:
  static worker_pool& instance()
  {
    static worker_pool pool;
    return pool;
  }

  uint32_t threads()
  {
    std::lock_guard<std::mutex> lock( config_mutex_ );
    return resolved_count();
  }

  void set_threads( uint32_t count )
  {
    std::lock_guard<std::mutex> lock( config_mutex_ );
    override_ = count;
  }

  void run( uint64_t n, const std::function<void( uint64_t, uint64_t )>& body,
            uint64_t work_per_item )
  {
    uint32_t threads = 0u;
    {
      std::lock_guard<std::mutex> lock( config_mutex_ );
      threads = resolved_count();
    }
    /* nested parallel_for (e.g. per-column kernels inside a parallel
     * column sweep) runs inline: the pool is not re-entrant */
    if ( threads <= 1u || n * work_per_item < min_parallel_work || inside_parallel_region )
    {
      body( 0u, n );
      return;
    }
    std::lock_guard<std::mutex> job_lock( job_mutex_ ); /* one job at a time */
    ensure_workers( threads - 1u );

    /* contiguous chunks; over-decompose 4x for load balance, with a
     * minimum chunk worth ~2^12 units of work */
    const uint64_t min_chunk =
        std::max<uint64_t>( 1u, ( uint64_t{ 1 } << 12u ) / std::max<uint64_t>( work_per_item, 1u ) );
    const uint64_t chunk =
        std::max<uint64_t>( ( n + threads * 4u - 1u ) / ( threads * 4u ), min_chunk );
    chunks_.clear();
    for ( uint64_t begin = 0u; begin < n; begin += chunk )
    {
      chunks_.emplace_back( begin, std::min( n, begin + chunk ) );
    }
    next_chunk_.store( 0u, std::memory_order_relaxed );

    {
      std::unique_lock<std::mutex> lock( state_mutex_ );
      body_ = &body;
      active_ = workers_.size();
      ++epoch_;
      start_cv_.notify_all();
    }
    inside_parallel_region = true;
    process( body ); /* the caller is a worker too; never throws */
    inside_parallel_region = false;
    std::exception_ptr pending;
    {
      std::unique_lock<std::mutex> lock( state_mutex_ );
      done_cv_.wait( lock, [this] { return active_ == 0u; } );
      body_ = nullptr;
      pending = std::exchange( pending_exception_, nullptr );
    }
    if ( pending )
    {
      std::rethrow_exception( pending );
    }
  }

private:
  worker_pool() = default;

  ~worker_pool() { shutdown(); }

  uint32_t resolved_count()
  {
    if ( override_ != 0u )
    {
      return override_;
    }
    if ( auto_count_ == 0u )
    {
      auto_count_ = env_thread_count();
    }
    return auto_count_;
  }

  void ensure_workers( uint32_t desired )
  {
    if ( workers_.size() == desired )
    {
      return;
    }
    shutdown();
    std::lock_guard<std::mutex> lock( state_mutex_ );
    stop_ = false;
    workers_.reserve( desired );
    for ( uint32_t i = 0u; i < desired; ++i )
    {
      workers_.emplace_back( [this] { worker_loop(); } );
    }
  }

  void shutdown()
  {
    {
      std::lock_guard<std::mutex> lock( state_mutex_ );
      if ( workers_.empty() )
      {
        return;
      }
      stop_ = true;
      start_cv_.notify_all();
    }
    for ( auto& worker : workers_ )
    {
      worker.join();
    }
    workers_.clear();
  }

  void worker_loop()
  {
    inside_parallel_region = true; /* workers never orchestrate nested jobs */
    uint64_t seen_epoch = 0u;
    std::unique_lock<std::mutex> lock( state_mutex_ );
    for ( ;; )
    {
      start_cv_.wait( lock, [&] { return stop_ || epoch_ != seen_epoch; } );
      if ( stop_ )
      {
        return;
      }
      seen_epoch = epoch_;
      const auto* body = body_;
      lock.unlock();
      process( *body );
      lock.lock();
      if ( --active_ == 0u )
      {
        done_cv_.notify_all();
      }
    }
  }

  void process( const std::function<void( uint64_t, uint64_t )>& body )
  {
    for ( ;; )
    {
      const size_t index = next_chunk_.fetch_add( 1u, std::memory_order_relaxed );
      if ( index >= chunks_.size() )
      {
        return;
      }
      try
      {
        body( chunks_[index].first, chunks_[index].second );
      }
      catch ( ... )
      {
        /* record the first exception, drain the remaining chunks, and
         * let run() rethrow after every worker has stopped -- a throw
         * must never unwind through a worker (std::terminate) or leave
         * the job running while the caller's frame dies */
        {
          std::lock_guard<std::mutex> lock( state_mutex_ );
          if ( !pending_exception_ )
          {
            pending_exception_ = std::current_exception();
          }
        }
        next_chunk_.store( chunks_.size(), std::memory_order_relaxed );
        return;
      }
    }
  }

  std::mutex config_mutex_;
  uint32_t override_ = 0u;
  uint32_t auto_count_ = 0u;

  std::mutex job_mutex_;
  std::mutex state_mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::vector<std::pair<uint64_t, uint64_t>> chunks_;
  std::atomic<size_t> next_chunk_{ 0u };
  const std::function<void( uint64_t, uint64_t )>* body_ = nullptr;
  std::exception_ptr pending_exception_;
  size_t active_ = 0u;
  uint64_t epoch_ = 0u;
  bool stop_ = false;
};

/*! Applies `f(start, length)` over maximal CONTIGUOUS runs of the
 *  indices with the given set/clear bits: all free bits below the
 *  lowest fixed bit form one run, so the hot inner loops stay
 *  vectorizable; the masked carry only advances between runs.
 *  Parallelized by matching-element count, not run count. */
template <typename F>
void for_each_masked_run( uint64_t dim, uint64_t set_mask, uint64_t clear_mask, F&& f )
{
  const uint64_t fixed = set_mask | clear_mask;
  if ( fixed == 0u )
  {
    parallel_for( dim, [&]( uint64_t begin, uint64_t end ) { f( begin, end - begin ); } );
    return;
  }
  const uint64_t run = uint64_t{ 1 } << std::countr_zero( fixed );
  /* enumerate run starts: low run bits pinned to zero */
  const masked_range range( dim, set_mask, clear_mask | ( run - 1u ) );
  const uint64_t total = range.count * run; /* matching elements */
  if ( total == 0u )
  {
    return;
  }
  if ( run == 1u )
  {
    /* bit 0 is fixed: no contiguous runs, skip the run bookkeeping */
    parallel_for( total, [&]( uint64_t begin, uint64_t end ) {
      uint64_t index = range.nth( begin );
      for ( uint64_t j = begin; j < end; ++j )
      {
        f( index, 1u );
        index = range.next( index );
      }
    } );
    return;
  }
  parallel_for( total, [&]( uint64_t begin, uint64_t end ) {
    uint64_t offset = begin % run;
    uint64_t base = range.nth( begin / run );
    uint64_t remaining = end - begin;
    while ( remaining != 0u )
    {
      const uint64_t length = std::min( run - offset, remaining );
      f( base + offset, length );
      remaining -= length;
      offset = 0u;
      base = range.next( base );
    }
  } );
}

/*! Dense fused-block apply.  `cols` is the column-major transpose of
 *  the caller's row-major matrix, so the matvec primitive streams one
 *  contiguous column per input coefficient. */
void fused_kq_groups( amplitude* state, uint64_t dim, uint64_t support, uint32_t k,
                      const uint64_t* offsets, const amplitude* cols )
{
  const uint64_t block = uint64_t{ 1 } << k;
  const simd_ops& ops = active_ops();
  if ( support == block - 1u )
  {
    /* support is the low k qubits: groups are contiguous in memory and
     * the whole chunk goes to the batched primitive in one call */
    parallel_for(
        dim >> k,
        [&]( uint64_t begin, uint64_t end ) {
          ops.matvec_batch( state + ( begin << k ), cols, block, end - begin );
        },
        block );
    return;
  }
  /* scattered support with long runs of group bases (support clear of
   * the low bits): feed the strided amplitude streams to the primitive
   * directly -- no staging copies.  Stream c is contiguous across the
   * run because group bases within a run are consecutive.  The path
   * choice depends only on (block, support), never on chunk bounds, so
   * thread splits stay bit-identical. */
  const uint64_t run = uint64_t{ 1 } << std::countr_zero( support );
  if ( ( block == 4u || block == 8u ) && run >= 4u )
  {
    for_each_masked_run( dim, 0u, support, [&]( uint64_t start, uint64_t length ) {
      amplitude* streams[8];
      for ( uint64_t c = 0u; c < block; ++c )
      {
        streams[c] = state + start + offsets[c];
      }
      ops.block_streams( streams, block, length, cols );
    } );
    return;
  }
  /* short runs or wide blocks: stage a batch of groups contiguously,
   * transform them in place with one primitive call, scatter back.
   * Groups are batched ACROSS runs so the primitive call amortizes even
   * when the support pins the low bits (runs of one or two groups). */
  constexpr uint64_t staging_amps = uint64_t{ 1 } << 11u;
  const uint64_t groups_per_batch = std::max<uint64_t>( staging_amps >> k, 1u );
  const masked_range bases( dim, 0u, support );
  parallel_for( bases.count, [&]( uint64_t begin, uint64_t end ) {
    alignas( 64 ) amplitude staging[staging_amps];
    uint64_t group_base[staging_amps >> 1u];
    uint64_t index = bases.nth( begin );
    uint64_t remaining = end - begin;
    while ( remaining != 0u )
    {
      const uint64_t batch = std::min( groups_per_batch, remaining );
      amplitude* dst = staging;
      for ( uint64_t g = 0u; g < batch; ++g, dst += block )
      {
        group_base[g] = index;
        const amplitude* src = state + index;
        for ( uint64_t c = 0u; c < block; ++c )
        {
          dst[c] = src[offsets[c]];
        }
        index = bases.next( index );
      }
      ops.matvec_batch( staging, cols, block, batch );
      const amplitude* out = staging;
      for ( uint64_t g = 0u; g < batch; ++g, out += block )
      {
        amplitude* dst_state = state + group_base[g];
        for ( uint64_t r = 0u; r < block; ++r )
        {
          dst_state[offsets[r]] = out[r];
        }
      }
      remaining -= batch;
    }
  } );
}

} // namespace

uint32_t num_threads()
{
  return worker_pool::instance().threads();
}

void set_num_threads( uint32_t count )
{
  worker_pool::instance().set_threads( count );
}

void parallel_for( uint64_t n, const std::function<void( uint64_t, uint64_t )>& body,
                   uint64_t work_per_item )
{
  if ( n == 0u )
  {
    return;
  }
  worker_pool::instance().run( n, body, work_per_item );
}

double blocked_sum( uint64_t n, const std::function<double( uint64_t, uint64_t )>& block )
{
  if ( n == 0u )
  {
    return 0.0;
  }
  const uint64_t num_blocks = ( n + reduction_block - 1u ) / reduction_block;
  if ( num_blocks == 1u )
  {
    return block( 0u, n );
  }
  std::vector<double> partials( num_blocks );
  parallel_for(
      num_blocks,
      [&]( uint64_t begin, uint64_t end ) {
        for ( uint64_t b = begin; b < end; ++b )
        {
          partials[b] = block( b * reduction_block, std::min( n, ( b + 1u ) * reduction_block ) );
        }
      },
      reduction_block );
  double total = 0.0;
  for ( const double partial : partials )
  {
    total += partial; /* fixed block order: thread-count independent */
  }
  return total;
}

void apply_1q( amplitude* state, uint64_t dim, uint32_t qubit,
               const std::array<amplitude, 4>& m )
{
  const simd_ops& ops = active_ops();
  if ( qubit == 0u )
  {
    /* pairs are adjacent in memory: chunk at pair granularity */
    parallel_for(
        dim >> 1u,
        [&]( uint64_t begin, uint64_t end ) {
          ops.pair_2x2_interleaved( state + 2u * begin, end - begin, m.data() );
        },
        2u );
    return;
  }
  const uint64_t bit = uint64_t{ 1 } << qubit;
  for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
    ops.pair_2x2( state + start, state + start + bit, length, m.data() );
  } );
}

void apply_1q_diag( amplitude* state, uint64_t dim, uint32_t qubit, amplitude p0, amplitude p1 )
{
  const simd_ops& ops = active_ops();
  if ( qubit == 0u )
  {
    /* adjacent pairs: one contiguous pass, even/odd lanes carry p0/p1 */
    parallel_for(
        dim >> 1u,
        [&]( uint64_t begin, uint64_t end ) {
          ops.scale_pairs( state + 2u * begin, end - begin, p0, p1 );
        },
        2u );
    return;
  }
  const uint64_t bit = uint64_t{ 1 } << qubit;
  if ( p0 == amplitude{ 1.0 } )
  {
    for_each_masked_run( dim, bit, 0u, [&]( uint64_t start, uint64_t length ) {
      ops.scale( state + start, length, p1 );
    } );
    return;
  }
  if ( p1 == amplitude{ 1.0 } )
  {
    for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
      ops.scale( state + start, length, p0 );
    } );
    return;
  }
  /* both phases non-trivial (e.g. rz): one pass over the pairs */
  for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
    ops.scale( state + start, length, p0 );
    ops.scale( state + start + bit, length, p1 );
  } );
}

void apply_1q_antidiag( amplitude* state, uint64_t dim, uint32_t qubit, amplitude p01,
                        amplitude p10 )
{
  const simd_ops& ops = active_ops();
  if ( qubit == 0u )
  {
    const amplitude m[4] = { amplitude{ 0.0 }, p01, p10, amplitude{ 0.0 } };
    parallel_for(
        dim >> 1u,
        [&]( uint64_t begin, uint64_t end ) {
          ops.pair_2x2_interleaved( state + 2u * begin, end - begin, m );
        },
        2u );
    return;
  }
  const uint64_t bit = uint64_t{ 1 } << qubit;
  for_each_masked_run( dim, 0u, bit, [&]( uint64_t start, uint64_t length ) {
    ops.pair_antidiag( state + start, state + start + bit, length, p01, p10 );
  } );
}

void apply_phase_masked( amplitude* state, uint64_t dim, uint64_t mask, amplitude phase )
{
  const simd_ops& ops = active_ops();
  if ( mask & 1u )
  {
    /* bit 0 in the mask: iterate pair space (even base indices) so the
     * inner pass stays contiguous; the even lane multiplies by one */
    for_each_masked_run( dim >> 1u, mask >> 1u, 0u, [&]( uint64_t start, uint64_t length ) {
      ops.scale_pairs( state + 2u * start, length, amplitude{ 1.0 }, phase );
    } );
    return;
  }
  for_each_masked_run( dim, mask, 0u, [&]( uint64_t start, uint64_t length ) {
    ops.scale( state + start, length, phase );
  } );
}

void apply_mcx( amplitude* state, uint64_t dim, uint64_t control_mask, uint32_t target )
{
  const simd_ops& ops = active_ops();
  if ( target == 0u )
  {
    for_each_masked_run( dim >> 1u, control_mask >> 1u, 0u,
                         [&]( uint64_t start, uint64_t length ) {
                           ops.swap_adjacent( state + 2u * start, length );
                         } );
    return;
  }
  const uint64_t bit = uint64_t{ 1 } << target;
  for_each_masked_run( dim, control_mask, bit, [&]( uint64_t start, uint64_t length ) {
    ops.swap_ranges( state + start, state + start + bit, length );
  } );
}

void apply_mc1q( amplitude* state, uint64_t dim, uint64_t control_mask, uint32_t target,
                 const std::array<amplitude, 4>& m )
{
  const simd_ops& ops = active_ops();
  if ( target == 0u )
  {
    for_each_masked_run( dim >> 1u, control_mask >> 1u, 0u,
                         [&]( uint64_t start, uint64_t length ) {
                           ops.pair_2x2_interleaved( state + 2u * start, length, m.data() );
                         } );
    return;
  }
  const uint64_t bit = uint64_t{ 1 } << target;
  for_each_masked_run( dim, control_mask, bit, [&]( uint64_t start, uint64_t length ) {
    ops.pair_2x2( state + start, state + start + bit, length, m.data() );
  } );
}

void apply_swap( amplitude* state, uint64_t dim, uint32_t a, uint32_t b )
{
  const uint64_t bit_a = uint64_t{ 1 } << a;
  const uint64_t bit_b = uint64_t{ 1 } << b;
  const uint64_t both = bit_a | bit_b;
  const simd_ops& ops = active_ops();
  /* runs vary only bits below min(a, b), so the XOR partner of a run is
   * itself a contiguous run at a fixed offset */
  for_each_masked_run( dim, bit_a, bit_b, [&]( uint64_t start, uint64_t length ) {
    ops.swap_ranges( state + start, state + ( start ^ both ), length );
  } );
}

void apply_scalar( amplitude* state, uint64_t dim, amplitude factor )
{
  const simd_ops& ops = active_ops();
  parallel_for( dim, [&]( uint64_t begin, uint64_t end ) {
    ops.scale( state + begin, end - begin, factor );
  } );
}

void apply_diag_table( amplitude* state, uint64_t dim, std::span<const uint32_t> qubits,
                       std::span<const amplitude> table )
{
  const uint32_t k = static_cast<uint32_t>( qubits.size() );
  const simd_ops& ops = active_ops();
  /* the primitive exploits constant keys on stretches below qubits[0] */
  parallel_for( dim, [&]( uint64_t begin, uint64_t end ) {
    ops.diag_table( state + begin, begin, end - begin, qubits.data(), k, table.data() );
  } );
}

void apply_fused_kq( amplitude* state, uint64_t dim, std::span<const uint32_t> qubits,
                     std::span<const amplitude> matrix )
{
  const uint32_t k = static_cast<uint32_t>( qubits.size() );
  if ( k > 10u )
  {
    /* the gather buffers hold at most 2^10 amplitudes */
    throw std::invalid_argument( "apply_fused_kq: dense blocks support at most 10 qubits" );
  }
  const uint64_t block = uint64_t{ 1 } << k;
  uint64_t support = 0u;
  std::vector<uint64_t> offsets( block, 0u );
  for ( uint32_t j = 0u; j < k; ++j )
  {
    support |= uint64_t{ 1 } << qubits[j];
  }
  for ( uint64_t local = 0u; local < block; ++local )
  {
    uint64_t offset = 0u;
    for ( uint32_t j = 0u; j < k; ++j )
    {
      if ( ( local >> j ) & 1u )
      {
        offset |= uint64_t{ 1 } << qubits[j];
      }
    }
    offsets[local] = offset;
  }
  /* transpose once per call: the matvec primitive wants column-major */
  std::vector<amplitude> cols( block * block );
  for ( uint64_t r = 0u; r < block; ++r )
  {
    for ( uint64_t c = 0u; c < block; ++c )
    {
      cols[c * block + r] = matrix[r * block + c];
    }
  }
  fused_kq_groups( state, dim, support, k, offsets.data(), cols.data() );
}

double norm_sum( const amplitude* state, uint64_t dim )
{
  return blocked_sum( dim, [&]( uint64_t begin, uint64_t end ) {
    double sum = 0.0;
    for ( uint64_t i = begin; i < end; ++i )
    {
      sum += std::norm( state[i] );
    }
    return sum;
  } );
}

double prob_one( const amplitude* state, uint64_t dim, uint32_t qubit )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  const masked_range range( dim, bit, 0u );
  return blocked_sum( range.count, [&]( uint64_t begin, uint64_t end ) {
    double sum = 0.0;
    uint64_t index = range.nth( begin );
    for ( uint64_t j = begin; j < end; ++j )
    {
      sum += std::norm( state[index] );
      index = range.next( index );
    }
    return sum;
  } );
}

void collapse( amplitude* state, uint64_t dim, uint32_t qubit, bool outcome, double renorm )
{
  const uint64_t bit = uint64_t{ 1 } << qubit;
  /* keep the outcome half (rescaled), zero the other half */
  for_each_masked_run( dim, outcome ? bit : 0u, outcome ? 0u : bit,
                       [&]( uint64_t start, uint64_t length ) {
                         const double w = renorm;
                         amplitude* amp = state + start;
                         for ( uint64_t i = 0u; i < length; ++i )
                         {
                           amp[i] *= w;
                         }
                       } );
  for_each_masked_run( dim, outcome ? 0u : bit, outcome ? bit : 0u,
                       [&]( uint64_t start, uint64_t length ) {
                         amplitude* amp = state + start;
                         for ( uint64_t i = 0u; i < length; ++i )
                         {
                           amp[i] = 0.0;
                         }
                       } );
}

void probabilities_into( const amplitude* state, uint64_t dim, double* out )
{
  parallel_for( dim, [&]( uint64_t begin, uint64_t end ) {
    for ( uint64_t i = begin; i < end; ++i )
    {
      out[i] = std::norm( state[i] );
    }
  } );
}

} // namespace qda::sim
