/*! \file noise.hpp
 *  \brief Noisy device emulation: the synthetic IBM Quantum Experience.
 *
 *  The paper's Fig. 6 runs the compiled hidden shift circuit on the
 *  physical IBM QE chip (3 runs x 1024 shots) and observes the correct
 *  shift with probability ~0.63, the rest spread by device noise.  We
 *  have no chip, so this module substitutes a Monte-Carlo Pauli
 *  trajectory model with parameters calibrated to the published
 *  early-2018 error rates of the 5-qubit devices:
 *
 *    - depolarizing error after every 1-qubit gate   (~1e-3)
 *    - depolarizing error after every CNOT           (~2.5e-2)
 *    - classical readout flip per measured bit       (~4e-2)
 *
 *  Each shot samples an error pattern, evolves the state vector, and
 *  measures; histograms over shots reproduce the *shape* of Fig. 6.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <map>

namespace qda
{

/*! \brief Error rates of the Pauli trajectory model. */
struct noise_model
{
  double p_single = 0.001;  /*!< depolarizing probability after 1q gates */
  double p_two = 0.025;     /*!< depolarizing probability after 2q gates */
  double p_readout = 0.04;  /*!< per-bit readout flip probability */

  /*! \brief Calibration matching the early-2018 IBM QX4 5-qubit chip
   *         (per-gate CNOT error ~4.5e-2 and readout error ~7e-2 are at
   *         the pessimistic end of the published calibration data; they
   *         reproduce the paper's Fig. 6 success probability p ~ 0.63).
   */
  static noise_model ibm_qx4_early2018() { return noise_model{ 0.0015, 0.045, 0.07 }; }

  /*! \brief Noise-free model (for control experiments). */
  static noise_model ideal() { return noise_model{ 0.0, 0.0, 0.0 }; }
};

/*! \brief Runs `shots` Monte-Carlo trajectories of `circuit` under `model`
 *         and histograms the measured outcomes (bit i = i-th measure gate).
 */
std::map<uint64_t, uint64_t> sample_counts_noisy( const qcircuit& circuit,
                                                  const noise_model& model, uint64_t shots,
                                                  uint64_t seed = 1u );

} // namespace qda
