/*! \file simd_avx512.cpp
 *  \brief AVX-512F primitive table (4 amplitudes per 512-bit vector).
 *
 *  Same contract as simd_avx2.cpp: always compiled, stubs to nullptr
 *  without QDA_SIMD_BUILD_AVX512, and every scalar tail replicates the
 *  vector-lane FMA rounding so thread-chunk splits stay bit-identical.
 *  Only AVX-512F intrinsics are used (no VL/DQ dependence).
 */
#include "simulator/simd.hpp"

#if defined( QDA_SIMD_BUILD_AVX512 ) && ( defined( __x86_64__ ) || defined( __i386__ ) )

#include <cmath>
#include <immintrin.h>

namespace qda::sim
{

namespace
{

struct coeff
{
  __m512d re;
  __m512d im_alt;
  double wr;
  double wi;
};

inline coeff make_coeff( amplitude w ) noexcept
{
  coeff c;
  c.wr = w.real();
  c.wi = w.imag();
  c.re = _mm512_set1_pd( c.wr );
  c.im_alt = _mm512_setr_pd( -c.wi, c.wi, -c.wi, c.wi, -c.wi, c.wi, -c.wi, c.wi );
  return c;
}

inline __m512d swap_reim( __m512d x ) noexcept
{
  return _mm512_permute_pd( x, 0x55 );
}

/* swap the two 128-bit complex slots inside each 256-bit half */
inline __m512d swap_pairs( __m512d x ) noexcept
{
  return _mm512_shuffle_f64x2( x, x, _MM_SHUFFLE( 2, 3, 0, 1 ) );
}

inline __m512d cmul( __m512d x, const coeff& w ) noexcept
{
  return _mm512_fmadd_pd( swap_reim( x ), w.im_alt, _mm512_mul_pd( x, w.re ) );
}

inline __m512d cmul_acc( __m512d acc, __m512d x, const coeff& w ) noexcept
{
  return _mm512_fmadd_pd( swap_reim( x ), w.im_alt, _mm512_fmadd_pd( x, w.re, acc ) );
}

inline amplitude cmul1( amplitude x, const coeff& w ) noexcept
{
  const double xr = x.real(), xi = x.imag();
  return { std::fma( xi, -w.wi, xr * w.wr ), std::fma( xr, w.wi, xi * w.wr ) };
}

inline amplitude cmul_acc1( amplitude acc, amplitude x, const coeff& w ) noexcept
{
  const double xr = x.real(), xi = x.imag();
  return { std::fma( xi, -w.wi, std::fma( xr, w.wr, acc.real() ) ),
           std::fma( xr, w.wi, std::fma( xi, w.wr, acc.imag() ) ) };
}

void scale_avx512( amplitude* amp, uint64_t n, amplitude w )
{
  const coeff c = make_coeff( w );
  double* p = reinterpret_cast<double*>( amp );
  uint64_t i = 0u;
  for ( ; i + 4u <= n; i += 4u )
  {
    _mm512_storeu_pd( p + 2u * i, cmul( _mm512_loadu_pd( p + 2u * i ), c ) );
  }
  for ( ; i < n; ++i )
  {
    amp[i] = cmul1( amp[i], c );
  }
}

void scale_pairs_avx512( amplitude* amp, uint64_t n_pairs, amplitude p0, amplitude p1 )
{
  const __m512d re = _mm512_setr_pd( p0.real(), p0.real(), p1.real(), p1.real(), p0.real(),
                                     p0.real(), p1.real(), p1.real() );
  const __m512d im_alt = _mm512_setr_pd( -p0.imag(), p0.imag(), -p1.imag(), p1.imag(),
                                         -p0.imag(), p0.imag(), -p1.imag(), p1.imag() );
  const coeff c0 = make_coeff( p0 ), c1 = make_coeff( p1 );
  double* p = reinterpret_cast<double*>( amp );
  uint64_t i = 0u;
  for ( ; i + 2u <= n_pairs; i += 2u )
  {
    const __m512d x = _mm512_loadu_pd( p + 4u * i );
    _mm512_storeu_pd( p + 4u * i,
                      _mm512_fmadd_pd( swap_reim( x ), im_alt, _mm512_mul_pd( x, re ) ) );
  }
  for ( ; i < n_pairs; ++i )
  {
    amp[2u * i] = cmul1( amp[2u * i], c0 );
    amp[2u * i + 1u] = cmul1( amp[2u * i + 1u], c1 );
  }
}

void pair_2x2_avx512( amplitude* lo, amplitude* hi, uint64_t n, const amplitude* m )
{
  const coeff c0 = make_coeff( m[0] ), c1 = make_coeff( m[1] );
  const coeff c2 = make_coeff( m[2] ), c3 = make_coeff( m[3] );
  double* plo = reinterpret_cast<double*>( lo );
  double* phi = reinterpret_cast<double*>( hi );
  uint64_t i = 0u;
  for ( ; i + 4u <= n; i += 4u )
  {
    const __m512d a0 = _mm512_loadu_pd( plo + 2u * i );
    const __m512d a1 = _mm512_loadu_pd( phi + 2u * i );
    _mm512_storeu_pd( plo + 2u * i, cmul_acc( cmul( a0, c0 ), a1, c1 ) );
    _mm512_storeu_pd( phi + 2u * i, cmul_acc( cmul( a0, c2 ), a1, c3 ) );
  }
  for ( ; i < n; ++i )
  {
    const amplitude a0 = lo[i];
    const amplitude a1 = hi[i];
    lo[i] = cmul_acc1( cmul1( a0, c0 ), a1, c1 );
    hi[i] = cmul_acc1( cmul1( a0, c2 ), a1, c3 );
  }
}

void pair_2x2_interleaved_avx512( amplitude* amp, uint64_t n_pairs, const amplitude* m )
{
  const __m512d re_a = _mm512_setr_pd( m[0].real(), m[0].real(), m[3].real(), m[3].real(),
                                       m[0].real(), m[0].real(), m[3].real(), m[3].real() );
  const __m512d im_a = _mm512_setr_pd( -m[0].imag(), m[0].imag(), -m[3].imag(), m[3].imag(),
                                       -m[0].imag(), m[0].imag(), -m[3].imag(), m[3].imag() );
  const __m512d re_b = _mm512_setr_pd( m[1].real(), m[1].real(), m[2].real(), m[2].real(),
                                       m[1].real(), m[1].real(), m[2].real(), m[2].real() );
  const __m512d im_b = _mm512_setr_pd( -m[1].imag(), m[1].imag(), -m[2].imag(), m[2].imag(),
                                       -m[1].imag(), m[1].imag(), -m[2].imag(), m[2].imag() );
  const coeff c0 = make_coeff( m[0] ), c1 = make_coeff( m[1] );
  const coeff c2 = make_coeff( m[2] ), c3 = make_coeff( m[3] );
  double* p = reinterpret_cast<double*>( amp );
  uint64_t i = 0u;
  for ( ; i + 2u <= n_pairs; i += 2u )
  {
    const __m512d x = _mm512_loadu_pd( p + 4u * i );
    const __m512d y = swap_pairs( x );
    const __m512d t = _mm512_fmadd_pd( swap_reim( x ), im_a, _mm512_mul_pd( x, re_a ) );
    const __m512d r = _mm512_fmadd_pd( swap_reim( y ), im_b, _mm512_fmadd_pd( y, re_b, t ) );
    _mm512_storeu_pd( p + 4u * i, r );
  }
  for ( ; i < n_pairs; ++i )
  {
    const amplitude a0 = amp[2u * i];
    const amplitude a1 = amp[2u * i + 1u];
    amp[2u * i] = cmul_acc1( cmul1( a0, c0 ), a1, c1 );
    amp[2u * i + 1u] = cmul_acc1( cmul1( a1, c3 ), a0, c2 );
  }
}

void pair_antidiag_avx512( amplitude* lo, amplitude* hi, uint64_t n, amplitude m01,
                           amplitude m10 )
{
  const coeff c01 = make_coeff( m01 ), c10 = make_coeff( m10 );
  double* plo = reinterpret_cast<double*>( lo );
  double* phi = reinterpret_cast<double*>( hi );
  uint64_t i = 0u;
  for ( ; i + 4u <= n; i += 4u )
  {
    const __m512d a0 = _mm512_loadu_pd( plo + 2u * i );
    const __m512d a1 = _mm512_loadu_pd( phi + 2u * i );
    _mm512_storeu_pd( plo + 2u * i, cmul( a1, c01 ) );
    _mm512_storeu_pd( phi + 2u * i, cmul( a0, c10 ) );
  }
  for ( ; i < n; ++i )
  {
    const amplitude a0 = lo[i];
    lo[i] = cmul1( hi[i], c01 );
    hi[i] = cmul1( a0, c10 );
  }
}

void swap_ranges_avx512( amplitude* a, amplitude* b, uint64_t n )
{
  double* pa = reinterpret_cast<double*>( a );
  double* pb = reinterpret_cast<double*>( b );
  uint64_t i = 0u;
  for ( ; i + 4u <= n; i += 4u )
  {
    const __m512d va = _mm512_loadu_pd( pa + 2u * i );
    const __m512d vb = _mm512_loadu_pd( pb + 2u * i );
    _mm512_storeu_pd( pa + 2u * i, vb );
    _mm512_storeu_pd( pb + 2u * i, va );
  }
  for ( ; i < n; ++i )
  {
    const amplitude tmp = a[i];
    a[i] = b[i];
    b[i] = tmp;
  }
}

void swap_adjacent_avx512( amplitude* amp, uint64_t n_pairs )
{
  double* p = reinterpret_cast<double*>( amp );
  uint64_t i = 0u;
  for ( ; i + 2u <= n_pairs; i += 2u )
  {
    const __m512d x = _mm512_loadu_pd( p + 4u * i );
    _mm512_storeu_pd( p + 4u * i, swap_pairs( x ) );
  }
  for ( ; i < n_pairs; ++i )
  {
    const amplitude tmp = amp[2u * i];
    amp[2u * i] = amp[2u * i + 1u];
    amp[2u * i + 1u] = tmp;
  }
}

/* One block, out-of-place: the generic fallback of the batch below. */
void matvec_avx512( amplitude* out, const amplitude* cols, const amplitude* in, uint64_t bs )
{
  double* po = reinterpret_cast<double*>( out );
  uint64_t r = 0u;
  for ( ; r + 4u <= bs; r += 4u )
  {
    _mm512_storeu_pd( po + 2u * r, _mm512_setzero_pd() );
  }
  for ( ; r < bs; ++r )
  {
    out[r] = amplitude{ 0.0 };
  }
  for ( uint64_t c = 0u; c < bs; ++c )
  {
    const coeff w = make_coeff( in[c] );
    const double* pc = reinterpret_cast<const double*>( cols + c * bs );
    uint64_t rr = 0u;
    for ( ; rr + 4u <= bs; rr += 4u )
    {
      const __m512d acc = _mm512_loadu_pd( po + 2u * rr );
      const __m512d x = _mm512_loadu_pd( pc + 2u * rr );
      _mm512_storeu_pd( po + 2u * rr, cmul_acc( acc, x, w ) );
    }
    for ( ; rr < bs; ++rr )
    {
      out[rr] = cmul_acc1( out[rr], cols[c * bs + rr], w );
    }
  }
}

/*! Small dense blocks (4 or 8 amplitudes = VPG vectors per group): the
 *  reim-swapped columns are precomputed once so the inner loop is pure
 *  broadcast + FMA -- same per-element formula as cmul_acc, so results
 *  match the generic path's rounding exactly. */
template<int VPG>
void matvec_batch_small_avx512( amplitude* amp, const amplitude* cols, uint64_t groups )
{
  const uint64_t bs = 4u * VPG;
  alignas( 64 ) double sw[2u * 64u];
  const double* pc = reinterpret_cast<const double*>( cols );
  for ( uint64_t i = 0u; i + 8u <= 2u * bs * bs; i += 8u )
  {
    _mm512_store_pd( sw + i, swap_reim( _mm512_loadu_pd( pc + i ) ) );
  }
  const __m512d sign_even = _mm512_setr_pd( -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0 );
  double* p = reinterpret_cast<double*>( amp );
  for ( uint64_t g = 0u; g < groups; ++g, p += 2u * bs )
  {
    __m512d acc[VPG];
    for ( int v = 0; v < VPG; ++v )
    {
      acc[v] = _mm512_setzero_pd();
    }
    for ( uint64_t c = 0u; c < bs; ++c )
    {
      const __m512d wre = _mm512_set1_pd( p[2u * c] );
      /* xor via the integer domain: _mm512_xor_pd needs AVX-512DQ */
      const __m512d wim_alt = _mm512_castsi512_pd(
          _mm512_xor_si512( _mm512_castpd_si512( _mm512_set1_pd( p[2u * c + 1u] ) ),
                            _mm512_castpd_si512( sign_even ) ) );
      for ( int v = 0; v < VPG; ++v )
      {
        const __m512d col = _mm512_loadu_pd( pc + 2u * c * bs + 8u * v );
        const __m512d col_sw = _mm512_load_pd( sw + 2u * c * bs + 8u * v );
        acc[v] = _mm512_fmadd_pd( col_sw, wim_alt, _mm512_fmadd_pd( col, wre, acc[v] ) );
      }
    }
    for ( int v = 0; v < VPG; ++v )
    {
      _mm512_storeu_pd( p + 8u * v, acc[v] );
    }
  }
}

void matvec_batch_avx512( amplitude* amp, const amplitude* cols, uint64_t bs, uint64_t groups )
{
  if ( bs == 4u )
  {
    matvec_batch_small_avx512<1>( amp, cols, groups );
    return;
  }
  if ( bs == 8u )
  {
    matvec_batch_small_avx512<2>( amp, cols, groups );
    return;
  }
  alignas( 64 ) amplitude tmp[uint64_t{ 1 } << 10u];
  for ( uint64_t g = 0u; g < groups; ++g )
  {
    amplitude* grp = amp + g * bs;
    double* pg = reinterpret_cast<double*>( grp );
    double* pt = reinterpret_cast<double*>( tmp );
    uint64_t i = 0u;
    for ( ; i + 4u <= bs; i += 4u )
    {
      _mm512_store_pd( pt + 2u * i, _mm512_loadu_pd( pg + 2u * i ) );
    }
    for ( ; i < bs; ++i )
    {
      tmp[i] = grp[i];
    }
    matvec_avx512( grp, cols, tmp, bs );
  }
}

/*! BS strided streams, no staging copies: all BS inputs are loaded
 *  before any output is stored, coefficients broadcast from the cols
 *  memory (L1-hot, 1 KiB at most).  Same per-element FMA formula as the
 *  batch path, so any chunking of `n` is bit-identical. */
template<int BS>
void block_streams_impl_avx512( amplitude* const* streams, uint64_t n, const amplitude* cols )
{
  const double* pm = reinterpret_cast<const double*>( cols );
  const __m512d sign_even = _mm512_setr_pd( -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0 );
  uint64_t j = 0u;
  for ( ; j + 4u <= n; j += 4u )
  {
    __m512d x[BS], xs[BS];
    for ( int c = 0; c < BS; ++c )
    {
      x[c] = _mm512_loadu_pd( reinterpret_cast<const double*>( streams[c] + j ) );
      xs[c] = swap_reim( x[c] );
    }
    for ( int r = 0; r < BS; ++r )
    {
      __m512d acc = _mm512_setzero_pd();
      for ( int c = 0; c < BS; ++c )
      {
        const __m512d wre = _mm512_set1_pd( pm[2 * ( c * BS + r )] );
        const __m512d wim_alt = _mm512_castsi512_pd( _mm512_xor_si512(
            _mm512_castpd_si512( _mm512_set1_pd( pm[2 * ( c * BS + r ) + 1] ) ),
            _mm512_castpd_si512( sign_even ) ) );
        acc = _mm512_fmadd_pd( xs[c], wim_alt, _mm512_fmadd_pd( x[c], wre, acc ) );
      }
      _mm512_storeu_pd( reinterpret_cast<double*>( streams[r] + j ), acc );
    }
  }
  for ( ; j < n; ++j )
  {
    amplitude x1[BS];
    for ( int c = 0; c < BS; ++c )
    {
      x1[c] = streams[c][j];
    }
    for ( int r = 0; r < BS; ++r )
    {
      amplitude acc{ 0.0 };
      for ( int c = 0; c < BS; ++c )
      {
        acc = cmul_acc1( acc, x1[c], make_coeff( cols[c * BS + r] ) );
      }
      streams[r][j] = acc;
    }
  }
}

void block_streams_avx512( amplitude* const* streams, uint64_t bs, uint64_t n,
                           const amplitude* cols )
{
  if ( bs == 4u )
  {
    block_streams_impl_avx512<4>( streams, n, cols );
    return;
  }
  if ( bs == 8u )
  {
    block_streams_impl_avx512<8>( streams, n, cols );
    return;
  }
  /* other sizes: scalar sweep with the vector-lane FMA formula */
  amplitude x[8];
  for ( uint64_t j = 0u; j < n; ++j )
  {
    for ( uint64_t c = 0u; c < bs; ++c )
    {
      x[c] = streams[c][j];
    }
    for ( uint64_t r = 0u; r < bs; ++r )
    {
      amplitude acc{ 0.0 };
      for ( uint64_t c = 0u; c < bs; ++c )
      {
        acc = cmul_acc1( acc, x[c], make_coeff( cols[c * bs + r] ) );
      }
      streams[r][j] = acc;
    }
  }
}

void diag_table_avx512( amplitude* amp, uint64_t base, uint64_t n, const uint32_t* qubits,
                        uint32_t k, const amplitude* table )
{
  const uint64_t stretch_len = uint64_t{ 1 } << qubits[0];
  const uint64_t end = base + n;
  uint64_t i = base;
  while ( i < end )
  {
    uint64_t key = 0u;
    for ( uint32_t j = 0u; j < k; ++j )
    {
      key |= ( ( i >> qubits[j] ) & 1u ) << j;
    }
    const uint64_t stretch = std::min( end, ( i | ( stretch_len - 1u ) ) + 1u );
    scale_avx512( amp + ( i - base ), stretch - i, table[key] );
    i = stretch;
  }
}

const simd_ops avx512_table = {
  isa_kind::avx512,   scale_avx512,        scale_pairs_avx512,  pair_2x2_avx512,
  pair_2x2_interleaved_avx512, pair_antidiag_avx512, swap_ranges_avx512, swap_adjacent_avx512,
  matvec_batch_avx512, block_streams_avx512, diag_table_avx512,
};

} // namespace

namespace detail
{

const simd_ops* avx512_ops() noexcept
{
  return &avx512_table;
}

} // namespace detail

} // namespace qda::sim

#else

namespace qda::sim::detail
{

const simd_ops* avx512_ops() noexcept
{
  return nullptr;
}

} // namespace qda::sim::detail

#endif
