#include "error.hpp"

#include <new>

namespace qda
{

error_code classify_current_exception( error_code code_fallback )
{
  try
  {
    throw;
  }
  catch ( const error& typed )
  {
    return typed.code();
  }
  catch ( const std::bad_alloc& )
  {
    return error_code::resource_exhausted;
  }
  catch ( const std::invalid_argument& )
  {
    return error_code::spec_parse;
  }
  catch ( ... )
  {
    return code_fallback;
  }
}

} // namespace qda
