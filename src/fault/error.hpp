/*! \file error.hpp
 *  \brief Structured error taxonomy of the compilation service.
 *
 *  Every failure the pipeline or the compile server can produce maps to
 *  one stable `error_code`, so clients branch on the code instead of
 *  parsing what()-strings.  The taxonomy is a *mixin* hierarchy:
 *  `qda::error` is an abstract interface carrying the code, and the
 *  concrete error classes pair it with the standard exception type the
 *  pre-taxonomy code threw (`std::runtime_error`, `std::invalid_argument`,
 *  `std::logic_error`), so existing `catch` sites keep working while new
 *  code catches `const qda::error&` and reads `code()`.
 *
 *  `transient()` marks failures worth retrying (injected faults, queue
 *  overload); deterministic failures (malformed specs, resource
 *  ceilings, cancellation) are permanent.
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qda
{

/*! \brief Stable failure codes of the compilation service. */
enum class error_code : uint8_t
{
  ok = 0,             /*!< no error */
  spec_parse,         /*!< malformed or unresolvable pipeline spec */
  pass_failure,       /*!< a pass threw while executing */
  deadline_exceeded,  /*!< the job's deadline fired */
  resource_exhausted, /*!< a resource ceiling (gates, qubits, memory) was hit */
  cancelled,          /*!< the client cancelled the job */
  overloaded,         /*!< admission control rejected the job (queue full) */
  server_shutdown,    /*!< submitted after shutdown began */
  internal            /*!< unclassified failure */
};

/*! \brief Stable printable code name ("deadline_exceeded"). */
inline const char* error_code_name( error_code code ) noexcept
{
  switch ( code )
  {
  case error_code::ok: return "ok";
  case error_code::spec_parse: return "spec_parse";
  case error_code::pass_failure: return "pass_failure";
  case error_code::deadline_exceeded: return "deadline_exceeded";
  case error_code::resource_exhausted: return "resource_exhausted";
  case error_code::cancelled: return "cancelled";
  case error_code::overloaded: return "overloaded";
  case error_code::server_shutdown: return "server_shutdown";
  case error_code::internal: return "internal";
  }
  return "unknown";
}

/*! \brief Abstract taxonomy mixin: anything catchable as `qda::error`
 *         carries a stable code.  Deliberately does NOT derive from
 *         std::exception -- concrete classes pair it with the standard
 *         exception type callers already catch, without a diamond.
 */
class error
{
public:
  virtual ~error() = default;

  virtual error_code code() const noexcept = 0;

  /*! \brief True when retrying the same job may succeed. */
  virtual bool transient() const noexcept { return false; }
};

/*! \brief General typed runtime failure (pass failures, deadlines,
 *         cancellation, resource ceilings, server lifecycle).
 */
class qda_error : public std::runtime_error, public error
{
public:
  qda_error( error_code code, const std::string& what, bool transient = false )
      : std::runtime_error( what ), code_( code ), transient_( transient )
  {
  }

  error_code code() const noexcept override { return code_; }
  bool transient() const noexcept override { return transient_; }

private:
  error_code code_;
  bool transient_;
};

/*! \brief Malformed pipeline spec, with the 1-based segment index and
 *         the character offset of the offending command in the raw
 *         text.  Derives std::invalid_argument (what the parser always
 *         threw), so pre-taxonomy catch sites keep working.
 */
class spec_parse_error : public std::invalid_argument, public error
{
public:
  spec_parse_error( const std::string& what, uint32_t segment, size_t offset )
      : std::invalid_argument( what ), segment_( segment ), offset_( offset )
  {
  }

  error_code code() const noexcept override { return error_code::spec_parse; }

  /*! \brief 1-based index of the offending `;`-separated command. */
  uint32_t segment() const noexcept { return segment_; }
  /*! \brief Character offset of that command in the submitted text. */
  size_t offset() const noexcept { return offset_; }

private:
  uint32_t segment_;
  size_t offset_;
};

/*! \brief Illegal stage transition in a spec (e.g. `tbs` with no
 *         permutation loaded).  Derives std::logic_error (the
 *         pre-taxonomy type) and reports as `spec_parse`: the spec is
 *         statically wrong, no execution happened.
 */
class spec_stage_error : public std::logic_error, public error
{
public:
  spec_stage_error( const std::string& what, uint32_t segment )
      : std::logic_error( what ), segment_( segment )
  {
  }

  error_code code() const noexcept override { return error_code::spec_parse; }
  uint32_t segment() const noexcept { return segment_; }

private:
  uint32_t segment_;
};

/*! \brief Classifies an arbitrary in-flight exception into the
 *         taxonomy: typed errors report their own code, bad_alloc maps
 *         to `resource_exhausted`, everything else to `code_fallback`.
 */
error_code classify_current_exception( error_code code_fallback = error_code::internal );

} // namespace qda
