/*! \file failpoint.hpp
 *  \brief Deterministic, seeded fault-injection registry.
 *
 *  A *failpoint* is a named site in production code that can be armed
 *  (normally from the `QDA_FAILPOINTS` environment variable) to inject
 *  a failure with a given probability from a seeded RNG — so every
 *  failure path in the server and the pipeline is exercisable on
 *  demand, deterministically, in CI.
 *
 *  Syntax: `QDA_FAILPOINTS=site:kind:prob:seed[,site:kind:prob:seed...]`
 *    - `site`  registered site name, e.g. `pass.tpar`, `cache.store`,
 *              `server.worker`, `prefix.snapshot`
 *    - `kind`  `fail`  -> throw a *transient* `pass_failure` error
 *              `sleep` -> sleep ~5ms (turns fast paths into slow ones,
 *                         for deadline tests)
 *    - `prob`  trigger probability in [0,1] (evaluated per hit from the
 *              site's own seeded mt19937_64, so the decision sequence
 *              at one site is independent of other sites and of thread
 *              interleaving *per evaluation order at that site*)
 *    - `seed`  RNG seed (uint64)
 *
 *  Like telemetry, the whole subsystem compiles out by default: with
 *  `QDA_FAILPOINTS_ENABLED=0` the `QDA_FAILPOINT(site)` macro expands
 *  to nothing.  When compiled in but not armed, each hit is a single
 *  relaxed atomic load.
 */
#pragma once

#ifndef QDA_FAILPOINTS_ENABLED
#define QDA_FAILPOINTS_ENABLED 1
#endif

#if QDA_FAILPOINTS_ENABLED

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace qda::failpoint
{

enum class kind : uint8_t
{
  fail, /*!< throw a transient pass_failure qda_error */
  sleep /*!< sleep ~5ms at the site */
};

struct site_config
{
  std::string site;
  kind action = kind::fail;
  double probability = 1.0;
  uint64_t seed = 0;
};

/*! \brief Parses a `site:kind:prob:seed[,...]` spec.
 *  \throws std::invalid_argument on malformed specs.
 */
std::vector<site_config> parse_spec( const std::string& spec );

/*! \brief Process-wide failpoint registry (thread-safe). */
class registry
{
public:
  static registry& instance();

  /*! \brief Arms the sites in \p configs (replacing any earlier arming). */
  void arm( const std::vector<site_config>& configs );

  /*! \brief Arms from `QDA_FAILPOINTS` if set (silently ignores a
   *         malformed variable — production must not crash on a typo). */
  void arm_from_env();

  /*! \brief Disarms every site. */
  void reset();

  /*! \brief Fast pre-check: false unless at least one site is armed. */
  bool any_armed() const noexcept
  {
    return armed_.load( std::memory_order_relaxed );
  }

  /*! \brief Evaluates the site: may throw or sleep per its config. */
  void hit( const char* site );

  /*! \brief Number of times \p site triggered (for determinism tests). */
  uint64_t trigger_count( const char* site ) const;

private:
  registry() = default;

  struct armed_site
  {
    site_config config;
    std::mt19937_64 rng;
    uint64_t triggers = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, armed_site> sites_;
  std::atomic<bool> armed_{ false };
};

} // namespace qda::failpoint

/*! \brief Marks a fault-injection site.  Near-free when disarmed. */
#define QDA_FAILPOINT( site )                                     \
  do                                                              \
  {                                                               \
    auto& qda_fp_reg_ = ::qda::failpoint::registry::instance();   \
    if ( qda_fp_reg_.any_armed() )                                \
    {                                                             \
      qda_fp_reg_.hit( site );                                    \
    }                                                             \
  } while ( false )

#else // !QDA_FAILPOINTS_ENABLED

#define QDA_FAILPOINT( site ) \
  do                          \
  {                           \
  } while ( false )

#endif // QDA_FAILPOINTS_ENABLED
