#include "failpoint.hpp"

#if QDA_FAILPOINTS_ENABLED

#include "error.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace qda::failpoint
{

std::vector<site_config> parse_spec( const std::string& spec )
{
  std::vector<site_config> configs;
  std::stringstream entries( spec );
  std::string entry;
  while ( std::getline( entries, entry, ',' ) )
  {
    if ( entry.empty() )
    {
      continue;
    }
    std::stringstream fields( entry );
    std::string site, kind_name, prob_text, seed_text;
    if ( !std::getline( fields, site, ':' ) || site.empty() ||
         !std::getline( fields, kind_name, ':' ) ||
         !std::getline( fields, prob_text, ':' ) ||
         !std::getline( fields, seed_text, ':' ) )
    {
      throw std::invalid_argument( "failpoint entry '" + entry +
                                   "' is not site:kind:prob:seed" );
    }

    site_config config;
    config.site = site;
    if ( kind_name == "fail" )
    {
      config.action = kind::fail;
    }
    else if ( kind_name == "sleep" )
    {
      config.action = kind::sleep;
    }
    else
    {
      throw std::invalid_argument( "failpoint kind '" + kind_name +
                                   "' unknown (expected fail|sleep)" );
    }

    try
    {
      config.probability = std::stod( prob_text );
      config.seed = std::stoull( seed_text );
    }
    catch ( const std::exception& )
    {
      throw std::invalid_argument( "failpoint entry '" + entry +
                                   "' has a non-numeric prob or seed" );
    }
    if ( config.probability < 0.0 || config.probability > 1.0 )
    {
      throw std::invalid_argument( "failpoint probability " + prob_text +
                                   " outside [0,1]" );
    }
    configs.push_back( std::move( config ) );
  }
  return configs;
}

registry& registry::instance()
{
  static registry the_registry;
  /* arm from QDA_FAILPOINTS exactly once, on first use from any thread;
   * tests that call arm()/reset() afterwards simply overwrite this */
  static const bool env_armed = []() {
    the_registry.arm_from_env();
    return true;
  }();
  (void)env_armed;
  return the_registry;
}

void registry::arm( const std::vector<site_config>& configs )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  sites_.clear();
  for ( const auto& config : configs )
  {
    armed_site site;
    site.config = config;
    site.rng.seed( config.seed );
    sites_.emplace( config.site, std::move( site ) );
  }
  armed_.store( !sites_.empty(), std::memory_order_relaxed );
}

void registry::arm_from_env()
{
  const char* spec = std::getenv( "QDA_FAILPOINTS" );
  if ( !spec || !*spec )
  {
    return;
  }
  try
  {
    arm( parse_spec( spec ) );
  }
  catch ( const std::invalid_argument& )
  {
    // a typo in the environment must not take the process down
  }
}

void registry::reset()
{
  std::lock_guard<std::mutex> lock( mutex_ );
  sites_.clear();
  armed_.store( false, std::memory_order_relaxed );
}

void registry::hit( const char* site )
{
  kind action;
  {
    std::lock_guard<std::mutex> lock( mutex_ );
    auto it = sites_.find( site );
    if ( it == sites_.end() )
    {
      return;
    }
    auto& armed = it->second;
    if ( armed.config.probability < 1.0 )
    {
      std::uniform_real_distribution<double> coin( 0.0, 1.0 );
      if ( coin( armed.rng ) >= armed.config.probability )
      {
        return;
      }
    }
    ++armed.triggers;
    action = armed.config.action;
  }

  switch ( action )
  {
  case kind::fail:
    throw qda_error( error_code::pass_failure,
                     std::string( "injected fault at " ) + site,
                     /*transient=*/true );
  case kind::sleep:
    std::this_thread::sleep_for( std::chrono::milliseconds( 5 ) );
    break;
  }
}

uint64_t registry::trigger_count( const char* site ) const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  auto it = sites_.find( site );
  return it == sites_.end() ? 0 : it->second.triggers;
}

} // namespace qda::failpoint

#endif // QDA_FAILPOINTS_ENABLED
