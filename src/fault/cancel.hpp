/*! \file cancel.hpp
 *  \brief Cooperative cancellation and per-job deadlines.
 *
 *  A `cancel_source` owns the request side (the server's job handle
 *  calls `request_cancel()`, the submit path arms a deadline); the
 *  `cancel_token` it hands out is threaded through the pass manager
 *  into the long loops of tpar resynthesis, SABRE routing, and the
 *  simulator's fusion compiler.  Tokens are cheap to copy (one
 *  shared_ptr) and every check is one-or-two relaxed atomic loads plus
 *  an occasional clock read, so hot loops can poll them with a stride
 *  (`checkpoint`) at effectively zero cost.
 *
 *  `check()` throws the typed taxonomy error (`cancelled` or
 *  `deadline_exceeded`), so a single catch at the pass-manager boundary
 *  classifies why the loop unwound.
 */
#pragma once

#include "error.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace qda
{

using fault_clock = std::chrono::steady_clock;

namespace detail
{

struct cancel_state
{
  std::atomic<bool> cancelled{ false };
  /*! deadline as steady-clock nanoseconds-since-epoch; 0 = unarmed */
  std::atomic<int64_t> deadline_ns{ 0 };
};

} // namespace detail

/*! \brief Copyable view onto a cancellation request / deadline.
 *
 *  A default-constructed token is *detached*: never cancelled, never
 *  expires, and `stop_possible()` is false — the fast path for all
 *  callers that don't opt into cancellation.
 */
class cancel_token
{
public:
  cancel_token() = default;

  /*! \brief True when a source (or deadline) is attached at all. */
  bool stop_possible() const noexcept { return state_ != nullptr; }

  /*! \brief True once `request_cancel()` was called. */
  bool cancel_requested() const noexcept
  {
    return state_ && state_->cancelled.load( std::memory_order_relaxed );
  }

  /*! \brief True once the armed deadline has passed. */
  bool deadline_expired() const noexcept
  {
    if ( !state_ || !honor_deadline_ )
    {
      return false;
    }
    const auto ns = state_->deadline_ns.load( std::memory_order_relaxed );
    return ns != 0 && fault_clock::now().time_since_epoch().count() >= ns;
  }

  /*! \brief A view of the same channel that ignores the deadline.
   *
   *  The pass manager hands this to *mandatory* passes under the
   *  `degrade` policy: they must complete even after the budget
   *  expired (without them there is no valid circuit to return), while
   *  an explicit cancel still aborts them.
   */
  cancel_token without_deadline() const noexcept
  {
    cancel_token copy( state_ );
    copy.honor_deadline_ = false;
    return copy;
  }

  /*! \brief True when the work should stop for either reason. */
  bool stop_requested() const noexcept
  {
    return cancel_requested() || deadline_expired();
  }

  /*! \brief Throws the typed error when the work should stop.
   *  \param what context prefix for the error message (e.g. a pass name)
   */
  void check( const char* what = "compilation" ) const
  {
    if ( !state_ )
    {
      return;
    }
    if ( state_->cancelled.load( std::memory_order_relaxed ) )
    {
      throw qda_error( error_code::cancelled, std::string( what ) + " cancelled" );
    }
    if ( deadline_expired() )
    {
      throw qda_error( error_code::deadline_exceeded, std::string( what ) + " exceeded its deadline" );
    }
  }

private:
  friend class cancel_source;
  explicit cancel_token( std::shared_ptr<detail::cancel_state> state )
      : state_( std::move( state ) )
  {
  }

  std::shared_ptr<detail::cancel_state> state_;
  bool honor_deadline_ = true;
};

/*! \brief Owner of the request side of a cancellation channel. */
class cancel_source
{
public:
  cancel_source() : state_( std::make_shared<detail::cancel_state>() ) {}

  cancel_token token() const noexcept { return cancel_token( state_ ); }

  void request_cancel() noexcept
  {
    state_->cancelled.store( true, std::memory_order_relaxed );
  }

  bool cancel_requested() const noexcept
  {
    return state_->cancelled.load( std::memory_order_relaxed );
  }

  /*! \brief Arms (or re-arms) an absolute deadline. */
  void set_deadline( fault_clock::time_point when ) noexcept
  {
    state_->deadline_ns.store( when.time_since_epoch().count(), std::memory_order_relaxed );
  }

  /*! \brief Arms a deadline \p budget from now. */
  void set_deadline_after( std::chrono::nanoseconds budget ) noexcept
  {
    set_deadline( fault_clock::now() + budget );
  }

  /*! \brief Keeps the later of the current and \p when (used when
   *         coalescing waiters: the job may run as long as its most
   *         patient client allows). */
  void extend_deadline( fault_clock::time_point when ) noexcept
  {
    const auto ns = when.time_since_epoch().count();
    auto cur = state_->deadline_ns.load( std::memory_order_relaxed );
    while ( cur != 0 && cur < ns &&
            !state_->deadline_ns.compare_exchange_weak( cur, ns, std::memory_order_relaxed ) )
    {
    }
  }

  bool has_deadline() const noexcept
  {
    return state_->deadline_ns.load( std::memory_order_relaxed ) != 0;
  }

private:
  std::shared_ptr<detail::cancel_state> state_;
};

/*! \brief Strided cancellation poll for hot loops.
 *
 *  `if ( guard.due() ) token.check("tpar") ;` costs one decrement on
 *  the off-iterations; the token (and the clock) are only consulted
 *  every \p stride iterations.
 */
class cancel_checkpoint
{
public:
  explicit cancel_checkpoint( uint32_t stride = 1024 ) noexcept
      : stride_( stride == 0 ? 1 : stride ), left_( stride_ )
  {
  }

  bool due() noexcept
  {
    if ( --left_ != 0 )
    {
      return false;
    }
    left_ = stride_;
    return true;
  }

private:
  uint32_t stride_;
  uint32_t left_;
};

} // namespace qda
