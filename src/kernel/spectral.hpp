/*! \file spectral.hpp
 *  \brief Walsh–Hadamard spectra, bent functions and their duals.
 *
 *  The hidden shift algorithm of the paper relies on *bent* Boolean
 *  functions: functions whose Walsh spectrum is perfectly flat
 *  (|W_f(w)| = 2^{n/2} for every w).  This header provides the spectral
 *  machinery: fast Walsh–Hadamard transform, bentness checks, and the
 *  computation of the dual bent function f~ defined by
 *  W_f(w) = 2^{n/2} (-1)^{f~(w)}.
 */
#pragma once

#include "kernel/truth_table.hpp"

#include <cstdint>
#include <vector>

namespace qda
{

/*! \brief Walsh–Hadamard spectrum of f.
 *
 *  Returns the vector W with W[w] = sum_x (-1)^{f(x) xor (w . x)}.
 *  Computed by a radix-2 in-place fast transform in O(n 2^n).
 */
std::vector<int64_t> walsh_spectrum( const truth_table& function );

/*! \brief In-place fast Walsh–Hadamard transform of an arbitrary integer
 *         vector whose length must be a power of two.
 */
void fast_walsh_hadamard( std::vector<int64_t>& data );

/*! \brief True if the function is bent (flat Walsh spectrum).
 *
 *  Bent functions exist only for an even number of variables; for odd n
 *  the result is always false.
 */
bool is_bent( const truth_table& function );

/*! \brief Dual bent function f~ with W_f(w) = 2^{n/2} (-1)^{f~(w)}.
 *
 *  Throws std::invalid_argument if `function` is not bent.
 */
truth_table dual_bent_function( const truth_table& function );

/*! \brief Nonlinearity of f: distance to the closest affine function,
 *         2^{n-1} - max_w |W_f(w)| / 2.
 */
uint64_t nonlinearity( const truth_table& function );

/*! \brief The function x -> f(x xor shift). */
truth_table shift_function( const truth_table& function, uint64_t shift );

/*! \brief Autocorrelation spectrum r_f(s) = sum_x (-1)^{f(x) xor f(x xor s)}.
 *
 *  For a bent function, r_f(s) = 0 for all s != 0 — the property that
 *  makes the hidden shift problem classically hard.
 */
std::vector<int64_t> autocorrelation_spectrum( const truth_table& function );

} // namespace qda
