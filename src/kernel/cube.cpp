#include "kernel/cube.hpp"

#include "kernel/bits.hpp"

#include <stdexcept>

namespace qda
{

cube cube::literal( uint32_t var, bool positive )
{
  if ( var >= 32u )
  {
    throw std::invalid_argument( "cube::literal: variable out of range" );
  }
  cube result;
  result.add_literal( var, positive );
  return result;
}

uint32_t cube::num_literals() const
{
  return popcount64( mask );
}

bool cube::contains( uint64_t assignment ) const
{
  return ( ( static_cast<uint32_t>( assignment ) ^ polarity ) & mask ) == 0u;
}

void cube::add_literal( uint32_t var, bool positive )
{
  if ( var >= 32u )
  {
    throw std::invalid_argument( "cube::add_literal: variable out of range" );
  }
  mask |= 1u << var;
  polarity = static_cast<uint32_t>( assign_bit( polarity, var, positive ) );
}

void cube::remove_literal( uint32_t var )
{
  if ( var >= 32u )
  {
    throw std::invalid_argument( "cube::remove_literal: variable out of range" );
  }
  mask &= ~( 1u << var );
  polarity &= mask;
}

uint32_t cube::distance( const cube& other ) const
{
  /* differ where occurrence differs, or both occur with opposite phase */
  const uint32_t occurrence_diff = mask ^ other.mask;
  const uint32_t phase_diff = ( polarity ^ other.polarity ) & mask & other.mask;
  return popcount64( occurrence_diff | phase_diff );
}

bool cube::operator<( const cube& other ) const
{
  if ( mask != other.mask )
  {
    return mask < other.mask;
  }
  return polarity < other.polarity;
}

std::string cube::to_string( uint32_t num_vars ) const
{
  if ( mask == 0u )
  {
    return "1";
  }
  std::string result;
  for ( uint32_t v = 0u; v < num_vars; ++v )
  {
    if ( ( mask >> v ) & 1u )
    {
      if ( !result.empty() )
      {
        result += ' ';
      }
      if ( !( ( polarity >> v ) & 1u ) )
      {
        result += '!';
      }
      result += 'x';
      result += std::to_string( v );
    }
  }
  return result;
}

bool evaluate_esop( const std::vector<cube>& cover, uint64_t assignment )
{
  bool value = false;
  for ( const auto& term : cover )
  {
    value ^= term.contains( assignment );
  }
  return value;
}

uint64_t esop_literal_count( const std::vector<cube>& cover )
{
  uint64_t total = 0u;
  for ( const auto& term : cover )
  {
    total += term.num_literals();
  }
  return total;
}

} // namespace qda
