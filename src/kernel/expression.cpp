#include "kernel/expression.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace qda
{

namespace
{

enum class token_kind
{
  identifier,
  constant0,
  constant1,
  op_and,
  op_or,
  op_xor,
  op_not,
  lparen,
  rparen,
  end
};

struct token
{
  token_kind kind;
  std::string text;
};

class lexer
{
public:
  explicit lexer( std::string_view text ) : text_( text ) { advance(); }

  const token& current() const { return current_; }

  void advance()
  {
    while ( pos_ < text_.size() && std::isspace( static_cast<unsigned char>( text_[pos_] ) ) )
    {
      ++pos_;
    }
    if ( pos_ >= text_.size() )
    {
      current_ = { token_kind::end, "" };
      return;
    }
    const char c = text_[pos_];
    switch ( c )
    {
    case '&':
      ++pos_;
      if ( pos_ < text_.size() && text_[pos_] == '&' )
      {
        ++pos_;
      }
      current_ = { token_kind::op_and, "&" };
      return;
    case '|':
      ++pos_;
      if ( pos_ < text_.size() && text_[pos_] == '|' )
      {
        ++pos_;
      }
      current_ = { token_kind::op_or, "|" };
      return;
    case '^':
      ++pos_;
      current_ = { token_kind::op_xor, "^" };
      return;
    case '!':
    case '~':
      ++pos_;
      current_ = { token_kind::op_not, "!" };
      return;
    case '(':
      ++pos_;
      current_ = { token_kind::lparen, "(" };
      return;
    case ')':
      ++pos_;
      current_ = { token_kind::rparen, ")" };
      return;
    case '0':
      ++pos_;
      current_ = { token_kind::constant0, "0" };
      return;
    case '1':
      ++pos_;
      current_ = { token_kind::constant1, "1" };
      return;
    default:
      break;
    }
    if ( std::isalpha( static_cast<unsigned char>( c ) ) || c == '_' )
    {
      size_t start = pos_;
      while ( pos_ < text_.size() &&
              ( std::isalnum( static_cast<unsigned char>( text_[pos_] ) ) || text_[pos_] == '_' ) )
      {
        ++pos_;
      }
      const std::string word( text_.substr( start, pos_ - start ) );
      if ( word == "and" || word == "AND" )
      {
        current_ = { token_kind::op_and, word };
      }
      else if ( word == "or" || word == "OR" )
      {
        current_ = { token_kind::op_or, word };
      }
      else if ( word == "xor" || word == "XOR" )
      {
        current_ = { token_kind::op_xor, word };
      }
      else if ( word == "not" || word == "NOT" )
      {
        current_ = { token_kind::op_not, word };
      }
      else
      {
        current_ = { token_kind::identifier, word };
      }
      return;
    }
    throw std::invalid_argument( std::string( "boolean_expression: unexpected character '" ) + c + "'" );
  }

private:
  std::string_view text_;
  size_t pos_ = 0u;
  token current_{ token_kind::end, "" };
};

class parser
{
public:
  parser( std::string_view text, std::vector<std::string>& variables, bool fixed_variables )
      : lex_( text ), variables_( variables ), fixed_variables_( fixed_variables )
  {
  }

  std::unique_ptr<expr_node> parse()
  {
    auto result = parse_or();
    if ( lex_.current().kind != token_kind::end )
    {
      throw std::invalid_argument( "boolean_expression: trailing input after expression" );
    }
    return result;
  }

private:
  std::unique_ptr<expr_node> make_binary( expr_kind kind, std::unique_ptr<expr_node> left,
                                          std::unique_ptr<expr_node> right )
  {
    auto node = std::make_unique<expr_node>();
    node->kind = kind;
    node->left = std::move( left );
    node->right = std::move( right );
    return node;
  }

  std::unique_ptr<expr_node> parse_or()
  {
    auto left = parse_xor();
    while ( lex_.current().kind == token_kind::op_or )
    {
      lex_.advance();
      left = make_binary( expr_kind::or_op, std::move( left ), parse_xor() );
    }
    return left;
  }

  std::unique_ptr<expr_node> parse_xor()
  {
    auto left = parse_and();
    while ( lex_.current().kind == token_kind::op_xor )
    {
      lex_.advance();
      left = make_binary( expr_kind::xor_op, std::move( left ), parse_and() );
    }
    return left;
  }

  std::unique_ptr<expr_node> parse_and()
  {
    auto left = parse_unary();
    while ( lex_.current().kind == token_kind::op_and )
    {
      lex_.advance();
      left = make_binary( expr_kind::and_op, std::move( left ), parse_unary() );
    }
    return left;
  }

  std::unique_ptr<expr_node> parse_unary()
  {
    if ( lex_.current().kind == token_kind::op_not )
    {
      lex_.advance();
      auto node = std::make_unique<expr_node>();
      node->kind = expr_kind::not_op;
      node->left = parse_unary();
      return node;
    }
    return parse_primary();
  }

  std::unique_ptr<expr_node> parse_primary()
  {
    const token tok = lex_.current();
    switch ( tok.kind )
    {
    case token_kind::constant0:
    case token_kind::constant1:
    {
      lex_.advance();
      auto node = std::make_unique<expr_node>();
      node->kind = expr_kind::constant;
      node->constant_value = tok.kind == token_kind::constant1;
      return node;
    }
    case token_kind::identifier:
    {
      lex_.advance();
      auto node = std::make_unique<expr_node>();
      node->kind = expr_kind::variable;
      node->variable = variable_index( tok.text );
      return node;
    }
    case token_kind::lparen:
    {
      lex_.advance();
      auto node = parse_or();
      if ( lex_.current().kind != token_kind::rparen )
      {
        throw std::invalid_argument( "boolean_expression: missing ')'" );
      }
      lex_.advance();
      return node;
    }
    default:
      throw std::invalid_argument( "boolean_expression: unexpected token '" + tok.text + "'" );
    }
  }

  uint32_t variable_index( const std::string& name )
  {
    const auto it = std::find( variables_.begin(), variables_.end(), name );
    if ( it != variables_.end() )
    {
      return static_cast<uint32_t>( std::distance( variables_.begin(), it ) );
    }
    if ( fixed_variables_ )
    {
      throw std::invalid_argument( "boolean_expression: unknown variable '" + name + "'" );
    }
    variables_.push_back( name );
    return static_cast<uint32_t>( variables_.size() - 1u );
  }

  lexer lex_;
  std::vector<std::string>& variables_;
  bool fixed_variables_;
};

bool evaluate_node( const expr_node& node, uint64_t assignment )
{
  switch ( node.kind )
  {
  case expr_kind::constant:
    return node.constant_value;
  case expr_kind::variable:
    return ( ( assignment >> node.variable ) & 1u ) != 0u;
  case expr_kind::not_op:
    return !evaluate_node( *node.left, assignment );
  case expr_kind::and_op:
    return evaluate_node( *node.left, assignment ) && evaluate_node( *node.right, assignment );
  case expr_kind::or_op:
    return evaluate_node( *node.left, assignment ) || evaluate_node( *node.right, assignment );
  case expr_kind::xor_op:
    return evaluate_node( *node.left, assignment ) != evaluate_node( *node.right, assignment );
  }
  return false;
}

truth_table node_to_table( const expr_node& node, uint32_t num_vars )
{
  switch ( node.kind )
  {
  case expr_kind::constant:
    return truth_table::constant( num_vars, node.constant_value );
  case expr_kind::variable:
    return truth_table::projection( num_vars, node.variable );
  case expr_kind::not_op:
    return ~node_to_table( *node.left, num_vars );
  case expr_kind::and_op:
    return node_to_table( *node.left, num_vars ) & node_to_table( *node.right, num_vars );
  case expr_kind::or_op:
    return node_to_table( *node.left, num_vars ) | node_to_table( *node.right, num_vars );
  case expr_kind::xor_op:
    return node_to_table( *node.left, num_vars ) ^ node_to_table( *node.right, num_vars );
  }
  return truth_table( num_vars );
}

void node_to_string( const expr_node& node, const std::vector<std::string>& variables,
                     std::string& out )
{
  switch ( node.kind )
  {
  case expr_kind::constant:
    out += node.constant_value ? '1' : '0';
    return;
  case expr_kind::variable:
    out += variables[node.variable];
    return;
  case expr_kind::not_op:
    out += '!';
    node_to_string( *node.left, variables, out );
    return;
  case expr_kind::and_op:
  case expr_kind::or_op:
  case expr_kind::xor_op:
    out += '(';
    node_to_string( *node.left, variables, out );
    out += node.kind == expr_kind::and_op ? " & " : node.kind == expr_kind::or_op ? " | " : " ^ ";
    node_to_string( *node.right, variables, out );
    out += ')';
    return;
  }
}

} // namespace

boolean_expression boolean_expression::parse( std::string_view text )
{
  boolean_expression result;
  parser p( text, result.variables_, /*fixed_variables=*/false );
  result.root_ = p.parse();
  return result;
}

boolean_expression boolean_expression::parse( std::string_view text,
                                              const std::vector<std::string>& variables )
{
  boolean_expression result;
  result.variables_ = variables;
  parser p( text, result.variables_, /*fixed_variables=*/true );
  result.root_ = p.parse();
  return result;
}

bool boolean_expression::evaluate( uint64_t assignment ) const
{
  return evaluate_node( *root_, assignment );
}

truth_table boolean_expression::to_truth_table() const
{
  return to_truth_table( num_variables() );
}

truth_table boolean_expression::to_truth_table( uint32_t num_vars ) const
{
  if ( num_vars < num_variables() )
  {
    throw std::invalid_argument( "boolean_expression::to_truth_table: too few variables" );
  }
  return node_to_table( *root_, num_vars );
}

std::string boolean_expression::to_string() const
{
  std::string out;
  node_to_string( *root_, variables_, out );
  return out;
}

} // namespace qda
