#include "kernel/truth_table.hpp"

#include "kernel/bits.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace qda
{

namespace
{

uint32_t words_for_vars( uint32_t num_vars )
{
  return num_vars <= 6u ? 1u : ( 1u << ( num_vars - 6u ) );
}

} // namespace

truth_table::truth_table( uint32_t num_vars )
    : num_vars_( num_vars ), words_( words_for_vars( num_vars ), 0u )
{
  if ( num_vars > max_num_vars )
  {
    throw std::invalid_argument( "truth_table: too many variables" );
  }
}

truth_table truth_table::constant( uint32_t num_vars, bool value )
{
  truth_table tt( num_vars );
  if ( value )
  {
    std::fill( tt.words_.begin(), tt.words_.end(), ~uint64_t{ 0 } );
    tt.mask_off_excess();
  }
  return tt;
}

truth_table truth_table::projection( uint32_t num_vars, uint32_t var )
{
  if ( var >= num_vars )
  {
    throw std::invalid_argument( "truth_table::projection: variable out of range" );
  }
  truth_table tt( num_vars );
  if ( var < 6u )
  {
    std::fill( tt.words_.begin(), tt.words_.end(), projection_masks[var] );
  }
  else
  {
    /* whole words alternate in blocks of 2^(var-6) */
    const uint32_t block = 1u << ( var - 6u );
    for ( uint32_t w = 0u; w < tt.words_.size(); ++w )
    {
      if ( ( w / block ) & 1u )
      {
        tt.words_[w] = ~uint64_t{ 0 };
      }
    }
  }
  tt.mask_off_excess();
  return tt;
}

truth_table truth_table::from_binary_string( std::string_view bits )
{
  if ( !is_power_of_two( bits.size() ) )
  {
    throw std::invalid_argument( "truth_table::from_binary_string: length must be a power of two" );
  }
  const uint32_t num_vars = log2_ceil( bits.size() );
  truth_table tt( num_vars );
  for ( uint64_t i = 0u; i < bits.size(); ++i )
  {
    const char c = bits[i];
    if ( c != '0' && c != '1' )
    {
      throw std::invalid_argument( "truth_table::from_binary_string: invalid character" );
    }
    tt.set_bit( i, c == '1' );
  }
  return tt;
}

truth_table truth_table::from_hex_string( uint32_t num_vars, std::string_view hex )
{
  const uint64_t expected_digits = std::max<uint64_t>( 1u, ( uint64_t{ 1 } << num_vars ) / 4u );
  if ( hex.size() != expected_digits )
  {
    throw std::invalid_argument( "truth_table::from_hex_string: wrong number of digits" );
  }
  truth_table tt( num_vars );
  for ( uint64_t d = 0u; d < hex.size(); ++d )
  {
    const char c = hex[hex.size() - 1u - d];
    uint32_t value = 0u;
    if ( c >= '0' && c <= '9' )
    {
      value = static_cast<uint32_t>( c - '0' );
    }
    else if ( c >= 'a' && c <= 'f' )
    {
      value = static_cast<uint32_t>( c - 'a' ) + 10u;
    }
    else if ( c >= 'A' && c <= 'F' )
    {
      value = static_cast<uint32_t>( c - 'A' ) + 10u;
    }
    else
    {
      throw std::invalid_argument( "truth_table::from_hex_string: invalid digit" );
    }
    for ( uint32_t b = 0u; b < 4u; ++b )
    {
      const uint64_t index = d * 4u + b;
      if ( index < tt.num_bits() )
      {
        tt.set_bit( index, ( value >> b ) & 1u );
      }
    }
  }
  return tt;
}

truth_table truth_table::from_words( uint32_t num_vars, std::vector<uint64_t> words )
{
  truth_table tt( num_vars );
  if ( words.size() != tt.words_.size() )
  {
    throw std::invalid_argument( "truth_table::from_words: wrong number of words" );
  }
  tt.words_ = std::move( words );
  tt.mask_off_excess();
  return tt;
}

bool truth_table::get_bit( uint64_t index ) const
{
  if ( index >= num_bits() )
  {
    throw std::out_of_range( "truth_table::get_bit: index out of range" );
  }
  return test_bit( words_[index >> 6u], static_cast<uint32_t>( index & 63u ) );
}

void truth_table::set_bit( uint64_t index, bool value )
{
  if ( index >= num_bits() )
  {
    throw std::out_of_range( "truth_table::set_bit: index out of range" );
  }
  words_[index >> 6u] = assign_bit( words_[index >> 6u], static_cast<uint32_t>( index & 63u ), value );
}

void truth_table::flip_bit( uint64_t index )
{
  set_bit( index, !get_bit( index ) );
}

uint64_t truth_table::count_ones() const noexcept
{
  uint64_t total = 0u;
  for ( const auto word : words_ )
  {
    total += popcount64( word );
  }
  return total;
}

bool truth_table::is_constant0() const noexcept
{
  return std::all_of( words_.begin(), words_.end(), []( uint64_t w ) { return w == 0u; } );
}

bool truth_table::is_constant1() const noexcept
{
  return count_ones() == num_bits();
}

bool truth_table::depends_on( uint32_t var ) const
{
  return cofactor0( var ) != cofactor1( var );
}

std::vector<uint32_t> truth_table::support() const
{
  std::vector<uint32_t> result;
  for ( uint32_t v = 0u; v < num_vars_; ++v )
  {
    if ( depends_on( v ) )
    {
      result.push_back( v );
    }
  }
  return result;
}

truth_table truth_table::cofactor0( uint32_t var ) const
{
  if ( var >= num_vars_ )
  {
    throw std::invalid_argument( "truth_table::cofactor0: variable out of range" );
  }
  truth_table result = *this;
  if ( var < 6u )
  {
    const uint64_t mask = ~projection_masks[var];
    const uint32_t shift = 1u << var;
    for ( auto& word : result.words_ )
    {
      const uint64_t low = word & mask;
      word = low | ( low << shift );
    }
  }
  else
  {
    const uint32_t block = 1u << ( var - 6u );
    for ( uint32_t w = 0u; w < result.words_.size(); ++w )
    {
      if ( ( w / block ) & 1u )
      {
        result.words_[w] = result.words_[w - block];
      }
    }
  }
  return result;
}

truth_table truth_table::cofactor1( uint32_t var ) const
{
  if ( var >= num_vars_ )
  {
    throw std::invalid_argument( "truth_table::cofactor1: variable out of range" );
  }
  truth_table result = *this;
  if ( var < 6u )
  {
    const uint64_t mask = projection_masks[var];
    const uint32_t shift = 1u << var;
    for ( auto& word : result.words_ )
    {
      const uint64_t high = word & mask;
      word = high | ( high >> shift );
    }
  }
  else
  {
    const uint32_t block = 1u << ( var - 6u );
    for ( uint32_t w = 0u; w < result.words_.size(); ++w )
    {
      if ( !( ( w / block ) & 1u ) )
      {
        result.words_[w] = result.words_[w + block];
      }
    }
  }
  return result;
}

truth_table truth_table::swap_variables( uint32_t var_a, uint32_t var_b ) const
{
  if ( var_a >= num_vars_ || var_b >= num_vars_ )
  {
    throw std::invalid_argument( "truth_table::swap_variables: variable out of range" );
  }
  if ( var_a == var_b )
  {
    return *this;
  }
  truth_table result( num_vars_ );
  for ( uint64_t i = 0u; i < num_bits(); ++i )
  {
    result.set_bit( swap_bits( i, var_a, var_b ), get_bit( i ) );
  }
  return result;
}

truth_table truth_table::extend_to( uint32_t num_vars ) const
{
  if ( num_vars < num_vars_ )
  {
    throw std::invalid_argument( "truth_table::extend_to: cannot shrink" );
  }
  truth_table result( num_vars );
  const uint64_t period = num_bits();
  for ( uint64_t i = 0u; i < result.num_bits(); ++i )
  {
    result.set_bit( i, get_bit( i & ( period - 1u ) ) );
  }
  return result;
}

truth_table truth_table::operator~() const
{
  truth_table result = *this;
  for ( auto& word : result.words_ )
  {
    word = ~word;
  }
  result.mask_off_excess();
  return result;
}

truth_table truth_table::operator&( const truth_table& other ) const
{
  truth_table result = *this;
  result &= other;
  return result;
}

truth_table truth_table::operator|( const truth_table& other ) const
{
  truth_table result = *this;
  result |= other;
  return result;
}

truth_table truth_table::operator^( const truth_table& other ) const
{
  truth_table result = *this;
  result ^= other;
  return result;
}

truth_table& truth_table::operator&=( const truth_table& other )
{
  check_compatible( other );
  for ( uint32_t w = 0u; w < words_.size(); ++w )
  {
    words_[w] &= other.words_[w];
  }
  return *this;
}

truth_table& truth_table::operator|=( const truth_table& other )
{
  check_compatible( other );
  for ( uint32_t w = 0u; w < words_.size(); ++w )
  {
    words_[w] |= other.words_[w];
  }
  return *this;
}

truth_table& truth_table::operator^=( const truth_table& other )
{
  check_compatible( other );
  for ( uint32_t w = 0u; w < words_.size(); ++w )
  {
    words_[w] ^= other.words_[w];
  }
  return *this;
}

bool truth_table::operator==( const truth_table& other ) const
{
  return num_vars_ == other.num_vars_ && words_ == other.words_;
}

bool truth_table::operator!=( const truth_table& other ) const
{
  return !( *this == other );
}

bool truth_table::operator<( const truth_table& other ) const
{
  if ( num_vars_ != other.num_vars_ )
  {
    return num_vars_ < other.num_vars_;
  }
  return std::lexicographical_compare( words_.rbegin(), words_.rend(),
                                       other.words_.rbegin(), other.words_.rend() );
}

std::string truth_table::to_binary_string() const
{
  std::string result( num_bits(), '0' );
  for ( uint64_t i = 0u; i < num_bits(); ++i )
  {
    if ( get_bit( i ) )
    {
      result[i] = '1';
    }
  }
  return result;
}

std::string truth_table::to_hex_string() const
{
  static constexpr char digits[] = "0123456789abcdef";
  const uint64_t num_digits = std::max<uint64_t>( 1u, num_bits() / 4u );
  std::string result( num_digits, '0' );
  for ( uint64_t d = 0u; d < num_digits; ++d )
  {
    uint32_t value = 0u;
    for ( uint32_t b = 0u; b < 4u; ++b )
    {
      const uint64_t index = d * 4u + b;
      if ( index < num_bits() && get_bit( index ) )
      {
        value |= 1u << b;
      }
    }
    result[num_digits - 1u - d] = digits[value];
  }
  return result;
}

void truth_table::mask_off_excess() noexcept
{
  if ( num_vars_ < 6u )
  {
    words_[0] &= ( uint64_t{ 1 } << num_bits() ) - 1u;
  }
}

void truth_table::check_compatible( const truth_table& other ) const
{
  if ( num_vars_ != other.num_vars_ )
  {
    throw std::invalid_argument( "truth_table: operand variable counts differ" );
  }
}

truth_table inner_product_function( uint32_t half_vars, bool interleaved )
{
  const uint32_t total = 2u * half_vars;
  truth_table result( total );
  for ( uint32_t i = 0u; i < half_vars; ++i )
  {
    const uint32_t x_var = interleaved ? 2u * i : i;
    const uint32_t y_var = interleaved ? 2u * i + 1u : half_vars + i;
    result ^= truth_table::projection( total, x_var ) & truth_table::projection( total, y_var );
  }
  return result;
}

truth_table hidden_weighted_bit_function( uint32_t num_vars )
{
  truth_table result( num_vars );
  for ( uint64_t x = 0u; x < result.num_bits(); ++x )
  {
    const uint32_t weight = popcount64( x );
    if ( weight > 0u )
    {
      result.set_bit( x, test_bit( x, weight - 1u ) );
    }
  }
  return result;
}

truth_table majority_function( uint32_t num_vars )
{
  truth_table result( num_vars );
  for ( uint64_t x = 0u; x < result.num_bits(); ++x )
  {
    result.set_bit( x, popcount64( x ) > num_vars / 2u );
  }
  return result;
}

truth_table random_truth_table( uint32_t num_vars, uint64_t seed )
{
  std::mt19937_64 rng( seed );
  truth_table result( num_vars );
  std::vector<uint64_t> words( result.num_words() );
  for ( auto& word : words )
  {
    word = rng();
  }
  return truth_table::from_words( num_vars, std::move( words ) );
}

} // namespace qda
