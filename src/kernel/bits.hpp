/*! \file bits.hpp
 *  \brief Low-level bit manipulation helpers shared across the kernel.
 *
 *  These are the word-level primitives underneath truth tables and
 *  permutation handling.  All functions are constexpr-friendly and
 *  branch-light so they can be used in hot synthesis loops.
 */
#pragma once

#include <bit>
#include <cstdint>

namespace qda
{

/*! \brief Number of set bits in a 64-bit word. */
constexpr inline uint32_t popcount64( uint64_t word ) noexcept
{
  return static_cast<uint32_t>( std::popcount( word ) );
}

/*! \brief Parity (XOR of all bits) of a 64-bit word. */
constexpr inline bool parity64( uint64_t word ) noexcept
{
  return ( std::popcount( word ) & 1u ) != 0u;
}

/*! \brief Inner product of two bit vectors packed into words: parity of x & y. */
constexpr inline bool inner_product_bits( uint64_t x, uint64_t y ) noexcept
{
  return parity64( x & y );
}

/*! \brief Index of the least significant set bit; undefined for 0. */
constexpr inline uint32_t least_significant_bit( uint64_t word ) noexcept
{
  return static_cast<uint32_t>( std::countr_zero( word ) );
}

/*! \brief Index of the most significant set bit; undefined for 0. */
constexpr inline uint32_t most_significant_bit( uint64_t word ) noexcept
{
  return 63u - static_cast<uint32_t>( std::countl_zero( word ) );
}

/*! \brief Returns true if `value` is a power of two (and non-zero). */
constexpr inline bool is_power_of_two( uint64_t value ) noexcept
{
  return value != 0u && ( value & ( value - 1u ) ) == 0u;
}

/*! \brief Ceiling of log2; log2_ceil(1) == 0. */
constexpr inline uint32_t log2_ceil( uint64_t value ) noexcept
{
  if ( value <= 1u )
  {
    return 0u;
  }
  return 64u - static_cast<uint32_t>( std::countl_zero( value - 1u ) );
}

/*! \brief Extracts bit `index` of `word`. */
constexpr inline bool test_bit( uint64_t word, uint32_t index ) noexcept
{
  return ( ( word >> index ) & 1u ) != 0u;
}

/*! \brief Returns `word` with bit `index` set to `value`. */
constexpr inline uint64_t assign_bit( uint64_t word, uint32_t index, bool value ) noexcept
{
  return ( word & ~( uint64_t{ 1 } << index ) ) | ( uint64_t{ value } << index );
}

/*! \brief Returns `word` with bit `index` flipped. */
constexpr inline uint64_t flip_bit( uint64_t word, uint32_t index ) noexcept
{
  return word ^ ( uint64_t{ 1 } << index );
}

/*! \brief Swaps bit positions `i` and `j` in `word`. */
constexpr inline uint64_t swap_bits( uint64_t word, uint32_t i, uint32_t j ) noexcept
{
  const uint64_t x = ( ( word >> i ) ^ ( word >> j ) ) & 1u;
  return word ^ ( ( x << i ) | ( x << j ) );
}

/*! \brief The six canonical single-word projection masks x_0 .. x_5.
 *
 *  `projection_masks[i]` holds the truth table of variable i within one
 *  64-bit word (covering functions of up to 6 variables).
 */
inline constexpr uint64_t projection_masks[6] = {
    0xaaaaaaaaaaaaaaaaull,
    0xccccccccccccccccull,
    0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull,
    0xffff0000ffff0000ull,
    0xffffffff00000000ull };

} // namespace qda
