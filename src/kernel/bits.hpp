/*! \file bits.hpp
 *  \brief Low-level bit manipulation helpers shared across the kernel.
 *
 *  These are the word-level primitives underneath truth tables and
 *  permutation handling.  All functions are constexpr-friendly and
 *  branch-light so they can be used in hot synthesis loops.
 */
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qda
{

/*! \brief Number of set bits in a 64-bit word. */
constexpr inline uint32_t popcount64( uint64_t word ) noexcept
{
  return static_cast<uint32_t>( std::popcount( word ) );
}

/*! \brief Parity (XOR of all bits) of a 64-bit word. */
constexpr inline bool parity64( uint64_t word ) noexcept
{
  return ( std::popcount( word ) & 1u ) != 0u;
}

/*! \brief Inner product of two bit vectors packed into words: parity of x & y. */
constexpr inline bool inner_product_bits( uint64_t x, uint64_t y ) noexcept
{
  return parity64( x & y );
}

/*! \brief Index of the least significant set bit; undefined for 0. */
constexpr inline uint32_t least_significant_bit( uint64_t word ) noexcept
{
  return static_cast<uint32_t>( std::countr_zero( word ) );
}

/*! \brief Index of the most significant set bit; undefined for 0. */
constexpr inline uint32_t most_significant_bit( uint64_t word ) noexcept
{
  return 63u - static_cast<uint32_t>( std::countl_zero( word ) );
}

/*! \brief Returns true if `value` is a power of two (and non-zero). */
constexpr inline bool is_power_of_two( uint64_t value ) noexcept
{
  return value != 0u && ( value & ( value - 1u ) ) == 0u;
}

/*! \brief Ceiling of log2; log2_ceil(1) == 0. */
constexpr inline uint32_t log2_ceil( uint64_t value ) noexcept
{
  if ( value <= 1u )
  {
    return 0u;
  }
  return 64u - static_cast<uint32_t>( std::countl_zero( value - 1u ) );
}

/*! \brief Extracts bit `index` of `word`. */
constexpr inline bool test_bit( uint64_t word, uint32_t index ) noexcept
{
  return ( ( word >> index ) & 1u ) != 0u;
}

/*! \brief Returns `word` with bit `index` set to `value`. */
constexpr inline uint64_t assign_bit( uint64_t word, uint32_t index, bool value ) noexcept
{
  return ( word & ~( uint64_t{ 1 } << index ) ) | ( uint64_t{ value } << index );
}

/*! \brief Returns `word` with bit `index` flipped. */
constexpr inline uint64_t flip_bit( uint64_t word, uint32_t index ) noexcept
{
  return word ^ ( uint64_t{ 1 } << index );
}

/*! \brief Swaps bit positions `i` and `j` in `word`. */
constexpr inline uint64_t swap_bits( uint64_t word, uint32_t i, uint32_t j ) noexcept
{
  const uint64_t x = ( ( word >> i ) ^ ( word >> j ) ) & 1u;
  return word ^ ( ( x << i ) | ( x << j ) );
}

/*! \brief Dynamic-width bit vector for parity and linear-map rows.
 *
 *  Replaces the fixed 64-variable masks previously used for parity
 *  tracking (`phase_folding`'s epoch hack) and for `linear_matrix` rows
 *  (the 64-qubit cap of `pmh_linear_synthesis`).  The representation is
 *  normalized at *both* ends: a word offset skips leading zero words
 *  and trailing zero words are trimmed, so every operation costs the
 *  active span only.  This matters for unbounded parity tracking,
 *  where labels over variable 9000+ would otherwise drag 140 dense
 *  words through every XOR.  The first active word is stored inline,
 *  so vectors spanning up to 64 bits (any 64-aligned window) never
 *  touch the heap.
 */
class bitvec
{
public:
  bitvec() = default;
  bitvec( uint64_t word ) noexcept : word0_( word ) {}

  bool none() const noexcept { return word0_ == 0u && tail_.empty(); }
  bool any() const noexcept { return !none(); }

  bool test( uint32_t index ) const noexcept
  {
    return test_bit( word_at( index / 64u ), index % 64u );
  }

  void set( uint32_t index )
  {
    const uint32_t word = index / 64u;
    if ( none() )
    {
      offset_ = word;
      word0_ = uint64_t{ 1 } << ( index % 64u );
      return;
    }
    writable_word( word ) |= uint64_t{ 1 } << ( index % 64u );
  }

  void flip( uint32_t index )
  {
    const uint32_t word = index / 64u;
    if ( none() )
    {
      offset_ = word;
      word0_ = uint64_t{ 1 } << ( index % 64u );
      return;
    }
    writable_word( word ) ^= uint64_t{ 1 } << ( index % 64u );
    normalize();
  }

  void clear() noexcept
  {
    offset_ = 0u;
    word0_ = 0u;
    tail_.clear();
  }

  /*! \brief Number of set bits. */
  uint32_t count() const noexcept
  {
    uint32_t total = popcount64( word0_ );
    for ( const uint64_t word : tail_ )
    {
      total += popcount64( word );
    }
    return total;
  }

  /*! \brief Index of the highest set bit; undefined when none(). */
  uint32_t top_bit() const noexcept
  {
    if ( !tail_.empty() )
    {
      const uint32_t word = static_cast<uint32_t>( tail_.size() ) - 1u;
      return 64u * ( offset_ + word + 1u ) + most_significant_bit( tail_[word] );
    }
    return 64u * offset_ + most_significant_bit( word0_ );
  }

  /*! \brief The low 64 bits (bits >= 64, if any, are not represented). */
  uint64_t low_word() const noexcept { return word_at( 0u ); }

  bitvec& operator^=( const bitvec& other )
  {
    if ( this == &other )
    {
      clear();
      return *this;
    }
    if ( other.none() )
    {
      return *this;
    }
    if ( none() )
    {
      return *this = other;
    }
    const uint32_t other_end = other.offset_ + 1u + static_cast<uint32_t>( other.tail_.size() );
    if ( other.offset_ < offset_ )
    {
      grow_front( offset_ - other.offset_ );
    }
    if ( other_end > end_word() )
    {
      tail_.resize( other_end - offset_ - 1u, 0u );
    }
    const uint32_t rel = other.offset_ - offset_;
    word_ref( rel ) ^= other.word0_;
    for ( size_t i = 0u; i < other.tail_.size(); ++i )
    {
      word_ref( rel + 1u + static_cast<uint32_t>( i ) ) ^= other.tail_[i];
    }
    normalize();
    return *this;
  }

  bitvec& operator&=( const bitvec& other )
  {
    word0_ &= other.word_at( offset_ );
    for ( size_t i = 0u; i < tail_.size(); ++i )
    {
      tail_[i] &= other.word_at( offset_ + 1u + static_cast<uint32_t>( i ) );
    }
    normalize();
    return *this;
  }

  friend bitvec operator^( bitvec a, const bitvec& b )
  {
    a ^= b;
    return a;
  }

  friend bitvec operator&( bitvec a, const bitvec& b )
  {
    a &= b;
    return a;
  }

  /*! \brief Parity of the AND of two vectors (GF(2) inner product). */
  friend bool inner_parity( const bitvec& a, const bitvec& b ) noexcept
  {
    const bitvec* lo = &a;
    const bitvec* hi = &b;
    if ( hi->offset_ < lo->offset_ )
    {
      const bitvec* t = lo;
      lo = hi;
      hi = t;
    }
    uint32_t ones = 0u;
    ones += popcount64( hi->word0_ & lo->word_at( hi->offset_ ) );
    for ( size_t i = 0u; i < hi->tail_.size(); ++i )
    {
      ones += popcount64( hi->tail_[i] &
                          lo->word_at( hi->offset_ + 1u + static_cast<uint32_t>( i ) ) );
    }
    return ( ones & 1u ) != 0u;
  }

  bool operator==( const bitvec& other ) const = default;

  /*! \brief Numeric (MSB-first) order; a strict weak order for maps. */
  bool operator<( const bitvec& other ) const noexcept
  {
    const uint32_t end_a = none() ? 0u : end_word();
    const uint32_t end_b = other.none() ? 0u : other.end_word();
    if ( end_a != end_b )
    {
      return end_a < end_b;
    }
    for ( uint32_t word = end_a; word-- > 0u; )
    {
      const uint64_t wa = word_at( word );
      const uint64_t wb = other.word_at( word );
      if ( wa != wb )
      {
        return wa < wb;
      }
    }
    return false;
  }

  size_t hash() const noexcept
  {
    uint64_t state = mix( word0_ ^ ( uint64_t{ offset_ } * 0x9e3779b97f4a7c15ull ) );
    for ( const uint64_t word : tail_ )
    {
      state = mix( state ^ word );
    }
    return static_cast<size_t>( state );
  }

  /*! \brief Calls `fn(index)` for every set bit in increasing order. */
  template<typename Fn>
  void for_each_set_bit( Fn&& fn ) const
  {
    uint32_t base = 64u * offset_;
    for ( uint64_t word = word0_; word != 0u; word &= word - 1u )
    {
      fn( base + least_significant_bit( word ) );
    }
    for ( size_t i = 0u; i < tail_.size(); ++i )
    {
      base = 64u * ( offset_ + static_cast<uint32_t>( i ) + 1u );
      for ( uint64_t word = tail_[i]; word != 0u; word &= word - 1u )
      {
        fn( base + least_significant_bit( word ) );
      }
    }
  }

  /*! \brief Set-bit list, e.g. "{0, 3, 65}". */
  std::string to_string() const
  {
    std::string result = "{";
    for_each_set_bit( [&result]( uint32_t index ) {
      if ( result.size() > 1u )
      {
        result += ", ";
      }
      result += std::to_string( index );
    } );
    result += "}";
    return result;
  }

private:
  static constexpr uint64_t mix( uint64_t x ) noexcept
  {
    x ^= x >> 30u;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27u;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31u;
    return x;
  }

  /*! One past the highest stored word index. */
  uint32_t end_word() const noexcept
  {
    return offset_ + 1u + static_cast<uint32_t>( tail_.size() );
  }

  /*! Stored word at global index `word`, zero outside the span. */
  uint64_t word_at( uint32_t word ) const noexcept
  {
    if ( word < offset_ )
    {
      return 0u;
    }
    const uint32_t rel = word - offset_;
    if ( rel == 0u )
    {
      return word0_;
    }
    return rel - 1u < tail_.size() ? tail_[rel - 1u] : 0u;
  }

  uint64_t& word_ref( uint32_t rel ) noexcept
  {
    return rel == 0u ? word0_ : tail_[rel - 1u];
  }

  /*! Grows the span by `extra` zero words at the front (offset_ drops). */
  void grow_front( uint32_t extra )
  {
    tail_.insert( tail_.begin(), extra, 0u );
    tail_[extra - 1u] = word0_;
    word0_ = 0u;
    offset_ -= extra;
  }

  /*! Mutable word at global index `word`, growing the span as needed. */
  uint64_t& writable_word( uint32_t word )
  {
    if ( word < offset_ )
    {
      grow_front( offset_ - word );
    }
    const uint32_t rel = word - offset_;
    if ( rel > tail_.size() )
    {
      tail_.resize( rel, 0u );
    }
    return word_ref( rel );
  }

  /*! Restores both-ends normalization after a mutation. */
  void normalize() noexcept
  {
    while ( !tail_.empty() && tail_.back() == 0u )
    {
      tail_.pop_back();
    }
    if ( word0_ != 0u )
    {
      return;
    }
    size_t first = 0u;
    while ( first < tail_.size() && tail_[first] == 0u )
    {
      ++first;
    }
    if ( first == tail_.size() )
    {
      clear();
      return;
    }
    offset_ += static_cast<uint32_t>( first ) + 1u;
    word0_ = tail_[first];
    tail_.erase( tail_.begin(), tail_.begin() + static_cast<ptrdiff_t>( first ) + 1u );
  }

  uint32_t offset_ = 0u;        /*!< global index of the first stored word */
  uint64_t word0_ = 0u;         /*!< word `offset_`, stored inline */
  std::vector<uint64_t> tail_;  /*!< words offset_+1.., no trailing zeros */
};

/*! \brief The six canonical single-word projection masks x_0 .. x_5.
 *
 *  `projection_masks[i]` holds the truth table of variable i within one
 *  64-bit word (covering functions of up to 6 variables).
 */
inline constexpr uint64_t projection_masks[6] = {
    0xaaaaaaaaaaaaaaaaull,
    0xccccccccccccccccull,
    0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull,
    0xffff0000ffff0000ull,
    0xffffffff00000000ull };

} // namespace qda
