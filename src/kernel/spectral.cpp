#include "kernel/spectral.hpp"

#include "kernel/bits.hpp"

#include <cstdlib>
#include <stdexcept>

namespace qda
{

void fast_walsh_hadamard( std::vector<int64_t>& data )
{
  if ( !is_power_of_two( data.size() ) )
  {
    throw std::invalid_argument( "fast_walsh_hadamard: length must be a power of two" );
  }
  for ( uint64_t len = 1u; len < data.size(); len <<= 1u )
  {
    for ( uint64_t block = 0u; block < data.size(); block += 2u * len )
    {
      for ( uint64_t i = block; i < block + len; ++i )
      {
        const int64_t a = data[i];
        const int64_t b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
}

std::vector<int64_t> walsh_spectrum( const truth_table& function )
{
  std::vector<int64_t> data( function.num_bits() );
  for ( uint64_t x = 0u; x < function.num_bits(); ++x )
  {
    data[x] = function.get_bit( x ) ? -1 : 1;
  }
  fast_walsh_hadamard( data );
  return data;
}

bool is_bent( const truth_table& function )
{
  if ( function.num_vars() % 2u != 0u )
  {
    return false;
  }
  const int64_t flat = int64_t{ 1 } << ( function.num_vars() / 2u );
  const auto spectrum = walsh_spectrum( function );
  for ( const auto coefficient : spectrum )
  {
    if ( std::llabs( coefficient ) != flat )
    {
      return false;
    }
  }
  return true;
}

truth_table dual_bent_function( const truth_table& function )
{
  if ( function.num_vars() % 2u != 0u )
  {
    throw std::invalid_argument( "dual_bent_function: bent functions need an even number of variables" );
  }
  const int64_t flat = int64_t{ 1 } << ( function.num_vars() / 2u );
  const auto spectrum = walsh_spectrum( function );
  truth_table dual( function.num_vars() );
  for ( uint64_t w = 0u; w < function.num_bits(); ++w )
  {
    if ( spectrum[w] == flat )
    {
      /* dual value 0 */
    }
    else if ( spectrum[w] == -flat )
    {
      dual.set_bit( w, true );
    }
    else
    {
      throw std::invalid_argument( "dual_bent_function: function is not bent" );
    }
  }
  return dual;
}

uint64_t nonlinearity( const truth_table& function )
{
  const auto spectrum = walsh_spectrum( function );
  int64_t max_abs = 0;
  for ( const auto coefficient : spectrum )
  {
    max_abs = std::max<int64_t>( max_abs, std::llabs( coefficient ) );
  }
  return ( function.num_bits() - static_cast<uint64_t>( max_abs ) ) / 2u;
}

truth_table shift_function( const truth_table& function, uint64_t shift )
{
  truth_table result( function.num_vars() );
  for ( uint64_t x = 0u; x < function.num_bits(); ++x )
  {
    result.set_bit( x, function.get_bit( x ^ shift ) );
  }
  return result;
}

std::vector<int64_t> autocorrelation_spectrum( const truth_table& function )
{
  /* r_f = 2^-n WHT( W_f^2 ) by the Wiener–Khinchin relation over GF(2). */
  auto spectrum = walsh_spectrum( function );
  for ( auto& coefficient : spectrum )
  {
    coefficient *= coefficient;
  }
  fast_walsh_hadamard( spectrum );
  const int64_t scale = static_cast<int64_t>( function.num_bits() );
  for ( auto& coefficient : spectrum )
  {
    coefficient /= scale;
  }
  return spectrum;
}

} // namespace qda
