#include "kernel/permutation.hpp"

#include "kernel/bits.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace qda
{

permutation::permutation( uint32_t num_vars )
    : num_vars_( num_vars ), images_( uint64_t{ 1 } << num_vars )
{
  std::iota( images_.begin(), images_.end(), uint64_t{ 0 } );
}

permutation permutation::from_vector( std::vector<uint64_t> images )
{
  if ( !is_power_of_two( images.size() ) )
  {
    throw std::invalid_argument( "permutation::from_vector: length must be a power of two" );
  }
  std::vector<bool> seen( images.size(), false );
  for ( const auto image : images )
  {
    if ( image >= images.size() || seen[image] )
    {
      throw std::invalid_argument( "permutation::from_vector: not a bijection" );
    }
    seen[image] = true;
  }
  permutation result( log2_ceil( images.size() ) );
  result.images_ = std::move( images );
  return result;
}

permutation permutation::from_vector( std::initializer_list<uint64_t> images )
{
  return from_vector( std::vector<uint64_t>( images ) );
}

permutation permutation::random( uint32_t num_vars, uint64_t seed )
{
  permutation result( num_vars );
  std::mt19937_64 rng( seed );
  std::shuffle( result.images_.begin(), result.images_.end(), rng );
  return result;
}

permutation permutation::xor_constant( uint32_t num_vars, uint64_t constant )
{
  permutation result( num_vars );
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.images_[x] = x ^ constant;
  }
  return result;
}

permutation permutation::inverse() const
{
  permutation result( num_vars_ );
  for ( uint64_t x = 0u; x < size(); ++x )
  {
    result.images_[images_[x]] = x;
  }
  return result;
}

permutation permutation::compose( const permutation& other ) const
{
  if ( num_vars_ != other.num_vars_ )
  {
    throw std::invalid_argument( "permutation::compose: size mismatch" );
  }
  permutation result( num_vars_ );
  for ( uint64_t x = 0u; x < size(); ++x )
  {
    result.images_[x] = images_[other.images_[x]];
  }
  return result;
}

bool permutation::is_identity() const noexcept
{
  for ( uint64_t x = 0u; x < size(); ++x )
  {
    if ( images_[x] != x )
    {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<uint64_t>> permutation::cycles() const
{
  std::vector<std::vector<uint64_t>> result;
  std::vector<bool> visited( size(), false );
  for ( uint64_t start = 0u; start < size(); ++start )
  {
    if ( visited[start] || images_[start] == start )
    {
      continue;
    }
    std::vector<uint64_t> cycle;
    uint64_t current = start;
    while ( !visited[current] )
    {
      visited[current] = true;
      cycle.push_back( current );
      current = images_[current];
    }
    result.push_back( std::move( cycle ) );
  }
  return result;
}

bool permutation::is_odd() const
{
  bool odd = false;
  for ( const auto& cycle : cycles() )
  {
    if ( cycle.size() % 2u == 0u )
    {
      odd = !odd;
    }
  }
  return odd;
}

} // namespace qda
