/*! \file cube.hpp
 *  \brief Product-term cubes for ESOP/SOP covers.
 *
 *  A cube is a conjunction of literals over up to 32 variables, stored
 *  as a (mask, polarity) pair of 32-bit words: bit i of `mask` says
 *  variable i occurs, bit i of `polarity` gives its phase (1 =
 *  positive literal).  Cubes are the unit of ESOP-based reversible
 *  synthesis: each cube becomes one multiple-controlled Toffoli gate.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qda
{

/*! \brief A product term (conjunction of literals). */
struct cube
{
  uint32_t mask = 0u;     /*!< which variables occur */
  uint32_t polarity = 0u; /*!< phase of each occurring variable */

  cube() = default;
  cube( uint32_t mask_, uint32_t polarity_ ) : mask( mask_ ), polarity( polarity_ & mask_ ) {}

  /*! \brief The constant-one cube (empty product). */
  static cube one() { return cube{}; }

  /*! \brief Single-literal cube. */
  static cube literal( uint32_t var, bool positive );

  /*! \brief Number of literals. */
  uint32_t num_literals() const;

  /*! \brief True if the cube evaluates to 1 under the given assignment. */
  bool contains( uint64_t assignment ) const;

  /*! \brief Adds or overwrites a literal. */
  void add_literal( uint32_t var, bool positive );

  /*! \brief Removes a literal if present. */
  void remove_literal( uint32_t var );

  /*! \brief Distance: number of variables in which the cubes differ
   *         (different occurrence or different polarity).
   */
  uint32_t distance( const cube& other ) const;

  bool operator==( const cube& other ) const = default;

  /*! \brief Total order for canonical cover sorting. */
  bool operator<( const cube& other ) const;

  /*! \brief Human-readable form like "x0 !x2 x3" ("1" for the empty cube). */
  std::string to_string( uint32_t num_vars ) const;
};

/*! \brief Evaluates an ESOP (XOR of cubes) on one assignment. */
bool evaluate_esop( const std::vector<cube>& cover, uint64_t assignment );

/*! \brief Number of literals summed over the cover. */
uint64_t esop_literal_count( const std::vector<cube>& cover );

} // namespace qda
