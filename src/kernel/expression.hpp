/*! \file expression.hpp
 *  \brief Boolean expression front end.
 *
 *  The paper's ProjectQ flow passes a Python predicate such as
 *
 *      def f(a, b, c, d):
 *          return (a and b) ^ (c and d)
 *
 *  to the PhaseOracle, which converts it into a Boolean expression and
 *  hands it to RevKit.  This module is the C++ stand-in for that front
 *  end: it parses textual Boolean expressions into an AST and evaluates
 *  them into truth tables.
 *
 *  Grammar (precedence low to high: or < xor < and < not):
 *
 *      or_expr  := xor_expr (("|" | "or") xor_expr)*
 *      xor_expr := and_expr (("^" | "xor") and_expr)*
 *      and_expr := unary (("&" | "and") unary)*
 *      unary    := ("!" | "~" | "not") unary | primary
 *      primary  := identifier | "0" | "1" | "(" or_expr ")"
 */
#pragma once

#include "kernel/truth_table.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace qda
{

/*! \brief AST node kinds for Boolean expressions. */
enum class expr_kind
{
  constant,
  variable,
  not_op,
  and_op,
  or_op,
  xor_op
};

/*! \brief A node in a parsed Boolean expression. */
struct expr_node
{
  expr_kind kind = expr_kind::constant;
  bool constant_value = false;                 /*!< for expr_kind::constant */
  uint32_t variable = 0u;                      /*!< for expr_kind::variable */
  std::unique_ptr<expr_node> left;             /*!< operand / left operand */
  std::unique_ptr<expr_node> right;            /*!< right operand for binary ops */
};

/*! \brief A parsed Boolean expression together with its variable names. */
class boolean_expression
{
public:
  /*! \brief Parses `text`; variables are numbered in order of first
   *         appearance.  Throws std::invalid_argument on syntax errors.
   */
  static boolean_expression parse( std::string_view text );

  /*! \brief Parses `text` against a fixed variable ordering; unknown
   *         identifiers are an error.
   */
  static boolean_expression parse( std::string_view text,
                                   const std::vector<std::string>& variables );

  uint32_t num_variables() const noexcept { return static_cast<uint32_t>( variables_.size() ); }
  const std::vector<std::string>& variables() const noexcept { return variables_; }

  /*! \brief Evaluates under an integer-encoded assignment (variable i = bit i). */
  bool evaluate( uint64_t assignment ) const;

  /*! \brief Expands the expression into a complete truth table. */
  truth_table to_truth_table() const;

  /*! \brief Expands over `num_vars >= num_variables()` variables
   *         (extra variables are irrelevant).
   */
  truth_table to_truth_table( uint32_t num_vars ) const;

  const expr_node& root() const { return *root_; }

  /*! \brief Canonical text form with explicit parentheses. */
  std::string to_string() const;

private:
  std::unique_ptr<expr_node> root_;
  std::vector<std::string> variables_;
};

} // namespace qda
