/*! \file truth_table.hpp
 *  \brief Dynamic truth table for Boolean functions of up to 26 variables.
 *
 *  The truth table is the workhorse representation for the reversible
 *  synthesis algorithms in this library (transformation-based synthesis,
 *  decomposition-based synthesis, ESOP covers).  The design follows the
 *  word-parallel style of the kitty library: functions over n <= 6
 *  variables fit into a single 64-bit word, larger functions use
 *  2^(n-6) words.  Bit i of the table stores f applied to the input
 *  assignment whose integer encoding is i (variable 0 = LSB).
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qda
{

/*! \brief A complete truth table of a single-output Boolean function. */
class truth_table
{
public:
  /*! \brief Constructs the constant-0 function over `num_vars` variables. */
  explicit truth_table( uint32_t num_vars );

  /*! \brief Maximum supported number of variables. */
  static constexpr uint32_t max_num_vars = 26u;

  /*! \brief Constant function over `num_vars` variables. */
  static truth_table constant( uint32_t num_vars, bool value );

  /*! \brief The projection function f(x) = x_var. */
  static truth_table projection( uint32_t num_vars, uint32_t var );

  /*! \brief Builds a table from a binary string; character 0 is f(0).
   *
   *  The string length must be a power of two.  Throws
   *  std::invalid_argument on malformed input.
   */
  static truth_table from_binary_string( std::string_view bits );

  /*! \brief Builds a table from a hex string (most significant digit first),
   *         as conventionally printed for truth tables.
   */
  static truth_table from_hex_string( uint32_t num_vars, std::string_view hex );

  /*! \brief Builds a table over `num_vars` variables whose bit i equals
   *         bit i of `bits` (only valid for num_vars <= 6).
   */
  static truth_table from_words( uint32_t num_vars, std::vector<uint64_t> words );

  uint32_t num_vars() const noexcept { return num_vars_; }
  uint64_t num_bits() const noexcept { return uint64_t{ 1 } << num_vars_; }
  uint32_t num_words() const noexcept { return static_cast<uint32_t>( words_.size() ); }

  bool get_bit( uint64_t index ) const;
  void set_bit( uint64_t index, bool value );
  void flip_bit( uint64_t index );

  const std::vector<uint64_t>& words() const noexcept { return words_; }

  /*! \brief Number of input assignments mapped to 1. */
  uint64_t count_ones() const noexcept;

  bool is_constant0() const noexcept;
  bool is_constant1() const noexcept;

  /*! \brief True if f actually depends on variable `var`. */
  bool depends_on( uint32_t var ) const;

  /*! \brief Variables the function depends on, ascending. */
  std::vector<uint32_t> support() const;

  /*! \brief Negative cofactor f|x_var=0, expressed over the same variables
   *         (the cofactored variable becomes irrelevant).
   */
  truth_table cofactor0( uint32_t var ) const;

  /*! \brief Positive cofactor f|x_var=1. */
  truth_table cofactor1( uint32_t var ) const;

  /*! \brief Swaps the roles of two input variables. */
  truth_table swap_variables( uint32_t var_a, uint32_t var_b ) const;

  /*! \brief Extends the function to `num_vars` variables (new variables are
   *         don't-care / irrelevant).  `num_vars` must be >= current size.
   */
  truth_table extend_to( uint32_t num_vars ) const;

  /*! \brief Evaluates f on the input assignment encoded as an integer. */
  bool evaluate( uint64_t assignment ) const { return get_bit( assignment ); }

  truth_table operator~() const;
  truth_table operator&( const truth_table& other ) const;
  truth_table operator|( const truth_table& other ) const;
  truth_table operator^( const truth_table& other ) const;
  truth_table& operator&=( const truth_table& other );
  truth_table& operator|=( const truth_table& other );
  truth_table& operator^=( const truth_table& other );

  bool operator==( const truth_table& other ) const;
  bool operator!=( const truth_table& other ) const;
  bool operator<( const truth_table& other ) const;

  /*! \brief Binary string, character 0 is f(0). */
  std::string to_binary_string() const;

  /*! \brief Hex string (most significant digit first). */
  std::string to_hex_string() const;

private:
  void mask_off_excess() noexcept;
  void check_compatible( const truth_table& other ) const;

  uint32_t num_vars_;
  std::vector<uint64_t> words_;
};

/*! \brief Inner-product bent function IP(x, y) = x_1 y_1 xor ... xor x_n y_n
 *         over 2n variables, with x on even indices and y on odd indices
 *         when `interleaved` is true, else x in the low half.
 */
truth_table inner_product_function( uint32_t half_vars, bool interleaved = false );

/*! \brief The hidden-weighted-bit function over n variables:
 *         f(x) = x_{weight(x)} if weight(x) > 0 else 0 -- here defined as the
 *         reversible benchmark convention used by RevKit's `revgen --hwb`
 *         (see hwb_permutation in synthesis/revgen.hpp for the permutation
 *         version); this single-output variant returns bit weight(x)-1 of x.
 */
truth_table hidden_weighted_bit_function( uint32_t num_vars );

/*! \brief Majority function over an odd number of variables. */
truth_table majority_function( uint32_t num_vars );

/*! \brief Uniformly random truth table from the given generator. */
truth_table random_truth_table( uint32_t num_vars, uint64_t seed );

} // namespace qda
