/*! \file permutation.hpp
 *  \brief Permutations over the Boolean cube B^n.
 *
 *  Reversible single-output-free circuits compute permutations of the
 *  2^n basis states; every reversible synthesis algorithm in this
 *  library consumes or produces this representation.  The class keeps
 *  the image vector pi with pi[x] = image of x.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace qda
{

/*! \brief A permutation of the 2^n bit strings over n variables. */
class permutation
{
public:
  /*! \brief Identity permutation over `num_vars` variables. */
  explicit permutation( uint32_t num_vars );

  /*! \brief Builds from an image vector; validates bijectivity.
   *
   *  The table length must be a power of two.  Throws
   *  std::invalid_argument if the mapping is not a bijection.
   */
  static permutation from_vector( std::vector<uint64_t> images );

  static permutation from_vector( std::initializer_list<uint64_t> images );

  /*! \brief Uniformly random permutation (Fisher–Yates). */
  static permutation random( uint32_t num_vars, uint64_t seed );

  /*! \brief The permutation x -> x xor constant. */
  static permutation xor_constant( uint32_t num_vars, uint64_t constant );

  uint32_t num_vars() const noexcept { return num_vars_; }
  uint64_t size() const noexcept { return images_.size(); }

  uint64_t operator[]( uint64_t index ) const { return images_.at( index ); }
  uint64_t apply( uint64_t index ) const { return images_.at( index ); }

  const std::vector<uint64_t>& images() const noexcept { return images_; }

  permutation inverse() const;

  /*! \brief Functional composition: (this ∘ other)(x) = this(other(x)). */
  permutation compose( const permutation& other ) const;

  bool is_identity() const noexcept;

  /*! \brief Cycle decomposition; fixed points are omitted. */
  std::vector<std::vector<uint64_t>> cycles() const;

  /*! \brief Parity of the permutation: true if odd. */
  bool is_odd() const;

  bool operator==( const permutation& other ) const = default;

  /*! \brief Writes the value `value` at position `index` (used by
   *         algorithms building permutations incrementally; the caller
   *         is responsible for restoring bijectivity).
   */
  void set_image( uint64_t index, uint64_t value ) { images_.at( index ) = value; }

private:
  uint32_t num_vars_;
  std::vector<uint64_t> images_;
};

} // namespace qda
