/*! \file rev_circuit.hpp
 *  \brief Reversible circuits: cascades of MCT gates over n lines.
 *
 *  A reversible circuit computes a permutation of the 2^n basis states
 *  by composing its gates left to right.  This is the intermediate
 *  representation between Boolean-function-level synthesis and the
 *  quantum (Clifford+T) level: circuits produced by the algorithms in
 *  src/synthesis/ are later mapped gate-by-gate by src/mapping/.
 */
#pragma once

#include "kernel/permutation.hpp"
#include "kernel/truth_table.hpp"
#include "reversible/rev_gate.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qda
{

/*! \brief A cascade of MCT gates. */
class rev_circuit
{
public:
  explicit rev_circuit( uint32_t num_lines );

  uint32_t num_lines() const noexcept { return num_lines_; }
  size_t num_gates() const noexcept { return gates_.size(); }
  bool empty() const noexcept { return gates_.empty(); }

  const std::vector<rev_gate>& gates() const noexcept { return gates_; }
  const rev_gate& gate( size_t index ) const { return gates_.at( index ); }

  /*! \brief Appends a gate (validates line indices). */
  void add_gate( const rev_gate& gate );

  void add_not( uint32_t target ) { add_gate( rev_gate::not_gate( target ) ); }
  void add_cnot( uint32_t control, uint32_t target )
  {
    add_gate( rev_gate::cnot( control, target ) );
  }
  void add_toffoli( uint32_t control0, uint32_t control1, uint32_t target )
  {
    add_gate( rev_gate::toffoli( control0, control1, target ) );
  }

  /*! \brief Appends all gates of `other` (line counts must agree). */
  void append( const rev_circuit& other );

  /*! \brief Prepends a gate (used by bidirectional synthesis). */
  void prepend_gate( const rev_gate& gate );

  /*! \brief The inverse circuit: gates reversed (MCT gates are self-inverse). */
  rev_circuit inverse() const;

  /*! \brief Applies the circuit to one basis state. */
  uint64_t simulate( uint64_t input ) const;

  /*! \brief The permutation computed by the circuit (n <= 20). */
  permutation to_permutation() const;

  /*! \brief Truth table of output line `line` as a function of all inputs. */
  truth_table output_function( uint32_t line ) const;

  /*! \brief Total controls over all gates (a classical cost proxy). */
  uint64_t control_count() const noexcept;

  /*! \brief Histogram entry: number of gates with exactly `k` controls. */
  std::vector<uint64_t> control_histogram() const;

  /*! \brief Quantum cost following the standard MCT cost table
   *         (Barenco et al. [40]): NOT/CNOT = 1, Toffoli = 5,
   *         k-control MCT = 2^(k+1) - 3 for k >= 2 (ancilla-free bound).
   */
  uint64_t quantum_cost() const noexcept;

  bool operator==( const rev_circuit& other ) const = default;

  /*! \brief Multi-line ASCII diagram (one row per line). */
  std::string to_ascii() const;

private:
  uint32_t num_lines_;
  std::vector<rev_gate> gates_;
};

/*! \brief Functional equivalence of two reversible circuits (n <= 20:
 *         exhaustive; larger: sampled with 4096 random probes).
 */
bool equivalent( const rev_circuit& a, const rev_circuit& b );

std::ostream& operator<<( std::ostream& os, const rev_circuit& circuit );

} // namespace qda
