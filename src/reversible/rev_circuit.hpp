/*! \file rev_circuit.hpp
 *  \brief Reversible circuits: cascades of MCT gates over n lines.
 *
 *  A reversible circuit computes a permutation of the 2^n basis states
 *  by composing its gates left to right.  This is the intermediate
 *  representation between Boolean-function-level synthesis and the
 *  quantum (Clifford+T) level: circuits produced by the algorithms in
 *  src/synthesis/ are later mapped gate-by-gate by src/mapping/.
 *
 *  Since the unified-IR redesign this class is a thin typed facade over
 *  `qda::ir::circuit<mct_policy>`: gates live in struct-of-arrays
 *  columns, `gates()` is a zero-copy view, and passes mutate in place
 *  through `rewrite()` instead of rebuilding gate vectors.
 */
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/mct_policy.hpp"
#include "kernel/permutation.hpp"
#include "kernel/truth_table.hpp"
#include "reversible/rev_gate.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qda
{

/*! \brief A cascade of MCT gates. */
class rev_circuit
{
public:
  using core_type = ir::circuit<ir::mct_policy>;
  using gates_view = core_type::gates_view;
  using rewriter = core_type::rewriter;

  explicit rev_circuit( uint32_t num_lines );

  uint32_t num_lines() const noexcept { return core_.num_wires(); }
  size_t num_gates() const noexcept { return core_.num_gates(); }
  bool empty() const noexcept { return core_.empty(); }

  /*! \brief Zero-copy view of the alive gates in circuit order. */
  gates_view gates() const noexcept { return core_.gates(); }
  rev_gate gate( size_t index ) const;

  /*! \brief Appends a gate (validates line indices). */
  ir::gate_handle add_gate( const rev_gate& gate );

  ir::gate_handle add_not( uint32_t target ) { return add_gate( rev_gate::not_gate( target ) ); }
  ir::gate_handle add_cnot( uint32_t control, uint32_t target )
  {
    return add_gate( rev_gate::cnot( control, target ) );
  }
  ir::gate_handle add_toffoli( uint32_t control0, uint32_t control1, uint32_t target )
  {
    return add_gate( rev_gate::toffoli( control0, control1, target ) );
  }

  /*! \brief Appends all gates of `other` (line counts must agree). */
  void append( const rev_circuit& other );

  /*! \brief Prepends a gate (used by bidirectional synthesis). */
  ir::gate_handle prepend_gate( const rev_gate& gate );

  /*! \brief The inverse circuit: gates reversed (MCT gates are self-inverse). */
  rev_circuit inverse() const;

  /*! \brief Applies the circuit to one basis state. */
  uint64_t simulate( uint64_t input ) const;

  /*! \brief The permutation computed by the circuit (n <= 20). */
  permutation to_permutation() const;

  /*! \brief Truth table of output line `line` as a function of all inputs. */
  truth_table output_function( uint32_t line ) const;

  /*! \brief Total controls over all gates (a classical cost proxy). */
  uint64_t control_count() const noexcept;

  /*! \brief Histogram entry: number of gates with exactly `k` controls. */
  std::vector<uint64_t> control_histogram() const;

  /*! \brief Quantum cost following the standard MCT cost table
   *         (Barenco et al. [40]): NOT/CNOT = 1, Toffoli = 5,
   *         k-control MCT = 2^(k+1) - 3 for k >= 2 (ancilla-free bound).
   */
  uint64_t quantum_cost() const noexcept;

  bool operator==( const rev_circuit& other ) const { return core_.equal( other.core_ ); }

  /*! \brief Multi-line ASCII diagram (one row per line). */
  std::string to_ascii() const;

  /* ---- unified-IR access (passes and tools) ---- */

  /*! \brief The shared gate-graph core (SoA columns, handles, slots). */
  const core_type& core() const noexcept { return core_; }
  core_type& core() noexcept { return core_; }

  /*! \brief In-place batched mutation; see `ir::circuit::rewriter`.
   *         Gates supplied to the rewriter are trusted to be valid for
   *         this circuit's line count.
   */
  rewriter rewrite() { return core_.rewrite(); }

private:
  core_type core_;
};

/*! \brief Functional equivalence of two reversible circuits (n <= 20:
 *         exhaustive; larger: sampled with 4096 random probes).
 */
bool equivalent( const rev_circuit& a, const rev_circuit& b );

std::ostream& operator<<( std::ostream& os, const rev_circuit& circuit );

} // namespace qda
