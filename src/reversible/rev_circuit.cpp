#include "reversible/rev_circuit.hpp"

#include "kernel/bits.hpp"

#include <algorithm>
#include <ostream>
#include <random>
#include <sstream>
#include <stdexcept>

namespace qda
{

rev_circuit::rev_circuit( uint32_t num_lines ) : core_( num_lines )
{
  if ( num_lines > 64u )
  {
    throw std::invalid_argument( "rev_circuit: at most 64 lines supported" );
  }
}

namespace
{

void check_gate_lines( const rev_gate& gate, uint32_t num_lines )
{
  const uint64_t line_mask =
      num_lines == 64u ? ~uint64_t{ 0 } : ( uint64_t{ 1 } << num_lines ) - 1u;
  if ( gate.target >= num_lines || ( gate.controls & ~line_mask ) != 0u )
  {
    throw std::invalid_argument( "rev_circuit: gate uses lines outside the circuit" );
  }
}

} // namespace

rev_gate rev_circuit::gate( size_t index ) const
{
  if ( index >= core_.num_gates() )
  {
    throw std::out_of_range( "rev_circuit::gate: index out of range" );
  }
  return core_.gate_at( index );
}

ir::gate_handle rev_circuit::add_gate( const rev_gate& gate )
{
  check_gate_lines( gate, num_lines() );
  return core_.emplace( gate.controls, gate.polarity, gate.target );
}

void rev_circuit::append( const rev_circuit& other )
{
  if ( other.num_lines() != num_lines() )
  {
    throw std::invalid_argument( "rev_circuit::append: line count mismatch" );
  }
  core_.append_from( other.core_ );
}

ir::gate_handle rev_circuit::prepend_gate( const rev_gate& gate )
{
  check_gate_lines( gate, num_lines() );
  return core_.prepend( gate );
}

rev_circuit rev_circuit::inverse() const
{
  rev_circuit result( num_lines() );
  result.core_.reserve( num_gates() );
  const auto& cols = core_.columns();
  for ( uint32_t slot = core_.num_slots(); slot-- > 0u; )
  {
    if ( core_.slot_alive( slot ) )
    {
      result.core_.emplace( cols.controls[slot], cols.polarity[slot], cols.target[slot] );
    }
  }
  return result;
}

uint64_t rev_circuit::simulate( uint64_t input ) const
{
  const auto& cols = core_.columns();
  uint64_t state = input;
  for ( uint32_t slot = 0u; slot < core_.num_slots(); ++slot )
  {
    if ( core_.slot_alive( slot ) &&
         ( ( state ^ cols.polarity[slot] ) & cols.controls[slot] ) == 0u )
    {
      state ^= uint64_t{ 1 } << cols.target[slot];
    }
  }
  return state;
}

permutation rev_circuit::to_permutation() const
{
  if ( num_lines() > 20u )
  {
    throw std::invalid_argument( "rev_circuit::to_permutation: too many lines for explicit expansion" );
  }
  permutation result( num_lines() );
  for ( uint64_t x = 0u; x < result.size(); ++x )
  {
    result.set_image( x, simulate( x ) );
  }
  return result;
}

truth_table rev_circuit::output_function( uint32_t line ) const
{
  if ( line >= num_lines() )
  {
    throw std::invalid_argument( "rev_circuit::output_function: line out of range" );
  }
  truth_table result( num_lines() );
  for ( uint64_t x = 0u; x < result.num_bits(); ++x )
  {
    result.set_bit( x, test_bit( simulate( x ), line ) );
  }
  return result;
}

uint64_t rev_circuit::control_count() const noexcept
{
  uint64_t total = 0u;
  for ( const auto& gate : gates() )
  {
    total += gate.num_controls();
  }
  return total;
}

std::vector<uint64_t> rev_circuit::control_histogram() const
{
  std::vector<uint64_t> histogram( num_lines(), 0u );
  for ( const auto& gate : gates() )
  {
    histogram[gate.num_controls()] += 1u;
  }
  return histogram;
}

uint64_t rev_circuit::quantum_cost() const noexcept
{
  uint64_t total = 0u;
  for ( const auto& gate : gates() )
  {
    const uint32_t k = gate.num_controls();
    if ( k <= 1u )
    {
      total += 1u;
    }
    else if ( k == 2u )
    {
      total += 5u;
    }
    else
    {
      total += ( uint64_t{ 1 } << ( k + 1u ) ) - 3u;
    }
  }
  return total;
}

std::string rev_circuit::to_ascii() const
{
  std::ostringstream out;
  for ( uint32_t line = 0u; line < num_lines(); ++line )
  {
    out << 'x' << line << ( line < 10u ? " " : "" ) << ": ";
    for ( const auto& gate : gates() )
    {
      if ( gate.target == line )
      {
        out << "(+)";
      }
      else if ( ( gate.controls >> line ) & 1u )
      {
        out << ( ( ( gate.polarity >> line ) & 1u ) ? " * " : " o " );
      }
      else
      {
        out << "---";
      }
    }
    out << '\n';
  }
  return out.str();
}

bool equivalent( const rev_circuit& a, const rev_circuit& b )
{
  if ( a.num_lines() != b.num_lines() )
  {
    return false;
  }
  if ( a.num_lines() <= 20u )
  {
    const uint64_t size = uint64_t{ 1 } << a.num_lines();
    for ( uint64_t x = 0u; x < size; ++x )
    {
      if ( a.simulate( x ) != b.simulate( x ) )
      {
        return false;
      }
    }
    return true;
  }
  std::mt19937_64 rng( 0xa5a5a5a5u );
  const uint64_t line_mask =
      a.num_lines() == 64u ? ~uint64_t{ 0 } : ( uint64_t{ 1 } << a.num_lines() ) - 1u;
  for ( uint32_t probe = 0u; probe < 4096u; ++probe )
  {
    const uint64_t x = rng() & line_mask;
    if ( a.simulate( x ) != b.simulate( x ) )
    {
      return false;
    }
  }
  return true;
}

std::ostream& operator<<( std::ostream& os, const rev_circuit& circuit )
{
  return os << circuit.to_ascii();
}

} // namespace qda
