#include "reversible/real_format.hpp"

#include "kernel/bits.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qda
{

namespace
{

std::string variable_name( uint32_t line )
{
  /* a, b, ..., z, x26, x27, ... */
  if ( line < 26u )
  {
    return std::string( 1u, static_cast<char>( 'a' + line ) );
  }
  return "x" + std::to_string( line );
}

} // namespace

std::string write_real( const rev_circuit& circuit )
{
  std::ostringstream out;
  out << "# written by qda (Programming Quantum Computers Using Design Automation)\n";
  out << ".version 2.0\n";
  out << ".numvars " << circuit.num_lines() << "\n";
  out << ".variables";
  for ( uint32_t line = 0u; line < circuit.num_lines(); ++line )
  {
    out << ' ' << variable_name( line );
  }
  out << "\n.begin\n";
  for ( const auto& gate : circuit.gates() )
  {
    out << 't' << ( gate.num_controls() + 1u );
    for ( uint32_t line = 0u; line < circuit.num_lines(); ++line )
    {
      if ( ( gate.controls >> line ) & 1u )
      {
        out << ' ';
        if ( !( ( gate.polarity >> line ) & 1u ) )
        {
          out << '-';
        }
        out << variable_name( line );
      }
    }
    out << ' ' << variable_name( gate.target ) << "\n";
  }
  out << ".end\n";
  return out.str();
}

rev_circuit read_real( std::string_view text )
{
  std::istringstream in{ std::string( text ) };
  std::string line;
  std::map<std::string, uint32_t> variable_index;
  uint32_t num_vars = 0u;
  bool in_body = false;
  std::vector<rev_gate> gates;

  while ( std::getline( in, line ) )
  {
    /* strip comments and whitespace */
    const auto hash = line.find( '#' );
    if ( hash != std::string::npos )
    {
      line.erase( hash );
    }
    std::istringstream tokens( line );
    std::string word;
    if ( !( tokens >> word ) )
    {
      continue;
    }

    if ( word == ".version" || word == ".inputs" || word == ".outputs" ||
         word == ".constants" || word == ".garbage" )
    {
      continue; /* metadata we do not need for simulation semantics */
    }
    if ( word == ".numvars" )
    {
      if ( !( tokens >> num_vars ) || num_vars == 0u || num_vars > 64u )
      {
        throw std::invalid_argument( "read_real: bad .numvars" );
      }
      continue;
    }
    if ( word == ".variables" )
    {
      std::string name;
      uint32_t index = 0u;
      while ( tokens >> name )
      {
        variable_index.emplace( name, index++ );
      }
      continue;
    }
    if ( word == ".begin" )
    {
      if ( num_vars == 0u )
      {
        throw std::invalid_argument( "read_real: .begin before .numvars" );
      }
      if ( variable_index.empty() )
      {
        for ( uint32_t v = 0u; v < num_vars; ++v )
        {
          variable_index.emplace( variable_name( v ), v );
        }
      }
      in_body = true;
      continue;
    }
    if ( word == ".end" )
    {
      in_body = false;
      continue;
    }
    if ( !in_body )
    {
      throw std::invalid_argument( "read_real: unexpected statement '" + word + "'" );
    }

    /* gate line: t<k> operands */
    if ( word.empty() || word[0] != 't' )
    {
      throw std::invalid_argument( "read_real: unsupported gate '" + word + "'" );
    }
    std::vector<std::pair<uint32_t, bool>> operands; /* (line, positive) */
    std::string operand;
    while ( tokens >> operand )
    {
      bool positive = true;
      if ( operand[0] == '-' )
      {
        positive = false;
        operand.erase( 0u, 1u );
      }
      const auto it = variable_index.find( operand );
      if ( it == variable_index.end() )
      {
        throw std::invalid_argument( "read_real: unknown variable '" + operand + "'" );
      }
      operands.emplace_back( it->second, positive );
    }
    if ( operands.empty() )
    {
      throw std::invalid_argument( "read_real: gate without operands" );
    }
    const uint32_t expected = static_cast<uint32_t>( std::stoul( word.substr( 1u ) ) );
    if ( expected != operands.size() )
    {
      throw std::invalid_argument( "read_real: gate arity does not match operand count" );
    }
    uint64_t controls = 0u;
    uint64_t polarity = 0u;
    for ( size_t i = 0u; i + 1u < operands.size(); ++i )
    {
      controls |= uint64_t{ 1 } << operands[i].first;
      if ( operands[i].second )
      {
        polarity |= uint64_t{ 1 } << operands[i].first;
      }
    }
    if ( !operands.back().second )
    {
      throw std::invalid_argument( "read_real: target cannot be negated" );
    }
    gates.emplace_back( controls, polarity, operands.back().first );
  }

  rev_circuit circuit( num_vars );
  for ( const auto& gate : gates )
  {
    circuit.add_gate( gate );
  }
  return circuit;
}

} // namespace qda
