/*! \file real_format.hpp
 *  \brief The RevKit/RevLib `.real` circuit interchange format.
 *
 *  RevKit (paper ref [68]) reads and writes reversible circuits in the
 *  RevLib `.real` format; supporting it makes this library's circuits
 *  interchangeable with the original toolchain and the RevLib benchmark
 *  suite.  Supported subset: header keys .version/.numvars/.variables/
 *  .inputs/.outputs/.constants/.garbage, Toffoli gate lines
 *  `t<k> [-]var...` (a leading '-' marks a negative control; the last
 *  variable is the target), and comments starting with '#'.
 */
#pragma once

#include "reversible/rev_circuit.hpp"

#include <string>
#include <string_view>

namespace qda
{

/*! \brief Serializes a circuit in `.real` format (variables a, b, c, ...). */
std::string write_real( const rev_circuit& circuit );

/*! \brief Parses the `.real` subset produced by write_real (and typical
 *         RevLib files with Toffoli-family gates).  Throws
 *         std::invalid_argument on malformed input.
 */
rev_circuit read_real( std::string_view text );

} // namespace qda
