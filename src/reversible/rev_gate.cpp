#include "reversible/rev_gate.hpp"

#include "kernel/bits.hpp"

#include <stdexcept>

namespace qda
{

rev_gate::rev_gate( uint64_t controls_, uint64_t polarity_, uint32_t target_ )
    : controls( controls_ ), polarity( polarity_ & controls_ ), target( target_ )
{
  if ( target_ >= 64u )
  {
    throw std::invalid_argument( "rev_gate: target line out of range" );
  }
  if ( ( controls_ >> target_ ) & 1u )
  {
    throw std::invalid_argument( "rev_gate: target cannot be a control" );
  }
}

rev_gate rev_gate::not_gate( uint32_t target )
{
  return rev_gate( 0u, 0u, target );
}

rev_gate rev_gate::cnot( uint32_t control, uint32_t target )
{
  return rev_gate( uint64_t{ 1 } << control, uint64_t{ 1 } << control, target );
}

rev_gate rev_gate::toffoli( uint32_t control0, uint32_t control1, uint32_t target )
{
  const uint64_t mask = ( uint64_t{ 1 } << control0 ) | ( uint64_t{ 1 } << control1 );
  return rev_gate( mask, mask, target );
}

rev_gate rev_gate::mct( const std::vector<uint32_t>& positive_controls,
                        const std::vector<uint32_t>& negative_controls, uint32_t target )
{
  uint64_t controls = 0u;
  uint64_t polarity = 0u;
  for ( const auto line : positive_controls )
  {
    controls |= uint64_t{ 1 } << line;
    polarity |= uint64_t{ 1 } << line;
  }
  for ( const auto line : negative_controls )
  {
    controls |= uint64_t{ 1 } << line;
  }
  return rev_gate( controls, polarity, target );
}

uint32_t rev_gate::num_controls() const noexcept
{
  return popcount64( controls );
}

bool rev_gate::commutes_with( const rev_gate& other ) const noexcept
{
  /* same target: both are (controlled) X on one line, conditions cannot
   * depend on that line */
  if ( target == other.target )
  {
    return true;
  }
  /* disjoint interaction: neither target is a control of the other */
  const bool target_in_other = ( other.controls >> target ) & 1u;
  const bool other_in_this = ( controls >> other.target ) & 1u;
  if ( !target_in_other && !other_in_this )
  {
    return true;
  }
  /* conflicting controls: the gates are never active simultaneously */
  if ( ( controls & other.controls & ( polarity ^ other.polarity ) ) != 0u )
  {
    return true;
  }
  return false;
}

std::string rev_gate::to_string() const
{
  std::string result = "t" + std::to_string( num_controls() + 1u ) + "(";
  bool first = true;
  for ( uint32_t line = 0u; line < 64u; ++line )
  {
    if ( ( controls >> line ) & 1u )
    {
      if ( !first )
      {
        result += ", ";
      }
      if ( !( ( polarity >> line ) & 1u ) )
      {
        result += '!';
      }
      result += 'x';
      result += std::to_string( line );
      first = false;
    }
  }
  if ( !first )
  {
    result += ", ";
  }
  result += 'x';
  result += std::to_string( target );
  result += ')';
  return result;
}

} // namespace qda
