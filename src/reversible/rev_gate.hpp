/*! \file rev_gate.hpp
 *  \brief Multiple-controlled Toffoli (MCT) gates with mixed-polarity controls.
 *
 *  MCT gates are the universal gate library of reversible logic
 *  synthesis (paper Sec. V): a gate flips its target line iff every
 *  control line matches its polarity.  Controls and polarities are
 *  stored as bit masks over up to 64 circuit lines, which keeps
 *  simulation word-parallel and gate comparisons O(1).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qda
{

/*! \brief One multiple-controlled Toffoli gate. */
struct rev_gate
{
  uint64_t controls = 0u; /*!< mask of control lines */
  uint64_t polarity = 0u; /*!< subset of `controls`: 1 = positive control */
  uint32_t target = 0u;   /*!< target line */

  rev_gate() = default;
  rev_gate( uint64_t controls_, uint64_t polarity_, uint32_t target_ );

  /*! \brief NOT gate on `target`. */
  static rev_gate not_gate( uint32_t target );

  /*! \brief CNOT with positive control. */
  static rev_gate cnot( uint32_t control, uint32_t target );

  /*! \brief Standard 2-control Toffoli. */
  static rev_gate toffoli( uint32_t control0, uint32_t control1, uint32_t target );

  /*! \brief Builds from explicit control line lists. */
  static rev_gate mct( const std::vector<uint32_t>& positive_controls,
                       const std::vector<uint32_t>& negative_controls, uint32_t target );

  uint32_t num_controls() const noexcept;

  /*! \brief True if the gate fires on the given line assignment. */
  bool is_active( uint64_t assignment ) const noexcept
  {
    return ( ( assignment ^ polarity ) & controls ) == 0u;
  }

  /*! \brief Applies the gate to a basis state. */
  uint64_t apply( uint64_t assignment ) const noexcept
  {
    return is_active( assignment ) ? assignment ^ ( uint64_t{ 1 } << target ) : assignment;
  }

  /*! \brief True if two gates act on disjoint line sets or otherwise
   *         commute trivially (neither target is in the other's controls
   *         with conflicting use, and targets differ or gates are equal).
   */
  bool commutes_with( const rev_gate& other ) const noexcept;

  bool operator==( const rev_gate& other ) const = default;

  /*! \brief Form like "t3(x0, !x1)" (RevKit-style). */
  std::string to_string() const;
};

} // namespace qda
