#include "networks/lut.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace qda
{

uint32_t lut_network::add_lut( std::vector<uint32_t> fanins, truth_table function )
{
  if ( function.num_vars() != fanins.size() )
  {
    throw std::invalid_argument( "lut_network::add_lut: function arity mismatch" );
  }
  const uint32_t id = num_pis_ + num_luts();
  for ( const auto fanin : fanins )
  {
    if ( fanin >= id )
    {
      throw std::invalid_argument( "lut_network::add_lut: fanin not yet defined" );
    }
  }
  luts_.emplace_back( std::move( fanins ), std::move( function ) );
  return id;
}

void lut_network::add_po( uint32_t node )
{
  if ( node >= num_pis_ + num_luts() )
  {
    throw std::invalid_argument( "lut_network::add_po: node not defined" );
  }
  outputs_.push_back( node );
}

uint32_t lut_network::max_fanin_size() const noexcept
{
  uint32_t result = 0u;
  for ( const auto& lut : luts_ )
  {
    result = std::max<uint32_t>( result, static_cast<uint32_t>( lut.fanins.size() ) );
  }
  return result;
}

std::vector<truth_table> lut_network::simulate() const
{
  std::vector<truth_table> tables;
  tables.reserve( num_pis_ + luts_.size() );
  for ( uint32_t pi = 0u; pi < num_pis_; ++pi )
  {
    tables.emplace_back( truth_table::projection( num_pis_, pi ) );
  }
  for ( const auto& lut : luts_ )
  {
    truth_table value( num_pis_ );
    for ( uint64_t x = 0u; x < value.num_bits(); ++x )
    {
      uint64_t local = 0u;
      for ( uint32_t i = 0u; i < lut.fanins.size(); ++i )
      {
        if ( tables[lut.fanins[i]].get_bit( x ) )
        {
          local |= uint64_t{ 1 } << i;
        }
      }
      value.set_bit( x, lut.function.get_bit( local ) );
    }
    tables.push_back( std::move( value ) );
  }

  std::vector<truth_table> result;
  result.reserve( outputs_.size() );
  for ( const auto output : outputs_ )
  {
    result.push_back( tables[output] );
  }
  return result;
}

uint32_t lut_network::num_internal_luts() const noexcept
{
  std::vector<bool> consumed( num_pis_ + luts_.size(), false );
  for ( const auto& lut : luts_ )
  {
    for ( const auto fanin : lut.fanins )
    {
      consumed[fanin] = true;
    }
  }
  uint32_t count = 0u;
  for ( uint32_t i = 0u; i < luts_.size(); ++i )
  {
    if ( consumed[num_pis_ + i] )
    {
      ++count;
    }
  }
  return count;
}

namespace
{

using cut = std::vector<uint32_t>; /* sorted node ids */

/*! Merges two sorted leaf sets; returns empty optional-like flag via size
 *  check against the limit.
 */
bool merge_cuts( const cut& a, const cut& b, uint32_t limit, cut& out )
{
  out.clear();
  std::set_union( a.begin(), a.end(), b.begin(), b.end(), std::back_inserter( out ) );
  return out.size() <= limit;
}

struct cut_database
{
  std::vector<std::vector<cut>> cuts; /* per node */
  static constexpr uint32_t max_cuts_per_node = 12u;
};

/*! Enumerates k-feasible cuts bottom-up. */
cut_database enumerate_cuts( const xag_network& network, uint32_t cut_size )
{
  cut_database db;
  db.cuts.resize( network.node_end() );

  /* constant node: empty cut */
  db.cuts[0] = { cut{} };
  for ( uint32_t node = 1u; node <= network.num_pis(); ++node )
  {
    db.cuts[node] = { cut{ node } };
  }
  for ( uint32_t node = network.first_gate(); node < network.node_end(); ++node )
  {
    const auto [f0, f1] = network.fanins( node );
    const uint32_t n0 = xag_network::node_of( f0 );
    const uint32_t n1 = xag_network::node_of( f1 );
    std::vector<cut> merged;
    cut scratch;
    for ( const auto& c0 : db.cuts[n0] )
    {
      for ( const auto& c1 : db.cuts[n1] )
      {
        if ( merge_cuts( c0, c1, cut_size, scratch ) )
        {
          if ( std::find( merged.begin(), merged.end(), scratch ) == merged.end() )
          {
            merged.push_back( scratch );
          }
        }
      }
    }
    /* prefer small cuts; keep the trivial cut last as fallback */
    std::sort( merged.begin(), merged.end(),
               []( const cut& a, const cut& b ) { return a.size() < b.size(); } );
    if ( merged.size() > cut_database::max_cuts_per_node )
    {
      merged.resize( cut_database::max_cuts_per_node );
    }
    merged.push_back( cut{ node } );
    db.cuts[node] = std::move( merged );
  }
  return db;
}

/*! Computes the local function of `node` in terms of the cut leaves. */
truth_table cut_function( const xag_network& network, uint32_t node, const cut& leaves )
{
  const uint32_t k = static_cast<uint32_t>( leaves.size() );
  std::unordered_map<uint32_t, truth_table> memo;
  struct evaluator
  {
    const xag_network& network;
    const cut& leaves;
    uint32_t k;
    std::unordered_map<uint32_t, truth_table>& memo;

    truth_table node_table( uint32_t n )
    {
      if ( const auto it = memo.find( n ); it != memo.end() )
      {
        return it->second;
      }
      truth_table result( k );
      const auto leaf_it = std::find( leaves.begin(), leaves.end(), n );
      if ( leaf_it != leaves.end() )
      {
        result = truth_table::projection(
            k, static_cast<uint32_t>( std::distance( leaves.begin(), leaf_it ) ) );
      }
      else if ( network.is_constant( n ) )
      {
        result = truth_table::constant( k, false );
      }
      else
      {
        const auto [f0, f1] = network.fanins( n );
        auto t0 = node_table( xag_network::node_of( f0 ) );
        if ( xag_network::is_complemented( f0 ) )
        {
          t0 = ~t0;
        }
        auto t1 = node_table( xag_network::node_of( f1 ) );
        if ( xag_network::is_complemented( f1 ) )
        {
          t1 = ~t1;
        }
        result = network.is_xor( n ) ? ( t0 ^ t1 ) : ( t0 & t1 );
      }
      memo.emplace( n, result );
      return result;
    }
  };
  return evaluator{ network, leaves, k, memo }.node_table( node );
}

} // namespace

lut_network lut_map( const xag_network& network, uint32_t cut_size )
{
  if ( cut_size < 2u || cut_size > 6u )
  {
    throw std::invalid_argument( "lut_map: cut size must be in [2, 6]" );
  }
  const auto db = enumerate_cuts( network, cut_size );

  lut_network mapped( network.num_pis() );
  std::unordered_map<uint32_t, uint32_t> xag_to_lut; /* xag node -> lut node id */
  for ( uint32_t pi = 1u; pi <= network.num_pis(); ++pi )
  {
    xag_to_lut[pi] = network.pi_index( pi );
  }

  /* area-greedy covering: map a node with its smallest non-trivial cut */
  struct cover_builder
  {
    const xag_network& network;
    const cut_database& db;
    lut_network& mapped;
    std::unordered_map<uint32_t, uint32_t>& xag_to_lut;

    uint32_t map_node( uint32_t node )
    {
      if ( const auto it = xag_to_lut.find( node ); it != xag_to_lut.end() )
      {
        return it->second;
      }
      /* choose the first cut whose leaves are not the node itself */
      const cut* chosen = nullptr;
      for ( const auto& candidate : db.cuts[node] )
      {
        if ( !( candidate.size() == 1u && candidate[0] == node ) )
        {
          chosen = &candidate;
          break;
        }
      }
      if ( chosen == nullptr )
      {
        throw std::logic_error( "lut_map: gate node without non-trivial cut" );
      }
      std::vector<uint32_t> fanins;
      fanins.reserve( chosen->size() );
      for ( const auto leaf : *chosen )
      {
        fanins.push_back( map_node( leaf ) );
      }
      const auto function = cut_function( network, node, *chosen );
      const uint32_t lut_id = mapped.add_lut( std::move( fanins ), function );
      xag_to_lut.emplace( node, lut_id );
      return lut_id;
    }
  };

  cover_builder builder{ network, db, mapped, xag_to_lut };
  for ( const auto output : network.outputs() )
  {
    const uint32_t node = xag_network::node_of( output );
    uint32_t mapped_node;
    if ( network.is_constant( node ) )
    {
      mapped_node = mapped.add_lut( {}, truth_table::constant( 0u, false ) );
    }
    else
    {
      mapped_node = builder.map_node( node );
    }
    if ( xag_network::is_complemented( output ) )
    {
      /* wrap an inverter LUT */
      mapped_node = mapped.add_lut( { mapped_node },
                                    ~truth_table::projection( 1u, 0u ) );
    }
    mapped.add_po( mapped_node );
  }
  return mapped;
}

} // namespace qda
