/*! \file xag.hpp
 *  \brief XOR-AND graphs (XAGs) with structural hashing.
 *
 *  Multi-level logic networks are the scalable function representation
 *  behind hierarchical reversible synthesis (paper Sec. V, refs
 *  [55], [63], [65]): internal nodes of the network are computed onto
 *  ancilla qubits.  The XAG is a good fit for the quantum cost model
 *  because AND nodes are the only ones that need Toffoli gates (and
 *  hence T gates), while XOR nodes map to plain CNOTs.
 *
 *  Signals are literals: 2 * node_index + complemented.  Node 0 is the
 *  constant false; primary inputs follow, then gates in creation order
 *  (which is automatically topological).
 */
#pragma once

#include "kernel/expression.hpp"
#include "kernel/truth_table.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qda
{

/*! \brief A literal pointing to an XAG node, with complement bit. */
using xag_signal = uint32_t;

/*! \brief XOR-AND graph with structural hashing and constant folding. */
class xag_network
{
public:
  xag_network();

  /*! \brief Constant signal. */
  xag_signal get_constant( bool value ) const noexcept { return value ? 1u : 0u; }

  /*! \brief Creates a new primary input. */
  xag_signal create_pi();

  /*! \brief Complemented copy of a signal. */
  static xag_signal create_not( xag_signal a ) noexcept { return a ^ 1u; }

  xag_signal create_and( xag_signal a, xag_signal b );
  xag_signal create_xor( xag_signal a, xag_signal b );
  xag_signal create_or( xag_signal a, xag_signal b );

  /*! \brief Registers a primary output. */
  void create_po( xag_signal signal );

  uint32_t num_pis() const noexcept { return num_pis_; }
  uint32_t num_pos() const noexcept { return static_cast<uint32_t>( outputs_.size() ); }

  /*! \brief Number of internal gate nodes (AND + XOR). */
  uint32_t num_gates() const noexcept;

  /*! \brief Number of AND nodes (the T-cost driver). */
  uint32_t num_and_gates() const noexcept;

  /*! \brief Number of XOR nodes. */
  uint32_t num_xor_gates() const noexcept;

  const std::vector<xag_signal>& outputs() const noexcept { return outputs_; }

  static uint32_t node_of( xag_signal signal ) noexcept { return signal >> 1u; }
  static bool is_complemented( xag_signal signal ) noexcept { return ( signal & 1u ) != 0u; }

  bool is_pi( uint32_t node ) const noexcept
  {
    return node >= 1u && node <= num_pis_;
  }
  bool is_constant( uint32_t node ) const noexcept { return node == 0u; }
  bool is_gate( uint32_t node ) const noexcept { return node > num_pis_; }
  bool is_and( uint32_t node ) const;
  bool is_xor( uint32_t node ) const;

  /*! \brief Fanin literals of a gate node. */
  std::pair<xag_signal, xag_signal> fanins( uint32_t node ) const;

  /*! \brief Index of first gate node. */
  uint32_t first_gate() const noexcept { return num_pis_ + 1u; }

  /*! \brief One past the last node index. */
  uint32_t node_end() const noexcept { return static_cast<uint32_t>( nodes_.size() ); }

  /*! \brief PI index (0-based) of a PI node. */
  uint32_t pi_index( uint32_t node ) const { return node - 1u; }

  /*! \brief Simulates all outputs into truth tables over the PIs. */
  std::vector<truth_table> simulate() const;

  /*! \brief Simulates a single signal. */
  truth_table simulate_signal( xag_signal signal ) const;

  /*! \brief Builds an XAG from a parsed Boolean expression (one output). */
  static xag_network from_expression( const boolean_expression& expression );

  /*! \brief Builds an XAG computing the given single-output function,
   *         by factoring its PKRM cover.
   */
  static xag_network from_truth_table( const truth_table& function );

private:
  struct node_data
  {
    xag_signal fanin0;
    xag_signal fanin1;
    bool is_xor;
  };

  struct gate_key
  {
    xag_signal fanin0;
    xag_signal fanin1;
    bool is_xor;
    bool operator==( const gate_key& other ) const = default;
  };

  struct gate_key_hash
  {
    size_t operator()( const gate_key& key ) const noexcept
    {
      uint64_t h = key.fanin0;
      h = h * 0x9e3779b97f4a7c15ull + key.fanin1;
      h = h * 0x9e3779b97f4a7c15ull + ( key.is_xor ? 1u : 0u );
      return static_cast<size_t>( h ^ ( h >> 32u ) );
    }
  };

  xag_signal create_gate( xag_signal a, xag_signal b, bool is_xor );

  uint32_t num_pis_ = 0u;
  std::vector<node_data> nodes_; /* index 0 = constant; PIs have dummy fanins */
  std::vector<xag_signal> outputs_;
  std::unordered_map<gate_key, uint32_t, gate_key_hash> strash_;
  bool pis_frozen_ = false;
};

} // namespace qda
