/*! \file lut.hpp
 *  \brief k-LUT networks and cut-based LUT mapping of XAGs.
 *
 *  LUT networks are the input representation of LUT-based hierarchical
 *  reversible synthesis (LHRS, paper ref [65]): every LUT becomes a
 *  single-target gate computing its (at most k-input) function onto an
 *  ancilla qubit, and the LUT structure determines how many ancillae
 *  are needed and when they can be uncomputed.
 */
#pragma once

#include "kernel/truth_table.hpp"
#include "networks/xag.hpp"

#include <cstdint>
#include <vector>

namespace qda
{

/*! \brief One look-up table node: a function over a few fanin nodes. */
struct lut_node
{
  std::vector<uint32_t> fanins; /*!< node ids (PIs or earlier LUTs) */
  truth_table function;         /*!< over fanins.size() variables */

  lut_node( std::vector<uint32_t> fanins_, truth_table function_ )
      : fanins( std::move( fanins_ ) ), function( std::move( function_ ) )
  {
  }
};

/*! \brief A feed-forward network of LUTs.
 *
 *  Node ids: 0 .. num_pis-1 are the primary inputs; id num_pis + i is
 *  the i-th LUT (LUTs are stored in topological order).
 */
class lut_network
{
public:
  explicit lut_network( uint32_t num_pis ) : num_pis_( num_pis ) {}

  uint32_t num_pis() const noexcept { return num_pis_; }
  uint32_t num_luts() const noexcept { return static_cast<uint32_t>( luts_.size() ); }
  uint32_t num_pos() const noexcept { return static_cast<uint32_t>( outputs_.size() ); }

  /*! \brief Appends a LUT; fanins must reference existing nodes. */
  uint32_t add_lut( std::vector<uint32_t> fanins, truth_table function );

  /*! \brief Registers node `node` as a primary output. */
  void add_po( uint32_t node );

  bool is_pi( uint32_t node ) const noexcept { return node < num_pis_; }

  const lut_node& lut_of( uint32_t node ) const { return luts_.at( node - num_pis_ ); }

  const std::vector<uint32_t>& outputs() const noexcept { return outputs_; }

  /*! \brief Largest fanin count over all LUTs. */
  uint32_t max_fanin_size() const noexcept;

  /*! \brief Simulates all outputs into truth tables over the PIs. */
  std::vector<truth_table> simulate() const;

  /*! \brief Number of LUTs whose value is consumed by later LUTs
   *         (these require intermediate ancilla qubits in LHRS).
   */
  uint32_t num_internal_luts() const noexcept;

private:
  uint32_t num_pis_;
  std::vector<lut_node> luts_;
  std::vector<uint32_t> outputs_;
};

/*! \brief Cut-based k-LUT mapping of an XAG (area-greedy covering).
 *
 *  `cut_size` must be between 2 and 6.  The mapped network computes the
 *  same outputs as the XAG.
 */
lut_network lut_map( const xag_network& network, uint32_t cut_size );

} // namespace qda
