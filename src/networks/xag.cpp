#include "networks/xag.hpp"

#include "esop/esop.hpp"

#include <stdexcept>
#include <utility>

namespace qda
{

xag_network::xag_network()
{
  nodes_.push_back( { 0u, 0u, false } ); /* constant node */
}

xag_signal xag_network::create_pi()
{
  if ( pis_frozen_ )
  {
    throw std::logic_error( "xag_network::create_pi: inputs must be created before gates" );
  }
  ++num_pis_;
  nodes_.push_back( { 0u, 0u, false } );
  return static_cast<xag_signal>( ( nodes_.size() - 1u ) << 1u );
}

xag_signal xag_network::create_and( xag_signal a, xag_signal b )
{
  /* constant folding */
  if ( a == get_constant( false ) || b == get_constant( false ) )
  {
    return get_constant( false );
  }
  if ( a == get_constant( true ) )
  {
    return b;
  }
  if ( b == get_constant( true ) )
  {
    return a;
  }
  if ( a == b )
  {
    return a;
  }
  if ( a == create_not( b ) )
  {
    return get_constant( false );
  }
  if ( a > b )
  {
    std::swap( a, b );
  }
  return create_gate( a, b, /*is_xor=*/false );
}

xag_signal xag_network::create_xor( xag_signal a, xag_signal b )
{
  if ( a == b )
  {
    return get_constant( false );
  }
  if ( a == create_not( b ) )
  {
    return get_constant( true );
  }
  if ( node_of( a ) == 0u )
  {
    return is_complemented( a ) ? create_not( b ) : b;
  }
  if ( node_of( b ) == 0u )
  {
    return is_complemented( b ) ? create_not( a ) : a;
  }
  /* canonicalize: push complements to the output */
  const bool complement = is_complemented( a ) != is_complemented( b );
  a &= ~1u;
  b &= ~1u;
  if ( a > b )
  {
    std::swap( a, b );
  }
  const xag_signal gate = create_gate( a, b, /*is_xor=*/true );
  return complement ? create_not( gate ) : gate;
}

xag_signal xag_network::create_or( xag_signal a, xag_signal b )
{
  return create_not( create_and( create_not( a ), create_not( b ) ) );
}

void xag_network::create_po( xag_signal signal )
{
  outputs_.push_back( signal );
}

uint32_t xag_network::num_gates() const noexcept
{
  return static_cast<uint32_t>( nodes_.size() ) - num_pis_ - 1u;
}

uint32_t xag_network::num_and_gates() const noexcept
{
  uint32_t count = 0u;
  for ( uint32_t node = first_gate(); node < node_end(); ++node )
  {
    if ( !nodes_[node].is_xor )
    {
      ++count;
    }
  }
  return count;
}

uint32_t xag_network::num_xor_gates() const noexcept
{
  return num_gates() - num_and_gates();
}

bool xag_network::is_and( uint32_t node ) const
{
  return is_gate( node ) && !nodes_[node].is_xor;
}

bool xag_network::is_xor( uint32_t node ) const
{
  return is_gate( node ) && nodes_[node].is_xor;
}

std::pair<xag_signal, xag_signal> xag_network::fanins( uint32_t node ) const
{
  if ( !is_gate( node ) )
  {
    throw std::invalid_argument( "xag_network::fanins: not a gate node" );
  }
  return { nodes_[node].fanin0, nodes_[node].fanin1 };
}

xag_signal xag_network::create_gate( xag_signal a, xag_signal b, bool is_xor )
{
  pis_frozen_ = true;
  const gate_key key{ a, b, is_xor };
  if ( const auto it = strash_.find( key ); it != strash_.end() )
  {
    return static_cast<xag_signal>( it->second << 1u );
  }
  const uint32_t node = static_cast<uint32_t>( nodes_.size() );
  nodes_.push_back( { a, b, is_xor } );
  strash_.emplace( key, node );
  return static_cast<xag_signal>( node << 1u );
}

std::vector<truth_table> xag_network::simulate() const
{
  std::vector<truth_table> node_tables;
  node_tables.reserve( nodes_.size() );
  node_tables.emplace_back( truth_table::constant( num_pis_, false ) );
  for ( uint32_t pi = 0u; pi < num_pis_; ++pi )
  {
    node_tables.emplace_back( truth_table::projection( num_pis_, pi ) );
  }
  for ( uint32_t node = first_gate(); node < node_end(); ++node )
  {
    const auto& data = nodes_[node];
    auto f0 = node_tables[node_of( data.fanin0 )];
    if ( is_complemented( data.fanin0 ) )
    {
      f0 = ~f0;
    }
    auto f1 = node_tables[node_of( data.fanin1 )];
    if ( is_complemented( data.fanin1 ) )
    {
      f1 = ~f1;
    }
    node_tables.emplace_back( data.is_xor ? ( f0 ^ f1 ) : ( f0 & f1 ) );
  }

  std::vector<truth_table> result;
  result.reserve( outputs_.size() );
  for ( const auto output : outputs_ )
  {
    auto table = node_tables[node_of( output )];
    if ( is_complemented( output ) )
    {
      table = ~table;
    }
    result.push_back( std::move( table ) );
  }
  return result;
}

truth_table xag_network::simulate_signal( xag_signal signal ) const
{
  xag_network copy = *this;
  copy.outputs_.clear();
  copy.outputs_.push_back( signal );
  return copy.simulate().front();
}

namespace
{

xag_signal build_from_node( xag_network& network, const expr_node& node,
                            const std::vector<xag_signal>& inputs )
{
  switch ( node.kind )
  {
  case expr_kind::constant:
    return network.get_constant( node.constant_value );
  case expr_kind::variable:
    return inputs[node.variable];
  case expr_kind::not_op:
    return xag_network::create_not( build_from_node( network, *node.left, inputs ) );
  case expr_kind::and_op:
    return network.create_and( build_from_node( network, *node.left, inputs ),
                               build_from_node( network, *node.right, inputs ) );
  case expr_kind::or_op:
    return network.create_or( build_from_node( network, *node.left, inputs ),
                              build_from_node( network, *node.right, inputs ) );
  case expr_kind::xor_op:
    return network.create_xor( build_from_node( network, *node.left, inputs ),
                               build_from_node( network, *node.right, inputs ) );
  }
  return network.get_constant( false );
}

} // namespace

xag_network xag_network::from_expression( const boolean_expression& expression )
{
  xag_network network;
  std::vector<xag_signal> inputs;
  for ( uint32_t i = 0u; i < expression.num_variables(); ++i )
  {
    inputs.push_back( network.create_pi() );
  }
  network.create_po( build_from_node( network, expression.root(), inputs ) );
  return network;
}

xag_network xag_network::from_truth_table( const truth_table& function )
{
  xag_network network;
  std::vector<xag_signal> inputs;
  for ( uint32_t i = 0u; i < function.num_vars(); ++i )
  {
    inputs.push_back( network.create_pi() );
  }
  const auto cover = esop_for_function( function );
  xag_signal accumulator = network.get_constant( false );
  for ( const auto& term : cover )
  {
    xag_signal product = network.get_constant( true );
    for ( uint32_t var = 0u; var < function.num_vars(); ++var )
    {
      if ( ( term.mask >> var ) & 1u )
      {
        const bool positive = ( term.polarity >> var ) & 1u;
        product = network.create_and( product,
                                      positive ? inputs[var] : create_not( inputs[var] ) );
      }
    }
    accumulator = network.create_xor( accumulator, product );
  }
  network.create_po( accumulator );
  return network;
}

} // namespace qda
