/*! \file gate_handle.hpp
 *  \brief Stable identifiers for gates inside the unified circuit IR.
 *
 *  A handle names one gate for the lifetime of its circuit: it survives
 *  tombstone erasure of *other* gates, rewriter commits, and storage
 *  compaction.  Handles of erased gates become dangling and are
 *  reported dead by `circuit::alive`.
 */
#pragma once

#include <cstdint>

namespace qda::ir
{

/*! \brief Sentinel for "no slot / no id / no pool entry". */
inline constexpr uint32_t npos = 0xFFFFFFFFu;

/*! \brief Stable, circuit-scoped gate identifier. */
struct gate_handle
{
  uint32_t id = npos;

  constexpr bool valid() const noexcept { return id != npos; }
  constexpr bool operator==( const gate_handle& other ) const noexcept = default;
};

} // namespace qda::ir
