/*! \file circuit.hpp
 *  \brief The unified gate-graph core shared by all circuit levels.
 *
 *  `qda::ir::circuit<Policy>` is the single container behind the
 *  reversible (`rev_circuit`, MCT policy) and quantum (`qcircuit`,
 *  Clifford+T policy) facades of the paper's Eq. (5) flow.  The policy
 *  supplies struct-of-arrays gate storage (its `columns` type); the
 *  core supplies everything a pass needs and no facade should
 *  re-implement:
 *
 *   - stable `gate_handle`s that survive erasure of other gates and
 *     storage compaction,
 *   - O(1) tombstone erasure with deferred compaction, so erase-heavy
 *     passes never pay the O(n) vector-erase memmove of the old split
 *     containers,
 *   - zero-copy `gates_view` iteration yielding the policy's view type
 *     (a POD row for MCT gates, a span-backed `qgate_view` for
 *     Clifford+T gates),
 *   - a batching `rewriter` (`erase`, `replace`, `insert_before/after`,
 *     `append`, `commit`) so passes mutate in place instead of
 *     copy-rebuilding whole gate vectors.
 *
 *  Invalidation rules: tombstone erasure and in-place replacement keep
 *  iterators and slot indices valid; pending rewriter inserts are not
 *  visible until `commit()`, which compacts storage and invalidates
 *  slots/iterators (handles stay valid).  Appending may reallocate the
 *  operand slab, so span-backed views must not be kept across any
 *  mutation.
 */
#pragma once

#include "circuit/gate_handle.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

namespace qda::ir
{

/*! \brief Unified circuit container parameterized by a gate policy.
 *
 *  The policy provides:
 *   - `gate_type`: the materialized value type (e.g. `rev_gate`),
 *   - `view_type`: what iteration yields (value or zero-copy proxy),
 *   - `columns`: SoA storage with `size/reserve/push_back/set_row/
 *     copy_row_from/prepend/get`,
 *   - `view_at(columns, slot)` and `rows_equal(a, sa, b, sb)`.
 */
template<typename Policy>
class circuit
{
public:
  using policy_type = Policy;
  using gate_type = typename Policy::gate_type;
  using view_type = typename Policy::view_type;
  using columns_type = typename Policy::columns;

  explicit circuit( uint32_t num_wires ) : num_wires_( num_wires ) {}

  uint32_t num_wires() const noexcept { return num_wires_; }

  /*! \brief Number of alive (non-tombstoned) gates. */
  size_t num_gates() const noexcept { return cols_.size() - num_dead_; }
  bool empty() const noexcept { return num_gates() == 0u; }

  /* ---- slot-level access (hot-path passes read columns directly) ---- */

  /*! \brief Number of storage slots, dead ones included. */
  uint32_t num_slots() const noexcept { return static_cast<uint32_t>( cols_.size() ); }
  bool slot_alive( uint32_t slot ) const noexcept { return dead_[slot] == 0u; }
  uint32_t num_tombstones() const noexcept { return num_dead_; }

  /*! \brief Nearest alive slot strictly before `slot`, or 0 if none
   *         (callers skipping dead slots tolerate a dead slot 0).
   *         Lets erase-heavy passes step back after a cancellation so
   *         newly-adjacent pairs collapse within the same sweep.
   */
  uint32_t previous_alive( uint32_t slot ) const noexcept
  {
    while ( slot-- > 0u )
    {
      if ( dead_[slot] == 0u )
      {
        return slot;
      }
    }
    return 0u;
  }
  const columns_type& columns() const noexcept { return cols_; }

  view_type view_at_slot( uint32_t slot ) const { return Policy::view_at( cols_, slot ); }

  /* ---- stable handles ---- */

  gate_handle handle_at_slot( uint32_t slot ) const noexcept { return { id_of_[slot] }; }

  bool alive( gate_handle handle ) const noexcept
  {
    return handle.id < slot_of_.size() && slot_of_[handle.id] != npos;
  }

  /*! \brief Current slot of a handle (npos when erased). */
  uint32_t slot_of( gate_handle handle ) const noexcept { return slot_of_[handle.id]; }

  /*! \brief Gate named by `handle`; throws std::out_of_range if erased. */
  view_type operator[]( gate_handle handle ) const
  {
    return Policy::view_at( cols_, checked_slot( handle ) );
  }

  /* ---- construction ---- */

  gate_handle append( const gate_type& gate )
  {
    cols_.push_back( gate );
    return register_new_row();
  }

  /*! \brief In-place row construction from policy-specific parts,
   *         skipping `gate_type` materialization on builder hot paths.
   */
  template<typename... Args>
  gate_handle emplace( Args&&... args )
  {
    cols_.emplace_row( std::forward<Args>( args )... );
    return register_new_row();
  }

  /*! \brief O(n) front insertion (rare; bidirectional synthesis). */
  gate_handle prepend( const gate_type& gate )
  {
    cols_.prepend( gate );
    dead_.insert( dead_.begin(), 0u );
    const uint32_t id = static_cast<uint32_t>( slot_of_.size() );
    id_of_.insert( id_of_.begin(), id );
    slot_of_.push_back( 0u );
    reindex_slots();
    return { id };
  }

  /*! \brief Appends every alive gate of `other` without materializing.
   *         Self-append is supported (the slot count is snapshotted).
   */
  void append_from( const circuit& other )
  {
    const uint32_t count = other.num_slots();
    for ( uint32_t slot = 0u; slot < count; ++slot )
    {
      if ( other.dead_[slot] == 0u )
      {
        cols_.copy_row_from( other.cols_, slot );
        register_new_row();
      }
    }
  }

  void reserve( size_t n ) { cols_.reserve( n ); }

  /* ---- views ---- */

  class const_iterator
  {
  public:
    using iterator_category = std::input_iterator_tag;
    using value_type = view_type;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = view_type;

    const_iterator() = default;

    view_type operator*() const { return Policy::view_at( c_->cols_, slot_ ); }
    gate_handle handle() const { return c_->handle_at_slot( slot_ ); }
    uint32_t slot() const noexcept { return slot_; }

    const_iterator& operator++()
    {
      slot_ = c_->next_alive( slot_ + 1u );
      return *this;
    }
    const_iterator operator++( int )
    {
      auto copy = *this;
      ++*this;
      return copy;
    }
    bool operator==( const const_iterator& other ) const noexcept { return slot_ == other.slot_; }

  private:
    friend class circuit;
    const_iterator( const circuit* c, uint32_t slot ) : c_( c ), slot_( slot ) {}

    const circuit* c_ = nullptr;
    uint32_t slot_ = npos;
  };

  /*! \brief Zero-copy range over the alive gates, in circuit order. */
  class gates_view
  {
  public:
    const_iterator begin() const { return { c_, c_->next_alive( 0u ) }; }
    const_iterator end() const { return { c_, c_->num_slots() }; }
    size_t size() const noexcept { return c_->num_gates(); }
    bool empty() const noexcept { return size() == 0u; }
    view_type operator[]( size_t index ) const { return c_->gate_at( index ); }

    friend bool operator==( const gates_view& a, const gates_view& b )
    {
      if ( a.size() != b.size() )
      {
        return false;
      }
      auto ia = a.begin();
      auto ib = b.begin();
      for ( ; ia != a.end(); ++ia, ++ib )
      {
        if ( !Policy::rows_equal( a.c_->columns(), ia.slot(), b.c_->columns(), ib.slot() ) )
        {
          return false;
        }
      }
      return true;
    }

  private:
    friend class circuit;
    explicit gates_view( const circuit* c ) : c_( c ) {}
    const circuit* c_;
  };

  gates_view gates() const noexcept { return gates_view( this ); }

  /*! \brief Alive gate by position; O(1) when storage is compacted. */
  view_type gate_at( size_t index ) const
  {
    if ( num_dead_ == 0u )
    {
      return Policy::view_at( cols_, static_cast<uint32_t>( index ) );
    }
    uint32_t slot = next_alive( 0u );
    for ( size_t i = 0u; i < index; ++i )
    {
      slot = next_alive( slot + 1u );
    }
    return Policy::view_at( cols_, slot );
  }

  bool equal( const circuit& other ) const
  {
    return num_wires_ == other.num_wires_ && gates() == other.gates();
  }

  /* ---- in-place rewriting ---- */

  /*! \brief Batched mutator.  Erase/replace act immediately (slots stay
   *         stable); inserts are queued and applied by `commit()`, which
   *         also compacts tombstones.  The destructor commits.
   */
  class rewriter
  {
  public:
    rewriter( const rewriter& ) = delete;
    rewriter& operator=( const rewriter& ) = delete;
    rewriter( rewriter&& other ) noexcept
        : c_( other.c_ ), pending_( std::move( other.pending_ ) )
    {
      other.c_ = nullptr;
    }

    ~rewriter()
    {
      if ( c_ != nullptr )
      {
        commit();
      }
    }

    bool slot_alive( uint32_t slot ) const noexcept { return c_->slot_alive( slot ); }

    /*! \brief O(1) tombstone erasure; the slot keeps its index.
     *         Idempotent, both by slot and by handle.
     */
    void erase_slot( uint32_t slot ) { c_->erase_slot_impl( slot ); }
    void erase( gate_handle handle )
    {
      const uint32_t slot = c_->slot_of_[handle.id];
      if ( slot != npos )
      {
        erase_slot( slot );
      }
    }

    /*! \brief In-place overwrite; the gate keeps slot and handle.
     *         Throws std::out_of_range for an erased handle.
     */
    void replace_slot( uint32_t slot, const gate_type& gate ) { c_->cols_.set_row( slot, gate ); }
    void replace( gate_handle handle, const gate_type& gate )
    {
      replace_slot( c_->checked_slot( handle ), gate );
    }

    /*! \brief Queues `gate` before/after `slot`; visible after commit().
     *         Handle forms throw std::out_of_range for an erased handle.
     */
    gate_handle insert_before_slot( uint32_t slot, const gate_type& gate )
    {
      return queue( slot * 2u, gate );
    }
    gate_handle insert_before_slot( uint32_t slot, gate_type&& gate )
    {
      return queue( slot * 2u, std::move( gate ) );
    }
    gate_handle insert_after_slot( uint32_t slot, const gate_type& gate )
    {
      return queue( slot * 2u + 1u, gate );
    }
    gate_handle insert_before( gate_handle handle, const gate_type& gate )
    {
      return insert_before_slot( c_->checked_slot( handle ), gate );
    }
    gate_handle insert_after( gate_handle handle, const gate_type& gate )
    {
      return insert_after_slot( c_->checked_slot( handle ), gate );
    }

    /*! \brief Queues `gate` at the end of the circuit. */
    gate_handle append( const gate_type& gate ) { return queue( npos, gate ); }

    /*! \brief Applies queued inserts and compacts tombstones.  Slot
     *         indices and iterators are invalidated; handles survive.
     */
    void commit() { c_->commit_rewrites( pending_ ); }

  private:
    friend class circuit;
    explicit rewriter( circuit* c ) : c_( c ) {}

    template<typename Gate>
    gate_handle queue( uint32_t key, Gate&& gate )
    {
      const uint32_t id = static_cast<uint32_t>( c_->slot_of_.size() );
      c_->slot_of_.push_back( npos );
      pending_.push_back( { key, id, std::forward<Gate>( gate ) } );
      return { id };
    }

    circuit* c_;
    std::vector<typename circuit::pending_insert> pending_;
  };

  rewriter rewrite() { return rewriter( this ); }

  /*! \brief Removes tombstoned rows; handles are remapped, slots shift. */
  void compact()
  {
    if ( num_dead_ == 0u )
    {
      return;
    }
    std::vector<pending_insert> none;
    commit_rewrites( none );
  }

private:
  struct pending_insert
  {
    uint32_t key; /*!< 2*slot = before slot, 2*slot+1 = after slot, npos = end */
    uint32_t id;  /*!< handle id reserved at queue time */
    gate_type gate;
  };

  uint32_t checked_slot( gate_handle handle ) const
  {
    if ( handle.id >= slot_of_.size() || slot_of_[handle.id] == npos )
    {
      throw std::out_of_range( "ir::circuit: handle names an erased or unknown gate" );
    }
    return slot_of_[handle.id];
  }

  gate_handle register_new_row()
  {
    const uint32_t slot = static_cast<uint32_t>( dead_.size() );
    const uint32_t id = static_cast<uint32_t>( slot_of_.size() );
    slot_of_.push_back( slot );
    id_of_.push_back( id );
    dead_.push_back( 0u );
    return { id };
  }

  uint32_t next_alive( uint32_t slot ) const noexcept
  {
    const uint32_t size = num_slots();
    while ( slot < size && dead_[slot] != 0u )
    {
      ++slot;
    }
    return slot < size ? slot : size;
  }

  void erase_slot_impl( uint32_t slot )
  {
    if ( dead_[slot] != 0u )
    {
      return;
    }
    dead_[slot] = 1u;
    ++num_dead_;
    slot_of_[id_of_[slot]] = npos;
  }

  void reindex_slots()
  {
    for ( uint32_t slot = 0u; slot < num_slots(); ++slot )
    {
      if ( dead_[slot] == 0u )
      {
        slot_of_[id_of_[slot]] = slot;
      }
    }
  }

  void commit_rewrites( std::vector<pending_insert>& pending )
  {
    if ( pending.empty() && num_dead_ == 0u )
    {
      return;
    }
    /* stable by key keeps the queueing order of same-anchor inserts */
    std::stable_sort( pending.begin(), pending.end(),
                      []( const pending_insert& a, const pending_insert& b ) {
                        return a.key < b.key;
                      } );

    columns_type fresh;
    fresh.reserve( num_gates() + pending.size() );
    std::vector<uint32_t> fresh_ids;
    fresh_ids.reserve( num_gates() + pending.size() );

    size_t next = 0u;
    const auto emit_pending_up_to = [&]( uint32_t key ) {
      while ( next < pending.size() && pending[next].key <= key )
      {
        fresh.push_back( pending[next].gate );
        slot_of_[pending[next].id] = static_cast<uint32_t>( fresh_ids.size() );
        fresh_ids.push_back( pending[next].id );
        ++next;
      }
    };

    for ( uint32_t slot = 0u; slot < num_slots(); ++slot )
    {
      emit_pending_up_to( slot * 2u );
      if ( dead_[slot] == 0u )
      {
        const uint32_t id = id_of_[slot];
        slot_of_[id] = static_cast<uint32_t>( fresh_ids.size() );
        fresh.copy_row_from( cols_, slot );
        fresh_ids.push_back( id );
      }
    }
    emit_pending_up_to( npos );

    cols_ = std::move( fresh );
    id_of_ = std::move( fresh_ids );
    dead_.assign( id_of_.size(), 0u );
    num_dead_ = 0u;
    pending.clear();
  }

  uint32_t num_wires_;
  columns_type cols_;
  std::vector<uint8_t> dead_;     /*!< tombstone flags per slot */
  std::vector<uint32_t> id_of_;   /*!< slot -> handle id */
  std::vector<uint32_t> slot_of_; /*!< handle id -> slot (npos = erased) */
  uint32_t num_dead_ = 0u;
};

} // namespace qda::ir
