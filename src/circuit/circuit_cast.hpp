/*! \file circuit_cast.hpp
 *  \brief Lowering hook between circuit levels of the Eq. (5) flow.
 *
 *  `circuit_cast<To>(from, args...)` converts a circuit of one level
 *  into the next (permutation -> reversible -> Clifford+T -> mapped)
 *  through the `circuit_lowering` customization point.  Each lowering
 *  lives with the layer that implements it (e.g. mapping/clifford_t.hpp
 *  specializes `rev_circuit -> clifford_t_result` for `rptm`), so the
 *  pipeline calls one uniform entry point instead of bespoke per-pass
 *  conversion functions.
 */
#pragma once

#include <utility>

namespace qda
{

/*! \brief Customization point: specialize with a static
 *         `To apply( const From&, Args&&... )`.
 */
template<typename To, typename From>
struct circuit_lowering; /* primary template intentionally undefined */

/*! \brief Lowers `from` to representation `To`. */
template<typename To, typename From, typename... Args>
To circuit_cast( const From& from, Args&&... args )
{
  return circuit_lowering<To, From>::apply( from, std::forward<Args>( args )... );
}

} // namespace qda
