/*! \file mct_policy.hpp
 *  \brief Gate policy of the reversible (MCT) circuit level.
 *
 *  Rows are fixed-size (control mask, polarity mask, target line), so
 *  the struct-of-arrays columns need no operand slab: each field is one
 *  dense vector, mask comparisons stay O(1), and the view type is the
 *  materialized `rev_gate` itself (a 3-word POD copy, no allocation).
 */
#pragma once

#include "circuit/gate_handle.hpp"
#include "reversible/rev_gate.hpp"

#include <cstdint>
#include <vector>

namespace qda::ir
{

struct mct_policy
{
  using gate_type = rev_gate;
  using view_type = rev_gate; /* POD row: "view" is a trivial copy */

  struct columns
  {
    std::vector<uint64_t> controls;
    std::vector<uint64_t> polarity;
    std::vector<uint32_t> target;

    size_t size() const noexcept { return target.size(); }

    void reserve( size_t n )
    {
      controls.reserve( n );
      polarity.reserve( n );
      target.reserve( n );
    }

    void push_back( const rev_gate& gate )
    {
      emplace_row( gate.controls, gate.polarity, gate.target );
    }

    void emplace_row( uint64_t controls_, uint64_t polarity_, uint32_t target_ )
    {
      controls.push_back( controls_ );
      polarity.push_back( polarity_ );
      target.push_back( target_ );
    }

    void prepend( const rev_gate& gate )
    {
      controls.insert( controls.begin(), gate.controls );
      polarity.insert( polarity.begin(), gate.polarity );
      target.insert( target.begin(), gate.target );
    }

    void set_row( uint32_t slot, const rev_gate& gate )
    {
      controls[slot] = gate.controls;
      polarity[slot] = gate.polarity;
      target[slot] = gate.target;
    }

    void copy_row_from( const columns& src, uint32_t slot )
    {
      emplace_row( src.controls[slot], src.polarity[slot], src.target[slot] );
    }

    rev_gate get( uint32_t slot ) const
    {
      rev_gate gate;
      gate.controls = controls[slot];
      gate.polarity = polarity[slot];
      gate.target = target[slot];
      return gate;
    }
  };

  static view_type view_at( const columns& cols, uint32_t slot ) { return cols.get( slot ); }

  static bool rows_equal( const columns& a, uint32_t sa, const columns& b, uint32_t sb )
  {
    return a.controls[sa] == b.controls[sb] && a.polarity[sa] == b.polarity[sb] &&
           a.target[sa] == b.target[sb];
  }
};

} // namespace qda::ir
