/*! \file cliffordt_policy.hpp
 *  \brief Gate policy of the quantum (Clifford+T) circuit level.
 *
 *  Variable-size gate data lives out of line: control qubits go into a
 *  shared operand slab (per-row offset/count), rotation angles into a
 *  deduplicated angle pool (per-row index, `npos` when the gate has no
 *  angle).  Rows are therefore fixed-size and cache-friendly, and the
 *  view type (`qgate_view`) spans the slab instead of copying it.
 *  Replacing a row may strand old slab entries; compaction (driven by
 *  the core on rewriter commit) rebuilds the slab densely.
 */
#pragma once

#include "circuit/gate_handle.hpp"
#include "quantum/qgate.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

namespace qda::ir
{

struct cliffordt_policy
{
  using gate_type = qgate;
  using view_type = qgate_view;

  struct columns
  {
    std::vector<gate_kind> kind;
    std::vector<uint32_t> target;
    std::vector<uint32_t> target2;
    std::vector<uint32_t> op_offset;   /*!< first control in the slab */
    std::vector<uint32_t> op_count;    /*!< number of controls */
    std::vector<uint32_t> angle_index; /*!< pool index, npos = no angle */

    std::vector<uint32_t> operands; /*!< shared control-qubit slab */
    std::vector<double> angles;     /*!< deduplicated angle pool */

    size_t size() const noexcept { return kind.size(); }

    void reserve( size_t n )
    {
      kind.reserve( n );
      target.reserve( n );
      target2.reserve( n );
      op_offset.reserve( n );
      op_count.reserve( n );
      angle_index.reserve( n );
      operands.reserve( n );
    }

    void push_back( const qgate& gate )
    {
      emplace_row( gate.kind, std::span<const uint32_t>( gate.controls ), gate.target,
                   gate.target2, gate.angle );
    }

    void emplace_row( gate_kind kind_, std::span<const uint32_t> controls_, uint32_t target_,
                      uint32_t target2_, double angle_ )
    {
      kind.push_back( kind_ );
      target.push_back( target_ );
      target2.push_back( target2_ );
      op_offset.push_back( static_cast<uint32_t>( operands.size() ) );
      op_count.push_back( static_cast<uint32_t>( controls_.size() ) );
      append_operands( controls_ );
      angle_index.push_back( angle_slot( kind_, angle_ ) );
    }

    void prepend( const qgate& gate )
    {
      kind.insert( kind.begin(), gate.kind );
      target.insert( target.begin(), gate.target );
      target2.insert( target2.begin(), gate.target2 );
      /* slab entries always append; offsets are order-independent */
      op_offset.insert( op_offset.begin(), static_cast<uint32_t>( operands.size() ) );
      op_count.insert( op_count.begin(), static_cast<uint32_t>( gate.controls.size() ) );
      append_operands( std::span<const uint32_t>( gate.controls ) );
      angle_index.insert( angle_index.begin(), angle_slot( gate.kind, gate.angle ) );
    }

    void set_row( uint32_t slot, const qgate& gate )
    {
      kind[slot] = gate.kind;
      target[slot] = gate.target;
      target2[slot] = gate.target2;
      if ( gate.controls.size() <= op_count[slot] )
      {
        /* reuse the row's slab range in place (shrink strands entries
         * until the next compaction) */
        std::copy( gate.controls.begin(), gate.controls.end(),
                   operands.begin() + op_offset[slot] );
      }
      else
      {
        op_offset[slot] = static_cast<uint32_t>( operands.size() );
        operands.insert( operands.end(), gate.controls.begin(), gate.controls.end() );
      }
      op_count[slot] = static_cast<uint32_t>( gate.controls.size() );
      angle_index[slot] = angle_slot( gate.kind, gate.angle );
    }

    void copy_row_from( const columns& src, uint32_t slot )
    {
      kind.push_back( src.kind[slot] );
      target.push_back( src.target[slot] );
      target2.push_back( src.target2[slot] );
      op_offset.push_back( static_cast<uint32_t>( operands.size() ) );
      op_count.push_back( src.op_count[slot] );
      append_operands( src.controls_of( slot ) );
      angle_index.push_back( src.angle_index[slot] == npos
                                 ? npos
                                 : intern_angle( src.angles[src.angle_index[slot]] ) );
    }

    std::span<const uint32_t> controls_of( uint32_t slot ) const
    {
      return { operands.data() + op_offset[slot], op_count[slot] };
    }

    double angle_of( uint32_t slot ) const
    {
      return angle_index[slot] == npos ? 0.0 : angles[angle_index[slot]];
    }

    qgate_view view( uint32_t slot ) const
    {
      return { kind[slot], controls_of( slot ), target[slot], target2[slot], angle_of( slot ) };
    }

    qgate get( uint32_t slot ) const { return view( slot ).materialize(); }

  private:
    /*! Appends controls to the slab; safe when `controls_` is a view
     *  into this very slab (e.g. `c.add_gate(c.gate(i))` or
     *  self-append), where a plain insert would be UB on reallocation.
     */
    void append_operands( std::span<const uint32_t> controls_ )
    {
      if ( controls_.empty() )
      {
        return;
      }
      const std::less<const uint32_t*> before;
      const bool aliases = !operands.empty() &&
                           !before( controls_.data(), operands.data() ) &&
                           before( controls_.data(), operands.data() + operands.size() );
      if ( aliases )
      {
        const size_t src = static_cast<size_t>( controls_.data() - operands.data() );
        const size_t old_size = operands.size();
        operands.resize( old_size + controls_.size() );
        std::copy( operands.begin() + static_cast<ptrdiff_t>( src ),
                   operands.begin() + static_cast<ptrdiff_t>( src + controls_.size() ),
                   operands.begin() + static_cast<ptrdiff_t>( old_size ) );
        return;
      }
      operands.insert( operands.end(), controls_.begin(), controls_.end() );
    }

    uint32_t angle_slot( gate_kind kind_, double angle_ )
    {
      const bool has_angle = angle_ != 0.0 || kind_ == gate_kind::rx ||
                             kind_ == gate_kind::ry || kind_ == gate_kind::rz ||
                             kind_ == gate_kind::global_phase;
      return has_angle ? intern_angle( angle_ ) : npos;
    }

    uint32_t intern_angle( double angle_ )
    {
      uint64_t bits;
      std::memcpy( &bits, &angle_, sizeof( bits ) );
      const auto [it, inserted] =
          angle_lookup_.try_emplace( bits, static_cast<uint32_t>( angles.size() ) );
      if ( inserted )
      {
        angles.push_back( angle_ );
      }
      return it->second;
    }

    std::unordered_map<uint64_t, uint32_t> angle_lookup_; /*!< bit pattern -> pool index */
  };

  static view_type view_at( const columns& cols, uint32_t slot ) { return cols.view( slot ); }

  static bool rows_equal( const columns& a, uint32_t sa, const columns& b, uint32_t sb )
  {
    if ( a.kind[sa] != b.kind[sb] || a.target[sa] != b.target[sb] ||
         a.target2[sa] != b.target2[sb] || a.op_count[sa] != b.op_count[sb] ||
         a.angle_of( sa ) != b.angle_of( sb ) )
    {
      return false;
    }
    const auto ca = a.controls_of( sa );
    const auto cb = b.controls_of( sb );
    return std::equal( ca.begin(), ca.end(), cb.begin() );
  }
};

} // namespace qda::ir
