/*! \file session.hpp
 *  \brief The single sink that turns recorded telemetry into artifacts.
 *
 *  A `session` brackets an instrumented run: constructing one enables
 *  recording (clearing leftovers), `finish()` -- or the destructor --
 *  writes the Chrome trace JSON to the configured path and/or prints
 *  the hierarchical span summary plus the metrics table.  Drivers wire
 *  it to CLI flags:
 *
 *      telemetry::session session(
 *          telemetry::session_options::from_cli( argc, argv ) );
 *
 *  understands `--trace <file>` and `--report`.  Independently, the
 *  `QDA_TRACE=<file>` environment variable arms tracing in any binary
 *  with no code changes: the tracer enables itself on first use and
 *  `flush_env_trace()` (installed via atexit on first session-less use,
 *  and called by every session finish) writes the file.
 */
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <string>

namespace qda::telemetry
{

/*! \brief What a session records and where it lands. */
struct session_options
{
  std::string trace_path; /*!< Chrome trace JSON output; empty = none */
  bool print_report = false; /*!< print span summary + metrics at finish */

  /*! \brief Consumes `--trace <file>` / `--report` from a CLI argument
   *         vector (recognized arguments are removed from argc/argv).
   */
  static session_options from_cli( int& argc, char** argv );
};

/*! \brief RAII telemetry session. */
class session
{
public:
  explicit session( session_options options );
  ~session();

  session( const session& ) = delete;
  session& operator=( const session& ) = delete;

  /*! \brief Writes artifacts and disables recording (idempotent). */
  void finish();

  /*! \brief True when this session records anything at all. */
  bool active() const noexcept { return active_; }

private:
  session_options options_;
  bool active_ = false;
  bool finished_ = false;
};

/*! \brief Writes the trace to the `QDA_TRACE` path, if the variable
 *         names one (values "1"/"true" enable recording without a
 *         file).  Returns the path written, empty if none. */
std::string flush_env_trace();

} // namespace qda::telemetry
