/*! \file metadata.hpp
 *  \brief Shared run metadata for every BENCH_*.json emitter.
 *
 *  A benchmark JSON that cannot be correlated with the commit, build
 *  type and machine that produced it is a number without a unit: every
 *  emitter embeds the same `"metadata"` object via
 *  `bench_metadata_json()` so cross-PR comparisons (and the CI
 *  regression gate, scripts/check_bench_regression.py) know what they
 *  are comparing.
 */
#pragma once

#include <string>

namespace qda::telemetry
{

/*! \brief Identity of one benchmark/trace run. */
struct run_metadata
{
  std::string git_sha;    /*!< short commit hash baked in at configure time */
  std::string build_type; /*!< CMake build type */
  unsigned threads = 0u;  /*!< std::thread::hardware_concurrency() */
  std::string timestamp;  /*!< ISO-8601 UTC, e.g. 2026-08-07T12:34:56Z */
  bool telemetry_compiled_in = false;
};

run_metadata bench_metadata();

/*! \brief The metadata as a JSON object fragment:
 *         `"metadata": { "git_sha": ..., ... }` (no trailing comma). */
std::string bench_metadata_json();

} // namespace qda::telemetry
