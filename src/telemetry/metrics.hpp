/*! \file metrics.hpp
 *  \brief Counters, gauges and fixed-bucket histograms.
 *
 *  The aggregate half of the telemetry subsystem: where trace spans
 *  answer "where did the time go", metrics answer "how often did the
 *  hot paths take each decision" -- kernel dispatches per kind,
 *  swap-candidate evaluations, parity-table folds, cache hits.
 *
 *  Instruments are named, process-global and thread-safe: updates are
 *  single relaxed atomic RMWs, so they are safe (and cheap) inside the
 *  simulator's thread pool.  The `QDA_COUNT`/`QDA_COUNT_N` macros
 *  compile to nothing when `QDA_TELEMETRY_ENABLED=0` and to one
 *  branch + cached-reference increment when enabled at runtime; the
 *  name lookup happens once per call site (function-local static).
 */
#pragma once

#include "telemetry/trace.hpp" /* compiled_in + the enable switch */

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qda::telemetry
{

/*! \brief Monotonic counter. */
class counter
{
public:
  void add( uint64_t amount = 1u ) noexcept
  {
    value_.fetch_add( amount, std::memory_order_relaxed );
  }

  uint64_t value() const noexcept { return value_.load( std::memory_order_relaxed ); }

  void reset() noexcept { value_.store( 0u, std::memory_order_relaxed ); }

private:
  std::atomic<uint64_t> value_{ 0u };
};

/*! \brief Last-write-wins gauge. */
class gauge
{
public:
  void set( double value ) noexcept { value_.store( value, std::memory_order_relaxed ); }

  double value() const noexcept { return value_.load( std::memory_order_relaxed ); }

  void reset() noexcept { value_.store( 0.0, std::memory_order_relaxed ); }

private:
  std::atomic<double> value_{ 0.0 };
};

/*! \brief Histogram over fixed bucket upper bounds (plus overflow). */
class histogram
{
public:
  explicit histogram( std::vector<double> upper_bounds );

  void record( double value ) noexcept;

  const std::vector<double>& upper_bounds() const noexcept { return upper_bounds_; }

  /*! Bucket counts; one extra trailing bucket counts values above the
   *  last bound. */
  std::vector<uint64_t> bucket_counts() const;

  uint64_t count() const noexcept { return count_.load( std::memory_order_relaxed ); }
  double sum() const noexcept { return sum_.load( std::memory_order_relaxed ); }

  void reset() noexcept;

private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{ 0u };
  std::atomic<double> sum_{ 0.0 };
};

/*! \brief Snapshot of every instrument, for printing and JSON export. */
struct metrics_snapshot
{
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;

  struct histogram_entry
  {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<uint64_t> bucket_counts;
    uint64_t count = 0u;
    double sum = 0.0;
  };
  std::vector<histogram_entry> histograms;
};

/*! \brief Process-global instrument registry (names are stable for the
 *         process lifetime; instruments never move once created). */
class metrics_registry
{
public:
  static metrics_registry& instance();

  counter& get_counter( const std::string& name );
  gauge& get_gauge( const std::string& name );
  /*! First registration under a name fixes the bucket bounds. */
  histogram& get_histogram( const std::string& name, std::vector<double> upper_bounds );

  metrics_snapshot snapshot() const;

  /*! \brief Zeroes every instrument (instruments stay registered). */
  void reset();

private:
  mutable std::mutex mutex_;
  std::map<std::string, counter> counters_;
  std::map<std::string, gauge> gauges_;
  std::map<std::string, histogram> histograms_;
};

/*! \brief Human-readable table of a snapshot (skips zero instruments). */
std::string format_metrics( const metrics_snapshot& snapshot );

/*! \brief Shared runtime switch of trace + metrics recording. */
inline bool enabled() noexcept
{
  return tracer::instance().enabled();
}

inline void set_enabled( bool on ) noexcept
{
  tracer::instance().set_enabled( on );
}

} // namespace qda::telemetry

#if QDA_TELEMETRY_ENABLED
/*! Adds `amount` to counter `name`; the registry lookup runs once per
 *  call site and only if recording was ever enabled there. */
#define QDA_COUNT_N( name, amount )                                                     \
  do                                                                                    \
  {                                                                                     \
    if ( ::qda::telemetry::enabled() )                                                  \
    {                                                                                   \
      static ::qda::telemetry::counter& qda_telem_counter =                             \
          ::qda::telemetry::metrics_registry::instance().get_counter( name );           \
      qda_telem_counter.add( static_cast<uint64_t>( amount ) );                         \
    }                                                                                   \
  } while ( 0 )
/*! Records `value` into histogram `name` with `...` bucket bounds. */
#define QDA_HISTOGRAM( name, value, ... )                                               \
  do                                                                                    \
  {                                                                                     \
    if ( ::qda::telemetry::enabled() )                                                  \
    {                                                                                   \
      static ::qda::telemetry::histogram& qda_telem_hist =                              \
          ::qda::telemetry::metrics_registry::instance().get_histogram( name,           \
                                                                        __VA_ARGS__ );  \
      qda_telem_hist.record( static_cast<double>( value ) );                            \
    }                                                                                   \
  } while ( 0 )
#else
#define QDA_COUNT_N( name, amount ) static_cast<void>( 0 )
#define QDA_HISTOGRAM( name, value, ... ) static_cast<void>( 0 )
#endif

#define QDA_COUNT( name ) QDA_COUNT_N( name, 1u )
