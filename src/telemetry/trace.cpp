#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <sstream>

namespace qda::telemetry
{

namespace
{

/*! JSON string escaping for names, keys and string attributes. */
void append_json_escaped( std::string& out, const std::string& text )
{
  for ( const char c : text )
  {
    switch ( c )
    {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if ( static_cast<unsigned char>( c ) < 0x20u )
      {
        char buffer[8];
        std::snprintf( buffer, sizeof( buffer ), "\\u%04x", c );
        out += buffer;
      }
      else
      {
        out += c;
      }
    }
  }
}

std::string format_double( double value )
{
  char buffer[64];
  std::snprintf( buffer, sizeof( buffer ), "%.17g", value );
  return buffer;
}

} // namespace

tracer::tracer() : epoch_( steady_clock::now() )
{
  /* QDA_TRACE=<path> (or QDA_TRACE=1) turns tracing on without code
   * changes; the session layer handles writing the file at exit */
  if ( const char* env = std::getenv( "QDA_TRACE" ); env != nullptr && *env != '\0' )
  {
    enabled_.store( true, std::memory_order_relaxed );
  }
}

tracer& tracer::instance()
{
  static tracer global;
  return global;
}

void tracer::set_buffer_capacity( size_t capacity )
{
  std::lock_guard<std::mutex> guard( registry_mutex_ );
  buffer_capacity_ = std::max<size_t>( capacity, 16u );
}

detail::trace_buffer& tracer::local_buffer()
{
  thread_local detail::trace_buffer* cached = nullptr;
  if ( cached == nullptr )
  {
    std::lock_guard<std::mutex> guard( registry_mutex_ );
    buffers_.push_back( std::make_unique<detail::trace_buffer>(
        static_cast<uint32_t>( buffers_.size() ), buffer_capacity_ ) );
    cached = buffers_.back().get();
  }
  return *cached;
}

void tracer::clear()
{
  std::lock_guard<std::mutex> guard( registry_mutex_ );
  for ( auto& buffer : buffers_ )
  {
    buffer->recorded.store( 0u, std::memory_order_relaxed );
  }
  epoch_ = steady_clock::now();
}

std::vector<trace_event> tracer::collect() const
{
  std::vector<trace_event> events;
  std::lock_guard<std::mutex> guard( registry_mutex_ );
  for ( const auto& buffer : buffers_ )
  {
    const uint64_t recorded = buffer->recorded.load( std::memory_order_acquire );
    const uint64_t capacity = buffer->slots.size();
    const uint64_t live = std::min( recorded, capacity );
    for ( uint64_t i = recorded - live; i < recorded; ++i )
    {
      events.push_back( buffer->slots[i % capacity] );
    }
  }
  return events;
}

uint64_t tracer::dropped() const
{
  uint64_t total = 0u;
  std::lock_guard<std::mutex> guard( registry_mutex_ );
  for ( const auto& buffer : buffers_ )
  {
    const uint64_t recorded = buffer->recorded.load( std::memory_order_acquire );
    const uint64_t capacity = buffer->slots.size();
    total += recorded > capacity ? recorded - capacity : 0u;
  }
  return total;
}

void tracer::export_chrome_trace( std::ostream& out ) const
{
  const auto events = collect();
  std::string line;
  out << "{ \"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for ( const auto& event : events )
  {
    line.clear();
    if ( !first )
    {
      line += ",\n";
    }
    first = false;
    line += "  { \"name\": \"";
    append_json_escaped( line, event.name );
    line += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    line += std::to_string( event.thread + 1u );
    /* Chrome trace timestamps are microseconds; keep ns precision */
    char stamp[64];
    std::snprintf( stamp, sizeof( stamp ), ", \"ts\": %.3f, \"dur\": %.3f",
                   static_cast<double>( event.start_ns ) / 1e3,
                   static_cast<double>( event.duration_ns ) / 1e3 );
    line += stamp;
    if ( !event.attributes.empty() )
    {
      line += ", \"args\": { ";
      bool first_attr = true;
      for ( const auto& attr : event.attributes )
      {
        if ( !first_attr )
        {
          line += ", ";
        }
        first_attr = false;
        line += '"';
        append_json_escaped( line, attr.key );
        line += "\": ";
        switch ( attr.kind )
        {
        case attribute::type::i64: line += std::to_string( attr.i ); break;
        case attribute::type::f64: line += format_double( attr.d ); break;
        case attribute::type::str:
          line += '"';
          append_json_escaped( line, attr.s );
          line += '"';
          break;
        }
      }
      line += " }";
    }
    line += " }";
    out << line;
  }
  out << "\n] }\n";
}

namespace
{

struct summary_node
{
  std::string name;
  uint64_t count = 0u;
  uint64_t total_ns = 0u;
  std::vector<std::unique_ptr<summary_node>> children; /* first-seen order */

  summary_node& child( const std::string& child_name )
  {
    for ( auto& existing : children )
    {
      if ( existing->name == child_name )
      {
        return *existing;
      }
    }
    children.push_back( std::make_unique<summary_node>() );
    children.back()->name = child_name;
    return *children.back();
  }
};

void print_node( std::ostringstream& out, const summary_node& node, uint32_t indent )
{
  uint64_t children_ns = 0u;
  for ( const auto& child : node.children )
  {
    children_ns += child->total_ns;
  }
  const uint64_t self_ns = node.total_ns > children_ns ? node.total_ns - children_ns : 0u;
  char line[192];
  std::string label( indent * 2u, ' ' );
  label += node.name;
  std::snprintf( line, sizeof( line ), "  %-44s %7llu %12.3f %12.3f\n", label.c_str(),
                 static_cast<unsigned long long>( node.count ),
                 static_cast<double>( node.total_ns ) / 1e6,
                 static_cast<double>( self_ns ) / 1e6 );
  out << line;
  for ( const auto& child : node.children )
  {
    print_node( out, *child, indent + 1u );
  }
}

} // namespace

std::string tracer::summary() const
{
  auto events = collect();

  /* per-thread reconstruction: sort by start; the recorded depth pins
   * each event to its level, so path[depth] tracking rebuilds the tree
   * even when parents close (and are recorded) after their children */
  std::map<uint32_t, std::vector<const trace_event*>> by_thread;
  for ( const auto& event : events )
  {
    by_thread[event.thread].push_back( &event );
  }

  summary_node root;
  size_t thread_count = by_thread.size();
  for ( auto& [thread, thread_events] : by_thread )
  {
    static_cast<void>( thread );
    std::sort( thread_events.begin(), thread_events.end(),
               []( const trace_event* a, const trace_event* b ) {
                 if ( a->start_ns != b->start_ns )
                 {
                   return a->start_ns < b->start_ns;
                 }
                 return a->depth < b->depth;
               } );
    std::vector<summary_node*> path;
    for ( const auto* event : thread_events )
    {
      /* ancestors lost to ring overwrite clamp to the nearest live level */
      const uint32_t level = std::min<uint32_t>( event->depth,
                                                 static_cast<uint32_t>( path.size() ) );
      summary_node* parent = level == 0u ? &root : path[level - 1u];
      summary_node& node = parent->child( event->name );
      node.count += 1u;
      node.total_ns += event->duration_ns;
      path.resize( level );
      path.push_back( &node );
    }
  }

  std::ostringstream out;
  out << "trace summary: " << events.size() << " span(s) across " << thread_count
      << " thread(s)";
  if ( const uint64_t lost = dropped(); lost > 0u )
  {
    out << ", " << lost << " dropped";
  }
  out << "\n";
  char header[192];
  std::snprintf( header, sizeof( header ), "  %-44s %7s %12s %12s\n", "span", "count",
                 "total-ms", "self-ms" );
  out << header;
  for ( const auto& child : root.children )
  {
    print_node( out, *child, 1u );
  }
  return out.str();
}

void span::open_with( std::string name )
{
  auto& buffer = tracer::instance().local_buffer();
  buffer_ = &buffer;
  name_ = std::move( name );
  depth_ = buffer.depth++;
  start_ = steady_clock::now();
}

void span::close()
{
  if ( buffer_ == nullptr )
  {
    return;
  }
  const auto end = steady_clock::now();
  const auto epoch = tracer::instance().epoch();
  trace_event event;
  event.name = std::move( name_ );
  event.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>( start_ - epoch ).count() );
  event.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>( end - start_ ).count() );
  event.thread = buffer_->thread;
  event.depth = depth_;
  event.attributes = std::move( attributes_ );
  buffer_->depth--;
  buffer_->push( std::move( event ) );
  buffer_ = nullptr;
  attributes_.clear();
}

} // namespace qda::telemetry
