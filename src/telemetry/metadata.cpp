#include "telemetry/metadata.hpp"

#include "telemetry/trace.hpp"

#include <ctime>
#include <thread>

#ifndef QDA_GIT_SHA
#define QDA_GIT_SHA "unknown"
#endif

#ifndef QDA_BUILD_TYPE
#define QDA_BUILD_TYPE "unknown"
#endif

namespace qda::telemetry
{

run_metadata bench_metadata()
{
  run_metadata meta;
  meta.git_sha = QDA_GIT_SHA;
  meta.build_type = QDA_BUILD_TYPE;
  meta.threads = std::thread::hardware_concurrency();
  meta.telemetry_compiled_in = compiled_in;

  std::time_t now = std::time( nullptr );
  std::tm utc{};
#if defined( _WIN32 )
  gmtime_s( &utc, &now );
#else
  gmtime_r( &now, &utc );
#endif
  char stamp[32];
  std::strftime( stamp, sizeof( stamp ), "%Y-%m-%dT%H:%M:%SZ", &utc );
  meta.timestamp = stamp;
  return meta;
}

std::string bench_metadata_json()
{
  const auto meta = bench_metadata();
  std::string json = "\"metadata\": { \"git_sha\": \"";
  json += meta.git_sha;
  json += "\", \"build_type\": \"";
  json += meta.build_type;
  json += "\", \"threads\": ";
  json += std::to_string( meta.threads );
  json += ", \"timestamp\": \"";
  json += meta.timestamp;
  json += "\", \"telemetry_compiled_in\": ";
  json += meta.telemetry_compiled_in ? "true" : "false";
  json += " }";
  return json;
}

} // namespace qda::telemetry
