#include "telemetry/session.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace qda::telemetry
{

namespace
{

/*! QDA_TRACE values that enable recording but name no output file. */
bool is_switch_value( const char* value )
{
  return std::strcmp( value, "1" ) == 0 || std::strcmp( value, "true" ) == 0 ||
         std::strcmp( value, "on" ) == 0;
}

} // namespace

session_options session_options::from_cli( int& argc, char** argv )
{
  session_options options;
  int write = 1;
  for ( int read = 1; read < argc; ++read )
  {
    if ( std::strcmp( argv[read], "--report" ) == 0 )
    {
      options.print_report = true;
    }
    else if ( std::strcmp( argv[read], "--trace" ) == 0 && read + 1 < argc )
    {
      options.trace_path = argv[++read];
    }
    else
    {
      argv[write++] = argv[read];
    }
  }
  argc = write;
  return options;
}

session::session( session_options options ) : options_( std::move( options ) )
{
  active_ = !options_.trace_path.empty() || options_.print_report ||
            tracer::instance().enabled();
  if ( active_ )
  {
    tracer::instance().clear();
    metrics_registry::instance().reset();
    set_enabled( true );
  }
}

session::~session()
{
  finish();
}

void session::finish()
{
  if ( finished_ || !active_ )
  {
    finished_ = true;
    return;
  }
  finished_ = true;

  if ( !options_.trace_path.empty() )
  {
    std::ofstream out( options_.trace_path );
    if ( out )
    {
      tracer::instance().export_chrome_trace( out );
      std::printf( "telemetry: wrote trace to %s\n", options_.trace_path.c_str() );
    }
    else
    {
      std::fprintf( stderr, "telemetry: could not open %s for writing\n",
                    options_.trace_path.c_str() );
    }
  }
  else
  {
    flush_env_trace(); /* honor QDA_TRACE even when a flag-less session ends */
  }

  if ( options_.print_report )
  {
    std::fputs( tracer::instance().summary().c_str(), stdout );
    std::fputs( format_metrics( metrics_registry::instance().snapshot() ).c_str(), stdout );
  }

  set_enabled( false );
}

std::string flush_env_trace()
{
  const char* env = std::getenv( "QDA_TRACE" );
  if ( env == nullptr || *env == '\0' || is_switch_value( env ) )
  {
    return {};
  }
  std::ofstream out( env );
  if ( !out )
  {
    std::fprintf( stderr, "telemetry: could not open %s (QDA_TRACE) for writing\n", env );
    return {};
  }
  tracer::instance().export_chrome_trace( out );
  return env;
}

} // namespace qda::telemetry
