/*! \file clock.hpp
 *  \brief The one wall-clock helper of the whole stack.
 *
 *  Every subsystem that measures time -- the pass manager, the trace
 *  spans, the bench stopwatches -- goes through these helpers so the
 *  clock source is defined exactly once.  `pipeline/timing.hpp` is a
 *  forwarding header kept for source compatibility.
 */
#pragma once

#include <chrono>
#include <cstdint>

namespace qda::telemetry
{

using steady_clock = std::chrono::steady_clock;

/*! \brief Milliseconds elapsed since `start` (fractional). */
inline double elapsed_ms_since( steady_clock::time_point start )
{
  return std::chrono::duration<double, std::milli>( steady_clock::now() - start ).count();
}

/*! \brief Microseconds elapsed between two time points (integral; the
 *         unit of Chrome `trace_event` timestamps). */
inline uint64_t elapsed_us_between( steady_clock::time_point start,
                                    steady_clock::time_point end )
{
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>( end - start ).count() );
}

} // namespace qda::telemetry

namespace qda::detail
{

/* legacy aliases: pre-telemetry code spells qda::detail::steady_clock /
 * elapsed_ms_since (via pipeline/timing.hpp) */
using steady_clock = telemetry::steady_clock;
using telemetry::elapsed_ms_since;

} // namespace qda::detail
