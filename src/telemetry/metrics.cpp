#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qda::telemetry
{

histogram::histogram( std::vector<double> upper_bounds )
    : upper_bounds_( std::move( upper_bounds ) ), buckets_( upper_bounds_.size() + 1u )
{
}

void histogram::record( double value ) noexcept
{
  const auto it = std::lower_bound( upper_bounds_.begin(), upper_bounds_.end(), value );
  const size_t index = static_cast<size_t>( it - upper_bounds_.begin() );
  buckets_[index].fetch_add( 1u, std::memory_order_relaxed );
  count_.fetch_add( 1u, std::memory_order_relaxed );
  sum_.fetch_add( value, std::memory_order_relaxed );
}

std::vector<uint64_t> histogram::bucket_counts() const
{
  std::vector<uint64_t> counts( buckets_.size() );
  for ( size_t i = 0u; i < buckets_.size(); ++i )
  {
    counts[i] = buckets_[i].load( std::memory_order_relaxed );
  }
  return counts;
}

void histogram::reset() noexcept
{
  for ( auto& bucket : buckets_ )
  {
    bucket.store( 0u, std::memory_order_relaxed );
  }
  count_.store( 0u, std::memory_order_relaxed );
  sum_.store( 0.0, std::memory_order_relaxed );
}

metrics_registry& metrics_registry::instance()
{
  static metrics_registry global;
  return global;
}

counter& metrics_registry::get_counter( const std::string& name )
{
  std::lock_guard<std::mutex> guard( mutex_ );
  return counters_[name];
}

gauge& metrics_registry::get_gauge( const std::string& name )
{
  std::lock_guard<std::mutex> guard( mutex_ );
  return gauges_[name];
}

histogram& metrics_registry::get_histogram( const std::string& name,
                                            std::vector<double> upper_bounds )
{
  std::lock_guard<std::mutex> guard( mutex_ );
  const auto it = histograms_.find( name );
  if ( it != histograms_.end() )
  {
    return it->second;
  }
  return histograms_.try_emplace( name, std::move( upper_bounds ) ).first->second;
}

metrics_snapshot metrics_registry::snapshot() const
{
  metrics_snapshot result;
  std::lock_guard<std::mutex> guard( mutex_ );
  for ( const auto& [name, instrument] : counters_ )
  {
    result.counters.emplace_back( name, instrument.value() );
  }
  for ( const auto& [name, instrument] : gauges_ )
  {
    result.gauges.emplace_back( name, instrument.value() );
  }
  for ( const auto& [name, instrument] : histograms_ )
  {
    metrics_snapshot::histogram_entry entry;
    entry.name = name;
    entry.upper_bounds = instrument.upper_bounds();
    entry.bucket_counts = instrument.bucket_counts();
    entry.count = instrument.count();
    entry.sum = instrument.sum();
    result.histograms.push_back( std::move( entry ) );
  }
  return result;
}

void metrics_registry::reset()
{
  std::lock_guard<std::mutex> guard( mutex_ );
  for ( auto& [name, instrument] : counters_ )
  {
    static_cast<void>( name );
    instrument.reset();
  }
  for ( auto& [name, instrument] : gauges_ )
  {
    static_cast<void>( name );
    instrument.reset();
  }
  for ( auto& [name, instrument] : histograms_ )
  {
    static_cast<void>( name );
    instrument.reset();
  }
}

std::string format_metrics( const metrics_snapshot& snapshot )
{
  std::ostringstream out;
  char line[192];
  bool any = false;
  for ( const auto& [name, value] : snapshot.counters )
  {
    if ( value == 0u )
    {
      continue;
    }
    if ( !any )
    {
      out << "metrics:\n";
      any = true;
    }
    std::snprintf( line, sizeof( line ), "  %-52s %14llu\n", name.c_str(),
                   static_cast<unsigned long long>( value ) );
    out << line;
  }
  for ( const auto& [name, value] : snapshot.gauges )
  {
    if ( value == 0.0 )
    {
      continue;
    }
    if ( !any )
    {
      out << "metrics:\n";
      any = true;
    }
    std::snprintf( line, sizeof( line ), "  %-52s %14.3f\n", name.c_str(), value );
    out << line;
  }
  for ( const auto& entry : snapshot.histograms )
  {
    if ( entry.count == 0u )
    {
      continue;
    }
    if ( !any )
    {
      out << "metrics:\n";
      any = true;
    }
    std::snprintf( line, sizeof( line ), "  %-52s %14llu  mean %.3f\n", entry.name.c_str(),
                   static_cast<unsigned long long>( entry.count ),
                   entry.sum / static_cast<double>( entry.count ) );
    out << line;
    std::string buckets = "    buckets:";
    for ( size_t i = 0u; i < entry.bucket_counts.size(); ++i )
    {
      char piece[64];
      if ( i < entry.upper_bounds.size() )
      {
        std::snprintf( piece, sizeof( piece ), " <=%g: %llu", entry.upper_bounds[i],
                       static_cast<unsigned long long>( entry.bucket_counts[i] ) );
      }
      else
      {
        std::snprintf( piece, sizeof( piece ), " >%g: %llu",
                       entry.upper_bounds.empty() ? 0.0 : entry.upper_bounds.back(),
                       static_cast<unsigned long long>( entry.bucket_counts[i] ) );
      }
      buckets += piece;
    }
    out << buckets << "\n";
  }
  if ( !any )
  {
    out << "metrics: (none recorded)\n";
  }
  return out.str();
}

} // namespace qda::telemetry
