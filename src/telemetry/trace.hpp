/*! \file trace.hpp
 *  \brief Structured event tracing with scoped RAII spans.
 *
 *  The tracing half of the telemetry subsystem.  Instrumented code
 *  opens spans:
 *
 *      void route() {
 *        QDA_TRACE_SPAN( "sabre.route" );
 *        ...
 *      }
 *
 *  and the tracer records one timed event per span into a per-thread
 *  ring buffer: recording takes no lock (the owning thread is the only
 *  writer of its ring), so instrumented hot loops stay hot.  Recorded
 *  traces export as Chrome `trace_event` JSON -- loadable in
 *  `chrome://tracing` or https://ui.perfetto.dev -- and as a
 *  human-readable hierarchical summary (count / total / self time per
 *  span path).
 *
 *  Cost model, in order of magnitude:
 *    - compiled out (`QDA_TELEMETRY_ENABLED=0`): spans vanish entirely;
 *    - compiled in, disabled (the default at runtime): one relaxed
 *      atomic load and branch per span;
 *    - enabled: two clock reads plus one ring write per span.
 *
 *  Spans go where phases begin, not inside per-amplitude or per-gate
 *  inner loops; counters (telemetry/metrics.hpp) cover those.
 *
 *  Exporting is meant for quiescent moments (end of a compile, end of a
 *  session): a thread writing its ring while another thread exports is
 *  memory-safe for the counters but may observe a partially updated
 *  slot.
 */
#pragma once

#include "telemetry/clock.hpp"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef QDA_TELEMETRY_ENABLED
#define QDA_TELEMETRY_ENABLED 1
#endif

namespace qda::telemetry
{

/*! \brief True when telemetry hooks are compiled in at all. */
inline constexpr bool compiled_in = QDA_TELEMETRY_ENABLED != 0;

/*! \brief One typed span attribute. */
struct attribute
{
  enum class type : uint8_t
  {
    i64,
    f64,
    str
  };

  std::string key;
  type kind = type::i64;
  int64_t i = 0;
  double d = 0.0;
  std::string s;
};

/*! \brief One recorded span (closed). */
struct trace_event
{
  std::string name;
  uint64_t start_ns = 0u; /*!< relative to the tracer epoch */
  uint64_t duration_ns = 0u;
  uint32_t thread = 0u; /*!< sequential tracer-assigned thread id */
  uint32_t depth = 0u;  /*!< span nesting depth at open (0 = root) */
  std::vector<attribute> attributes;
};

namespace detail
{

/*! \brief Per-thread event ring; the owning thread is the only writer. */
struct trace_buffer
{
  explicit trace_buffer( uint32_t thread_id, size_t capacity )
      : thread( thread_id ), slots( capacity )
  {
  }

  uint32_t thread;
  uint32_t depth = 0u;
  std::vector<trace_event> slots;
  /*! total events ever recorded; the newest min(recorded, capacity)
   *  slots are live (older ones were overwritten, ring-style) */
  std::atomic<uint64_t> recorded{ 0u };

  void push( trace_event&& event )
  {
    const uint64_t seq = recorded.load( std::memory_order_relaxed );
    slots[seq % slots.size()] = std::move( event );
    recorded.store( seq + 1u, std::memory_order_release );
  }
};

} // namespace detail

/*! \brief Process-global tracer: owns every thread's ring. */
class tracer
{
public:
  /*! The instance; on first use honors the `QDA_TRACE` environment
   *  variable (see session.hpp) by enabling itself. */
  static tracer& instance();

  void set_enabled( bool enabled ) noexcept
  {
    enabled_.store( enabled, std::memory_order_relaxed );
  }

  bool enabled() const noexcept { return enabled_.load( std::memory_order_relaxed ); }

  /*! \brief Ring capacity (events) for threads registered after the call. */
  void set_buffer_capacity( size_t capacity );

  /*! \brief Drops all recorded events (call while instrumented code is
   *         quiescent). */
  void clear();

  /*! \brief Snapshot of all live events, all threads, in ring order. */
  std::vector<trace_event> collect() const;

  /*! \brief Events that fell out of full rings, across all threads. */
  uint64_t dropped() const;

  /*! \brief Writes Chrome `trace_event` JSON (the whole object). */
  void export_chrome_trace( std::ostream& out ) const;

  /*! \brief Hierarchical count/total/self summary of the trace. */
  std::string summary() const;

  steady_clock::time_point epoch() const noexcept { return epoch_; }

  /*! \brief The calling thread's ring (registered on first use). */
  detail::trace_buffer& local_buffer();

private:
  tracer();

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<detail::trace_buffer>> buffers_;
  size_t buffer_capacity_ = size_t{ 1 } << 16;
  std::atomic<bool> enabled_{ false };
  steady_clock::time_point epoch_;
};

/*! \brief Scoped RAII span; records one event when it closes.
 *
 *  Open/closed state is decided at construction from the tracer's
 *  runtime switch, so a disabled span costs one branch.
 */
class span
{
public:
  explicit span( const char* name ) { open( name ); }
  explicit span( std::string name )
  {
    if ( tracer::instance().enabled() )
    {
      open_with( std::move( name ) );
    }
  }

  span( const span& ) = delete;
  span& operator=( const span& ) = delete;

  ~span() { close(); }

  /*! \brief Attaches a typed attribute (no-op when the span is closed). */
  span& attr( const char* key, int64_t value )
  {
    if ( buffer_ )
    {
      attribute a;
      a.key = key;
      a.kind = attribute::type::i64;
      a.i = value;
      attributes_.push_back( std::move( a ) );
    }
    return *this;
  }

  span& attr( const char* key, uint64_t value )
  {
    return attr( key, static_cast<int64_t>( value ) );
  }

  span& attr( const char* key, double value )
  {
    if ( buffer_ )
    {
      attribute a;
      a.key = key;
      a.kind = attribute::type::f64;
      a.d = value;
      attributes_.push_back( std::move( a ) );
    }
    return *this;
  }

  span& attr( const char* key, std::string value )
  {
    if ( buffer_ )
    {
      attribute a;
      a.key = key;
      a.kind = attribute::type::str;
      a.s = std::move( value );
      attributes_.push_back( std::move( a ) );
    }
    return *this;
  }

  /*! \brief Closes early (the destructor then does nothing). */
  void close();

private:
  void open( const char* name )
  {
    if ( tracer::instance().enabled() )
    {
      open_with( std::string( name ) );
    }
  }

  void open_with( std::string name );

  detail::trace_buffer* buffer_ = nullptr;
  std::string name_;
  steady_clock::time_point start_;
  uint32_t depth_ = 0u;
  std::vector<attribute> attributes_;
};

/*! \brief Stand-in for `span` when telemetry is compiled out. */
struct null_span
{
  template<typename... Args>
  explicit null_span( const Args&... ) noexcept
  {
  }

  template<typename Key, typename Value>
  null_span& attr( const Key&, const Value& ) noexcept
  {
    return *this;
  }

  void close() noexcept {}
};

} // namespace qda::telemetry

#define QDA_TELEM_CONCAT_IMPL( a, b ) a##b
#define QDA_TELEM_CONCAT( a, b ) QDA_TELEM_CONCAT_IMPL( a, b )

#if QDA_TELEMETRY_ENABLED
/*! Anonymous scoped span: `QDA_TRACE_SPAN( "sabre.route" );` */
#define QDA_TRACE_SPAN( ... ) \
  ::qda::telemetry::span QDA_TELEM_CONCAT( qda_trace_span_, __LINE__ )( __VA_ARGS__ )
/*! Named scoped span, for attaching attributes:
 *  `QDA_TRACE_SPAN_NAMED( span_var, "tpar.fold" ); span_var.attr( ... );` */
#define QDA_TRACE_SPAN_NAMED( var, ... ) ::qda::telemetry::span var( __VA_ARGS__ )
#else
#define QDA_TRACE_SPAN( ... ) static_cast<void>( 0 )
#define QDA_TRACE_SPAN_NAMED( var, ... ) ::qda::telemetry::null_span var
#endif
