#include "bdd/bdd.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace qda
{

bdd_manager::bdd_manager( uint32_t num_vars ) : num_vars_( num_vars )
{
  /* terminals: var field is the sentinel num_vars_ */
  nodes_.push_back( { num_vars_, 0u, 0u } ); /* constant 0 */
  nodes_.push_back( { num_vars_, 1u, 1u } ); /* constant 1 */
}

bdd_node bdd_manager::variable( uint32_t var )
{
  if ( var >= num_vars_ )
  {
    throw std::invalid_argument( "bdd_manager::variable: variable out of range" );
  }
  return make_node( var, constant( false ), constant( true ) );
}

bdd_node bdd_manager::make_node( uint32_t var, bdd_node low, bdd_node high )
{
  if ( low == high )
  {
    return low;
  }
  const unique_key key{ var, low, high };
  if ( const auto it = unique_table_.find( key ); it != unique_table_.end() )
  {
    return it->second;
  }
  const bdd_node index = static_cast<bdd_node>( nodes_.size() );
  nodes_.push_back( { var, low, high } );
  unique_table_.emplace( key, index );
  return index;
}

bdd_node bdd_manager::cofactor( bdd_node f, uint32_t var, bool value ) const
{
  if ( is_terminal( f ) || nodes_[f].var > var )
  {
    return f;
  }
  /* ordered BDD: nodes_[f].var == var here */
  return value ? nodes_[f].high : nodes_[f].low;
}

bdd_node bdd_manager::ite( bdd_node f, bdd_node g, bdd_node h )
{
  /* terminal cases */
  if ( f == constant( true ) )
  {
    return g;
  }
  if ( f == constant( false ) )
  {
    return h;
  }
  if ( g == h )
  {
    return g;
  }
  if ( g == constant( true ) && h == constant( false ) )
  {
    return f;
  }

  const ite_key key{ f, g, h };
  if ( const auto it = computed_table_.find( key ); it != computed_table_.end() )
  {
    return it->second;
  }

  const uint32_t top = std::min( { nodes_[f].var, nodes_[g].var, nodes_[h].var } );
  const bdd_node low = ite( cofactor( f, top, false ), cofactor( g, top, false ),
                            cofactor( h, top, false ) );
  const bdd_node high = ite( cofactor( f, top, true ), cofactor( g, top, true ),
                             cofactor( h, top, true ) );
  const bdd_node result = make_node( top, low, high );
  computed_table_.emplace( key, result );
  return result;
}

namespace
{

using table_cache = std::unordered_map<std::vector<uint64_t>, bdd_node, words_hash>;

} // namespace

bdd_node bdd_manager::from_truth_table( const truth_table& function )
{
  if ( function.num_vars() != num_vars_ )
  {
    throw std::invalid_argument( "bdd_manager::from_truth_table: variable count mismatch" );
  }
  table_cache cache;
  /* Shannon-expand from the top variable downwards.  Decompose on the
   * highest variable index last so that variable 0 ends up at the top. */
  struct builder
  {
    bdd_manager& mgr;
    table_cache& cache;

    bdd_node operator()( const truth_table& f, uint32_t next_var )
    {
      if ( f.is_constant0() )
      {
        return mgr.constant( false );
      }
      if ( f.is_constant1() )
      {
        return mgr.constant( true );
      }
      if ( const auto it = cache.find( f.words() ); it != cache.end() )
      {
        return it->second;
      }
      /* find first variable >= next_var in the support */
      uint32_t var = next_var;
      while ( var < mgr.num_vars() && !f.depends_on( var ) )
      {
        ++var;
      }
      const bdd_node low = ( *this )( f.cofactor0( var ), var + 1u );
      const bdd_node high = ( *this )( f.cofactor1( var ), var + 1u );
      const bdd_node result = mgr.make_node( var, low, high );
      cache.emplace( f.words(), result );
      return result;
    }
  };
  return builder{ *this, cache }( function, 0u );
}

truth_table bdd_manager::to_truth_table( bdd_node f ) const
{
  truth_table result( num_vars_ );
  for ( uint64_t x = 0u; x < result.num_bits(); ++x )
  {
    result.set_bit( x, evaluate( f, x ) );
  }
  return result;
}

bool bdd_manager::evaluate( bdd_node f, uint64_t assignment ) const
{
  while ( !is_terminal( f ) )
  {
    const auto& node = nodes_[f];
    f = ( ( assignment >> node.var ) & 1u ) ? node.high : node.low;
  }
  return f == 1u;
}

uint64_t bdd_manager::count_nodes( bdd_node f ) const
{
  return topological_order( f ).size();
}

uint64_t bdd_manager::count_satisfying( bdd_node f ) const
{
  if ( is_terminal( f ) )
  {
    return f == 1u ? ( uint64_t{ 1 } << num_vars_ ) : 0u;
  }
  std::unordered_map<bdd_node, uint64_t> counts;
  const auto order = topological_order( f );
  const auto lookup = [&]( bdd_node g, uint32_t var_above ) -> uint64_t
  {
    uint64_t base;
    uint32_t var;
    if ( is_terminal( g ) )
    {
      base = g == 1u ? 1u : 0u;
      var = num_vars_;
    }
    else
    {
      base = counts.at( g );
      var = nodes_[g].var;
    }
    /* scale by skipped variables between var_above+1 and var-1 */
    return base << ( var - var_above - 1u );
  };
  for ( const auto node : order )
  {
    const auto& data = nodes_[node];
    counts[node] = lookup( data.low, data.var ) + lookup( data.high, data.var );
  }
  /* account for variables above the root */
  return counts.at( f ) << nodes_[f].var;
}

std::vector<bdd_node> bdd_manager::topological_order( bdd_node f ) const
{
  std::vector<bdd_node> order;
  std::unordered_set<bdd_node> visited;
  struct visitor
  {
    const bdd_manager& mgr;
    std::vector<bdd_node>& order;
    std::unordered_set<bdd_node>& visited;

    void operator()( bdd_node g )
    {
      if ( mgr.is_terminal( g ) || visited.count( g ) )
      {
        return;
      }
      visited.insert( g );
      ( *this )( mgr.nodes_[g].low );
      ( *this )( mgr.nodes_[g].high );
      order.push_back( g );
    }
  };
  visitor{ *this, order, visited }( f );
  return order;
}

} // namespace qda
