/*! \file bdd.hpp
 *  \brief A reduced ordered binary decision diagram (ROBDD) package.
 *
 *  BDDs give a symbolic function representation that scales past the
 *  explicit truth table limit (paper Sec. V, refs [45], [46], [51]) and
 *  drive the hierarchical BDD-based reversible synthesis in
 *  synthesis/bdd_based.hpp, where every internal BDD node is mapped onto
 *  an ancilla qubit.
 *
 *  Design: a single manager owns all nodes in an arena; node handles are
 *  32-bit indices.  Index 0 and 1 are the constant terminals.  Nodes are
 *  hash-consed through a unique table, so structural equality is pointer
 *  equality.  No complement edges, fixed variable order 0 < 1 < ... < n-1
 *  (variable 0 at the top).
 */
#pragma once

#include "kernel/truth_table.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qda
{

/*! \brief Handle to a BDD node inside a bdd_manager. */
using bdd_node = uint32_t;

/*! \brief Manager owning all BDD nodes of a fixed variable count. */
class bdd_manager
{
public:
  explicit bdd_manager( uint32_t num_vars );

  uint32_t num_vars() const noexcept { return num_vars_; }

  /*! \brief Terminal nodes. */
  bdd_node constant( bool value ) const noexcept { return value ? 1u : 0u; }

  /*! \brief The projection function x_var. */
  bdd_node variable( uint32_t var );

  /*! \brief If-then-else: the universal ternary connective. */
  bdd_node ite( bdd_node f, bdd_node g, bdd_node h );

  bdd_node land( bdd_node f, bdd_node g ) { return ite( f, g, constant( false ) ); }
  bdd_node lor( bdd_node f, bdd_node g ) { return ite( f, constant( true ), g ); }
  bdd_node lnot( bdd_node f ) { return ite( f, constant( false ), constant( true ) ); }
  bdd_node lxor( bdd_node f, bdd_node g ) { return ite( f, lnot( g ), g ); }

  /*! \brief Builds the BDD of a complete truth table. */
  bdd_node from_truth_table( const truth_table& function );

  /*! \brief Expands a BDD into a complete truth table. */
  truth_table to_truth_table( bdd_node f ) const;

  /*! \brief Evaluates under an integer-encoded assignment. */
  bool evaluate( bdd_node f, uint64_t assignment ) const;

  /*! \brief Number of internal (non-terminal) nodes reachable from f. */
  uint64_t count_nodes( bdd_node f ) const;

  /*! \brief Number of satisfying assignments over all num_vars variables. */
  uint64_t count_satisfying( bdd_node f ) const;

  /*! \brief Internal nodes reachable from f in topological order
   *         (children before parents); excludes terminals.
   */
  std::vector<bdd_node> topological_order( bdd_node f ) const;

  /*! \brief Decision variable of a node (num_vars() for terminals). */
  uint32_t node_var( bdd_node f ) const { return nodes_[f].var; }

  /*! \brief Low (else) child; only valid for internal nodes. */
  bdd_node node_low( bdd_node f ) const { return nodes_[f].low; }

  /*! \brief High (then) child; only valid for internal nodes. */
  bdd_node node_high( bdd_node f ) const { return nodes_[f].high; }

  bool is_terminal( bdd_node f ) const noexcept { return f <= 1u; }

  /*! \brief Total number of nodes ever allocated (including terminals). */
  uint64_t size() const noexcept { return nodes_.size(); }

private:
  struct node_data
  {
    uint32_t var;
    bdd_node low;
    bdd_node high;
  };

  struct unique_key
  {
    uint32_t var;
    bdd_node low;
    bdd_node high;
    bool operator==( const unique_key& other ) const = default;
  };

  struct unique_key_hash
  {
    size_t operator()( const unique_key& key ) const noexcept
    {
      uint64_t h = key.var;
      h = h * 0x9e3779b97f4a7c15ull + key.low;
      h = h * 0x9e3779b97f4a7c15ull + key.high;
      return static_cast<size_t>( h ^ ( h >> 32u ) );
    }
  };

  struct ite_key
  {
    bdd_node f, g, h;
    bool operator==( const ite_key& other ) const = default;
  };

  struct ite_key_hash
  {
    size_t operator()( const ite_key& key ) const noexcept
    {
      uint64_t h = key.f;
      h = h * 0x9e3779b97f4a7c15ull + key.g;
      h = h * 0x9e3779b97f4a7c15ull + key.h;
      return static_cast<size_t>( h ^ ( h >> 32u ) );
    }
  };

  bdd_node make_node( uint32_t var, bdd_node low, bdd_node high );
  bdd_node cofactor( bdd_node f, uint32_t var, bool value ) const;

  uint32_t num_vars_;
  std::vector<node_data> nodes_;
  std::unordered_map<unique_key, bdd_node, unique_key_hash> unique_table_;
  std::unordered_map<ite_key, bdd_node, ite_key_hash> computed_table_;
};

/*! \brief Hash for vectors of words (shared by BDD construction caches). */
struct words_hash
{
  size_t operator()( const std::vector<uint64_t>& words ) const noexcept
  {
    uint64_t h = 0xcbf29ce484222325ull;
    for ( const auto word : words )
    {
      h = ( h ^ word ) * 0x100000001b3ull;
    }
    return static_cast<size_t>( h );
  }
};

} // namespace qda
