#include "server/sharded_cache.hpp"

#include "fault/failpoint.hpp"
#include "pipeline/pass_manager.hpp"
#include "telemetry/metrics.hpp"

namespace qda::server
{

sharded_compilation_cache::sharded_compilation_cache( size_t num_shards, size_t capacity )
    : map_( num_shards, capacity )
{
}

std::shared_ptr<const compilation_result>
sharded_compilation_cache::lookup( const structural_key& key )
{
  QDA_FAILPOINT( "cache.lookup" );
  auto result = map_.find( key );
  if ( result )
  {
    QDA_COUNT( "pipeline.cache.hit" );
    QDA_COUNT( "server.cache.hit" );
  }
  else
  {
    QDA_COUNT( "pipeline.cache.miss" );
    QDA_COUNT( "server.cache.miss" );
  }
  return result;
}

void sharded_compilation_cache::store( const structural_key& key,
                                       std::shared_ptr<const compilation_result> result )
{
  QDA_FAILPOINT( "cache.store" );
  const auto evicted = map_.insert( key, std::move( result ) );
  QDA_COUNT_N( "pipeline.cache.evict", evicted );
}

cache_statistics sharded_compilation_cache::statistics() const
{
  const auto total = map_.statistics();
  return { total.hits, total.misses, total.evictions, total.entries };
}

void sharded_compilation_cache::clear()
{
  map_.clear();
}

} // namespace qda::server
