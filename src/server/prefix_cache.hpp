/*! \file prefix_cache.hpp
 *  \brief Cross-job cache of mid-pipeline IR snapshots.
 *
 *  Every compilation the server executes snapshots its staged IR after
 *  each pass, keyed by the structural hash of (pipeline prefix, input).
 *  A later job whose spec shares a leading pass sequence with any prior
 *  job -- `revgen --hwb 6; tbs; revsimp; rptm; tpar` after
 *  `revgen --hwb 6; tbs; revsimp; rptm; peephole` -- resumes from the
 *  deepest cached snapshot instead of recompiling the shared prefix
 *  from scratch.  Storage is a `sharded_lru`, so snapshot harvesting
 *  and probing scale with the worker pool.
 */
#pragma once

#include "pipeline/pass_manager.hpp"
#include "server/sharded_lru.hpp"

#include <vector>

namespace qda::server
{

/*! \brief One resumable snapshot: the IR after a pipeline prefix plus
 *         the reports of the passes that produced it. */
struct prefix_entry
{
  staged_ir ir;
  std::vector<pass_report> reports;
};

/*! \brief What a prefix probe found. */
struct prefix_match
{
  size_t passes = 0u; /*!< length of the cached prefix; 0 = no match */
  std::shared_ptr<const prefix_entry> entry;
};

class prefix_cache
{
public:
  prefix_cache( size_t num_shards, size_t capacity ) : map_( num_shards, capacity ) {}

  /*! \brief Probes for the *deepest* cached prefix of `spec` (over the
   *         given input keys), longest first.  `prefix_keys[i]` must be
   *         the structural key of the first `i` passes; only indexes
   *         `1 .. spec.size()-1` are probed (a full match is the result
   *         cache's job).
   */
  prefix_match find_longest( const std::vector<structural_key>& prefix_keys )
  {
    if ( prefix_keys.size() < 2u )
    {
      return {};
    }
    for ( size_t len = prefix_keys.size() - 1u; len >= 1u; --len )
    {
      if ( auto entry = map_.find( prefix_keys[len] ) )
      {
        return { len, std::move( entry ) };
      }
    }
    return {};
  }

  /*! \brief Stores a snapshot for the prefix of length `passes` (no-op
   *         if an entry already exists -- snapshots of one prefix are
   *         interchangeable).
   */
  void store( const structural_key& key, prefix_entry entry )
  {
    if ( map_.contains( key ) )
    {
      return;
    }
    map_.insert( key, std::make_shared<const prefix_entry>( std::move( entry ) ) );
  }

  bool contains( const structural_key& key ) const { return map_.contains( key ); }

  shard_statistics statistics() const { return map_.statistics(); }
  std::vector<shard_statistics> per_shard_statistics() const
  {
    return map_.per_shard_statistics();
  }
  void clear() { map_.clear(); }

private:
  sharded_lru<prefix_entry> map_;
};

} // namespace qda::server
