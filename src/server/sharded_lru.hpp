/*! \file sharded_lru.hpp
 *  \brief Sharded, mutex-per-shard LRU map keyed on structural keys.
 *
 *  The concurrency primitive under both halves of the compile server's
 *  caching (server/sharded_cache.hpp for whole results,
 *  server/prefix_cache.hpp for mid-pipeline snapshots): the key space
 *  is partitioned over independent shards so concurrent workers only
 *  contend when they touch the same partition, and each shard keeps a
 *  true-LRU recency list (touch-on-hit) with its own hit/miss/eviction
 *  counters.
 */
#pragma once

#include "pipeline/compilation_cache.hpp"

#include <algorithm>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace qda::server
{

/*! \brief Counters of one shard (also used as the aggregate view). */
struct shard_statistics
{
  uint64_t hits = 0u;
  uint64_t misses = 0u;
  uint64_t evictions = 0u;
  uint64_t entries = 0u;
};

/*! \brief Sharded LRU map from `structural_key` to shared values. */
template<typename Value>
class sharded_lru
{
public:
  /*! \brief `num_shards` partitions (rounded up to at least 1);
   *         `capacity` entries in total, distributed evenly (each shard
   *         holds at least one).
   */
  sharded_lru( size_t num_shards, size_t capacity )
      : shards_( std::max<size_t>( num_shards, 1u ) )
  {
    const auto per_shard = std::max<size_t>( ( capacity + shards_.size() - 1u ) / shards_.size(), 1u );
    for ( auto& shard : shards_ )
    {
      shard.capacity = capacity == 0u ? 0u : per_shard;
    }
  }

  /*! \brief Returns the value, or nullptr; a hit refreshes recency and
   *         counts on the owning shard.
   */
  std::shared_ptr<const Value> find( const structural_key& key )
  {
    auto& shard = shard_of( key );
    std::lock_guard<std::mutex> guard( shard.mutex );
    const auto it = shard.index.find( key.primary );
    if ( it == shard.index.end() || !( it->second->first == key ) )
    {
      ++shard.stats.misses;
      return nullptr;
    }
    ++shard.stats.hits;
    shard.order.splice( shard.order.begin(), shard.order, it->second );
    return it->second->second;
  }

  /*! \brief True when `key` is present; counts nothing, touches nothing
   *         (used to skip redundant snapshot copies).
   */
  bool contains( const structural_key& key ) const
  {
    const auto& shard = shard_of( key );
    std::lock_guard<std::mutex> guard( shard.mutex );
    const auto it = shard.index.find( key.primary );
    return it != shard.index.end() && it->second->first == key;
  }

  /*! \brief Inserts (or refreshes) `value`, evicting LRU entries beyond
   *         the shard capacity.  Returns how many entries were evicted.
   */
  size_t insert( const structural_key& key, std::shared_ptr<const Value> value )
  {
    auto& shard = shard_of( key );
    std::lock_guard<std::mutex> guard( shard.mutex );
    if ( shard.capacity == 0u )
    {
      return 0u;
    }
    const auto it = shard.index.find( key.primary );
    if ( it != shard.index.end() )
    {
      it->second->first = key;
      it->second->second = std::move( value );
      shard.order.splice( shard.order.begin(), shard.order, it->second );
      return 0u;
    }
    shard.order.emplace_front( key, std::move( value ) );
    shard.index.emplace( key.primary, shard.order.begin() );
    size_t evicted = 0u;
    while ( shard.order.size() > shard.capacity )
    {
      shard.index.erase( shard.order.back().first.primary );
      shard.order.pop_back();
      ++shard.stats.evictions;
      ++evicted;
    }
    return evicted;
  }

  /*! \brief Per-shard counter snapshot. */
  std::vector<shard_statistics> per_shard_statistics() const
  {
    std::vector<shard_statistics> out;
    out.reserve( shards_.size() );
    for ( const auto& shard : shards_ )
    {
      std::lock_guard<std::mutex> guard( shard.mutex );
      auto stats = shard.stats;
      stats.entries = shard.order.size();
      out.push_back( stats );
    }
    return out;
  }

  /*! \brief Counters summed over every shard. */
  shard_statistics statistics() const
  {
    shard_statistics total;
    for ( const auto& stats : per_shard_statistics() )
    {
      total.hits += stats.hits;
      total.misses += stats.misses;
      total.evictions += stats.evictions;
      total.entries += stats.entries;
    }
    return total;
  }

  size_t num_shards() const noexcept { return shards_.size(); }

  void clear()
  {
    for ( auto& shard : shards_ )
    {
      std::lock_guard<std::mutex> guard( shard.mutex );
      shard.order.clear();
      shard.index.clear();
      shard.stats = shard_statistics{};
    }
  }

private:
  struct shard
  {
    mutable std::mutex mutex;
    size_t capacity = 0u;
    std::list<std::pair<structural_key, std::shared_ptr<const Value>>> order;
    std::unordered_map<uint64_t, typename decltype( order )::iterator> index;
    shard_statistics stats;
  };

  shard& shard_of( const structural_key& key )
  {
    /* mix the high bits so sequential primaries spread over shards */
    return shards_[( key.primary * 0x9e3779b97f4a7c15ull >> 32u ) % shards_.size()];
  }
  const shard& shard_of( const structural_key& key ) const
  {
    return const_cast<sharded_lru*>( this )->shard_of( key );
  }

  std::vector<shard> shards_;
};

} // namespace qda::server
