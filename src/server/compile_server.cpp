#include "server/compile_server.hpp"

#include "fault/failpoint.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qda::server
{

namespace
{

using qda::detail::elapsed_ms_since;
using qda::detail::steady_clock;

/*! Capped exponential backoff: 1 ms base, doubling, 50 ms ceiling. */
std::chrono::milliseconds retry_backoff( uint32_t attempt )
{
  const auto exponent = std::min<uint32_t>( attempt, 6u );
  return std::chrono::milliseconds( std::min<int64_t>( int64_t{ 1 } << exponent, 50 ) );
}

bool same_job_options( const job_options& a, const job_options& b )
{
  return a.policy == b.policy && a.max_retries == b.max_retries &&
         a.limits.max_gates == b.limits.max_gates &&
         a.limits.max_helper_qubits == b.limits.max_helper_qubits &&
         ( a.deadline.count() == 0 ) == ( b.deadline.count() == 0 );
}

void set_queue_depth_gauge( size_t depth )
{
#if QDA_TELEMETRY_ENABLED
  if ( telemetry::enabled() )
  {
    telemetry::metrics_registry::instance().get_gauge( "server.queue_depth" ).set(
        static_cast<double>( depth ) );
  }
#else
  static_cast<void>( depth );
#endif
}

} // namespace

compile_server::compile_server( server_options options )
    : options_( std::move( options ) ),
      registry_( options_.registry ? *options_.registry : pass_registry::instance() ),
      cache_( std::make_shared<sharded_compilation_cache>( options_.cache_shards,
                                                           options_.cache_capacity ) ),
      prefixes_( options_.prefix_shards, options_.prefix_capacity ),
      manager_( options_.enable_result_cache && options_.cache_capacity > 0u
                    ? std::shared_ptr<compilation_cache>( cache_ )
                    : nullptr,
                registry_ )
{
  if ( options_.enable_library && !options_.library_path.empty() )
  {
    /* warm start: entries admitted by earlier processes splice from
     * the first sighting of this one */
    library::subcircuit_library::instance().set_path( options_.library_path );
  }
  auto workers = options_.num_workers;
  if ( workers == 0u )
  {
    workers = std::max( 1u, std::thread::hardware_concurrency() );
  }
  workers_.reserve( workers );
  for ( uint32_t i = 0u; i < workers; ++i )
  {
    workers_.emplace_back( [this] { worker_loop(); } );
  }
}

compile_server::~compile_server()
{
  shutdown();
}

std::future<compile_response> compile_server::submit( const std::string& spec_text )
{
  return std::move( do_submit( spec_text, job_options{} ).future_ );
}

job_handle compile_server::submit( const std::string& spec_text, const job_options& options )
{
  return do_submit( spec_text, options );
}

job_handle compile_server::do_submit( const std::string& spec_text, const job_options& opts )
{
  const auto submit_time = steady_clock::now();
  /* parse + validate before admission: malformed requests fail the
   * caller directly and never consume queue capacity */
  auto spec = parse_pipeline( spec_text );
  validate_pipeline( spec, registry_ );
  const auto key = options_.keying == key_mode::structural
                       ? compute_structural_key( spec, staged_ir{} )
                       : compute_text_key( spec_text );

  const bool use_cache = options_.enable_result_cache && options_.cache_capacity > 0u;
  const auto shutdown_error = [] {
    return qda_error( error_code::server_shutdown, "compile_server: submit after shutdown" );
  };

  std::unique_lock<std::mutex> lock( state_mutex_ );
  if ( stopping_ )
  {
    throw shutdown_error();
  }
  ++stats_.submitted;
  QDA_COUNT( "server.jobs.submitted" );

  /* fast path: an earlier identical job already produced the result */
  if ( use_cache )
  {
    std::shared_ptr<const compilation_result> cached;
    try
    {
      cached = cache_->lookup( key );
    }
    catch ( ... )
    {
      /* a failing cache backend degrades to a miss, never to a failed
       * submission */
      QDA_COUNT( "server.cache.lookup_failed" );
    }
    if ( cached )
    {
      ++stats_.completed;
      ++stats_.cache_hits;
      QDA_COUNT( "server.jobs.cache_hit" );
      QDA_COUNT( "server.jobs.completed" );
      lock.unlock();
      compile_response response;
      response.result = std::move( cached );
      response.cache_hit = true;
      response.reused_passes = 0u;
      response.total_ms = elapsed_ms_since( submit_time );
      std::promise<compile_response> promise;
      job_handle handle;
      handle.future_ = promise.get_future();
      promise.set_value( std::move( response ) );
      return handle;
    }
  }

  /* coalesce: attach to an identical job that is queued or in flight.
   * Only jobs with matching options share a compilation (one waiter's
   * policy must not change another's semantics), and never a job whose
   * waiters have all cancelled already. */
  if ( options_.coalesce_identical )
  {
    const auto it = active_.find( key );
    if ( it != active_.end() && same_job_options( it->second->opts, opts ) &&
         !it->second->ctl->source.cancel_requested() )
    {
      auto& existing = *it->second;
      ++stats_.coalesced;
      QDA_COUNT( "server.jobs.coalesced" );
      existing.ctl->waiters.fetch_add( 1u, std::memory_order_acq_rel );
      if ( opts.deadline.count() > 0 )
      {
        /* the job may run as long as its most patient client allows */
        existing.ctl->source.extend_deadline( submit_time + opts.deadline );
      }
      existing.waiters.emplace_back( std::promise<compile_response>{}, submit_time );
      job_handle handle;
      handle.future_ = existing.waiters.back().first.get_future();
      handle.ctl_ = existing.ctl;
      return handle;
    }
  }

  /* admission control */
  uint32_t admission_attempts = 0u;
  while ( queue_.size() >= options_.max_queue_depth && !stopping_ )
  {
    if ( options_.reject_when_full )
    {
      if ( admission_attempts < opts.max_retries )
      {
        /* transient overload: back off briefly and retry admission
         * before bouncing the request back to the client */
        ++admission_attempts;
        ++stats_.retried;
        QDA_COUNT( "server.jobs.retried" );
        const auto backoff = retry_backoff( admission_attempts );
        QDA_HISTOGRAM( "server.retry_backoff_ms",
                       static_cast<double>( backoff.count() ),
                       { 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0 } );
        lock.unlock();
        std::this_thread::sleep_for( backoff );
        lock.lock();
        continue;
      }
      ++stats_.rejected;
      QDA_COUNT( "server.jobs.rejected" );
      throw server_overloaded( "compile_server: queue full (" +
                               std::to_string( options_.max_queue_depth ) + " pending)" );
    }
    space_available_.wait( lock );
  }
  if ( stopping_ )
  {
    throw shutdown_error();
  }

  auto job_ptr = std::make_shared<job>();
  job_ptr->spec = std::move( spec );
  job_ptr->canonical = job_ptr->spec.to_string();
  job_ptr->key = key;
  job_ptr->enqueued_at = submit_time;
  job_ptr->opts = opts;
  job_ptr->ctl = std::make_shared<detail::job_cancel>();
  job_ptr->ctl->waiters.store( 1u, std::memory_order_relaxed );
  if ( opts.deadline.count() > 0 )
  {
    /* armed from submission, so queue wait counts against the budget */
    job_ptr->ctl->source.set_deadline( submit_time + opts.deadline );
  }
  job_ptr->waiters.emplace_back( std::promise<compile_response>{}, submit_time );
  job_handle handle;
  handle.future_ = job_ptr->waiters.back().first.get_future();
  handle.ctl_ = job_ptr->ctl;

  queue_.push_back( job_ptr );
  if ( options_.coalesce_identical )
  {
    /* a same-key job may still be registered if its waiters all
     * cancelled or its options differ; latest wins as coalesce target */
    active_[key] = job_ptr;
  }
  stats_.peak_queue_depth = std::max<uint64_t>( stats_.peak_queue_depth, queue_.size() );
  set_queue_depth_gauge( queue_.size() );
  work_available_.notify_one();
  return handle;
}

void compile_server::worker_loop()
{
  for ( ;; )
  {
    std::shared_ptr<job> job_ptr;
    {
      std::unique_lock<std::mutex> lock( state_mutex_ );
      work_available_.wait( lock, [this] { return stopping_ || !queue_.empty(); } );
      if ( queue_.empty() )
      {
        return; /* stopping and fully drained */
      }
      job_ptr = std::move( queue_.front() );
      queue_.pop_front();
      set_queue_depth_gauge( queue_.size() );
    }
    space_available_.notify_one();
    execute( job_ptr );
  }
}

void compile_server::record_queue_wait( double wait_ms )
{
  /* caller holds state_mutex_ */
  stats_.total_queue_wait_ms += wait_ms;
  size_t bucket = queue_wait_bounds_ms.size();
  for ( size_t i = 0u; i < queue_wait_bounds_ms.size(); ++i )
  {
    if ( wait_ms <= queue_wait_bounds_ms[i] )
    {
      bucket = i;
      break;
    }
  }
  ++stats_.queue_wait_histogram[bucket];
}

void compile_server::execute( const std::shared_ptr<job>& job_ptr )
{
  const auto started = steady_clock::now();
  const auto queue_wait_ms = elapsed_ms_since( job_ptr->enqueued_at );
  QDA_HISTOGRAM( "server.queue_wait_ms", queue_wait_ms,
                 { 0.05, 0.2, 1.0, 5.0, 20.0, 100.0, 500.0, 2000.0 } );

  QDA_TRACE_SPAN_NAMED( job_span, "server.job" );
  job_span.attr( "spec", job_ptr->canonical );
  job_span.attr( "queue_wait_ms", queue_wait_ms );

  const auto& spec = job_ptr->spec;
  const auto token = job_ptr->ctl->source.token();
  const bool use_prefixes = options_.enable_prefix_reuse &&
                            options_.prefix_capacity > 0u && spec.size() >= 2u;

  /* structural keys of every proper pipeline prefix over the empty
   * input; [len] = first len passes */
  if ( use_prefixes )
  {
    job_ptr->prefix_keys.resize( spec.size() );
    pipeline_spec prefix;
    prefix.passes.reserve( spec.size() - 1u );
    for ( size_t len = 1u; len < spec.size(); ++len )
    {
      prefix.passes.push_back( spec.passes[len - 1u] );
      job_ptr->prefix_keys[len] = compute_structural_key( prefix, staged_ir{} );
    }
  }

  run_plan plan;
  plan.cache_key = job_ptr->key;
  plan.lookup = false; /* already probed at admission */
  plan.cancel = token;
  plan.policy = job_ptr->opts.policy;
  plan.limits = job_ptr->opts.limits;
  plan.use_library = options_.enable_library;
  staged_ir initial;
  double resumed_saved_ms = 0.0;
  if ( use_prefixes )
  {
    const auto match = prefixes_.find_longest( job_ptr->prefix_keys );
    if ( match.passes > 0u )
    {
      initial = match.entry->ir; /* snapshot copy; the entry stays shared */
      plan.first_pass = match.passes;
      plan.prefix_reports = match.entry->reports;
      for ( const auto& report : plan.prefix_reports )
      {
        resumed_saved_ms += report.elapsed_ms;
      }
      QDA_COUNT( "server.prefix.hit" );
      QDA_COUNT_N( "server.prefix.passes_skipped", match.passes );
      job_span.attr( "reused_passes", static_cast<int64_t>( match.passes ) );
    }
  }

  pass_observer observer;
  if ( use_prefixes )
  {
    observer = [this, &job_ptr, &spec]( size_t pass_index, const staged_ir& ir,
                                        const std::vector<pass_report>& reports ) {
      const auto len = pass_index + 1u;
      if ( len >= spec.size() ) /* the full result lives in the result cache */
      {
        return;
      }
      const auto& key = job_ptr->prefix_keys[len];
      if ( prefixes_.contains( key ) )
      {
        return;
      }
      try
      {
        QDA_FAILPOINT( "prefix.snapshot" );
        prefixes_.store( key, prefix_entry{ ir, reports } );
        QDA_COUNT( "server.prefix.snapshot" );
      }
      catch ( ... )
      {
        /* a snapshot is pure opportunity; dropping it never fails the
         * compilation it was harvested from */
        QDA_COUNT( "server.prefix.snapshot_failed" );
      }
    };
  }

  /* compile, retrying transient failures with capped exponential
   * backoff; every outcome -- success, degradation, typed failure --
   * is delivered by value so the worker thread never dies */
  compile_response response;
  response.queue_wait_ms = queue_wait_ms;
  const auto max_retries = job_ptr->opts.max_retries;
  for ( uint32_t attempt = 0u;; )
  {
    try
    {
      if ( token.cancel_requested() )
      {
        throw qda_error( error_code::cancelled,
                         "compilation cancelled while queued for '" +
                             job_ptr->canonical + "'" );
      }
      if ( job_ptr->opts.policy == failure_policy::strict )
      {
        /* fast-fail jobs whose budget elapsed during the queue wait;
         * under degrade the run itself skips what no longer fits */
        token.check( "server.pickup" );
      }
      QDA_FAILPOINT( "server.worker" );
      /* each attempt compiles a fresh copy of the input; the final
       * attempt may consume it */
      staged_ir input =
          attempt >= max_retries ? std::move( initial ) : staged_ir( initial );
      auto result = manager_.run( spec, std::move( input ), plan, observer );
      response.reused_passes = result.reused_passes;
      response.degraded = result.degraded;
      response.code = error_code::ok;
      response.error_message.clear();
      response.result = std::make_shared<const compilation_result>( std::move( result ) );
      break;
    }
    catch ( const qda_error& e )
    {
      response.code = e.code();
      response.error_message = e.what();
      const bool retryable = e.transient() && attempt < max_retries &&
                             !token.cancel_requested() && !token.deadline_expired();
      if ( !retryable )
      {
        break;
      }
    }
    catch ( const std::exception& e )
    {
      response.code = classify_current_exception( error_code::pass_failure );
      response.error_message = e.what();
      break; /* untyped failures are never retried */
    }
    catch ( ... )
    {
      response.code = error_code::internal;
      response.error_message = "unknown compile failure";
      break;
    }
    ++attempt;
    ++response.retries;
    QDA_COUNT( "server.jobs.retried" );
    const auto backoff = retry_backoff( attempt );
    QDA_HISTOGRAM( "server.retry_backoff_ms", static_cast<double>( backoff.count() ),
                   { 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0 } );
    std::this_thread::sleep_for( backoff );
  }
  const auto compile_ms = elapsed_ms_since( started );
  job_span.attr( "compile_ms", compile_ms );
  job_span.attr( "error_code", std::string( error_code_name( response.code ) ) );
  if ( response.degraded )
  {
    job_span.attr( "degraded", int64_t{ 1 } );
  }
  if ( response.retries > 0u )
  {
    job_span.attr( "retries", static_cast<int64_t>( response.retries ) );
  }

  /* completion: detach the job, then fulfill every attached submission */
  decltype( job_ptr->waiters ) waiters;
  {
    std::lock_guard<std::mutex> guard( state_mutex_ );
    if ( options_.coalesce_identical )
    {
      /* erase only our own registration: a later same-key submission
       * may have replaced it (e.g. after this job was cancelled) */
      const auto it = active_.find( job_ptr->key );
      if ( it != active_.end() && it->second == job_ptr )
      {
        active_.erase( it );
      }
    }
    record_queue_wait( queue_wait_ms );
    stats_.retried += response.retries;
    switch ( response.code )
    {
    case error_code::ok:
      ++stats_.compiled;
      stats_.completed += job_ptr->waiters.size();
      stats_.passes_executed += job_ptr->spec.size() - response.reused_passes;
      if ( response.reused_passes > 0u )
      {
        ++stats_.prefix_hits;
        stats_.prefix_passes_skipped += response.reused_passes;
        stats_.prefix_saved_ms += resumed_saved_ms;
      }
      if ( response.degraded )
      {
        ++stats_.degraded;
        QDA_COUNT( "server.jobs.degraded" );
      }
      QDA_COUNT( "server.jobs.compiled" );
      QDA_COUNT_N( "server.jobs.completed", job_ptr->waiters.size() );
      break;
    case error_code::cancelled:
      ++stats_.cancelled;
      QDA_COUNT( "server.jobs.cancelled" );
      break;
    case error_code::deadline_exceeded:
      ++stats_.deadline_exceeded;
      QDA_COUNT( "server.jobs.deadline" );
      break;
    default:
      ++stats_.failed;
      QDA_COUNT( "server.jobs.failed" );
      break;
    }
    waiters.swap( job_ptr->waiters );
  }

  bool first = true;
  for ( auto& [promise, submit_time] : waiters )
  {
    auto copy = response;
    copy.coalesced = !first;
    copy.total_ms = elapsed_ms_since( submit_time );
    promise.set_value( std::move( copy ) );
    first = false;
  }
}

void compile_server::shutdown()
{
  {
    std::lock_guard<std::mutex> guard( state_mutex_ );
    stopping_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  for ( auto& worker : workers_ )
  {
    if ( worker.joinable() )
    {
      worker.join();
    }
  }
}

server_statistics compile_server::statistics() const
{
  server_statistics stats;
  {
    std::lock_guard<std::mutex> guard( state_mutex_ );
    stats = stats_;
  }
  stats.result_cache = cache_->statistics();
  stats.result_shards = cache_->per_shard_statistics();
  stats.prefix_cache = prefixes_.statistics();
  if ( options_.enable_library )
  {
    stats.library = library::subcircuit_library::instance().statistics();
  }
  return stats;
}

size_t compile_server::queue_depth() const
{
  std::lock_guard<std::mutex> guard( state_mutex_ );
  return queue_.size();
}

std::string format_server_report( const server_statistics& stats )
{
  std::ostringstream out;
  char line[256];
  out << "compile server report\n";
  std::snprintf( line, sizeof( line ),
                 "  jobs: %llu submitted, %llu completed (%llu cache hits, %llu coalesced, "
                 "%llu compiled), %llu rejected, %llu failed\n",
                 static_cast<unsigned long long>( stats.submitted ),
                 static_cast<unsigned long long>( stats.completed ),
                 static_cast<unsigned long long>( stats.cache_hits ),
                 static_cast<unsigned long long>( stats.coalesced ),
                 static_cast<unsigned long long>( stats.compiled ),
                 static_cast<unsigned long long>( stats.rejected ),
                 static_cast<unsigned long long>( stats.failed ) );
  out << line;
  std::snprintf( line, sizeof( line ),
                 "  faults: %llu cancelled, %llu deadline-exceeded, %llu degraded, "
                 "%llu retries\n",
                 static_cast<unsigned long long>( stats.cancelled ),
                 static_cast<unsigned long long>( stats.deadline_exceeded ),
                 static_cast<unsigned long long>( stats.degraded ),
                 static_cast<unsigned long long>( stats.retried ) );
  out << line;
  std::snprintf( line, sizeof( line ),
                 "  result cache: %llu entries / %zu shards, %llu hits, %llu misses, "
                 "%llu evictions (%.1f%% request hit rate)\n",
                 static_cast<unsigned long long>( stats.result_cache.entries ),
                 stats.result_shards.size(),
                 static_cast<unsigned long long>( stats.result_cache.hits ),
                 static_cast<unsigned long long>( stats.result_cache.misses ),
                 static_cast<unsigned long long>( stats.result_cache.evictions ),
                 100.0 * stats.hit_rate() );
  out << line;
  std::snprintf( line, sizeof( line ),
                 "  prefix reuse: %llu resumed compiles, %llu passes skipped, "
                 "%.3f ms of pass time saved, %llu snapshots held\n",
                 static_cast<unsigned long long>( stats.prefix_hits ),
                 static_cast<unsigned long long>( stats.prefix_passes_skipped ),
                 stats.prefix_saved_ms,
                 static_cast<unsigned long long>( stats.prefix_cache.entries ) );
  out << line;
  out << "  " << library::format_library_report( stats.library ) << "\n";
  const auto waits = static_cast<double>( stats.compiled );
  std::snprintf( line, sizeof( line ),
                 "  queue: peak depth %llu, mean wait %.3f ms over %llu executed jobs\n",
                 static_cast<unsigned long long>( stats.peak_queue_depth ),
                 waits > 0.0 ? stats.total_queue_wait_ms / waits : 0.0,
                 static_cast<unsigned long long>( stats.compiled ) );
  out << line;
  out << "  queue wait histogram (ms):";
  for ( size_t i = 0u; i < stats.queue_wait_histogram.size(); ++i )
  {
    if ( stats.queue_wait_histogram[i] == 0u )
    {
      continue;
    }
    if ( i < queue_wait_bounds_ms.size() )
    {
      std::snprintf( line, sizeof( line ), "  <=%g: %llu", queue_wait_bounds_ms[i],
                     static_cast<unsigned long long>( stats.queue_wait_histogram[i] ) );
    }
    else
    {
      std::snprintf( line, sizeof( line ), "  >%g: %llu",
                     queue_wait_bounds_ms.back(),
                     static_cast<unsigned long long>( stats.queue_wait_histogram[i] ) );
    }
    out << line;
  }
  out << "\n";
  return out.str();
}

} // namespace qda::server
