/*! \file sharded_cache.hpp
 *  \brief Sharded structural-hash result cache for the compile server.
 *
 *  Implements the pass manager's pluggable `compilation_cache`
 *  interface over a `sharded_lru`: per-shard mutexes and true-LRU
 *  eviction replace the original global-mutex FIFO backend, so many
 *  workers can hit/miss concurrently with contention only inside one
 *  key partition.  Per-shard hit/miss/eviction counters feed the
 *  server's telemetry report.
 */
#pragma once

#include "pipeline/compilation_cache.hpp"
#include "server/sharded_lru.hpp"

namespace qda::server
{

class sharded_compilation_cache final : public compilation_cache
{
public:
  /*! \brief `num_shards` independent partitions sharing `capacity`
   *         entries in total.
   */
  sharded_compilation_cache( size_t num_shards, size_t capacity );

  std::shared_ptr<const compilation_result> lookup( const structural_key& key ) override;
  void store( const structural_key& key,
              std::shared_ptr<const compilation_result> result ) override;
  cache_statistics statistics() const override;
  void clear() override;

  /*! \brief Per-shard counters, for telemetry and shard-balance checks. */
  std::vector<shard_statistics> per_shard_statistics() const
  {
    return map_.per_shard_statistics();
  }

  size_t num_shards() const noexcept { return map_.num_shards(); }

private:
  sharded_lru<compilation_result> map_;
};

} // namespace qda::server
