/*! \file compile_server.hpp
 *  \brief Concurrent compilation-as-a-service core.
 *
 *  The paper's premise is compilation as a push-button service:
 *  Eq. (5) shell specs in, optimized Clifford+T circuits out.  This
 *  subsystem is the serving layer: a `compile_server` accepts many
 *  spec-shaped requests concurrently (`submit(spec) -> future`) and
 *  amortizes work across them through four mechanisms:
 *
 *   1. a bounded thread-safe job queue with a worker pool and
 *      admission control (block or reject when full), draining
 *      gracefully on shutdown;
 *   2. a sharded structural-hash result cache
 *      (server/sharded_cache.hpp) keyed on the canonical post-parse
 *      pipeline plus the input IR -- equivalent spec spellings dedup
 *      to one entry;
 *   3. cross-job pass-prefix reuse (server/prefix_cache.hpp): a job
 *      sharing a leading pass sequence with any prior job resumes
 *      mid-pipeline instead of recompiling from scratch;
 *   4. request coalescing: identical jobs submitted while one is
 *      queued or in flight attach to it and are served by a single
 *      compilation (batching with the queue residency as the window).
 *
 *  Results are shared (`shared_ptr<const compilation_result>`), so a
 *  cache hit never deep-copies a circuit.
 */
#pragma once

#include "fault/cancel.hpp"
#include "fault/error.hpp"
#include "library/subcircuit_library.hpp"
#include "pipeline/pass_manager.hpp"
#include "server/prefix_cache.hpp"
#include "server/sharded_cache.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qda::server
{

/*! \brief How submissions are keyed in the result cache. */
enum class key_mode
{
  structural, /*!< canonical structural hash of (post-parse spec, input IR) */
  exact_text  /*!< raw spec text; the pre-server keying, kept as ablation */
};

/*! \brief Configuration of a compile server. */
struct server_options
{
  /*! Worker threads; 0 = std::thread::hardware_concurrency(). */
  uint32_t num_workers = 0u;

  /*! Admission control: pending jobs beyond this bound either block
   *  the submitter (backpressure, default) or are rejected with
   *  `server_overloaded`. */
  size_t max_queue_depth = 1024u;
  bool reject_when_full = false;

  size_t cache_shards = 16u;
  size_t cache_capacity = 1024u; /*!< result entries; 0 disables */
  size_t prefix_shards = 8u;
  size_t prefix_capacity = 256u; /*!< snapshot entries; 0 disables */

  bool enable_result_cache = true;
  bool enable_prefix_reuse = true;
  bool coalesce_identical = true;

  key_mode keying = key_mode::structural;

  /*! Thread the process-wide subcircuit library through every job's
   *  pass context, so hot rptm/tpar shapes splice across jobs. */
  bool enable_library = true;

  /*! When nonempty, points the library singleton at this append-only
   *  store at construction: entries admitted by earlier processes are
   *  loaded for a warm start, new admissions are appended. */
  std::string library_path;

  /*! Pass registry to resolve specs against; nullptr = the built-in
   *  process-wide registry. */
  const pass_registry* registry = nullptr;
};

/*! \brief Per-job execution options (deadline, degradation, retries). */
struct job_options
{
  /*! Wall-clock budget measured from submission (queue wait counts);
   *  zero = unbounded.  An expired deadline fails the job with
   *  `deadline_exceeded` under `strict` policy, or skips the remaining
   *  degradable passes under `degrade`. */
  std::chrono::milliseconds deadline{ 0 };

  failure_policy policy = failure_policy::strict;

  /*! Gate / helper-qubit ceilings -> `resource_exhausted`. */
  resource_limits limits;

  /*! Worker-side retries of *transient* compile failures (injected
   *  faults, overload), with capped exponential backoff (1 ms base,
   *  doubling, 50 ms cap).  In reject-when-full mode the same budget
   *  also retries admission before `server_overloaded` is thrown. */
  uint32_t max_retries = 0u;
};

/*! \brief One served request.
 *
 *  Compile failures are delivered by value: `code != error_code::ok`
 *  with `result == nullptr` and the diagnostic in `error_message`, so
 *  clients branch on the stable code instead of catching exceptions.
 *  (Submission-time failures -- malformed specs, overload, shutdown --
 *  still throw from `submit`, before a future exists.)
 */
struct compile_response
{
  std::shared_ptr<const compilation_result> result;
  bool cache_hit = false;      /*!< served from the result cache, no compile */
  bool coalesced = false;      /*!< attached to an identical pending job */
  uint32_t reused_passes = 0u; /*!< passes skipped via the prefix cache */
  double queue_wait_ms = 0.0;  /*!< admission -> worker pickup (0 for hits) */
  double total_ms = 0.0;       /*!< submit -> response */

  error_code code = error_code::ok;
  std::string error_message;
  bool degraded = false;  /*!< >= 1 pass skipped under the degrade policy */
  uint32_t retries = 0u;  /*!< transient-failure retries this job consumed */

  bool ok() const noexcept { return code == error_code::ok; }
};

/*! \brief Rejected by admission control (queue full, reject mode).
 *         Typed `overloaded` and transient: the same request may be
 *         admitted later.
 */
class server_overloaded : public qda_error
{
public:
  explicit server_overloaded( const std::string& what )
      : qda_error( error_code::overloaded, what, /*transient=*/true )
  {
  }
};

namespace detail
{

/*! \brief Shared cancel bookkeeping of one queued or in-flight job.
 *
 *  Coalesced submissions share one compilation, so one waiter's
 *  cancel must not abort the others: the job's cancel_source fires
 *  only once every attached waiter has cancelled.
 */
struct job_cancel
{
  cancel_source source;
  std::atomic<uint32_t> waiters{ 0u };
  std::atomic<uint32_t> cancelled{ 0u };

  void cancel_one() noexcept
  {
    const auto done = cancelled.fetch_add( 1u, std::memory_order_acq_rel ) + 1u;
    if ( done >= waiters.load( std::memory_order_acquire ) )
    {
      source.request_cancel();
    }
  }
};

} // namespace detail

/*! \brief Client handle to one submission: the response future plus
 *         cooperative cancellation.
 */
class job_handle
{
public:
  job_handle() = default;

  std::future<compile_response>& future() noexcept { return future_; }

  /*! \brief Blocks for the response (shorthand for future().get()). */
  compile_response get() { return future_.get(); }

  bool valid() const noexcept { return future_.valid(); }

  /*! \brief Requests cooperative cancellation of this submission.
   *
   *  The shared compilation aborts (typed `cancelled`) once every
   *  coalesced waiter has cancelled; until then the job keeps running
   *  for the remaining waiters and this handle still receives the
   *  outcome.  Idempotent; a no-op for cache hits.
   */
  void cancel() noexcept
  {
    if ( ctl_ && !cancel_sent_ )
    {
      cancel_sent_ = true;
      ctl_->cancel_one();
    }
  }

private:
  friend class compile_server;

  std::future<compile_response> future_;
  std::shared_ptr<detail::job_cancel> ctl_;
  bool cancel_sent_ = false;
};

/*! \brief Queue-wait histogram bucket upper bounds, in ms. */
inline constexpr std::array<double, 8u> queue_wait_bounds_ms = { 0.05, 0.2, 1.0,  5.0,
                                                                 20.0, 100.0, 500.0, 2000.0 };

/*! \brief Aggregate server counters (one consistent snapshot). */
struct server_statistics
{
  uint64_t submitted = 0u;
  uint64_t completed = 0u;  /*!< responses delivered (incl. hits, coalesced) */
  uint64_t cache_hits = 0u; /*!< served at admission from the result cache */
  uint64_t coalesced = 0u;  /*!< attached to an identical pending job */
  uint64_t compiled = 0u;   /*!< jobs that actually executed passes */
  uint64_t rejected = 0u;
  uint64_t failed = 0u;    /*!< pass failures / resource exhaustion */
  uint64_t cancelled = 0u; /*!< jobs aborted by client cancel */
  uint64_t deadline_exceeded = 0u;
  uint64_t degraded = 0u;  /*!< completed jobs with >= 1 degraded pass */
  uint64_t retried = 0u;   /*!< transient-failure retry attempts */

  uint64_t prefix_hits = 0u;          /*!< compiles resumed mid-pipeline */
  uint64_t prefix_passes_skipped = 0u;
  uint64_t passes_executed = 0u;
  double prefix_saved_ms = 0.0; /*!< original cost of every skipped pass */

  uint64_t peak_queue_depth = 0u;
  double total_queue_wait_ms = 0.0;
  std::array<uint64_t, queue_wait_bounds_ms.size() + 1u> queue_wait_histogram{};

  cache_statistics result_cache;            /*!< aggregate backend counters */
  std::vector<shard_statistics> result_shards; /*!< per-shard hit/miss/evict */
  shard_statistics prefix_cache;            /*!< snapshot-store counters */
  library::library_statistics library;      /*!< subcircuit-library counters */

  /*! Served-from-cache fraction of completed requests (hits + coalesced
   *  over completed; 0 when nothing completed). */
  double hit_rate() const noexcept
  {
    return completed == 0u
               ? 0.0
               : static_cast<double>( cache_hits + coalesced ) /
                     static_cast<double>( completed );
  }
};

/*! \brief Concurrent compile service over a shared pass manager. */
class compile_server
{
public:
  explicit compile_server( server_options options = {} );

  /*! \brief Graceful: drains admitted jobs, then joins the workers. */
  ~compile_server();

  compile_server( const compile_server& ) = delete;
  compile_server& operator=( const compile_server& ) = delete;

  /*! \brief Parses, validates and admits one request.
   *
   *  Throws qda::spec_parse_error (a std::invalid_argument) /
   *  qda::spec_stage_error (a std::logic_error) on malformed specs
   *  (before admission), `server_overloaded` when the queue is full in
   *  reject mode, and a typed `server_shutdown` qda_error (a
   *  std::runtime_error) after shutdown began; otherwise blocks while
   *  the queue is full.  The future always delivers a value: compile
   *  failures arrive as `compile_response::code != ok`.
   */
  std::future<compile_response> submit( const std::string& spec_text );

  /*! \brief Like submit(), with per-job deadline / degradation /
   *         retry options and a cancellable handle.  Jobs coalesce
   *         only with identical options (deadlines max-merge).
   */
  job_handle submit( const std::string& spec_text, const job_options& options );

  /*! \brief Stops admission, drains every admitted job, joins the
   *         worker pool (idempotent).
   */
  void shutdown();

  server_statistics statistics() const;

  size_t queue_depth() const;

  const server_options& options() const noexcept { return options_; }

  /*! \brief The shared result-cache backend (also pluggable into any
   *         pass_manager). */
  const std::shared_ptr<sharded_compilation_cache>& result_cache() const noexcept
  {
    return cache_;
  }

private:
  struct job
  {
    pipeline_spec spec;
    std::string canonical;
    structural_key key;
    std::vector<structural_key> prefix_keys; /*!< [len] = key of first len passes */
    std::chrono::steady_clock::time_point enqueued_at;
    job_options opts;
    std::shared_ptr<detail::job_cancel> ctl;
    /*! Each attached submission: its promise and submit time. */
    std::vector<std::pair<std::promise<compile_response>,
                          std::chrono::steady_clock::time_point>> waiters;
  };

  job_handle do_submit( const std::string& spec_text, const job_options& options );
  void worker_loop();
  void execute( const std::shared_ptr<job>& job_ptr );
  void record_queue_wait( double wait_ms );

  server_options options_;
  const pass_registry& registry_;
  std::shared_ptr<sharded_compilation_cache> cache_;
  prefix_cache prefixes_;
  pass_manager manager_;

  mutable std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable space_available_;
  std::deque<std::shared_ptr<job>> queue_;
  std::unordered_map<structural_key, std::shared_ptr<job>, structural_key_hash> active_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  /* counters; guarded by state_mutex_ except the relaxed histogram */
  server_statistics stats_;
};

/*! \brief Human-readable aggregate report (jobs, cache, prefix reuse,
 *         queue-wait histogram); the server-level counterpart of
 *         `format_cost_table`, printed by the demo/bench alongside the
 *         telemetry `--report` sink.
 */
std::string format_server_report( const server_statistics& stats );

} // namespace qda::server
