#include "phasepoly/linear_synthesis.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace qda
{

linear_matrix identity_matrix( uint32_t n )
{
  linear_matrix matrix( n );
  for ( uint32_t row = 0u; row < n; ++row )
  {
    matrix[row].set( row );
  }
  return matrix;
}

affine_map affine_map_of_circuit( const qcircuit& circuit )
{
  affine_map map{ identity_matrix( circuit.num_qubits() ), {} };
  for ( const auto& gate : circuit.gates() )
  {
    switch ( gate.kind )
    {
    case gate_kind::cx:
    {
      const uint32_t control = gate.controls[0];
      map.linear[gate.target] ^= map.linear[control];
      if ( map.constants.test( control ) )
      {
        map.constants.flip( gate.target );
      }
      break;
    }
    case gate_kind::swap:
      std::swap( map.linear[gate.target], map.linear[gate.target2] );
      if ( map.constants.test( gate.target ) != map.constants.test( gate.target2 ) )
      {
        map.constants.flip( gate.target );
        map.constants.flip( gate.target2 );
      }
      break;
    case gate_kind::x:
      map.constants.flip( gate.target );
      break;
    case gate_kind::barrier:
      break;
    default:
      throw std::invalid_argument( "affine_map_of_circuit: non-affine gate" );
    }
  }
  return map;
}

linear_matrix linear_map_of_circuit( const qcircuit& circuit )
{
  return affine_map_of_circuit( circuit ).linear;
}

bool is_invertible( const linear_matrix& matrix )
{
  linear_matrix work = matrix;
  const uint32_t n = static_cast<uint32_t>( work.size() );
  for ( uint32_t col = 0u; col < n; ++col )
  {
    uint32_t pivot = col;
    while ( pivot < n && !work[pivot].test( col ) )
    {
      ++pivot;
    }
    if ( pivot == n )
    {
      return false;
    }
    std::swap( work[col], work[pivot] );
    for ( uint32_t row = 0u; row < n; ++row )
    {
      if ( row != col && work[row].test( col ) )
      {
        work[row] ^= work[col];
      }
    }
  }
  return true;
}

namespace
{

using row_op = std::pair<uint32_t, uint32_t>; /* (control_row, target_row) */

/*! Lower-triangularization of PMH: reduces `matrix` to upper triangular
 *  form, returning the row operations applied (target ^= control).
 */
std::vector<row_op> lower_synth( linear_matrix& matrix, uint32_t section_size )
{
  const uint32_t n = static_cast<uint32_t>( matrix.size() );
  std::vector<row_op> ops;

  for ( uint32_t section_start = 0u; section_start < n; section_start += section_size )
  {
    const uint32_t section_end = std::min( section_start + section_size, n );
    bitvec section_mask;
    for ( uint32_t col = section_start; col < section_end; ++col )
    {
      section_mask.set( col );
    }

    /* step A: merge rows with identical sub-row patterns */
    std::map<bitvec, uint32_t> patterns;
    for ( uint32_t row = section_start; row < n; ++row )
    {
      const bitvec sub = matrix[row] & section_mask;
      if ( sub.none() )
      {
        continue;
      }
      if ( const auto it = patterns.find( sub ); it != patterns.end() )
      {
        matrix[row] ^= matrix[it->second];
        ops.emplace_back( it->second, row );
      }
      else
      {
        patterns.emplace( sub, row );
      }
    }

    /* step B: Gaussian elimination inside the section */
    for ( uint32_t col = section_start; col < section_end; ++col )
    {
      if ( !matrix[col].test( col ) )
      {
        uint32_t pivot = col + 1u;
        while ( pivot < n && !matrix[pivot].test( col ) )
        {
          ++pivot;
        }
        if ( pivot == n )
        {
          throw std::invalid_argument( "pmh_linear_synthesis: matrix is singular" );
        }
        matrix[col] ^= matrix[pivot];
        ops.emplace_back( pivot, col );
      }
      for ( uint32_t row = col + 1u; row < n; ++row )
      {
        if ( matrix[row].test( col ) )
        {
          matrix[row] ^= matrix[col];
          ops.emplace_back( col, row );
        }
      }
    }
  }
  return ops;
}

linear_matrix transpose( const linear_matrix& matrix )
{
  const uint32_t n = static_cast<uint32_t>( matrix.size() );
  linear_matrix result( n );
  for ( uint32_t row = 0u; row < n; ++row )
  {
    matrix[row].for_each_set_bit( [&result, row]( uint32_t col ) {
      result[col].set( row );
    } );
  }
  return result;
}

} // namespace

namespace detail
{

std::vector<std::pair<uint32_t, uint32_t>> pmh_cnot_ops( const linear_matrix& matrix,
                                                         uint32_t section_size )
{
  if ( section_size == 0u )
  {
    throw std::invalid_argument( "pmh_linear_synthesis: section size must be positive" );
  }

  linear_matrix work = matrix;
  const auto phase1 = lower_synth( work, section_size );          /* work now upper triangular */
  linear_matrix transposed = transpose( work );
  const auto phase2 = lower_synth( transposed, section_size );    /* now identity */

  /* composition (see derivation in the unit tests):
   *   gates = phase2 ops in emission order with control/target swapped,
   *           then phase1 ops in reverse emission order               */
  std::vector<std::pair<uint32_t, uint32_t>> ops;
  ops.reserve( phase1.size() + phase2.size() );
  for ( const auto& [control, target] : phase2 )
  {
    ops.emplace_back( target, control );
  }
  for ( auto it = phase1.rbegin(); it != phase1.rend(); ++it )
  {
    ops.emplace_back( it->first, it->second );
  }
  return ops;
}

} // namespace detail

qcircuit pmh_linear_synthesis( const linear_matrix& matrix, uint32_t section_size )
{
  qcircuit circuit( static_cast<uint32_t>( matrix.size() ) );
  for ( const auto& [control, target] : detail::pmh_cnot_ops( matrix, section_size ) )
  {
    circuit.cx( control, target );
  }
  return circuit;
}

qcircuit resynthesize_linear_regions( const qcircuit& circuit, uint32_t section_size )
{
  qcircuit result( circuit.num_qubits() );
  std::vector<qgate> region;

  const auto flush_region = [&]() {
    if ( region.size() < 2u )
    {
      for ( const auto& gate : region )
      {
        result.add_gate( gate );
      }
      region.clear();
      return;
    }
    /* qubits touched by the region */
    std::vector<uint32_t> touched;
    for ( const auto& gate : region )
    {
      for ( const auto qubit : gate.qubits() )
      {
        if ( !std::count( touched.begin(), touched.end(), qubit ) )
        {
          touched.push_back( qubit );
        }
      }
    }
    std::sort( touched.begin(), touched.end() );
    std::vector<uint32_t> local_of( circuit.num_qubits(), 0u );
    for ( uint32_t i = 0u; i < touched.size(); ++i )
    {
      local_of[touched[i]] = i;
    }
    /* extract the local affine map */
    qcircuit local( static_cast<uint32_t>( touched.size() ) );
    for ( const auto& gate : region )
    {
      if ( gate.kind == gate_kind::cx )
      {
        local.cx( local_of[gate.controls[0]], local_of[gate.target] );
      }
      else if ( gate.kind == gate_kind::swap )
      {
        local.swap_( local_of[gate.target], local_of[gate.target2] );
      }
      else
      {
        local.x( local_of[gate.target] );
      }
    }
    const auto map = affine_map_of_circuit( local );
    auto resynthesized = pmh_linear_synthesis( map.linear, section_size );
    map.constants.for_each_set_bit( [&resynthesized]( uint32_t wire ) {
      resynthesized.x( wire );
    } );
    if ( resynthesized.num_gates() < region.size() )
    {
      result.append_mapped( resynthesized, touched );
    }
    else
    {
      for ( const auto& gate : region )
      {
        result.add_gate( gate );
      }
    }
    region.clear();
  };

  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.kind == gate_kind::cx || gate.kind == gate_kind::swap ||
         gate.kind == gate_kind::x )
    {
      region.push_back( gate );
    }
    else
    {
      flush_region();
      result.add_gate( gate );
    }
  }
  flush_region();
  return result;
}

} // namespace qda
