/*! \file linear_synthesis.hpp
 *  \brief CNOT (linear reversible) circuit synthesis, Patel-Markov-Hayes.
 *
 *  CNOT-only circuits compute invertible linear maps over GF(2); with
 *  X gates they compute affine maps (a linear part plus a constant
 *  offset).  The asymptotically optimal O(n^2 / log n) algorithm of
 *  Patel, Markov and Hayes re-synthesizes linear maps with block-wise
 *  Gaussian elimination; it is the epilogue of the parity-network
 *  resynthesizer (phasepoly/resynthesis.hpp) and a standalone
 *  CNOT-count optimization (a standard companion of the T-count
 *  optimization in the paper's Eq. (5) pipeline).
 *
 *  Rows are dynamic-width `bitvec`s since the unified phase-polynomial
 *  subsystem landed, so the former 64-qubit cap is gone.
 */
#pragma once

#include "kernel/bits.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <vector>

namespace qda
{

/*! \brief An invertible linear map over GF(2): row i holds the mask of
 *         inputs XORed into output i.
 */
using linear_matrix = std::vector<bitvec>;

/*! \brief An affine map over GF(2): output i = linear[i] . x (+)
 *         constants[i].  Computed by CNOT/SWAP/X circuits.
 */
struct affine_map
{
  linear_matrix linear;
  bitvec constants;
};

/*! \brief The n x n identity map. */
linear_matrix identity_matrix( uint32_t n );

/*! \brief Extracts the affine map of a CNOT/SWAP/X-only circuit.
 *         Throws std::invalid_argument on other gates.
 */
affine_map affine_map_of_circuit( const qcircuit& circuit );

/*! \brief Extracts the linear part of the map of a CNOT/SWAP/X-only
 *         circuit (X gates contribute only to the affine constants,
 *         which this accessor drops; use `affine_map_of_circuit` to
 *         keep them).  Throws std::invalid_argument on other gates.
 */
linear_matrix linear_map_of_circuit( const qcircuit& circuit );

/*! \brief True if the matrix is invertible over GF(2). */
bool is_invertible( const linear_matrix& matrix );

/*! \brief Synthesizes a CNOT circuit computing `matrix` with the
 *         Patel-Markov-Hayes block algorithm (`section_size` columns per
 *         block; 2 is a good default up to a few dozen qubits).
 */
qcircuit pmh_linear_synthesis( const linear_matrix& matrix, uint32_t section_size = 2u );

namespace detail
{

/*! \brief The PMH CNOT list for `matrix` as (control, target) pairs in
 *         application order, without materializing a circuit (the
 *         allocation-free core of `pmh_linear_synthesis`, used per
 *         region by the parity-network resynthesizer).
 */
std::vector<std::pair<uint32_t, uint32_t>> pmh_cnot_ops( const linear_matrix& matrix,
                                                         uint32_t section_size );

} // namespace detail

/*! \brief Re-synthesizes maximal CNOT/SWAP/X runs inside a circuit with
 *         PMH (X offsets re-applied after the linear network), leaving
 *         other gates untouched.
 */
qcircuit resynthesize_linear_regions( const qcircuit& circuit, uint32_t section_size = 2u );

} // namespace qda
