/*! \file resynthesis.hpp
 *  \brief Parity-network resynthesis of phase-polynomial regions.
 *
 *  The second half of a real T-par (Amy-Maslov-Mosca, paper ref [69]):
 *  after folding merges phase terms, each maximal {CNOT, X, SWAP,
 *  phase} region is rebuilt from its phase polynomial instead of
 *  keeping the original gate skeleton.  A GraySynth-style greedy pass
 *  (Amy-Azimzadeh-Mosca) steers every remaining parity onto a wire
 *  with the cheapest CNOT chain in the current frame and drops the
 *  merged phase gate there; a Patel-Markov-Hayes epilogue then closes
 *  the residual linear map, and X gates re-apply the affine constants.
 *  A region is only replaced when the rebuilt network is strictly
 *  smaller, so resynthesis never degrades a circuit.
 */
#pragma once

#include "fault/cancel.hpp"
#include "phasepoly/phase_polynomial.hpp"
#include "phasepoly/splice.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <vector>

namespace qda::phasepoly
{

struct resynthesis_options
{
  uint32_t section_size = 2u;       /*!< PMH epilogue block width */
  uint32_t max_region_terms = 512u; /*!< skip regions with more terms (greedy is O(T^2 n)) */
  cancel_token cancel;              /*!< polled between regions and parity placements */
  /*! Cross-compilation subcircuit library; regions whose canonical
   *  fingerprint hits splice the stored network instead of re-running
   *  GraySynth.  Null disables the library tier (the per-spelling memo
   *  still applies). */
  splice_provider* library = nullptr;
};

/*! \brief A synthesized parity network over `poly.num_vars` wires. */
struct parity_network
{
  std::vector<qgate> gates;  /*!< wire indices are region-local */
  double global_phase = 0.0; /*!< e^{i g} needed for exact equality */
};

/*! \brief Rebuilds a circuit for `poly`: phase gates placed along a
 *         greedy parity network, PMH linear epilogue, X constants.
 */
parity_network synthesize_parity_network( const phase_polynomial& poly,
                                          uint32_t section_size = 2u,
                                          cancel_token cancel = {} );

/*! \brief Carves maximal {CNOT, X, SWAP, phase} regions out of the
 *         circuit and replaces each with its resynthesized parity
 *         network when that network is strictly smaller.  Equivalent
 *         up to the explicitly appended global phase.
 */
void resynthesize_parity_regions_in_place( qcircuit& circuit,
                                           const resynthesis_options& options = {} );

} // namespace qda::phasepoly
