/*! \file phasepoly.hpp
 *  \brief The phase-polynomial subsystem: the real `tpar` engine.
 *
 *  Umbrella header of `src/phasepoly/`, the mid-level IR of the
 *  Eq. (5) pipeline's quality stage:
 *
 *   - phase_polynomial.hpp : the phase-polynomial IR and its region
 *     extractor (dynamic-width parities, no 64-variable cap),
 *   - fold.hpp             : whole-circuit phase folding over
 *     unbounded parity labels,
 *   - resynthesis.hpp      : GraySynth-style parity-network rebuild
 *     with a Patel-Markov-Hayes linear epilogue,
 *   - linear_synthesis.hpp : PMH CNOT synthesis and affine maps,
 *   - parity_table.hpp     : the flat-hash term accumulator.
 *
 *  `tpar_in_place` is what the pipeline's `tpar` pass runs: fold, then
 *  (unless disabled) region resynthesis.  `optimization/phase_folding`
 *  is a thin fold-only client of this subsystem.
 */
#pragma once

#include "phasepoly/fold.hpp"
#include "phasepoly/linear_synthesis.hpp"
#include "phasepoly/parity_table.hpp"
#include "phasepoly/phase_polynomial.hpp"
#include "phasepoly/resynthesis.hpp"
#include "quantum/qcircuit.hpp"

namespace qda::phasepoly
{

struct tpar_options
{
  bool resynthesize = true; /*!< rebuild region CNOT skeletons after folding */
  resynthesis_options resynthesis;
};

/*! \brief The T-count optimization stage: phase folding followed by
 *         parity-network resynthesis (unless `options.resynthesize` is
 *         false).  Equivalent up to the explicitly tracked global phase.
 */
void tpar_in_place( qcircuit& circuit, const tpar_options& options = {} );

/*! \brief Optimized copy of `circuit`. */
qcircuit tpar( const qcircuit& circuit, const tpar_options& options = {} );

} // namespace qda::phasepoly
