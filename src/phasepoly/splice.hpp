/*! \file splice.hpp
 *  \brief Abstract subcircuit-library hook of the tpar engine.
 *
 *  The phasepoly subsystem exposes two splice points to an external
 *  library of optimized forms (implemented by
 *  `library::subcircuit_library`, which this layer must not depend on):
 *
 *   - the *circuit* level: the whole tpar input is the largest
 *     candidate region; on a fingerprint hit the stored optimized
 *     circuit is spliced back (relabeled) and both phase folding and
 *     resynthesis are skipped entirely;
 *   - the *region* level: one maximal {CNOT, X, SWAP, phase} region's
 *     phase polynomial; on a hit the stored parity network is spliced
 *     instead of re-running GraySynth.
 *
 *  A `splice_probe` carries the fingerprint computed during the lookup
 *  to the matching offer, so a miss never fingerprints twice.  Hits
 *  are verified byte-exactly against the stored canonical spelling
 *  before splicing -- the hash only buckets, equality decides.
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qda::phasepoly
{

struct phase_polynomial;
struct parity_network;

/*! \brief Fingerprint state carried from a lookup to its offer.
 *
 *  `key` is the dual-seed FNV-1a pair over `bytes` (the canonical
 *  spelling).  The wire vectors depend on the level: at the circuit
 *  level `wires[local]` is the circuit qubit of first-touch label
 *  `local`; at the region level `wires[c]` is the region-local
 *  variable of canonical label `c` and `perm[v]` the canonical label
 *  of region-local variable `v`.
 */
struct splice_probe
{
  std::array<uint64_t, 2> key{};
  std::string bytes;
  std::vector<uint32_t> wires;
  std::vector<uint32_t> perm;
  /*! Pre-optimization {gates, T, CNOT} counted during the scan (cost
   *  metadata of an admitted entry). */
  std::array<uint64_t, 3> before{};
  bool valid = false;
};

/*! \brief Interface of a cross-compilation library of optimized forms. */
class splice_provider
{
public:
  virtual ~splice_provider() = default;

  /*! \brief Fingerprints the whole tpar input under `tag` (the option
   *         spelling -- entries produced under different tpar options
   *         never alias).  On a verified hit writes the stored
   *         optimized circuit (relabeled back) into `out` and returns
   *         true; otherwise fills `probe` for a later offer.
   */
  virtual bool splice_circuit( const qcircuit& in, std::string_view tag,
                               splice_probe& probe, qcircuit& out ) = 0;

  /*! \brief Offers the optimized form of a previously probed circuit
   *         (admission is gated by the provider's profile).
   */
  virtual void offer_circuit( const splice_probe& probe, const qcircuit& out,
                              double cost_ms ) = 0;

  /*! \brief Canonicalizes `poly` (qubit relabeling + commuting reorder
   *         collapse to one fingerprint) under `tag`.  On a verified
   *         hit writes the stored parity network -- relabeled back to
   *         the poly's variable space -- into `out` and returns true.
   */
  virtual bool lookup_region( const phase_polynomial& poly, std::string_view tag,
                              splice_probe& probe, parity_network& out ) = 0;

  /*! \brief Offers a freshly synthesized region network. */
  virtual void offer_region( const splice_probe& probe, const parity_network& network,
                             double cost_ms ) = 0;
};

} // namespace qda::phasepoly
