#include "phasepoly/phase_polynomial.hpp"

#include "phasepoly/parity_table.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qda::phasepoly
{

namespace
{

constexpr double pi = std::numbers::pi;

qgate make_phase_gate( gate_kind kind, uint32_t qubit )
{
  qgate gate;
  gate.kind = kind;
  gate.target = qubit;
  return gate;
}

} // namespace

std::optional<double> phase_angle_of( gate_kind kind, double gate_angle )
{
  switch ( kind )
  {
  case gate_kind::z:
    return pi;
  case gate_kind::s:
    return pi / 2.0;
  case gate_kind::sdg:
    return -pi / 2.0;
  case gate_kind::t:
    return pi / 4.0;
  case gate_kind::tdg:
    return -pi / 4.0;
  case gate_kind::rz:
    return gate_angle;
  default:
    return std::nullopt;
  }
}

double emit_phase_gates( std::vector<qgate>& out, uint32_t qubit, double alpha )
{
  /* normalize into [0, 2 pi) */
  alpha = std::fmod( alpha, 2.0 * pi );
  if ( alpha < 0.0 )
  {
    alpha += 2.0 * pi;
  }
  const double steps = alpha / ( pi / 4.0 );
  const long k = std::lround( steps );
  if ( std::abs( steps - static_cast<double>( k ) ) < 1e-9 )
  {
    switch ( k % 8 )
    {
    case 0: break;
    case 1: out.push_back( make_phase_gate( gate_kind::t, qubit ) ); break;
    case 2: out.push_back( make_phase_gate( gate_kind::s, qubit ) ); break;
    case 3:
      out.push_back( make_phase_gate( gate_kind::s, qubit ) );
      out.push_back( make_phase_gate( gate_kind::t, qubit ) );
      break;
    case 4: out.push_back( make_phase_gate( gate_kind::z, qubit ) ); break;
    case 5:
      out.push_back( make_phase_gate( gate_kind::z, qubit ) );
      out.push_back( make_phase_gate( gate_kind::t, qubit ) );
      break;
    case 6: out.push_back( make_phase_gate( gate_kind::sdg, qubit ) ); break;
    case 7: out.push_back( make_phase_gate( gate_kind::tdg, qubit ) ); break;
    }
    return 0.0;
  }
  /* Rz(alpha) = e^{-i alpha/2} diag(1, e^{i alpha}) */
  qgate rz = make_phase_gate( gate_kind::rz, qubit );
  rz.angle = alpha;
  out.push_back( rz );
  return alpha / 2.0;
}

phase_polynomial extract_phase_polynomial( const qcircuit& circuit, uint32_t first_slot,
                                           uint32_t end_slot,
                                           const std::vector<uint32_t>& qubits )
{
  const uint32_t num_vars = static_cast<uint32_t>( qubits.size() );
  std::vector<uint32_t> local_of( circuit.num_qubits(), 0u );
  for ( uint32_t i = 0u; i < num_vars; ++i )
  {
    local_of[qubits[i]] = i;
  }

  phase_polynomial poly;
  poly.num_vars = num_vars;

  /* wire states: parity over region inputs plus a complement bit */
  std::vector<bitvec> labels( num_vars );
  bitvec constants;
  for ( uint32_t i = 0u; i < num_vars; ++i )
  {
    labels[i].set( i );
  }

  parity_table table;
  std::vector<double> angles;

  const auto& core = circuit.core();
  const auto& cols = core.columns();
  for ( uint32_t slot = first_slot; slot < end_slot; ++slot )
  {
    if ( !core.slot_alive( slot ) )
    {
      continue;
    }
    const auto kind = cols.kind[slot];
    const uint32_t target = cols.target[slot];
    if ( const auto angle = phase_angle_of( kind, cols.angle_of( slot ) ) )
    {
      if ( kind == gate_kind::rz )
      {
        poly.global_phase -= *angle / 2.0; /* Rz carries a global factor */
      }
      const uint32_t wire = local_of[target];
      const bool complemented = constants.test( wire );
      if ( labels[wire].none() )
      {
        if ( complemented )
        {
          poly.global_phase += *angle;
        }
        continue;
      }
      const auto [index, inserted] = table.find_or_insert( labels[wire] );
      if ( inserted )
      {
        angles.push_back( 0.0 );
      }
      if ( complemented )
      {
        /* theta (1 (+) v) = theta - theta v */
        angles[index] -= *angle;
        poly.global_phase += *angle;
      }
      else
      {
        angles[index] += *angle;
      }
      continue;
    }
    switch ( kind )
    {
    case gate_kind::x:
      constants.flip( local_of[target] );
      break;
    case gate_kind::cx:
    {
      const uint32_t control = local_of[cols.controls_of( slot )[0]];
      const uint32_t wire = local_of[target];
      labels[wire] ^= labels[control];
      if ( constants.test( control ) )
      {
        constants.flip( wire );
      }
      break;
    }
    case gate_kind::swap:
    {
      const uint32_t a = local_of[target];
      const uint32_t b = local_of[cols.target2[slot]];
      std::swap( labels[a], labels[b] );
      if ( constants.test( a ) != constants.test( b ) )
      {
        constants.flip( a );
        constants.flip( b );
      }
      break;
    }
    case gate_kind::global_phase:
      poly.global_phase += cols.angle_of( slot );
      break;
    case gate_kind::barrier:
      break;
    default:
      throw std::logic_error( "extract_phase_polynomial: non-affine gate in region" );
    }
  }

  poly.terms.reserve( table.size() );
  for ( uint32_t index = 0u; index < table.size(); ++index )
  {
    poly.terms.push_back( { table.key( index ), angles[index] } );
  }
  poly.output_linear = std::move( labels );
  poly.output_constants = std::move( constants );
  return poly;
}

} // namespace qda::phasepoly
