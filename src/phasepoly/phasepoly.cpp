#include "phasepoly/phasepoly.hpp"

#include <chrono>
#include <string>
#include <utility>

namespace qda::phasepoly
{

void tpar_in_place( qcircuit& circuit, const tpar_options& options )
{
  splice_provider* library = options.resynthesis.library;
  splice_probe probe;
  if ( library )
  {
    /* the whole pass input is the largest splice candidate: a verified
     * hit replays the stored optimized circuit and skips both phase
     * folding and resynthesis */
    std::string tag = "tpar|";
    tag += options.resynthesize ? 'r' : '-';
    tag += "|s" + std::to_string( options.resynthesis.section_size );
    tag += "|t" + std::to_string( options.resynthesis.max_region_terms );
    qcircuit spliced( circuit.num_qubits() );
    if ( library->splice_circuit( circuit, tag, probe, spliced ) )
    {
      circuit = std::move( spliced );
      return;
    }
  }

  const auto started = std::chrono::steady_clock::now();
  fold_phases_in_place( circuit );
  if ( options.resynthesize )
  {
    resynthesize_parity_regions_in_place( circuit, options.resynthesis );
  }
  if ( library && probe.valid )
  {
    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - started )
                                  .count();
    library->offer_circuit( probe, circuit, elapsed_ms );
  }
}

qcircuit tpar( const qcircuit& circuit, const tpar_options& options )
{
  qcircuit result( circuit );
  tpar_in_place( result, options );
  return result;
}

} // namespace qda::phasepoly
