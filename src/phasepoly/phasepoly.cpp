#include "phasepoly/phasepoly.hpp"

namespace qda::phasepoly
{

void tpar_in_place( qcircuit& circuit, const tpar_options& options )
{
  fold_phases_in_place( circuit );
  if ( options.resynthesize )
  {
    resynthesize_parity_regions_in_place( circuit, options.resynthesis );
  }
}

qcircuit tpar( const qcircuit& circuit, const tpar_options& options )
{
  qcircuit result( circuit );
  tpar_in_place( result, options );
  return result;
}

} // namespace qda::phasepoly
