/*! \file phase_polynomial.hpp
 *  \brief The phase-polynomial IR of the T-count optimization stage.
 *
 *  Inside a region of {CNOT, X, SWAP, phase} gates every qubit carries
 *  an affine function of the region's inputs, and the region's unitary
 *  factors as
 *
 *      |x>  ->  e^{i (g + sum_p a_p (p . x))} |F x (+) f>
 *
 *  i.e. a phase polynomial (terms `a_p` over parities `p`), an
 *  invertible linear map `F`, a constant offset `f`, and a global
 *  phase `g`.  This is the canonical mid-level IR of T-par-style
 *  optimizers (Amy-Maslov-Mosca, paper ref [69]): merging terms with
 *  equal parity cancels phases, and the CNOT skeleton can be rebuilt
 *  from scratch by parity-network synthesis (resynthesis.hpp).
 *
 *  Parities are dynamic-width `bitvec`s, so neither the number of
 *  region variables nor the qubit count is capped at 64 (the former
 *  stand-in's "epoch" hack).
 */
#pragma once

#include "kernel/bits.hpp"
#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace qda::phasepoly
{

/*! \brief Diagonal-phase angle contributed by a phase-type gate
 *         (z, s, sdg, t, tdg, rz), or nullopt for other kinds.
 */
std::optional<double> phase_angle_of( gate_kind kind, double gate_angle );

/*! \brief Emits e^{i alpha v} on `qubit` as canonical Clifford+T gates
 *         when alpha is a multiple of pi/4, else as one Rz.  Returns
 *         the global-phase compensation the caller must accumulate so
 *         the emitted gates equal the diagonal exactly.
 */
double emit_phase_gates( std::vector<qgate>& out, uint32_t qubit, double alpha );

/*! \brief One parity-phase term: angle `angle` on parity `parity`. */
struct phase_term
{
  bitvec parity;
  double angle = 0.0;
};

/*! \brief A region's phase polynomial plus its affine output map. */
struct phase_polynomial
{
  uint32_t num_vars = 0u;            /*!< region inputs (== region wires) */
  std::vector<phase_term> terms;     /*!< distinct parities, merged angles */
  std::vector<bitvec> output_linear; /*!< row i = input parity of output wire i */
  bitvec output_constants;           /*!< bit i set = output wire i complemented */
  double global_phase = 0.0;         /*!< e^{i g} factored out during extraction */
};

/*! \brief Extracts the phase polynomial of the circuit slots
 *         [first_slot, end_slot) over the region wires `qubits`
 *         (region-local wire i is circuit qubit `qubits[i]`).  The
 *         range must contain only {x, cx, swap, phase, global_phase,
 *         barrier} gates touching `qubits`; throws std::logic_error
 *         otherwise.
 */
phase_polynomial extract_phase_polynomial( const qcircuit& circuit, uint32_t first_slot,
                                           uint32_t end_slot,
                                           const std::vector<uint32_t>& qubits );

} // namespace qda::phasepoly
