#include "phasepoly/resynthesis.hpp"

#include "phasepoly/linear_synthesis.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace qda::phasepoly
{

namespace
{

constexpr double pi = std::numbers::pi;

/*! True when `angle` is a multiple of 2 pi (no phase to place). */
bool angle_is_trivial( double angle )
{
  const double folded = std::abs( std::fmod( angle, 2.0 * pi ) );
  return folded < 1e-12 || std::abs( folded - 2.0 * pi ) < 1e-12;
}

qgate make_cx( uint32_t control, uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::cx;
  gate.controls = { control };
  gate.target = target;
  return gate;
}

qgate make_x( uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::x;
  gate.target = target;
  return gate;
}

/*! Kinds a parity region may contain (diagonal phases and affine gates). */
bool is_region_kind( gate_kind kind )
{
  switch ( kind )
  {
  case gate_kind::x:
  case gate_kind::cx:
  case gate_kind::swap:
  case gate_kind::z:
  case gate_kind::s:
  case gate_kind::sdg:
  case gate_kind::t:
  case gate_kind::tdg:
  case gate_kind::rz:
  case gate_kind::global_phase:
    return true;
  default:
    return false;
  }
}

} // namespace

parity_network synthesize_parity_network( const phase_polynomial& poly,
                                          uint32_t section_size,
                                          cancel_token cancel )
{
  const uint32_t m = poly.num_vars;
  parity_network network;
  if ( m == 0u )
  {
    network.global_phase = poly.global_phase;
    return network;
  }

  /* current frame: wire k holds parity row[k] of the region inputs;
   * inv_col[k] is column k of the inverse, so the wire combination
   * reaching parity p has coefficients c_k = <p, inv_col[k]>     */
  std::vector<bitvec> rows( m );
  std::vector<bitvec> inv_cols( m );
  for ( uint32_t k = 0u; k < m; ++k )
  {
    rows[k].set( k );
    inv_cols[k].set( k );
  }

  std::vector<uint32_t> remaining;
  remaining.reserve( poly.terms.size() );
  for ( uint32_t index = 0u; index < poly.terms.size(); ++index )
  {
    const auto& term = poly.terms[index];
    if ( term.parity.any() && !angle_is_trivial( term.angle ) )
    {
      remaining.push_back( index );
    }
  }

  bitvec coefficients, best_coefficients;
  while ( !remaining.empty() )
  {
    /* each placement scans every remaining term, so one poll per
     * placement bounds the cancellation latency at O(terms * wires) */
    cancel.check( "tpar" );
    /* greedy Gray-order stand-in: place the parity that is cheapest in
     * the current frame, so consecutive placements share CNOT chains */
    size_t best_position = 0u;
    uint32_t best_weight = 0xffffffffu;
    for ( size_t position = 0u; position < remaining.size(); ++position )
    {
      const bitvec& parity = poly.terms[remaining[position]].parity;
      coefficients.clear();
      uint32_t weight = 0u;
      for ( uint32_t k = 0u; k < m; ++k )
      {
        if ( inner_parity( parity, inv_cols[k] ) )
        {
          coefficients.set( k );
          ++weight;
        }
      }
      if ( weight < best_weight )
      {
        best_weight = weight;
        best_position = position;
        best_coefficients = coefficients;
        if ( weight <= 1u )
        {
          break; /* already sitting on a wire */
        }
      }
    }

    const uint32_t term_index = remaining[best_position];
    remaining[best_position] = remaining.back();
    remaining.pop_back();

    /* fold the contributing wires into the target wire */
    const uint32_t target = best_coefficients.top_bit();
    best_coefficients.for_each_set_bit( [&]( uint32_t wire ) {
      if ( wire == target )
      {
        return;
      }
      network.gates.push_back( make_cx( wire, target ) );
      rows[target] ^= rows[wire];
      inv_cols[wire] ^= inv_cols[target];
    } );

    network.global_phase +=
        emit_phase_gates( network.gates, target, poly.terms[term_index].angle );
  }

  /* PMH epilogue: close the residual map M = F A^{-1}, so that the
   * appended network takes the current frame A to the region's F */
  linear_matrix residual( m );
  bool is_identity = true;
  for ( uint32_t i = 0u; i < m; ++i )
  {
    for ( uint32_t k = 0u; k < m; ++k )
    {
      if ( inner_parity( poly.output_linear[i], inv_cols[k] ) )
      {
        residual[i].set( k );
      }
    }
    bitvec expected;
    expected.set( i );
    is_identity = is_identity && residual[i] == expected;
  }
  if ( !is_identity )
  {
    for ( const auto& [control, target] : detail::pmh_cnot_ops( residual, section_size ) )
    {
      network.gates.push_back( make_cx( control, target ) );
    }
  }

  poly.output_constants.for_each_set_bit( [&]( uint32_t wire ) {
    network.gates.push_back( make_x( wire ) );
  } );

  network.global_phase += poly.global_phase;
  return network;
}

namespace
{

/*! One region shape, memoized: mapped circuits repeat the same local
 *  gate pattern (e.g. the relative-phase Toffoli block) thousands of
 *  times over different qubits, so each pattern is synthesized once
 *  and replayed through a wire remap.
 */
struct cached_network
{
  std::vector<qgate> gates;  /*!< region-local replacement, empty if no win */
  double global_phase = 0.0;
  bool improves = false;
};

void append_key_byte( std::string& key, uint8_t byte )
{
  key.push_back( static_cast<char>( byte ) );
}

void append_key_angle( std::string& key, double angle )
{
  char bytes[sizeof( double )];
  std::memcpy( bytes, &angle, sizeof( double ) );
  key.append( bytes, sizeof( double ) );
}

} // namespace

void resynthesize_parity_regions_in_place( qcircuit& circuit,
                                           const resynthesis_options& options )
{
  QDA_TRACE_SPAN_NAMED( resynth_span, "tpar.resynth" );
  resynth_span.attr( "gates", static_cast<int64_t>( circuit.num_gates() ) );
  auto& core = circuit.core();
  core.compact(); /* region bounds are slot ranges; start dense */

  const auto& cols = core.columns();
  const uint32_t num_slots = core.num_slots();
  auto rewriter = circuit.rewrite();
  double global_phase_total = 0.0;

  std::vector<uint32_t> touched; /* first-touch order; index = local wire */
  std::vector<uint32_t> local_of( circuit.num_qubits(), 0u );
  std::vector<uint8_t> seen( circuit.num_qubits(), 0u );
  std::string key;
  std::unordered_map<std::string, cached_network> patterns;
  /* library entries synthesized under other PMH widths never alias */
  std::string library_tag;
  if ( options.library )
  {
    library_tag = "tpar-region|s" + std::to_string( options.section_size );
  }

  uint32_t begin = 0u;
  cancel_checkpoint checkpoint( 256u );
  while ( begin < num_slots )
  {
    if ( checkpoint.due() )
    {
      options.cancel.check( "tpar" );
    }
    if ( !is_region_kind( cols.kind[begin] ) )
    {
      ++begin;
      continue;
    }
    uint32_t end = begin;
    uint32_t linear_count = 0u;
    uint32_t phase_count = 0u;
    for ( const uint32_t qubit : touched )
    {
      seen[qubit] = 0u;
    }
    touched.clear();
    key.clear();
    const auto local = [&]( uint32_t qubit ) {
      if ( seen[qubit] == 0u )
      {
        seen[qubit] = 1u;
        local_of[qubit] = static_cast<uint32_t>( touched.size() );
        touched.push_back( qubit );
      }
      return local_of[qubit];
    };
    while ( end < num_slots && is_region_kind( cols.kind[end] ) )
    {
      const auto kind = cols.kind[end];
      append_key_byte( key, static_cast<uint8_t>( kind ) );
      if ( kind == gate_kind::cx )
      {
        ++linear_count;
        append_key_byte( key, static_cast<uint8_t>( local( cols.controls_of( end )[0] ) ) );
        append_key_byte( key, static_cast<uint8_t>( local( cols.target[end] ) ) );
      }
      else if ( kind == gate_kind::swap )
      {
        ++linear_count;
        append_key_byte( key, static_cast<uint8_t>( local( cols.target[end] ) ) );
        append_key_byte( key, static_cast<uint8_t>( local( cols.target2[end] ) ) );
      }
      else if ( kind == gate_kind::global_phase )
      {
        append_key_angle( key, cols.angle_of( end ) );
      }
      else
      {
        if ( kind != gate_kind::x )
        {
          ++phase_count;
        }
        append_key_byte( key, static_cast<uint8_t>( local( cols.target[end] ) ) );
        if ( kind == gate_kind::rz )
        {
          append_key_angle( key, cols.angle_of( end ) );
        }
      }
      ++end;
    }

    /* a region with no linear gates has nothing to restructure; wide
     * regions would overflow the one-byte local ids in the pattern key */
    if ( ( linear_count >= 2u || ( linear_count >= 1u && phase_count >= 1u ) ) &&
         touched.size() <= 256u )
    {
      QDA_COUNT( "tpar.regions_extracted" );
      auto [cache_it, fresh] = patterns.try_emplace( key );
      cached_network& cached = cache_it->second;
      if ( !fresh )
      {
        QDA_COUNT( "tpar.memo_hits" );
      }
      if ( fresh )
      {
        const auto poly = extract_phase_polynomial( circuit, begin, end, touched );
        if ( poly.terms.size() <= options.max_region_terms )
        {
          parity_network network;
          splice_probe probe;
          const bool spliced =
              options.library &&
              options.library->lookup_region( poly, library_tag, probe, network );
          if ( !spliced )
          {
            const auto started = std::chrono::steady_clock::now();
            network =
                synthesize_parity_network( poly, options.section_size, options.cancel );
            if ( options.library && probe.valid )
            {
              const double elapsed_ms =
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - started )
                      .count();
              options.library->offer_region( probe, network, elapsed_ms );
            }
          }
          if ( network.gates.size() < static_cast<size_t>( end - begin ) )
          {
            cached.gates = std::move( network.gates );
            cached.global_phase = network.global_phase;
            cached.improves = true;
          }
        }
      }
      if ( cached.improves )
      {
        QDA_COUNT( "tpar.regions_resynthesized" );
        for ( uint32_t slot = begin; slot < end; ++slot )
        {
          rewriter.erase_slot( slot );
        }
        for ( const auto& gate : cached.gates )
        {
          qgate mapped = gate;
          mapped.target = touched[mapped.target];
          for ( auto& control : mapped.controls )
          {
            control = touched[control];
          }
          rewriter.insert_before_slot( begin, std::move( mapped ) );
        }
        global_phase_total += cached.global_phase;
      }
    }
    begin = end;
  }

  global_phase_total = std::fmod( global_phase_total, 2.0 * pi );
  if ( std::abs( global_phase_total ) > 1e-12 )
  {
    qgate phase;
    phase.kind = gate_kind::global_phase;
    phase.angle = global_phase_total;
    rewriter.append( phase );
  }
  rewriter.commit();
}

} // namespace qda::phasepoly
