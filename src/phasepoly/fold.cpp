#include "phasepoly/fold.hpp"

#include "phasepoly/parity_table.hpp"
#include "phasepoly/phase_polynomial.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <cmath>
#include <numbers>
#include <vector>

namespace qda::phasepoly
{

namespace
{

constexpr double pi = std::numbers::pi;

struct fold_term
{
  double angle = 0.0;        /*!< accumulated parity-phase coefficient */
  uint32_t anchor_slot = 0u; /*!< storage slot where the merged gate is emitted */
  bool anchor_constant = false;
};

} // namespace

void fold_phases_in_place( qcircuit& circuit )
{
  QDA_TRACE_SPAN_NAMED( fold_span, "tpar.fold" );
  fold_span.attr( "gates", static_cast<int64_t>( circuit.num_gates() ) );
  const uint32_t num_qubits = circuit.num_qubits();
  auto& core = circuit.core();
  core.compact(); /* pass 1 records slots; start from dense storage */

  /* affine label per qubit: parity of introduced variables + complement */
  std::vector<bitvec> labels( num_qubits );
  std::vector<uint8_t> constants( num_qubits, 0u );
  uint32_t next_variable = 0u;

  const auto fresh_label = [&]( uint32_t qubit ) {
    labels[qubit].clear();
    labels[qubit].set( next_variable++ );
    constants[qubit] = 0u;
  };

  for ( uint32_t qubit = 0u; qubit < num_qubits; ++qubit )
  {
    fresh_label( qubit );
  }

  /* pass 1: collect phase terms keyed by parity label */
  constexpr uint32_t no_anchor = 0xffffffffu;
  parity_table table;
  std::vector<fold_term> terms;
  std::vector<uint32_t> anchor_of( core.num_slots(), no_anchor ); /* slot -> term */
  double global_phase_total = 0.0;

  const auto& cols = core.columns();
  for ( uint32_t slot = 0u; slot < core.num_slots(); ++slot )
  {
    const auto kind = cols.kind[slot];
    const uint32_t target = cols.target[slot];
    if ( const auto angle = phase_angle_of( kind, cols.angle_of( slot ) ) )
    {
      if ( kind == gate_kind::rz )
      {
        global_phase_total -= *angle / 2.0; /* Rz carries a global factor */
      }
      if ( labels[target].none() )
      {
        /* phase on a constant value: pure global phase */
        if ( constants[target] )
        {
          global_phase_total += *angle;
        }
        continue;
      }
      const auto [index, inserted] = table.find_or_insert( labels[target] );
      if ( inserted )
      {
        terms.push_back( { 0.0, slot, constants[target] != 0u } );
        anchor_of[slot] = index;
      }
      else
      {
        QDA_COUNT( "tpar.parities_folded" );
      }
      if ( constants[target] != 0u )
      {
        terms[index].angle -= *angle;
        global_phase_total += *angle;
      }
      else
      {
        terms[index].angle += *angle;
      }
      continue;
    }

    switch ( kind )
    {
    case gate_kind::x:
      constants[target] ^= 1u;
      break;
    case gate_kind::cx:
    {
      const uint32_t control = cols.controls_of( slot )[0];
      labels[target] ^= labels[control];
      constants[target] ^= constants[control];
      break;
    }
    case gate_kind::swap:
    {
      const uint32_t other = cols.target2[slot];
      std::swap( labels[target], labels[other] );
      std::swap( constants[target], constants[other] );
      break;
    }
    case gate_kind::cz:
    case gate_kind::mcz:
    case gate_kind::barrier:
    case gate_kind::global_phase:
      break; /* diagonal or neutral: labels unchanged */
    default:
      /* h, y, rx, ry, mcx, measure: value no longer tracked */
      fresh_label( target );
      break;
    }
  }

  /* pass 2: rewrite in place, emitting merged phases at their anchors */
  auto rewriter = circuit.rewrite();
  std::vector<qgate> merged;
  for ( uint32_t slot = 0u; slot < core.num_slots(); ++slot )
  {
    if ( !phase_angle_of( cols.kind[slot], cols.angle_of( slot ) ) )
    {
      continue;
    }
    const uint32_t target = cols.target[slot];
    rewriter.erase_slot( slot );
    if ( anchor_of[slot] == no_anchor )
    {
      continue; /* folded away */
    }
    const auto& term = terms[anchor_of[slot]];
    double alpha = term.angle;
    if ( term.anchor_constant )
    {
      /* gate acts on the complemented value: emit -alpha, compensate */
      global_phase_total += alpha;
      alpha = -alpha;
    }
    /* Rz(alpha) carries an extra e^{-i alpha/2}; compensate so the
     * rewritten circuit equals the original exactly */
    merged.clear();
    global_phase_total += emit_phase_gates( merged, target, alpha );
    for ( const auto& gate : merged )
    {
      rewriter.insert_before_slot( slot, gate );
    }
  }

  global_phase_total = std::fmod( global_phase_total, 2.0 * pi );
  if ( std::abs( global_phase_total ) > 1e-12 )
  {
    qgate phase;
    phase.kind = gate_kind::global_phase;
    phase.angle = global_phase_total;
    rewriter.append( phase );
  }
  rewriter.commit();
}

} // namespace qda::phasepoly
