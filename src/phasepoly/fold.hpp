/*! \file fold.hpp
 *  \brief Whole-circuit phase folding over unbounded parity labels.
 *
 *  Walks the circuit once, tracking for every qubit an affine label
 *  (parity of introduced variables plus a complement bit).  Phase gates
 *  applied to the same label merge into a single gate at the first
 *  occurrence.  Non-affine gates (h, y, rx, ry, mcx, measure) re-seed
 *  the touched qubit with a fresh variable; variables are dynamic-width
 *  `bitvec` bits, so the walk never runs out of label space (the former
 *  stand-in recycled 64 mask bits in "epochs", silently refusing to
 *  merge across an epoch boundary).  Folding preserves the circuit
 *  structure; it moves and merges phase gates only.
 */
#pragma once

#include "quantum/qcircuit.hpp"

namespace qda::phasepoly
{

/*! \brief Folds mergeable phase gates in place through the IR rewriter
 *         (phase gates erase as tombstones, merged gates insert at
 *         their anchors in one batched commit); the result is
 *         equivalent up to the explicitly appended global phase.
 */
void fold_phases_in_place( qcircuit& circuit );

} // namespace qda::phasepoly
