/*! \file parity_table.hpp
 *  \brief Flat open-addressing hash table keyed by parity vectors.
 *
 *  The term-accumulation hot path of the phase-polynomial subsystem:
 *  every phase gate looks up its qubit's parity label and either merges
 *  into an existing term or allocates a fresh one.  The previous
 *  stand-in used `std::map<std::pair<u64,u64>, ...>`, whose node
 *  allocations and O(log n) pointer chases dominated `tpar` wall time
 *  (67% of hwb-8 compile time).  This table stores buckets flat
 *  (cached hash + dense term index), probes linearly, and keeps the
 *  keys in a dense side vector whose indices double as term ids.
 */
#pragma once

#include "kernel/bits.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace qda::phasepoly
{

/*! \brief Maps parity vectors to dense indices 0..size()-1. */
class parity_table
{
public:
  static constexpr uint32_t npos = 0xffffffffu;

  explicit parity_table( uint32_t expected_terms = 16u )
  {
    size_t capacity = 16u;
    while ( capacity < 2u * static_cast<size_t>( expected_terms ) )
    {
      capacity *= 2u;
    }
    buckets_.assign( capacity, bucket{ 0u, npos } );
  }

  uint32_t size() const noexcept { return static_cast<uint32_t>( keys_.size() ); }

  const bitvec& key( uint32_t index ) const noexcept { return keys_[index]; }

  /*! \brief Index of `key`, or npos when absent. */
  uint32_t find( const bitvec& key ) const noexcept
  {
    const size_t hash = key.hash();
    const size_t mask = buckets_.size() - 1u;
    for ( size_t probe = hash & mask;; probe = ( probe + 1u ) & mask )
    {
      const bucket& b = buckets_[probe];
      if ( b.index == npos )
      {
        return npos;
      }
      if ( b.hash == hash && keys_[b.index] == key )
      {
        return b.index;
      }
    }
  }

  /*! \brief Index of `key`, inserting it when absent; second is true on
   *         insertion (the new index is size()-1).
   */
  std::pair<uint32_t, bool> find_or_insert( const bitvec& key )
  {
    if ( 2u * ( keys_.size() + 1u ) > buckets_.size() )
    {
      grow();
    }
    const size_t hash = key.hash();
    const size_t mask = buckets_.size() - 1u;
    for ( size_t probe = hash & mask;; probe = ( probe + 1u ) & mask )
    {
      bucket& b = buckets_[probe];
      if ( b.index == npos )
      {
        b.hash = hash;
        b.index = static_cast<uint32_t>( keys_.size() );
        keys_.push_back( key );
        return { b.index, true };
      }
      if ( b.hash == hash && keys_[b.index] == key )
      {
        return { b.index, false };
      }
    }
  }

private:
  struct bucket
  {
    size_t hash;    /*!< cached full hash of the key */
    uint32_t index; /*!< dense key index, npos = empty */
  };

  void grow()
  {
    std::vector<bucket> old = std::move( buckets_ );
    buckets_.assign( old.size() * 2u, bucket{ 0u, npos } );
    const size_t mask = buckets_.size() - 1u;
    for ( const bucket& b : old )
    {
      if ( b.index == npos )
      {
        continue;
      }
      size_t probe = b.hash & mask;
      while ( buckets_[probe].index != npos )
      {
        probe = ( probe + 1u ) & mask;
      }
      buckets_[probe] = b;
    }
  }

  std::vector<bucket> buckets_;
  std::vector<bitvec> keys_;
};

} // namespace qda::phasepoly
