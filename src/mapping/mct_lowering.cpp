#include "mapping/mct_lowering.hpp"

#include "library/subcircuit_library.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace qda
{

const char* mct_strategy_name( mct_strategy strategy )
{
  switch ( strategy )
  {
  case mct_strategy::automatic: return "auto";
  case mct_strategy::clean: return "clean";
  case mct_strategy::dirty: return "dirty";
  case mct_strategy::recursive: return "recursive";
  }
  return "unknown";
}

std::optional<mct_strategy> parse_mct_strategy( const std::string& name )
{
  if ( name == "auto" || name == "automatic" )
  {
    return mct_strategy::automatic;
  }
  if ( name == "clean" )
  {
    return mct_strategy::clean;
  }
  if ( name == "dirty" )
  {
    return mct_strategy::dirty;
  }
  if ( name == "recursive" )
  {
    return mct_strategy::recursive;
  }
  return std::nullopt;
}

namespace
{

/* resource vectors of the emission primitives */
constexpr mct_cost cost_x{ 0u, 0u, 0u, 1u, 0u, 0u };
constexpr mct_cost cost_cx{ 0u, 1u, 0u, 1u, 0u, 0u };
constexpr mct_cost cost_ccx{ 7u, 6u, 2u, 15u, 0u, 0u };  /* 15-gate 7-T network */
constexpr mct_cost cost_rccx{ 4u, 3u, 2u, 9u, 0u, 0u };  /* 9-gate Maslov RCCX */

mct_cost accumulate( mct_cost total, const mct_cost& part, uint64_t times = 1u )
{
  total.t_count += times * part.t_count;
  total.cnot_count += times * part.cnot_count;
  total.h_count += times * part.h_count;
  total.depth += times * part.depth;
  return total;
}

/*! Single source of truth for ancilla requirements (chain = k - 2). */
bool strategy_feasible( mct_strategy strategy, uint32_t chain, uint32_t clean_available,
                        uint32_t idle_available )
{
  switch ( strategy )
  {
  case mct_strategy::clean: return clean_available >= chain;
  case mct_strategy::dirty: return idle_available >= chain;
  case mct_strategy::recursive: return idle_available >= 1u;
  default: return false;
  }
}

/* cost of Λ_j lowered through the dirty chain (j >= 3) or directly */
mct_cost dirty_or_direct_cost( uint32_t num_controls )
{
  if ( num_controls == 0u )
  {
    return cost_x;
  }
  if ( num_controls == 1u )
  {
    return cost_cx;
  }
  if ( num_controls == 2u )
  {
    return cost_ccx;
  }
  mct_cost cost = accumulate( {}, cost_ccx, 4u * ( num_controls - 2u ) );
  cost.dirty_ancillas = num_controls - 2u;
  return cost;
}

} // namespace

mct_cost mct_lowering_cost( uint32_t num_controls, mct_strategy strategy,
                            bool use_relative_phase )
{
  if ( strategy == mct_strategy::automatic )
  {
    throw std::invalid_argument( "mct_lowering_cost: strategy must be concrete" );
  }
  if ( num_controls <= 2u )
  {
    return dirty_or_direct_cost( num_controls );
  }
  const uint32_t chain = num_controls - 2u;
  switch ( strategy )
  {
  case mct_strategy::clean:
  {
    mct_cost cost = accumulate( {}, cost_ccx );
    cost = accumulate( cost, use_relative_phase ? cost_rccx : cost_ccx, 2u * chain );
    cost.clean_ancillas = chain;
    return cost;
  }
  case mct_strategy::dirty:
    return dirty_or_direct_cost( num_controls );
  case mct_strategy::recursive:
  {
    const uint32_t m = ( num_controls + 1u ) / 2u;
    mct_cost cost = accumulate( {}, dirty_or_direct_cost( m ), 2u );
    cost = accumulate( cost, dirty_or_direct_cost( num_controls - m + 1u ), 2u );
    cost.dirty_ancillas = 1u;
    return cost;
  }
  default:
    throw std::invalid_argument( "mct_lowering_cost: unknown strategy" );
  }
}

std::optional<mct_strategy> select_mct_strategy( uint32_t num_controls, uint32_t clean_available,
                                                 uint32_t idle_available,
                                                 const mapping_cost_weights& weights,
                                                 bool use_relative_phase )
{
  if ( num_controls <= 2u )
  {
    return mct_strategy::clean; /* no scratch needed; all strategies coincide */
  }
  const uint32_t chain = num_controls - 2u;
  std::optional<mct_strategy> best;
  double best_cost = 0.0;
  for ( const auto strategy :
        { mct_strategy::clean, mct_strategy::dirty, mct_strategy::recursive } )
  {
    if ( !strategy_feasible( strategy, chain, clean_available, idle_available ) )
    {
      continue;
    }
    const double cost =
        mct_lowering_cost( num_controls, strategy, use_relative_phase ).weighted( weights );
    if ( !best || cost < best_cost )
    {
      best = strategy;
      best_cost = cost;
    }
  }
  return best;
}

/* ---------------------------------------------------------------- */
/* primitives                                                       */
/* ---------------------------------------------------------------- */

namespace
{

void push1( std::vector<qgate>& out, gate_kind kind, uint32_t target )
{
  qgate gate;
  gate.kind = kind;
  gate.target = target;
  out.push_back( std::move( gate ) );
}

void push_cx( std::vector<qgate>& out, uint32_t control, uint32_t target )
{
  qgate gate;
  gate.kind = gate_kind::cx;
  gate.controls = { control };
  gate.target = target;
  out.push_back( std::move( gate ) );
}

} // namespace

void emit_toffoli_clifford_t( std::vector<qgate>& out, uint32_t c0, uint32_t c1,
                              uint32_t target )
{
  /* standard 7-T decomposition (Nielsen-Chuang Fig. 4.9) */
  push1( out, gate_kind::h, target );
  push_cx( out, c1, target );
  push1( out, gate_kind::tdg, target );
  push_cx( out, c0, target );
  push1( out, gate_kind::t, target );
  push_cx( out, c1, target );
  push1( out, gate_kind::tdg, target );
  push_cx( out, c0, target );
  push1( out, gate_kind::t, c1 );
  push1( out, gate_kind::t, target );
  push1( out, gate_kind::h, target );
  push_cx( out, c0, c1 );
  push1( out, gate_kind::t, c0 );
  push1( out, gate_kind::tdg, c1 );
  push_cx( out, c0, c1 );
}

void emit_relative_phase_toffoli( std::vector<qgate>& out, uint32_t c0, uint32_t c1,
                                  uint32_t target )
{
  /* Maslov [42]: RCCX with 4 T gates; a palindrome under inversion, so
   * compute and uncompute emit the identical cascade. */
  push1( out, gate_kind::h, target );
  push1( out, gate_kind::t, target );
  push_cx( out, c1, target );
  push1( out, gate_kind::tdg, target );
  push_cx( out, c0, target );
  push1( out, gate_kind::t, target );
  push_cx( out, c1, target );
  push1( out, gate_kind::tdg, target );
  push1( out, gate_kind::h, target );
}

/* ---------------------------------------------------------------- */
/* strategy emitters                                                */
/* ---------------------------------------------------------------- */

namespace
{

struct mct_emitter
{
  std::vector<qgate>& out;
  const mct_emit_options& options;

  void toffoli( uint32_t c0, uint32_t c1, uint32_t target ) const
  {
    if ( options.keep_toffoli )
    {
      qgate gate;
      gate.kind = gate_kind::mcx;
      gate.controls = { c0, c1 };
      gate.target = target;
      out.push_back( std::move( gate ) );
    }
    else
    {
      emit_toffoli_clifford_t( out, c0, c1, target );
    }
  }

  /* compute/uncompute Toffoli of the clean chain: relative-phase safe */
  void chain_toffoli( uint32_t c0, uint32_t c1, uint32_t target ) const
  {
    if ( options.keep_toffoli )
    {
      toffoli( c0, c1, target );
    }
    else if ( options.use_relative_phase )
    {
      emit_relative_phase_toffoli( out, c0, c1, target );
    }
    else
    {
      emit_toffoli_clifford_t( out, c0, c1, target );
    }
  }

  /*! V-chain over clean helpers a0..a_{k-3}:
   *    a0 = c0 & c1;  a_i = c_{i+1} & a_{i-1};  target ^= c_{k-1} & a_{k-3}
   */
  void clean_chain( std::span<const uint32_t> controls, uint32_t target,
                    std::span<const uint32_t> helpers ) const
  {
    const uint32_t k = static_cast<uint32_t>( controls.size() );
    std::vector<std::array<uint32_t, 3u>> chain;
    chain.push_back( { controls[0], controls[1], helpers[0] } );
    for ( uint32_t i = 2u; i + 1u < k; ++i )
    {
      chain.push_back( { controls[i], helpers[i - 2u], helpers[i - 1u] } );
    }
    for ( const auto& [a, b, t] : chain )
    {
      chain_toffoli( a, b, t );
    }
    toffoli( controls[k - 1u], helpers[k - 3u], target );
    for ( auto it = chain.rbegin(); it != chain.rend(); ++it )
    {
      chain_toffoli( ( *it )[0], ( *it )[1], ( *it )[2] );
    }
  }

  /*! Barenco borrowed-ancilla chain (Lemma 7.2): two halves of a
   *  Toffoli staircase over k-2 dirty wires; every ancilla is toggled
   *  an even number of times and ends in its input state.
   */
  void dirty_chain( std::span<const uint32_t> controls, uint32_t target,
                    std::span<const uint32_t> dirty ) const
  {
    const uint32_t k = static_cast<uint32_t>( controls.size() );
    const auto ladder_down = [&]( bool with_target ) {
      if ( with_target )
      {
        toffoli( controls[k - 1u], dirty[k - 3u], target );
      }
      for ( uint32_t i = k - 2u; i >= 2u; --i )
      {
        toffoli( controls[i], dirty[i - 2u], dirty[i - 1u] );
      }
    };
    const auto ladder_up = [&]( bool with_target ) {
      for ( uint32_t i = 2u; i <= k - 2u; ++i )
      {
        toffoli( controls[i], dirty[i - 2u], dirty[i - 1u] );
      }
      if ( with_target )
      {
        toffoli( controls[k - 1u], dirty[k - 3u], target );
      }
    };
    ladder_down( true );
    toffoli( controls[0], controls[1], dirty[0] );
    ladder_up( true );
    ladder_down( false );
    toffoli( controls[0], controls[1], dirty[0] );
    ladder_up( false );
  }

  /*! Λ over `controls` onto `target`, borrowing scratch from `pool`
   *  (wires guaranteed disjoint from controls and target).
   */
  void lambda_with_pool( std::span<const uint32_t> controls, uint32_t target,
                         std::span<const uint32_t> pool ) const
  {
    const uint32_t k = static_cast<uint32_t>( controls.size() );
    if ( k == 1u )
    {
      push_cx( out, controls[0], target );
      return;
    }
    if ( k == 2u )
    {
      toffoli( controls[0], controls[1], target );
      return;
    }
    dirty_chain( controls, target, pool.subspan( 0u, k - 2u ) );
  }

  /*! Ancilla-free split (Lemma 7.3): Λ_k = T1 T2 T1 T2 with
   *  T1 = Λ_m(C1 -> a), T2 = Λ_{k-m+1}(C2 + a -> t); the halves borrow
   *  their scratch from each other's controls (and the target).
   */
  void recursive_split( std::span<const uint32_t> controls, uint32_t target,
                        uint32_t borrowed ) const
  {
    const uint32_t k = static_cast<uint32_t>( controls.size() );
    const uint32_t m = ( k + 1u ) / 2u;
    const auto first = controls.subspan( 0u, m );
    const auto second = controls.subspan( m );

    std::vector<uint32_t> pool1( second.begin(), second.end() );
    pool1.push_back( target );
    std::vector<uint32_t> controls2( second.begin(), second.end() );
    controls2.push_back( borrowed );

    for ( uint32_t round = 0u; round < 2u; ++round )
    {
      lambda_with_pool( first, borrowed, pool1 );
      lambda_with_pool( controls2, target, first );
    }
  }
};

} // namespace

void emit_mct_gate( std::vector<qgate>& out, ancilla_manager& ancillas,
                    std::span<const uint32_t> controls, uint32_t target,
                    const mct_emit_options& options )
{
  const uint32_t k = static_cast<uint32_t>( controls.size() );
  const mct_emitter emitter{ out, options };
  if ( k == 0u )
  {
    push1( out, gate_kind::x, target );
    return;
  }
  if ( k == 1u )
  {
    push_cx( out, controls[0], target );
    return;
  }
  if ( k == 2u )
  {
    emitter.toffoli( controls[0], controls[1], target );
    return;
  }

  std::vector<uint32_t> busy( controls.begin(), controls.end() );
  busy.push_back( target );
  const uint32_t chain = k - 2u;
  const uint32_t clean_available = ancillas.clean_capacity();
  const uint32_t idle_available = ancillas.num_idle( busy );

  std::optional<mct_strategy> chosen;
  if ( options.strategy != mct_strategy::automatic &&
       strategy_feasible( options.strategy, chain, clean_available, idle_available ) )
  {
    chosen = options.strategy;
  }
  else
  {
    chosen = select_mct_strategy( k, clean_available, idle_available, options.weights,
                                  options.use_relative_phase );
  }
  if ( !chosen )
  {
    throw std::invalid_argument(
        "emit_mct_gate: no lowering strategy fits the qubit budget (gate with " +
        std::to_string( k ) + " controls, no clean helpers or idle wires available)" );
  }

  switch ( *chosen )
  {
  case mct_strategy::clean:
  {
    const auto helpers = ancillas.acquire_clean( chain );
    /* the clean V-chain only depends on (k, options): cache it in the
     * library over canonical labels [controls 0..k-1, target k,
     * helpers k+1..2k-2] and replay through the wire map */
    const auto wire_of = [&]( uint32_t local ) -> uint32_t {
      if ( local < k )
      {
        return controls[local];
      }
      return local == k ? target : helpers[local - k - 1u];
    };
    if ( options.library )
    {
      if ( const auto ladder = options.library->lookup_ladder(
               k, options.use_relative_phase, options.keep_toffoli ) )
      {
        for ( const auto& stored : ladder->gates )
        {
          qgate gate = stored;
          gate.target = wire_of( gate.target );
          for ( auto& control : gate.controls )
          {
            control = wire_of( control );
          }
          out.push_back( std::move( gate ) );
        }
        ancillas.release_clean( helpers );
        break;
      }
    }
    const size_t emitted_from = out.size();
    emitter.clean_chain( controls, target, helpers );
    if ( options.library )
    {
      std::unordered_map<uint32_t, uint32_t> local_of;
      for ( uint32_t local = 0u; local < 2u * k - 1u; ++local )
      {
        local_of.emplace( wire_of( local ), local );
      }
      std::vector<qgate> gates( out.begin() + emitted_from, out.end() );
      for ( auto& gate : gates )
      {
        gate.target = local_of.at( gate.target );
        for ( auto& control : gate.controls )
        {
          control = local_of.at( control );
        }
      }
      options.library->offer_ladder( k, options.use_relative_phase,
                                     options.keep_toffoli, std::move( gates ) );
    }
    ancillas.release_clean( helpers );
    break;
  }
  case mct_strategy::dirty:
  {
    const auto borrowed = ancillas.borrow_dirty( chain, busy );
    emitter.dirty_chain( controls, target, borrowed );
    break;
  }
  case mct_strategy::recursive:
  {
    const auto borrowed = ancillas.borrow_dirty( 1u, busy );
    emitter.recursive_split( controls, target, borrowed[0] );
    break;
  }
  default:
    throw std::logic_error( "emit_mct_gate: unreachable strategy" );
  }
}

} // namespace qda
