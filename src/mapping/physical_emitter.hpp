/*! \file physical_emitter.hpp
 *  \brief Device-level gate emission shared by the routers.
 *
 *  Routing decisions (which SWAP, which layout) and gate legalization
 *  (CNOT direction, SWAP expansion) are separate concerns; this emitter
 *  owns the latter.  It fixes CNOTs that run against the native edge
 *  direction by H conjugation, uses a native SWAP edge when the
 *  coupling map offers one instead of expanding to three CNOTs, and
 *  cancels H-H pairs at emission time: adjacent direction fixes (and
 *  cz conjugations) that share a qubit would otherwise leave
 *  back-to-back Hadamards for a later peephole to clean up.
 */
#pragma once

#include "mapping/coupling_map.hpp"
#include "quantum/qcircuit.hpp"
#include "quantum/qgate.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace qda
{

namespace detail
{

/*! \brief Gate sink over physical qubits with emission-time cleanup. */
class physical_emitter
{
public:
  physical_emitter( const coupling_map& device, bool use_native_swap )
      : device_( device ), use_native_swap_( use_native_swap ),
        pending_h_( device.num_qubits(), 0 ), circuit_( device.num_qubits() )
  {
  }

  uint64_t added_swaps() const noexcept { return added_swaps_; }
  uint64_t added_direction_fixes() const noexcept { return added_direction_fixes_; }

  /*! \brief Finalizes and surrenders the emitted physical circuit
   *         (flushes any still-pending Hadamards).
   */
  qcircuit take_circuit()
  {
    for ( uint32_t qubit = 0u; qubit < pending_h_.size(); ++qubit )
    {
      touch( qubit );
    }
    return std::move( circuit_ );
  }

  /*! \brief Emits H lazily: a pending H toggles off against a second H
   *         on the same wire with no work, and materializes only when
   *         another gate touches the wire.
   */
  void h( uint32_t qubit ) { pending_h_[qubit] = !pending_h_[qubit]; }

  /*! \brief Emits a direction-respecting CNOT between adjacent qubits. */
  void cx( uint32_t control, uint32_t target )
  {
    if ( device_.has_directed_edge( control, target ) )
    {
      push_cx( control, target );
      return;
    }
    if ( !device_.has_directed_edge( target, control ) )
    {
      throw std::logic_error( "router: emit cx on non-adjacent qubits" );
    }
    /* reverse the native direction with Hadamards; the leading pair
     * cancels against the trailing pair of a preceding reversal */
    h( control );
    h( target );
    push_cx( target, control );
    h( control );
    h( target );
    ++added_direction_fixes_;
  }

  /*! \brief Emits cz through H-conjugated cx (symmetric, any order). */
  void cz( uint32_t control, uint32_t target )
  {
    h( target );
    cx( control, target );
    h( target );
  }

  /*! \brief Emits a SWAP of two adjacent qubits: one native swap gate
   *         when the map offers the edge, else three CNOTs (direction
   *         fixes merged).
   */
  void swap( uint32_t a, uint32_t b )
  {
    ++added_swaps_;
    if ( use_native_swap_ && device_.has_swap_edge( a, b ) )
    {
      touch( a );
      touch( b );
      circuit_.swap_( a, b );
      return;
    }
    /* orient the outer CNOTs along the native direction if one exists */
    if ( !device_.has_directed_edge( a, b ) && device_.has_directed_edge( b, a ) )
    {
      std::swap( a, b );
    }
    cx( a, b );
    cx( b, a );
    cx( a, b );
  }

  /*! \brief Passes one already-physical gate through unchanged.
   *         Barriers fence the H cancellation on every wire.
   */
  void passthrough( const qgate_view& gate )
  {
    if ( gate.kind == gate_kind::barrier )
    {
      for ( uint32_t qubit = 0u; qubit < pending_h_.size(); ++qubit )
      {
        touch( qubit );
      }
    }
    for ( const auto qubit : gate.qubits() )
    {
      touch( qubit );
    }
    circuit_.add_gate( gate );
  }

private:
  /*! Materializes a pending H before the wire is used by another gate. */
  void touch( uint32_t qubit )
  {
    if ( pending_h_[qubit] )
    {
      pending_h_[qubit] = 0;
      circuit_.h( qubit );
    }
  }

  void push_cx( uint32_t control, uint32_t target )
  {
    touch( control );
    touch( target );
    circuit_.cx( control, target );
  }

  const coupling_map& device_;
  bool use_native_swap_;
  std::vector<char> pending_h_;
  qcircuit circuit_;
  uint64_t added_swaps_ = 0u;
  uint64_t added_direction_fixes_ = 0u;
};

} // namespace detail

} // namespace qda
