/*! \file router.hpp
 *  \brief Qubit placement and SWAP routing onto a coupling map.
 *
 *  Legalizes a logical Clifford+T circuit for a physical device: CNOTs
 *  between non-adjacent qubits are routed by inserting SWAPs, and
 *  CNOTs against the native direction are reversed by H conjugation
 *  (adjacent fixes merge their Hadamards; native SWAP edges are used
 *  where the map offers them).  Two routers are available:
 *
 *  - `greedy`: the baseline.  Identity layout, each CNOT routed in
 *    isolation along a shortest path.
 *  - `sabre`: front-layer scheduling over the gate dependency DAG with
 *    extended-set lookahead and decay-weighted SWAP selection (Li,
 *    Ding, Xie, ASPLOS'19), plus an initial-layout search by
 *    reverse-traversal refinement.
 *
 *  This stage sits between the Clifford+T mapping and the (noisy)
 *  device execution in the Fig. 6 reproduction.
 */
#pragma once

#include "fault/cancel.hpp"
#include "mapping/coupling_map.hpp"
#include "quantum/qcircuit.hpp"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qda
{

/*! \brief Routing result: device-level circuit and layout bookkeeping.
 *
 *  Layouts map logical qubit q to the physical wire holding it; the
 *  physical circuit expects logical q's *input* on wire
 *  `initial_layout[q]` and leaves its output on `final_layout[q]`
 *  (circuits starting from |0...0> may ignore the initial layout).
 *  Measure gates keep their logical order, so outcome bit i still
 *  belongs to the i-th logical measurement.
 */
struct routing_result
{
  qcircuit circuit;                    /*!< circuit over physical qubits */
  std::vector<uint32_t> initial_layout; /*!< logical -> physical at entry */
  std::vector<uint32_t> final_layout;   /*!< logical -> physical at exit */
  uint64_t added_swaps = 0u;           /*!< SWAPs inserted */
  uint64_t added_direction_fixes = 0u; /*!< CNOT reversals */
};

/*! \brief Router selection. */
enum class router_kind : uint8_t
{
  greedy, /*!< per-gate shortest-path baseline */
  sabre   /*!< lookahead router with layout search */
};

/*! \brief Printable router name. */
const char* router_kind_name( router_kind kind );

/*! \brief Parses a router name ("greedy", "sabre"). */
std::optional<router_kind> parse_router_kind( const std::string& name );

/*! \brief Options of the routing stage. */
struct router_options
{
  router_kind kind = router_kind::sabre;

  /*! SABRE lookahead window: 2-qubit gates beyond the front layer. */
  uint32_t extended_set_size = 20u;
  /*! Weight of the extended set against the front layer. */
  double extended_weight = 0.5;
  /*! Decay added to a qubit's score multiplier per SWAP it joins
   *  (spreads consecutive SWAPs across the device). */
  double decay_increment = 0.1;
  /*! Reverse-traversal refinement rounds of the initial-layout search
   *  (0 = identity layout). */
  uint32_t layout_iterations = 3u;
  /*! Emit one native swap gate where the map offers the edge. */
  bool use_native_swap = true;
  /*! Fixed initial layout (logical -> physical, one entry per device
   *  qubit); disables the layout search. */
  std::optional<std::vector<uint32_t>> initial_layout{};

  /*! Cooperative cancellation, polled in the SABRE swap loop. */
  cancel_token cancel{};
};

/*! \brief Validates a logical -> physical layout for a device of
 *         `num_qubits` wires (size match, permutation) and returns its
 *         inverse (physical -> logical).  Shared by both routers;
 *         throws std::invalid_argument on malformed layouts.
 */
std::vector<uint32_t> validate_layout( const std::vector<uint32_t>& layout,
                                       uint32_t num_qubits );

/*! \brief Relabels a layout/inverse pair after the values on physical
 *         wires `a` and `b` exchanged (routing SWAP or absorbed
 *         logical SWAP).  Shared by both routers.
 */
inline void relabel_swapped( std::vector<uint32_t>& layout, std::vector<uint32_t>& inverse,
                             uint32_t a, uint32_t b )
{
  std::swap( inverse[a], inverse[b] );
  layout[inverse[a]] = a;
  layout[inverse[b]] = b;
}

/*! \brief Routes `circuit` onto `device` with the greedy baseline
 *         router (identity layout; kept as the comparison baseline).
 *
 *  The input may contain single-qubit gates, cx, cz, swap, measure and
 *  barrier (run the Clifford+T mapping first for mcx/mcz).
 */
routing_result route_circuit( const qcircuit& circuit, const coupling_map& device );

/*! \brief Routes `circuit` onto `device` with the selected router. */
routing_result route_circuit( const qcircuit& circuit, const coupling_map& device,
                              const router_options& options );

} // namespace qda
