/*! \file router.hpp
 *  \brief Qubit placement and SWAP routing onto a coupling map.
 *
 *  Legalizes a logical Clifford+T circuit for a physical device: CNOTs
 *  between non-adjacent qubits are routed by inserting SWAPs along a
 *  shortest path, and CNOTs against the native direction are reversed
 *  by conjugation with Hadamards (4 extra H).  This stage sits between
 *  the Clifford+T mapping and the (noisy) device execution in the
 *  Fig. 6 reproduction.
 */
#pragma once

#include "mapping/coupling_map.hpp"
#include "quantum/qcircuit.hpp"

#include <vector>

namespace qda
{

/*! \brief Routing result: device-level circuit and layout bookkeeping. */
struct routing_result
{
  qcircuit circuit;                    /*!< circuit over physical qubits */
  std::vector<uint32_t> initial_layout; /*!< logical -> physical at entry */
  std::vector<uint32_t> final_layout;   /*!< logical -> physical at exit */
  uint64_t added_swaps = 0u;           /*!< SWAPs inserted */
  uint64_t added_direction_fixes = 0u; /*!< CNOT reversals */
};

/*! \brief Routes `circuit` onto `device`.
 *
 *  The input may contain single-qubit gates, cx, cz, swap, measure and
 *  barrier (run the Clifford+T mapping first for mcx/mcz).  cz and swap
 *  are expressed through cx during routing.  The initial layout is the
 *  identity.
 */
routing_result route_circuit( const qcircuit& circuit, const coupling_map& device );

} // namespace qda
