#include "mapping/router.hpp"

#include <numeric>
#include <stdexcept>

namespace qda
{

namespace
{

struct router
{
  const coupling_map& device;
  qcircuit circuit;
  std::vector<uint32_t> layout;   /* logical -> physical */
  std::vector<uint32_t> inverse;  /* physical -> logical */
  uint64_t added_swaps = 0u;
  uint64_t added_direction_fixes = 0u;

  explicit router( const coupling_map& dev )
      : device( dev ), circuit( dev.num_qubits() ), layout( dev.num_qubits() ),
        inverse( dev.num_qubits() )
  {
    std::iota( layout.begin(), layout.end(), 0u );
    std::iota( inverse.begin(), inverse.end(), 0u );
  }

  /*! Emits a direction-respecting CNOT between adjacent physical qubits. */
  void emit_cx_physical( uint32_t control, uint32_t target )
  {
    if ( device.has_directed_edge( control, target ) )
    {
      circuit.cx( control, target );
      return;
    }
    if ( !device.has_directed_edge( target, control ) )
    {
      throw std::logic_error( "router: emit_cx_physical on non-adjacent qubits" );
    }
    /* reverse the native direction with Hadamards */
    circuit.h( control );
    circuit.h( target );
    circuit.cx( target, control );
    circuit.h( control );
    circuit.h( target );
    ++added_direction_fixes;
  }

  /*! Emits a SWAP of two adjacent physical qubits as three CNOTs. */
  void emit_swap_physical( uint32_t a, uint32_t b )
  {
    emit_cx_physical( a, b );
    emit_cx_physical( b, a );
    emit_cx_physical( a, b );
    ++added_swaps;
    std::swap( inverse[a], inverse[b] );
    layout[inverse[a]] = a;
    layout[inverse[b]] = b;
  }

  /*! Moves two logical qubits adjacent, then runs `emit` on the
   *  physical pair.
   */
  template<typename EmitFn>
  void route_two_qubit( uint32_t logical_control, uint32_t logical_target, EmitFn&& emit )
  {
    uint32_t pc = layout[logical_control];
    uint32_t pt = layout[logical_target];
    if ( !device.are_adjacent( pc, pt ) )
    {
      const auto path = device.shortest_path( pc, pt );
      if ( path.empty() )
      {
        throw std::invalid_argument( "router: device graph is disconnected" );
      }
      /* walk the control towards the target, stopping one hop short */
      for ( size_t step = 0u; step + 2u < path.size(); ++step )
      {
        emit_swap_physical( path[step], path[step + 1u] );
      }
      pc = layout[logical_control];
      pt = layout[logical_target];
    }
    emit( pc, pt );
  }

  void run( const qcircuit& source )
  {
    for ( const auto& gate : source.gates() )
    {
      switch ( gate.kind )
      {
      case gate_kind::cx:
        route_two_qubit( gate.controls[0], gate.target,
                         [&]( uint32_t pc, uint32_t pt ) { emit_cx_physical( pc, pt ); } );
        break;
      case gate_kind::cz:
        /* cz = H(t) cx H(t); symmetric so any direction works */
        route_two_qubit( gate.controls[0], gate.target, [&]( uint32_t pc, uint32_t pt ) {
          circuit.h( pt );
          emit_cx_physical( pc, pt );
          circuit.h( pt );
        } );
        break;
      case gate_kind::swap:
        route_two_qubit( gate.target, gate.target2, [&]( uint32_t pa, uint32_t pb ) {
          emit_swap_physical( pa, pb );
        } );
        break;
      case gate_kind::mcx:
      case gate_kind::mcz:
        throw std::invalid_argument( "router: map multi-controlled gates to Clifford+T first" );
      case gate_kind::measure:
        circuit.measure( layout[gate.target] );
        break;
      case gate_kind::barrier:
        circuit.barrier();
        break;
      case gate_kind::global_phase:
        circuit.global_phase( gate.angle );
        break;
      default:
        /* single-qubit gate: relocate the target, keep everything else */
        circuit.add_gate( qgate_view( gate.kind, gate.controls, layout[gate.target],
                                      gate.target2, gate.angle ) );
        break;
      }
    }
  }
};

} // namespace

routing_result route_circuit( const qcircuit& source, const coupling_map& device )
{
  if ( source.num_qubits() > device.num_qubits() )
  {
    throw std::invalid_argument( "route_circuit: circuit needs more qubits than the device has" );
  }
  router r( device );
  std::vector<uint32_t> initial = r.layout;
  r.run( source );
  return { std::move( r.circuit ), std::move( initial ), std::move( r.layout ), r.added_swaps,
           r.added_direction_fixes };
}

} // namespace qda
