#include "mapping/router.hpp"

#include "mapping/physical_emitter.hpp"
#include "mapping/sabre.hpp"

#include <numeric>
#include <stdexcept>

namespace qda
{

const char* router_kind_name( router_kind kind )
{
  switch ( kind )
  {
  case router_kind::greedy: return "greedy";
  case router_kind::sabre: return "sabre";
  }
  return "unknown";
}

std::optional<router_kind> parse_router_kind( const std::string& name )
{
  if ( name == "greedy" )
  {
    return router_kind::greedy;
  }
  if ( name == "sabre" )
  {
    return router_kind::sabre;
  }
  return std::nullopt;
}

std::vector<uint32_t> validate_layout( const std::vector<uint32_t>& layout,
                                       uint32_t num_qubits )
{
  if ( layout.size() != num_qubits )
  {
    throw std::invalid_argument( "router: initial layout size must match the device" );
  }
  std::vector<uint32_t> inverse( num_qubits, ~uint32_t{ 0 } );
  for ( uint32_t logical = 0u; logical < num_qubits; ++logical )
  {
    const uint32_t physical = layout[logical];
    if ( physical >= num_qubits || inverse[physical] != ~uint32_t{ 0 } )
    {
      throw std::invalid_argument( "router: initial layout is not a permutation" );
    }
    inverse[physical] = logical;
  }
  return inverse;
}

namespace
{

/*! The baseline router: identity layout, each two-qubit gate routed in
 *  isolation by walking the control along a shortest path.
 */
struct greedy_router
{
  const coupling_map& device;
  detail::physical_emitter emitter;
  std::vector<uint32_t> layout;   /* logical -> physical */
  std::vector<uint32_t> inverse;  /* physical -> logical */
  uint64_t logical_swap_gates = 0u; /* emitted for the program, not for routing */

  greedy_router( const coupling_map& dev, const router_options& options )
      : device( dev ), emitter( dev, options.use_native_swap ), layout( dev.num_qubits() ),
        inverse( dev.num_qubits() )
  {
    if ( options.initial_layout )
    {
      layout = *options.initial_layout;
      inverse = validate_layout( layout, device.num_qubits() );
    }
    else
    {
      std::iota( layout.begin(), layout.end(), 0u );
      std::iota( inverse.begin(), inverse.end(), 0u );
    }
  }

  void swap_physical( uint32_t a, uint32_t b )
  {
    emitter.swap( a, b );
    relabel_swapped( layout, inverse, a, b );
  }

  /*! Moves two logical qubits adjacent, then runs `emit` on the
   *  physical pair.
   */
  template<typename EmitFn>
  void route_two_qubit( uint32_t logical_a, uint32_t logical_b, EmitFn&& emit )
  {
    uint32_t pa = layout[logical_a];
    uint32_t pb = layout[logical_b];
    if ( !device.are_adjacent( pa, pb ) )
    {
      const auto path = device.shortest_path( pa, pb );
      if ( path.empty() )
      {
        throw std::invalid_argument( "router: device graph is disconnected" );
      }
      /* walk the first qubit towards the second, stopping one hop short */
      for ( size_t step = 0u; step + 2u < path.size(); ++step )
      {
        swap_physical( path[step], path[step + 1u] );
      }
      pa = layout[logical_a];
      pb = layout[logical_b];
    }
    emit( pa, pb );
  }

  void run( const qcircuit& source )
  {
    for ( const auto& gate : source.gates() )
    {
      switch ( gate.kind )
      {
      case gate_kind::cx:
        route_two_qubit( gate.controls[0], gate.target,
                         [&]( uint32_t pc, uint32_t pt ) { emitter.cx( pc, pt ); } );
        break;
      case gate_kind::cz:
        route_two_qubit( gate.controls[0], gate.target,
                         [&]( uint32_t pc, uint32_t pt ) { emitter.cz( pc, pt ); } );
        break;
      case gate_kind::swap:
        /* a logical SWAP: emit the physical swap WITHOUT relabeling the
         * layout (emit-plus-relabel would cancel to a net no-op) */
        route_two_qubit( gate.target, gate.target2, [&]( uint32_t pa, uint32_t pb ) {
          emitter.swap( pa, pb );
          ++logical_swap_gates; /* not a routing-inserted SWAP */
        } );
        break;
      case gate_kind::mcx:
      case gate_kind::mcz:
        throw std::invalid_argument( "router: map multi-controlled gates to Clifford+T first" );
      case gate_kind::barrier:
      case gate_kind::global_phase:
        emitter.passthrough( gate );
        break;
      default:
        /* single-qubit gate or measure: relocate the target */
        emitter.passthrough( qgate_view( gate.kind, gate.controls, layout[gate.target],
                                         gate.target2, gate.angle ) );
        break;
      }
    }
  }
};

} // namespace

routing_result route_circuit( const qcircuit& source, const coupling_map& device )
{
  router_options options;
  options.kind = router_kind::greedy;
  options.initial_layout.reset();
  return route_circuit( source, device, options );
}

routing_result route_circuit( const qcircuit& source, const coupling_map& device,
                              const router_options& options )
{
  if ( source.num_qubits() > device.num_qubits() )
  {
    throw std::invalid_argument( "route_circuit: circuit needs more qubits than the device has" );
  }
  if ( options.kind == router_kind::sabre )
  {
    return sabre_route( source, device, options );
  }

  greedy_router router( device, options );
  std::vector<uint32_t> initial = router.layout;
  router.run( source );
  return { router.emitter.take_circuit(), std::move( initial ), std::move( router.layout ),
           router.emitter.added_swaps() - router.logical_swap_gates,
           router.emitter.added_direction_fixes() };
}

} // namespace qda
