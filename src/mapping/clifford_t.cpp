#include "mapping/clifford_t.hpp"

#include "kernel/bits.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

namespace qda
{

void append_toffoli_clifford_t( qcircuit& circuit, uint32_t c0, uint32_t c1, uint32_t target )
{
  /* standard 7-T decomposition (Nielsen-Chuang Fig. 4.9) */
  circuit.h( target );
  circuit.cx( c1, target );
  circuit.tdg( target );
  circuit.cx( c0, target );
  circuit.t( target );
  circuit.cx( c1, target );
  circuit.tdg( target );
  circuit.cx( c0, target );
  circuit.t( c1 );
  circuit.t( target );
  circuit.h( target );
  circuit.cx( c0, c1 );
  circuit.t( c0 );
  circuit.tdg( c1 );
  circuit.cx( c0, c1 );
}

void append_relative_phase_toffoli( qcircuit& circuit, uint32_t c0, uint32_t c1, uint32_t target,
                                    bool adjoint )
{
  /* Maslov [42]: RCCX with 4 T gates.  The gate sequence is a palindrome
   * under inversion (reversing and adjointing each gate reproduces the
   * same list), so RCCX is an involution and compute/uncompute emit the
   * identical cascade. */
  (void)adjoint;
  circuit.h( target );
  circuit.t( target );
  circuit.cx( c1, target );
  circuit.tdg( target );
  circuit.cx( c0, target );
  circuit.t( target );
  circuit.cx( c1, target );
  circuit.tdg( target );
  circuit.h( target );
}

uint64_t mct_t_count( uint32_t num_controls, bool use_relative_phase )
{
  if ( num_controls <= 1u )
  {
    return 0u;
  }
  if ( num_controls == 2u )
  {
    return 7u;
  }
  const uint32_t chain = num_controls - 2u;
  return use_relative_phase ? 7u + 8u * chain : 7u + 14u * chain;
}

namespace
{

/*! Shared MCT emitter: lowers one multi-controlled X (positive controls)
 *  into Clifford+T over `circuit`, using clean helper qubits starting at
 *  `helper_base` for gates with more than two controls.
 */
struct mct_emitter
{
  qcircuit& circuit;
  uint32_t helper_base;
  const clifford_t_options& options;

  void emit_toffoli( uint32_t c0, uint32_t c1, uint32_t target ) const
  {
    if ( options.keep_toffoli )
    {
      circuit.ccx( c0, c1, target );
    }
    else
    {
      append_toffoli_clifford_t( circuit, c0, c1, target );
    }
  }

  void emit_chain_toffoli( uint32_t c0, uint32_t c1, uint32_t target, bool adjoint ) const
  {
    if ( options.keep_toffoli )
    {
      circuit.ccx( c0, c1, target );
    }
    else if ( options.use_relative_phase )
    {
      append_relative_phase_toffoli( circuit, c0, c1, target, adjoint );
    }
    else
    {
      append_toffoli_clifford_t( circuit, c0, c1, target );
    }
  }

  void emit_mct( std::span<const uint32_t> controls, uint32_t target ) const
  {
    const uint32_t k = static_cast<uint32_t>( controls.size() );
    if ( k == 0u )
    {
      circuit.x( target );
      return;
    }
    if ( k == 1u )
    {
      circuit.cx( controls[0], target );
      return;
    }
    if ( k == 2u )
    {
      emit_toffoli( controls[0], controls[1], target );
      return;
    }
    /* V-chain over clean helpers a0..a_{k-3}:
     *   a0 = c0 & c1;  a_i = c_{i+1} & a_{i-1};  target ^= c_{k-1} & a_{k-3} */
    std::vector<std::pair<std::pair<uint32_t, uint32_t>, uint32_t>> chain;
    uint32_t previous = helper_base;
    chain.push_back( { { controls[0], controls[1] }, previous } );
    for ( uint32_t i = 2u; i + 1u < k; ++i )
    {
      const uint32_t helper = helper_base + ( i - 1u );
      chain.push_back( { { controls[i], previous }, helper } );
      previous = helper;
    }
    for ( const auto& [cs, helper] : chain )
    {
      emit_chain_toffoli( cs.first, cs.second, helper, /*adjoint=*/false );
    }
    emit_toffoli( controls[k - 1u], previous, target );
    for ( auto it = chain.rbegin(); it != chain.rend(); ++it )
    {
      emit_chain_toffoli( it->first.first, it->first.second, it->second, /*adjoint=*/true );
    }
  }
};

} // namespace

clifford_t_result map_to_clifford_t( const rev_circuit& source, const clifford_t_options& options )
{
  uint32_t max_controls = 0u;
  for ( const auto& gate : source.gates() )
  {
    max_controls = std::max( max_controls, gate.num_controls() );
  }
  const uint32_t num_lines = source.num_lines();
  const uint32_t num_helpers = max_controls > 2u ? max_controls - 2u : 0u;

  qcircuit circuit( num_lines + num_helpers );
  const mct_emitter emitter{ circuit, num_lines, options };

  for ( const auto& gate : source.gates() )
  {
    /* conjugate negative controls with X */
    std::vector<uint32_t> negatives;
    std::vector<uint32_t> controls;
    for ( uint32_t line = 0u; line < num_lines; ++line )
    {
      if ( ( gate.controls >> line ) & 1u )
      {
        controls.push_back( line );
        if ( !( ( gate.polarity >> line ) & 1u ) )
        {
          negatives.push_back( line );
        }
      }
    }
    for ( const auto line : negatives )
    {
      circuit.x( line );
    }
    emitter.emit_mct( controls, gate.target );
    for ( const auto line : negatives )
    {
      circuit.x( line );
    }
  }
  return { std::move( circuit ), num_helpers };
}

clifford_t_result lower_multi_controlled_gates( const qcircuit& source,
                                                const clifford_t_options& options )
{
  uint32_t max_controls = 0u;
  for ( const auto& gate : source.gates() )
  {
    if ( gate.kind == gate_kind::mcx || gate.kind == gate_kind::mcz )
    {
      max_controls = std::max( max_controls, static_cast<uint32_t>( gate.controls.size() ) );
    }
  }
  const uint32_t num_helpers = max_controls > 2u ? max_controls - 2u : 0u;

  qcircuit circuit( source.num_qubits() + num_helpers );
  const mct_emitter emitter{ circuit, source.num_qubits(), options };

  for ( const auto& gate : source.gates() )
  {
    switch ( gate.kind )
    {
    case gate_kind::mcx:
      emitter.emit_mct( gate.controls, gate.target );
      break;
    case gate_kind::mcz:
      circuit.h( gate.target );
      emitter.emit_mct( gate.controls, gate.target );
      circuit.h( gate.target );
      break;
    default:
      circuit.add_gate( gate );
      break;
    }
  }
  return { std::move( circuit ), num_helpers };
}

} // namespace qda
