#include "mapping/clifford_t.hpp"

#include "kernel/bits.hpp"
#include "library/subcircuit_library.hpp"
#include "mapping/ancilla.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace qda
{

void append_toffoli_clifford_t( qcircuit& circuit, uint32_t c0, uint32_t c1, uint32_t target )
{
  std::vector<qgate> gates;
  emit_toffoli_clifford_t( gates, c0, c1, target );
  for ( const auto& gate : gates )
  {
    circuit.add_gate( gate );
  }
}

void append_relative_phase_toffoli( qcircuit& circuit, uint32_t c0, uint32_t c1, uint32_t target,
                                    bool adjoint )
{
  /* RCCX is an involution (its gate list is a palindrome under
   * inversion), so compute and uncompute emit the identical cascade. */
  (void)adjoint;
  std::vector<qgate> gates;
  emit_relative_phase_toffoli( gates, c0, c1, target );
  for ( const auto& gate : gates )
  {
    circuit.add_gate( gate );
  }
}

uint64_t mct_t_count( uint32_t num_controls, bool use_relative_phase )
{
  return mct_lowering_cost( num_controls, mct_strategy::clean, use_relative_phase ).t_count;
}

namespace
{

mct_emit_options emit_options_of( const clifford_t_options& options )
{
  return { options.use_relative_phase, options.keep_toffoli, options.strategy,
           options.weights, options.library };
}

/*! Entries mapped under different options must never alias: the tag
 *  spells every knob the emission depends on (weights as exact bits). */
std::string rptm_library_tag( const clifford_t_options& options )
{
  std::string tag = "rptm|";
  tag += options.use_relative_phase ? 'r' : '-';
  tag += options.keep_toffoli ? 'k' : '-';
  tag += mct_strategy_name( options.strategy );
  tag += '|';
  const double weights[4] = { options.weights.t, options.weights.cnot,
                              options.weights.h, options.weights.depth };
  char bytes[sizeof( weights )];
  std::memcpy( bytes, weights, sizeof( weights ) );
  tag.append( bytes, sizeof( weights ) );
  tag += "|q";
  tag += options.max_qubits ? std::to_string( *options.max_qubits ) : "-";
  return tag;
}

qcircuit build_circuit( const ancilla_manager& ancillas, std::vector<qgate>&& gates )
{
  qcircuit circuit( ancillas.num_wires() );
  for ( const auto& gate : gates )
  {
    circuit.add_gate( gate );
  }
  return circuit;
}

} // namespace

clifford_t_result map_to_clifford_t( const rev_circuit& source, const clifford_t_options& options )
{
  const uint32_t num_lines = source.num_lines();

  phasepoly::splice_probe probe;
  if ( options.library )
  {
    /* whole-input tier: a verified fingerprint hit replays the stored
     * Clifford+T circuit (touched lines relabeled back, helpers
     * re-appended after the data lines) and skips emission entirely */
    qcircuit spliced( num_lines );
    uint32_t num_helpers = 0u;
    if ( options.library->splice_rev_mapping( source, rptm_library_tag( options ), probe,
                                              spliced, num_helpers ) )
    {
      return { std::move( spliced ), num_helpers };
    }
  }
  const auto started = std::chrono::steady_clock::now();

  ancilla_manager ancillas( num_lines, options.max_qubits );
  const auto emit_options = emit_options_of( options );
  std::vector<qgate> out;

  /* Lazy X conjugation of negative controls: bit `line` set means an X
   * is pending on that line.  A pending flip is only resolved when a
   * gate controls on the line in the other polarity -- consecutive
   * gates sharing negative controls emit no X pairs between them.
   * Pending flips commute with gates that use the line as target or
   * borrow it as a (state-restoring) dirty ancilla. */
  uint64_t flipped = 0u;

  for ( const auto& gate : source.gates() )
  {
    std::vector<uint32_t> controls;
    for ( uint32_t line = 0u; line < num_lines; ++line )
    {
      if ( !( ( gate.controls >> line ) & 1u ) )
      {
        continue;
      }
      controls.push_back( line );
      const bool want_flip = !( ( gate.polarity >> line ) & 1u );
      if ( ( ( flipped >> line ) & 1u ) != want_flip )
      {
        qgate x;
        x.kind = gate_kind::x;
        x.target = line;
        out.push_back( std::move( x ) );
        flipped ^= uint64_t{ 1 } << line;
      }
    }
    emit_mct_gate( out, ancillas, controls, gate.target, emit_options );
  }
  for ( uint32_t line = 0u; line < num_lines; ++line )
  {
    if ( ( flipped >> line ) & 1u )
    {
      qgate x;
      x.kind = gate_kind::x;
      x.target = line;
      out.push_back( std::move( x ) );
    }
  }
  clifford_t_result result{ build_circuit( ancillas, std::move( out ) ),
                            ancillas.num_helpers() };
  if ( options.library && probe.valid )
  {
    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - started )
                                  .count();
    options.library->offer_rev_mapping( probe, result.circuit, num_lines,
                                        result.num_helper_qubits, elapsed_ms );
  }
  return result;
}

clifford_t_result lower_multi_controlled_gates( const qcircuit& source,
                                                const clifford_t_options& options )
{
  ancilla_manager ancillas( source.num_qubits(), options.max_qubits );
  const auto emit_options = emit_options_of( options );
  std::vector<qgate> out;

  for ( const auto& gate : source.gates() )
  {
    switch ( gate.kind )
    {
    case gate_kind::mcx:
      emit_mct_gate( out, ancillas, gate.controls, gate.target, emit_options );
      break;
    case gate_kind::mcz:
    {
      qgate h;
      h.kind = gate_kind::h;
      h.target = gate.target;
      out.push_back( h );
      emit_mct_gate( out, ancillas, gate.controls, gate.target, emit_options );
      out.push_back( h );
      break;
    }
    default:
      out.push_back( gate.materialize() );
      break;
    }
  }
  return { build_circuit( ancillas, std::move( out ) ), ancillas.num_helpers() };
}

} // namespace qda
