/*! \file mct_lowering.hpp
 *  \brief Strategy-dispatched lowering of multiple-controlled Toffolis.
 *
 *  One k-control Toffoli admits several Clifford+T realizations with
 *  very different resource trades (Barenco et al. [40], Maslov [42]):
 *
 *  - `clean`: the V-chain over k-2 clean |0> helpers; cheapest in T
 *    gates (relative-phase compute/uncompute pairs halve the T-count)
 *    but widest.
 *  - `dirty`: Barenco's borrowed-ancilla chain; k-2 *idle* circuit
 *    wires in arbitrary states stand in for the helpers, each interior
 *    Toffoli runs twice, so the gate costs ~4x more T but adds no
 *    qubits.
 *  - `recursive`: the ancilla-free split Λ_k = T1 T2 T1 T2 with the
 *    controls halved; needs only a single idle wire, the two halves
 *    borrow their scratch from each other's controls.
 *  - `automatic`: per-gate selection by weighted T/CNOT/H/depth cost
 *    among the strategies feasible under the current ancilla budget.
 *
 *  `mct_lowering_cost` is the analytic cost table behind the selection;
 *  tests pin its T/CNOT/H predictions to the actually emitted circuits.
 */
#pragma once

#include "mapping/ancilla.hpp"
#include "quantum/qgate.hpp"

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace qda::library
{
class subcircuit_library;
}

namespace qda
{

/*! \brief How one multiple-controlled Toffoli is realized. */
enum class mct_strategy : uint8_t
{
  automatic, /*!< per-gate minimum-cost feasible strategy */
  clean,     /*!< V-chain over clean |0> helpers (k-2 ancillas) */
  dirty,     /*!< Barenco borrowed-ancilla chain (k-2 idle wires) */
  recursive  /*!< ancilla-free split (1 idle wire) */
};

/*! \brief Printable strategy name. */
const char* mct_strategy_name( mct_strategy strategy );

/*! \brief Parses a strategy name ("auto" accepted for automatic). */
std::optional<mct_strategy> parse_mct_strategy( const std::string& name );

/*! \brief Weights of the mapping cost model.
 *
 *  Execution targets expose their weights through
 *  `target::cost_weights()`: a noisy device is dominated by two-qubit
 *  error rates, a fault-tolerant cost model by T-count.
 */
struct mapping_cost_weights
{
  double t = 1.0;     /*!< per T/T-dagger gate */
  double cnot = 1.0;  /*!< per CNOT */
  double h = 0.1;     /*!< per Hadamard */
  double depth = 0.0; /*!< per estimated sequential stage */

  /*! \brief Weights of a noisy NISQ device (CNOT-dominated). */
  static mapping_cost_weights noisy_device() { return { 1.0, 10.0, 0.5, 0.0 }; }

  /*! \brief Weights of a fault-tolerant backend (T-dominated). */
  static mapping_cost_weights fault_tolerant() { return { 10.0, 1.0, 0.1, 0.0 }; }
};

/*! \brief Analytic resources of lowering one k-control Toffoli. */
struct mct_cost
{
  uint64_t t_count = 0u;
  uint64_t cnot_count = 0u;
  uint64_t h_count = 0u;
  /*! Estimated sequential stages (serialized primitive gate count). */
  uint64_t depth = 0u;
  uint32_t clean_ancillas = 0u; /*!< clean helpers required */
  uint32_t dirty_ancillas = 0u; /*!< idle wires borrowed */

  double weighted( const mapping_cost_weights& weights ) const
  {
    return weights.t * static_cast<double>( t_count ) +
           weights.cnot * static_cast<double>( cnot_count ) +
           weights.h * static_cast<double>( h_count ) +
           weights.depth * static_cast<double>( depth );
  }
};

/*! \brief Cost table of the lowering strategies.
 *
 *  `strategy` must be concrete (not `automatic`); `use_relative_phase`
 *  only affects the clean V-chain, whose compute/uncompute Toffolis it
 *  replaces by 4-T relative-phase ones.
 */
mct_cost mct_lowering_cost( uint32_t num_controls, mct_strategy strategy,
                            bool use_relative_phase = true );

/*! \brief Minimum-cost strategy among those feasible with
 *         `clean_available` obtainable helpers and `idle_available`
 *         borrowable wires.  Returns nullopt if no strategy fits
 *         (gate spans every wire and the qubit budget is exhausted).
 */
std::optional<mct_strategy> select_mct_strategy( uint32_t num_controls, uint32_t clean_available,
                                                 uint32_t idle_available,
                                                 const mapping_cost_weights& weights,
                                                 bool use_relative_phase );

/*! \brief Options of the strategy-dispatched MCT emission. */
struct mct_emit_options
{
  bool use_relative_phase = true;
  bool keep_toffoli = false; /*!< keep ccx opaque instead of 7-T expansion */
  mct_strategy strategy = mct_strategy::automatic;
  mapping_cost_weights weights{};
  /*! Subcircuit library caching clean V-chain ladders per control
   *  count: the canonical ladder is emitted once and replayed through
   *  a wire remap on every later k-control gate.  Null disables. */
  library::subcircuit_library* library = nullptr;
};

/*! \brief Emits one multi-controlled X (positive controls) as gates
 *         appended to `out`, drawing scratch qubits from `ancillas`.
 *
 *  A forced strategy falls back to the cheapest feasible one when its
 *  ancilla requirement cannot be met for this particular gate; throws
 *  std::invalid_argument when no strategy fits at all.
 */
void emit_mct_gate( std::vector<qgate>& out, ancilla_manager& ancillas,
                    std::span<const uint32_t> controls, uint32_t target,
                    const mct_emit_options& options );

/* ---- Clifford+T primitives (shared with tests and peepholes) ---- */

/*! \brief Appends the textbook 7-T Toffoli decomposition to `out`. */
void emit_toffoli_clifford_t( std::vector<qgate>& out, uint32_t c0, uint32_t c1,
                              uint32_t target );

/*! \brief Appends Maslov's 4-T relative-phase Toffoli to `out`. */
void emit_relative_phase_toffoli( std::vector<qgate>& out, uint32_t c0, uint32_t c1,
                                  uint32_t target );

} // namespace qda
