/*! \file clifford_t.hpp
 *  \brief Mapping reversible MCT circuits into Clifford+T quantum circuits.
 *
 *  This is the `rptm` stage of the paper's Eq. (5) pipeline: Toffoli
 *  gates are expressed over {H, T, T^dagger, CNOT} (refs [40]-[42]).
 *  Multiple-controlled gates go through the strategy-dispatched lowerer
 *  (mapping/mct_lowering.hpp): a per-gate cost model picks between the
 *  clean V-chain (relative-phase Toffolis by default, Maslov [42]), the
 *  Barenco dirty-ancilla chain, and the ancilla-free recursive split,
 *  subject to the ancilla manager's qubit budget.  Negative controls
 *  are conjugated with X lazily: a flip stays pending until a gate
 *  needs the line in the opposite polarity, so back-to-back gates
 *  sharing negative controls emit no cancelling X pairs.
 */
#pragma once

#include "circuit/circuit_cast.hpp"
#include "mapping/mct_lowering.hpp"
#include "quantum/qcircuit.hpp"
#include "reversible/rev_circuit.hpp"

#include <optional>

namespace qda
{

/*! \brief Options of the Clifford+T mapping. */
struct clifford_t_options
{
  /*! Use relative-phase Toffolis for compute/uncompute pairs ([42]). */
  bool use_relative_phase = true;
  /*! Keep ccx/mcx as opaque gates instead of expanding to Clifford+T
   *  (useful when a later pass or backend handles them natively). */
  bool keep_toffoli = false;
  /*! Lowering strategy; `automatic` picks per gate by weighted cost. */
  mct_strategy strategy = mct_strategy::automatic;
  /*! Cost-model weights (take them from `target::cost_weights()` to
   *  map for a specific backend). */
  mapping_cost_weights weights{};
  /*! Total qubit budget (data lines + helpers), e.g. the device size.
   *  Unset = clean helpers may grow freely. */
  std::optional<uint32_t> max_qubits{};
  /*! Cross-compilation subcircuit library: whole rptm inputs whose
   *  canonical fingerprint hits splice the stored Clifford+T circuit
   *  (skipping emission entirely), and clean V-chain ladders are
   *  replayed per control count.  Null disables both tiers. */
  library::subcircuit_library* library = nullptr;
};

/*! \brief Result of the mapping. */
struct clifford_t_result
{
  qcircuit circuit;            /*!< Clifford+T circuit */
  uint32_t num_helper_qubits;  /*!< clean helpers appended after the lines */
};

/*! \brief Maps an MCT circuit to Clifford+T.
 *
 *  The result acts on `circuit.num_lines()` + helpers qubits; helpers
 *  start and end in |0>.
 */
clifford_t_result map_to_clifford_t( const rev_circuit& circuit,
                                     const clifford_t_options& options = {} );

/*! \brief Appends the textbook 7-T Toffoli decomposition. */
void append_toffoli_clifford_t( qcircuit& circuit, uint32_t c0, uint32_t c1, uint32_t target );

/*! \brief Appends Maslov's 4-T relative-phase Toffoli (or its adjoint). */
void append_relative_phase_toffoli( qcircuit& circuit, uint32_t c0, uint32_t c1, uint32_t target,
                                    bool adjoint = false );

/*! \brief Expands all mcx/mcz gates of a quantum circuit into Clifford+T,
 *         appending clean helper qubits as needed (mcz is H-conjugated
 *         into mcx first).  Other gates pass through unchanged.
 */
clifford_t_result lower_multi_controlled_gates( const qcircuit& circuit,
                                                const clifford_t_options& options = {} );

/*! \brief T-count of one k-control MCT under the clean V-chain (legacy
 *         shorthand for `mct_lowering_cost(k, clean, rp).t_count`).
 */
uint64_t mct_t_count( uint32_t num_controls, bool use_relative_phase = true );

/*! \brief `circuit_cast` lowering of the `rptm` stage: reversible MCT
 *         level down to Clifford+T (with helper-qubit bookkeeping).
 */
template<>
struct circuit_lowering<clifford_t_result, rev_circuit>
{
  static clifford_t_result apply( const rev_circuit& circuit,
                                  const clifford_t_options& options = {} )
  {
    return map_to_clifford_t( circuit, options );
  }
};

/*! \brief Same lowering when only the quantum circuit is needed. */
template<>
struct circuit_lowering<qcircuit, rev_circuit>
{
  static qcircuit apply( const rev_circuit& circuit, const clifford_t_options& options = {} )
  {
    return map_to_clifford_t( circuit, options ).circuit;
  }
};

/*! \brief `circuit_cast` lowering of in-circuit mcx/mcz gates. */
template<>
struct circuit_lowering<clifford_t_result, qcircuit>
{
  static clifford_t_result apply( const qcircuit& circuit,
                                  const clifford_t_options& options = {} )
  {
    return lower_multi_controlled_gates( circuit, options );
  }
};

} // namespace qda
