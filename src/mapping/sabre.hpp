/*! \file sabre.hpp
 *  \brief SABRE-style lookahead router (Li, Ding, Xie, ASPLOS'19).
 *
 *  Front-layer scheduling over the gate dependency DAG
 *  (quantum/dag.hpp): every gate whose dependencies are satisfied and
 *  whose operands are adjacent executes immediately; when the front
 *  layer is blocked, the router scores every SWAP on an edge touching a
 *  front-layer qubit by the summed coupling distance of the front
 *  layer plus a weighted extended set of upcoming two-qubit gates, with
 *  a per-qubit decay that spreads consecutive SWAPs.  The initial
 *  layout comes from reverse-traversal refinement: routing the reversed
 *  circuit from the forward run's final layout yields a better starting
 *  layout, iterated a few rounds and keeping the best trial.
 */
#pragma once

#include "mapping/router.hpp"

namespace qda
{

/*! \brief Routes with the SABRE lookahead router (called through
 *         `route_circuit` with `router_kind::sabre`).
 */
routing_result sabre_route( const qcircuit& circuit, const coupling_map& device,
                            const router_options& options );

} // namespace qda
