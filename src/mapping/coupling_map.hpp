/*! \file coupling_map.hpp
 *  \brief Device topologies: directed CNOT coupling maps.
 *
 *  Physical superconducting devices such as the IBM Quantum Experience
 *  chips only support CNOT between coupled qubit pairs, and early
 *  devices additionally fixed the CNOT direction.  The router
 *  (mapping/router.hpp) consumes these maps to legalize circuits before
 *  they are "executed" on the noisy device model (the paper's Fig. 6
 *  experiment ran on the 5-qubit IBM QX chip).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qda
{

/*! \brief A directed coupling map over physical qubits. */
class coupling_map
{
public:
  /*! \brief Builds from directed edges (control -> target). */
  coupling_map( uint32_t num_qubits, std::vector<std::pair<uint32_t, uint32_t>> edges,
                std::string name = "custom" );

  uint32_t num_qubits() const noexcept { return num_qubits_; }
  const std::string& name() const noexcept { return name_; }
  const std::vector<std::pair<uint32_t, uint32_t>>& edges() const noexcept { return edges_; }

  /*! \brief True if CNOT control->target is natively available. */
  bool has_directed_edge( uint32_t control, uint32_t target ) const;

  /*! \brief True if the qubits are coupled in either direction. */
  bool are_adjacent( uint32_t a, uint32_t b ) const;

  /*! \brief Shortest undirected path between two qubits (inclusive).
   *         Empty if disconnected.
   */
  std::vector<uint32_t> shortest_path( uint32_t from, uint32_t to ) const;

  /*! \brief Undirected distance (hops); num_qubits() if disconnected. */
  uint32_t distance( uint32_t from, uint32_t to ) const;

  /*! \brief All-pairs undirected distances (num_qubits() where
   *         disconnected); one BFS per qubit.
   */
  std::vector<std::vector<uint32_t>> all_distances() const;

  /* ---- native SWAP support ---- */

  /*! \brief Marks a coupled pair as offering a native SWAP (the router
   *         then emits one `swap` gate instead of three CNOTs).
   *         Throws std::invalid_argument for non-adjacent qubits.
   */
  void add_swap_edge( uint32_t a, uint32_t b );

  /*! \brief True if the pair supports a native SWAP (either order). */
  bool has_swap_edge( uint32_t a, uint32_t b ) const;

  /*! \brief Copy of this map with every coupled pair SWAP-native. */
  coupling_map with_native_swaps() const;

  /* ---- device library ---- */

  /*! \brief IBM QX2 "Yorktown" (5 qubits). */
  static coupling_map ibm_qx2();

  /*! \brief IBM QX4 "Tenerife" (5 qubits) -- the Fig. 6 device class. */
  static coupling_map ibm_qx4();

  /*! \brief IBM QX5 "Albatross" (16 qubits). */
  static coupling_map ibm_qx5();

  /*! \brief Open line of n qubits, both directions. */
  static coupling_map linear( uint32_t num_qubits );

  /*! \brief Ring of n qubits, both directions. */
  static coupling_map ring( uint32_t num_qubits );

  /*! \brief All-to-all coupling. */
  static coupling_map fully_connected( uint32_t num_qubits );

private:
  uint32_t num_qubits_;
  std::vector<std::pair<uint32_t, uint32_t>> edges_;
  std::string name_;
  std::vector<std::vector<uint32_t>> neighbours_;         /* undirected adjacency */
  std::vector<std::pair<uint32_t, uint32_t>> swap_edges_; /* native SWAP pairs */
};

} // namespace qda
