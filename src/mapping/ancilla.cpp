#include "mapping/ancilla.hpp"

#include <algorithm>
#include <stdexcept>

namespace qda
{

ancilla_manager::ancilla_manager( uint32_t num_data_lines, std::optional<uint32_t> max_qubits )
    : data_lines_( num_data_lines ), max_qubits_( max_qubits ), total_wires_( num_data_lines )
{
  if ( max_qubits_ && *max_qubits_ < num_data_lines )
  {
    throw std::invalid_argument(
        "ancilla_manager: qubit budget is smaller than the data line count" );
  }
}

uint32_t ancilla_manager::clean_capacity() const noexcept
{
  const uint32_t growth =
      max_qubits_ ? *max_qubits_ - total_wires_ : ~uint32_t{ 0 } - total_wires_;
  return static_cast<uint32_t>( free_clean_.size() ) + growth;
}

std::vector<uint32_t> ancilla_manager::acquire_clean( uint32_t count )
{
  if ( !can_acquire_clean( count ) )
  {
    throw std::invalid_argument( "ancilla_manager: clean helper request exceeds qubit budget" );
  }
  std::vector<uint32_t> helpers;
  helpers.reserve( count );
  while ( helpers.size() < count && !free_clean_.empty() )
  {
    helpers.push_back( free_clean_.back() );
    free_clean_.pop_back();
  }
  while ( helpers.size() < count )
  {
    helpers.push_back( total_wires_ );
    held_.push_back( 0 );
    ++total_wires_;
  }
  for ( const auto helper : helpers )
  {
    held_[helper - data_lines_] = 1;
  }
  std::sort( helpers.begin(), helpers.end() );
  return helpers;
}

void ancilla_manager::release_clean( const std::vector<uint32_t>& helpers )
{
  for ( const auto helper : helpers )
  {
    if ( helper < data_lines_ || helper >= total_wires_ || !held_[helper - data_lines_] )
    {
      throw std::invalid_argument( "ancilla_manager: releasing a helper that is not held" );
    }
    held_[helper - data_lines_] = 0;
    free_clean_.push_back( helper );
  }
}

std::vector<char> ancilla_manager::busy_mask( const std::vector<uint32_t>& busy ) const
{
  std::vector<char> mask( total_wires_, 0 );
  for ( const auto wire : busy )
  {
    if ( wire < total_wires_ )
    {
      mask[wire] = 1;
    }
  }
  /* helpers currently acquired by the caller are not idle either */
  for ( uint32_t helper = 0u; helper < held_.size(); ++helper )
  {
    if ( held_[helper] )
    {
      mask[data_lines_ + helper] = 1;
    }
  }
  return mask;
}

uint32_t ancilla_manager::num_idle( const std::vector<uint32_t>& busy ) const
{
  const auto mask = busy_mask( busy );
  return static_cast<uint32_t>( std::count( mask.begin(), mask.end(), 0 ) );
}

std::vector<uint32_t> ancilla_manager::borrow_dirty( uint32_t count,
                                                     const std::vector<uint32_t>& busy ) const
{
  const auto mask = busy_mask( busy );
  std::vector<uint32_t> borrowed;
  borrowed.reserve( count );
  for ( uint32_t wire = 0u; wire < total_wires_ && borrowed.size() < count; ++wire )
  {
    if ( !mask[wire] )
    {
      borrowed.push_back( wire );
    }
  }
  if ( borrowed.size() < count )
  {
    throw std::invalid_argument( "ancilla_manager: not enough idle wires to borrow" );
  }
  return borrowed;
}

} // namespace qda
