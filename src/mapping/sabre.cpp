#include "mapping/sabre.hpp"

#include "mapping/physical_emitter.hpp"
#include "quantum/dag.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace qda
{

namespace
{

/*! Physical operand pair of a routing-relevant two-qubit gate. */
std::pair<uint32_t, uint32_t> operands_of( const qgate_view& gate )
{
  if ( gate.kind == gate_kind::swap )
  {
    return { gate.target, gate.target2 };
  }
  return { gate.controls[0], gate.target };
}

struct sabre_run
{
  const gate_dag& dag;
  const coupling_map& device;
  const std::vector<std::vector<uint32_t>>& dist;
  const router_options& options;

  detail::physical_emitter emitter;
  std::vector<uint32_t> layout;  /* logical -> physical */
  std::vector<uint32_t> inverse; /* physical -> logical */
  std::vector<uint32_t> indegree;
  std::vector<uint32_t> front; /* ready gates, circuit order */
  std::vector<double> decay;
  uint32_t executed = 0u;
  uint32_t stalled_swaps = 0u;

  /* scratch of extended_set(): epoch-stamped lazy view of `indegree`
   * so each SWAP decision only touches the gates its BFS visits */
  mutable std::vector<uint32_t> scratch_remaining;
  mutable std::vector<uint32_t> scratch_stamp;
  mutable uint32_t scratch_epoch = 0u;

  sabre_run( const gate_dag& dag_, const coupling_map& device_,
             const std::vector<std::vector<uint32_t>>& dist_, const router_options& options_,
             std::vector<uint32_t> initial_layout )
      : dag( dag_ ), device( device_ ), dist( dist_ ), options( options_ ),
        emitter( device_, options_.use_native_swap ), layout( std::move( initial_layout ) ),
        inverse( device_.num_qubits() ), indegree( dag_.size() ),
        decay( device_.num_qubits(), 1.0 ), scratch_remaining( dag_.size() ),
        scratch_stamp( dag_.size(), 0u )
  {
    for ( uint32_t logical = 0u; logical < layout.size(); ++logical )
    {
      inverse[layout[logical]] = logical;
    }
    for ( uint32_t index = 0u; index < dag.size(); ++index )
    {
      indegree[index] = dag.num_predecessors( index );
    }
    front = dag.roots();
  }

  bool executable( uint32_t index ) const
  {
    const auto& gate = dag.gate( index );
    if ( gate.kind == gate_kind::swap )
    {
      return true; /* absorbed into the layout, needs no adjacency */
    }
    if ( !dag.is_two_qubit( index ) )
    {
      return true;
    }
    const auto [a, b] = operands_of( gate );
    return device.are_adjacent( layout[a], layout[b] );
  }

  void execute( uint32_t index )
  {
    const auto& gate = dag.gate( index );
    switch ( gate.kind )
    {
    case gate_kind::cx:
      emitter.cx( layout[gate.controls[0]], layout[gate.target] );
      break;
    case gate_kind::cz:
      emitter.cz( layout[gate.controls[0]], layout[gate.target] );
      break;
    case gate_kind::swap:
      /* a logical SWAP needs no gates at all: relabel the layout */
      relabel_swapped( layout, inverse, layout[gate.target], layout[gate.target2] );
      break;
    case gate_kind::mcx:
    case gate_kind::mcz:
      throw std::invalid_argument( "router: map multi-controlled gates to Clifford+T first" );
    case gate_kind::barrier:
    case gate_kind::global_phase:
      emitter.passthrough( gate );
      break;
    default:
      emitter.passthrough( qgate_view( gate.kind, gate.controls, layout[gate.target],
                                       gate.target2, gate.angle ) );
      break;
    }
    ++executed;
    for ( const auto successor : dag.successors( index ) )
    {
      if ( --indegree[successor] == 0u )
      {
        front.push_back( successor );
      }
    }
  }

  /*! Executes every executable front gate; true if any gate ran. */
  bool drain()
  {
    bool any = false;
    bool progress = true;
    while ( progress )
    {
      progress = false;
      for ( size_t i = 0u; i < front.size(); )
      {
        const uint32_t index = front[i];
        if ( executable( index ) )
        {
          front.erase( front.begin() + static_cast<int64_t>( i ) );
          execute( index );
          progress = true;
          any = true;
        }
        else
        {
          ++i;
        }
      }
    }
    if ( any )
    {
      std::fill( decay.begin(), decay.end(), 1.0 );
      stalled_swaps = 0u;
      QDA_COUNT( "sabre.decay_resets" );
    }
    return any;
  }

  /*! Upcoming two-qubit gates beyond the front layer (BFS over the DAG). */
  std::vector<uint32_t> extended_set() const
  {
    std::vector<uint32_t> result;
    if ( options.extended_set_size == 0u )
    {
      return result;
    }
    ++scratch_epoch;
    const auto residual = [&]( uint32_t index ) -> uint32_t& {
      if ( scratch_stamp[index] != scratch_epoch )
      {
        scratch_stamp[index] = scratch_epoch;
        scratch_remaining[index] = indegree[index];
      }
      return scratch_remaining[index];
    };
    std::vector<uint32_t> queue = front;
    for ( size_t i = 0u; i < queue.size() && result.size() < options.extended_set_size; ++i )
    {
      for ( const auto successor : dag.successors( queue[i] ) )
      {
        if ( --residual( successor ) == 0u )
        {
          queue.push_back( successor );
          if ( dag.is_two_qubit( successor ) &&
               dag.gate( successor ).kind != gate_kind::swap )
          {
            result.push_back( successor );
            if ( result.size() >= options.extended_set_size )
            {
              break;
            }
          }
        }
      }
    }
    return result;
  }

  uint32_t mapped_distance( uint32_t index, uint32_t swapped_a, uint32_t swapped_b ) const
  {
    const auto [la, lb] = operands_of( dag.gate( index ) );
    auto place = [&]( uint32_t logical ) {
      const uint32_t physical = layout[logical];
      if ( physical == swapped_a )
      {
        return swapped_b;
      }
      if ( physical == swapped_b )
      {
        return swapped_a;
      }
      return physical;
    };
    return dist[place( la )][place( lb )];
  }

  double score_swap( uint32_t a, uint32_t b, const std::vector<uint32_t>& blocked,
                     const std::vector<uint32_t>& extended ) const
  {
    QDA_COUNT( "sabre.swap_candidates" );
    double front_cost = 0.0;
    for ( const auto index : blocked )
    {
      front_cost += static_cast<double>( mapped_distance( index, a, b ) );
    }
    front_cost /= static_cast<double>( blocked.size() );
    double extended_cost = 0.0;
    if ( !extended.empty() )
    {
      for ( const auto index : extended )
      {
        extended_cost += static_cast<double>( mapped_distance( index, a, b ) );
      }
      extended_cost *= options.extended_weight / static_cast<double>( extended.size() );
    }
    return std::max( decay[a], decay[b] ) * ( front_cost + extended_cost );
  }

  void apply_swap( uint32_t a, uint32_t b )
  {
    emitter.swap( a, b );
    relabel_swapped( layout, inverse, a, b );
    decay[a] += options.decay_increment;
    decay[b] += options.decay_increment;
    ++stalled_swaps;
  }

  /*! Fallback when heuristic SWAPs fail to unblock anything for too
   *  long: walk the first blocked gate's operands together (greedy).
   */
  void force_route_first()
  {
    QDA_COUNT( "sabre.force_routes" );
    const auto [la, lb] = operands_of( dag.gate( front.front() ) );
    const auto path = device.shortest_path( layout[la], layout[lb] );
    if ( path.empty() )
    {
      throw std::invalid_argument( "router: device graph is disconnected" );
    }
    for ( size_t step = 0u; step + 2u < path.size(); ++step )
    {
      apply_swap( path[step], path[step + 1u] );
    }
  }

  void choose_and_apply_swap()
  {
    /* every remaining front gate is a blocked two-qubit gate */
    const auto& blocked = front;
    QDA_HISTOGRAM( "sabre.front_layer", static_cast<double>( front.size() ),
                   { 1.0, 2.0, 4.0, 8.0, 16.0, 32.0 } );

    const uint32_t stall_limit = 2u * device.num_qubits() * device.num_qubits() + 16u;
    if ( stalled_swaps > stall_limit )
    {
      force_route_first();
      return;
    }
    const auto extended = extended_set();

    /* candidate SWAPs: edges touching a qubit of a blocked gate */
    std::vector<char> involved( device.num_qubits(), 0 );
    for ( const auto index : blocked )
    {
      const auto [la, lb] = operands_of( dag.gate( index ) );
      involved[layout[la]] = 1;
      involved[layout[lb]] = 1;
    }
    double best_score = 0.0;
    uint32_t best_a = 0u;
    uint32_t best_b = 0u;
    bool found = false;
    for ( const auto& [a, b] : device.edges() )
    {
      if ( a > b && device.has_directed_edge( b, a ) )
      {
        continue; /* bidirected pair: already scored via the (b, a) entry */
      }
      const uint32_t lo = std::min( a, b );
      const uint32_t hi = std::max( a, b );
      if ( !involved[lo] && !involved[hi] )
      {
        continue;
      }
      const double score = score_swap( lo, hi, blocked, extended );
      if ( !found || score < best_score )
      {
        found = true;
        best_score = score;
        best_a = lo;
        best_b = hi;
      }
    }
    if ( !found )
    {
      force_route_first();
      return;
    }
    apply_swap( best_a, best_b );
  }

  void run()
  {
    /* a swap choice scores every candidate edge, so a poll every few
     * iterations keeps cancellation latency small even on big devices */
    cancel_checkpoint checkpoint( 64u );
    drain();
    while ( executed < dag.size() )
    {
      if ( checkpoint.due() )
      {
        options.cancel.check( "route" );
      }
      choose_and_apply_swap();
      drain();
    }
  }
};

/*! Reversed interaction pattern of `circuit` for the layout search
 *  (measurements, barriers and global phases dropped; gate adjoints are
 *  irrelevant to routing).
 */
qcircuit reverse_for_layout( const qcircuit& circuit )
{
  std::vector<qgate_view> views;
  for ( const auto& gate : circuit.gates() )
  {
    if ( gate.is_unitary() && gate.kind != gate_kind::global_phase )
    {
      views.push_back( gate );
    }
  }
  qcircuit reversed( circuit.num_qubits() );
  for ( auto it = views.rbegin(); it != views.rend(); ++it )
  {
    reversed.add_gate( *it );
  }
  return reversed;
}

routing_result finish( sabre_run&& run, std::vector<uint32_t> initial_layout )
{
  return { run.emitter.take_circuit(), std::move( initial_layout ), std::move( run.layout ),
           run.emitter.added_swaps(), run.emitter.added_direction_fixes() };
}

} // namespace

routing_result sabre_route( const qcircuit& source, const coupling_map& device,
                            const router_options& options )
{
  if ( source.num_qubits() > device.num_qubits() )
  {
    throw std::invalid_argument( "route_circuit: circuit needs more qubits than the device has" );
  }
  QDA_TRACE_SPAN_NAMED( route_span, "sabre.route" );
  route_span.attr( "gates", static_cast<int64_t>( source.num_gates() ) )
      .attr( "logical_qubits", static_cast<int64_t>( source.num_qubits() ) )
      .attr( "physical_qubits", static_cast<int64_t>( device.num_qubits() ) )
      .attr( "layout_iterations", static_cast<int64_t>( options.layout_iterations ) );
  const auto dist = device.all_distances();
  const gate_dag dag( source );

  std::vector<uint32_t> layout( device.num_qubits() );
  std::iota( layout.begin(), layout.end(), 0u );

  if ( options.initial_layout )
  {
    layout = *options.initial_layout;
    validate_layout( layout, device.num_qubits() );
  }
  else if ( options.layout_iterations > 0u )
  {
    /* reverse-traversal refinement: route forward, use the final layout
     * to route the reversed circuit, whose final layout becomes the next
     * forward initial layout.  Routing is deterministic, so the best
     * forward trial's output is kept and returned directly instead of
     * re-routing its layout. */
    const auto reversed = reverse_for_layout( source );
    const gate_dag reversed_dag( reversed );
    std::vector<uint32_t> best_layout = layout;
    uint64_t best_swaps = ~uint64_t{ 0 };
    std::optional<sabre_run> best_run;
    auto current = layout;
    for ( uint32_t iteration = 0u; iteration <= options.layout_iterations; ++iteration )
    {
      sabre_run forward( dag, device, dist, options, current );
      forward.run();
      const auto forward_exit_layout = forward.layout;
      if ( forward.emitter.added_swaps() < best_swaps )
      {
        best_swaps = forward.emitter.added_swaps();
        best_layout = current;
        best_run.emplace( std::move( forward ) );
      }
      if ( iteration == options.layout_iterations )
      {
        break;
      }
      sabre_run backward( reversed_dag, device, dist, options, forward_exit_layout );
      backward.run();
      current = backward.layout;
    }
    auto best = finish( std::move( *best_run ), std::move( best_layout ) );
    route_span.attr( "swaps", best.added_swaps );
    return best;
  }

  sabre_run final_run( dag, device, dist, options, layout );
  final_run.run();
  auto result = finish( std::move( final_run ), std::move( layout ) );
  route_span.attr( "swaps", result.added_swaps );
  return result;
}

} // namespace qda
