#include "mapping/coupling_map.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace qda
{

coupling_map::coupling_map( uint32_t num_qubits,
                            std::vector<std::pair<uint32_t, uint32_t>> edges, std::string name )
    : num_qubits_( num_qubits ), edges_( std::move( edges ) ), name_( std::move( name ) ),
      neighbours_( num_qubits )
{
  for ( const auto& [control, target] : edges_ )
  {
    if ( control >= num_qubits_ || target >= num_qubits_ || control == target )
    {
      throw std::invalid_argument( "coupling_map: invalid edge" );
    }
    if ( !std::count( neighbours_[control].begin(), neighbours_[control].end(), target ) )
    {
      neighbours_[control].push_back( target );
      neighbours_[target].push_back( control );
    }
  }
}

bool coupling_map::has_directed_edge( uint32_t control, uint32_t target ) const
{
  return std::find( edges_.begin(), edges_.end(), std::pair{ control, target } ) != edges_.end();
}

bool coupling_map::are_adjacent( uint32_t a, uint32_t b ) const
{
  return std::count( neighbours_[a].begin(), neighbours_[a].end(), b ) != 0u;
}

std::vector<uint32_t> coupling_map::shortest_path( uint32_t from, uint32_t to ) const
{
  if ( from >= num_qubits_ || to >= num_qubits_ )
  {
    throw std::invalid_argument( "coupling_map::shortest_path: qubit out of range" );
  }
  if ( from == to )
  {
    return { from };
  }
  std::vector<int64_t> parent( num_qubits_, -1 );
  std::deque<uint32_t> queue{ from };
  parent[from] = static_cast<int64_t>( from );
  while ( !queue.empty() )
  {
    const uint32_t current = queue.front();
    queue.pop_front();
    for ( const auto next : neighbours_[current] )
    {
      if ( parent[next] != -1 )
      {
        continue;
      }
      parent[next] = current;
      if ( next == to )
      {
        std::vector<uint32_t> path{ to };
        uint32_t walk = to;
        while ( walk != from )
        {
          walk = static_cast<uint32_t>( parent[walk] );
          path.push_back( walk );
        }
        std::reverse( path.begin(), path.end() );
        return path;
      }
      queue.push_back( next );
    }
  }
  return {};
}

uint32_t coupling_map::distance( uint32_t from, uint32_t to ) const
{
  const auto path = shortest_path( from, to );
  if ( path.empty() )
  {
    return num_qubits_;
  }
  return static_cast<uint32_t>( path.size() - 1u );
}

std::vector<std::vector<uint32_t>> coupling_map::all_distances() const
{
  std::vector<std::vector<uint32_t>> distances( num_qubits_,
                                                std::vector<uint32_t>( num_qubits_,
                                                                       num_qubits_ ) );
  for ( uint32_t source = 0u; source < num_qubits_; ++source )
  {
    auto& row = distances[source];
    row[source] = 0u;
    std::deque<uint32_t> queue{ source };
    while ( !queue.empty() )
    {
      const uint32_t current = queue.front();
      queue.pop_front();
      for ( const auto next : neighbours_[current] )
      {
        if ( row[next] == num_qubits_ )
        {
          row[next] = row[current] + 1u;
          queue.push_back( next );
        }
      }
    }
  }
  return distances;
}

void coupling_map::add_swap_edge( uint32_t a, uint32_t b )
{
  if ( !are_adjacent( a, b ) )
  {
    throw std::invalid_argument( "coupling_map: swap edge between non-adjacent qubits" );
  }
  if ( !has_swap_edge( a, b ) )
  {
    swap_edges_.emplace_back( a, b );
  }
}

bool coupling_map::has_swap_edge( uint32_t a, uint32_t b ) const
{
  return std::find( swap_edges_.begin(), swap_edges_.end(), std::pair{ a, b } ) !=
             swap_edges_.end() ||
         std::find( swap_edges_.begin(), swap_edges_.end(), std::pair{ b, a } ) !=
             swap_edges_.end();
}

coupling_map coupling_map::with_native_swaps() const
{
  coupling_map result = *this;
  for ( uint32_t a = 0u; a < num_qubits_; ++a )
  {
    for ( const auto b : neighbours_[a] )
    {
      if ( a < b )
      {
        result.add_swap_edge( a, b );
      }
    }
  }
  return result;
}

coupling_map coupling_map::ibm_qx2()
{
  return coupling_map( 5u, { { 0u, 1u }, { 0u, 2u }, { 1u, 2u }, { 3u, 2u }, { 3u, 4u }, { 4u, 2u } },
                       "ibmqx2" );
}

coupling_map coupling_map::ibm_qx4()
{
  return coupling_map( 5u, { { 1u, 0u }, { 2u, 0u }, { 2u, 1u }, { 3u, 2u }, { 3u, 4u }, { 4u, 2u } },
                       "ibmqx4" );
}

coupling_map coupling_map::ibm_qx5()
{
  return coupling_map( 16u,
                       { { 1u, 0u },  { 1u, 2u },   { 2u, 3u },   { 3u, 4u },  { 3u, 14u },
                         { 5u, 4u },  { 6u, 5u },   { 6u, 7u },   { 6u, 11u }, { 7u, 10u },
                         { 8u, 7u },  { 9u, 8u },   { 9u, 10u },  { 11u, 10u }, { 12u, 5u },
                         { 12u, 11u }, { 12u, 13u }, { 13u, 4u }, { 13u, 14u }, { 15u, 0u },
                         { 15u, 2u }, { 15u, 14u } },
                       "ibmqx5" );
}

coupling_map coupling_map::linear( uint32_t num_qubits )
{
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for ( uint32_t q = 0u; q + 1u < num_qubits; ++q )
  {
    edges.emplace_back( q, q + 1u );
    edges.emplace_back( q + 1u, q );
  }
  return coupling_map( num_qubits, std::move( edges ), "linear" );
}

coupling_map coupling_map::ring( uint32_t num_qubits )
{
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for ( uint32_t q = 0u; q < num_qubits; ++q )
  {
    const uint32_t next = ( q + 1u ) % num_qubits;
    edges.emplace_back( q, next );
    edges.emplace_back( next, q );
  }
  return coupling_map( num_qubits, std::move( edges ), "ring" );
}

coupling_map coupling_map::fully_connected( uint32_t num_qubits )
{
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for ( uint32_t a = 0u; a < num_qubits; ++a )
  {
    for ( uint32_t b = 0u; b < num_qubits; ++b )
    {
      if ( a != b )
      {
        edges.emplace_back( a, b );
      }
    }
  }
  return coupling_map( num_qubits, std::move( edges ), "complete" );
}

} // namespace qda
