/*! \file ancilla.hpp
 *  \brief Helper-qubit bookkeeping for the hardware-mapping stage.
 *
 *  Lowering a multiple-controlled Toffoli needs scratch qubits, and
 *  their price depends on their state: a *clean* helper is known to be
 *  |0> and enables the cheap V-chain, while a *dirty* helper is any
 *  idle wire borrowed in an unknown state and returned unchanged
 *  (Barenco et al. [40]).  The ancilla manager owns both pools for one
 *  mapping run: clean helpers are appended after the data lines, reused
 *  across gates once released, and capped by an optional device qubit
 *  budget; dirty helpers are found among the wires a gate does not
 *  touch.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace qda
{

/*! \brief Clean/dirty helper-qubit pools of one mapping run. */
class ancilla_manager
{
public:
  /*! \brief Manages helpers for a circuit of `num_data_lines` wires.
   *
   *  `max_qubits` caps the total wire count (data plus helpers), e.g.
   *  at a device's qubit count; without it clean helpers grow freely.
   */
  explicit ancilla_manager( uint32_t num_data_lines,
                            std::optional<uint32_t> max_qubits = std::nullopt );

  uint32_t num_data_lines() const noexcept { return data_lines_; }

  /*! \brief Data lines plus helpers allocated so far. */
  uint32_t num_wires() const noexcept { return total_wires_; }

  /*! \brief Clean helper wires appended after the data lines. */
  uint32_t num_helpers() const noexcept { return total_wires_ - data_lines_; }

  /*! \brief Clean helpers obtainable right now (free pool + growth). */
  uint32_t clean_capacity() const noexcept;

  bool can_acquire_clean( uint32_t count ) const noexcept
  {
    return count <= clean_capacity();
  }

  /*! \brief Takes `count` clean (|0>) helpers, growing the circuit if
   *         the free pool runs short.  Throws std::invalid_argument
   *         when the qubit budget cannot cover the request.
   */
  std::vector<uint32_t> acquire_clean( uint32_t count );

  /*! \brief Returns helpers to the clean pool.  The caller guarantees
   *         they were restored to |0> (the V-chain uncomputes them).
   */
  void release_clean( const std::vector<uint32_t>& helpers );

  /*! \brief Idle wires a gate occupying `busy` wires could borrow. */
  uint32_t num_idle( const std::vector<uint32_t>& busy ) const;

  /*! \brief Picks `count` idle wires disjoint from `busy` to serve as
   *         dirty ancillas (returned in ascending order; data lines
   *         first, then free clean helpers).  Throws
   *         std::invalid_argument if fewer than `count` are idle.
   */
  std::vector<uint32_t> borrow_dirty( uint32_t count,
                                      const std::vector<uint32_t>& busy ) const;

private:
  std::vector<char> busy_mask( const std::vector<uint32_t>& busy ) const;

  uint32_t data_lines_;
  std::optional<uint32_t> max_qubits_;
  uint32_t total_wires_;
  std::vector<uint32_t> free_clean_;  /* released helpers, reused LIFO */
  std::vector<char> held_;            /* per-helper: currently acquired */
};

} // namespace qda
