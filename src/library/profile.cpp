#include "library/profile.hpp"

namespace qda::library
{

void region_profile::observe( uint64_t key, double cost_ms )
{
  auto& shard = shard_of( key );
  std::lock_guard<std::mutex> guard( shard.mutex );
  if ( shard.shapes.size() >= max_entries_per_shard &&
       shard.shapes.find( key ) == shard.shapes.end() )
  {
    shard.shapes.clear();
  }
  auto& hotness = shard.shapes[key];
  ++hotness.sightings;
  hotness.total_cost_ms += cost_ms;
}

shape_hotness region_profile::hotness( uint64_t key ) const
{
  auto& shard = shard_of( key );
  std::lock_guard<std::mutex> guard( shard.mutex );
  const auto it = shard.shapes.find( key );
  return it == shard.shapes.end() ? shape_hotness{} : it->second;
}

bool region_profile::is_hot( uint64_t key, double threshold_ms ) const
{
  const auto snapshot = hotness( key );
  return snapshot.sightings > 0u && snapshot.total_cost_ms >= threshold_ms;
}

void region_profile::observe_pass( const std::string& name, double elapsed_ms )
{
  std::lock_guard<std::mutex> guard( pass_mutex_ );
  auto& cost = passes_[name];
  ++cost.runs;
  cost.total_ms += elapsed_ms;
}

std::map<std::string, pass_cost> region_profile::pass_costs() const
{
  std::lock_guard<std::mutex> guard( pass_mutex_ );
  return { passes_.begin(), passes_.end() };
}

void region_profile::clear()
{
  for ( auto& shard : shards_ )
  {
    std::lock_guard<std::mutex> guard( shard.mutex );
    shard.shapes.clear();
  }
  std::lock_guard<std::mutex> guard( pass_mutex_ );
  passes_.clear();
}

} // namespace qda::library
