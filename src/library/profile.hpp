/*! \file profile.hpp
 *  \brief TraceAtlas-style hotness profile of the subcircuit library.
 *
 *  Admission into the library is profile-gated: a shape is only worth
 *  storing when its expected amortized saving -- sightings times the
 *  cost of optimizing it once -- clears a threshold.  The profile
 *  tracks exactly that product per fingerprint (sharded, mutex per
 *  shard), plus an aggregate per-pass cost table fed by the pass
 *  manager so the serving layer can report where compile time goes
 *  and which passes the library is amortizing.
 */
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qda::library
{

/*! \brief Sightings and cumulative optimization cost of one shape. */
struct shape_hotness
{
  uint64_t sightings = 0u;
  double total_cost_ms = 0.0;
};

/*! \brief Aggregate cost of one pass across profiled compilations. */
struct pass_cost
{
  uint64_t runs = 0u;
  double total_ms = 0.0;
};

/*! \brief Sharded frequency-times-cost profile. */
class region_profile
{
public:
  static constexpr size_t num_shards = 8u;
  /*! Per-shard entry bound; a full shard is reset (the profile is a
   *  heuristic -- losing counts costs re-observation, never safety). */
  static constexpr size_t max_entries_per_shard = 1u << 14u;

  /*! \brief Records one sighting of shape `key` costing `cost_ms`. */
  void observe( uint64_t key, double cost_ms );

  /*! \brief Hotness snapshot of shape `key` (zeros when unseen). */
  shape_hotness hotness( uint64_t key ) const;

  /*! \brief True when `sightings x cost` has cleared `threshold_ms`. */
  bool is_hot( uint64_t key, double threshold_ms ) const;

  /*! \brief Records one executed pass (pass-manager hook). */
  void observe_pass( const std::string& name, double elapsed_ms );

  /*! \brief Pass-name -> aggregate cost, sorted by name. */
  std::map<std::string, pass_cost> pass_costs() const;

  void clear();

private:
  struct shard
  {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, shape_hotness> shapes;
  };

  shard& shard_of( uint64_t key ) const
  {
    return shards_[( key * 0x9e3779b97f4a7c15ull >> 32u ) % num_shards];
  }

  mutable std::array<shard, num_shards> shards_;
  mutable std::mutex pass_mutex_;
  std::unordered_map<std::string, pass_cost> passes_;
};

} // namespace qda::library
