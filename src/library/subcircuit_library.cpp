#include "library/subcircuit_library.hpp"

#include "fault/failpoint.hpp"
#include "phasepoly/resynthesis.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace qda::library
{

namespace
{

constexpr char file_magic[8] = { 'Q', 'D', 'A', 'L', 'I', 'B', '1', '\n' };
constexpr uint32_t file_version = 1u;
constexpr uint32_t record_magic = 0x4c524543u;
constexpr uint64_t max_payload_size = uint64_t{ 1 } << 30u;
constexpr uint32_t invalid_wire = std::numeric_limits<uint32_t>::max();

structural_key to_structural( const std::array<uint64_t, 2>& key ) noexcept
{
  return structural_key{ key[0], key[1] };
}

/* ---- record serialization ---- */

void put_u32( std::string& out, uint32_t value )
{
  char buffer[sizeof( value )];
  std::memcpy( buffer, &value, sizeof( value ) );
  out.append( buffer, sizeof( value ) );
}

void put_u64( std::string& out, uint64_t value )
{
  char buffer[sizeof( value )];
  std::memcpy( buffer, &value, sizeof( value ) );
  out.append( buffer, sizeof( value ) );
}

void put_f64( std::string& out, double value )
{
  uint64_t bits;
  std::memcpy( &bits, &value, sizeof( bits ) );
  put_u64( out, bits );
}

struct byte_reader
{
  const char* data = nullptr;
  size_t size = 0u;
  size_t at = 0u;
  bool ok = true;

  bool take( void* out, size_t count )
  {
    if ( !ok || size - at < count )
    {
      ok = false;
      return false;
    }
    std::memcpy( out, data + at, count );
    at += count;
    return true;
  }
  uint32_t u32()
  {
    uint32_t value = 0u;
    take( &value, sizeof( value ) );
    return value;
  }
  uint64_t u64()
  {
    uint64_t value = 0u;
    take( &value, sizeof( value ) );
    return value;
  }
  double f64()
  {
    uint64_t bits = u64();
    double value = 0.0;
    std::memcpy( &value, &bits, sizeof( value ) );
    return value;
  }
  bool str( std::string& out, uint64_t count )
  {
    if ( !ok || size - at < count )
    {
      ok = false;
      return false;
    }
    out.assign( data + at, count );
    at += count;
    return true;
  }
};

std::string serialize_entry( const std::array<uint64_t, 2>& key, const library_entry& entry )
{
  std::string payload;
  put_u64( payload, key[0] );
  put_u64( payload, key[1] );
  put_u32( payload, static_cast<uint32_t>( entry.kind ) );
  put_u32( payload, entry.num_wires );
  put_u32( payload, entry.aux );
  put_f64( payload, entry.global_phase );
  put_f64( payload, entry.cost_ms );
  put_u64( payload, entry.costs.gates_before );
  put_u64( payload, entry.costs.gates_after );
  put_u64( payload, entry.costs.t_after );
  put_u64( payload, entry.costs.cnot_after );
  put_u64( payload, entry.costs.depth_after );
  put_u64( payload, entry.verify.size() );
  payload.append( entry.verify );
  put_u64( payload, entry.gates.size() );
  for ( const auto& gate : entry.gates )
  {
    payload.push_back( static_cast<char>( gate.kind ) );
    payload.push_back( static_cast<char>( gate.controls.size() ) );
    for ( const uint32_t control : gate.controls )
    {
      put_u32( payload, control );
    }
    put_u32( payload, gate.target );
    put_u32( payload, gate.target2 );
    put_f64( payload, gate.angle );
  }
  return payload;
}

bool parse_entry( byte_reader& reader, std::array<uint64_t, 2>& key, library_entry& entry )
{
  key[0] = reader.u64();
  key[1] = reader.u64();
  const uint32_t kind = reader.u32();
  if ( kind < 1u || kind > 4u )
  {
    return false;
  }
  entry.kind = static_cast<entry_kind>( kind );
  entry.num_wires = reader.u32();
  entry.aux = reader.u32();
  entry.global_phase = reader.f64();
  entry.cost_ms = reader.f64();
  entry.costs.gates_before = reader.u64();
  entry.costs.gates_after = reader.u64();
  entry.costs.t_after = reader.u64();
  entry.costs.cnot_after = reader.u64();
  entry.costs.depth_after = reader.u64();
  const uint64_t verify_size = reader.u64();
  if ( !reader.ok || verify_size > max_payload_size ||
       !reader.str( entry.verify, verify_size ) )
  {
    return false;
  }
  const uint64_t gate_count = reader.u64();
  if ( !reader.ok || gate_count > max_payload_size / 16u )
  {
    return false;
  }
  entry.gates.clear();
  entry.gates.reserve( gate_count );
  for ( uint64_t i = 0u; i < gate_count; ++i )
  {
    qgate gate;
    uint8_t raw_kind = 0u;
    uint8_t num_controls = 0u;
    reader.take( &raw_kind, 1u );
    reader.take( &num_controls, 1u );
    if ( !reader.ok || raw_kind > static_cast<uint8_t>( gate_kind::global_phase ) )
    {
      return false;
    }
    gate.kind = static_cast<gate_kind>( raw_kind );
    gate.controls.resize( num_controls );
    for ( auto& control : gate.controls )
    {
      control = reader.u32();
    }
    gate.target = reader.u32();
    gate.target2 = reader.u32();
    gate.angle = reader.f64();
    if ( !reader.ok )
    {
      return false;
    }
    entry.gates.push_back( std::move( gate ) );
  }
  return reader.ok;
}

/*! Remaps one stored gate's wires through `wire_of`; false when a
 *  label has no image (the splice is then abandoned, never wrong). */
template<typename WireFn>
bool remap_gate( qgate& gate, WireFn&& wire_of )
{
  if ( gate.kind == gate_kind::global_phase || gate.kind == gate_kind::barrier )
  {
    return true;
  }
  for ( auto& control : gate.controls )
  {
    control = wire_of( control );
    if ( control == invalid_wire )
    {
      return false;
    }
  }
  gate.target = wire_of( gate.target );
  if ( gate.target == invalid_wire )
  {
    return false;
  }
  if ( gate.kind == gate_kind::swap )
  {
    gate.target2 = wire_of( gate.target2 );
    return gate.target2 != invalid_wire;
  }
  gate.target2 = 0u;
  return true;
}

void count_after_costs( const std::vector<qgate>& gates, entry_costs& costs )
{
  costs.gates_after = gates.size();
  for ( const auto& gate : gates )
  {
    costs.t_after += gate.is_t_gate() ? 1u : 0u;
    costs.cnot_after += gate.kind == gate_kind::cx ? 1u : 0u;
  }
}

std::string ladder_spelling( uint32_t num_controls, bool relative_phase, bool keep_toffoli )
{
  std::string bytes = "mct1|clean|";
  put_u32( bytes, num_controls );
  bytes.push_back( relative_phase ? '1' : '0' );
  bytes.push_back( keep_toffoli ? '1' : '0' );
  return bytes;
}

} // namespace

subcircuit_library::subcircuit_library( library_options options )
    : options_( std::move( options ) ),
      entries_( options_.shards, options_.capacity )
{
  if ( !options_.path.empty() )
  {
    load_from_disk();
  }
}

subcircuit_library& subcircuit_library::instance()
{
  static subcircuit_library* library = [] {
    library_options options;
    if ( const char* path = std::getenv( "QDA_LIBRARY_PATH" ) )
    {
      options.path = path;
    }
    if ( const char* capacity = std::getenv( "QDA_LIBRARY_CAPACITY" ) )
    {
      options.capacity = std::strtoull( capacity, nullptr, 10 );
    }
    if ( const char* admit = std::getenv( "QDA_LIBRARY_ADMIT_MS" ) )
    {
      options.admit_cost_ms = std::strtod( admit, nullptr );
    }
    return new subcircuit_library( std::move( options ) );
  }();
  return *library;
}

std::shared_ptr<const library_entry>
subcircuit_library::find_verified( const std::array<uint64_t, 2>& key, entry_kind kind,
                                   std::string_view verify )
{
  auto entry = entries_.find( to_structural( key ) );
  if ( !entry )
  {
    return nullptr;
  }
  if ( entry->kind != kind || entry->verify != verify )
  {
    verify_mismatches_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.verify_mismatch" );
    return nullptr;
  }
  return entry;
}

std::shared_ptr<const library_entry>
subcircuit_library::lookup( const std::array<uint64_t, 2>& key, entry_kind kind,
                            std::string_view verify )
{
  auto entry = find_verified( key, kind, verify );
  if ( entry )
  {
    hits_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.hit" );
  }
  else
  {
    misses_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.miss" );
  }
  return entry;
}

void subcircuit_library::admit( const std::array<uint64_t, 2>& key, library_entry entry )
{
  if ( options_.capacity == 0u )
  {
    return;
  }
  admits_.fetch_add( 1u, std::memory_order_relaxed );
  QDA_COUNT( "library.admit" );
  if ( !options_.path.empty() )
  {
    append_to_disk( key, entry );
  }
  entries_.insert( to_structural( key ),
                   std::make_shared<const library_entry>( std::move( entry ) ) );
}

bool subcircuit_library::note_miss( const std::array<uint64_t, 2>& key, double cost_ms )
{
  profile_.observe( key[0], cost_ms );
  if ( profile_.is_hot( key[0], options_.admit_cost_ms ) )
  {
    return true;
  }
  rejected_cold_.fetch_add( 1u, std::memory_order_relaxed );
  QDA_COUNT( "library.reject_cold" );
  return false;
}

/* ---- tpar circuit tier ---- */

bool subcircuit_library::splice_circuit( const qcircuit& in, std::string_view tag,
                                         phasepoly::splice_probe& probe, qcircuit& out )
{
  fingerprint_circuit( in, tag, probe );
  auto entry = lookup( probe.key, entry_kind::tpar_circuit, probe.bytes );
  if ( !entry || entry->num_wires != probe.wires.size() )
  {
    return false;
  }
  QDA_TRACE_SPAN_NAMED( splice_span, "library.splice" );
  splice_span.attr( "level", "tpar-circuit" );
  splice_span.attr( "gates", static_cast<int64_t>( entry->gates.size() ) );
  out = qcircuit( in.num_qubits() );
  const auto wire_of = [&]( uint32_t local ) {
    return local < probe.wires.size() ? probe.wires[local] : invalid_wire;
  };
  for ( auto gate : entry->gates )
  {
    if ( !remap_gate( gate, wire_of ) )
    {
      unsplicable_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.unsplicable" );
      return false;
    }
    out.add_gate( gate );
  }
  return true;
}

void subcircuit_library::offer_circuit( const phasepoly::splice_probe& probe,
                                        const qcircuit& out, double cost_ms )
{
  if ( !probe.valid || !note_miss( probe.key, cost_ms ) )
  {
    return;
  }
  library_entry entry;
  entry.kind = entry_kind::tpar_circuit;
  entry.num_wires = static_cast<uint32_t>( probe.wires.size() );
  entry.verify = probe.bytes;
  entry.cost_ms = cost_ms;
  entry.costs.gates_before = probe.before[0];

  std::vector<uint32_t> local_of;
  for ( const uint32_t qubit : probe.wires )
  {
    if ( qubit >= local_of.size() )
    {
      local_of.resize( qubit + 1u, invalid_wire );
    }
  }
  for ( uint32_t local = 0u; local < probe.wires.size(); ++local )
  {
    local_of[probe.wires[local]] = local;
  }
  const auto local = [&]( uint32_t qubit ) {
    return qubit < local_of.size() ? local_of[qubit] : invalid_wire;
  };
  entry.gates.reserve( out.num_gates() );
  for ( const auto& view : out.gates() )
  {
    qgate gate = view.materialize();
    if ( !remap_gate( gate, local ) )
    {
      unsplicable_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.unsplicable" );
      return;
    }
    entry.gates.push_back( std::move( gate ) );
  }
  count_after_costs( entry.gates, entry.costs );
  entry.costs.depth_after = compute_statistics( out ).depth;
  admit( probe.key, std::move( entry ) );
}

/* ---- region tier ---- */

bool subcircuit_library::lookup_region( const phasepoly::phase_polynomial& poly,
                                        std::string_view tag,
                                        phasepoly::splice_probe& probe,
                                        phasepoly::parity_network& out )
{
  fingerprint_phase_polynomial( poly, tag, probe );
  auto entry = lookup( probe.key, entry_kind::region, probe.bytes );
  if ( !entry || entry->num_wires != probe.wires.size() )
  {
    return false;
  }
  QDA_TRACE_SPAN_NAMED( splice_span, "library.splice" );
  splice_span.attr( "level", "region" );
  out.gates.clear();
  out.global_phase = entry->global_phase;
  const auto wire_of = [&]( uint32_t canonical ) {
    return canonical < probe.wires.size() ? probe.wires[canonical] : invalid_wire;
  };
  out.gates.reserve( entry->gates.size() );
  for ( auto gate : entry->gates )
  {
    if ( !remap_gate( gate, wire_of ) )
    {
      unsplicable_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.unsplicable" );
      return false;
    }
    out.gates.push_back( std::move( gate ) );
  }
  return true;
}

void subcircuit_library::offer_region( const phasepoly::splice_probe& probe,
                                       const phasepoly::parity_network& network,
                                       double cost_ms )
{
  if ( !probe.valid || !note_miss( probe.key, cost_ms ) )
  {
    return;
  }
  library_entry entry;
  entry.kind = entry_kind::region;
  entry.num_wires = static_cast<uint32_t>( probe.wires.size() );
  entry.verify = probe.bytes;
  entry.global_phase = network.global_phase;
  entry.cost_ms = cost_ms;
  entry.costs.gates_before = probe.before[0];
  const auto canonical_of = [&]( uint32_t local ) {
    return local < probe.perm.size() ? probe.perm[local] : invalid_wire;
  };
  entry.gates.reserve( network.gates.size() );
  for ( auto gate : network.gates )
  {
    if ( !remap_gate( gate, canonical_of ) )
    {
      unsplicable_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.unsplicable" );
      return;
    }
    entry.gates.push_back( std::move( gate ) );
  }
  count_after_costs( entry.gates, entry.costs );
  admit( probe.key, std::move( entry ) );
}

/* ---- rptm tier ---- */

bool subcircuit_library::splice_rev_mapping( const rev_circuit& in, std::string_view tag,
                                             phasepoly::splice_probe& probe, qcircuit& out,
                                             uint32_t& num_helpers )
{
  fingerprint_rev_circuit( in, tag, probe );
  auto entry = lookup( probe.key, entry_kind::rptm_circuit, probe.bytes );
  if ( !entry || entry->aux > entry->num_wires ||
       entry->num_wires - entry->aux != probe.wires.size() )
  {
    return false;
  }
  QDA_TRACE_SPAN_NAMED( splice_span, "library.splice" );
  splice_span.attr( "level", "rptm-circuit" );
  splice_span.attr( "gates", static_cast<int64_t>( entry->gates.size() ) );
  const uint32_t num_lines = in.num_lines();
  const uint32_t touched = entry->num_wires - entry->aux;
  out = qcircuit( num_lines + entry->aux );
  const auto wire_of = [&]( uint32_t local ) {
    if ( local < touched )
    {
      return probe.wires[local];
    }
    return local < entry->num_wires ? num_lines + ( local - touched ) : invalid_wire;
  };
  for ( auto gate : entry->gates )
  {
    if ( !remap_gate( gate, wire_of ) )
    {
      unsplicable_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.unsplicable" );
      return false;
    }
    out.add_gate( gate );
  }
  num_helpers = entry->aux;
  return true;
}

void subcircuit_library::offer_rev_mapping( const phasepoly::splice_probe& probe,
                                            const qcircuit& mapped, uint32_t num_lines,
                                            uint32_t num_helpers, double cost_ms )
{
  if ( !probe.valid || !note_miss( probe.key, cost_ms ) )
  {
    return;
  }
  library_entry entry;
  entry.kind = entry_kind::rptm_circuit;
  const uint32_t touched = static_cast<uint32_t>( probe.wires.size() );
  entry.num_wires = touched + num_helpers;
  entry.aux = num_helpers;
  entry.verify = probe.bytes;
  entry.cost_ms = cost_ms;
  entry.costs.gates_before = probe.before[0];

  std::vector<uint32_t> local_of( num_lines, invalid_wire );
  for ( uint32_t local = 0u; local < touched; ++local )
  {
    local_of[probe.wires[local]] = local;
  }
  const auto local = [&]( uint32_t wire ) {
    if ( wire < num_lines )
    {
      return local_of[wire];
    }
    const uint32_t helper = wire - num_lines;
    return helper < num_helpers ? touched + helper : invalid_wire;
  };
  entry.gates.reserve( mapped.num_gates() );
  for ( const auto& view : mapped.gates() )
  {
    qgate gate = view.materialize();
    if ( !remap_gate( gate, local ) )
    {
      unsplicable_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.unsplicable" );
      return;
    }
    entry.gates.push_back( std::move( gate ) );
  }
  count_after_costs( entry.gates, entry.costs );
  entry.costs.depth_after = compute_statistics( mapped ).depth;
  admit( probe.key, std::move( entry ) );
}

/* ---- MCT ladder tier ---- */

std::shared_ptr<const library_entry>
subcircuit_library::lookup_ladder( uint32_t num_controls, bool relative_phase,
                                   bool keep_toffoli )
{
  const auto spelling = ladder_spelling( num_controls, relative_phase, keep_toffoli );
  return lookup( fingerprint_bytes( spelling ), entry_kind::mct_ladder, spelling );
}

void subcircuit_library::offer_ladder( uint32_t num_controls, bool relative_phase,
                                       bool keep_toffoli, std::vector<qgate> gates )
{
  /* one entry per (k, options): tiny and always worth keeping, so the
   * hotness gate is skipped */
  auto spelling = ladder_spelling( num_controls, relative_phase, keep_toffoli );
  library_entry entry;
  entry.kind = entry_kind::mct_ladder;
  entry.num_wires = 2u * num_controls - 1u;
  entry.aux = num_controls;
  entry.verify = spelling;
  entry.gates = std::move( gates );
  count_after_costs( entry.gates, entry.costs );
  admit( fingerprint_bytes( spelling ), std::move( entry ) );
}

/* ---- persistence ---- */

size_t subcircuit_library::set_path( std::string path )
{
  {
    std::lock_guard<std::mutex> guard( file_mutex_ );
    options_.path = std::move( path );
  }
  return load_from_disk();
}

size_t subcircuit_library::load_from_disk()
{
  std::lock_guard<std::mutex> guard( file_mutex_ );
  if ( options_.path.empty() )
  {
    return 0u;
  }
  try
  {
    QDA_FAILPOINT( "library.load" );
  }
  catch ( ... )
  {
    load_failures_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.load_failed" );
    return 0u;
  }

  std::FILE* file = std::fopen( options_.path.c_str(), "rb" );
  if ( !file )
  {
    /* a missing store is a normal cold start, not damage */
    return 0u;
  }

  char magic[sizeof( file_magic )];
  uint32_t version = 0u;
  if ( std::fread( magic, 1u, sizeof( magic ), file ) != sizeof( magic ) ||
       std::memcmp( magic, file_magic, sizeof( magic ) ) != 0 )
  {
    load_failures_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.load_failed" );
    std::fclose( file );
    return 0u;
  }
  if ( std::fread( &version, 1u, sizeof( version ), file ) != sizeof( version ) ||
       version != file_version )
  {
    version_mismatches_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.version_mismatch" );
    std::fclose( file );
    return 0u;
  }

  size_t loaded = 0u;
  std::string payload;
  while ( true )
  {
    uint32_t magic_word = 0u;
    const size_t got = std::fread( &magic_word, 1u, sizeof( magic_word ), file );
    if ( got == 0u )
    {
      break; /* clean end of store */
    }
    uint64_t payload_size = 0u;
    uint64_t checksum = 0u;
    if ( got != sizeof( magic_word ) || magic_word != record_magic ||
         std::fread( &payload_size, 1u, sizeof( payload_size ), file ) !=
             sizeof( payload_size ) ||
         payload_size > max_payload_size )
    {
      load_truncated_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.load_truncated" );
      break;
    }
    payload.resize( payload_size );
    if ( std::fread( payload.data(), 1u, payload_size, file ) != payload_size ||
         std::fread( &checksum, 1u, sizeof( checksum ), file ) != sizeof( checksum ) ||
         fingerprint_bytes( payload )[0] != checksum )
    {
      load_truncated_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.load_truncated" );
      break;
    }
    byte_reader reader{ payload.data(), payload.size() };
    std::array<uint64_t, 2> key{};
    library_entry entry;
    if ( !parse_entry( reader, key, entry ) )
    {
      load_truncated_.fetch_add( 1u, std::memory_order_relaxed );
      QDA_COUNT( "library.load_truncated" );
      break;
    }
    entries_.insert( to_structural( key ),
                     std::make_shared<const library_entry>( std::move( entry ) ) );
    ++loaded;
  }
  std::fclose( file );
  loaded_entries_.fetch_add( loaded, std::memory_order_relaxed );
  QDA_COUNT_N( "library.entries_loaded", loaded );
  return loaded;
}

void subcircuit_library::append_to_disk( const std::array<uint64_t, 2>& key,
                                         const library_entry& entry )
{
  std::lock_guard<std::mutex> guard( file_mutex_ );
  try
  {
    QDA_FAILPOINT( "library.store" );
  }
  catch ( ... )
  {
    store_failures_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.store_failed" );
    return;
  }

  std::FILE* file = std::fopen( options_.path.c_str(), "ab" );
  if ( !file )
  {
    store_failures_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.store_failed" );
    return;
  }
  bool wrote = true;
  std::fseek( file, 0, SEEK_END );
  const long position = std::ftell( file );
  if ( position == 0 )
  {
    wrote = std::fwrite( file_magic, 1u, sizeof( file_magic ), file ) ==
                sizeof( file_magic ) &&
            std::fwrite( &file_version, 1u, sizeof( file_version ), file ) ==
                sizeof( file_version );
  }
  const auto payload = serialize_entry( key, entry );
  const uint64_t payload_size = payload.size();
  const uint64_t checksum = fingerprint_bytes( payload )[0];
  wrote = wrote &&
          std::fwrite( &record_magic, 1u, sizeof( record_magic ), file ) ==
              sizeof( record_magic ) &&
          std::fwrite( &payload_size, 1u, sizeof( payload_size ), file ) ==
              sizeof( payload_size ) &&
          std::fwrite( payload.data(), 1u, payload.size(), file ) == payload.size() &&
          std::fwrite( &checksum, 1u, sizeof( checksum ), file ) == sizeof( checksum );
  if ( std::fclose( file ) != 0 || !wrote )
  {
    store_failures_.fetch_add( 1u, std::memory_order_relaxed );
    QDA_COUNT( "library.store_failed" );
  }
}

/* ---- introspection ---- */

library_statistics subcircuit_library::statistics() const
{
  library_statistics stats;
  stats.hits = hits_.load( std::memory_order_relaxed );
  stats.misses = misses_.load( std::memory_order_relaxed );
  stats.verify_mismatches = verify_mismatches_.load( std::memory_order_relaxed );
  stats.admits = admits_.load( std::memory_order_relaxed );
  stats.rejected_cold = rejected_cold_.load( std::memory_order_relaxed );
  stats.unsplicable = unsplicable_.load( std::memory_order_relaxed );
  stats.loaded_entries = loaded_entries_.load( std::memory_order_relaxed );
  stats.load_failures = load_failures_.load( std::memory_order_relaxed );
  stats.load_truncated = load_truncated_.load( std::memory_order_relaxed );
  stats.version_mismatches = version_mismatches_.load( std::memory_order_relaxed );
  stats.store_failures = store_failures_.load( std::memory_order_relaxed );
  const auto memory = entries_.statistics();
  stats.entries = memory.entries;
  stats.evictions = memory.evictions;
  return stats;
}

void subcircuit_library::clear()
{
  entries_.clear();
  profile_.clear();
  hits_.store( 0u, std::memory_order_relaxed );
  misses_.store( 0u, std::memory_order_relaxed );
  verify_mismatches_.store( 0u, std::memory_order_relaxed );
  admits_.store( 0u, std::memory_order_relaxed );
  rejected_cold_.store( 0u, std::memory_order_relaxed );
  unsplicable_.store( 0u, std::memory_order_relaxed );
  loaded_entries_.store( 0u, std::memory_order_relaxed );
  load_failures_.store( 0u, std::memory_order_relaxed );
  load_truncated_.store( 0u, std::memory_order_relaxed );
  version_mismatches_.store( 0u, std::memory_order_relaxed );
  store_failures_.store( 0u, std::memory_order_relaxed );
}

std::string format_library_report( const library_statistics& stats )
{
  char line[256];
  std::snprintf( line, sizeof( line ),
                 "library: %llu hits / %llu misses (%llu admits, %llu entries, "
                 "%llu loaded, %llu load faults)",
                 static_cast<unsigned long long>( stats.hits ),
                 static_cast<unsigned long long>( stats.misses ),
                 static_cast<unsigned long long>( stats.admits ),
                 static_cast<unsigned long long>( stats.entries ),
                 static_cast<unsigned long long>( stats.loaded_entries ),
                 static_cast<unsigned long long>( stats.load_failures +
                                                  stats.load_truncated +
                                                  stats.version_mismatches ) );
  return line;
}

} // namespace qda::library
