/*! \file subcircuit_library.hpp
 *  \brief Persistent cross-compilation library of optimized subcircuits.
 *
 *  ROADMAP item 2: the middle tier between tpar's per-spelling memo
 *  (one circuit) and the compile server's whole-compilation result
 *  cache (one exact pipeline).  Recurring shapes -- whole rptm/tpar
 *  pass inputs, phase-polynomial regions, MCT V-chain ladders -- are
 *  fingerprinted canonically (library/fingerprint.hpp), admitted when
 *  the hotness profile says the amortized saving is worth it
 *  (library/profile.hpp), and spliced back on later sightings instead
 *  of re-running synthesis.  Storage is two-tier:
 *
 *   - in-memory: `server::sharded_lru` keyed on the dual-seed
 *     fingerprint, shared by every pass manager in the process;
 *   - on disk (`QDA_LIBRARY_PATH`): a versioned append-only record
 *     file loaded at startup, giving warm starts across processes.
 *     Loads are contained: a truncated tail keeps the valid prefix, a
 *     corrupt or version-mismatched file cold-starts with a telemetry
 *     counter, and failpoint site `library.load` injects both.
 *
 *  Every hit is verified byte-exactly against the stored canonical
 *  spelling before splicing; the hash only buckets.
 */
#pragma once

#include "library/fingerprint.hpp"
#include "library/profile.hpp"
#include "phasepoly/splice.hpp"
#include "quantum/qcircuit.hpp"
#include "reversible/rev_circuit.hpp"
#include "server/sharded_lru.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qda::library
{

/*! \brief What one library entry replaces. */
enum class entry_kind : uint32_t
{
  region = 1u,       /*!< one phase-polynomial region (canonical labels) */
  tpar_circuit = 2u, /*!< a whole tpar input (first-touch labels) */
  rptm_circuit = 3u, /*!< a whole rptm input (first-touch labels + helpers) */
  mct_ladder = 4u    /*!< one clean V-chain MCT lowering */
};

/*! \brief Cost metadata of one entry (before -> after the stored form). */
struct entry_costs
{
  uint64_t gates_before = 0u;
  uint64_t gates_after = 0u;
  uint64_t t_after = 0u;
  uint64_t cnot_after = 0u;
  uint64_t depth_after = 0u;
};

/*! \brief One stored optimized form, gates over local labels. */
struct library_entry
{
  entry_kind kind = entry_kind::region;
  uint32_t num_wires = 0u; /*!< size of the local label space */
  uint32_t aux = 0u;       /*!< rptm: helper count; mct: control count */
  std::string verify;      /*!< canonical spelling, compared on every hit */
  std::vector<qgate> gates;
  double global_phase = 0.0; /*!< region networks only */
  entry_costs costs;
  double cost_ms = 0.0; /*!< what synthesizing this form once cost */
};

/*! \brief Counter snapshot of one library. */
struct library_statistics
{
  uint64_t hits = 0u;
  uint64_t misses = 0u;
  uint64_t verify_mismatches = 0u; /*!< bucket hit, spelling differed */
  uint64_t admits = 0u;
  uint64_t rejected_cold = 0u; /*!< offers below the hotness threshold */
  uint64_t unsplicable = 0u;   /*!< offers/hits dropped defensively */
  uint64_t entries = 0u;
  uint64_t evictions = 0u;
  uint64_t loaded_entries = 0u;
  uint64_t load_failures = 0u;   /*!< corrupt header / injected fault */
  uint64_t load_truncated = 0u;  /*!< torn tail dropped, prefix kept */
  uint64_t version_mismatches = 0u;
  uint64_t store_failures = 0u;
};

/*! \brief Configuration of a subcircuit library. */
struct library_options
{
  size_t shards = 8u;
  size_t capacity = 4096u; /*!< in-memory entries; 0 disables storage */
  /*! Admission threshold: cumulative sightings x synthesis cost must
   *  reach this many milliseconds before a shape is stored.  Whole
   *  pass inputs clear it on first sighting; trivial regions have to
   *  earn their slot. */
  double admit_cost_ms = 0.05;
  std::string path; /*!< append-only store; empty = memory only */
};

/*! \brief The subcircuit library; implements the tpar splice hook. */
class subcircuit_library final : public phasepoly::splice_provider
{
public:
  explicit subcircuit_library( library_options options = {} );

  /*! \brief Process-wide library, configured from `QDA_LIBRARY_PATH`,
   *         `QDA_LIBRARY_CAPACITY` and `QDA_LIBRARY_ADMIT_MS`.
   */
  static subcircuit_library& instance();

  /* ---- core keyed access ---- */

  /*! \brief Verified lookup: nullptr on miss or spelling mismatch. */
  std::shared_ptr<const library_entry> lookup( const std::array<uint64_t, 2>& key,
                                               entry_kind kind,
                                               std::string_view verify );

  /*! \brief Stores `entry` (memory tier + disk append when persistent).
   *         Not profile-gated; callers gate via `note_miss`.
   */
  void admit( const std::array<uint64_t, 2>& key, library_entry entry );

  /*! \brief Records a sighting of a missed shape and reports whether
   *         its accumulated hotness now clears the admission bar.
   */
  bool note_miss( const std::array<uint64_t, 2>& key, double cost_ms );

  /* ---- phasepoly::splice_provider ---- */

  bool splice_circuit( const qcircuit& in, std::string_view tag,
                       phasepoly::splice_probe& probe, qcircuit& out ) override;
  void offer_circuit( const phasepoly::splice_probe& probe, const qcircuit& out,
                      double cost_ms ) override;
  bool lookup_region( const phasepoly::phase_polynomial& poly, std::string_view tag,
                      phasepoly::splice_probe& probe,
                      phasepoly::parity_network& out ) override;
  void offer_region( const phasepoly::splice_probe& probe,
                     const phasepoly::parity_network& network, double cost_ms ) override;

  /* ---- mapping-level splices (rptm) ---- */

  /*! \brief Whole-rptm-input splice: on a verified hit rebuilds the
   *         mapped circuit (touched lines relabeled back, helpers
   *         appended after `in.num_lines()`) and returns true.
   */
  bool splice_rev_mapping( const rev_circuit& in, std::string_view tag,
                           phasepoly::splice_probe& probe, qcircuit& out,
                           uint32_t& num_helpers );
  void offer_rev_mapping( const phasepoly::splice_probe& probe, const qcircuit& mapped,
                          uint32_t num_lines, uint32_t num_helpers, double cost_ms );

  /*! \brief Clean V-chain ladder of `k` controls: gates over local
   *         labels [controls 0..k-1, target k, helpers k+1..2k-2].
   */
  std::shared_ptr<const library_entry> lookup_ladder( uint32_t num_controls,
                                                      bool relative_phase,
                                                      bool keep_toffoli );
  void offer_ladder( uint32_t num_controls, bool relative_phase, bool keep_toffoli,
                     std::vector<qgate> gates );

  /* ---- persistence ---- */

  /*! \brief Points the library at `path` and loads whatever valid
   *         prefix it holds (contained: never throws for file damage).
   *         Returns the number of entries loaded.
   */
  size_t set_path( std::string path );

  /*! \brief Re-reads the store (e.g. after another process appended). */
  size_t load_from_disk();

  const std::string& path() const noexcept { return options_.path; }

  /* ---- introspection ---- */

  region_profile& profile() noexcept { return profile_; }
  library_statistics statistics() const;
  void clear(); /*!< memory tier + profile + counters; disk untouched */

private:
  std::shared_ptr<const library_entry> find_verified( const std::array<uint64_t, 2>& key,
                                                      entry_kind kind,
                                                      std::string_view verify );
  void append_to_disk( const std::array<uint64_t, 2>& key, const library_entry& entry );

  library_options options_;
  server::sharded_lru<library_entry> entries_;
  region_profile profile_;
  std::mutex file_mutex_;

  std::atomic<uint64_t> hits_{ 0u };
  std::atomic<uint64_t> misses_{ 0u };
  std::atomic<uint64_t> verify_mismatches_{ 0u };
  std::atomic<uint64_t> admits_{ 0u };
  std::atomic<uint64_t> rejected_cold_{ 0u };
  std::atomic<uint64_t> unsplicable_{ 0u };
  std::atomic<uint64_t> loaded_entries_{ 0u };
  std::atomic<uint64_t> load_failures_{ 0u };
  std::atomic<uint64_t> load_truncated_{ 0u };
  std::atomic<uint64_t> version_mismatches_{ 0u };
  std::atomic<uint64_t> store_failures_{ 0u };
};

/*! \brief One-line human-readable summary (hits / misses / admits). */
std::string format_library_report( const library_statistics& stats );

} // namespace qda::library
