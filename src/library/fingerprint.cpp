#include "library/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>

namespace qda::library
{

namespace
{

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr uint64_t fnv_check_seed = 0x9e3779b97f4a7c15ull;
constexpr uint64_t fnv_prime = 0x100000001b3ull;

uint64_t fnv_accumulate( uint64_t state, const void* data, size_t size ) noexcept
{
  const auto* bytes = static_cast<const unsigned char*>( data );
  for ( size_t i = 0u; i < size; ++i )
  {
    state ^= bytes[i];
    state *= fnv_prime;
  }
  return state;
}

/*! splitmix64 finalizer: decorrelates WL colors between rounds. */
uint64_t mix( uint64_t value ) noexcept
{
  value += 0x9e3779b97f4a7c15ull;
  value = ( value ^ ( value >> 30u ) ) * 0xbf58476d1ce4e5b9ull;
  value = ( value ^ ( value >> 27u ) ) * 0x94d049bb133111ebull;
  return value ^ ( value >> 31u );
}

void append_u8( std::string& bytes, uint8_t value )
{
  bytes.push_back( static_cast<char>( value ) );
}

void append_u32( std::string& bytes, uint32_t value )
{
  char buffer[sizeof( value )];
  std::memcpy( buffer, &value, sizeof( value ) );
  bytes.append( buffer, sizeof( value ) );
}

void append_u64( std::string& bytes, uint64_t value )
{
  char buffer[sizeof( value )];
  std::memcpy( buffer, &value, sizeof( value ) );
  bytes.append( buffer, sizeof( value ) );
}

void append_angle( std::string& bytes, double angle )
{
  /* exact bit pattern: the verified spelling never tolerates angle
   * drift, so a splice reproduces the stored form bit-for-bit */
  uint64_t value;
  std::memcpy( &value, &angle, sizeof( value ) );
  append_u64( bytes, value );
}

void finish_probe( phasepoly::splice_probe& probe )
{
  probe.key = fingerprint_bytes( probe.bytes );
  probe.valid = true;
}

/* ---- WL-style canonicalization of a phase polynomial ---- */

/*! One hyperedge of the region graph: a phase term (colored by its
 *  quantized angle) or an output row (colored by its anchor wire). */
struct poly_edge
{
  std::vector<uint32_t> vars;
  uint64_t color = 0u;
  uint32_t anchor = 0u;     /* rows only: the output wire */
  bool is_row = false;
};

struct poly_graph
{
  uint32_t num_vars = 0u;
  std::vector<poly_edge> edges;
  std::vector<std::vector<uint32_t>> incident; /* var -> edge indices */
  std::vector<uint8_t> constant_bit;
};

poly_graph build_graph( const phasepoly::phase_polynomial& poly )
{
  poly_graph graph;
  graph.num_vars = poly.num_vars;
  graph.incident.resize( poly.num_vars );
  graph.constant_bit.resize( poly.num_vars, 0u );
  poly.output_constants.for_each_set_bit( [&]( uint32_t var ) {
    if ( var < poly.num_vars )
    {
      graph.constant_bit[var] = 1u;
    }
  } );

  for ( const auto& term : poly.terms )
  {
    poly_edge edge;
    edge.color = mix( 0x7465726du ^ static_cast<uint64_t>( quantize_angle( term.angle ) ) );
    term.parity.for_each_set_bit( [&]( uint32_t var ) { edge.vars.push_back( var ); } );
    const auto index = static_cast<uint32_t>( graph.edges.size() );
    for ( const uint32_t var : edge.vars )
    {
      graph.incident[var].push_back( index );
    }
    graph.edges.push_back( std::move( edge ) );
  }
  for ( uint32_t row = 0u; row < poly.num_vars; ++row )
  {
    poly_edge edge;
    edge.is_row = true;
    edge.anchor = row;
    edge.color = mix( 0x726f77u );
    poly.output_linear[row].for_each_set_bit(
        [&]( uint32_t var ) { edge.vars.push_back( var ); } );
    const auto index = static_cast<uint32_t>( graph.edges.size() );
    for ( const uint32_t var : edge.vars )
    {
      graph.incident[var].push_back( index );
    }
    graph.edges.push_back( std::move( edge ) );
  }
  return graph;
}

size_t count_classes( const std::vector<uint64_t>& colors )
{
  auto sorted = colors;
  std::sort( sorted.begin(), sorted.end() );
  return static_cast<size_t>( std::unique( sorted.begin(), sorted.end() ) - sorted.begin() );
}

/*! One-round WL refinement; returns the number of color classes. */
size_t refine_to_stable( const poly_graph& graph, std::vector<uint64_t>& colors )
{
  const uint32_t m = graph.num_vars;
  size_t classes = count_classes( colors );
  std::vector<uint64_t> next( m );
  std::vector<uint64_t> signature;
  for ( uint32_t round = 0u; round < m + 2u; ++round )
  {
    /* commutative member digest per edge (order-free multiset hash) */
    std::vector<uint64_t> edge_sum( graph.edges.size(), 0u );
    std::vector<uint64_t> edge_xor( graph.edges.size(), 0u );
    for ( size_t e = 0u; e < graph.edges.size(); ++e )
    {
      for ( const uint32_t var : graph.edges[e].vars )
      {
        const uint64_t mixed = mix( colors[var] );
        edge_sum[e] += mixed;
        edge_xor[e] ^= mixed;
      }
    }
    for ( uint32_t var = 0u; var < m; ++var )
    {
      signature.clear();
      for ( const uint32_t e : graph.incident[var] )
      {
        const auto& edge = graph.edges[e];
        const uint64_t anchor_color = edge.is_row ? mix( colors[edge.anchor] ) : 0u;
        signature.push_back( mix( edge.color ^ mix( edge_sum[e] ) ^
                                  mix( edge_xor[e] + anchor_color ) ) );
      }
      /* the row anchored here sees its member digest even when the var
       * is not a member (identity rows distinguish wires) */
      const auto& row = graph.edges[graph.edges.size() - m + var];
      signature.push_back( mix( 0x616e63u ^ mix( edge_sum[graph.edges.size() - m + var] ) ^
                                row.color ) );
      std::sort( signature.begin(), signature.end() );
      uint64_t state = colors[var];
      for ( const uint64_t item : signature )
      {
        state = fnv_accumulate( state, &item, sizeof( item ) );
      }
      next[var] = state;
    }
    colors = next;
    const size_t refined = count_classes( colors );
    if ( refined == classes )
    {
      return refined;
    }
    classes = refined;
    if ( classes == m )
    {
      return classes;
    }
  }
  return classes;
}

std::vector<uint32_t> order_of( const std::vector<uint64_t>& colors )
{
  std::vector<uint32_t> order( colors.size() );
  for ( uint32_t var = 0u; var < colors.size(); ++var )
  {
    order[var] = var;
  }
  std::stable_sort( order.begin(), order.end(), [&]( uint32_t a, uint32_t b ) {
    return colors[a] != colors[b] ? colors[a] < colors[b] : a < b;
  } );
  return order;
}

/*! Serializes the polynomial under the labeling `order` (canonical
 *  label c = variable order[c]). */
std::string serialize_poly( const phasepoly::phase_polynomial& poly, std::string_view tag,
                            const std::vector<uint32_t>& order )
{
  const uint32_t m = poly.num_vars;
  std::vector<uint32_t> to_canonical( m );
  for ( uint32_t c = 0u; c < m; ++c )
  {
    to_canonical[order[c]] = c;
  }

  std::string bytes;
  bytes.append( "poly1|" );
  bytes.append( tag );
  bytes.push_back( '|' );
  append_u32( bytes, m );

  for ( uint32_t c = 0u; c < m; ++c )
  {
    append_u8( bytes, poly.output_constants.test( order[c] ) ? 1u : 0u );
  }
  std::vector<uint32_t> members;
  for ( uint32_t c = 0u; c < m; ++c )
  {
    members.clear();
    poly.output_linear[order[c]].for_each_set_bit(
        [&]( uint32_t var ) { members.push_back( to_canonical[var] ); } );
    std::sort( members.begin(), members.end() );
    append_u32( bytes, static_cast<uint32_t>( members.size() ) );
    for ( const uint32_t member : members )
    {
      append_u32( bytes, member );
    }
  }

  std::vector<std::string> terms;
  terms.reserve( poly.terms.size() );
  for ( const auto& term : poly.terms )
  {
    members.clear();
    term.parity.for_each_set_bit(
        [&]( uint32_t var ) { members.push_back( to_canonical[var] ); } );
    std::sort( members.begin(), members.end() );
    std::string spelled;
    append_u32( spelled, static_cast<uint32_t>( members.size() ) );
    for ( const uint32_t member : members )
    {
      append_u32( spelled, member );
    }
    append_angle( spelled, term.angle );
    terms.push_back( std::move( spelled ) );
  }
  std::sort( terms.begin(), terms.end() );
  append_u32( bytes, static_cast<uint32_t>( terms.size() ) );
  for ( const auto& term : terms )
  {
    bytes.append( term );
  }
  append_angle( bytes, poly.global_phase );
  return bytes;
}

} // namespace

std::array<uint64_t, 2> fingerprint_bytes( std::string_view bytes ) noexcept
{
  return { fnv_accumulate( fnv_offset, bytes.data(), bytes.size() ),
           fnv_accumulate( fnv_check_seed, bytes.data(), bytes.size() ) };
}

int64_t quantize_angle( double angle ) noexcept
{
  constexpr double two_pi = 2.0 * std::numbers::pi;
  double folded = std::fmod( angle, two_pi );
  if ( folded < 0.0 )
  {
    folded += two_pi;
  }
  /* pi/4 grid times 2^20 sub-buckets: ulp noise never splits a bucket,
   * and a nearby-but-different angle only costs a missed hit (the
   * byte-exact verify keeps wrong splices impossible) */
  constexpr double resolution = std::numbers::pi / 4.0 / static_cast<double>( 1u << 20u );
  const auto bucket = std::llround( folded / resolution );
  constexpr int64_t wrap = int64_t{ 8 } << 20u;
  return bucket >= wrap ? 0 : bucket;
}

void fingerprint_phase_polynomial( const phasepoly::phase_polynomial& poly,
                                   std::string_view tag, phasepoly::splice_probe& probe )
{
  const uint32_t m = poly.num_vars;
  const auto graph = build_graph( poly );
  std::vector<uint64_t> colors( m );
  for ( uint32_t var = 0u; var < m; ++var )
  {
    colors[var] = mix( 0x696e6974u ^ graph.constant_bit[var] );
  }
  size_t classes = refine_to_stable( graph, colors );

  /* budgeted individualization: refinement-stable ties are broken by
   * the candidate whose fully refined serialization is smallest -- a
   * relabeling-invariant choice (the achievable set is invariant and
   * we take its minimum); past the budget ties fall back to input
   * order, which can only cost a missed hit */
  uint32_t budget = 32u;
  while ( classes < m && budget > 0u )
  {
    uint64_t tie_color = 0u;
    uint32_t tie_count = 0u;
    for ( uint32_t var = 0u; var < m; ++var )
    {
      uint32_t same = 0u;
      for ( uint32_t other = 0u; other < m; ++other )
      {
        same += colors[other] == colors[var] ? 1u : 0u;
      }
      if ( same > 1u && ( tie_count == 0u || colors[var] < tie_color ) )
      {
        tie_color = colors[var];
        tie_count = same;
      }
    }
    if ( tie_count == 0u || tie_count > 16u )
    {
      break;
    }
    int best = -1;
    std::string best_bytes;
    std::vector<uint64_t> best_colors;
    for ( uint32_t var = 0u; var < m; ++var )
    {
      if ( colors[var] != tie_color )
      {
        continue;
      }
      auto trial = colors;
      trial[var] = mix( trial[var] ^ 0x6964ull );
      refine_to_stable( graph, trial );
      auto bytes = serialize_poly( poly, tag, order_of( trial ) );
      if ( best < 0 || bytes < best_bytes )
      {
        best = static_cast<int>( var );
        best_bytes = std::move( bytes );
        best_colors = std::move( trial );
      }
    }
    colors = std::move( best_colors );
    classes = count_classes( colors );
    --budget;
  }

  const auto order = order_of( colors );
  probe.before = { poly.terms.size(), 0u, 0u };
  probe.bytes = serialize_poly( poly, tag, order );
  probe.wires = order; /* canonical label -> region-local variable */
  probe.perm.assign( m, 0u );
  for ( uint32_t c = 0u; c < m; ++c )
  {
    probe.perm[order[c]] = c; /* region-local variable -> canonical */
  }
  finish_probe( probe );
}

void append_gate_bytes( std::string& bytes, const qgate_view& gate )
{
  append_u8( bytes, static_cast<uint8_t>( gate.kind ) );
  switch ( gate.kind )
  {
  case gate_kind::global_phase:
    append_angle( bytes, gate.angle );
    return;
  case gate_kind::barrier:
    return;
  default:
    break;
  }
  append_u8( bytes, static_cast<uint8_t>( gate.controls.size() ) );
  for ( const uint32_t control : gate.controls )
  {
    append_u32( bytes, control );
  }
  append_u32( bytes, gate.target );
  if ( gate.kind == gate_kind::swap )
  {
    append_u32( bytes, gate.target2 );
  }
  if ( gate.kind == gate_kind::rx || gate.kind == gate_kind::ry ||
       gate.kind == gate_kind::rz )
  {
    append_angle( bytes, gate.angle );
  }
}

void fingerprint_circuit( const qcircuit& circuit, std::string_view tag,
                          phasepoly::splice_probe& probe )
{
  probe.bytes.clear();
  probe.bytes.append( "qc1|" );
  probe.bytes.append( tag );
  probe.bytes.push_back( '|' );
  probe.wires.clear();
  probe.perm.clear();

  std::vector<uint32_t> local_of( circuit.num_qubits(), 0u );
  std::vector<uint8_t> seen( circuit.num_qubits(), 0u );
  const auto local = [&]( uint32_t qubit ) {
    if ( seen[qubit] == 0u )
    {
      seen[qubit] = 1u;
      local_of[qubit] = static_cast<uint32_t>( probe.wires.size() );
      probe.wires.push_back( qubit );
    }
    return local_of[qubit];
  };

  probe.before = { 0u, 0u, 0u };
  qgate relabeled;
  for ( const auto& gate : circuit.gates() )
  {
    ++probe.before[0];
    probe.before[1] += gate.is_t_gate() ? 1u : 0u;
    probe.before[2] += gate.kind == gate_kind::cx ? 1u : 0u;
    relabeled.kind = gate.kind;
    relabeled.angle = gate.angle;
    relabeled.target = 0u;
    relabeled.target2 = 0u;
    relabeled.controls.clear();
    if ( gate.kind != gate_kind::global_phase && gate.kind != gate_kind::barrier )
    {
      for ( const uint32_t control : gate.controls )
      {
        relabeled.controls.push_back( local( control ) );
      }
      relabeled.target = local( gate.target );
      if ( gate.kind == gate_kind::swap )
      {
        relabeled.target2 = local( gate.target2 );
      }
    }
    append_gate_bytes( probe.bytes, relabeled );
  }
  finish_probe( probe );
}

void fingerprint_rev_circuit( const rev_circuit& circuit, std::string_view tag,
                              phasepoly::splice_probe& probe )
{
  probe.bytes.clear();
  probe.bytes.append( "rev1|" );
  probe.bytes.append( tag );
  probe.bytes.push_back( '|' );
  probe.wires.clear();
  probe.perm.clear();

  const uint32_t num_lines = circuit.num_lines();
  std::vector<uint32_t> local_of( num_lines, 0u );
  std::vector<uint8_t> seen( num_lines, 0u );
  const auto local = [&]( uint32_t line ) {
    if ( seen[line] == 0u )
    {
      seen[line] = 1u;
      local_of[line] = static_cast<uint32_t>( probe.wires.size() );
      probe.wires.push_back( line );
    }
    return local_of[line];
  };

  probe.before = { 0u, 0u, 0u };
  std::vector<std::pair<uint32_t, uint8_t>> controls;
  for ( const auto& gate : circuit.gates() )
  {
    ++probe.before[0];
    controls.clear();
    for ( uint32_t line = 0u; line < num_lines; ++line )
    {
      if ( ( gate.controls >> line ) & 1u )
      {
        controls.emplace_back( local( line ),
                               static_cast<uint8_t>( ( gate.polarity >> line ) & 1u ) );
      }
    }
    std::sort( controls.begin(), controls.end() );
    append_u8( probe.bytes, static_cast<uint8_t>( controls.size() ) );
    for ( const auto& [id, polarity] : controls )
    {
      append_u32( probe.bytes, id );
      append_u8( probe.bytes, polarity );
    }
    append_u32( probe.bytes, local( gate.target ) );
  }
  finish_probe( probe );
}

} // namespace qda::library
