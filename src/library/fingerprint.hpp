/*! \file fingerprint.hpp
 *  \brief Canonical region fingerprints for the subcircuit library.
 *
 *  Three fingerprint levels, all hashed with the same dual-seed
 *  FNV-1a scheme as the pipeline's `structural_key`:
 *
 *   - `fingerprint_phase_polynomial`: the semantic region fingerprint.
 *     A region's phase polynomial is already invariant under commuting
 *     gate reorder (extraction accumulates terms, not gate order); the
 *     remaining freedom is the labeling of the region's wires, removed
 *     by Weisfeiler-Lehman-style invariant partition refinement over
 *     the term/output-row hypergraph with budgeted individualization
 *     for refinement-stable ties.  Ties that survive the budget fall
 *     back to input order (a missed hit, never a wrong one).
 *   - `fingerprint_circuit`: the fast syntactic fingerprint of a whole
 *     quantum circuit (the largest candidate region: the full tpar
 *     input).  One scan with first-touch wire relabeling; canonical
 *     under any qubit relabeling that preserves first-touch order.
 *   - `fingerprint_rev_circuit`: the same first-touch spelling for a
 *     reversible MCT circuit (the rptm input).
 *
 *  Angles enter the canonical *ordering* quantized (pi/4 / 2^20
 *  buckets, robust to ulp noise) but the verified spelling keeps the
 *  exact bit patterns: a hash collision or a nearby-angle bucket match
 *  is rejected by the byte-exact verify, so splices reproduce the
 *  stored form bit-for-bit or not at all.
 */
#pragma once

#include "phasepoly/phase_polynomial.hpp"
#include "phasepoly/splice.hpp"
#include "quantum/qcircuit.hpp"
#include "reversible/rev_circuit.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace qda::library
{

/*! \brief Dual-seed FNV-1a over `bytes`: the `structural_key` scheme
 *         ({offset-basis, golden-gamma} seeds, one shared prime).
 */
std::array<uint64_t, 2> fingerprint_bytes( std::string_view bytes ) noexcept;

/*! \brief Angle bucket used for canonical ordering (pi/4 / 2^20). */
int64_t quantize_angle( double angle ) noexcept;

/*! \brief Canonical fingerprint of a region's phase polynomial.
 *
 *  Fills `probe` with the canonical spelling (`bytes`, `key`), the
 *  canonical-to-local map (`wires`) and the local-to-canonical map
 *  (`perm`); `tag` is prepended to the spelling so entries produced
 *  under different synthesis options never alias.
 */
void fingerprint_phase_polynomial( const phasepoly::phase_polynomial& poly,
                                   std::string_view tag, phasepoly::splice_probe& probe );

/*! \brief First-touch-canonical fingerprint of a quantum circuit.
 *         `probe.wires[local]` is the circuit qubit of label `local`.
 */
void fingerprint_circuit( const qcircuit& circuit, std::string_view tag,
                          phasepoly::splice_probe& probe );

/*! \brief First-touch-canonical fingerprint of a reversible circuit. */
void fingerprint_rev_circuit( const rev_circuit& circuit, std::string_view tag,
                              phasepoly::splice_probe& probe );

/*! \brief Serializes one gate (local labels) into a spelling. */
void append_gate_bytes( std::string& bytes, const qgate_view& gate );

} // namespace qda::library
