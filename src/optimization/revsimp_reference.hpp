/*! \file revsimp_reference.hpp
 *  \brief The pre-refactor `revsimp` kept verbatim as a baseline.
 *
 *  This is the copy-rebuild implementation the unified-IR rewriter
 *  version replaced: gates are copied into a vector, every cancellation
 *  or merge pays an O(n) `vector::erase` and restarts the sweep from
 *  scratch.  It exists only as the independent reference that
 *  `tests/test_circuit_ir.cpp` validates the rewriter pass against and
 *  that `bench/bench_eq5_pipeline.cpp` (E1d) measures it against --
 *  product code must use `revsimp` / `revsimp_in_place`.
 */
#pragma once

#include "kernel/bits.hpp"
#include "reversible/rev_circuit.hpp"

#include <cstdint>
#include <vector>

namespace qda::reference
{

inline uint32_t control_distance( const rev_gate& a, const rev_gate& b )
{
  const uint64_t occurrence_diff = a.controls ^ b.controls;
  const uint64_t phase_diff = ( a.polarity ^ b.polarity ) & a.controls & b.controls;
  return popcount64( occurrence_diff | phase_diff );
}

inline rev_gate merge_gates( const rev_gate& a, const rev_gate& b )
{
  const uint64_t occurrence_diff = a.controls ^ b.controls;
  const uint64_t phase_diff = ( a.polarity ^ b.polarity ) & a.controls & b.controls;
  const uint32_t line = least_significant_bit( occurrence_diff | phase_diff );
  const uint64_t bit = uint64_t{ 1 } << line;
  if ( ( a.controls & bit ) && ( b.controls & bit ) )
  {
    return rev_gate( a.controls & ~bit, a.polarity & ~bit, a.target );
  }
  const rev_gate& with = ( a.controls & bit ) ? a : b;
  return rev_gate( with.controls, with.polarity ^ bit, with.target );
}

inline bool sweep( std::vector<rev_gate>& gates )
{
  for ( size_t i = 0u; i < gates.size(); ++i )
  {
    for ( size_t j = i + 1u; j < gates.size(); ++j )
    {
      if ( gates[i].target == gates[j].target )
      {
        const uint32_t distance = control_distance( gates[i], gates[j] );
        if ( distance == 0u )
        {
          gates.erase( gates.begin() + static_cast<ptrdiff_t>( j ) );
          gates.erase( gates.begin() + static_cast<ptrdiff_t>( i ) );
          return true;
        }
        if ( distance == 1u )
        {
          gates[j] = merge_gates( gates[i], gates[j] );
          gates.erase( gates.begin() + static_cast<ptrdiff_t>( i ) );
          return true;
        }
      }
      if ( !gates[i].commutes_with( gates[j] ) )
      {
        break;
      }
    }
  }
  return false;
}

inline rev_circuit revsimp( const rev_circuit& circuit, uint32_t max_rounds = 16u )
{
  std::vector<rev_gate> gates;
  gates.reserve( circuit.num_gates() );
  for ( const auto& gate : circuit.gates() )
  {
    gates.push_back( gate );
  }
  for ( uint32_t round = 0u; round < max_rounds; ++round )
  {
    bool changed = false;
    while ( sweep( gates ) )
    {
      changed = true;
    }
    if ( !changed )
    {
      break;
    }
  }
  rev_circuit result( circuit.num_lines() );
  for ( const auto& gate : gates )
  {
    result.add_gate( gate );
  }
  return result;
}

} // namespace qda::reference
