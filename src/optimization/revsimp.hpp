/*! \file revsimp.hpp
 *  \brief Reversible circuit simplification (RevKit `revsimp`).
 *
 *  The post-synthesis cleanup stage of the paper's Eq. (5) pipeline.
 *  Rules, applied to a fixed point:
 *
 *   - cancellation: two equal MCT gates with only commuting gates
 *     between them annihilate (MCT gates are involutions);
 *   - merging: two gates on the same target whose control cubes are at
 *     ESOP distance 1 fuse into a single cheaper gate, e.g.
 *     T(x0, x1 -> t) T(x0, !x1 -> t) = T(x0 -> t).
 */
#pragma once

#include "reversible/rev_circuit.hpp"

namespace qda
{

/*! \brief Simplifies a reversible circuit; the result is equivalent. */
rev_circuit revsimp( const rev_circuit& circuit, uint32_t max_rounds = 16u );

} // namespace qda
