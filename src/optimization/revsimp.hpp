/*! \file revsimp.hpp
 *  \brief Reversible circuit simplification (RevKit `revsimp`).
 *
 *  The post-synthesis cleanup stage of the paper's Eq. (5) pipeline.
 *  Rules, applied to a fixed point:
 *
 *   - cancellation: two equal MCT gates with only commuting gates
 *     between them annihilate (MCT gates are involutions);
 *   - merging: two gates on the same target whose control cubes are at
 *     ESOP distance 1 fuse into a single cheaper gate, e.g.
 *     T(x0, x1 -> t) T(x0, !x1 -> t) = T(x0 -> t).
 *
 *  The pass runs on the unified IR: cancellations are O(1) tombstone
 *  erasures through the rewriter and merges are in-place row
 *  replacements, so no per-change gate-vector rebuild happens on the
 *  hot path (storage compacts once per sweep).
 */
#pragma once

#include "fault/cancel.hpp"
#include "reversible/rev_circuit.hpp"

namespace qda
{

/*! \brief Simplifies `circuit` in place; the result is equivalent.
 *         `cancel` is polled once per sweep round.
 */
void revsimp_in_place( rev_circuit& circuit, uint32_t max_rounds = 16u,
                       cancel_token cancel = {} );

/*! \brief Simplified copy of a reversible circuit. */
rev_circuit revsimp( const rev_circuit& circuit, uint32_t max_rounds = 16u );

} // namespace qda
