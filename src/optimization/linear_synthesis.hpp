/*! \file linear_synthesis.hpp
 *  \brief Forwarding header: PMH linear synthesis moved to phasepoly/.
 *
 *  The Patel-Markov-Hayes synthesizer is the linear epilogue of the
 *  phase-polynomial subsystem and now lives in
 *  `phasepoly/linear_synthesis.hpp` (with dynamic-width rows instead of
 *  the former 64-qubit cap, and affine X handling).  This header keeps
 *  the historical include path working; new code should include the
 *  phasepoly path directly.
 */
#pragma once

#include "phasepoly/linear_synthesis.hpp"
