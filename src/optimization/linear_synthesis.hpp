/*! \file linear_synthesis.hpp
 *  \brief CNOT (linear reversible) circuit synthesis, Patel-Markov-Hayes.
 *
 *  CNOT-only circuits compute invertible linear maps over GF(2).  The
 *  asymptotically optimal O(n^2 / log n) algorithm of Patel, Markov and
 *  Hayes re-synthesizes such maps with block-wise Gaussian elimination;
 *  applied to the linear regions left behind by synthesis it reduces
 *  CNOT counts (a standard companion of the T-count optimization in the
 *  paper's Eq. (5) pipeline).
 */
#pragma once

#include "quantum/qcircuit.hpp"

#include <cstdint>
#include <vector>

namespace qda
{

/*! \brief An invertible linear map over GF(2): row i holds the mask of
 *         inputs XORed into output i.
 */
using linear_matrix = std::vector<uint64_t>;

/*! \brief Extracts the linear map of a CNOT/SWAP-only circuit.
 *         Throws std::invalid_argument on other gates.
 */
linear_matrix linear_map_of_circuit( const qcircuit& circuit );

/*! \brief True if the matrix is invertible over GF(2). */
bool is_invertible( const linear_matrix& matrix );

/*! \brief Synthesizes a CNOT circuit computing `matrix` with the
 *         Patel-Markov-Hayes block algorithm (`section_size` columns per
 *         block; 2 is a good default for n <= 64).
 */
qcircuit pmh_linear_synthesis( const linear_matrix& matrix, uint32_t section_size = 2u );

/*! \brief Re-synthesizes maximal CNOT runs inside a circuit with PMH,
 *         leaving other gates untouched.
 */
qcircuit resynthesize_linear_regions( const qcircuit& circuit, uint32_t section_size = 2u );

} // namespace qda
