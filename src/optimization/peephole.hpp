/*! \file peephole.hpp
 *  \brief Local gate cancellation and fusion on quantum circuits.
 *
 *  Cheap cleanup pass run after mapping: adjacent inverse pairs cancel
 *  (H H, X X, CNOT CNOT, T T-dagger, ...) and adjacent phase gates on
 *  the same qubit fuse (T T = S, S S = Z, ...).  "Adjacent" is modulo
 *  gates acting on disjoint qubits, so the pass also catches pairs that
 *  drift apart during routing.
 *
 *  The pass runs on the unified IR: cancellations are O(1) tombstone
 *  erasures through the rewriter, so no per-change gate-vector rebuild
 *  happens on the hot path (storage compacts once per sweep).
 */
#pragma once

#include "fault/cancel.hpp"
#include "quantum/qcircuit.hpp"

namespace qda
{

/*! \brief Cancels and fuses gates in place; the result is equivalent
 *         up to the explicitly tracked global phase.  `cancel` is
 *         polled once per sweep round.
 */
void peephole_in_place( qcircuit& circuit, uint32_t max_rounds = 8u,
                        cancel_token cancel = {} );

/*! \brief Optimized copy of `circuit`. */
qcircuit peephole_optimize( const qcircuit& circuit, uint32_t max_rounds = 8u );

} // namespace qda
