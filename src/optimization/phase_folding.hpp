/*! \file phase_folding.hpp
 *  \brief Phase-polynomial folding: the T-count optimization stage.
 *
 *  Stand-in for the paper's `tpar` stage (Amy-Maslov-Mosca [69]): inside
 *  regions of {CNOT, X, SWAP, phase} gates, the value of every qubit is
 *  an affine function of the region's inputs.  Phase gates (T, S, Z and
 *  adjoints, Rz) applied to the *same* affine value merge into a single
 *  phase gate, cancelling or combining T gates.  Hadamards and other
 *  non-affine gates re-seed the tracked labels.
 *
 *  Unlike full T-par no re-scheduling for T-depth is attempted; the
 *  circuit structure is preserved and only phase gates move/merge, which
 *  keeps the pass trivially functionality-preserving (up to global
 *  phase, which is tracked explicitly).
 */
#pragma once

#include "quantum/qcircuit.hpp"

namespace qda
{

/*! \brief Folds mergeable phase gates in place through the IR rewriter
 *         (phase gates erase as tombstones, merged gates insert at their
 *         anchors in one batched commit); the result is equivalent up to
 *         the explicitly appended global phase.
 */
void phase_folding_in_place( qcircuit& circuit );

/*! \brief Folded copy of `circuit`. */
qcircuit phase_folding( const qcircuit& circuit );

} // namespace qda
