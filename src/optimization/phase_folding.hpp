/*! \file phase_folding.hpp
 *  \brief Phase folding: the fold-only client of the phase-polynomial
 *         subsystem.
 *
 *  Historically this file implemented the stand-in for the paper's
 *  `tpar` stage (Amy-Maslov-Mosca [69]) directly, with parity labels
 *  capped at 64 variables.  The engine now lives in `src/phasepoly/`
 *  with unbounded dynamic-width labels; these entry points run the
 *  fold-only half (merge/cancel phase gates, keep the CNOT skeleton),
 *  which keeps the pass trivially functionality-preserving (up to the
 *  explicitly tracked global phase).  For the full T-par including
 *  parity-network resynthesis use `phasepoly::tpar_in_place`.
 */
#pragma once

#include "quantum/qcircuit.hpp"

namespace qda
{

/*! \brief Folds mergeable phase gates in place through the IR rewriter
 *         (phase gates erase as tombstones, merged gates insert at their
 *         anchors in one batched commit); the result is equivalent up to
 *         the explicitly appended global phase.
 */
void phase_folding_in_place( qcircuit& circuit );

/*! \brief Folded copy of `circuit`. */
qcircuit phase_folding( const qcircuit& circuit );

} // namespace qda
