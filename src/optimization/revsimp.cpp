#include "optimization/revsimp.hpp"

#include "kernel/bits.hpp"

#include <optional>
#include <vector>

namespace qda
{

namespace
{

/*! ESOP distance of two control cubes (occurrence or polarity per line). */
uint32_t control_distance( const rev_gate& a, const rev_gate& b )
{
  const uint64_t occurrence_diff = a.controls ^ b.controls;
  const uint64_t phase_diff = ( a.polarity ^ b.polarity ) & a.controls & b.controls;
  return popcount64( occurrence_diff | phase_diff );
}

/*! Merges two same-target gates at control distance 1. */
rev_gate merge_gates( const rev_gate& a, const rev_gate& b )
{
  const uint64_t occurrence_diff = a.controls ^ b.controls;
  const uint64_t phase_diff = ( a.polarity ^ b.polarity ) & a.controls & b.controls;
  const uint32_t line = least_significant_bit( occurrence_diff | phase_diff );
  const uint64_t bit = uint64_t{ 1 } << line;

  if ( ( a.controls & bit ) && ( b.controls & bit ) )
  {
    /* opposite polarities: drop the control */
    return rev_gate( a.controls & ~bit, a.polarity & ~bit, a.target );
  }
  /* present in exactly one: keep with inverted polarity */
  const rev_gate& with = ( a.controls & bit ) ? a : b;
  return rev_gate( with.controls, with.polarity ^ bit, with.target );
}

/*! One simplification sweep; returns true if the gate list changed. */
bool sweep( std::vector<rev_gate>& gates )
{
  for ( size_t i = 0u; i < gates.size(); ++i )
  {
    for ( size_t j = i + 1u; j < gates.size(); ++j )
    {
      const bool same_target = gates[i].target == gates[j].target;
      if ( same_target )
      {
        const uint32_t distance = control_distance( gates[i], gates[j] );
        if ( distance == 0u )
        {
          gates.erase( gates.begin() + static_cast<ptrdiff_t>( j ) );
          gates.erase( gates.begin() + static_cast<ptrdiff_t>( i ) );
          return true;
        }
        if ( distance == 1u )
        {
          /* gate i commutes past everything up to j, so it can be moved
           * adjacent to gate j; the merged gate must live at j's slot */
          gates[j] = merge_gates( gates[i], gates[j] );
          gates.erase( gates.begin() + static_cast<ptrdiff_t>( i ) );
          return true;
        }
      }
      if ( !gates[i].commutes_with( gates[j] ) )
      {
        break; /* cannot move candidates past this gate */
      }
    }
  }
  return false;
}

} // namespace

rev_circuit revsimp( const rev_circuit& circuit, uint32_t max_rounds )
{
  std::vector<rev_gate> gates( circuit.gates() );
  for ( uint32_t round = 0u; round < max_rounds; ++round )
  {
    bool changed = false;
    while ( sweep( gates ) )
    {
      changed = true;
    }
    if ( !changed )
    {
      break;
    }
  }
  rev_circuit result( circuit.num_lines() );
  for ( const auto& gate : gates )
  {
    result.add_gate( gate );
  }
  return result;
}

} // namespace qda
