#include "optimization/revsimp.hpp"

#include "kernel/bits.hpp"

namespace qda
{

namespace
{

using mct_columns = ir::mct_policy::columns;

/*! ESOP distance of two control cubes (occurrence or polarity per line). */
uint32_t control_distance( const mct_columns& cols, uint32_t i, uint32_t j )
{
  const uint64_t occurrence_diff = cols.controls[i] ^ cols.controls[j];
  const uint64_t phase_diff =
      ( cols.polarity[i] ^ cols.polarity[j] ) & cols.controls[i] & cols.controls[j];
  return popcount64( occurrence_diff | phase_diff );
}

/*! Merges two same-target gates at control distance 1. */
rev_gate merge_gates( const mct_columns& cols, uint32_t i, uint32_t j )
{
  const uint64_t occurrence_diff = cols.controls[i] ^ cols.controls[j];
  const uint64_t phase_diff =
      ( cols.polarity[i] ^ cols.polarity[j] ) & cols.controls[i] & cols.controls[j];
  const uint32_t line = least_significant_bit( occurrence_diff | phase_diff );
  const uint64_t bit = uint64_t{ 1 } << line;

  rev_gate merged;
  if ( ( cols.controls[i] & bit ) && ( cols.controls[j] & bit ) )
  {
    /* opposite polarities: drop the control */
    merged.controls = cols.controls[i] & ~bit;
    merged.polarity = cols.polarity[i] & ~bit;
    merged.target = cols.target[i];
    return merged;
  }
  /* present in exactly one: keep with inverted polarity */
  const uint32_t with = ( cols.controls[i] & bit ) ? i : j;
  merged.controls = cols.controls[with];
  merged.polarity = cols.polarity[with] ^ bit;
  merged.target = cols.target[with];
  return merged;
}

/*! Mask-level `rev_gate::commutes_with` over two storage rows. */
bool slots_commute( const mct_columns& cols, uint32_t i, uint32_t j )
{
  if ( cols.target[i] == cols.target[j] )
  {
    return true;
  }
  const bool target_in_other = ( cols.controls[j] >> cols.target[i] ) & 1u;
  const bool other_in_this = ( cols.controls[i] >> cols.target[j] ) & 1u;
  if ( !target_in_other && !other_in_this )
  {
    return true;
  }
  return ( cols.controls[i] & cols.controls[j] &
           ( cols.polarity[i] ^ cols.polarity[j] ) ) != 0u;
}

/*! One simplification sweep over the tombstoned storage; cancellations
 *  and merges are applied as it goes (no restart, no vector rebuild).
 *  After a change the scan steps back one alive gate, so cascades of
 *  newly-adjacent pairs collapse within the same sweep -- an O(1)
 *  resumption the old copy-rebuild pass could not afford.  Returns true
 *  if the gate list changed.
 */
bool sweep( rev_circuit::core_type& core, rev_circuit::rewriter& rewriter )
{
  const auto& cols = core.columns();
  const uint32_t num_slots = core.num_slots();
  bool changed = false;

  uint32_t i = 0u;
  while ( i < num_slots )
  {
    if ( !core.slot_alive( i ) )
    {
      ++i;
      continue;
    }
    bool changed_here = false;
    for ( uint32_t j = i + 1u; j < num_slots; ++j )
    {
      if ( !core.slot_alive( j ) )
      {
        continue;
      }
      if ( cols.target[i] == cols.target[j] )
      {
        const uint32_t distance = control_distance( cols, i, j );
        if ( distance == 0u )
        {
          rewriter.erase_slot( i );
          rewriter.erase_slot( j );
          changed_here = true;
          break;
        }
        if ( distance == 1u )
        {
          /* gate i commutes past everything up to j, so it can be moved
           * adjacent to gate j; the merged gate must live at j's slot */
          rewriter.replace_slot( j, merge_gates( cols, i, j ) );
          rewriter.erase_slot( i );
          changed_here = true;
          break;
        }
      }
      if ( !slots_commute( cols, i, j ) )
      {
        break; /* cannot move candidate i past this gate */
      }
    }
    if ( changed_here )
    {
      changed = true;
      i = core.previous_alive( i );
    }
    else
    {
      ++i;
    }
  }
  return changed;
}

} // namespace

void revsimp_in_place( rev_circuit& circuit, uint32_t max_rounds, cancel_token cancel )
{
  auto& core = circuit.core();
  auto rewriter = circuit.rewrite();
  for ( uint32_t round = 0u; round < max_rounds; ++round )
  {
    cancel.check( "revsimp" );
    bool changed = false;
    while ( sweep( core, rewriter ) )
    {
      changed = true;
      rewriter.commit(); /* compact tombstones once per full sweep */
    }
    if ( !changed )
    {
      break;
    }
  }
  rewriter.commit();
}

rev_circuit revsimp( const rev_circuit& circuit, uint32_t max_rounds )
{
  rev_circuit result( circuit );
  revsimp_in_place( result, max_rounds );
  return result;
}

} // namespace qda
