#include "optimization/phase_folding.hpp"

#include <cmath>
#include <map>
#include <numbers>
#include <optional>
#include <vector>

namespace qda
{

namespace
{

constexpr double pi = std::numbers::pi;

/*! Phase angle contributed by a phase-type gate, if it is one. */
std::optional<double> phase_angle( gate_kind kind, double gate_angle )
{
  switch ( kind )
  {
  case gate_kind::z:
    return pi;
  case gate_kind::s:
    return pi / 2.0;
  case gate_kind::sdg:
    return -pi / 2.0;
  case gate_kind::t:
    return pi / 4.0;
  case gate_kind::tdg:
    return -pi / 4.0;
  case gate_kind::rz:
    return gate_angle;
  default:
    return std::nullopt;
  }
}

/*! Affine label of a qubit: parity of region variables plus a constant. */
struct affine_label
{
  uint64_t mask = 0u;
  bool constant = false;
};

struct phase_term
{
  double angle = 0.0;        /*!< accumulated parity-phase coefficient */
  uint32_t anchor_slot = 0u; /*!< storage slot where the merged gate is emitted */
  bool anchor_constant = false;
};

qgate make_phase_gate( gate_kind kind, uint32_t qubit )
{
  qgate gate;
  gate.kind = kind;
  gate.target = qubit;
  return gate;
}

/*! Collects e^{i alpha v} on `qubit` as canonical Clifford+T gates when
 *  alpha is a multiple of pi/4, else as one Rz (global phase returned).
 */
double collect_phase_gates( std::vector<qgate>& out, uint32_t qubit, double alpha )
{
  /* normalize into [0, 2 pi) */
  alpha = std::fmod( alpha, 2.0 * pi );
  if ( alpha < 0.0 )
  {
    alpha += 2.0 * pi;
  }
  const double steps = alpha / ( pi / 4.0 );
  const long k = std::lround( steps );
  if ( std::abs( steps - static_cast<double>( k ) ) < 1e-9 )
  {
    switch ( k % 8 )
    {
    case 0: break;
    case 1: out.push_back( make_phase_gate( gate_kind::t, qubit ) ); break;
    case 2: out.push_back( make_phase_gate( gate_kind::s, qubit ) ); break;
    case 3:
      out.push_back( make_phase_gate( gate_kind::s, qubit ) );
      out.push_back( make_phase_gate( gate_kind::t, qubit ) );
      break;
    case 4: out.push_back( make_phase_gate( gate_kind::z, qubit ) ); break;
    case 5:
      out.push_back( make_phase_gate( gate_kind::z, qubit ) );
      out.push_back( make_phase_gate( gate_kind::t, qubit ) );
      break;
    case 6: out.push_back( make_phase_gate( gate_kind::sdg, qubit ) ); break;
    case 7: out.push_back( make_phase_gate( gate_kind::tdg, qubit ) ); break;
    }
    return 0.0;
  }
  /* Rz(alpha) = e^{-i alpha/2} diag(1, e^{i alpha}) */
  qgate rz = make_phase_gate( gate_kind::rz, qubit );
  rz.angle = alpha;
  out.push_back( rz );
  return alpha / 2.0;
}

} // namespace

void phase_folding_in_place( qcircuit& circuit )
{
  const uint32_t num_qubits = circuit.num_qubits();
  auto& core = circuit.core();
  core.compact(); /* pass 1 records slots; start from dense storage */

  std::vector<affine_label> labels( num_qubits );
  uint32_t next_variable = 0u;
  uint64_t epoch = 0u;

  const auto fresh_label = [&]( uint32_t qubit ) {
    if ( next_variable >= 64u )
    {
      /* variable space exhausted: start a new epoch so stale masks never
       * merge with new ones */
      ++epoch;
      next_variable = 0u;
      for ( auto& label : labels )
      {
        label = { uint64_t{ 1 } << next_variable, false };
        ++next_variable;
        if ( next_variable >= 64u )
        {
          ++epoch;
          next_variable = 0u;
        }
      }
    }
    labels[qubit] = { uint64_t{ 1 } << next_variable, false };
    ++next_variable;
  };

  for ( uint32_t qubit = 0u; qubit < num_qubits; ++qubit )
  {
    fresh_label( qubit );
  }

  /* pass 1: collect phase terms keyed by (epoch, parity mask) */
  std::map<std::pair<uint64_t, uint64_t>, phase_term> terms;
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> anchors; /* slot -> key */
  double global_phase_total = 0.0;

  const auto& cols = core.columns();
  for ( uint32_t slot = 0u; slot < core.num_slots(); ++slot )
  {
    const auto kind = cols.kind[slot];
    const uint32_t target = cols.target[slot];
    if ( const auto angle = phase_angle( kind, cols.angle_of( slot ) ) )
    {
      if ( kind == gate_kind::rz )
      {
        global_phase_total -= *angle / 2.0; /* Rz carries a global factor */
      }
      const auto& label = labels[target];
      if ( label.mask == 0u )
      {
        /* phase on a constant value: pure global phase */
        if ( label.constant )
        {
          global_phase_total += *angle;
        }
        continue;
      }
      const auto key = std::make_pair( epoch, label.mask );
      auto [it, inserted] = terms.try_emplace( key );
      if ( inserted )
      {
        it->second.anchor_slot = slot;
        it->second.anchor_constant = label.constant;
        anchors.emplace( slot, key );
      }
      if ( label.constant )
      {
        it->second.angle -= *angle;
        global_phase_total += *angle;
      }
      else
      {
        it->second.angle += *angle;
      }
      continue;
    }

    switch ( kind )
    {
    case gate_kind::x:
      labels[target].constant = !labels[target].constant;
      break;
    case gate_kind::cx:
    {
      const uint32_t control = cols.controls_of( slot )[0];
      labels[target].mask ^= labels[control].mask;
      labels[target].constant = labels[target].constant != labels[control].constant;
      break;
    }
    case gate_kind::swap:
      std::swap( labels[target], labels[cols.target2[slot]] );
      break;
    case gate_kind::cz:
    case gate_kind::mcz:
    case gate_kind::barrier:
    case gate_kind::global_phase:
      break; /* diagonal or neutral: labels unchanged */
    case gate_kind::mcx:
      fresh_label( target ); /* value becomes non-affine */
      break;
    default:
      /* h, y, rx, ry, measure: value no longer tracked */
      fresh_label( target );
      break;
    }
  }

  /* pass 2: rewrite in place, emitting merged phases at their anchors */
  auto rewriter = circuit.rewrite();
  std::vector<qgate> merged;
  for ( uint32_t slot = 0u; slot < core.num_slots(); ++slot )
  {
    if ( !phase_angle( cols.kind[slot], cols.angle_of( slot ) ) )
    {
      continue;
    }
    const uint32_t target = cols.target[slot];
    rewriter.erase_slot( slot );
    const auto anchor = anchors.find( slot );
    if ( anchor == anchors.end() )
    {
      continue; /* folded away */
    }
    const auto& term = terms.at( anchor->second );
    double alpha = term.angle;
    if ( term.anchor_constant )
    {
      /* gate acts on the complemented value: emit -alpha, compensate */
      global_phase_total += alpha;
      alpha = -alpha;
    }
    /* Rz(alpha) carries an extra e^{-i alpha/2}; compensate so the
     * rewritten circuit equals the original exactly */
    merged.clear();
    global_phase_total += collect_phase_gates( merged, target, alpha );
    for ( const auto& gate : merged )
    {
      rewriter.insert_before_slot( slot, gate );
    }
  }

  global_phase_total = std::fmod( global_phase_total, 2.0 * pi );
  if ( std::abs( global_phase_total ) > 1e-12 )
  {
    qgate phase;
    phase.kind = gate_kind::global_phase;
    phase.angle = global_phase_total;
    rewriter.append( phase );
  }
  rewriter.commit();
}

qcircuit phase_folding( const qcircuit& circuit )
{
  qcircuit result( circuit );
  phase_folding_in_place( result );
  return result;
}

} // namespace qda
