#include "optimization/phase_folding.hpp"

#include "phasepoly/fold.hpp"

namespace qda
{

void phase_folding_in_place( qcircuit& circuit )
{
  phasepoly::fold_phases_in_place( circuit );
}

qcircuit phase_folding( const qcircuit& circuit )
{
  qcircuit result( circuit );
  phase_folding_in_place( result );
  return result;
}

} // namespace qda
