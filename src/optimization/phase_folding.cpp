#include "optimization/phase_folding.hpp"

#include <cmath>
#include <map>
#include <numbers>
#include <optional>
#include <vector>

namespace qda
{

namespace
{

constexpr double pi = std::numbers::pi;

/*! Phase angle contributed by a phase-type gate, if it is one. */
std::optional<double> phase_angle( const qgate& gate )
{
  switch ( gate.kind )
  {
  case gate_kind::z:
    return pi;
  case gate_kind::s:
    return pi / 2.0;
  case gate_kind::sdg:
    return -pi / 2.0;
  case gate_kind::t:
    return pi / 4.0;
  case gate_kind::tdg:
    return -pi / 4.0;
  case gate_kind::rz:
    return gate.angle;
  default:
    return std::nullopt;
  }
}

/*! Affine label of a qubit: parity of region variables plus a constant. */
struct affine_label
{
  uint64_t mask = 0u;
  bool constant = false;
};

struct phase_term
{
  double angle = 0.0;       /*!< accumulated parity-phase coefficient */
  size_t anchor_index = 0u; /*!< gate index where the merged gate is emitted */
  bool anchor_constant = false;
};

/*! Emits e^{i alpha v} on `qubit` as canonical Clifford+T gates when
 *  alpha is a multiple of pi/4, else as one Rz (global phase returned).
 */
double emit_phase( qcircuit& out, uint32_t qubit, double alpha )
{
  /* normalize into [0, 2 pi) */
  alpha = std::fmod( alpha, 2.0 * pi );
  if ( alpha < 0.0 )
  {
    alpha += 2.0 * pi;
  }
  const double steps = alpha / ( pi / 4.0 );
  const long k = std::lround( steps );
  if ( std::abs( steps - static_cast<double>( k ) ) < 1e-9 )
  {
    switch ( k % 8 )
    {
    case 0: break;
    case 1: out.t( qubit ); break;
    case 2: out.s( qubit ); break;
    case 3: out.s( qubit ); out.t( qubit ); break;
    case 4: out.z( qubit ); break;
    case 5: out.z( qubit ); out.t( qubit ); break;
    case 6: out.sdg( qubit ); break;
    case 7: out.tdg( qubit ); break;
    }
    return 0.0;
  }
  /* Rz(alpha) = e^{-i alpha/2} diag(1, e^{i alpha}) */
  out.rz( qubit, alpha );
  return alpha / 2.0;
}

} // namespace

qcircuit phase_folding( const qcircuit& circuit )
{
  const uint32_t num_qubits = circuit.num_qubits();

  std::vector<affine_label> labels( num_qubits );
  uint32_t next_variable = 0u;
  uint64_t epoch = 0u;

  const auto fresh_label = [&]( uint32_t qubit ) {
    if ( next_variable >= 64u )
    {
      /* variable space exhausted: start a new epoch so stale masks never
       * merge with new ones */
      ++epoch;
      next_variable = 0u;
      for ( auto& label : labels )
      {
        label = { uint64_t{ 1 } << next_variable, false };
        ++next_variable;
        if ( next_variable >= 64u )
        {
          ++epoch;
          next_variable = 0u;
        }
      }
    }
    labels[qubit] = { uint64_t{ 1 } << next_variable, false };
    ++next_variable;
  };

  for ( uint32_t qubit = 0u; qubit < num_qubits; ++qubit )
  {
    fresh_label( qubit );
  }

  /* pass 1: collect phase terms keyed by (epoch, parity mask) */
  std::map<std::pair<uint64_t, uint64_t>, phase_term> terms;
  std::map<size_t, std::pair<uint64_t, uint64_t>> anchors; /* gate index -> key */
  double global_phase_total = 0.0;

  const auto& gates = circuit.gates();
  for ( size_t index = 0u; index < gates.size(); ++index )
  {
    const auto& gate = gates[index];
    if ( const auto angle = phase_angle( gate ) )
    {
      if ( gate.kind == gate_kind::rz )
      {
        global_phase_total -= *angle / 2.0; /* Rz carries a global factor */
      }
      const auto& label = labels[gate.target];
      if ( label.mask == 0u )
      {
        /* phase on a constant value: pure global phase */
        if ( label.constant )
        {
          global_phase_total += *angle;
        }
        continue;
      }
      const auto key = std::make_pair( epoch, label.mask );
      auto [it, inserted] = terms.try_emplace( key );
      if ( inserted )
      {
        it->second.anchor_index = index;
        it->second.anchor_constant = label.constant;
        anchors.emplace( index, key );
      }
      if ( label.constant )
      {
        it->second.angle -= *angle;
        global_phase_total += *angle;
      }
      else
      {
        it->second.angle += *angle;
      }
      continue;
    }

    switch ( gate.kind )
    {
    case gate_kind::x:
      labels[gate.target].constant = !labels[gate.target].constant;
      break;
    case gate_kind::cx:
      labels[gate.target].mask ^= labels[gate.controls[0]].mask;
      labels[gate.target].constant =
          labels[gate.target].constant != labels[gate.controls[0]].constant;
      break;
    case gate_kind::swap:
      std::swap( labels[gate.target], labels[gate.target2] );
      break;
    case gate_kind::cz:
    case gate_kind::mcz:
    case gate_kind::barrier:
    case gate_kind::global_phase:
      break; /* diagonal or neutral: labels unchanged */
    case gate_kind::mcx:
      fresh_label( gate.target ); /* value becomes non-affine */
      break;
    default:
      /* h, y, rx, ry, measure: value no longer tracked */
      fresh_label( gate.target );
      break;
    }
  }

  /* pass 2: rebuild, emitting merged phases at their anchors */
  qcircuit result( num_qubits );
  for ( size_t index = 0u; index < gates.size(); ++index )
  {
    const auto& gate = gates[index];
    if ( phase_angle( gate ) )
    {
      const auto anchor = anchors.find( index );
      if ( anchor == anchors.end() )
      {
        continue; /* folded away */
      }
      const auto& term = terms.at( anchor->second );
      double alpha = term.angle;
      if ( term.anchor_constant )
      {
        /* gate acts on the complemented value: emit -alpha, compensate */
        global_phase_total += alpha;
        alpha = -alpha;
      }
      /* Rz(alpha) carries an extra e^{-i alpha/2}; compensate so the
       * rebuilt circuit equals the original exactly */
      global_phase_total += emit_phase( result, gate.target, alpha );
      continue;
    }
    result.add_gate( gate );
  }

  global_phase_total = std::fmod( global_phase_total, 2.0 * pi );
  if ( std::abs( global_phase_total ) > 1e-12 )
  {
    result.global_phase( global_phase_total );
  }
  return result;
}

} // namespace qda
