#include "optimization/peephole.hpp"

#include <algorithm>

namespace qda
{

namespace
{

using ct_columns = ir::cliffordt_policy::columns;

/*! Qubits of row `slot` into `buffer` (barrier/global_phase: none). */
void collect_qubits( const ct_columns& cols, uint32_t slot, std::vector<uint32_t>& buffer )
{
  buffer.clear();
  const auto kind = cols.kind[slot];
  if ( kind == gate_kind::barrier || kind == gate_kind::global_phase )
  {
    return;
  }
  const auto controls = cols.controls_of( slot );
  buffer.assign( controls.begin(), controls.end() );
  buffer.push_back( cols.target[slot] );
  if ( kind == gate_kind::swap )
  {
    buffer.push_back( cols.target2[slot] );
  }
}

bool touches_any( const ct_columns& cols, uint32_t slot, const std::vector<uint32_t>& qubits )
{
  if ( cols.kind[slot] == gate_kind::barrier )
  {
    return true; /* barriers block movement by design */
  }
  if ( cols.kind[slot] == gate_kind::global_phase )
  {
    return false;
  }
  const auto touches = [&]( uint32_t q ) {
    return std::find( qubits.begin(), qubits.end(), q ) != qubits.end();
  };
  for ( const auto control : cols.controls_of( slot ) )
  {
    if ( touches( control ) )
    {
      return true;
    }
  }
  if ( touches( cols.target[slot] ) )
  {
    return true;
  }
  return cols.kind[slot] == gate_kind::swap && touches( cols.target2[slot] );
}

bool same_operands( const ct_columns& cols, uint32_t i, uint32_t j )
{
  if ( cols.kind[i] != cols.kind[j] || cols.target[i] != cols.target[j] ||
       cols.target2[i] != cols.target2[j] )
  {
    return false;
  }
  const auto ci = cols.controls_of( i );
  const auto cj = cols.controls_of( j );
  return std::equal( ci.begin(), ci.end(), cj.begin(), cj.end() );
}

/*! True for self-inverse gate kinds where an identical adjacent pair
 *  cancels.
 */
bool is_self_inverse( gate_kind kind )
{
  switch ( kind )
  {
  case gate_kind::h:
  case gate_kind::x:
  case gate_kind::y:
  case gate_kind::z:
  case gate_kind::cx:
  case gate_kind::cz:
  case gate_kind::swap:
  case gate_kind::mcx:
  case gate_kind::mcz:
    return true;
  default:
    return false;
  }
}

/*! True for pairs like (s, sdg) and (t, tdg). */
bool are_adjoint_kinds( gate_kind a, gate_kind b )
{
  return ( a == gate_kind::s && b == gate_kind::sdg ) ||
         ( a == gate_kind::sdg && b == gate_kind::s ) ||
         ( a == gate_kind::t && b == gate_kind::tdg ) ||
         ( a == gate_kind::tdg && b == gate_kind::t );
}

bool one_sweep( qcircuit::core_type& core, qcircuit::rewriter& rewriter,
                std::vector<uint32_t>& qubits )
{
  const auto& cols = core.columns();
  const uint32_t num_slots = core.num_slots();
  bool changed = false;

  uint32_t i = 0u;
  while ( i < num_slots )
  {
    if ( !core.slot_alive( i ) )
    {
      ++i;
      continue;
    }
    const auto kind = cols.kind[i];
    if ( kind == gate_kind::barrier || kind == gate_kind::global_phase ||
         kind == gate_kind::measure )
    {
      ++i;
      continue;
    }
    collect_qubits( cols, i, qubits );
    bool changed_here = false;
    for ( uint32_t j = i + 1u; j < num_slots; ++j )
    {
      if ( !core.slot_alive( j ) )
      {
        continue;
      }
      if ( !touches_any( cols, j, qubits ) )
      {
        continue; /* disjoint: keep scanning */
      }
      /* first blocking/interacting gate found */
      const bool cancel_pair =
          ( is_self_inverse( kind ) && same_operands( cols, i, j ) ) ||
          ( are_adjoint_kinds( kind, cols.kind[j] ) && cols.target[i] == cols.target[j] );
      if ( cancel_pair )
      {
        rewriter.erase_slot( i );
        rewriter.erase_slot( j );
        changed_here = true;
      }
      /* the interacting gate blocks any further match for gate i */
      break;
    }
    if ( changed_here )
    {
      /* step back one alive gate: its partner may have just been exposed */
      changed = true;
      i = core.previous_alive( i );
    }
    else
    {
      ++i;
    }
  }
  return changed;
}

} // namespace

void peephole_in_place( qcircuit& circuit, uint32_t max_rounds, cancel_token cancel )
{
  /* phase fusion (t t -> s etc.) is delegated to phase folding, which
   * merges phase gates globally; this pass handles the non-diagonal
   * cancellations it cannot see */
  auto& core = circuit.core();
  auto rewriter = circuit.rewrite();
  std::vector<uint32_t> qubits;
  for ( uint32_t round = 0u; round < max_rounds; ++round )
  {
    cancel.check( "peephole" );
    bool changed = false;
    while ( one_sweep( core, rewriter, qubits ) )
    {
      changed = true;
      rewriter.commit(); /* compact tombstones once per full sweep */
    }
    if ( !changed )
    {
      break;
    }
  }
  rewriter.commit();
}

qcircuit peephole_optimize( const qcircuit& circuit, uint32_t max_rounds )
{
  qcircuit result( circuit );
  peephole_in_place( result, max_rounds );
  return result;
}

} // namespace qda
