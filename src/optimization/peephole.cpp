#include "optimization/peephole.hpp"

#include "optimization/phase_folding.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace qda
{

namespace
{

bool touches_any( const qgate& gate, const std::vector<uint32_t>& qubits )
{
  const auto own = gate.qubits();
  if ( gate.kind == gate_kind::barrier )
  {
    return true; /* barriers block movement by design */
  }
  return std::any_of( own.begin(), own.end(), [&]( uint32_t q ) {
    return std::count( qubits.begin(), qubits.end(), q ) != 0u;
  } );
}

bool same_operands( const qgate& a, const qgate& b )
{
  return a.kind == b.kind && a.controls == b.controls && a.target == b.target &&
         a.target2 == b.target2;
}

/*! True for self-inverse gate kinds where an identical adjacent pair
 *  cancels.
 */
bool is_self_inverse( gate_kind kind )
{
  switch ( kind )
  {
  case gate_kind::h:
  case gate_kind::x:
  case gate_kind::y:
  case gate_kind::z:
  case gate_kind::cx:
  case gate_kind::cz:
  case gate_kind::swap:
  case gate_kind::mcx:
  case gate_kind::mcz:
    return true;
  default:
    return false;
  }
}

/*! True for pairs like (s, sdg) and (t, tdg). */
bool are_adjoint_kinds( gate_kind a, gate_kind b )
{
  return ( a == gate_kind::s && b == gate_kind::sdg ) ||
         ( a == gate_kind::sdg && b == gate_kind::s ) ||
         ( a == gate_kind::t && b == gate_kind::tdg ) ||
         ( a == gate_kind::tdg && b == gate_kind::t );
}

bool one_sweep( std::vector<qgate>& gates )
{
  for ( size_t i = 0u; i < gates.size(); ++i )
  {
    const auto qubits = gates[i].qubits();
    if ( gates[i].kind == gate_kind::barrier || gates[i].kind == gate_kind::global_phase ||
         gates[i].kind == gate_kind::measure )
    {
      continue;
    }
    for ( size_t j = i + 1u; j < gates.size(); ++j )
    {
      if ( !touches_any( gates[j], qubits ) )
      {
        continue; /* disjoint: keep scanning */
      }
      /* first blocking/interacting gate found */
      const bool cancel_pair =
          ( is_self_inverse( gates[i].kind ) && same_operands( gates[i], gates[j] ) ) ||
          ( are_adjoint_kinds( gates[i].kind, gates[j].kind ) &&
            gates[i].target == gates[j].target );
      if ( cancel_pair )
      {
        gates.erase( gates.begin() + static_cast<ptrdiff_t>( j ) );
        gates.erase( gates.begin() + static_cast<ptrdiff_t>( i ) );
        return true;
      }
      /* the interacting gate blocks any further match for gate i */
      break;
    }
  }
  return false;
}

} // namespace

qcircuit peephole_optimize( const qcircuit& circuit, uint32_t max_rounds )
{
  /* phase fusion (t t -> s etc.) is delegated to phase folding, which
   * merges phase gates globally; this pass handles the non-diagonal
   * cancellations it cannot see */
  std::vector<qgate> gates( circuit.gates() );
  for ( uint32_t round = 0u; round < max_rounds; ++round )
  {
    bool changed = false;
    while ( one_sweep( gates ) )
    {
      changed = true;
    }
    if ( !changed )
    {
      break;
    }
  }
  qcircuit result( circuit.num_qubits() );
  for ( const auto& gate : gates )
  {
    result.add_gate( gate );
  }
  return result;
}

} // namespace qda
