#include "mapping/clifford_t.hpp"
#include "optimization/linear_synthesis.hpp"
#include "optimization/peephole.hpp"
#include "optimization/phase_folding.hpp"
#include "optimization/revsimp.hpp"
#include "simulator/unitary.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qda
{
namespace
{

TEST( revsimp_test, cancels_adjacent_identical_gates )
{
  rev_circuit circuit( 3u );
  circuit.add_toffoli( 0u, 1u, 2u );
  circuit.add_toffoli( 0u, 1u, 2u );
  const auto simplified = revsimp( circuit );
  EXPECT_EQ( simplified.num_gates(), 0u );
}

TEST( revsimp_test, cancels_across_commuting_gates )
{
  rev_circuit circuit( 3u );
  circuit.add_cnot( 0u, 2u );
  circuit.add_cnot( 1u, 2u ); /* same target: commutes */
  circuit.add_cnot( 0u, 2u );
  const auto simplified = revsimp( circuit );
  EXPECT_EQ( simplified.num_gates(), 1u );
  EXPECT_TRUE( equivalent( simplified, circuit ) );
}

TEST( revsimp_test, does_not_cancel_across_blocking_gates )
{
  rev_circuit circuit( 2u );
  circuit.add_cnot( 0u, 1u );
  circuit.add_cnot( 1u, 0u ); /* blocks */
  circuit.add_cnot( 0u, 1u );
  const auto simplified = revsimp( circuit );
  EXPECT_EQ( simplified.num_gates(), 3u );
}

TEST( revsimp_test, merges_distance_one_controls )
{
  /* T(x0, x1 -> t) T(x0, !x1 -> t) == T(x0 -> t) */
  rev_circuit circuit( 3u );
  circuit.add_gate( rev_gate::mct( { 0u, 1u }, {}, 2u ) );
  circuit.add_gate( rev_gate::mct( { 0u }, { 1u }, 2u ) );
  const auto simplified = revsimp( circuit );
  ASSERT_EQ( simplified.num_gates(), 1u );
  EXPECT_EQ( simplified.gate( 0u ), rev_gate::cnot( 0u, 2u ) );
  EXPECT_TRUE( equivalent( simplified, circuit ) );
}

TEST( revsimp_test, merges_subsumed_controls )
{
  /* T(x0 -> t) T(x0, x1 -> t) == T(x0, !x1 -> t) */
  rev_circuit circuit( 3u );
  circuit.add_cnot( 0u, 2u );
  circuit.add_toffoli( 0u, 1u, 2u );
  const auto simplified = revsimp( circuit );
  ASSERT_EQ( simplified.num_gates(), 1u );
  EXPECT_EQ( simplified.gate( 0u ), rev_gate::mct( { 0u }, { 1u }, 2u ) );
  EXPECT_TRUE( equivalent( simplified, circuit ) );
}

TEST( revsimp_test, preserves_function_on_random_circuits )
{
  std::mt19937_64 rng( 21u );
  for ( uint32_t trial = 0u; trial < 40u; ++trial )
  {
    rev_circuit circuit( 5u );
    for ( uint32_t g = 0u; g < 24u; ++g )
    {
      const uint32_t target = rng() % 5u;
      const uint64_t controls = rng() & 0x1fu & ~( uint64_t{ 1 } << target );
      const uint64_t polarity = rng() & controls;
      circuit.add_gate( rev_gate( controls, polarity, target ) );
    }
    const auto simplified = revsimp( circuit );
    ASSERT_TRUE( equivalent( simplified, circuit ) ) << "trial=" << trial;
    EXPECT_LE( simplified.num_gates(), circuit.num_gates() );
  }
}

TEST( revsimp_test, shrinks_synthesized_benchmarks )
{
  const auto circuit = transformation_based_synthesis( hwb_permutation( 5u ) );
  const auto simplified = revsimp( circuit );
  EXPECT_LE( simplified.num_gates(), circuit.num_gates() );
  EXPECT_TRUE( equivalent( simplified, circuit ) );
}

TEST( phase_folding_test, merges_split_t_gates )
{
  /* t . cx . t . cx : second t acts on the same parity as the first */
  qcircuit circuit( 2u );
  circuit.t( 0u );
  circuit.cx( 1u, 0u );
  circuit.cx( 1u, 0u );
  circuit.t( 0u );
  const auto folded = phase_folding( circuit );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
  EXPECT_EQ( compute_statistics( folded ).t_count, 0u ); /* t+t = s */
}

TEST( phase_folding_test, t_and_tdg_cancel_through_cnots )
{
  qcircuit circuit( 2u );
  circuit.t( 1u );
  circuit.cx( 0u, 1u );
  circuit.cx( 0u, 1u );
  circuit.tdg( 1u );
  const auto folded = phase_folding( circuit );
  EXPECT_EQ( compute_statistics( folded ).t_count, 0u );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
}

TEST( phase_folding_test, does_not_merge_across_hadamard )
{
  qcircuit circuit( 1u );
  circuit.t( 0u );
  circuit.h( 0u );
  circuit.t( 0u );
  const auto folded = phase_folding( circuit );
  EXPECT_EQ( compute_statistics( folded ).t_count, 2u );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
}

TEST( phase_folding_test, x_conjugation_flips_phase_sign )
{
  /* X T X T: phases theta(1-v) + theta(v) = global theta */
  qcircuit circuit( 1u );
  circuit.x( 0u );
  circuit.t( 0u );
  circuit.x( 0u );
  circuit.t( 0u );
  const auto folded = phase_folding( circuit );
  EXPECT_EQ( compute_statistics( folded ).t_count, 0u );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
}

TEST( phase_folding_test, parity_via_cnot_chain )
{
  qcircuit circuit( 3u );
  circuit.cx( 0u, 2u );
  circuit.cx( 1u, 2u );
  circuit.t( 2u ); /* phase on x0 ^ x1 ^ x2 */
  circuit.cx( 1u, 2u );
  circuit.cx( 0u, 2u );
  circuit.cx( 0u, 1u );
  circuit.t( 1u ); /* phase on x0 ^ x1: different parity, no merge */
  circuit.cx( 0u, 1u );
  const auto folded = phase_folding( circuit );
  EXPECT_EQ( compute_statistics( folded ).t_count, 2u );
  EXPECT_TRUE( circuits_equivalent( folded, circuit ) );
}

TEST( phase_folding_test, preserves_random_clifford_t_circuits )
{
  std::mt19937_64 rng( 5u );
  for ( uint32_t trial = 0u; trial < 30u; ++trial )
  {
    qcircuit circuit( 4u );
    for ( uint32_t g = 0u; g < 40u; ++g )
    {
      const uint32_t q = rng() % 4u;
      switch ( rng() % 7u )
      {
      case 0u: circuit.t( q ); break;
      case 1u: circuit.tdg( q ); break;
      case 2u: circuit.s( q ); break;
      case 3u: circuit.h( q ); break;
      case 4u: circuit.x( q ); break;
      case 5u: circuit.cx( q, ( q + 1u ) % 4u ); break;
      default: circuit.cz( q, ( q + 2u ) % 4u ); break;
      }
    }
    const auto folded = phase_folding( circuit );
    ASSERT_TRUE( circuits_equivalent( folded, circuit ) ) << "trial=" << trial;
    EXPECT_LE( compute_statistics( folded ).t_count, compute_statistics( circuit ).t_count );
  }
}

TEST( phase_folding_test, reduces_t_count_of_mapped_mct_cascades )
{
  rev_circuit circuit( 4u );
  circuit.add_toffoli( 0u, 1u, 3u );
  circuit.add_toffoli( 0u, 1u, 3u );
  const auto mapped = map_to_clifford_t( circuit );
  const auto folded = phase_folding( mapped.circuit );
  EXPECT_LT( compute_statistics( folded ).t_count,
             compute_statistics( mapped.circuit ).t_count );
  EXPECT_TRUE( circuits_equivalent( folded, mapped.circuit ) );
}

TEST( pmh_test, identity_and_single_cnot )
{
  EXPECT_EQ( pmh_linear_synthesis( { 1u, 2u, 4u } ).num_gates(), 0u );
  /* matrix of cx(0,1): row1 = x0 ^ x1 */
  const auto circuit = pmh_linear_synthesis( { 1u, 3u } );
  EXPECT_EQ( circuit.num_gates(), 1u );
  EXPECT_EQ( linear_map_of_circuit( circuit ), ( linear_matrix{ 1u, 3u } ) );
}

TEST( pmh_test, roundtrip_on_random_linear_circuits )
{
  std::mt19937_64 rng( 17u );
  for ( uint32_t trial = 0u; trial < 30u; ++trial )
  {
    qcircuit circuit( 6u );
    for ( uint32_t g = 0u; g < 30u; ++g )
    {
      const uint32_t c = rng() % 6u;
      uint32_t t = rng() % 6u;
      if ( t == c )
      {
        t = ( t + 1u ) % 6u;
      }
      circuit.cx( c, t );
    }
    const auto matrix = linear_map_of_circuit( circuit );
    ASSERT_TRUE( is_invertible( matrix ) );
    for ( const uint32_t section : { 1u, 2u, 3u } )
    {
      const auto resynthesized = pmh_linear_synthesis( matrix, section );
      ASSERT_EQ( linear_map_of_circuit( resynthesized ), matrix )
          << "trial=" << trial << " section=" << section;
    }
  }
}

TEST( pmh_test, compresses_redundant_cnot_chains )
{
  qcircuit circuit( 3u );
  for ( uint32_t i = 0u; i < 6u; ++i )
  {
    circuit.cx( 0u, 1u ); /* even count: identity */
  }
  circuit.cx( 1u, 2u );
  const auto matrix = linear_map_of_circuit( circuit );
  const auto resynthesized = pmh_linear_synthesis( matrix );
  EXPECT_EQ( resynthesized.num_gates(), 1u );
}

TEST( pmh_test, swap_handling_and_errors )
{
  qcircuit circuit( 2u );
  circuit.swap_( 0u, 1u );
  const auto matrix = linear_map_of_circuit( circuit );
  EXPECT_EQ( matrix, ( linear_matrix{ 2u, 1u } ) );

  qcircuit bad( 2u );
  bad.h( 0u );
  EXPECT_THROW( linear_map_of_circuit( bad ), std::invalid_argument );
  EXPECT_THROW( pmh_linear_synthesis( { 1u, 1u } ), std::invalid_argument ); /* singular */
}

TEST( pmh_test, region_resynthesis_preserves_semantics )
{
  qcircuit circuit( 4u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.cx( 1u, 2u );
  circuit.cx( 0u, 1u );
  circuit.cx( 1u, 2u );
  circuit.cx( 0u, 2u );
  circuit.t( 2u );
  circuit.cx( 3u, 2u );
  circuit.cx( 3u, 2u );
  circuit.h( 2u );
  const auto resynthesized = resynthesize_linear_regions( circuit );
  EXPECT_TRUE( circuits_equivalent( resynthesized, circuit ) );
  EXPECT_LE( resynthesized.num_gates(), circuit.num_gates() );
}

TEST( peephole_test, cancels_adjacent_pairs )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.cx( 0u, 1u );
  circuit.t( 1u );
  circuit.tdg( 1u );
  const auto optimized = peephole_optimize( circuit );
  EXPECT_EQ( optimized.num_gates(), 0u );
}

TEST( peephole_test, cancels_across_disjoint_gates )
{
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.x( 1u );
  circuit.t( 2u );
  circuit.h( 0u );
  const auto optimized = peephole_optimize( circuit );
  EXPECT_EQ( optimized.num_gates(), 2u );
  EXPECT_TRUE( circuits_equivalent( optimized, circuit ) );
}

TEST( peephole_test, blocked_pairs_survive )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.t( 0u );
  circuit.h( 0u );
  const auto optimized = peephole_optimize( circuit );
  EXPECT_EQ( optimized.num_gates(), 3u );
}

TEST( peephole_test, preserves_random_circuits )
{
  std::mt19937_64 rng( 77u );
  for ( uint32_t trial = 0u; trial < 30u; ++trial )
  {
    qcircuit circuit( 4u );
    for ( uint32_t g = 0u; g < 30u; ++g )
    {
      const uint32_t q = rng() % 4u;
      switch ( rng() % 6u )
      {
      case 0u: circuit.h( q ); break;
      case 1u: circuit.x( q ); break;
      case 2u: circuit.t( q ); break;
      case 3u: circuit.tdg( q ); break;
      case 4u: circuit.cx( q, ( q + 1u ) % 4u ); break;
      default: circuit.cz( q, ( q + 2u ) % 4u ); break;
      }
    }
    const auto optimized = peephole_optimize( circuit );
    ASSERT_TRUE( circuits_equivalent( optimized, circuit ) ) << "trial=" << trial;
    EXPECT_LE( optimized.num_gates(), circuit.num_gates() );
  }
}

} // namespace
} // namespace qda
