#include "quantum/qasm.hpp"
#include "quantum/qcircuit.hpp"
#include "quantum/qsharp.hpp"
#include "simulator/unitary.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( qgate_test, qubits_enumeration )
{
  qgate gate;
  gate.kind = gate_kind::mcx;
  gate.controls = { 0u, 2u };
  gate.target = 4u;
  EXPECT_EQ( gate.qubits(), ( std::vector<uint32_t>{ 0u, 2u, 4u } ) );

  qgate barrier;
  barrier.kind = gate_kind::barrier;
  EXPECT_TRUE( barrier.qubits().empty() );
}

TEST( qgate_test, adjoint_pairs )
{
  qgate t;
  t.kind = gate_kind::t;
  EXPECT_EQ( t.adjoint().kind, gate_kind::tdg );
  EXPECT_EQ( t.adjoint().adjoint().kind, gate_kind::t );

  qgate rz;
  rz.kind = gate_kind::rz;
  rz.angle = 0.5;
  EXPECT_DOUBLE_EQ( rz.adjoint().angle, -0.5 );

  qgate h;
  h.kind = gate_kind::h;
  EXPECT_EQ( h.adjoint().kind, gate_kind::h );

  qgate m;
  m.kind = gate_kind::measure;
  EXPECT_THROW( m.adjoint(), std::logic_error );
}

TEST( qgate_test, clifford_and_t_classification )
{
  qgate g;
  g.kind = gate_kind::h;
  EXPECT_TRUE( g.is_clifford() );
  g.kind = gate_kind::t;
  EXPECT_FALSE( g.is_clifford() );
  EXPECT_TRUE( g.is_t_gate() );
  g.kind = gate_kind::cx;
  EXPECT_TRUE( g.is_clifford() );
  g.kind = gate_kind::rz;
  EXPECT_FALSE( g.is_clifford() );
}

TEST( qcircuit_test, builders_and_validation )
{
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.cx( 0u, 1u );
  circuit.ccx( 0u, 1u, 2u );
  EXPECT_EQ( circuit.num_gates(), 3u );
  EXPECT_THROW( circuit.h( 3u ), std::invalid_argument );
  EXPECT_THROW( circuit.cx( 1u, 1u ), std::invalid_argument );
  EXPECT_THROW( circuit.swap_( 2u, 2u ), std::invalid_argument );
  EXPECT_THROW( circuit.mcx( { 0u, 0u }, 1u ), std::invalid_argument );
}

TEST( qcircuit_test, mcx_degenerate_arities )
{
  qcircuit circuit( 3u );
  circuit.mcx( {}, 0u );
  EXPECT_EQ( circuit.gate( 0u ).kind, gate_kind::x );
  circuit.mcx( { 1u }, 0u );
  EXPECT_EQ( circuit.gate( 1u ).kind, gate_kind::cx );
  circuit.mcz( { 1u }, 0u );
  EXPECT_EQ( circuit.gate( 2u ).kind, gate_kind::cz );
}

TEST( qcircuit_test, adjoint_inverts )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.t( 0u );
  circuit.cx( 0u, 1u );
  circuit.s( 1u );

  qcircuit composed( 2u );
  composed.append( circuit );
  composed.append( circuit.adjoint() );

  qcircuit identity( 2u );
  EXPECT_TRUE( circuits_equivalent( composed, identity ) );
}

TEST( qcircuit_test, adjoint_rejects_measurements )
{
  qcircuit circuit( 1u );
  circuit.measure( 0u );
  EXPECT_THROW( circuit.adjoint(), std::logic_error );
}

TEST( qcircuit_test, append_mapped_remaps_operands )
{
  qcircuit small( 2u );
  small.cx( 0u, 1u );
  qcircuit big( 4u );
  big.append_mapped( small, { 3u, 1u } );
  EXPECT_EQ( big.gate( 0u ).controls[0], 3u );
  EXPECT_EQ( big.gate( 0u ).target, 1u );
  EXPECT_THROW( big.append_mapped( small, { 0u } ), std::invalid_argument );
}

TEST( qcircuit_test, statistics_counts )
{
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.t( 0u );
  circuit.tdg( 1u );
  circuit.cx( 0u, 1u );
  circuit.cz( 1u, 2u );
  circuit.measure_all();
  const auto stats = compute_statistics( circuit );
  EXPECT_EQ( stats.num_qubits, 3u );
  EXPECT_EQ( stats.t_count, 2u );
  EXPECT_EQ( stats.h_count, 1u );
  EXPECT_EQ( stats.cnot_count, 1u );
  EXPECT_EQ( stats.two_qubit_count, 2u );
  EXPECT_EQ( stats.num_measurements, 3u );
  EXPECT_GT( stats.depth, 0u );
}

TEST( qcircuit_test, t_depth_parallel_ts_count_once )
{
  qcircuit circuit( 2u );
  circuit.t( 0u );
  circuit.t( 1u ); /* parallel T's: one T stage */
  const auto stats = compute_statistics( circuit );
  EXPECT_EQ( stats.t_count, 2u );
  EXPECT_EQ( stats.t_depth, 1u );

  qcircuit serial( 1u );
  serial.t( 0u );
  serial.t( 0u );
  EXPECT_EQ( compute_statistics( serial ).t_depth, 2u );
}

TEST( qasm_test, roundtrip_preserves_semantics )
{
  qcircuit circuit( 3u );
  circuit.h( 0u );
  circuit.t( 1u );
  circuit.sdg( 2u );
  circuit.cx( 0u, 1u );
  circuit.cz( 1u, 2u );
  circuit.swap_( 0u, 2u );
  circuit.ccx( 0u, 1u, 2u );
  circuit.rz( 0u, 0.75 );

  const auto text = write_qasm( circuit );
  const auto parsed = read_qasm( text );
  EXPECT_EQ( parsed.num_qubits(), 3u );
  EXPECT_TRUE( circuits_equivalent( circuit, parsed ) );
}

TEST( qasm_test, measure_and_barrier_roundtrip )
{
  qcircuit circuit( 2u );
  circuit.h( 0u );
  circuit.barrier();
  circuit.measure( 0u );
  circuit.measure( 1u );
  const auto parsed = read_qasm( write_qasm( circuit ) );
  EXPECT_EQ( parsed.measured_qubits(), ( std::vector<uint32_t>{ 0u, 1u } ) );
}

TEST( qasm_test, rejects_unmapped_gates )
{
  qcircuit circuit( 4u );
  circuit.mcx( { 0u, 1u, 2u }, 3u );
  EXPECT_THROW( write_qasm( circuit ), std::invalid_argument );
}

TEST( qasm_test, parse_errors )
{
  EXPECT_THROW( read_qasm( "h q[0];" ), std::invalid_argument );
  EXPECT_THROW( read_qasm( "qreg q[2]; frobnicate q[0];" ), std::invalid_argument );
}

TEST( qsharp_test, emits_fig10_style_operations )
{
  qcircuit circuit( 3u );
  circuit.cx( 2u, 1u );
  circuit.h( 0u );
  circuit.t( 2u );
  circuit.tdg( 1u );
  const auto code = write_qsharp_operation( circuit, "PermutationOracle" );
  EXPECT_NE( code.find( "operation PermutationOracle" ), std::string::npos );
  EXPECT_NE( code.find( "CNOT(qubits[2], qubits[1]);" ), std::string::npos );
  EXPECT_NE( code.find( "H(qubits[0]);" ), std::string::npos );
  EXPECT_NE( code.find( "(Adjoint T)(qubits[1]);" ), std::string::npos );
  EXPECT_NE( code.find( "adjoint auto" ), std::string::npos );
  EXPECT_NE( code.find( "controlled auto" ), std::string::npos );
}

TEST( qsharp_test, namespace_includes_bent_function_helpers )
{
  qcircuit oracle( 3u );
  oracle.cx( 0u, 1u );
  const auto code = write_qsharp_perm_oracle_namespace( oracle, 3u );
  EXPECT_NE( code.find( "namespace Microsoft.Quantum.PermOracle" ), std::string::npos );
  EXPECT_NE( code.find( "BentFunctionImpl" ), std::string::npos );
  EXPECT_NE( code.find( "(Adjoint PermutationOracle)(ys);" ), std::string::npos );
  EXPECT_NE( code.find( "(Controlled Z)([xs[idx]], ys[idx]);" ), std::string::npos );
  EXPECT_NE( code.find( "BentFunctionImpl(3, _);" ), std::string::npos );
}

TEST( qsharp_test, rejects_measurements_in_oracles )
{
  qcircuit circuit( 1u );
  circuit.measure( 0u );
  EXPECT_THROW( write_qsharp_operation( circuit, "Bad" ), std::invalid_argument );
}

} // namespace
} // namespace qda
