#include "synthesis/decomposition_based.hpp"
#include "synthesis/exact.hpp"
#include "synthesis/revgen.hpp"
#include "synthesis/transformation_based.hpp"

#include <gtest/gtest.h>

namespace qda
{
namespace
{

TEST( exact_synthesis_test, identity_needs_zero_gates )
{
  const exact_synthesizer synthesizer( 3u );
  EXPECT_EQ( synthesizer.optimal_gate_count( permutation( 3u ) ), 0u );
  EXPECT_EQ( synthesizer.synthesize( permutation( 3u ) ).num_gates(), 0u );
}

TEST( exact_synthesis_test, single_gate_permutations )
{
  const exact_synthesizer synthesizer( 3u );
  for ( const auto& gate : synthesizer.library() )
  {
    rev_circuit circuit( 3u );
    circuit.add_gate( gate );
    const auto pi = circuit.to_permutation();
    if ( pi.is_identity() )
    {
      continue;
    }
    EXPECT_EQ( synthesizer.optimal_gate_count( pi ), 1u ) << gate.to_string();
  }
}

TEST( exact_synthesis_test, synthesized_circuits_are_correct_and_optimal )
{
  const exact_synthesizer synthesizer( 3u );
  for ( uint64_t seed = 0u; seed < 30u; ++seed )
  {
    const auto pi = permutation::random( 3u, seed );
    const auto circuit = synthesizer.synthesize( pi );
    EXPECT_EQ( circuit.num_gates(), synthesizer.optimal_gate_count( pi ) ) << "seed=" << seed;
    for ( uint64_t x = 0u; x < 8u; ++x )
    {
      ASSERT_EQ( circuit.simulate( x ), pi[x] ) << "seed=" << seed;
    }
  }
}

TEST( exact_synthesis_test, heuristics_never_beat_the_optimum )
{
  const exact_synthesizer synthesizer( 3u );
  for ( uint64_t seed = 100u; seed < 160u; ++seed )
  {
    const auto pi = permutation::random( 3u, seed );
    const uint32_t optimum = synthesizer.optimal_gate_count( pi );
    EXPECT_GE( transformation_based_synthesis( pi ).num_gates(), optimum ) << seed;
    EXPECT_GE( transformation_based_synthesis_bidirectional( pi ).num_gates(), optimum ) << seed;
    EXPECT_GE( decomposition_based_synthesis( pi ).num_gates(), optimum ) << seed;
  }
}

TEST( exact_synthesis_test, fig7_permutation_optimum )
{
  const exact_synthesizer synthesizer( 3u );
  const auto pi = paper_fig7_permutation();
  const uint32_t optimum = synthesizer.optimal_gate_count( pi );
  EXPECT_GE( optimum, 1u );
  EXPECT_LE( optimum, 4u ); /* TBS already finds 4 gates */
  const auto circuit = synthesizer.synthesize( pi );
  for ( uint64_t x = 0u; x < 8u; ++x )
  {
    ASSERT_EQ( circuit.simulate( x ), pi[x] );
  }
}

TEST( exact_synthesis_test, positive_polarity_library_is_weaker_or_equal )
{
  const exact_synthesizer mixed( 3u, /*mixed_polarity=*/true );
  const exact_synthesizer positive( 3u, /*mixed_polarity=*/false );
  EXPECT_GT( mixed.library().size(), positive.library().size() );
  for ( uint64_t seed = 0u; seed < 20u; ++seed )
  {
    const auto pi = permutation::random( 3u, seed + 300u );
    EXPECT_LE( mixed.optimal_gate_count( pi ), positive.optimal_gate_count( pi ) ) << seed;
  }
}

TEST( exact_synthesis_test, every_2_line_permutation_within_diameter )
{
  const exact_synthesizer synthesizer( 2u );
  std::vector<uint64_t> images{ 0u, 1u, 2u, 3u };
  uint32_t worst = 0u;
  do
  {
    const auto pi = permutation::from_vector( images );
    const auto circuit = synthesizer.synthesize( pi );
    for ( uint64_t x = 0u; x < 4u; ++x )
    {
      ASSERT_EQ( circuit.simulate( x ), pi[x] );
    }
    worst = std::max( worst, static_cast<uint32_t>( circuit.num_gates() ) );
  } while ( std::next_permutation( images.begin(), images.end() ) );
  /* the 2-line mixed-polarity MCT group has small diameter */
  EXPECT_LE( worst, 4u );
}

TEST( exact_synthesis_test, rejects_unsupported_widths )
{
  EXPECT_THROW( exact_synthesizer( 0u ), std::invalid_argument );
  EXPECT_THROW( exact_synthesizer( 4u ), std::invalid_argument );
  const exact_synthesizer synthesizer( 2u );
  EXPECT_THROW( synthesizer.optimal_gate_count( permutation( 3u ) ), std::invalid_argument );
}

} // namespace
} // namespace qda
